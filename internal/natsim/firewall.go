package natsim

import (
	"wow/internal/phys"
	"wow/internal/sim"
)

// Firewall is a stateful packet filter at a realm boundary. Unlike a NAT it
// does not translate addresses: hosts inside keep routable addresses, but
// unsolicited inbound traffic is dropped unless it matches an established
// outbound flow (a "pinhole") or a static allow rule.
//
// The paper's ncgrid.org site is the archetype: its firewall had exactly
// one UDP port opened for IPOP traffic; every other site relied on
// hole-punched flows only.
type Firewall struct {
	name  string
	inner *phys.Realm
	outer *phys.Realm
	// FlowTTL expires idle pinholes. Zero means 120s.
	flowTTL sim.Duration
	clock   func() sim.Time
	// allowPorts are statically open inbound destination ports.
	allowPorts map[uint16]bool
	// blockedProtos drops traffic of the given wire protocols entirely
	// (some sites firewall UDP altogether, forcing overlay links onto
	// the TCP transport).
	blockedProtos map[uint8]bool
	// flows maps (inner endpoint, outer endpoint) -> last use.
	flows map[flowKey]sim.Time
	// Drops counts packets dropped, by reason.
	Drops map[string]int
}

type flowKey struct {
	proto   uint8
	inside  phys.Endpoint
	outside phys.Endpoint
}

// NewFirewall creates a stateful firewall. allowPorts lists inbound
// destination ports that are statically open (may be nil).
func NewFirewall(name string, flowTTL sim.Duration, clock func() sim.Time, allowPorts ...uint16) *Firewall {
	if flowTTL == 0 {
		flowTTL = 120 * sim.Second
	}
	f := &Firewall{
		name:          name,
		flowTTL:       flowTTL,
		clock:         clock,
		allowPorts:    make(map[uint16]bool),
		blockedProtos: make(map[uint8]bool),
		flows:         make(map[flowKey]sim.Time),
		Drops:         make(map[string]int),
	}
	for _, p := range allowPorts {
		f.allowPorts[p] = true
	}
	return f
}

// Attach implements phys.Boundary, recording both sides of the boundary.
func (f *Firewall) Attach(inner, outer *phys.Realm) {
	f.inner = inner
	f.outer = outer
}

// Inner returns the protected realm behind the firewall (nil before
// Attach).
func (f *Firewall) Inner() *phys.Realm { return f.inner }

// Outer returns the realm outside the firewall (nil before Attach).
func (f *Firewall) Outer() *phys.Realm { return f.outer }

// Claims implements phys.Boundary: the firewall claims every address
// routable inside it — protected hosts and the public endpoints of nested
// NATs (all globally routable; the firewall filters without translating).
func (f *Firewall) Claims(ip phys.IP) bool { return f.inner.Covers(ip) }

// Name returns the device name.
func (f *Firewall) Name() string { return f.name }

// BlockProto drops all traffic of the given wire protocol in both
// directions (e.g. phys.WireUDP for a UDP-hostile site).
func (f *Firewall) BlockProto(proto uint8) { f.blockedProtos[proto] = true }

// Outbound implements phys.Boundary: record the flow pinhole and pass.
func (f *Firewall) Outbound(now sim.Time, p *phys.Packet) bool {
	if f.blockedProtos[p.Proto] {
		f.Drops["proto"]++
		return false
	}
	f.flows[flowKey{proto: p.Proto, inside: p.Src, outside: p.Dst}] = now
	return true
}

// Inbound implements phys.Boundary: admit packets to statically open ports
// or matching a live pinhole.
func (f *Firewall) Inbound(now sim.Time, p *phys.Packet) bool {
	if f.blockedProtos[p.Proto] {
		f.Drops["proto"]++
		return false
	}
	if f.allowPorts[p.Dst.Port] {
		return true
	}
	k := flowKey{proto: p.Proto, inside: p.Dst, outside: p.Src}
	if t, ok := f.flows[k]; ok {
		if now.Sub(t) <= f.flowTTL {
			f.flows[k] = now
			return true
		}
		delete(f.flows, k)
	}
	f.Drops["unsolicited"]++
	return false
}

var _ phys.Boundary = (*Firewall)(nil)
