package natsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"wow/internal/phys"
	"wow/internal/sim"
)

// rig builds a public network with helpers to hang NATed realms off it.
type rig struct {
	s    *sim.Simulator
	net  *phys.Network
	site *phys.Site
}

func newRig(seed int64) *rig {
	s := sim.New(seed)
	net := phys.NewNetwork(s, phys.UniformLatency(
		phys.PathModel{OneWay: sim.Millisecond},
		phys.PathModel{OneWay: 20 * sim.Millisecond},
	))
	return &rig{s: s, net: net, site: net.AddSite("site")}
}

func (r *rig) publicHost(name string) *phys.Host {
	return r.net.AddHost(name, r.site, r.net.Root(), phys.HostConfig{})
}

func (r *rig) natRealm(name string, cfg Config, outer *phys.Realm, base string) (*phys.Realm, *NAT) {
	pub := r.net.Root().NextIP()
	if outer != r.net.Root() {
		pub = outer.NextIP()
	}
	nat := NewNAT(name, cfg, pub, r.s.Now)
	realm := r.net.AddRealm(name, outer, nat, phys.MustParseIP(base))
	return realm, nat
}

// echo sets up an echo responder on h and returns a counter of echoes.
func echo(h *phys.Host, port uint16) (*phys.UDPSock, *int) {
	sock, err := h.Listen(port)
	if err != nil {
		panic(err)
	}
	n := new(int)
	sock.OnRecv = func(p *phys.Packet) {
		*n++
		sock.Send(p.Src, p.Size, "echo")
	}
	return sock, n
}

func TestNATTypeString(t *testing.T) {
	names := map[NATType]string{
		FullCone: "full-cone", RestrictedCone: "restricted-cone",
		PortRestricted: "port-restricted", Symmetric: "symmetric",
	}
	for typ, want := range names {
		if typ.String() != want {
			t.Errorf("%d.String() = %q, want %q", typ, typ.String(), want)
		}
	}
	if NATType(99).String() != "NATType(99)" {
		t.Error("unknown type formatting")
	}
}

// A NATed client can reach a public server and receive the reply through
// the mapping; the server observes the NAT's public endpoint.
func TestOutboundMappingAndReply(t *testing.T) {
	r := newRig(1)
	server := r.publicHost("server")
	realm, nat := r.natRealm("homenat", Config{Type: PortRestricted}, r.net.Root(), "10.0.0.1")
	client := r.net.AddHost("client", r.site, realm, phys.HostConfig{})

	ssock, _ := server.Listen(500)
	var observed phys.Endpoint
	ssock.OnRecv = func(p *phys.Packet) {
		observed = p.Src
		ssock.Send(p.Src, 10, "reply")
	}
	csock, _ := client.Listen(0)
	got := 0
	csock.OnRecv = func(p *phys.Packet) { got++ }
	csock.Send(phys.Endpoint{IP: server.IP(), Port: 500}, 10, "hi")
	r.s.Run()

	if got != 1 {
		t.Fatal("reply did not traverse NAT")
	}
	if observed.IP != nat.PublicIP() {
		t.Fatalf("server saw %v, want NAT public IP %v", observed.IP, nat.PublicIP())
	}
	if observed.IP == client.IP() {
		t.Fatal("private address leaked")
	}
	if nat.Mappings() != 1 {
		t.Fatalf("mappings = %d", nat.Mappings())
	}
}

// Unsolicited inbound to a NAT public port with no mapping is dropped.
func TestUnsolicitedInboundDropped(t *testing.T) {
	r := newRig(1)
	outsider := r.publicHost("outsider")
	realm, nat := r.natRealm("nat", Config{Type: FullCone}, r.net.Root(), "10.0.0.1")
	inside := r.net.AddHost("inside", r.site, realm, phys.HostConfig{})
	_, n := echo(inside, 100)
	osock, _ := outsider.Listen(0)
	osock.Send(phys.Endpoint{IP: nat.PublicIP(), Port: 4242}, 10, nil)
	r.s.Run()
	if *n != 0 {
		t.Fatal("unsolicited packet delivered")
	}
	if nat.Drops["nomapping"] != 1 {
		t.Fatalf("drops = %v", nat.Drops)
	}
}

// Full-cone: once a mapping exists, a third party can send through it.
// Port-restricted: the same third-party packet is filtered.
func TestConeFiltering(t *testing.T) {
	for _, tc := range []struct {
		typ      NATType
		thirdOK  bool
		wantDrop string
	}{
		{FullCone, true, ""},
		{RestrictedCone, false, "filtered"},
		{PortRestricted, false, "filtered"},
	} {
		r := newRig(1)
		peer := r.publicHost("peer")
		third := r.publicHost("third")
		realm, nat := r.natRealm("nat", Config{Type: tc.typ}, r.net.Root(), "10.0.0.1")
		inside := r.net.AddHost("inside", r.site, realm, phys.HostConfig{})

		isock, _ := inside.Listen(100)
		rcvd := 0
		isock.OnRecv = func(p *phys.Packet) { rcvd++ }

		// Inside contacts peer to open a mapping; learn the public EP.
		var pub phys.Endpoint
		psock, _ := peer.Listen(600)
		psock.OnRecv = func(p *phys.Packet) { pub = p.Src }
		isock.Send(phys.Endpoint{IP: peer.IP(), Port: 600}, 10, nil)
		r.s.Run()
		if pub.IsZero() {
			t.Fatalf("%v: mapping never observed", tc.typ)
		}

		// Third party sends to the mapping.
		tsock, _ := third.Listen(0)
		tsock.Send(pub, 10, nil)
		r.s.Run()
		if tc.thirdOK && rcvd != 1 {
			t.Errorf("%v: third-party packet dropped, want delivered", tc.typ)
		}
		if !tc.thirdOK {
			if rcvd != 0 {
				t.Errorf("%v: third-party packet delivered, want filtered", tc.typ)
			}
			if nat.Drops[tc.wantDrop] != 1 {
				t.Errorf("%v: drops = %v", tc.typ, nat.Drops)
			}
		}
	}
}

// Restricted cone admits any port from a contacted IP; port-restricted
// requires the exact port.
func TestRestrictedVsPortRestricted(t *testing.T) {
	for _, tc := range []struct {
		typ    NATType
		wantOK bool
	}{{RestrictedCone, true}, {PortRestricted, false}} {
		r := newRig(1)
		peer := r.publicHost("peer")
		realm, _ := r.natRealm("nat", Config{Type: tc.typ}, r.net.Root(), "10.0.0.1")
		inside := r.net.AddHost("inside", r.site, realm, phys.HostConfig{})

		isock, _ := inside.Listen(100)
		rcvd := 0
		isock.OnRecv = func(p *phys.Packet) { rcvd++ }

		var pub phys.Endpoint
		p600, _ := peer.Listen(600)
		p600.OnRecv = func(p *phys.Packet) { pub = p.Src }
		isock.Send(phys.Endpoint{IP: peer.IP(), Port: 600}, 10, nil)
		r.s.Run()

		// Reply from a *different port* on the same peer IP.
		p601, _ := peer.Listen(601)
		p601.Send(pub, 10, nil)
		r.s.Run()
		if tc.wantOK && rcvd != 1 {
			t.Errorf("%v: same-IP different-port dropped", tc.typ)
		}
		if !tc.wantOK && rcvd != 0 {
			t.Errorf("%v: same-IP different-port admitted", tc.typ)
		}
	}
}

// Symmetric NATs allocate different public ports per destination.
func TestSymmetricPerDestinationPorts(t *testing.T) {
	r := newRig(1)
	p1 := r.publicHost("p1")
	p2 := r.publicHost("p2")
	realm, nat := r.natRealm("nat", Config{Type: Symmetric}, r.net.Root(), "10.0.0.1")
	inside := r.net.AddHost("inside", r.site, realm, phys.HostConfig{})

	var e1, e2 phys.Endpoint
	s1, _ := p1.Listen(700)
	s1.OnRecv = func(p *phys.Packet) { e1 = p.Src }
	s2, _ := p2.Listen(700)
	s2.OnRecv = func(p *phys.Packet) { e2 = p.Src }

	isock, _ := inside.Listen(100)
	isock.Send(phys.Endpoint{IP: p1.IP(), Port: 700}, 10, nil)
	isock.Send(phys.Endpoint{IP: p2.IP(), Port: 700}, 10, nil)
	r.s.Run()

	if e1.IsZero() || e2.IsZero() {
		t.Fatal("probes not delivered")
	}
	if e1.Port == e2.Port {
		t.Fatal("symmetric NAT reused the public port across destinations")
	}
	if nat.Mappings() != 2 {
		t.Fatalf("mappings = %d, want 2", nat.Mappings())
	}

	// A cone NAT would reuse the same port.
	r2 := newRig(1)
	q1 := r2.publicHost("q1")
	q2 := r2.publicHost("q2")
	realm2, _ := r2.natRealm("cone", Config{Type: PortRestricted}, r2.net.Root(), "10.0.0.1")
	inside2 := r2.net.AddHost("inside2", r2.site, realm2, phys.HostConfig{})
	var f1, f2 phys.Endpoint
	t1, _ := q1.Listen(700)
	t1.OnRecv = func(p *phys.Packet) { f1 = p.Src }
	t2, _ := q2.Listen(700)
	t2.OnRecv = func(p *phys.Packet) { f2 = p.Src }
	is2, _ := inside2.Listen(100)
	is2.Send(phys.Endpoint{IP: q1.IP(), Port: 700}, 10, nil)
	is2.Send(phys.Endpoint{IP: q2.IP(), Port: 700}, 10, nil)
	r2.s.Run()
	if f1 != f2 {
		t.Fatalf("cone NAT used different mappings per destination: %v vs %v", f1, f2)
	}
}

// UDP hole punching: two clients behind different port-restricted NATs can
// talk once both have sent toward each other's public endpoints.
func TestHolePunching(t *testing.T) {
	r := newRig(1)
	rendezvous := r.publicHost("rendezvous")
	realmA, _ := r.natRealm("natA", Config{Type: PortRestricted}, r.net.Root(), "10.0.0.1")
	realmB, _ := r.natRealm("natB", Config{Type: PortRestricted}, r.net.Root(), "10.1.0.1")
	a := r.net.AddHost("a", r.site, realmA, phys.HostConfig{})
	b := r.net.AddHost("b", r.site, realmB, phys.HostConfig{})

	// Both register with the rendezvous, which learns public endpoints.
	var pubA, pubB phys.Endpoint
	rs, _ := rendezvous.Listen(3478)
	rs.OnRecv = func(p *phys.Packet) {
		if p.Payload == "a" {
			pubA = p.Src
		} else {
			pubB = p.Src
		}
	}
	as, _ := a.Listen(100)
	bs, _ := b.Listen(100)
	aGot, bGot := 0, 0
	as.OnRecv = func(p *phys.Packet) { aGot++ }
	bs.OnRecv = func(p *phys.Packet) { bGot++ }
	as.Send(phys.Endpoint{IP: rendezvous.IP(), Port: 3478}, 10, "a")
	bs.Send(phys.Endpoint{IP: rendezvous.IP(), Port: 3478}, 10, "b")
	r.s.Run()
	if pubA.IsZero() || pubB.IsZero() {
		t.Fatal("registration failed")
	}

	// Simultaneous-open: each sends to the other's public endpoint. The
	// first packets may be filtered (no outbound state yet on the remote
	// NAT); the retries punch through.
	for i := 0; i < 3; i++ {
		as.Send(pubB, 10, "punch")
		bs.Send(pubA, 10, "punch")
		r.s.RunFor(100 * sim.Millisecond)
	}
	if aGot == 0 || bGot == 0 {
		t.Fatalf("hole punching failed: aGot=%d bGot=%d", aGot, bGot)
	}
}

// Hole punching fails when one side is symmetric and the other
// port-restricted: the symmetric NAT allocates a new port for the punch
// flow that the other side can't predict.
func TestSymmetricDefeatsHolePunch(t *testing.T) {
	r := newRig(1)
	rendezvous := r.publicHost("rendezvous")
	realmA, _ := r.natRealm("natA", Config{Type: Symmetric}, r.net.Root(), "10.0.0.1")
	realmB, _ := r.natRealm("natB", Config{Type: PortRestricted}, r.net.Root(), "10.1.0.1")
	a := r.net.AddHost("a", r.site, realmA, phys.HostConfig{})
	b := r.net.AddHost("b", r.site, realmB, phys.HostConfig{})

	var pubA, pubB phys.Endpoint
	rs, _ := rendezvous.Listen(3478)
	rs.OnRecv = func(p *phys.Packet) {
		if p.Payload == "a" {
			pubA = p.Src
		} else {
			pubB = p.Src
		}
	}
	as, _ := a.Listen(100)
	bs, _ := b.Listen(100)
	aGot, bGot := 0, 0
	as.OnRecv = func(p *phys.Packet) { aGot++ }
	bs.OnRecv = func(p *phys.Packet) { bGot++ }
	as.Send(phys.Endpoint{IP: rendezvous.IP(), Port: 3478}, 10, "a")
	bs.Send(phys.Endpoint{IP: rendezvous.IP(), Port: 3478}, 10, "b")
	r.s.Run()

	for i := 0; i < 5; i++ {
		as.Send(pubB, 10, "punch")
		bs.Send(pubA, 10, "punch")
		r.s.RunFor(100 * sim.Millisecond)
	}
	// B's packets target A's rendezvous mapping, but A's packets to B
	// use a *different* symmetric mapping, so B's NAT filter admits
	// nothing... and A's NAT filters B (wrong source for the
	// rendezvous-derived mapping? B is an unknown peer on that mapping).
	if aGot != 0 || bGot != 0 {
		t.Fatalf("symmetric NAT should defeat the punch: aGot=%d bGot=%d", aGot, bGot)
	}
}

// Hairpin translation: two hosts behind the same NAT exchanging packets via
// the NAT's public endpoint works only when hairpin is enabled. This is the
// exact mechanism behind the paper's slow UFL-UFL shortcut setup (Fig. 4).
func TestHairpin(t *testing.T) {
	for _, hairpin := range []bool{true, false} {
		r := newRig(1)
		server := r.publicHost("server")
		realm, nat := r.natRealm("nat", Config{Type: PortRestricted, Hairpin: hairpin}, r.net.Root(), "10.0.0.1")
		a := r.net.AddHost("a", r.site, realm, phys.HostConfig{})
		b := r.net.AddHost("b", r.site, realm, phys.HostConfig{})

		// Both open mappings via the public server.
		var pubB phys.Endpoint
		ss, _ := server.Listen(3478)
		ss.OnRecv = func(p *phys.Packet) {
			if p.Payload == "b" {
				pubB = p.Src
			}
		}
		as, _ := a.Listen(100)
		bs, _ := b.Listen(100)
		bGot := 0
		bs.OnRecv = func(p *phys.Packet) { bGot++ }
		as.Send(phys.Endpoint{IP: server.IP(), Port: 3478}, 10, "a")
		bs.Send(phys.Endpoint{IP: server.IP(), Port: 3478}, 10, "b")
		r.s.Run()

		// B must also "punch" toward A's... for simplicity both send to
		// each other's public endpoint (hairpin simultaneous open).
		for i := 0; i < 3; i++ {
			as.Send(pubB, 10, "hairpin")
			bs.Send(pubB, 10, "keepalive-self") // keeps B's mapping warm
			r.s.RunFor(50 * sim.Millisecond)
		}
		if hairpin && bGot == 0 {
			t.Error("hairpin NAT dropped hairpin traffic")
		}
		if !hairpin {
			if bGot != 0 {
				t.Error("no-hairpin NAT delivered hairpin traffic")
			}
			if nat.Drops["hairpin"] == 0 {
				t.Errorf("hairpin drops not counted: %v", nat.Drops)
			}
		}
	}
}

// Two hosts behind the same NAT can always talk via private addresses.
func TestSameRealmPrivateTraffic(t *testing.T) {
	r := newRig(1)
	realm, _ := r.natRealm("nat", Config{Type: PortRestricted}, r.net.Root(), "10.0.0.1")
	a := r.net.AddHost("a", r.site, realm, phys.HostConfig{})
	b := r.net.AddHost("b", r.site, realm, phys.HostConfig{})
	_, n := echo(b, 100)
	as, _ := a.Listen(0)
	got := 0
	as.OnRecv = func(p *phys.Packet) { got++ }
	as.Send(phys.Endpoint{IP: b.IP(), Port: 100}, 10, nil)
	r.s.Run()
	if *n != 1 || got != 1 {
		t.Fatalf("private exchange failed: n=%d got=%d", *n, got)
	}
}

// Nested NATs (the paper's node034: VMware NAT inside wireless router
// inside ISP NAT): outbound traffic traverses all levels and replies come
// back through the chain.
func TestNestedNATs(t *testing.T) {
	r := newRig(1)
	server := r.publicHost("server")
	isp, _ := r.natRealm("isp", Config{Type: PortRestricted}, r.net.Root(), "100.64.0.1")
	wifi, _ := r.natRealm("wifi", Config{Type: PortRestricted}, isp, "192.168.1.1")
	vmware, _ := r.natRealm("vmware", Config{Type: PortRestricted, Hairpin: true}, wifi, "172.20.0.1")
	vm := r.net.AddHost("node034", r.site, vmware, phys.HostConfig{})

	ssock, _ := server.Listen(500)
	var observed phys.Endpoint
	ssock.OnRecv = func(p *phys.Packet) {
		observed = p.Src
		ssock.Send(p.Src, 10, "reply")
	}
	vs, _ := vm.Listen(0)
	got := 0
	vs.OnRecv = func(p *phys.Packet) { got++ }
	vs.Send(phys.Endpoint{IP: server.IP(), Port: 500}, 10, "hi")
	r.s.Run()

	if got != 1 {
		t.Fatal("reply failed to traverse 3 nested NATs")
	}
	// The server must see the outermost (ISP) NAT's address space.
	if observed.IP.String()[:4] != "128." {
		t.Fatalf("server observed %v, want outermost public IP", observed)
	}
}

// Expired mappings are rejected inbound and re-created fresh outbound with
// a new public port (the "NAT IP/port translation changes" of §V-E).
func TestMappingExpiry(t *testing.T) {
	r := newRig(1)
	peer := r.publicHost("peer")
	realm, nat := r.natRealm("nat", Config{Type: PortRestricted, MappingTTL: 30 * sim.Second}, r.net.Root(), "10.0.0.1")
	inside := r.net.AddHost("inside", r.site, realm, phys.HostConfig{})

	var pubs []phys.Endpoint
	ps, _ := peer.Listen(600)
	ps.OnRecv = func(p *phys.Packet) { pubs = append(pubs, p.Src) }
	is, _ := inside.Listen(100)
	rcvd := 0
	is.OnRecv = func(p *phys.Packet) { rcvd++ }

	is.Send(phys.Endpoint{IP: peer.IP(), Port: 600}, 10, nil)
	r.s.Run()
	// Let the mapping expire, then have the peer try the old endpoint.
	r.s.RunUntil(r.s.Now().Add(60 * sim.Second))
	ps.Send(pubs[0], 10, nil)
	r.s.Run()
	if rcvd != 0 {
		t.Fatal("expired mapping admitted inbound")
	}
	if nat.Drops["nomapping"] == 0 {
		t.Fatalf("drops = %v", nat.Drops)
	}
	if nat.Mappings() != 0 {
		t.Fatalf("live mappings = %d, want 0", nat.Mappings())
	}

	// New outbound flow gets a new public port.
	is.Send(phys.Endpoint{IP: peer.IP(), Port: 600}, 10, nil)
	r.s.Run()
	if len(pubs) != 2 {
		t.Fatalf("peer observations = %d", len(pubs))
	}
	if pubs[0] == pubs[1] {
		t.Fatal("expired mapping's public port reused immediately")
	}
}

// Keepalives sent below the idle-expiry interval hold a mapping open
// indefinitely: after many TTL multiples of sub-TTL traffic the peer can
// still reach the inside host through the original public endpoint. This
// is the contract overlay keepalive pings depend on (PingInterval must sit
// under the deployment's NAT timeout).
func TestKeepaliveSustainsMapping(t *testing.T) {
	r := newRig(1)
	peer := r.publicHost("peer")
	ttl := 30 * sim.Second
	realm, nat := r.natRealm("nat", Config{Type: PortRestricted, MappingTTL: ttl}, r.net.Root(), "10.0.0.1")
	inside := r.net.AddHost("inside", r.site, realm, phys.HostConfig{})

	var pubs []phys.Endpoint
	ps, _ := peer.Listen(600)
	ps.OnRecv = func(p *phys.Packet) { pubs = append(pubs, p.Src) }
	is, _ := inside.Listen(100)
	rcvd := 0
	is.OnRecv = func(p *phys.Packet) { rcvd++ }

	// Keepalive at TTL/2 for 10×TTL of virtual time.
	for i := 0; i < 20; i++ {
		is.Send(phys.Endpoint{IP: peer.IP(), Port: 600}, 10, nil)
		r.s.RunUntil(r.s.Now().Add(ttl / 2))
	}
	if len(pubs) != 20 {
		t.Fatalf("keepalives delivered = %d, want 20", len(pubs))
	}
	for _, p := range pubs[1:] {
		if p != pubs[0] {
			t.Fatalf("mapping churned under keepalive: %v vs %v", p, pubs[0])
		}
	}
	if nat.Mappings() != 1 {
		t.Fatalf("live mappings = %d, want 1", nat.Mappings())
	}
	// The peer can still reach inside through the original endpoint.
	ps.Send(pubs[0], 10, nil)
	r.s.Run()
	if rcvd != 1 {
		t.Fatal("sustained mapping rejected inbound")
	}
}

// SetType relaxes the discipline in place: flows created while the NAT was
// symmetric used per-destination ports, and after relaxing to full-cone a
// brand-new outbound flow gets one stable mapping a third party can use.
func TestSetTypeRelaxesFiltering(t *testing.T) {
	r := newRig(1)
	p1 := r.publicHost("p1")
	p2 := r.publicHost("p2")
	third := r.publicHost("third")
	realm, nat := r.natRealm("nat", Config{Type: Symmetric}, r.net.Root(), "10.0.0.1")
	inside := r.net.AddHost("inside", r.site, realm, phys.HostConfig{})

	var e1, e2 phys.Endpoint
	s1, _ := p1.Listen(700)
	s1.OnRecv = func(p *phys.Packet) { e1 = p.Src }
	s2, _ := p2.Listen(700)
	s2.OnRecv = func(p *phys.Packet) { e2 = p.Src }
	isock, _ := inside.Listen(100)
	rcvd := 0
	isock.OnRecv = func(p *phys.Packet) { rcvd++ }
	isock.Send(phys.Endpoint{IP: p1.IP(), Port: 700}, 10, nil)
	isock.Send(phys.Endpoint{IP: p2.IP(), Port: 700}, 10, nil)
	r.s.Run()
	if e1.Port == e2.Port {
		t.Fatal("symmetric phase reused the public port")
	}

	// Relax to full-cone: a fresh flow from a new inner port maps once,
	// and an unrelated third party can send through it.
	nat.SetType(FullCone)
	if nat.Type() != FullCone {
		t.Fatal("SetType did not take")
	}
	var e3 phys.Endpoint
	s1.OnRecv = func(p *phys.Packet) { e3 = p.Src }
	is2, _ := inside.Listen(101)
	got := 0
	is2.OnRecv = func(p *phys.Packet) { got++ }
	is2.Send(phys.Endpoint{IP: p1.IP(), Port: 700}, 10, nil)
	r.s.Run()
	if e3.IsZero() {
		t.Fatal("post-relax flow not delivered")
	}
	tsock, _ := third.Listen(0)
	tsock.Send(e3, 10, nil)
	r.s.Run()
	if got != 1 {
		t.Fatal("full-cone mapping filtered a third party after SetType")
	}
}

func TestFirewallPinholes(t *testing.T) {
	r := newRig(1)
	outsider := r.publicHost("outsider")
	fw := NewFirewall("sitefw", 0, r.s.Now)
	realm := r.net.AddRealm("campus", r.net.Root(), fw, phys.MustParseIP("128.227.0.1"))
	inside := r.net.AddHost("inside", r.site, realm, phys.HostConfig{})

	isock, _ := inside.Listen(100)
	rcvd := 0
	isock.OnRecv = func(p *phys.Packet) { rcvd++ }
	osock, _ := outsider.Listen(900)
	orecv := 0
	osock.OnRecv = func(p *phys.Packet) { orecv++ }

	// Unsolicited inbound: dropped.
	osock.Send(phys.Endpoint{IP: inside.IP(), Port: 100}, 10, nil)
	r.s.Run()
	if rcvd != 0 || fw.Drops["unsolicited"] != 1 {
		t.Fatalf("unsolicited admitted: rcvd=%d drops=%v", rcvd, fw.Drops)
	}

	// Outbound opens a pinhole; the reply is admitted. Addresses are
	// not translated by a firewall.
	isock.Send(phys.Endpoint{IP: outsider.IP(), Port: 900}, 10, nil)
	r.s.Run()
	if orecv != 1 {
		t.Fatal("outbound blocked")
	}
	osock.Send(phys.Endpoint{IP: inside.IP(), Port: 100}, 10, nil)
	r.s.Run()
	if rcvd != 1 {
		t.Fatal("reply through pinhole blocked")
	}
}

func TestFirewallStaticAllowPort(t *testing.T) {
	r := newRig(1)
	outsider := r.publicHost("outsider")
	// ncgrid.org style: one UDP port statically open.
	fw := NewFirewall("ncgrid", 0, r.s.Now, 40000)
	realm := r.net.AddRealm("ncgrid", r.net.Root(), fw, phys.MustParseIP("152.0.0.1"))
	inside := r.net.AddHost("inside", r.site, realm, phys.HostConfig{})
	_, n := echo(inside, 40000)
	osock, _ := outsider.Listen(0)
	got := 0
	osock.OnRecv = func(p *phys.Packet) { got++ }
	osock.Send(phys.Endpoint{IP: inside.IP(), Port: 40000}, 10, nil)
	r.s.Run()
	if *n != 1 || got != 1 {
		t.Fatalf("static allow port failed: n=%d got=%d", *n, got)
	}
	if fw.Name() != "ncgrid" {
		t.Fatal("Name")
	}
}

func TestFirewallPinholeExpiry(t *testing.T) {
	r := newRig(1)
	outsider := r.publicHost("outsider")
	fw := NewFirewall("fw", 10*sim.Second, r.s.Now)
	realm := r.net.AddRealm("campus", r.net.Root(), fw, phys.MustParseIP("128.227.0.1"))
	inside := r.net.AddHost("inside", r.site, realm, phys.HostConfig{})
	isock, _ := inside.Listen(100)
	rcvd := 0
	isock.OnRecv = func(p *phys.Packet) { rcvd++ }
	osock, _ := outsider.Listen(900)

	isock.Send(phys.Endpoint{IP: outsider.IP(), Port: 900}, 10, nil)
	r.s.Run()
	r.s.RunUntil(r.s.Now().Add(30 * sim.Second))
	osock.Send(phys.Endpoint{IP: inside.IP(), Port: 100}, 10, nil)
	r.s.Run()
	if rcvd != 0 {
		t.Fatal("expired pinhole admitted inbound")
	}
}

// Property: for a cone NAT, outbound translation is stable (same inner
// endpoint always maps to the same public port while unexpired) and
// inbound inverts it exactly.
func TestQuickNATInverse(t *testing.T) {
	f := func(ports []uint16, typRaw uint8) bool {
		if len(ports) == 0 || len(ports) > 30 {
			return true
		}
		typ := NATType(typRaw % 3) // cone variants
		r := newRig(9)
		peer := r.publicHost("peer")
		realm, nat := r.natRealm("nat", Config{Type: typ}, r.net.Root(), "10.0.0.1")
		inside := r.net.AddHost("inside", r.site, realm, phys.HostConfig{})
		sock, err := peer.Listen(600)
		if err != nil {
			return false
		}
		observed := map[uint16]phys.Endpoint{} // inner port -> public EP
		sock.OnRecv = func(p *phys.Packet) {
			srcPort := p.Payload.(uint16)
			if prev, ok := observed[srcPort]; ok && prev != p.Src {
				t.Errorf("mapping for inner port %d changed: %v -> %v", srcPort, prev, p.Src)
			}
			observed[srcPort] = p.Src
			sock.Send(p.Src, 10, srcPort) // echo back through the mapping
		}
		echoed := map[uint16]bool{}
		for _, port := range ports {
			port := port%1000 + 1000
			is, err := inside.Listen(port)
			if err != nil {
				continue // duplicate port in the random input
			}
			is.OnRecv = func(p *phys.Packet) { echoed[p.Dst.Port] = true }
			is.Send(phys.Endpoint{IP: peer.IP(), Port: 600}, 10, port)
			is.Send(phys.Endpoint{IP: peer.IP(), Port: 600}, 10, port)
		}
		r.s.Run()
		// Every bound inner port must have received its echo (inbound
		// translation inverted the mapping).
		for port := range observed {
			if !echoed[port] {
				return false
			}
		}
		_ = nat
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Fatal(err)
	}
}
