package natsim

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"wow/internal/phys"
	"wow/internal/sim"
)

// These tests pin the shard-safety contract of the middleboxes: running a
// NAT scenario on the parallel engine — outbound translation on the
// sender's shard, inbound descent deferred to the realm's owning shard —
// must produce exactly the outcomes of the classic synchronous pipeline,
// and must not depend on how many workers execute the shard windows.
//
// The traffic plans space events further apart than the WAN flight time:
// the unsharded pipeline translates inbound packets at send time while the
// sharded one translates at arrival, so the two are equivalent exactly when
// no mapping-creating event lands inside a packet's flight window. The
// scenario fabric has zero jitter and zero loss, so the RNG is never
// consulted and runs are comparable event for event.

// natOutcome is everything observable of one scenario run.
type natOutcome struct {
	echoes, bGot, cGot int
	bDrops, cDrops     string
	bMaps, cMaps       int
	stats              string
}

func dropsString(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%d ", k, m[k])
	}
	return b.String()
}

// runNATScenario replays a deterministic traffic plan over {public echo
// server, host b behind a NAT of type tb, host c behind a NAT of type tc}.
// shards<=0 builds the classic unsharded network; otherwise the sharded
// engine with the given worker count. Plan bytes alternate b->server and
// c->server sends (which create and exercise NAT mappings) with
// server-initiated probes at NAT public ports (which hit or miss mappings
// subject to each type's filtering discipline).
func runNATScenario(seed int64, shards, workers int, tb, tc NATType, plan []byte) (natOutcome, uint64) {
	latency := phys.UniformLatency(
		phys.PathModel{OneWay: sim.Millisecond},
		phys.PathModel{OneWay: 20 * sim.Millisecond},
	)
	var (
		net *phys.Network
		eng *sim.Sharded
		s   *sim.Simulator
	)
	if shards > 0 {
		eng = sim.NewSharded(seed, shards, workers)
		defer eng.Close()
		net = phys.NewShardedNetwork(eng, latency)
	} else {
		s = sim.New(seed)
		net = phys.NewNetwork(s, latency)
	}
	pubSite := net.AddSite("pub")
	lanSiteB := net.AddSite("lanB")
	lanSiteC := net.AddSite("lanC")
	if eng != nil && shards > 1 {
		floor, ok := net.CrossShardFloor()
		if !ok {
			panic("nat scenario: no cross-shard site pair")
		}
		eng.SetLookahead(floor)
	}
	clockAt := func(site *phys.Site) func() sim.Time {
		if eng != nil {
			return eng.Shard(site.Shard()).Now
		}
		return s.Now
	}
	server := net.AddHost("server", pubSite, net.Root(), phys.HostConfig{})
	natB := NewNAT("natB", Config{Type: tb}, net.Root().NextIP(), clockAt(lanSiteB))
	realmB := net.AddRealm("lanB", net.Root(), natB, phys.MustParseIP("10.0.0.1"))
	b := net.AddHost("b", lanSiteB, realmB, phys.HostConfig{})
	natC := NewNAT("natC", Config{Type: tc}, net.Root().NextIP(), clockAt(lanSiteC))
	realmC := net.AddRealm("lanC", net.Root(), natC, phys.MustParseIP("10.0.0.1"))
	c := net.AddHost("c", lanSiteC, realmC, phys.HostConfig{})

	out := natOutcome{}
	ss, _ := server.Listen(500)
	ss.OnRecv = func(p *phys.Packet) {
		out.echoes++
		ss.Send(p.Src, 16, "echo")
	}
	bs, _ := b.Listen(100)
	bs.OnRecv = func(*phys.Packet) { out.bGot++ }
	cs, _ := c.Listen(100)
	cs.OnRecv = func(*phys.Packet) { out.cGot++ }

	schedule := func(h *phys.Host, at sim.Time, f func()) {
		if eng != nil {
			eng.Shard(h.Shard()).At(at, f)
		} else {
			s.At(at, f)
		}
	}
	// Spacing must exceed the 20ms WAN flight so no plan event lands inside
	// another packet's flight window (see the file comment).
	const spacing = 25 * sim.Millisecond
	target := phys.Endpoint{IP: server.IP(), Port: 500}
	for i, v := range plan {
		at := sim.Time(i+1) * sim.Time(spacing)
		switch v % 4 {
		case 0:
			schedule(b, at, func() { bs.Send(target, 32, "b") })
		case 1:
			schedule(c, at, func() { cs.Send(target, 32, "c") })
		case 2:
			// Probe a low NAT public port: hits a real mapping once b has
			// sent (then each type's filter decides), misses otherwise.
			port := uint16(1024 + i%4)
			schedule(server, at, func() { ss.Send(phys.Endpoint{IP: natB.PublicIP(), Port: port}, 32, "probe") })
		case 3:
			// Guaranteed-unmapped port on c's NAT: always a nomapping drop.
			port := uint16(4000 + i)
			schedule(server, at, func() { ss.Send(phys.Endpoint{IP: natC.PublicIP(), Port: port}, 32, "probe") })
		}
	}
	horizon := sim.Time(len(plan)+2) * sim.Time(spacing)
	horizon = horizon.Add(sim.Second)
	if eng != nil {
		eng.RunUntil(horizon)
	} else {
		s.RunUntil(horizon)
	}
	out.bDrops = dropsString(natB.Drops)
	out.cDrops = dropsString(natC.Drops)
	out.bMaps = natB.Mappings()
	out.cMaps = natC.Mappings()
	total := net.TotalStats()
	out.stats = total.String()
	var events uint64
	if eng != nil {
		events = eng.Processed()
	} else {
		events = s.Processed
	}
	return out, events
}

// TestQuickShardedNATEquivalence: for arbitrary NAT type pairs and traffic
// plans, the unsharded pipeline, the 1-shard engine, and the 2-shard engine
// under 1 and 2 workers all produce identical outcomes — same deliveries,
// same NAT drop tables, same live mappings, same merged network stats —
// and the 2-shard event trace is worker-invariant including event totals.
func TestQuickShardedNATEquivalence(t *testing.T) {
	f := func(rawB, rawC uint8, plan []byte) bool {
		if len(plan) > 48 {
			plan = plan[:48]
		}
		tb := NATType(rawB % 4)
		tc := NATType(rawC % 4)
		serial, _ := runNATScenario(11, 0, 0, tb, tc, plan)
		one, _ := runNATScenario(11, 1, 1, tb, tc, plan)
		two1, ev1 := runNATScenario(11, 2, 1, tb, tc, plan)
		two2, ev2 := runNATScenario(11, 2, 2, tb, tc, plan)
		if serial != one || serial != two1 {
			t.Logf("tb=%v tc=%v plan=%v\nserial: %+v\n1shard: %+v\n2shard: %+v", tb, tc, plan, serial, one, two1)
			return false
		}
		if two1 != two2 || ev1 != ev2 {
			t.Logf("worker variance: %+v (%d ev) vs %+v (%d ev)", two1, ev1, two2, ev2)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestShardedNATClockIsOwningShard: a NAT's idle-expiry reaping reads the
// owning shard's clock. After the engine advances, Mappings() must see the
// advanced time and reap an expired mapping exactly as the serial NAT does.
func TestShardedNATClockIsOwningShard(t *testing.T) {
	eng := sim.NewSharded(5, 2, 1)
	defer eng.Close()
	net := phys.NewShardedNetwork(eng, phys.UniformLatency(
		phys.PathModel{OneWay: sim.Millisecond},
		phys.PathModel{OneWay: 20 * sim.Millisecond},
	))
	pubSite := net.AddSite("pub")
	lanSite := net.AddSite("lan")
	floor, _ := net.CrossShardFloor()
	eng.SetLookahead(floor)
	net.AddHost("server", pubSite, net.Root(), phys.HostConfig{})
	nat := NewNAT("nat", Config{Type: PortRestricted, MappingTTL: 30 * sim.Second},
		net.Root().NextIP(), eng.Shard(lanSite.Shard()).Now)
	realm := net.AddRealm("lan", net.Root(), nat, phys.MustParseIP("10.0.0.1"))
	inside := net.AddHost("inside", lanSite, realm, phys.HostConfig{})

	is, _ := inside.Listen(100)
	pub := phys.Endpoint{IP: phys.MustParseIP("128.99.0.1"), Port: 9}
	eng.Shard(1).At(0, func() { is.Send(pub, 16, "x") })
	eng.RunUntil(sim.Time(sim.Second))
	if got := nat.Mappings(); got != 1 {
		t.Fatalf("live mappings = %d, want 1", got)
	}
	eng.RunFor(2 * sim.Minute)
	if got := nat.Mappings(); got != 0 {
		t.Fatalf("live mappings after TTL = %d, want 0 (stale clock?)", got)
	}
}
