// Package natsim models the NAT and firewall middleboxes of the WOW
// testbed. The paper's connection-establishment results (Figures 4 and 5)
// hinge on middlebox behaviour: the UFL NAT discards hairpin packets, the
// VMware per-host NAT supports hairpin translation, the ncgrid firewall
// admits a single UDP port, and node034 sits behind three nested NATs.
// Each of those devices is reproducible with the types in this package.
package natsim

import (
	"fmt"

	"wow/internal/phys"
	"wow/internal/sim"
)

// NATType selects the translation/filtering discipline, following the
// classic STUN taxonomy referenced by the paper's hole-punching citations.
type NATType int

const (
	// FullCone maps each inner endpoint to one public port and accepts
	// inbound from anyone.
	FullCone NATType = iota
	// RestrictedCone accepts inbound only from IPs the inner endpoint
	// has previously sent to.
	RestrictedCone
	// PortRestricted accepts inbound only from IP:port pairs previously
	// sent to. Hole punching still works when both sides send.
	PortRestricted
	// Symmetric allocates a distinct public port per (inner endpoint,
	// destination) pair, defeating ordinary hole punching.
	Symmetric
)

// String names the NAT type.
func (t NATType) String() string {
	switch t {
	case FullCone:
		return "full-cone"
	case RestrictedCone:
		return "restricted-cone"
	case PortRestricted:
		return "port-restricted"
	case Symmetric:
		return "symmetric"
	}
	return fmt.Sprintf("NATType(%d)", int(t))
}

// Config parameterizes a NAT device.
type Config struct {
	Type NATType
	// Hairpin enables hairpin (NAT loopback) translation: packets from
	// the inside addressed to the NAT's own public endpoint are turned
	// around. The paper's UFL NAT lacks it; the VMware NAT has it.
	Hairpin bool
	// MappingTTL expires idle mappings. Zero means 120s, a typical
	// consumer-router UDP timeout.
	MappingTTL sim.Duration
}

type mapKey struct {
	proto uint8
	inner phys.Endpoint
	dst   phys.Endpoint // used by symmetric NATs only (zero otherwise)
}

type mapping struct {
	key      mapKey
	inner    phys.Endpoint
	public   phys.Endpoint
	lastUsed sim.Time
	// peers records destinations the inner endpoint has contacted, for
	// restricted-cone filtering: IP -> set of ports.
	peers map[phys.IP]map[uint16]bool
}

// NAT is a network address translator implementing phys.Boundary.
type NAT struct {
	name     string
	cfg      Config
	publicIP phys.IP
	inner    *phys.Realm
	outer    *phys.Realm
	nextPort uint16
	byKey    map[mapKey]*mapping
	byPublic map[pubKey]*mapping
	clock    func() sim.Time
	// Drops counts packets dropped by this device, by reason.
	Drops map[string]int
}

// NewNAT creates a NAT that will own publicIP in its outer realm. The
// clock func supplies current virtual time (use sim.Simulator.Now).
func NewNAT(name string, cfg Config, publicIP phys.IP, clock func() sim.Time) *NAT {
	if cfg.MappingTTL == 0 {
		cfg.MappingTTL = 120 * sim.Second
	}
	return &NAT{
		name:     name,
		cfg:      cfg,
		publicIP: publicIP,
		nextPort: 1024,
		byKey:    make(map[mapKey]*mapping),
		byPublic: make(map[pubKey]*mapping),
		clock:    clock,
		Drops:    make(map[string]int),
	}
}

// Attach implements phys.Boundary, recording both sides of the boundary.
// The outer realm is where the NAT's public endpoints live: Attach rejects
// a public IP that collides with a host already registered there (a
// topology bug that would otherwise shadow the host from inbound routing),
// and the sharded engine pins the whole inner chain to one site through
// phys.Realm placement, so a NAT knows its owning timeline via the realms
// it is attached between.
func (n *NAT) Attach(inner, outer *phys.Realm) {
	if outer.HasHost(n.publicIP) {
		panic(fmt.Sprintf("natsim: NAT %s public IP %s collides with a host in outer realm %q",
			n.name, n.publicIP, outer.Name))
	}
	n.inner = inner
	n.outer = outer
}

// Claims implements phys.Boundary: the NAT claims its public address.
func (n *NAT) Claims(ip phys.IP) bool { return ip == n.publicIP }

// PublicIP returns the NAT's outer address.
func (n *NAT) PublicIP() phys.IP { return n.publicIP }

// Inner returns the private realm behind the NAT (nil before Attach).
func (n *NAT) Inner() *phys.Realm { return n.inner }

// Outer returns the realm the NAT's public endpoints live in (nil before
// Attach).
func (n *NAT) Outer() *phys.Realm { return n.outer }

// Name returns the device name.
func (n *NAT) Name() string { return n.name }

// Type returns the NAT discipline.
func (n *NAT) Type() NATType { return n.cfg.Type }

// SetType changes the NAT discipline in place, modelling a reconfigured or
// replaced middlebox (e.g. an admin relaxing a symmetric NAT to full-cone).
// Existing mappings survive; flows established under the old discipline
// keep their translations while new lookups follow the new key/filter
// rules. Used by the tunnel-upgrade experiments: a tunnel edge must
// upgrade itself to a direct edge once the NAT allows hole punching.
func (n *NAT) SetType(t NATType) { n.cfg.Type = t }

// Rebind flushes every translation table entry, modelling the NAT
// IP/port translation changes the paper observed on the home-broadband
// node034 (§V-E): ISP-driven re-binding that invalidates all established
// flows at once. Overlay links through the NAT break until the protocols
// re-establish them.
func (n *NAT) Rebind() {
	n.byKey = make(map[mapKey]*mapping)
	n.byPublic = make(map[pubKey]*mapping)
}

// Mappings reports the number of live (unexpired) mappings, reaping
// expired entries as it goes so the translation table doesn't accumulate
// dead flows between packets.
func (n *NAT) Mappings() int {
	now := n.clock()
	live := 0
	for k, m := range n.byKey {
		if now.Sub(m.lastUsed) <= n.cfg.MappingTTL {
			live++
			continue
		}
		delete(n.byKey, k)
		delete(n.byPublic, pubKey{k.proto, m.public.Port})
	}
	return live
}

func (n *NAT) key(proto uint8, inner, dst phys.Endpoint) mapKey {
	if n.cfg.Type == Symmetric {
		return mapKey{proto: proto, inner: inner, dst: dst}
	}
	return mapKey{proto: proto, inner: inner}
}

// pubKey identifies a public-side mapping: NATs keep separate UDP and TCP
// translation tables.
type pubKey struct {
	proto uint8
	port  uint16
}

func (n *NAT) allocPort(proto uint8) uint16 {
	for {
		p := n.nextPort
		n.nextPort++
		if n.nextPort == 0 {
			n.nextPort = 1024
		}
		if _, taken := n.byPublic[pubKey{proto, p}]; !taken {
			return p
		}
	}
}

func (n *NAT) lookupOrCreate(now sim.Time, proto uint8, inner, dst phys.Endpoint) *mapping {
	k := n.key(proto, inner, dst)
	m, ok := n.byKey[k]
	if ok && now.Sub(m.lastUsed) > n.cfg.MappingTTL {
		// Expired: a fresh flow gets a fresh public port, modelling
		// the NAT translation changes the paper observed on the
		// home-broadband node034.
		delete(n.byKey, k)
		delete(n.byPublic, pubKey{proto, m.public.Port})
		ok = false
	}
	if !ok {
		m = &mapping{
			key:    k,
			inner:  inner,
			public: phys.Endpoint{IP: n.publicIP, Port: n.allocPort(proto)},
			peers:  make(map[phys.IP]map[uint16]bool),
		}
		n.byKey[k] = m
		n.byPublic[pubKey{proto, m.public.Port}] = m
	}
	m.lastUsed = now
	if m.peers[dst.IP] == nil {
		m.peers[dst.IP] = make(map[uint16]bool)
	}
	m.peers[dst.IP][dst.Port] = true
	return m
}

// Outbound implements phys.Boundary: rewrite source to the public mapping.
// Hairpin packets (dst == own public IP) are dropped unless Hairpin is set.
func (n *NAT) Outbound(now sim.Time, p *phys.Packet) bool {
	if p.Dst.IP == n.publicIP && !n.cfg.Hairpin {
		n.Drops["hairpin"]++
		return false
	}
	m := n.lookupOrCreate(now, p.Proto, p.Src, p.Dst)
	p.Src = m.public
	return true
}

// Inbound implements phys.Boundary: translate a packet addressed to one of
// the NAT's public endpoints back to the mapped inner endpoint, subject to
// the type's filtering discipline.
func (n *NAT) Inbound(now sim.Time, p *phys.Packet) bool {
	m, ok := n.byPublic[pubKey{p.Proto, p.Dst.Port}]
	if ok && now.Sub(m.lastUsed) > n.cfg.MappingTTL {
		// Expired mapping: reap it now; the packet is dropped exactly as
		// if the entry had never existed.
		delete(n.byKey, m.key)
		delete(n.byPublic, pubKey{p.Proto, m.public.Port})
		ok = false
	}
	if !ok {
		n.Drops["nomapping"]++
		return false
	}
	switch n.cfg.Type {
	case FullCone:
		// accept from anyone
	case RestrictedCone:
		if m.peers[p.Src.IP] == nil {
			n.Drops["filtered"]++
			return false
		}
	case PortRestricted, Symmetric:
		if m.peers[p.Src.IP] == nil || !m.peers[p.Src.IP][p.Src.Port] {
			n.Drops["filtered"]++
			return false
		}
	}
	m.lastUsed = now
	p.Dst = m.inner
	return true
}

var _ phys.Boundary = (*NAT)(nil)
