package vip

import (
	"math/rand"
	"testing"
	"testing/quick"

	"wow/internal/sim"
)

// pipeCarrier is a test Carrier: a direct wire between two stacks with
// latency, loss probability, bandwidth and an up/down switch — enough to
// exercise ICMP/UDP/TCP behaviour without an overlay underneath.
type pipeCarrier struct {
	ip      IP
	s       *sim.Simulator
	peer    *pipeCarrier
	recv    func(*Packet)
	latency sim.Duration
	loss    float64
	bwBps   float64 // 0 = infinite
	busy    sim.Time
	up      bool
	rng     *rand.Rand
}

func newPipe(s *sim.Simulator, a, b IP, latency sim.Duration) (*pipeCarrier, *pipeCarrier) {
	rng := rand.New(rand.NewSource(42))
	ca := &pipeCarrier{ip: a, s: s, latency: latency, up: true, rng: rng}
	cb := &pipeCarrier{ip: b, s: s, latency: latency, up: true, rng: rng}
	ca.peer, cb.peer = cb, ca
	return ca, cb
}

func (c *pipeCarrier) LocalVIP() IP                { return c.ip }
func (c *pipeCarrier) Clock() *sim.Simulator       { return c.s }
func (c *pipeCarrier) SetReceiver(f func(*Packet)) { c.recv = f }
func (c *pipeCarrier) SendIP(p *Packet) {
	if !c.up || !c.peer.up {
		return
	}
	if c.loss > 0 && c.rng.Float64() < c.loss {
		return
	}
	depart := c.s.Now()
	if c.bwBps > 0 {
		tx := sim.Duration(float64(p.Size) / c.bwBps * float64(sim.Second))
		if c.busy > depart {
			depart = c.busy
		}
		depart = depart.Add(tx)
		c.busy = depart
	}
	peer := c.peer
	c.s.At(depart.Add(c.latency), func() {
		if peer.recv != nil && peer.up {
			peer.recv(p)
		}
	})
}

func pairedStacks(seed int64, latency sim.Duration, cfg StackConfig) (*sim.Simulator, *Stack, *Stack, *pipeCarrier, *pipeCarrier) {
	s := sim.New(seed)
	ca, cb := newPipe(s, MustParseIP("172.16.1.2"), MustParseIP("172.16.1.3"), latency)
	return s, NewStack(ca, cfg), NewStack(cb, cfg), ca, cb
}

func TestParseIP(t *testing.T) {
	ip := MustParseIP("172.16.1.2")
	if ip.String() != "172.16.1.2" {
		t.Fatalf("roundtrip %s", ip)
	}
	if _, err := ParseIP("172.16.1"); err == nil {
		t.Fatal("bad IP accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustParseIP did not panic")
		}
	}()
	MustParseIP("x")
}

func TestProtoString(t *testing.T) {
	if ProtoICMP.String() != "icmp" || ProtoTCP.String() != "tcp" || ProtoUDP.String() != "udp" {
		t.Fatal("proto names")
	}
	if Proto(99).String() != "proto(99)" {
		t.Fatal("unknown proto")
	}
}

func TestPingRoundTrip(t *testing.T) {
	s, sa, _, _, _ := pairedStacks(1, 20*sim.Millisecond, StackConfig{})
	var rtt sim.Duration
	ok := false
	sa.Ping(MustParseIP("172.16.1.3"), 64, 5*sim.Second, func(o bool, r sim.Duration) { ok, rtt = o, r })
	s.Run()
	if !ok {
		t.Fatal("ping lost")
	}
	if rtt != 40*sim.Millisecond {
		t.Fatalf("rtt = %v, want 40ms", rtt)
	}
}

func TestPingTimeout(t *testing.T) {
	s, sa, _, ca, _ := pairedStacks(2, 20*sim.Millisecond, StackConfig{})
	ca.up = false
	timedOut := false
	sa.Ping(MustParseIP("172.16.1.3"), 64, sim.Second, func(o bool, r sim.Duration) { timedOut = !o })
	s.Run()
	if !timedOut {
		t.Fatal("ping did not time out")
	}
	if sa.Stats.Get("icmp.timeout") != 1 {
		t.Fatalf("stats = %v", sa.Stats.String())
	}
}

func TestUDPDelivery(t *testing.T) {
	s, sa, sb, _, _ := pairedStacks(3, sim.Millisecond, StackConfig{})
	var gotMsg any
	var gotSrc IP
	if err := sb.ListenUDP(53, func(src IP, sp uint16, size int, msg any) {
		gotSrc, gotMsg = src, msg
	}); err != nil {
		t.Fatal(err)
	}
	if err := sb.ListenUDP(53, nil); err == nil {
		t.Fatal("double UDP bind allowed")
	}
	sa.SendUDP(sb.IP(), 1000, 53, 100, "query")
	s.Run()
	if gotMsg != "query" || gotSrc != sa.IP() {
		t.Fatalf("got %v from %v", gotMsg, gotSrc)
	}
	sb.CloseUDP(53)
	sa.SendUDP(sb.IP(), 1000, 53, 100, "query2")
	s.Run()
	if sb.Stats.Get("udp.unbound") != 1 {
		t.Fatal("unbound UDP not counted")
	}
}

func TestTCPHandshakeAndMessages(t *testing.T) {
	s, sa, sb, _, _ := pairedStacks(4, 10*sim.Millisecond, StackConfig{})
	var got []any
	if err := sb.ListenTCP(80, func(c *Conn) {
		c.OnMessage(func(size int, msg any) { got = append(got, msg) })
	}); err != nil {
		t.Fatal(err)
	}
	if err := sb.ListenTCP(80, nil); err == nil {
		t.Fatal("double listen allowed")
	}
	c := sa.DialTCP(sb.IP(), 80)
	connected := false
	c.OnConnect(func() { connected = true })
	if err := c.Send(500, "hello"); err != nil {
		t.Fatal(err)
	}
	if err := c.Send(500, "world"); err != nil {
		t.Fatal(err)
	}
	s.RunFor(5 * sim.Second)
	if !connected || !c.Established() {
		t.Fatal("handshake failed")
	}
	if len(got) != 2 || got[0] != "hello" || got[1] != "world" {
		t.Fatalf("messages = %v", got)
	}
	if c.AckedBytes() != 1000 {
		t.Fatalf("acked = %d", c.AckedBytes())
	}
}

func TestTCPLargeTransferNoLoss(t *testing.T) {
	s, sa, sb, _, _ := pairedStacks(5, 10*sim.Millisecond, StackConfig{})
	const total = 10 << 20 // 10 MB
	const chunkSize = 32 << 10
	var rcvd int
	var doneAt sim.Time
	sb.ListenTCP(22, func(c *Conn) {
		c.OnMessage(func(size int, msg any) {
			rcvd += size
			if rcvd == total {
				doneAt = s.Now()
			}
		})
	})
	c := sa.DialTCP(sb.IP(), 22)
	for sent := 0; sent < total; sent += chunkSize {
		c.Send(chunkSize, nil)
	}
	s.RunFor(2 * sim.Minute)
	if rcvd != total {
		t.Fatalf("received %d of %d", rcvd, total)
	}
	if c.Retransmits() != 0 {
		t.Fatalf("retransmits on lossless pipe: %d", c.Retransmits())
	}
	// Window-limited throughput: W/RTT = 34*1400/20ms ≈ 2.4 MB/s, so
	// 10 MB should take ~4.2s (plus slow start).
	el := doneAt.Seconds()
	if el < 3 || el > 10 {
		t.Fatalf("10MB over 20ms RTT took %.1fs, expected ~4-6s window-limited", el)
	}
}

func TestTCPThroughputIsWindowLimited(t *testing.T) {
	run := func(latency sim.Duration) float64 {
		s, sa, sb, _, _ := pairedStacks(6, latency, StackConfig{})
		const total = 4 << 20
		var rcvd int
		var doneAt sim.Time
		sb.ListenTCP(22, func(c *Conn) {
			c.OnMessage(func(size int, msg any) {
				rcvd += size
				if rcvd == total {
					doneAt = s.Now()
				}
			})
		})
		c := sa.DialTCP(sb.IP(), 22)
		for sent := 0; sent < total; sent += 16384 {
			c.Send(16384, nil)
		}
		s.RunFor(10 * sim.Minute)
		if rcvd != total {
			t.Fatalf("incomplete: %d", rcvd)
		}
		return float64(total) / doneAt.Seconds()
	}
	fast := run(5 * sim.Millisecond)
	slow := run(50 * sim.Millisecond)
	if fast < 3*slow {
		t.Fatalf("throughput not window limited: 10ms-RTT %.0f B/s vs 100ms-RTT %.0f B/s", fast, slow)
	}
}

func TestTCPLossRecovery(t *testing.T) {
	s, sa, sb, ca, cb := pairedStacks(7, 10*sim.Millisecond, StackConfig{})
	ca.loss, cb.loss = 0.02, 0.02
	const total = 1 << 20
	var rcvd int
	sb.ListenTCP(22, func(c *Conn) {
		c.OnMessage(func(size int, msg any) { rcvd += size })
	})
	c := sa.DialTCP(sb.IP(), 22)
	for sent := 0; sent < total; sent += 8192 {
		c.Send(8192, nil)
	}
	s.RunFor(10 * sim.Minute)
	if rcvd != total {
		t.Fatalf("lossy transfer incomplete: %d of %d (retransmits=%d)", rcvd, total, c.Retransmits())
	}
	if c.Retransmits() == 0 {
		t.Fatal("no retransmissions on 2% lossy pipe")
	}
}

func TestTCPInOrderDeliveryUnderLoss(t *testing.T) {
	s, sa, sb, ca, _ := pairedStacks(8, 10*sim.Millisecond, StackConfig{})
	ca.loss = 0.05
	var got []any
	sb.ListenTCP(22, func(c *Conn) {
		c.OnMessage(func(size int, msg any) { got = append(got, msg) })
	})
	c := sa.DialTCP(sb.IP(), 22)
	const n = 500
	for i := 0; i < n; i++ {
		c.Send(1000, i)
	}
	s.RunFor(10 * sim.Minute)
	if len(got) != n {
		t.Fatalf("got %d of %d messages", len(got), n)
	}
	for i, m := range got {
		if m != i {
			t.Fatalf("out of order at %d: %v", i, m)
		}
	}
}

func TestTCPSurvivesOutage(t *testing.T) {
	// The §V-C scenario: the path dies mid-transfer for several minutes
	// (VM migration) and the transfer resumes without application help.
	s, sa, sb, ca, cb := pairedStacks(9, 10*sim.Millisecond, StackConfig{})
	const total = 2 << 20
	var rcvd int
	sb.ListenTCP(22, func(c *Conn) {
		c.OnMessage(func(size int, msg any) { rcvd += size })
	})
	c := sa.DialTCP(sb.IP(), 22)
	for sent := 0; sent < total; sent += 16384 {
		c.Send(16384, nil)
	}
	s.RunFor(500 * sim.Millisecond)
	before := rcvd
	if before == 0 || before == total {
		t.Fatalf("outage window mistimed: rcvd=%d", before)
	}
	ca.up, cb.up = false, false
	s.RunFor(8 * sim.Minute) // paper's ~8 minute no-routability window
	if rcvd != before {
		t.Fatal("bytes moved during outage")
	}
	ca.up, cb.up = true, true
	s.RunFor(10 * sim.Minute)
	if rcvd != total {
		t.Fatalf("transfer did not resume: %d of %d", rcvd, total)
	}
	if closedErr := c.Closed(); closedErr {
		t.Fatal("connection aborted despite outage < GiveUp")
	}
}

func TestTCPGivesUpEventually(t *testing.T) {
	cfg := StackConfig{GiveUp: 2 * sim.Minute}
	s, sa, sb, ca, cb := pairedStacks(10, 10*sim.Millisecond, cfg)
	var closeErr error
	closed := false
	sb.ListenTCP(22, func(c *Conn) {})
	c := sa.DialTCP(sb.IP(), 22)
	c.OnClose(func(err error) { closed, closeErr = true, err })
	c.Send(1000, nil)
	s.RunFor(time500ms())
	ca.up, cb.up = false, false
	// Unacknowledged data must exist for the give-up clock to matter;
	// enqueue more once the path is dead.
	s.After(sim.Second, func() { c.Send(1000, nil) })
	s.RunFor(30 * sim.Minute)
	if !closed || closeErr != ErrTimeout {
		t.Fatalf("connection not aborted: closed=%v err=%v", closed, closeErr)
	}
	if err := c.Send(1, nil); err != ErrConnClosed {
		t.Fatalf("Send on dead conn: %v", err)
	}
}

func time500ms() sim.Duration { return 500 * sim.Millisecond }

func TestTCPCleanClose(t *testing.T) {
	s, sa, sb, _, _ := pairedStacks(11, 10*sim.Millisecond, StackConfig{})
	var serverClosed, clientClosed bool
	var serverErr, clientErr error
	sb.ListenTCP(22, func(c *Conn) {
		c.OnClose(func(err error) { serverClosed, serverErr = true, err })
	})
	c := sa.DialTCP(sb.IP(), 22)
	c.OnClose(func(err error) { clientClosed, clientErr = true, err })
	c.Send(5000, "payload")
	c.Close()
	s.RunFor(30 * sim.Second)
	if !serverClosed || serverErr != nil {
		t.Fatalf("server close: %v %v", serverClosed, serverErr)
	}
	if !clientClosed || clientErr != nil {
		t.Fatalf("client close: %v %v", clientClosed, clientErr)
	}
	if !c.Closed() {
		t.Fatal("client conn not closed")
	}
	if err := c.Send(1, nil); err != ErrConnClosed {
		t.Fatal("Send after Close allowed")
	}
}

func TestTCPDialToClosedPortTimesOut(t *testing.T) {
	cfg := StackConfig{GiveUp: sim.Minute}
	s, sa, sb, _, _ := pairedStacks(12, 10*sim.Millisecond, cfg)
	_ = sb
	var err error
	c := sa.DialTCP(sb.IP(), 9999)
	c.OnClose(func(e error) { err = e })
	s.RunFor(10 * sim.Minute)
	if err != ErrTimeout {
		t.Fatalf("err = %v", err)
	}
	if sb.Stats.Get("tcp.no_conn") == 0 {
		t.Fatal("SYN to closed port not counted")
	}
}

func TestTCPZeroSizeMessage(t *testing.T) {
	s, sa, sb, _, _ := pairedStacks(13, sim.Millisecond, StackConfig{})
	var got bool
	sb.ListenTCP(1, func(c *Conn) {
		c.OnMessage(func(size int, msg any) { got = size >= 1 && msg == "m" })
	})
	c := sa.DialTCP(sb.IP(), 1)
	c.Send(0, "m") // clamped to 1 byte
	s.RunFor(5 * sim.Second)
	if !got {
		t.Fatal("zero-size message lost")
	}
}

func TestTCPManyConnections(t *testing.T) {
	s, sa, sb, _, _ := pairedStacks(14, sim.Millisecond, StackConfig{})
	rcvd := 0
	sb.ListenTCP(80, func(c *Conn) {
		c.OnMessage(func(size int, msg any) { rcvd++ })
	})
	var conns []*Conn
	for i := 0; i < 50; i++ {
		c := sa.DialTCP(sb.IP(), 80)
		c.Send(100, i)
		conns = append(conns, c)
	}
	s.RunFor(30 * sim.Second)
	if rcvd != 50 {
		t.Fatalf("rcvd %d of 50", rcvd)
	}
	ports := make(map[uint16]bool)
	for _, c := range conns {
		if ports[c.LocalPort()] {
			t.Fatal("duplicate ephemeral port")
		}
		ports[c.LocalPort()] = true
	}
}

func TestStackMisdeliveryCounted(t *testing.T) {
	s := sim.New(15)
	ca, _ := newPipe(s, MustParseIP("1.0.0.1"), MustParseIP("1.0.0.2"), 0)
	st := NewStack(ca, StackConfig{})
	st.Stats.Inc("noop", 0)
	// Inject a packet addressed elsewhere.
	ca.recv(&Packet{Src: MustParseIP("9.9.9.9"), Dst: MustParseIP("8.8.8.8"), Proto: ProtoICMP})
	if st.Stats.Get("ip.misdelivered") != 1 {
		t.Fatal("misdelivery not counted")
	}
}

// Property: any interleaving of message sizes arrives complete and in
// order over a lossy pipe.
func TestQuickTCPStreamIntegrity(t *testing.T) {
	f := func(sizes []uint16, lossSeed int64) bool {
		if len(sizes) == 0 || len(sizes) > 60 {
			return true
		}
		s, sa, sb, ca, _ := pairedStacks(lossSeed, 5*sim.Millisecond, StackConfig{})
		ca.loss = 0.03
		var got []int
		sb.ListenTCP(7, func(c *Conn) {
			c.OnMessage(func(size int, msg any) { got = append(got, msg.(int)) })
		})
		c := sa.DialTCP(sb.IP(), 7)
		for i, sz := range sizes {
			c.Send(int(sz)%5000, i)
		}
		s.RunFor(20 * sim.Minute)
		if len(got) != len(sizes) {
			return false
		}
		for i := range got {
			if got[i] != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(99))}); err != nil {
		t.Fatal(err)
	}
}

func TestTCPKeepAliveProbesAndReaping(t *testing.T) {
	cfg := StackConfig{KeepAliveIdle: 10 * sim.Minute, KeepAliveProbes: 3}
	s, sa, sb, ca, cb := pairedStacks(20, 10*sim.Millisecond, cfg)
	var closedErr error
	closed := false
	sb.ListenTCP(22, func(c *Conn) {})
	c := sa.DialTCP(sb.IP(), 22)
	c.OnClose(func(err error) { closed, closedErr = true, err })
	c.Send(100, nil)
	s.RunFor(5 * sim.Second)
	if !c.Established() {
		t.Fatal("handshake failed")
	}
	// Idle but alive: probes keep the connection up indefinitely.
	s.RunFor(30 * sim.Minute)
	if closed {
		t.Fatalf("idle conn with live peer aborted: %v", closedErr)
	}
	if sa.Stats.Get("tcp.keepalive_probe") == 0 {
		t.Fatal("no probes sent on idle conn")
	}
	// Peer dies silently (no unacked data): probes reap the conn.
	ca.up, cb.up = false, false
	s.RunFor(sim.Hour)
	if !closed || closedErr != ErrTimeout {
		t.Fatalf("dead idle peer not reaped: closed=%v err=%v", closed, closedErr)
	}
}

func TestTCPWindowClampAndConfig(t *testing.T) {
	cfg := StackConfig{Window: 4, MSS: 1000}
	s, sa, sb, _, _ := pairedStacks(21, 25*sim.Millisecond, cfg)
	if sa.Config().Window != 4 || sa.Config().MSS != 1000 {
		t.Fatalf("config not applied: %+v", sa.Config())
	}
	const total = 1 << 20
	var rcvd int
	var doneAt sim.Time
	sb.ListenTCP(22, func(c *Conn) {
		c.OnMessage(func(size int, msg any) {
			rcvd += size
			if rcvd == total {
				doneAt = s.Now()
			}
		})
	})
	c := sa.DialTCP(sb.IP(), 22)
	for sent := 0; sent < total; sent += 16384 {
		c.Send(16384, nil)
	}
	s.RunFor(sim.Hour)
	if rcvd != total {
		t.Fatalf("incomplete: %d", rcvd)
	}
	// 4 segs × 1000 B / 50 ms RTT = 80 KB/s: the 1 MB takes ~13s.
	el := doneAt.Seconds()
	if el < 10 || el > 20 {
		t.Fatalf("tiny window transfer took %.1fs, want ~13s", el)
	}
}

func TestCloseTCPListener(t *testing.T) {
	s, sa, sb, _, _ := pairedStacks(22, sim.Millisecond, StackConfig{GiveUp: 30 * sim.Second})
	accepted := 0
	sb.ListenTCP(80, func(c *Conn) { accepted++ })
	c1 := sa.DialTCP(sb.IP(), 80)
	c1.Send(10, nil)
	s.RunFor(5 * sim.Second)
	sb.CloseTCPListener(80)
	c2 := sa.DialTCP(sb.IP(), 80)
	var err2 error
	c2.OnClose(func(e error) { err2 = e })
	c2.Send(10, nil)
	s.RunFor(2 * sim.Minute)
	if accepted != 1 {
		t.Fatalf("accepted = %d", accepted)
	}
	if err2 == nil {
		t.Fatal("dial to closed listener succeeded")
	}
	// The first connection survives the listener closing.
	if c1.Closed() {
		t.Fatal("established conn killed by listener close")
	}
}
