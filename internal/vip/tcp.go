package vip

import (
	"errors"
	"fmt"
	"sort"

	"wow/internal/sim"
)

// TCPSegment is one virtual TCP segment. Payload content is abstract: a
// segment covers Len bytes of the stream, and chunk boundaries (Ends)
// carry application messages that complete within the segment. Classic
// sequence-number semantics apply, with the FIN consuming one sequence
// number past the last payload byte.
type TCPSegment struct {
	SrcPort, DstPort uint16
	Kind             string // "syn", "synack", or "" for everything else
	Seq              int    // first payload byte offset (data/fin)
	Len              int    // payload bytes
	Ack              int    // cumulative acknowledgment (next expected offset)
	HasAck           bool
	FIN              bool
	// Probe marks a keepalive probe, soliciting an immediate ACK.
	Probe bool
	Ends  []chunkEnd
}

// chunkEnd marks an application message whose last byte is stream offset
// End-1; delivering the stream in order up to End delivers Msg.
type chunkEnd struct {
	End  int
	Size int
	Msg  any
}

type connKey struct {
	remote     IP
	remotePort uint16
	localPort  uint16
}

// Conn states.
const (
	stateSynSent = iota
	stateSynRcvd
	stateEstablished
	stateClosed
)

// ErrConnClosed is returned by Send on a closed connection.
var ErrConnClosed = errors.New("vip: connection closed")

// ErrTimeout is passed to OnClose when a connection abandons
// retransmission (no acknowledged progress within StackConfig.GiveUp).
var ErrTimeout = errors.New("vip: connection timed out")

// ErrReset is passed to OnClose when the remote rejects the connection.
var ErrReset = errors.New("vip: connection reset")

// chunk is one queued application write.
type chunk struct {
	start int
	size  int
	msg   any
}

// Conn is a reliable byte-stream connection with message framing. Writes
// enqueue (size, msg) chunks; the remote's OnMessage fires once the stream
// is delivered in order through each chunk's last byte. Congestion control
// is Reno-flavoured: slow start, AIMD, fast retransmit on triple duplicate
// ACKs, timeout recovery with exponential backoff.
type Conn struct {
	stack *Stack
	key   connKey
	state int

	// send side
	sndQ      []chunk
	sndTrim   int // index of first retained chunk in sndQ
	sndBytes  int
	sndUna    int
	sndNxt    int
	finSent   bool
	closedLoc bool
	cwnd      float64
	ssthresh  float64
	dupAcks   int

	rto          sim.Duration
	srtt, rttvar sim.Duration
	hasRTT       bool
	rtoTimer     sim.Timer
	timing       bool
	timedEnd     int
	timedAt      sim.Time
	lastProgress sim.Time

	// receive side
	rcvNxt    int
	rcvBytes  int
	remoteFin int // stream offset of FIN, -1 until seen
	oo        map[int]*TCPSegment

	onConnect func()
	onMessage func(size int, msg any)
	onClose   func(err error)
	closedCb  bool

	lastHeard sim.Time
	kaTimer   sim.Timer
	kaProbes  int

	retransmits int
}

// ListenTCP installs an accept callback for a port. The callback fires
// when an inbound connection completes its handshake.
func (s *Stack) ListenTCP(port uint16, accept func(*Conn)) error {
	if _, taken := s.listeners[port]; taken {
		return fmt.Errorf("vip: TCP port %d already listening on %s", port, s.IP())
	}
	s.listeners[port] = accept
	return nil
}

// CloseTCPListener removes a listener; established connections survive.
func (s *Stack) CloseTCPListener(port uint16) { delete(s.listeners, port) }

// DialTCP opens a connection to dst:port. Writes may be enqueued
// immediately; they flow once the handshake completes. Connection failure
// surfaces through OnClose.
func (s *Stack) DialTCP(dst IP, port uint16) *Conn {
	c := &Conn{
		stack:     s,
		key:       connKey{remote: dst, remotePort: port, localPort: s.ephemeralPort()},
		state:     stateSynSent,
		cwnd:      2,
		ssthresh:  float64(s.cfg.Window),
		rto:       sim.Second,
		remoteFin: -1,
		oo:        make(map[int]*TCPSegment),
	}
	c.lastProgress = s.sim.Now()
	s.conns[c.key] = c
	s.Stats.Inc("tcp.dialed", 1)
	c.sendControl("syn")
	c.armRTO()
	return c
}

// OnConnect registers the handshake-completion callback (dialer side).
func (c *Conn) OnConnect(f func()) { c.onConnect = f }

// OnMessage registers the in-order message delivery callback.
func (c *Conn) OnMessage(f func(size int, msg any)) { c.onMessage = f }

// OnClose registers the teardown callback; err is nil for a clean remote
// close, ErrTimeout/ErrReset otherwise.
func (c *Conn) OnClose(f func(err error)) { c.onClose = f }

// RemoteIP returns the peer's virtual address.
func (c *Conn) RemoteIP() IP { return c.key.remote }

// LocalPort returns the connection's local port.
func (c *Conn) LocalPort() uint16 { return c.key.localPort }

// ReceivedBytes reports in-order payload bytes delivered — the "file size
// on the client's local disk" axis of Figure 6.
func (c *Conn) ReceivedBytes() int { return c.rcvBytes }

// AckedBytes reports payload bytes acknowledged by the peer.
func (c *Conn) AckedBytes() int {
	if c.sndUna > c.sndBytes {
		return c.sndBytes
	}
	return c.sndUna
}

// QueuedBytes reports payload bytes enqueued locally.
func (c *Conn) QueuedBytes() int { return c.sndBytes }

// Retransmits reports how many segments were retransmitted.
func (c *Conn) Retransmits() int { return c.retransmits }

// Established reports whether the handshake has completed.
func (c *Conn) Established() bool { return c.state == stateEstablished }

// Closed reports whether the connection is fully torn down.
func (c *Conn) Closed() bool { return c.state == stateClosed }

// Send enqueues an application message of the given payload size.
func (c *Conn) Send(size int, msg any) error {
	if c.state == stateClosed || c.closedLoc {
		return ErrConnClosed
	}
	if size <= 0 {
		size = 1 // every message occupies at least one stream byte
	}
	c.sndQ = append(c.sndQ, chunk{start: c.sndBytes, size: size, msg: msg})
	c.sndBytes += size
	c.trySend()
	return nil
}

// Close flushes queued data, then sends a FIN. OnClose fires on the peer
// once its stream is fully delivered.
func (c *Conn) Close() {
	if c.state == stateClosed || c.closedLoc {
		return
	}
	c.closedLoc = true
	c.trySend()
}

// abort tears the connection down with an error.
func (c *Conn) abort(err error) {
	if c.state == stateClosed {
		return
	}
	c.state = stateClosed
	c.rtoTimer.Cancel()
	c.kaTimer.Cancel()
	delete(c.stack.conns, c.key)
	c.stack.Stats.Inc("tcp.aborted", 1)
	c.fireClose(err)
}

func (c *Conn) fireClose(err error) {
	if c.closedCb {
		return
	}
	c.closedCb = true
	if c.onClose != nil {
		c.onClose(err)
	}
}

// window returns the effective send window in segments.
func (c *Conn) window() float64 {
	w := c.cwnd
	if max := float64(c.stack.cfg.Window); w > max {
		w = max
	}
	if w < 1 {
		w = 1
	}
	return w
}

// sendControl emits a handshake segment.
func (c *Conn) sendControl(kind string) {
	seg := &TCPSegment{
		SrcPort: c.key.localPort, DstPort: c.key.remotePort,
		Kind: kind,
	}
	if kind == "synack" {
		seg.HasAck = true
	}
	c.emit(seg, tcpHdrSize)
}

func (c *Conn) emit(seg *TCPSegment, wire int) {
	c.stack.send(&Packet{
		Src: c.stack.IP(), Dst: c.key.remote, Proto: ProtoTCP,
		Size: ipHdrSize + wire,
		Seg:  seg,
	})
}

// endsInRange collects chunk boundaries inside [lo, hi).
func (c *Conn) endsInRange(lo, hi int) []chunkEnd {
	var out []chunkEnd
	q := c.sndQ[c.sndTrim:]
	i := sort.Search(len(q), func(i int) bool { return q[i].start+q[i].size > lo })
	for ; i < len(q); i++ {
		end := q[i].start + q[i].size
		if end > hi {
			break
		}
		out = append(out, chunkEnd{End: end, Size: q[i].size, Msg: q[i].msg})
	}
	return out
}

// trySend transmits as much of the stream as the window allows, then the
// FIN once everything is flushed and the connection is closing.
func (c *Conn) trySend() {
	if c.state != stateEstablished {
		return
	}
	mss := c.stack.cfg.MSS
	for c.sndNxt < c.sndBytes {
		inflight := float64(c.sndNxt-c.sndUna) / float64(mss)
		if inflight >= c.window() {
			break
		}
		n := c.sndBytes - c.sndNxt
		if n > mss {
			n = mss
		}
		// Advance sndNxt before emitting: a zero-latency carrier can
		// deliver the ACK synchronously and re-enter trySend, which
		// must then observe consistent send state.
		seq := c.sndNxt
		c.sndNxt += n
		c.sendData(seq, n)
	}
	if c.closedLoc && !c.finSent && c.sndNxt == c.sndBytes {
		c.finSent = true
		c.sendFIN()
	}
	c.armRTO()
}

func (c *Conn) sendData(seq, n int) {
	seg := &TCPSegment{
		SrcPort: c.key.localPort, DstPort: c.key.remotePort,
		Seq: seq, Len: n, Ack: c.rcvNxt, HasAck: true,
		Ends: c.endsInRange(seq, seq+n),
	}
	if !c.timing && seq+n == c.sndNxt {
		// Time only first transmissions at the send frontier (Karn).
		c.timing = true
		c.timedEnd = seq + n
		c.timedAt = c.stack.sim.Now()
	}
	c.stack.Stats.Inc("tcp.data_out", 1)
	c.emit(seg, tcpHdrSize+n)
}

func (c *Conn) sendFIN() {
	seg := &TCPSegment{
		SrcPort: c.key.localPort, DstPort: c.key.remotePort,
		Seq: c.sndBytes, FIN: true, Ack: c.rcvNxt, HasAck: true,
	}
	c.emit(seg, tcpHdrSize)
}

func (c *Conn) sendAck() {
	seg := &TCPSegment{
		SrcPort: c.key.localPort, DstPort: c.key.remotePort,
		Seq: c.sndNxt, Ack: c.rcvNxt, HasAck: true,
	}
	c.emit(seg, tcpHdrSize)
}

// outstanding reports whether anything needs the retransmission timer.
func (c *Conn) outstanding() bool {
	switch c.state {
	case stateSynSent, stateSynRcvd:
		return true
	case stateEstablished:
		return c.sndUna < c.sndNxt || (c.finSent && c.sndUna <= c.sndBytes)
	}
	return false
}

func (c *Conn) armRTO() {
	c.rtoTimer.Cancel()
	if !c.outstanding() {
		return
	}
	c.rtoTimer = c.stack.sim.After(c.rto, c.onTimeout)
}

// onTimeout retransmits the earliest outstanding item with exponential
// backoff, shrinking the congestion window to one segment (Tahoe-style
// timeout recovery). Connections abandon after GiveUp without progress —
// long enough to sit out a VM migration.
func (c *Conn) onTimeout() {
	if c.state == stateClosed {
		return
	}
	s := c.stack
	if s.sim.Now().Sub(c.lastProgress) > s.cfg.GiveUp {
		c.abort(ErrTimeout)
		return
	}
	c.retransmits++
	s.Stats.Inc("tcp.rto", 1)
	c.timing = false
	switch c.state {
	case stateSynSent:
		c.sendControl("syn")
	case stateSynRcvd:
		c.sendControl("synack")
	case stateEstablished:
		inflightSegs := float64(c.sndNxt-c.sndUna) / float64(s.cfg.MSS)
		c.ssthresh = inflightSegs / 2
		if c.ssthresh < 2 {
			c.ssthresh = 2
		}
		c.cwnd = 1
		c.dupAcks = 0
		if c.sndUna < c.sndNxt {
			// Go-back-N: everything past sndUna is presumed lost
			// (e.g. the whole window dropped during a migration
			// outage); slow start re-sends it as ACKs re-clock.
			c.sndNxt = c.sndUna
			if c.finSent {
				c.finSent = false // re-send FIN after the data
			}
			n := c.sndBytes - c.sndUna
			if n > s.cfg.MSS {
				n = s.cfg.MSS
			}
			if n > 0 {
				seq := c.sndNxt
				c.sndNxt += n
				c.sendData(seq, n)
			}
		} else if c.finSent {
			c.sendFIN()
		}
	}
	c.rto *= 2
	if c.rto > s.cfg.MaxRTO {
		c.rto = s.cfg.MaxRTO
	}
	c.armRTO()
}

// updateRTT folds an RTT sample into srtt/rttvar (RFC 6298 constants).
func (c *Conn) updateRTT(sample sim.Duration) {
	if !c.hasRTT {
		c.srtt = sample
		c.rttvar = sample / 2
		c.hasRTT = true
	} else {
		diff := c.srtt - sample
		if diff < 0 {
			diff = -diff
		}
		c.rttvar = (3*c.rttvar + diff) / 4
		c.srtt = (7*c.srtt + sample) / 8
	}
	c.rto = c.baseRTO()
}

// baseRTO computes the un-backed-off retransmission timeout from the
// smoothed RTT estimate, clamped to the configured bounds.
func (c *Conn) baseRTO() sim.Duration {
	if !c.hasRTT {
		return sim.Second
	}
	rto := c.srtt + 4*c.rttvar
	if rto < c.stack.cfg.MinRTO {
		rto = c.stack.cfg.MinRTO
	}
	if rto > c.stack.cfg.MaxRTO {
		rto = c.stack.cfg.MaxRTO
	}
	return rto
}

// handleTCP dispatches an inbound segment to its connection, creating one
// on SYN to a listening port.
func (s *Stack) handleTCP(p *Packet) {
	seg, ok := p.Seg.(*TCPSegment)
	if !ok {
		return
	}
	key := connKey{remote: p.Src, remotePort: seg.SrcPort, localPort: seg.DstPort}
	c, exists := s.conns[key]
	if !exists {
		if seg.Kind == "syn" {
			if _, listening := s.listeners[seg.DstPort]; listening {
				c = &Conn{
					stack:     s,
					key:       key,
					state:     stateSynRcvd,
					cwnd:      2,
					ssthresh:  float64(s.cfg.Window),
					rto:       sim.Second,
					remoteFin: -1,
					oo:        make(map[int]*TCPSegment),
				}
				c.lastProgress = s.sim.Now()
				s.conns[key] = c
				s.Stats.Inc("tcp.accepted", 1)
				c.sendControl("synack")
				c.armRTO()
				return
			}
		}
		s.Stats.Inc("tcp.no_conn", 1)
		return
	}
	c.handleSegment(seg)
}

func (c *Conn) handleSegment(seg *TCPSegment) {
	s := c.stack
	switch c.state {
	case stateSynSent:
		if seg.Kind == "synack" {
			c.establish()
			c.sendAck()
		}
		return
	case stateSynRcvd:
		if seg.Kind == "syn" {
			c.sendControl("synack") // duplicate SYN: our SYNACK was lost
			return
		}
		if seg.HasAck || seg.Len > 0 {
			c.establish()
			if cb, ok := s.listeners[c.key.localPort]; ok {
				cb(c)
			}
			// fall through to process the segment's contents
		} else {
			return
		}
	case stateClosed:
		return
	}

	c.lastHeard = s.sim.Now()
	c.kaProbes = 0

	if seg.Probe {
		// Keepalive probe: acknowledge immediately.
		c.sendAck()
	}

	progressed := false

	// --- acknowledgment processing ---
	if seg.HasAck {
		finSeq := c.sndBytes
		switch {
		case seg.Ack > c.sndUna:
			ackedSegs := float64(seg.Ack-c.sndUna) / float64(s.cfg.MSS)
			c.sndUna = seg.Ack
			if c.sndNxt < c.sndUna {
				c.sndNxt = c.sndUna
			}
			c.dupAcks = 0
			progressed = true
			// New data acknowledged: collapse any exponential
			// backoff back to the RTT-derived timeout (RFC 6298
			// §5.7), so recovery after an outage re-clocks at
			// RTT pace rather than at the backed-off ceiling.
			c.rto = c.baseRTO()
			if c.timing && seg.Ack >= c.timedEnd {
				c.updateRTT(s.sim.Now().Sub(c.timedAt))
				c.timing = false
			}
			if c.cwnd < c.ssthresh {
				c.cwnd += ackedSegs // slow start
			} else {
				c.cwnd += ackedSegs / c.cwnd // congestion avoidance
			}
			if c.cwnd > float64(s.cfg.Window) {
				c.cwnd = float64(s.cfg.Window)
			}
			c.trimAcked()
		case seg.Ack == c.sndUna && c.sndNxt > c.sndUna && seg.Len == 0 && !seg.FIN:
			c.dupAcks++
			if c.dupAcks == 3 {
				// Fast retransmit (Reno).
				s.Stats.Inc("tcp.fast_retransmit", 1)
				c.retransmits++
				inflightSegs := float64(c.sndNxt-c.sndUna) / float64(s.cfg.MSS)
				c.ssthresh = inflightSegs / 2
				if c.ssthresh < 2 {
					c.ssthresh = 2
				}
				c.cwnd = c.ssthresh
				c.timing = false
				n := c.sndNxt - c.sndUna
				if n > s.cfg.MSS {
					n = s.cfg.MSS
				}
				c.sendData(c.sndUna, n)
			}
		}
		if c.finSent && c.sndUna >= finSeq+1 {
			// Our FIN is acknowledged; if the remote's stream is
			// also done, tear down.
			c.maybeFinish()
		}
	}

	// --- payload / FIN processing ---
	if seg.Len > 0 || seg.FIN {
		c.receiveData(seg)
	}

	if progressed {
		c.lastProgress = s.sim.Now()
		c.trySend()
	}
	c.armRTO()
}

func (c *Conn) establish() {
	c.state = stateEstablished
	c.lastProgress = c.stack.sim.Now()
	c.lastHeard = c.stack.sim.Now()
	c.armKeepAlive()
	if c.onConnect != nil {
		c.onConnect()
	}
	c.trySend()
}

// armKeepAlive schedules the next idle check. Keepalive emulates the
// kernel behaviour that let the paper's long-lived NFS/PBS sessions ride
// out multi-minute migration outages yet eventually clears connections to
// crashed peers.
func (c *Conn) armKeepAlive() {
	idle := c.stack.cfg.KeepAliveIdle
	if idle < 0 || c.state != stateEstablished {
		return
	}
	c.kaTimer.Cancel()
	c.kaTimer = c.stack.sim.After(idle, c.keepAliveCheck)
}

func (c *Conn) keepAliveCheck() {
	if c.state != stateEstablished {
		return
	}
	s := c.stack
	idle := s.sim.Now().Sub(c.lastHeard)
	if idle < s.cfg.KeepAliveIdle {
		// Traffic arrived since; re-check when the idle window would
		// next elapse.
		c.kaTimer = s.sim.After(s.cfg.KeepAliveIdle-idle, c.keepAliveCheck)
		return
	}
	if c.kaProbes >= s.cfg.KeepAliveProbes {
		c.abort(ErrTimeout)
		return
	}
	c.kaProbes++
	s.Stats.Inc("tcp.keepalive_probe", 1)
	c.emit(&TCPSegment{
		SrcPort: c.key.localPort, DstPort: c.key.remotePort,
		Seq: c.sndNxt, Ack: c.rcvNxt, HasAck: true, Probe: true,
	}, tcpHdrSize)
	c.kaTimer = s.sim.After(75*sim.Second, c.keepAliveCheck)
}

// trimAcked drops fully acknowledged chunks from the front of the send
// queue; their bytes can never be retransmitted again.
func (c *Conn) trimAcked() {
	q := c.sndQ
	for c.sndTrim < len(q) && q[c.sndTrim].start+q[c.sndTrim].size <= c.sndUna {
		c.sndTrim++
	}
	if c.sndTrim > 4096 {
		c.sndQ = append([]chunk(nil), q[c.sndTrim:]...)
		c.sndTrim = 0
	}
}

// receiveData accepts in-order payload, buffers out-of-order segments and
// acknowledges every arrival (duplicate ACKs drive the sender's fast
// retransmit).
func (c *Conn) receiveData(seg *TCPSegment) {
	if seg.FIN && c.remoteFin < 0 {
		c.remoteFin = seg.Seq
	}
	switch {
	case seg.Len > 0 && seg.Seq == c.rcvNxt:
		c.acceptSegment(seg)
		// Drain contiguous out-of-order segments.
		for {
			next, ok := c.oo[c.rcvNxt]
			if !ok {
				break
			}
			delete(c.oo, c.rcvNxt)
			c.acceptSegment(next)
		}
	case seg.Len > 0 && seg.Seq > c.rcvNxt:
		c.oo[seg.Seq] = seg
		c.stack.Stats.Inc("tcp.out_of_order", 1)
	}
	if c.remoteFin >= 0 && c.rcvNxt == c.remoteFin {
		c.rcvNxt = c.remoteFin + 1 // consume the FIN
	}
	c.sendAck()
	c.maybeFinish()
}

func (c *Conn) acceptSegment(seg *TCPSegment) {
	c.rcvNxt = seg.Seq + seg.Len
	c.rcvBytes += seg.Len
	c.lastProgress = c.stack.sim.Now()
	for _, e := range seg.Ends {
		if c.onMessage != nil {
			c.onMessage(e.Size, e.Msg)
		}
	}
}

// maybeFinish completes teardown once both directions are done: the
// remote's FIN consumed, and (if we closed) our FIN acknowledged.
func (c *Conn) maybeFinish() {
	remoteDone := c.remoteFin >= 0 && c.rcvNxt == c.remoteFin+1
	if !remoteDone {
		return
	}
	if !c.closedLoc {
		// Remote closed first: flush our side and close too.
		c.Close()
		c.fireClose(nil)
		return
	}
	localDone := c.finSent && c.sndUna >= c.sndBytes+1
	if localDone && c.state != stateClosed {
		c.state = stateClosed
		c.rtoTimer.Cancel()
		c.kaTimer.Cancel()
		delete(c.stack.conns, c.key)
		c.stack.Stats.Inc("tcp.closed", 1)
		c.fireClose(nil)
	}
}
