package vip

import (
	"fmt"

	"wow/internal/metrics"
	"wow/internal/sim"
)

// StackConfig tunes the transport layer. Zero values select defaults.
type StackConfig struct {
	// MSS is the TCP maximum segment payload in bytes.
	MSS int
	// Window is the TCP flow-control window in segments; cwnd never
	// exceeds it. The default (40 segments ≈ 56 KB at MSS 1400) gives
	// the wide-area window-limited throughput observed in Table II.
	Window int
	// MinRTO / MaxRTO clamp the retransmission timeout.
	MinRTO, MaxRTO sim.Duration
	// GiveUp abandons a connection after this much time without any
	// acknowledged progress. The default 15 minutes lets connections
	// survive the ~8 minute migration outages of §V-C, as real TCP
	// stacks did in the paper's experiments.
	GiveUp sim.Duration
	// KeepAliveIdle starts keepalive probing on a connection idle this
	// long; after KeepAliveProbes unanswered probes the connection
	// aborts with ErrTimeout. The default mirrors Linux: 2 hours idle,
	// 9 probes at 75 s — long enough that migration outages pass
	// unnoticed (as the paper's NFS/PBS sessions did), short enough
	// that crashed peers are eventually cleaned up. Negative disables.
	KeepAliveIdle   sim.Duration
	KeepAliveProbes int
}

func (c *StackConfig) fillDefaults() {
	if c.MSS == 0 {
		c.MSS = 1400
	}
	if c.Window == 0 {
		c.Window = 40
	}
	if c.MinRTO == 0 {
		c.MinRTO = 200 * sim.Millisecond
	}
	if c.MaxRTO == 0 {
		c.MaxRTO = 60 * sim.Second
	}
	if c.GiveUp == 0 {
		c.GiveUp = 15 * sim.Minute
	}
	if c.KeepAliveIdle == 0 {
		c.KeepAliveIdle = 2 * sim.Hour
	}
	if c.KeepAliveProbes == 0 {
		c.KeepAliveProbes = 9
	}
}

// Stack is a per-node virtual IP endpoint: ICMP echo responder, UDP ports
// and TCP connections, all tunnelled through a Carrier.
type Stack struct {
	carrier Carrier
	cfg     StackConfig
	sim     *sim.Simulator

	pingID    uint64
	pingSeq   int
	pings     map[uint64]*pingState
	udp       map[uint16]UDPHandler
	listeners map[uint16]func(*Conn)
	conns     map[connKey]*Conn
	nextPort  uint16

	// Stats counts stack events (packets in/out, retransmits, resets).
	Stats metrics.Counter
}

// UDPHandler receives a datagram's source address and payload.
type UDPHandler func(src IP, srcPort uint16, size int, msg any)

type pingState struct {
	cb      func(ok bool, rtt sim.Duration)
	timeout sim.Timer
}

// NewStack creates a stack over the carrier.
func NewStack(carrier Carrier, cfg StackConfig) *Stack {
	cfg.fillDefaults()
	s := &Stack{
		carrier:   carrier,
		cfg:       cfg,
		sim:       carrier.Clock(),
		pings:     make(map[uint64]*pingState),
		udp:       make(map[uint16]UDPHandler),
		listeners: make(map[uint16]func(*Conn)),
		conns:     make(map[connKey]*Conn),
		nextPort:  32768,
	}
	carrier.SetReceiver(s.receive)
	return s
}

// IP returns the stack's virtual address.
func (s *Stack) IP() IP { return s.carrier.LocalVIP() }

// Sim returns the simulation clock.
func (s *Stack) Sim() *sim.Simulator { return s.sim }

// Config returns the stack's transport constants.
func (s *Stack) Config() StackConfig { return s.cfg }

func (s *Stack) send(p *Packet) {
	s.Stats.Inc("ip.out", 1)
	s.carrier.SendIP(p)
}

func (s *Stack) receive(p *Packet) {
	if p.Dst != s.IP() {
		s.Stats.Inc("ip.misdelivered", 1)
		return
	}
	s.Stats.Inc("ip.in", 1)
	switch p.Proto {
	case ProtoICMP:
		s.handleICMP(p)
	case ProtoUDP:
		s.handleUDP(p)
	case ProtoTCP:
		s.handleTCP(p)
	default:
		s.Stats.Inc("ip.unknown_proto", 1)
	}
}

// Ping sends one ICMP echo request of the given payload size and invokes
// cb with the outcome: ok=false after timeout (a dropped request or
// reply), mirroring how the paper's ping-based join profiles (Fig. 4/5)
// are measured.
func (s *Stack) Ping(dst IP, size int, timeout sim.Duration, cb func(ok bool, rtt sim.Duration)) {
	s.pingID++
	id := s.pingID
	s.pingSeq++
	st := &pingState{cb: cb}
	s.pings[id] = st
	st.timeout = s.sim.After(timeout, func() {
		if _, live := s.pings[id]; live {
			delete(s.pings, id)
			s.Stats.Inc("icmp.timeout", 1)
			cb(false, 0)
		}
	})
	s.send(&Packet{
		Src: s.IP(), Dst: dst, Proto: ProtoICMP,
		Size: ipHdrSize + icmpHdrSize + size,
		Seg:  &ICMPEcho{ID: id, Seq: s.pingSeq, Sent: s.sim.Now()},
	})
	s.Stats.Inc("icmp.sent", 1)
}

func (s *Stack) handleICMP(p *Packet) {
	echo, ok := p.Seg.(*ICMPEcho)
	if !ok {
		return
	}
	if !echo.Reply {
		rep := *echo
		rep.Reply = true
		s.send(&Packet{Src: s.IP(), Dst: p.Src, Proto: ProtoICMP, Size: p.Size, Seg: &rep})
		return
	}
	if st, live := s.pings[echo.ID]; live {
		delete(s.pings, echo.ID)
		st.timeout.Cancel()
		s.Stats.Inc("icmp.replied", 1)
		st.cb(true, s.sim.Now().Sub(echo.Sent))
	}
}

// ListenUDP binds a datagram handler to a port.
func (s *Stack) ListenUDP(port uint16, h UDPHandler) error {
	if _, taken := s.udp[port]; taken {
		return fmt.Errorf("vip: UDP port %d already bound on %s", port, s.IP())
	}
	s.udp[port] = h
	return nil
}

// CloseUDP unbinds a datagram port.
func (s *Stack) CloseUDP(port uint16) { delete(s.udp, port) }

// SendUDP transmits one datagram. size is the payload size in bytes.
func (s *Stack) SendUDP(dst IP, srcPort, dstPort uint16, size int, msg any) {
	s.send(&Packet{
		Src: s.IP(), Dst: dst, Proto: ProtoUDP,
		Size: ipHdrSize + udpHdrSize + size,
		Seg:  &UDPDatagram{SrcPort: srcPort, DstPort: dstPort, Msg: msg},
	})
}

func (s *Stack) handleUDP(p *Packet) {
	d, ok := p.Seg.(*UDPDatagram)
	if !ok {
		return
	}
	if h, bound := s.udp[d.DstPort]; bound {
		h(p.Src, d.SrcPort, p.Size-ipHdrSize-udpHdrSize, d.Msg)
	} else {
		s.Stats.Inc("udp.unbound", 1)
	}
}

// ephemeralPort allocates a client-side TCP port.
func (s *Stack) ephemeralPort() uint16 {
	for {
		p := s.nextPort
		s.nextPort++
		if s.nextPort == 0 {
			s.nextPort = 32768
		}
		inUse := false
		for k := range s.conns {
			if k.localPort == p {
				inUse = true
				break
			}
		}
		if !inUse {
			return p
		}
	}
}
