// Package viptest provides in-memory carriers for testing code built on
// the virtual IP stack without standing up a full overlay: a Mesh connects
// any number of stacks with configurable latency, loss and per-endpoint
// up/down switches.
package viptest

import (
	"math/rand"

	"wow/internal/sim"
	"wow/internal/vip"
)

// Mesh is an any-to-any fabric of carriers.
type Mesh struct {
	Sim     *sim.Simulator
	Latency sim.Duration
	Loss    float64

	rng      *rand.Rand
	carriers map[vip.IP]*Carrier
}

// NewMesh creates a mesh with the given one-way latency.
func NewMesh(s *sim.Simulator, latency sim.Duration) *Mesh {
	return &Mesh{
		Sim:      s,
		Latency:  latency,
		rng:      rand.New(rand.NewSource(1)),
		carriers: make(map[vip.IP]*Carrier),
	}
}

// Carrier is one mesh endpoint implementing vip.Carrier.
type Carrier struct {
	mesh *Mesh
	ip   vip.IP
	recv func(*vip.Packet)
	up   bool
}

// Add creates a carrier for ip.
func (m *Mesh) Add(ip vip.IP) *Carrier {
	c := &Carrier{mesh: m, ip: ip, up: true}
	m.carriers[ip] = c
	return c
}

// AddStack creates a carrier and a stack over it.
func (m *Mesh) AddStack(ip vip.IP, cfg vip.StackConfig) *vip.Stack {
	return vip.NewStack(m.Add(ip), cfg)
}

// SetUp switches an endpoint's connectivity (both directions).
func (m *Mesh) SetUp(ip vip.IP, up bool) {
	if c, ok := m.carriers[ip]; ok {
		c.up = up
	}
}

// LocalVIP implements vip.Carrier.
func (c *Carrier) LocalVIP() vip.IP { return c.ip }

// Clock implements vip.Carrier.
func (c *Carrier) Clock() *sim.Simulator { return c.mesh.Sim }

// SetReceiver implements vip.Carrier.
func (c *Carrier) SetReceiver(f func(*vip.Packet)) { c.recv = f }

// SendIP implements vip.Carrier.
func (c *Carrier) SendIP(p *vip.Packet) {
	if !c.up {
		return
	}
	dst, ok := c.mesh.carriers[p.Dst]
	if !ok || !dst.up {
		return
	}
	if c.mesh.Loss > 0 && c.mesh.rng.Float64() < c.mesh.Loss {
		return
	}
	c.mesh.Sim.After(c.mesh.Latency, func() {
		if dst.recv != nil && dst.up {
			dst.recv(p)
		}
	})
}

var _ vip.Carrier = (*Carrier)(nil)

// Machine is a fake compute node satisfying the middleware Machine
// interfaces (pbs.Machine, pvm.Machine): jobs run at Speed× baseline on a
// single core.
type Machine struct {
	MachineName string
	S           *vip.Stack
	Speed       float64

	busyUntil sim.Time
}

// NewMachine creates a fake machine with a fresh mesh stack.
func NewMachine(m *Mesh, name string, ip vip.IP, speed float64) *Machine {
	return &Machine{MachineName: name, S: m.AddStack(ip, vip.StackConfig{}), Speed: speed}
}

// Name implements the middleware Machine interfaces.
func (f *Machine) Name() string { return f.MachineName }

// Stack implements the middleware Machine interfaces.
func (f *Machine) Stack() *vip.Stack { return f.S }

// Execute runs cpu baseline seconds at Speed, serialized on one core.
func (f *Machine) Execute(cpu sim.Duration, done func()) {
	s := f.S.Sim()
	wall := sim.Duration(float64(cpu) / f.Speed)
	start := s.Now()
	if f.busyUntil > start {
		start = f.busyUntil
	}
	end := start.Add(wall)
	f.busyUntil = end
	s.At(end, done)
}
