// Package vip implements the virtual IP stack that WOW guests use over the
// IPOP tunnel: IPv4-like packets, ICMP echo, UDP datagrams, and a reliable
// TCP-lite transport with slow start, AIMD congestion control and
// exponential-backoff retransmission.
//
// The paper's point is that *unmodified* TCP/IP middleware (NFS, SSH, PBS,
// PVM) runs over the virtual network and survives multi-minute
// connectivity outages during VM migration; this stack reproduces the
// relevant transport behaviour — window-limited throughput, loss recovery,
// and patience across outages — without re-implementing a kernel.
package vip

import (
	"fmt"
	"strconv"
	"strings"

	"wow/internal/sim"
)

// IP is a virtual IPv4 address on the WOW private network (the paper's
// 172.16.1.x space).
type IP uint32

// String renders dotted-quad form.
func (ip IP) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// ParseIP parses a dotted quad.
func ParseIP(s string) (IP, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("vip: invalid IP %q", s)
	}
	var ip IP
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 || v > 255 {
			return 0, fmt.Errorf("vip: invalid IP %q", s)
		}
		ip = ip<<8 | IP(v)
	}
	return ip, nil
}

// MustParseIP is ParseIP that panics on malformed input.
func MustParseIP(s string) IP {
	ip, err := ParseIP(s)
	if err != nil {
		panic(err)
	}
	return ip
}

// Proto identifies the transport protocol of a virtual IP packet.
type Proto uint8

// Transport protocol numbers (matching IANA for familiarity).
const (
	ProtoICMP Proto = 1
	ProtoTCP  Proto = 6
	ProtoUDP  Proto = 17
)

// String names the protocol.
func (p Proto) String() string {
	switch p {
	case ProtoICMP:
		return "icmp"
	case ProtoTCP:
		return "tcp"
	case ProtoUDP:
		return "udp"
	}
	return fmt.Sprintf("proto(%d)", uint8(p))
}

// Packet is one virtual IP packet. Size includes header overhead and
// drives transmission-time modelling in the physical substrate underneath
// the tunnel.
type Packet struct {
	Src, Dst IP
	Proto    Proto
	Size     int
	Seg      any // *TCPSegment, *UDPDatagram or *ICMPEcho
}

// Header sizes in bytes.
const (
	ipHdrSize   = 20
	tcpHdrSize  = 20
	udpHdrSize  = 8
	icmpHdrSize = 8
)

// Carrier is the tunnel underneath the stack; internal/ipop implements it
// over the Brunet overlay. A Carrier may be killed and restarted (VM
// migration) without the Stack noticing anything but packet loss.
type Carrier interface {
	// LocalVIP returns the virtual IP this carrier serves.
	LocalVIP() IP
	// SendIP tunnels a packet toward its destination.
	SendIP(p *Packet)
	// SetReceiver installs the upcall for packets arriving for LocalVIP.
	SetReceiver(f func(p *Packet))
	// Clock exposes the simulation clock for timers.
	Clock() *sim.Simulator
}

// ICMPEcho is an echo request/reply, the probe used throughout §V-B.
type ICMPEcho struct {
	Reply bool
	ID    uint64
	Seq   int
	Sent  sim.Time
}

// UDPDatagram carries one message-oriented payload.
type UDPDatagram struct {
	SrcPort, DstPort uint16
	Msg              any
}
