// Package workloads models the paper's benchmark applications: MEME
// (motif discovery; 4000 short sequential PBS jobs, §V-D1), fastDNAml-PVM
// (maximum-likelihood phylogenetic inference; master-worker rounds,
// §V-D2), and the ttcp bulk-bandwidth probe of Table II.
//
// The computational kernels are synthetic — what matters to every
// experiment is job duration structure, I/O volume and communication
// pattern, which are taken from the paper's own measurements.
package workloads

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"wow/internal/middleware/pbs"
	"wow/internal/middleware/pvm"
	"wow/internal/sim"
	"wow/internal/vip"
)

// MEMEConfig shapes the MEME batch workload.
type MEMEConfig struct {
	// BaseCPU is the baseline CPU time of one job. The paper reports
	// ~24s wall on the common 2.4 GHz nodes including 13% virtualization
	// overhead and NFS I/O; 20s of baseline CPU reproduces that.
	BaseCPU sim.Duration
	// CPUJitter is the relative standard deviation of per-job CPU time
	// (MEME runs "with the same set of input files and arguments", so
	// the spread is small).
	CPUJitter float64
	// InputPath/InputBytes is the shared dataset staged on NFS.
	InputPath  string
	InputBytes int64
	// OutputBytes is written per job.
	OutputBytes int64
}

// DefaultMEME returns the §V-D1 workload shape.
func DefaultMEME() MEMEConfig {
	return MEMEConfig{
		BaseCPU:     20 * sim.Second,
		CPUJitter:   0.04,
		InputPath:   "/home/wow/meme/sequences.fasta",
		InputBytes:  192 << 10,
		OutputBytes: 48 << 10,
	}
}

// Job materializes the i-th MEME job.
func (c MEMEConfig) Job(i int, rng *rand.Rand) pbs.JobSpec {
	cpu := float64(c.BaseCPU)
	if c.CPUJitter > 0 {
		cpu *= 1 + rng.NormFloat64()*c.CPUJitter
		if cpu < float64(c.BaseCPU)/2 {
			cpu = float64(c.BaseCPU) / 2
		}
	}
	return pbs.JobSpec{
		ID:          i,
		CPU:         sim.Duration(cpu),
		InputPath:   c.InputPath,
		OutputPath:  fmt.Sprintf("/home/wow/meme/out/%06d", i),
		OutputBytes: c.OutputBytes,
	}
}

// FastDNAmlConfig shapes the phylogenetic inference workload.
type FastDNAmlConfig struct {
	// Taxa is the dataset size; the paper uses the 50-taxa dataset of
	// its reference [48].
	Taxa int
	// SeqCPU is the total baseline CPU time of the sequential run
	// (node002: 22272 s, Table III).
	SeqCPU sim.Duration
	// SendBytes/RecvBytes per task: tree description out, likelihood
	// back.
	SendBytes, RecvBytes int
	// BroadcastBytes is the best-tree state shipped to every worker at
	// each round's synchronization point.
	BroadcastBytes int
}

// DefaultFastDNAml returns the §V-D2 workload shape. Node002's measured
// 22272 s wall time divided by its 1.13 virtualization overhead gives
// ~19710 s of baseline CPU.
func DefaultFastDNAml() FastDNAmlConfig {
	return FastDNAmlConfig{
		Taxa:           50,
		SeqCPU:         19710 * sim.Second,
		SendBytes:      16 << 10,
		RecvBytes:      4 << 10,
		BroadcastBytes: 48 << 10,
	}
}

// Rounds builds the per-round task lists. fastDNAml adds taxa to the tree
// one at a time: inserting taxon i evaluates 2i-5 candidate trees, each an
// independent likelihood computation, followed by a synchronizing
// best-tree selection — so round i has 2i-5 tasks and the task pool grows
// as the tree does. (Local rearrangement rounds are folded into the same
// structure.)
func (c FastDNAmlConfig) Rounds() [][]pvm.Task {
	var rounds [][]pvm.Task
	total := 0
	for i := 4; i <= c.Taxa; i++ {
		total += 2*i - 5
	}
	perTask := float64(c.SeqCPU) / float64(total)
	id := 0
	for i := 4; i <= c.Taxa; i++ {
		n := 2*i - 5
		round := make([]pvm.Task, n)
		for j := range round {
			// Candidate-tree evaluations vary in cost with tree
			// shape; spread task CPU ±25% deterministically so
			// round barriers see realistic straggler tails.
			round[j] = pvm.Task{
				ID: id, Round: i - 4,
				CPU:       sim.Duration(perTask * taskCostFactor(id)),
				SendBytes: c.SendBytes, RecvBytes: c.RecvBytes,
			}
			id++
		}
		rounds = append(rounds, round)
	}
	return rounds
}

// taskCostFactor maps a task ID to a deterministic cost multiplier in
// [0.75, 1.25] with mean ~1.
func taskCostFactor(id int) float64 {
	h := fnv.New32a()
	fmt.Fprintf(h, "task-%d", id)
	return 0.75 + 0.5*float64(h.Sum32()%10000)/10000
}

// SequentialCPU returns the whole-workload baseline CPU time (what a
// 1-node run executes).
func (c FastDNAmlConfig) SequentialCPU() sim.Duration {
	var total sim.Duration
	for _, round := range c.Rounds() {
		for _, t := range round {
			total += t.CPU
		}
	}
	return total
}

// TTCPPort is the ttcp sink port.
const TTCPPort = 5001

// TTCPResult summarizes one bulk transfer.
type TTCPResult struct {
	Bytes     int64
	Elapsed   sim.Duration
	Completed bool
}

// BandwidthKBs returns goodput in KB/s as Table II reports it.
func (r TTCPResult) BandwidthKBs() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) / 1024 / r.Elapsed.Seconds()
}

// TTCPServe installs a ttcp sink on the stack: it consumes any stream
// thrown at it.
func TTCPServe(stack *vip.Stack) error {
	return stack.ListenTCP(TTCPPort, func(c *vip.Conn) {
		c.OnMessage(func(size int, msg any) {})
	})
}

// TTCP streams size bytes from stack to dst and reports the result via
// cb, timing first byte sent to last byte acknowledged (like ttcp -t).
func TTCP(stack *vip.Stack, dst vip.IP, size int64, cb func(TTCPResult)) {
	s := stack.Sim()
	start := s.Now()
	conn := stack.DialTCP(dst, TTCPPort)
	const chunk = 32 << 10
	for sent := int64(0); sent < size; sent += chunk {
		n := int64(chunk)
		if sent+n > size {
			n = size - sent
		}
		conn.Send(int(n), nil)
	}
	conn.Close()
	conn.OnClose(func(err error) {
		cb(TTCPResult{
			Bytes:     int64(conn.AckedBytes()),
			Elapsed:   s.Now().Sub(start),
			Completed: err == nil,
		})
	})
}
