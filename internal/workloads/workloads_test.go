package workloads

import (
	"math/rand"
	"testing"

	"wow/internal/sim"
	"wow/internal/vip"
	"wow/internal/vip/viptest"
)

func TestDefaultMEMEShape(t *testing.T) {
	c := DefaultMEME()
	if c.BaseCPU != 20*sim.Second || c.InputBytes == 0 || c.OutputBytes == 0 {
		t.Fatalf("defaults: %+v", c)
	}
	rng := rand.New(rand.NewSource(1))
	var total float64
	const n = 2000
	for i := 0; i < n; i++ {
		j := c.Job(i, rng)
		if j.ID != i || j.InputPath != c.InputPath || j.OutputBytes != c.OutputBytes {
			t.Fatalf("job %d malformed: %+v", i, j)
		}
		if j.CPU < c.BaseCPU/2 {
			t.Fatalf("job %d CPU %v below clamp", i, j.CPU)
		}
		total += j.CPU.Seconds()
	}
	mean := total / n
	if mean < 19.5 || mean > 20.5 {
		t.Fatalf("mean job CPU %.2fs, want ~20s", mean)
	}
}

func TestMEMEJobsHaveUniqueOutputs(t *testing.T) {
	c := DefaultMEME()
	rng := rand.New(rand.NewSource(2))
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		p := c.Job(i, rng).OutputPath
		if seen[p] {
			t.Fatalf("duplicate output path %q", p)
		}
		seen[p] = true
	}
}

func TestFastDNAmlRoundsStructure(t *testing.T) {
	c := DefaultFastDNAml()
	rounds := c.Rounds()
	// Taxa 4..50 inclusive: 47 rounds with 2i-5 tasks each.
	if len(rounds) != 47 {
		t.Fatalf("rounds = %d, want 47", len(rounds))
	}
	if len(rounds[0]) != 3 || len(rounds[46]) != 95 {
		t.Fatalf("round sizes: first=%d last=%d, want 3 and 95", len(rounds[0]), len(rounds[46]))
	}
	total := 0
	ids := map[int]bool{}
	for _, r := range rounds {
		for _, task := range r {
			total++
			if ids[task.ID] {
				t.Fatalf("duplicate task id %d", task.ID)
			}
			ids[task.ID] = true
			if task.CPU <= 0 || task.SendBytes == 0 {
				t.Fatalf("malformed task %+v", task)
			}
		}
	}
	// Total CPU ≈ SeqCPU (per-task jitter averages out).
	seq := c.SequentialCPU().Seconds()
	if ratio := seq / c.SeqCPU.Seconds(); ratio < 0.97 || ratio > 1.03 {
		t.Fatalf("sequential CPU off by %.1f%%", (ratio-1)*100)
	}
	_ = total
}

func TestTaskCostFactorBounds(t *testing.T) {
	for id := 0; id < 5000; id++ {
		f := taskCostFactor(id)
		if f < 0.75 || f > 1.25 {
			t.Fatalf("factor(%d) = %v", id, f)
		}
	}
	if taskCostFactor(1) != taskCostFactor(1) {
		t.Fatal("not deterministic")
	}
}

func TestTTCPResultBandwidth(t *testing.T) {
	r := TTCPResult{Bytes: 1024 * 100, Elapsed: 2 * sim.Second}
	if bw := r.BandwidthKBs(); bw != 50 {
		t.Fatalf("bandwidth = %v, want 50 KB/s", bw)
	}
	if (TTCPResult{}).BandwidthKBs() != 0 {
		t.Fatal("zero elapsed should give 0")
	}
}

func TestTTCPTransferOverMesh(t *testing.T) {
	s := sim.New(1)
	m := viptest.NewMesh(s, 10*sim.Millisecond)
	src := m.AddStack(vip.MustParseIP("172.16.1.2"), vip.StackConfig{})
	dst := m.AddStack(vip.MustParseIP("172.16.1.3"), vip.StackConfig{})
	if err := TTCPServe(dst); err != nil {
		t.Fatal(err)
	}
	var res TTCPResult
	done := false
	TTCP(src, dst.IP(), 4<<20, func(r TTCPResult) { res, done = r, true })
	s.RunFor(5 * sim.Minute)
	if !done || !res.Completed {
		t.Fatalf("ttcp incomplete: %+v", res)
	}
	if res.Bytes != 4<<20 {
		t.Fatalf("bytes = %d", res.Bytes)
	}
	// Window-limited: ~40 segs × 1400 / 20ms RTT ≈ 2.7 MB/s.
	if bw := res.BandwidthKBs(); bw < 1000 || bw > 4000 {
		t.Fatalf("bandwidth %.0f KB/s outside window-limited range", bw)
	}
}
