package ipop

import (
	"fmt"
	"testing"

	"wow/internal/brunet"
	"wow/internal/phys"
	"wow/internal/sim"
	"wow/internal/vip"
)

// rig: a public router ring plus helpers to attach compute nodes.
type rig struct {
	s       *sim.Simulator
	net     *phys.Network
	site    *phys.Site
	routers []*Node
	boot    []brunet.URI
}

func newRig(t *testing.T, seed int64, routers int) *rig {
	t.Helper()
	s := sim.New(seed)
	net := phys.NewNetwork(s, phys.UniformLatency(
		phys.PathModel{OneWay: sim.Millisecond},
		phys.PathModel{OneWay: 15 * sim.Millisecond},
	))
	r := &rig{s: s, net: net, site: net.AddSite("net")}
	cfg := brunet.FastTestConfig()
	for i := 0; i < routers; i++ {
		// Each router at its own site: inter-node paths are WAN paths.
		h := net.AddHost(fmt.Sprintf("router%02d", i), net.AddSite(fmt.Sprintf("site%02d", i)), net.Root(), phys.HostConfig{})
		rt := NewRouter(h, brunet.AddrFromString(fmt.Sprintf("router%02d", i)), cfg)
		if err := rt.Start(r.boot); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			r.boot = BootURIs(rt)
		}
		r.routers = append(r.routers, rt)
		s.RunFor(2 * sim.Second)
	}
	s.RunFor(30 * sim.Second)
	return r
}

func (r *rig) addCompute(t *testing.T, name, ip string) (*Node, *vip.Stack) {
	return r.addComputeCfg(t, name, ip, brunet.FastTestConfig())
}

func (r *rig) addComputeCfg(t *testing.T, name, ip string, cfg brunet.Config) (*Node, *vip.Stack) {
	t.Helper()
	h := r.net.AddHost(name, r.net.AddSite(name+"-site"), r.net.Root(), phys.HostConfig{})
	n := New(h, vip.MustParseIP(ip), cfg)
	if err := n.Start(r.boot); err != nil {
		t.Fatal(err)
	}
	return n, vip.NewStack(n, vip.StackConfig{})
}

func TestAddrForVIPStableAndDistinct(t *testing.T) {
	a := AddrForVIP(vip.MustParseIP("172.16.1.2"))
	b := AddrForVIP(vip.MustParseIP("172.16.1.3"))
	if a == b {
		t.Fatal("distinct IPs map to same overlay address")
	}
	if a != AddrForVIP(vip.MustParseIP("172.16.1.2")) {
		t.Fatal("mapping not stable")
	}
}

func TestPingOverOverlay(t *testing.T) {
	r := newRig(t, 1, 8)
	_, sa := r.addCompute(t, "vmA", "172.16.1.2")
	nb, _ := r.addCompute(t, "vmB", "172.16.1.3")
	r.s.RunFor(30 * sim.Second)

	ok := false
	var rtt sim.Duration
	sa.Ping(nb.VIP(), 64, 10*sim.Second, func(o bool, d sim.Duration) { ok, rtt = o, d })
	r.s.RunFor(15 * sim.Second)
	if !ok {
		t.Fatalf("virtual ping failed (rtt=%v)", rtt)
	}
	if rtt <= 0 {
		t.Fatalf("rtt = %v", rtt)
	}
}

func TestDoubleStartRejected(t *testing.T) {
	r := newRig(t, 2, 4)
	n, _ := r.addCompute(t, "vmA", "172.16.1.2")
	if err := n.Start(r.boot); err == nil {
		t.Fatal("double start accepted")
	}
	if err := n.MoveToHost(r.routers[0].Host()); err == nil {
		t.Fatal("moved a running node")
	}
}

func TestShortcutFormsFromVirtualTraffic(t *testing.T) {
	r := newRig(t, 3, 32)
	// Keep the pair sparse (few far links) so they are not already
	// directly connected in this small ring.
	sparse := brunet.FastTestConfig()
	sparse.FarCount = 2
	na, sa := r.addComputeCfg(t, "vmA", "172.16.1.2", sparse)
	nb, _ := r.addComputeCfg(t, "vmB", "172.16.1.3", sparse)
	r.s.RunFor(30 * sim.Second)

	if c := na.Overlay().ConnectionTo(nb.Addr()); c != nil {
		t.Fatalf("precondition broken: pair already connected (%v); pick another seed/IPs", c)
	}
	tk := r.s.Tick(sim.Second, 0, func() {
		sa.Ping(nb.VIP(), 64, 5*sim.Second, func(bool, sim.Duration) {})
	})
	defer tk.Stop()
	r.s.RunFor(2 * sim.Minute)

	c := na.Overlay().ConnectionTo(nb.Addr())
	if c == nil || !c.Has(brunet.Shortcut) {
		t.Fatalf("no shortcut from sustained virtual IP traffic (conn=%v)", c)
	}
}

func TestShortcutLowersRTT(t *testing.T) {
	r := newRig(t, 3, 32)
	sparse := brunet.FastTestConfig()
	sparse.FarCount = 2
	na, sa := r.addComputeCfg(t, "vmA", "172.16.1.2", sparse)
	nb, _ := r.addComputeCfg(t, "vmB", "172.16.1.3", sparse)
	r.s.RunFor(30 * sim.Second)
	if c := na.Overlay().ConnectionTo(nb.Addr()); c != nil {
		t.Fatalf("precondition broken: pair already connected (%v)", c)
	}

	var rtts []sim.Duration
	tk := r.s.Tick(sim.Second, 0, func() {
		sa.Ping(nb.VIP(), 64, 5*sim.Second, func(ok bool, d sim.Duration) {
			if ok {
				rtts = append(rtts, d)
			}
		})
	})
	defer tk.Stop()
	r.s.RunFor(3 * sim.Minute)
	if len(rtts) < 100 {
		t.Fatalf("too few replies: %d", len(rtts))
	}
	early := rtts[2]
	late := rtts[len(rtts)-1]
	if late >= early {
		t.Fatalf("RTT did not drop after shortcut: early=%v late=%v", early, late)
	}
	// Shortcut path is one overlay hop: RTT ≈ 2 × 2 × one-way WAN.
	if late > 70*sim.Millisecond {
		t.Fatalf("late RTT %v too high for a direct path", late)
	}
}

func TestTCPOverOverlay(t *testing.T) {
	r := newRig(t, 5, 8)
	_, sa := r.addCompute(t, "vmA", "172.16.1.2")
	nb, sb := r.addCompute(t, "vmB", "172.16.1.3")
	r.s.RunFor(30 * sim.Second)

	const total = 1 << 20
	rcvd := 0
	if err := sb.ListenTCP(22, func(c *vip.Conn) {
		c.OnMessage(func(size int, msg any) { rcvd += size })
	}); err != nil {
		t.Fatal(err)
	}
	c := sa.DialTCP(nb.VIP(), 22)
	for sent := 0; sent < total; sent += 16384 {
		c.Send(16384, nil)
	}
	r.s.RunFor(5 * sim.Minute)
	if rcvd != total {
		t.Fatalf("TCP over overlay incomplete: %d of %d", rcvd, total)
	}
}

func TestMigrationPreservesVirtualIdentity(t *testing.T) {
	r := newRig(t, 6, 10)
	na, sa := r.addCompute(t, "vmA", "172.16.1.2")
	nb, sb := r.addCompute(t, "vmB", "172.16.1.3")
	r.s.RunFor(30 * sim.Second)

	// Long-running transfer from B to A.
	const total = 4 << 20
	rcvd := 0
	sa.ListenTCP(22, func(c *vip.Conn) {
		c.OnMessage(func(size int, msg any) { rcvd += size })
	})
	c := sb.DialTCP(na.VIP(), 22)
	for sent := 0; sent < total; sent += 16384 {
		c.Send(16384, nil)
	}
	r.s.RunFor(2 * sim.Second)
	before := rcvd
	if before == 0 || before == total {
		t.Fatalf("migration window mistimed: %d", before)
	}

	// Migrate B: kill IPOP, move host, restart, rejoin.
	addrBefore := nb.Addr()
	nb.Stop()
	if nb.Up() {
		t.Fatal("Up after Stop")
	}
	newHost := r.net.AddHost("vmB-migrated", r.site, r.net.Root(), phys.HostConfig{})
	if err := nb.MoveToHost(newHost); err != nil {
		t.Fatal(err)
	}
	r.s.RunFor(30 * sim.Second) // outage window
	if err := nb.Start(r.boot); err != nil {
		t.Fatal(err)
	}
	if nb.Addr() != addrBefore {
		t.Fatal("overlay address changed across migration")
	}
	r.s.RunFor(10 * sim.Minute)
	if rcvd != total {
		t.Fatalf("transfer did not resume after migration: %d of %d", rcvd, total)
	}
}

func TestRouterOnlyDropsLocalIP(t *testing.T) {
	r := newRig(t, 7, 4)
	rt := r.routers[0]
	rt.SendIP(&vip.Packet{Src: 1, Dst: 2, Proto: vip.ProtoICMP, Size: 64})
	if rt.Stats.Get("tunnel.dropped_down") != 1 {
		t.Fatal("router-only SendIP not rejected")
	}
	if rt.VIP() != 0 {
		t.Fatal("router-only node has a virtual IP")
	}
	if !rt.Up() {
		t.Fatal("router not up")
	}
}

func TestStoppedNodeDropsTraffic(t *testing.T) {
	r := newRig(t, 8, 4)
	na, sa := r.addCompute(t, "vmA", "172.16.1.2")
	na.Stop()
	sa.Ping(vip.MustParseIP("172.16.1.9"), 64, sim.Second, func(bool, sim.Duration) {})
	r.s.RunFor(5 * sim.Second)
	if na.Stats.Get("tunnel.dropped_down") == 0 {
		t.Fatal("stopped node tunnelled traffic")
	}
}

func TestMisroutedPacketCounted(t *testing.T) {
	// A packet for a dead virtual IP lands at the nearest neighbor's
	// IPOP node, which must drop and count it, not deliver it.
	r := newRig(t, 9, 6)
	_, sa := r.addCompute(t, "vmA", "172.16.1.2")
	nb, _ := r.addCompute(t, "vmB", "172.16.1.3")
	r.s.RunFor(30 * sim.Second)
	_ = nb

	sa.Ping(vip.MustParseIP("172.16.1.99"), 64, sim.Second, func(ok bool, _ sim.Duration) {
		if ok {
			t.Error("ping to nonexistent virtual IP succeeded")
		}
	})
	r.s.RunFor(10 * sim.Second)
}

// TestLoopbackTCP is a regression test for the PBS-head-mounts-its-own-NFS
// scenario: a stack dialing its own virtual IP must deliver asynchronously
// (never re-entering transport code synchronously) and reliably.
func TestLoopbackTCP(t *testing.T) {
	r := newRig(t, 10, 4)
	na, sa := r.addCompute(t, "vmA", "172.16.1.2")
	r.s.RunFor(20 * sim.Second)

	const total = 2 << 20
	rcvd := 0
	if err := sa.ListenTCP(2049, func(c *vip.Conn) {
		c.OnMessage(func(size int, msg any) { rcvd += size })
	}); err != nil {
		t.Fatal(err)
	}
	c := sa.DialTCP(na.VIP(), 2049) // own virtual IP
	for sent := 0; sent < total; sent += 32768 {
		c.Send(32768, nil)
	}
	r.s.RunFor(2 * sim.Minute)
	if rcvd != total {
		t.Fatalf("loopback delivered %d of %d", rcvd, total)
	}
	if na.Stats.Get("tunnel.in") == 0 {
		t.Fatal("loopback bypassed the tunnel accounting")
	}
}
