// Package ipop implements the IP-over-P2P virtual network of the paper's
// reference [29], extended with the decentralized shortcut creation that is
// this paper's first contribution: virtual IP packets captured from a
// guest are tunnelled over the Brunet overlay to the node owning the
// destination virtual address, while traffic inspection drives the
// ShortcutConnectionOverlord toward direct one-hop links.
//
// An ipop.Node is the user-level process the paper kills and restarts
// around VM migration (§V-C): Stop tears down all overlay state, and a
// subsequent Start — possibly on a different physical host — rejoins the
// ring under the same P2P address, after which the virtual IP becomes
// routable again with no application-visible address change.
package ipop

import (
	"fmt"

	"wow/internal/brunet"
	"wow/internal/metrics"
	"wow/internal/phys"
	"wow/internal/sim"
	"wow/internal/vip"
)

// addrNamespace salts the virtual-IP-to-P2P-address mapping.
const addrNamespace = "wow-ipop:"

// AddrForVIP maps a virtual IP to its owner's Brunet address. The mapping
// is deterministic, so any node can route to a virtual IP without lookups,
// and stable across migration, so a moved VM keeps its overlay identity.
// (The paper's IPOP resolves virtual IPs inside the tunnelled packets the
// same way: the address is a function of the IP, not of the host.)
func AddrForVIP(ip vip.IP) brunet.Addr {
	return brunet.AddrFromString(addrNamespace + ip.String())
}

// protoIPOP labels tunnelled virtual IP traffic on the overlay.
const protoIPOP = "ipop"

// Node is one IPOP endpoint: the tap that captures a guest's virtual IP
// traffic and tunnels it over a Brunet node. It implements vip.Carrier.
type Node struct {
	ip   vip.IP
	cfg  brunet.Config
	bn   *brunet.Node
	host *phys.Host
	recv func(*vip.Packet)

	// RouterOnly nodes (the paper's 118 PlanetLab nodes) run the
	// overlay router without a tap: they forward P2P traffic but
	// source/sink no virtual IP packets.
	routerOnly bool

	// Stats counts tunnelled packets.
	Stats metrics.Counter
}

// New creates an IPOP node for a virtual IP on a physical host.
func New(host *phys.Host, ip vip.IP, cfg brunet.Config) *Node {
	return &Node{ip: ip, cfg: cfg, host: host}
}

// NewRouter creates a router-only node (no virtual IP) with the given
// overlay address, as deployed on the paper's PlanetLab hosts.
func NewRouter(host *phys.Host, addr brunet.Addr, cfg brunet.Config) *Node {
	n := &Node{cfg: cfg, host: host, routerOnly: true}
	n.bn = brunet.NewNode(host, addr, cfg)
	return n
}

// VIP returns the node's virtual IP (zero for router-only nodes).
func (n *Node) VIP() vip.IP { return n.ip }

// LocalVIP implements vip.Carrier.
func (n *Node) LocalVIP() vip.IP { return n.ip }

// Clock implements vip.Carrier.
func (n *Node) Clock() *sim.Simulator { return n.host.Sim() }

// Overlay returns the underlying Brunet node (nil when stopped).
func (n *Node) Overlay() *brunet.Node { return n.bn }

// Host returns the physical host currently running the node.
func (n *Node) Host() *phys.Host { return n.host }

// Addr returns the node's overlay address.
func (n *Node) Addr() brunet.Addr {
	if n.routerOnly {
		return n.bn.Addr()
	}
	return AddrForVIP(n.ip)
}

// Up reports whether the node is running.
func (n *Node) Up() bool { return n.bn != nil && n.bn.Up() }

// Start joins the overlay through the bootstrap URIs. For a compute node
// this is the moment its virtual IP begins converging toward routability
// (Figure 4's regimes).
func (n *Node) Start(bootstrap []brunet.URI) error {
	if n.Up() {
		return fmt.Errorf("ipop: node %s already running", n.ip)
	}
	if n.bn == nil || !n.routerOnly {
		n.bn = brunet.NewNode(n.host, n.Addr(), n.cfg)
	}
	if err := n.bn.Start(bootstrap); err != nil {
		return fmt.Errorf("ipop: %w", err)
	}
	if !n.routerOnly {
		n.bn.RegisterProto(protoIPOP, n.fromOverlay)
	}
	return nil
}

// Stop kills the IPOP process ungracefully, exactly as the migration
// procedure of §V-C does: no goodbyes, peers find out via ping timeouts.
func (n *Node) Stop() {
	if n.bn != nil {
		n.bn.Stop()
		if !n.routerOnly {
			n.bn = nil
		}
	}
}

// Leave departs the overlay gracefully: close messages let peers drop
// their connection state immediately instead of waiting for ping timeouts.
func (n *Node) Leave() {
	if n.bn != nil {
		n.bn.Leave()
		if !n.routerOnly {
			n.bn = nil
		}
	}
}

// MoveToHost relocates the (stopped) node to a different physical host —
// the network side of a VM migration. Call Stop first and Start after.
func (n *Node) MoveToHost(h *phys.Host) error {
	if n.Up() {
		return fmt.Errorf("ipop: cannot move running node %s", n.ip)
	}
	n.host = h
	return nil
}

// SetReceiver implements vip.Carrier.
func (n *Node) SetReceiver(f func(*vip.Packet)) { n.recv = f }

// SendIP implements vip.Carrier: tunnel one virtual IP packet over the
// overlay toward the node owning its destination address. Exact delivery
// mode drops packets at the nearest neighbor when the owner is down,
// matching real IP semantics (unroutable packets vanish).
func (n *Node) SendIP(p *vip.Packet) {
	if !n.Up() || n.routerOnly {
		n.Stats.Inc("tunnel.dropped_down", 1)
		return
	}
	n.Stats.Inc("tunnel.out", 1)
	if p.Dst == n.ip {
		// Loopback (e.g. the PBS head mounting its own NFS export):
		// deliver asynchronously so transport code never re-enters
		// its caller's stack frame.
		n.host.Sim().After(0, func() {
			if n.Up() && n.recv != nil {
				n.Stats.Inc("tunnel.in", 1)
				n.recv(p)
			}
		})
		return
	}
	n.bn.SendTo(AddrForVIP(p.Dst), brunet.DeliverExact, brunet.AppData{
		Proto: protoIPOP,
		Size:  p.Size,
		Data:  p,
	})
}

// fromOverlay injects a tunnelled packet back into the local stack.
func (n *Node) fromOverlay(src brunet.Addr, d brunet.AppData) {
	p, ok := d.Data.(*vip.Packet)
	if !ok {
		n.Stats.Inc("tunnel.garbage", 1)
		return
	}
	if p.Dst != n.ip {
		// Greedy routing delivered to the nearest neighbor of a dead
		// address; a real tap would never see this packet.
		n.Stats.Inc("tunnel.misrouted", 1)
		return
	}
	n.Stats.Inc("tunnel.in", 1)
	if n.recv != nil {
		n.recv(p)
	}
}

var _ vip.Carrier = (*Node)(nil)

// BootURIs extracts bootstrap URIs from running router nodes; convenience
// for testbed assembly.
func BootURIs(routers ...*Node) []brunet.URI {
	var out []brunet.URI
	for _, r := range routers {
		if r.Up() {
			out = append(out, r.bn.BootstrapURI())
		}
	}
	return out
}
