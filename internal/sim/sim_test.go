package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmptyRun(t *testing.T) {
	s := New(1)
	s.Run()
	if s.Now() != 0 {
		t.Fatalf("clock moved on empty run: %v", s.Now())
	}
}

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.At(30, func() { got = append(got, 3) })
	s.At(10, func() { got = append(got, 1) })
	s.At(20, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestFIFOAmongEqualTimestamps(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { got = append(got, i) })
	}
	s.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("equal-timestamp events out of FIFO order: %v", got)
		}
	}
}

func TestAfterAdvancesClock(t *testing.T) {
	s := New(1)
	var at Time
	s.After(2*Second, func() { at = s.Now() })
	s.Run()
	if at != Time(2*Second) {
		t.Fatalf("event fired at %v, want 2s", at)
	}
}

func TestPastSchedulingClamps(t *testing.T) {
	s := New(1)
	var fired []Time
	s.After(Second, func() {
		s.At(0, func() { fired = append(fired, s.Now()) })
	})
	s.Run()
	if len(fired) != 1 || fired[0] != Time(Second) {
		t.Fatalf("past event fired at %v, want clamp to 1s", fired)
	}
}

func TestCancel(t *testing.T) {
	s := New(1)
	fired := false
	ev := s.After(Second, func() { fired = true })
	if !ev.Cancel() {
		t.Fatal("Cancel on pending event reported false")
	}
	if ev.Cancel() {
		t.Fatal("second Cancel reported true")
	}
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if ev.Active() {
		t.Fatal("Active() true after Cancel")
	}
}

func TestTimerRecyclingIsSafe(t *testing.T) {
	s := New(1)
	// Fire an event, keep its stale handle, then schedule a fresh event
	// that recycles the pooled object. The stale handle must not be able
	// to cancel the new scheduling.
	stale := s.After(Second, func() {})
	s.Run()
	fired := false
	fresh := s.After(Second, func() { fired = true })
	if stale.Cancel() {
		t.Fatal("stale handle cancelled a recycled event")
	}
	if !fresh.Active() {
		t.Fatal("fresh event not active")
	}
	s.Run()
	if !fired {
		t.Fatal("recycled event did not fire")
	}
}

func TestZeroTimerIsInert(t *testing.T) {
	var tm Timer
	if tm.Active() || tm.Cancel() || tm.Time() != 0 {
		t.Fatal("zero Timer is not inert")
	}
}

func TestCancelRemovesFromQueue(t *testing.T) {
	s := New(1)
	ev := s.After(Second, func() {})
	s.After(2*Second, func() {})
	if s.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", s.Pending())
	}
	ev.Cancel()
	if s.Pending() != 1 {
		t.Fatalf("pending = %d after cancel, want eager removal to 1", s.Pending())
	}
}

func TestAtArg(t *testing.T) {
	s := New(1)
	var got any
	s.AtArg(Time(Second), func(a any) { got = a }, 42)
	s.Run()
	if got != 42 {
		t.Fatalf("AtArg callback got %v, want 42", got)
	}
}

func TestCancelAfterFireIsNoop(t *testing.T) {
	s := New(1)
	ev := s.After(Second, func() {})
	s.Run()
	if ev.Cancel() {
		t.Fatal("Cancel after firing reported true")
	}
}

func TestRunUntil(t *testing.T) {
	s := New(1)
	var fired []int
	s.After(Second, func() { fired = append(fired, 1) })
	s.After(3*Second, func() { fired = append(fired, 3) })
	s.RunUntil(Time(2 * Second))
	if len(fired) != 1 || fired[0] != 1 {
		t.Fatalf("fired = %v, want [1]", fired)
	}
	if s.Now() != Time(2*Second) {
		t.Fatalf("clock = %v, want 2s", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", s.Pending())
	}
	s.Run()
	if len(fired) != 2 {
		t.Fatalf("second event never fired: %v", fired)
	}
}

func TestRunFor(t *testing.T) {
	s := New(1)
	n := 0
	s.Tick(Second, 0, func() { n++ })
	s.RunFor(10*Second + Millisecond)
	if n != 10 {
		t.Fatalf("ticks = %d, want 10", n)
	}
}

func TestStop(t *testing.T) {
	s := New(1)
	n := 0
	for i := 0; i < 100; i++ {
		s.After(Duration(i)*Second, func() {
			n++
			if n == 5 {
				s.Stop()
			}
		})
	}
	s.Run()
	if n != 5 {
		t.Fatalf("ran %d events after Stop, want 5", n)
	}
}

func TestTickerStop(t *testing.T) {
	s := New(1)
	n := 0
	var tk *Ticker
	tk = s.Tick(Second, 0, func() {
		n++
		if n == 3 {
			tk.Stop()
		}
	})
	s.Run()
	if n != 3 {
		t.Fatalf("ticks = %d, want 3", n)
	}
}

func TestTickerJitterBounds(t *testing.T) {
	s := New(42)
	var times []Time
	var tk *Ticker
	tk = s.Tick(10*Second, Second, func() {
		times = append(times, s.Now())
		if len(times) == 50 {
			tk.Stop()
		}
	})
	s.Run()
	prev := Time(0)
	for _, tm := range times {
		gap := tm.Sub(prev)
		if gap < 9*Second || gap > 11*Second {
			t.Fatalf("jittered gap %v outside [9s,11s]", gap)
		}
		prev = tm
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		s := New(7)
		var out []Time
		for i := 0; i < 20; i++ {
			s.After(Duration(s.Rand().Int63n(int64(Minute))), func() {
				out = append(out, s.Now())
				if s.Rand().Intn(2) == 0 {
					s.After(Duration(s.Rand().Int63n(int64(Second))), func() {
						out = append(out, s.Now())
					})
				}
			})
		}
		s.Run()
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: events fire in nondecreasing time order regardless of insertion
// order.
func TestQuickEventOrdering(t *testing.T) {
	f := func(delays []uint32) bool {
		s := New(3)
		var fired []Time
		for _, d := range delays {
			s.After(Duration(d%1e9), func() { fired = append(fired, s.Now()) })
		}
		s.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling an arbitrary subset fires exactly the complement.
func TestQuickCancelSubset(t *testing.T) {
	f := func(delays []uint16, mask uint64) bool {
		s := New(5)
		fired := 0
		want := 0
		for i, d := range delays {
			ev := s.After(Duration(d), func() { fired++ })
			if mask&(1<<(uint(i)%64)) != 0 {
				ev.Cancel()
			} else {
				want++
			}
		}
		s.Run()
		return fired == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(13))}); err != nil {
		t.Fatal(err)
	}
}

func TestDurationString(t *testing.T) {
	if got := (1500 * Millisecond).String(); got != "1.500s" {
		t.Fatalf("Duration.String = %q", got)
	}
	if got := Time(2 * Second).String(); got != "t=2.000s" {
		t.Fatalf("Time.String = %q", got)
	}
	if (2 * Second).Seconds() != 2.0 {
		t.Fatal("Seconds conversion wrong")
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New(1)
		for j := 0; j < 1000; j++ {
			s.After(Duration(j)*Millisecond, func() {})
		}
		s.Run()
	}
}
