package sim

import (
	"reflect"
	"testing"
	"testing/quick"
)

// splitmix64 is the deterministic hash driving the random workloads: both
// the single-threaded reference and the sharded run derive every delay and
// target from it, so the two executions are the same logical computation.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// workload is a randomized actor system: actors log every event they
// execute and schedule follow-ups — some to themselves (any delay), some
// to actors on other shards (delay at least the lookahead). The same
// workload runs on a plain Simulator or on a Sharded engine through the
// scheduler abstraction.
type workload struct {
	seed     uint64
	actors   int
	shards   int
	steps    int
	look     Duration
	logs     [][]logRec // per actor
	schedule func(fromActor, toActor int, when Time, fn func())
	now      func(actor int) Time
}

type logRec struct {
	when  Time
	step  int
	actor int
}

func (w *workload) shardOf(a int) int { return a % w.shards }

// fire logs one step for actor a and schedules its successors.
func (w *workload) fire(a, step int) {
	now := w.now(a)
	w.logs[a] = append(w.logs[a], logRec{when: now, step: step, actor: a})
	if step >= w.steps {
		return
	}
	h := splitmix64(w.seed ^ uint64(a)*0x9E37 ^ uint64(step)*0x85EB)
	// Self follow-up: any strictly positive delay.
	selfDelay := Duration(1+h%1000) * Microsecond
	w.schedule(a, a, now.Add(selfDelay), func() { w.fire(a, step+1) })
	if w.actors > 1 && h%3 == 0 {
		// Cross follow-up: delay bounded below by the lookahead, the
		// same invariant phys guarantees via the WAN latency floor.
		b := (a + 1 + int(h>>32)%(w.actors-1)) % w.actors
		crossDelay := Duration(w.look) + Duration(1+(h>>16)%1000)*Microsecond
		step2 := step + 1
		w.schedule(a, b, now.Add(crossDelay), func() { w.fire(b, step2) })
	}
}

func (w *workload) kickoff() {
	for a := 0; a < w.actors; a++ {
		h := splitmix64(w.seed ^ uint64(a)*0x2545F491)
		start := Time(1+h%5000) * Time(Microsecond)
		a := a
		w.schedule(a, a, start, func() { w.fire(a, 0) })
	}
}

// runSingle executes the workload on one Simulator: the single-threaded
// reference ordering (global timestamp order across all actors).
func runSingle(seed uint64, actors, shards, steps int, look Duration, horizon Time) [][]logRec {
	s := New(int64(seed))
	w := &workload{seed: seed, actors: actors, shards: shards, steps: steps, look: look,
		logs: make([][]logRec, actors)}
	w.schedule = func(_, _ int, when Time, fn func()) { s.At(when, fn) }
	w.now = func(int) Time { return s.Now() }
	w.kickoff()
	s.RunUntil(horizon)
	return w.logs
}

// runSharded executes the same workload on a Sharded engine with the given
// worker count.
func runSharded(seed uint64, actors, shards, steps, workers int, look Duration, horizon Time) [][]logRec {
	g := NewSharded(int64(seed), shards, workers)
	defer g.Close()
	g.SetLookahead(look)
	w := &workload{seed: seed, actors: actors, shards: shards, steps: steps, look: look,
		logs: make([][]logRec, actors)}
	w.schedule = func(from, to int, when Time, fn func()) {
		sf, st := w.shardOf(from), w.shardOf(to)
		if sf == st {
			g.Shard(st).At(when, fn)
			return
		}
		g.Send(sf, st, when, func(any) { fn() }, nil)
	}
	w.now = func(actor int) Time { return g.Shard(w.shardOf(actor)).Now() }
	w.kickoff()
	g.RunUntil(horizon)
	return w.logs
}

// timesCollide reports whether any two events in the reference run share a
// timestamp. Equal-timestamp events on different shards have no defined
// relative order between a single queue and K queues (both executions are
// individually deterministic); the equivalence property quantifies over
// workloads with distinct timestamps, so colliding seeds are skipped.
func timesCollide(logs [][]logRec) bool {
	seen := make(map[Time]bool)
	for _, l := range logs {
		for _, r := range l {
			if seen[r.when] {
				return true
			}
			seen[r.when] = true
		}
	}
	return false
}

// TestShardedMatchesSingleThreaded is the lookahead-correctness property:
// for random topologies (actor→shard maps) and seeds, sharded execution
// produces exactly the event ordering of a single-threaded run.
func TestShardedMatchesSingleThreaded(t *testing.T) {
	const look = 10 * Millisecond
	const horizon = Time(10 * Second)
	prop := func(seed uint64, actorsRaw, shardsRaw, workersRaw uint8) bool {
		actors := 2 + int(actorsRaw%14)
		shards := 2 + int(shardsRaw%6)
		workers := 1 + int(workersRaw%8)
		single := runSingle(seed, actors, shards, 6, look, horizon)
		if timesCollide(single) {
			return true
		}
		sharded := runSharded(seed, actors, shards, 6, workers, look, horizon)
		return reflect.DeepEqual(single, sharded)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestShardedWorkerCountInvariance pins the stronger half of the
// determinism contract: with ties or without, the (seed, shard count)
// trace never depends on how many workers execute it.
func TestShardedWorkerCountInvariance(t *testing.T) {
	const look = 5 * Millisecond
	const horizon = Time(20 * Second)
	for _, seed := range []uint64{1, 7, 42, 1234567} {
		ref := runSharded(seed, 24, 4, 8, 1, look, horizon)
		for _, workers := range []int{2, 4, 8} {
			got := runSharded(seed, 24, 4, 8, workers, look, horizon)
			if !reflect.DeepEqual(ref, got) {
				t.Fatalf("seed %d: workers=%d trace differs from workers=1", seed, workers)
			}
		}
	}
}

// TestShardedSingleShardDelegates checks K=1 is exactly the plain engine:
// same trace, no lookahead required.
func TestShardedSingleShardDelegates(t *testing.T) {
	single := runSingle(99, 8, 1, 6, 10*Millisecond, Time(10*Second))
	g := runSharded(99, 8, 1, 6, 1, 10*Millisecond, Time(10*Second))
	if !reflect.DeepEqual(single, g) {
		t.Fatal("single-shard engine trace differs from plain Simulator")
	}
}

// TestShardedLookaheadViolationPanics: a cross-shard event scheduled
// inside the current window must panic loudly instead of corrupting
// causality.
func TestShardedLookaheadViolationPanics(t *testing.T) {
	g := NewSharded(1, 2, 2)
	defer g.Close()
	g.SetLookahead(10 * Millisecond)
	g.Shard(0).At(Time(Millisecond), func() {
		// 1ms delay < 10ms lookahead: illegal cross-shard send.
		g.Send(0, 1, g.Shard(0).Now().Add(Millisecond), func(any) {}, nil)
	})
	defer func() {
		if recover() == nil {
			t.Fatal("expected lookahead-violation panic")
		}
	}()
	g.RunUntil(Time(Second))
}

// TestShardedCrossTieOrder pins the barrier merge order: two cross-shard
// events landing on one shard at the same timestamp execute in source-
// shard order regardless of emission interleaving.
func TestShardedCrossTieOrder(t *testing.T) {
	for _, workers := range []int{1, 3} {
		g := NewSharded(5, 3, workers)
		g.SetLookahead(Duration(Millisecond))
		var order []int
		when := Time(2 * Millisecond)
		// Shards 2 and 1 both target shard 0 at the same instant.
		g.Shard(2).At(Time(Microsecond), func() {
			g.Send(2, 0, when, func(any) { order = append(order, 2) }, nil)
		})
		g.Shard(1).At(Time(Microsecond), func() {
			g.Send(1, 0, when, func(any) { order = append(order, 1) }, nil)
		})
		g.RunUntil(Time(10 * Millisecond))
		g.Close()
		if len(order) != 2 || order[0] != 1 || order[1] != 2 {
			t.Fatalf("workers=%d: cross-shard tie order = %v, want [1 2]", workers, order)
		}
	}
}

// TestMergeStable pins the canonical cross-shard merge order shared by the
// engine's event lanes and the flight recorder: concatenate parts in slice
// order, stable-sort by timestamp — i.e. (time, part index, emission order).
func TestMergeStable(t *testing.T) {
	type ev struct {
		when Time
		tag  string
	}
	when := func(e ev) Time { return e.when }
	parts := [][]ev{
		{{20, "p0a"}, {20, "p0b"}, {50, "p0c"}},
		{{10, "p1a"}, {20, "p1b"}},
		nil,
		{{20, "p3a"}},
	}
	got := MergeStable(parts, when)
	want := []string{"p1a", "p0a", "p0b", "p1b", "p3a", "p0c"}
	if len(got) != len(want) {
		t.Fatalf("merged %d events, want %d", len(got), len(want))
	}
	for i, tag := range want {
		if got[i].tag != tag {
			t.Errorf("merged[%d] = %s, want %s", i, got[i].tag, tag)
		}
	}
	if MergeStable([][]ev{nil, {}}, when) != nil {
		t.Error("all-empty merge should be nil")
	}
	// Single non-empty part: documented to alias the source (no copy).
	solo := []ev{{3, "x"}, {1, "y"}}
	out := MergeStable([][]ev{nil, solo, nil}, when)
	if len(out) != 2 || out[0].tag != "y" || out[1].tag != "x" {
		t.Fatalf("single-part merge = %+v", out)
	}
	if &out[0] != &solo[0] {
		t.Error("single-part merge no longer aliases its source; update the doc contract")
	}
}
