// Package sim provides a deterministic discrete-event simulation engine.
//
// All WOW experiments run in virtual time: protocol stacks, NAT boxes, batch
// schedulers and file transfers schedule events on a shared Simulator, which
// executes them in timestamp order. A seeded random source makes every run
// repeatable, and experiments that took hours on the paper's PlanetLab
// testbed complete in milliseconds of wall-clock time.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time in nanoseconds. It mirrors
// time.Duration so the familiar unit constants can be used.
type Duration int64

// Common durations, mirroring the time package.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
	Hour                 = 60 * Minute
)

// Seconds reports the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// String formats the duration in seconds with millisecond precision.
func (d Duration) String() string { return fmt.Sprintf("%.3fs", d.Seconds()) }

// Seconds reports the time as a floating-point number of seconds since
// simulation start.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// String formats the time in seconds with millisecond precision.
func (t Time) String() string { return fmt.Sprintf("t=%.3fs", t.Seconds()) }

// event is a pooled scheduled callback. Fired and cancelled events return
// to the simulator's free list, so cancel-heavy workloads (retransmit
// timers, keepalives) recycle a small working set instead of churning the
// allocator. gen is bumped on every release; Timer handles carry the gen
// they were issued with, so a stale handle can never cancel a recycled
// event.
type event struct {
	when  Time
	seq   uint64 // tie-breaker: FIFO among equal timestamps
	index int    // heap index
	gen   uint64
	fn    func()
	argFn func(any)
	arg   any
	next  *event // free-list link
}

// Timer is a cancelable handle to a scheduled event, returned by the
// scheduling methods. It is a value: copy it freely. The zero Timer is
// inert — Cancel and Active on it are no-ops — so an unarmed timer field
// needs no nil check. A Timer whose event has already fired (or been
// cancelled) is likewise inert, even after the simulator recycles the
// underlying event for an unrelated callback.
type Timer struct {
	s   *Simulator
	ev  *event
	gen uint64
}

// Active reports whether the timer's event is still pending.
func (t Timer) Active() bool { return t.ev != nil && t.ev.gen == t.gen }

// Time reports when the event is scheduled to fire; zero for an inert
// timer.
func (t Timer) Time() Time {
	if !t.Active() {
		return 0
	}
	return t.ev.when
}

// Cancel prevents a pending event from firing, removing it from the queue
// immediately. Cancelling an event that has already fired or been
// cancelled is a no-op. Cancel reports whether the event was still
// pending.
func (t Timer) Cancel() bool {
	if !t.Active() {
		return false
	}
	heap.Remove(&t.s.queue, t.ev.index)
	t.s.release(t.ev)
	return true
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Simulator owns the virtual clock and the pending-event queue. It is not
// safe for concurrent use; one goroutine drives one Simulator. Independent
// simulations (e.g. benchmark trials) may run in parallel goroutines, each
// with its own Simulator.
type Simulator struct {
	now     Time
	queue   eventHeap
	free    *event
	nextSeq uint64
	rng     *rand.Rand
	stopped bool

	// Processed counts events executed since construction; useful for
	// run-length diagnostics and loop detection in tests.
	Processed uint64
}

// New creates a simulator whose random source is seeded with seed.
func New(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Rand returns the simulator's deterministic random source.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// acquire takes an event from the free list, or allocates one.
func (s *Simulator) acquire() *event {
	e := s.free
	if e != nil {
		s.free = e.next
		e.next = nil
		return e
	}
	return &event{}
}

// release retires an event to the free list. Bumping gen here invalidates
// every Timer handle issued for the retired scheduling.
func (s *Simulator) release(e *event) {
	e.gen++
	e.fn, e.argFn, e.arg = nil, nil, nil
	e.next = s.free
	s.free = e
}

// schedule enqueues a filled callback at absolute time t (clamped to now).
func (s *Simulator) schedule(t Time, fn func(), argFn func(any), arg any) Timer {
	if t < s.now {
		t = s.now
	}
	e := s.acquire()
	e.when, e.seq = t, s.nextSeq
	e.fn, e.argFn, e.arg = fn, argFn, arg
	s.nextSeq++
	heap.Push(&s.queue, e)
	return Timer{s: s, ev: e, gen: e.gen}
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// clamps to the current time (the event runs next).
func (s *Simulator) At(t Time, fn func()) Timer {
	return s.schedule(t, fn, nil, nil)
}

// After schedules fn to run d from now. Negative d is treated as zero.
func (s *Simulator) After(d Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now.Add(d), fn)
}

// AtArg schedules fn(arg) at absolute virtual time t. With a package-level
// (non-capturing) fn this schedules without allocating: no closure is
// created, and the pooled event carries arg — the allocation-free form the
// packet-delivery hot path uses.
func (s *Simulator) AtArg(t Time, fn func(any), arg any) Timer {
	return s.schedule(t, nil, fn, arg)
}

// Stop terminates the run loop after the currently executing event returns.
func (s *Simulator) Stop() { s.stopped = true }

// Pending reports the number of events waiting in the queue. Cancelled
// events leave the queue immediately and are not counted.
func (s *Simulator) Pending() int { return len(s.queue) }

// step executes the next pending event. It reports false when the queue is
// empty or the simulator has been stopped.
func (s *Simulator) step(limit Time) bool {
	if s.stopped || len(s.queue) == 0 {
		return false
	}
	next := s.queue[0]
	if limit >= 0 && next.when > limit {
		return false
	}
	heap.Pop(&s.queue)
	s.now = next.when
	s.Processed++
	// Release before running: the callback may itself schedule (reusing
	// this event), and any stale Timer handle is already invalidated.
	fn, argFn, arg := next.fn, next.argFn, next.arg
	s.release(next)
	if argFn != nil {
		argFn(arg)
	} else {
		fn()
	}
	return true
}

// Run executes events until the queue is empty or Stop is called.
func (s *Simulator) Run() {
	s.stopped = false
	for s.step(-1) {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// t. Events scheduled beyond t remain queued.
func (s *Simulator) RunUntil(t Time) {
	s.stopped = false
	for s.step(t) {
	}
	if !s.stopped && t > s.now {
		s.now = t
	}
}

// RunFor executes events for the next d of virtual time.
func (s *Simulator) RunFor(d Duration) { s.RunUntil(s.now.Add(d)) }

// PeekTime reports the timestamp of the earliest pending event. The second
// return is false when the queue is empty. Sharded coordinators use it to
// compute the global window floor without popping anything.
func (s *Simulator) PeekTime() (Time, bool) {
	if len(s.queue) == 0 {
		return 0, false
	}
	return s.queue[0].when, true
}

// RunBefore executes every event with timestamp strictly less than t and
// stops without advancing the clock past the last executed event. It is the
// window-execution primitive of the sharded engine: a shard runs its slice
// of the window [T, T+lookahead) with RunBefore(T+lookahead), leaving
// events at or beyond the window boundary queued for later windows.
func (s *Simulator) RunBefore(t Time) {
	s.stopped = false
	for !s.stopped && len(s.queue) > 0 && s.queue[0].when < t {
		s.step(-1)
	}
}

// AdvanceTo moves the clock forward to t without executing anything.
// Moving backward is a no-op. The sharded coordinator uses it to bring
// every shard's clock to the common horizon after the last window.
func (s *Simulator) AdvanceTo(t Time) {
	if t > s.now {
		s.now = t
	}
}

// Ticker invokes fn every interval until the returned stop function is
// called. The first invocation happens one interval from now.
type Ticker struct {
	stop bool
	ev   Timer
}

// Stop halts the ticker; the pending tick is cancelled.
func (t *Ticker) Stop() {
	t.stop = true
	t.ev.Cancel()
}

// Tick schedules fn to run every interval of virtual time. Jitter, when
// positive, uniformly perturbs each interval by ±jitter to avoid lock-step
// synchronization across many nodes.
func (s *Simulator) Tick(interval, jitter Duration, fn func()) *Ticker {
	return s.TickRand(interval, jitter, nil, fn)
}

// TickRand is Tick with an explicit jitter source: a non-nil rng supplies
// the interval perturbations instead of the simulator's shared RNG. Nodes
// that carry their own seeded RNG use this to keep protocol jitter
// independent of the global draw sequence (and therefore identical across
// shard counts on the parallel engine). A nil rng is exactly Tick.
func (s *Simulator) TickRand(interval, jitter Duration, rng *rand.Rand, fn func()) *Ticker {
	if rng == nil {
		rng = s.rng
	}
	t := &Ticker{}
	var schedule func()
	schedule = func() {
		d := interval
		if jitter > 0 {
			d += Duration(rng.Int63n(int64(2*jitter))) - jitter
			if d < Nanosecond {
				d = Nanosecond
			}
		}
		t.ev = s.After(d, func() {
			if t.stop {
				return
			}
			fn()
			if !t.stop {
				schedule()
			}
		})
	}
	schedule()
	return t
}
