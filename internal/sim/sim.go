// Package sim provides a deterministic discrete-event simulation engine.
//
// All WOW experiments run in virtual time: protocol stacks, NAT boxes, batch
// schedulers and file transfers schedule events on a shared Simulator, which
// executes them in timestamp order. A seeded random source makes every run
// repeatable, and experiments that took hours on the paper's PlanetLab
// testbed complete in milliseconds of wall-clock time.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time in nanoseconds. It mirrors
// time.Duration so the familiar unit constants can be used.
type Duration int64

// Common durations, mirroring the time package.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
	Hour                 = 60 * Minute
)

// Seconds reports the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// String formats the duration in seconds with millisecond precision.
func (d Duration) String() string { return fmt.Sprintf("%.3fs", d.Seconds()) }

// Seconds reports the time as a floating-point number of seconds since
// simulation start.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// String formats the time in seconds with millisecond precision.
func (t Time) String() string { return fmt.Sprintf("t=%.3fs", t.Seconds()) }

// Event is a scheduled callback. It is returned by the scheduling methods so
// callers can cancel pending events (e.g. retransmission timers).
type Event struct {
	when     Time
	seq      uint64 // tie-breaker: FIFO among equal timestamps
	index    int    // heap index, -1 once popped or cancelled
	fn       func()
	canceled bool
}

// Time reports when the event is (or was) scheduled to fire.
func (e *Event) Time() Time { return e.when }

// Cancel prevents a pending event from firing. Cancelling an event that has
// already fired or been cancelled is a no-op. Cancel reports whether the
// event was still pending.
func (e *Event) Cancel() bool {
	if e == nil || e.canceled || e.index < 0 {
		return false
	}
	e.canceled = true
	return true
}

// Canceled reports whether Cancel was called before the event fired.
func (e *Event) Canceled() bool { return e != nil && e.canceled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Simulator owns the virtual clock and the pending-event queue. It is not
// safe for concurrent use; one goroutine drives one Simulator. Independent
// simulations (e.g. benchmark trials) may run in parallel goroutines, each
// with its own Simulator.
type Simulator struct {
	now     Time
	queue   eventHeap
	nextSeq uint64
	rng     *rand.Rand
	stopped bool

	// Processed counts events executed since construction; useful for
	// run-length diagnostics and loop detection in tests.
	Processed uint64
}

// New creates a simulator whose random source is seeded with seed.
func New(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Rand returns the simulator's deterministic random source.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// clamps to the current time (the event runs next).
func (s *Simulator) At(t Time, fn func()) *Event {
	if t < s.now {
		t = s.now
	}
	ev := &Event{when: t, seq: s.nextSeq, fn: fn}
	s.nextSeq++
	heap.Push(&s.queue, ev)
	return ev
}

// After schedules fn to run d from now. Negative d is treated as zero.
func (s *Simulator) After(d Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now.Add(d), fn)
}

// Stop terminates the run loop after the currently executing event returns.
func (s *Simulator) Stop() { s.stopped = true }

// Pending reports the number of events waiting in the queue, including
// cancelled events that have not yet been discarded.
func (s *Simulator) Pending() int { return len(s.queue) }

// step executes the next pending event. It reports false when the queue is
// empty or the simulator has been stopped.
func (s *Simulator) step(limit Time) bool {
	for !s.stopped && len(s.queue) > 0 {
		next := s.queue[0]
		if limit >= 0 && next.when > limit {
			return false
		}
		heap.Pop(&s.queue)
		if next.canceled {
			continue
		}
		s.now = next.when
		s.Processed++
		next.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty or Stop is called.
func (s *Simulator) Run() {
	s.stopped = false
	for s.step(-1) {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// t. Events scheduled beyond t remain queued.
func (s *Simulator) RunUntil(t Time) {
	s.stopped = false
	for s.step(t) {
	}
	if !s.stopped && t > s.now {
		s.now = t
	}
}

// RunFor executes events for the next d of virtual time.
func (s *Simulator) RunFor(d Duration) { s.RunUntil(s.now.Add(d)) }

// Ticker invokes fn every interval until the returned stop function is
// called. The first invocation happens one interval from now.
type Ticker struct {
	stop bool
	ev   *Event
}

// Stop halts the ticker; the pending tick is cancelled.
func (t *Ticker) Stop() {
	t.stop = true
	t.ev.Cancel()
}

// Tick schedules fn to run every interval of virtual time. Jitter, when
// positive, uniformly perturbs each interval by ±jitter to avoid lock-step
// synchronization across many nodes.
func (s *Simulator) Tick(interval, jitter Duration, fn func()) *Ticker {
	t := &Ticker{}
	var schedule func()
	schedule = func() {
		d := interval
		if jitter > 0 {
			d += Duration(s.rng.Int63n(int64(2*jitter))) - jitter
			if d < Nanosecond {
				d = Nanosecond
			}
		}
		t.ev = s.After(d, func() {
			if t.stop {
				return
			}
			fn()
			if !t.stop {
				schedule()
			}
		})
	}
	schedule()
	return t
}
