package sim

import (
	"fmt"
	"sort"
	"sync"
)

// Sharded is a conservative parallel discrete-event engine: K Simulators
// (shards) advancing in lock-step windows of at most one lookahead each.
// The overlay simulation assigns every site to a shard, so a shard owns
// all events of its sites' hosts; the only inter-shard interaction is a
// packet crossing a wide-area path, whose delivery time is bounded below
// by the WAN latency floor. That bound is the classic conservative-PDES
// lookahead: while executing the window [T, T+L), no shard can receive
// anything from another shard earlier than T+L, so all K shards may run
// the window concurrently without ever seeing an event out of timestamp
// order.
//
// Determinism contract: the trace is a pure function of (seed, shard
// count). The worker count only controls how many OS threads execute a
// window and never affects results — cross-shard events travel through
// per-(src,dst) lanes that are single-writer during a window and are
// merged at the barrier in a fixed total order (timestamp, then source
// shard, then emission order). A Sharded engine with one shard is exactly
// the single-threaded Simulator: RunUntil delegates and no windowing
// happens. With K>1 shards each shard has its own event sequence numbers
// and random stream (shard i is seeded with seed+i*1e6+3), so a K-shard
// trace is not the 1-shard trace re-ordered — it is its own reproducible
// execution, equivalent to running the K shards in a single thread in
// global timestamp order (see the testing/quick property in shard_test.go).
type Sharded struct {
	shards    []*Simulator
	workers   int
	lookahead Duration

	// lanes[from*K+to] buffers cross-shard events emitted during the
	// current window. Each lane has exactly one writer (shard `from`'s
	// goroutine), so appends are race-free without locks; the coordinator
	// drains every lane between windows.
	lanes [][]crossEvent
	// mergeScratch is the reusable per-destination lane gather for
	// mergeLanes (the strided lanes layout can't be sliced directly).
	mergeScratch [][]crossEvent

	windowEnd Time // exclusive bound of the in-flight window
	inWindow  bool

	jobs    chan int
	done    chan struct{}
	wg      sync.WaitGroup
	started bool
	closed  bool

	// panicMu/panicked capture a panic raised inside a worker so the
	// coordinator can re-raise it on the calling goroutine (a raw panic in
	// a worker would kill the process before any test could observe it).
	panicMu  sync.Mutex
	panicked any
}

// crossEvent is a buffered cross-shard callback. Entries within one lane
// keep emission order; the barrier merge sorts lanes per destination with
// a stable sort keyed on the timestamp, so ties resolve to (timestamp,
// source shard, emission order) — a total order independent of worker
// scheduling.
type crossEvent struct {
	when Time
	fn   func(any)
	arg  any
}

// shardSeedStride separates the shard random streams; any odd constant
// works, it only has to be fixed forever for reproducibility.
const shardSeedStride = 1_000_003

// NewSharded creates a K-shard engine. Shard i runs on its own Simulator
// seeded with seed+i*shardSeedStride. workers bounds the goroutines used
// per window; values below 1 or above K are clamped.
func NewSharded(seed int64, k, workers int) *Sharded {
	if k < 1 {
		panic("sim: sharded engine needs at least one shard")
	}
	if workers < 1 {
		workers = 1
	}
	if workers > k {
		workers = k
	}
	g := &Sharded{
		shards:  make([]*Simulator, k),
		workers: workers,
		lanes:   make([][]crossEvent, k*k),
		jobs:    make(chan int),
		done:    make(chan struct{}),
	}
	for i := range g.shards {
		g.shards[i] = New(seed + int64(i)*shardSeedStride)
	}
	return g
}

// Shards reports the shard count K.
func (g *Sharded) Shards() int { return len(g.shards) }

// Workers reports the clamped worker count.
func (g *Sharded) Workers() int { return g.workers }

// Shard returns shard i's Simulator. Outside RunUntil it may be used
// freely (scheduling setup events, reading clocks); during a run it must
// only be touched by events executing on that shard.
func (g *Sharded) Shard(i int) *Simulator { return g.shards[i] }

// SetLookahead sets the conservative window length: the guaranteed
// minimum delay of any cross-shard event, i.e. the infimum of inter-site
// delivery latency between hosts on different shards (phys computes it
// with Network.CrossShardFloor). Middlebox (realm-boundary) traversal
// never shrinks this bound: a boundary-deferred packet crosses shards
// exactly once, at its wide-area arrival time, and the inbound NAT or
// firewall descent then executes at that same timestamp on the receiving
// shard — translation adds work, not an earlier cross-shard event. Must
// be positive before a multi-shard RunUntil.
func (g *Sharded) SetLookahead(d Duration) {
	if d <= 0 {
		panic("sim: lookahead must be positive")
	}
	g.lookahead = d
}

// Lookahead reports the configured window length.
func (g *Sharded) Lookahead() Duration { return g.lookahead }

// Processed sums events executed across all shards.
func (g *Sharded) Processed() uint64 {
	var total uint64
	for _, s := range g.shards {
		total += s.Processed
	}
	return total
}

// Pending sums queued events across all shards.
func (g *Sharded) Pending() int {
	total := 0
	for _, s := range g.shards {
		total += s.Pending()
	}
	return total
}

// Now reports the maximum shard clock — after RunUntil(t) returns this is
// t for every shard, so it reads as the engine's clock between runs.
func (g *Sharded) Now() Time {
	var max Time
	for _, s := range g.shards {
		if n := s.Now(); n > max {
			max = n
		}
	}
	return max
}

// Send schedules fn(arg) at absolute time when on shard to, on behalf of
// shard from. During a window it buffers into the (from,to) lane and
// panics if when violates the lookahead guarantee — a violation means the
// latency model allowed a cross-shard delivery faster than the configured
// floor, which would let the destination shard observe the past. Outside
// a run it schedules directly (harness setup, between-phase injection).
func (g *Sharded) Send(from, to int, when Time, fn func(any), arg any) {
	if !g.inWindow {
		g.shards[to].AtArg(when, fn, arg)
		return
	}
	if when < g.windowEnd {
		panic(fmt.Sprintf("sim: lookahead violation: shard %d sent an event to shard %d at %v inside window ending %v (lookahead %v too large for the latency floor)",
			from, to, when, g.windowEnd, g.lookahead))
	}
	lane := &g.lanes[from*len(g.shards)+to]
	*lane = append(*lane, crossEvent{when: when, fn: fn, arg: arg})
}

// ensureWorkers lazily starts the persistent worker pool. Each worker
// pulls shard indices off jobs and runs that shard's slice of the current
// window; the channel handoff orders the coordinator's window state
// (windowEnd, lane resets) before shard execution, and wg.Wait orders all
// shard writes before the coordinator's merge.
func (g *Sharded) ensureWorkers() {
	if g.started {
		return
	}
	g.started = true
	for w := 0; w < g.workers; w++ {
		go func() {
			for {
				select {
				case i := <-g.jobs:
					g.runShardWindow(i)
					g.wg.Done()
				case <-g.done:
					return
				}
			}
		}()
	}
}

// runShardWindow executes shard i's slice of the current window,
// converting an event-callback panic into a recorded value for the
// coordinator to re-raise.
func (g *Sharded) runShardWindow(i int) {
	defer func() {
		if r := recover(); r != nil {
			g.panicMu.Lock()
			if g.panicked == nil {
				g.panicked = r
			}
			g.panicMu.Unlock()
		}
	}()
	g.shards[i].RunBefore(g.windowEnd)
}

// Close stops the worker pool. The engine is unusable afterwards; only
// needed by harnesses that create many engines in one process.
func (g *Sharded) Close() {
	if g.started && !g.closed {
		close(g.done)
	}
	g.closed = true
}

// RunUntil executes events on every shard up to and including timestamp t
// and advances all shard clocks to t, like Simulator.RunUntil but in
// parallel windows. With one shard it delegates to the plain Simulator.
func (g *Sharded) RunUntil(t Time) {
	if len(g.shards) == 1 {
		g.shards[0].RunUntil(t)
		return
	}
	if g.lookahead <= 0 {
		panic("sim: multi-shard RunUntil without SetLookahead")
	}
	g.ensureWorkers()
	var active []int
	for {
		// Global window floor: earliest pending event anywhere.
		var floor Time
		have := false
		for _, s := range g.shards {
			if pt, ok := s.PeekTime(); ok && (!have || pt < floor) {
				floor, have = pt, true
			}
		}
		if !have || floor > t {
			break
		}
		end := floor.Add(g.lookahead)
		if end > t {
			end = t + 1 // inclusive of events exactly at t
		}
		g.windowEnd = end
		g.inWindow = true
		active = active[:0]
		for i, s := range g.shards {
			if pt, ok := s.PeekTime(); ok && pt < end {
				active = append(active, i)
			}
		}
		g.wg.Add(len(active))
		for _, i := range active {
			g.jobs <- i
		}
		g.wg.Wait()
		g.inWindow = false
		if g.panicked != nil {
			r := g.panicked
			g.panicked = nil
			panic(r)
		}
		g.mergeLanes()
	}
	for _, s := range g.shards {
		s.AdvanceTo(t)
	}
}

// RunFor advances every shard d beyond the engine's current clock, like
// Simulator.RunFor but across all shards.
func (g *Sharded) RunFor(d Duration) { g.RunUntil(g.Now().Add(d)) }

// MergeStable concatenates parts in slice order and stable-sorts the
// result by when, yielding the canonical (timestamp, part index, emission
// order) total order used for every deterministic cross-shard merge: the
// engine's event lanes and the flight recorder's trace buffers. When
// exactly one part is non-empty the result aliases it (no copy) — callers
// that reuse the source storage must consume the result before clearing.
func MergeStable[T any](parts [][]T, when func(T) Time) []T {
	var buf []T
	single := -1
	for i, p := range parts {
		if len(p) == 0 {
			continue
		}
		if single == -1 && buf == nil {
			single = i
			continue
		}
		if single >= 0 {
			buf = append(buf, parts[single]...)
			single = -1
		}
		buf = append(buf, p...)
	}
	if single >= 0 {
		buf = parts[single]
	}
	if len(buf) == 0 {
		return nil
	}
	sort.SliceStable(buf, func(i, j int) bool { return when(buf[i]) < when(buf[j]) })
	return buf
}

// mergeLanes drains every cross-shard lane into its destination shard in
// the canonical order. Lanes are concatenated in source-shard order and
// stable-sorted by timestamp, yielding the (timestamp, source shard,
// emission order) total order the determinism contract promises.
func (g *Sharded) mergeLanes() {
	k := len(g.shards)
	if g.mergeScratch == nil {
		g.mergeScratch = make([][]crossEvent, k)
	}
	for to := 0; to < k; to++ {
		for from := 0; from < k; from++ {
			g.mergeScratch[from] = g.lanes[from*k+to]
		}
		buf := MergeStable(g.mergeScratch, func(e crossEvent) Time { return e.when })
		if len(buf) == 0 {
			continue
		}
		dst := g.shards[to]
		for i := range buf {
			dst.AtArg(buf[i].when, buf[i].fn, buf[i].arg)
		}
		for from := 0; from < k; from++ {
			lane := g.lanes[from*k+to]
			for i := range lane {
				lane[i] = crossEvent{}
			}
			g.lanes[from*k+to] = lane[:0]
		}
	}
}
