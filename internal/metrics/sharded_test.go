package metrics

import "testing"

func TestShardedCounters(t *testing.T) {
	s := NewSharded(4)
	if s.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", s.Shards())
	}
	// Mixed handle and named increments, spread across shards.
	h0 := s.Shard(0).Handle("delivered")
	h0.Inc(10)
	s.Shard(1).Inc("delivered", 5)
	s.Shard(2).Inc("lost.wire", 3)
	s.Shard(3).Inc("delivered", 1)
	if got := s.Get("delivered"); got != 16 {
		t.Fatalf("Get(delivered) = %d, want 16", got)
	}
	m := s.Merged()
	if got := m.Get("delivered"); got != 16 {
		t.Fatalf("Merged delivered = %d, want 16", got)
	}
	if got := m.Get("lost.wire"); got != 3 {
		t.Fatalf("Merged lost.wire = %d, want 3", got)
	}
	// Merging must not alias shard state: bump a shard afterwards and the
	// earlier merge stays frozen.
	s.Shard(0).Inc("delivered", 100)
	if got := m.Get("delivered"); got != 16 {
		t.Fatalf("merged view mutated after shard increment: %d", got)
	}
}

func TestShardedCountersPanicsOnZeroShards(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k=0")
		}
	}()
	NewSharded(0)
}
