package metrics

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Fatalf("N = %d", s.N)
	}
	if s.Mean != 5 {
		t.Fatalf("Mean = %v", s.Mean)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	// Sample std of this classic dataset is sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.Std-want) > 1e-12 {
		t.Fatalf("Std = %v, want %v", s.Std, want)
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if !strings.Contains(s.String(), "mean=2.00") {
		t.Fatalf("String = %q", s.String())
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {90, 4.6},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("P%.0f = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("percentile of empty sample should be NaN")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-5, 0, 9.99, 10, 25, 49, 50, 1000} {
		h.Add(x)
	}
	want := []int{3, 1, 1, 0, 3} // clamped below into bin0, above into bin4
	for i := range want {
		if h.Counts[i] != want[i] {
			t.Fatalf("counts = %v, want %v", h.Counts, want)
		}
	}
	if h.Total() != 8 {
		t.Fatalf("total = %d", h.Total())
	}
}

func TestHistogramFrequencies(t *testing.T) {
	h := NewHistogram(0, 1, 2)
	if f := h.Frequencies(); f[0] != 0 || f[1] != 0 {
		t.Fatal("empty histogram should have zero frequencies")
	}
	h.Add(0.5)
	h.Add(1.5)
	h.Add(1.5)
	f := h.Frequencies()
	if math.Abs(f[0]-1.0/3) > 1e-12 || math.Abs(f[1]-2.0/3) > 1e-12 {
		t.Fatalf("frequencies = %v", f)
	}
}

func TestHistogramBinCenterAndString(t *testing.T) {
	h := NewHistogram(0, 16, 6)
	if h.BinCenter(0) != 8 || h.BinCenter(1) != 24 {
		t.Fatalf("bin centers wrong: %v %v", h.BinCenter(0), h.BinCenter(1))
	}
	h.Add(8)
	if !strings.Contains(h.String(), "%") {
		t.Fatal("String output missing percents")
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 1, 0) },
		func() { NewHistogram(0, 0, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Name = "latency"
	s.Append(1, 100)
	s.Append(2, 50)
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	tt, v := s.At(1)
	if tt != 2 || v != 50 {
		t.Fatalf("At(1) = %v,%v", tt, v)
	}
	csv := s.CSV()
	if !strings.HasPrefix(csv, "t,latency\n") || !strings.Contains(csv, "2.000,50.0000") {
		t.Fatalf("CSV = %q", csv)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	if c.Get("x") != 0 {
		t.Fatal("zero counter should read 0")
	}
	c.Inc("b", 2)
	c.Inc("a", 1)
	c.Inc("b", 3)
	if c.Get("b") != 5 {
		t.Fatalf("b = %d", c.Get("b"))
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
	if c.String() != "a=1 b=5" {
		t.Fatalf("String = %q", c.String())
	}
}

// Property: mean lies within [min, max] and histogram total equals sample
// count for arbitrary inputs.
func TestQuickSummaryBounds(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		s := Summarize(xs)
		if s.Mean < s.Min-1e-9 || s.Mean > s.Max+1e-9 {
			return false
		}
		h := NewHistogram(-40000, 1000, 80)
		for _, x := range xs {
			h.Add(x)
		}
		return h.Total() == len(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}

// Property: Percentile is monotone in p.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(raw []int8, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		p1 := float64(a % 101)
		p2 := float64(b % 101)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		return Percentile(xs, p1) <= Percentile(xs, p2)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(4))}); err != nil {
		t.Fatal(err)
	}
}

func TestCounterMerge(t *testing.T) {
	var a, b Counter
	a.Inc("x", 2)
	a.Inc("y", 1)
	b.Inc("x", 3)
	b.Inc("z", 5)
	a.Merge(&b)
	if a.Get("x") != 5 || a.Get("y") != 1 || a.Get("z") != 5 {
		t.Fatalf("merge wrong: %s", a.String())
	}
	if b.Get("x") != 3 {
		t.Fatal("merge mutated source")
	}
	var empty Counter
	a.Merge(&empty) // merging a zero-value Counter is a no-op
	if a.Get("x") != 5 {
		t.Fatal("empty merge changed counts")
	}
}

func TestHistogramOutliers(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	if u, o := h.Outliers(); u != 0 || o != 0 {
		t.Fatalf("fresh histogram outliers = %d,%d", u, o)
	}
	h.Add(25) // in range: no outlier
	h.Add(-5) // below
	h.Add(-1) // below
	h.Add(50) // at top edge: clamped
	h.Add(1000)
	u, o := h.Outliers()
	if u != 2 || o != 2 {
		t.Fatalf("outliers = %d,%d, want 2,2", u, o)
	}
	// Clamped samples still count in the edge bins and the total.
	if h.Counts[0] != 2 || h.Counts[4] != 2 || h.Total() != 5 {
		t.Fatalf("counts = %v total = %d", h.Counts, h.Total())
	}
	if !strings.Contains(h.String(), "outliers: under=2 over=2") {
		t.Fatalf("String missing outlier line:\n%s", h.String())
	}
	clean := NewHistogram(0, 10, 5)
	clean.Add(25)
	if strings.Contains(clean.String(), "outliers") {
		t.Fatal("outlier line printed with no outliers")
	}
}

func TestLogHistogram(t *testing.T) {
	h := NewLogHistogram(1, 10, 4) // bins [1,10) [10,100) [100,1e3) [1e3,1e4)
	for _, x := range []float64{1, 5, 50, 500, 5000, 9999} {
		h.Add(x)
	}
	want := []int{2, 1, 1, 2}
	for i := range want {
		if h.Counts[i] != want[i] {
			t.Fatalf("counts = %v, want %v", h.Counts, want)
		}
	}
	if u, o := h.Outliers(); u != 0 || o != 0 {
		t.Fatalf("in-range samples counted as outliers: %d,%d", u, o)
	}
	h.Add(0)   // non-positive: underflow
	h.Add(-3)  // non-positive: underflow
	h.Add(0.5) // below range
	h.Add(1e4) // at top edge
	h.Add(1e6) // far above
	if u, o := h.Outliers(); u != 3 || o != 2 {
		t.Fatalf("outliers = %d,%d, want 3,2", u, o)
	}
	if h.Total() != 11 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.BinLo(0) != 1 || h.BinLo(2) != 100 {
		t.Fatalf("BinLo wrong: %v %v", h.BinLo(0), h.BinLo(2))
	}
	f := h.Frequencies()
	var sum float64
	for _, v := range f {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("frequencies sum to %v", sum)
	}
	if !strings.Contains(h.String(), "outliers: under=3 over=2") {
		t.Fatalf("String missing outlier line:\n%s", h.String())
	}
	for _, f := range []func(){
		func() { NewLogHistogram(1, 2, 0) },
		func() { NewLogHistogram(0, 2, 4) },
		func() { NewLogHistogram(1, 1, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// TestCounterMergeHandles: Merge must fold in counts living in handle
// cells on either side, and Names must interleave map-backed and
// handle-backed names in one sorted order with no duplicates.
func TestCounterMergeHandles(t *testing.T) {
	var a, b Counter
	a.Inc("m", 1)         // map-backed
	a.Handle("h").Inc(2)  // cell-backed
	b.Handle("m").Inc(10) // cell-backed on a name a holds in its map
	b.Inc("h", 20)        // b's map, a's cell
	b.Handle("z")         // resolved but never incremented
	a.Merge(&b)
	if a.Get("m") != 11 || a.Get("h") != 22 || a.Get("z") != 0 {
		t.Fatalf("merge wrong: %s", a.String())
	}
	names := a.Names()
	want := []string{"h", "m", "z"}
	if len(names) != len(want) {
		t.Fatalf("names = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
	// A name living in both the map and a cell must be listed once and
	// read as the sum of both stores.
	var c Counter
	c.Inc("dual", 1)        // map store
	c.Handle("dual").Inc(2) // cell store, same name
	if got := c.Names(); len(got) != 1 || got[0] != "dual" {
		t.Fatalf("dual-store name duplicated: %v", got)
	}
	if c.Get("dual") != 3 {
		t.Fatalf("dual-store read = %d, want 3", c.Get("dual"))
	}
}

// TestShardedConcurrentWrites exercises the sharded counters' ownership
// contract under the race detector: every shard writes only its own
// Counter from its own goroutine (mixing map Incs and pre-resolved
// handles), and the merged view read afterwards is exact.
func TestShardedConcurrentWrites(t *testing.T) {
	const shards, perShard = 8, 10000
	s := NewSharded(shards)
	hot := s.Handles("hot")
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := s.Shard(i)
			for j := 0; j < perShard; j++ {
				hot[i].Inc(1)
				c.Inc("cold", 2)
			}
			c.Inc(fmt.Sprintf("shard%d", i), int64(i))
		}()
	}
	wg.Wait()
	m := s.Merged()
	if got := m.Get("hot"); got != shards*perShard {
		t.Errorf("hot = %d, want %d", got, shards*perShard)
	}
	if got := s.Get("cold"); got != shards*perShard*2 {
		t.Errorf("cold = %d, want %d", got, shards*perShard*2)
	}
	for i := 0; i < shards; i++ {
		if got := m.Get(fmt.Sprintf("shard%d", i)); got != int64(i) {
			t.Errorf("shard%d = %d, want %d", i, got, i)
		}
	}
}

func TestRecoveryReportString(t *testing.T) {
	r := &RecoveryReport{Scenario: "partition-heal", RecoverySec: 12.5}
	r.Counters.Inc("relink.success", 3)
	s := r.String()
	if !strings.Contains(s, "partition-heal") || !strings.Contains(s, "12.5s") {
		t.Fatalf("missing scenario/recovery line:\n%s", s)
	}
	// Every standard counter appears, including zeros.
	for _, name := range RecoveryNames {
		if !strings.Contains(s, name) {
			t.Fatalf("missing %s in:\n%s", name, s)
		}
	}
	r.RecoverySec = -1
	if !strings.Contains(r.String(), "DID NOT RECOVER") {
		t.Fatal("negative recovery not flagged")
	}
}
