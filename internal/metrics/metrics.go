// Package metrics provides the small statistics toolkit used by every WOW
// experiment: summary statistics, percentiles, fixed-bin histograms and
// time-series capture, matching the presentation style of the paper's
// tables and figures.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds aggregate statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes summary statistics of xs. An empty sample yields a
// zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var sq float64
	for _, x := range xs {
		d := x - s.Mean
		sq += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(sq / float64(len(xs)-1))
	}
	s.Median = Percentile(xs, 50)
	return s
}

// String renders the summary as "mean=… std=… min=… max=… n=…".
func (s Summary) String() string {
	return fmt.Sprintf("mean=%.2f std=%.2f min=%.2f max=%.2f n=%d", s.Mean, s.Std, s.Min, s.Max, s.N)
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It copies and sorts internally.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if p <= 0 {
		return cp[0]
	}
	if p >= 100 {
		return cp[len(cp)-1]
	}
	rank := p / 100 * float64(len(cp)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return cp[lo]
	}
	frac := rank - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}

// Histogram is a fixed-width-bin histogram over [Lo, Lo+Width*len(Counts)).
// Samples outside the range are clamped into the first/last bin, mirroring
// how the paper's Figure 8 bins wall-clock times — but no longer silently:
// Outliers reports how many samples were clamped on each side, and String
// appends the counts whenever they are non-zero, so an invisible tail in a
// figure is at least a visible number in the report.
type Histogram struct {
	Lo     float64
	Width  float64
	Counts []int
	total  int
	// under/over count samples clamped into the edge bins from below the
	// range and from at-or-above its top edge.
	under, over int
}

// NewHistogram creates a histogram with bins of the given width starting at
// lo. bins must be positive.
func NewHistogram(lo, width float64, bins int) *Histogram {
	if bins <= 0 {
		panic("metrics: histogram needs at least one bin")
	}
	if width <= 0 {
		panic("metrics: histogram bin width must be positive")
	}
	return &Histogram{Lo: lo, Width: width, Counts: make([]int, bins)}
}

// Add records one sample. Samples outside the histogram's range land in the
// nearest edge bin and are additionally counted as outliers.
func (h *Histogram) Add(x float64) {
	i := int(math.Floor((x - h.Lo) / h.Width))
	if i < 0 {
		i = 0
		h.under++
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
		h.over++
	}
	h.Counts[i]++
	h.total++
}

// Total reports the number of samples recorded.
func (h *Histogram) Total() int { return h.total }

// Outliers reports how many samples fell below the range and at-or-above its
// top edge. Those samples are still counted in the edge bins.
func (h *Histogram) Outliers() (under, over int) { return h.under, h.over }

// Frequencies returns each bin's share of the total (0 when empty).
func (h *Histogram) Frequencies() []float64 {
	out := make([]float64, len(h.Counts))
	if h.total == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(h.total)
	}
	return out
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.Width
}

// String renders an ASCII histogram, one bin per line, followed by an
// outlier line whenever any samples were clamped into the edge bins.
func (h *Histogram) String() string {
	var b strings.Builder
	freqs := h.Frequencies()
	for i, f := range freqs {
		bar := strings.Repeat("#", int(f*60+0.5))
		fmt.Fprintf(&b, "%8.1f |%-60s| %5.1f%%\n", h.BinCenter(i), bar, f*100)
	}
	if h.under > 0 || h.over > 0 {
		fmt.Fprintf(&b, "outliers: under=%d over=%d\n", h.under, h.over)
	}
	return b.String()
}

// LogHistogram is a log-scale histogram: bin i spans [Lo*Base^i, Lo*Base^(i+1)).
// It covers the many-decade spread of overlay route latencies (microseconds
// on one LAN hop through seconds across a relay chain) that a fixed-width
// Histogram cannot resolve. Out-of-range samples clamp into the edge bins
// and are counted as outliers, like Histogram.
type LogHistogram struct {
	Lo     float64
	Base   float64
	Counts []int
	total  int
	// logLo/logBase cache math.Log of the bounds for Add.
	logLo, logBase float64
	under, over    int
}

// NewLogHistogram creates a log-scale histogram whose first bin starts at lo
// with successive bin edges multiplied by base. lo and bins must be positive
// and base must exceed 1.
func NewLogHistogram(lo, base float64, bins int) *LogHistogram {
	if bins <= 0 {
		panic("metrics: histogram needs at least one bin")
	}
	if lo <= 0 {
		panic("metrics: log histogram lower bound must be positive")
	}
	if base <= 1 {
		panic("metrics: log histogram base must exceed 1")
	}
	return &LogHistogram{
		Lo: lo, Base: base, Counts: make([]int, bins),
		logLo: math.Log(lo), logBase: math.Log(base),
	}
}

// Add records one sample. Non-positive samples count as underflow into the
// first bin; samples past the top edge count as overflow into the last.
func (h *LogHistogram) Add(x float64) {
	i := 0
	if x <= 0 {
		h.under++
	} else {
		i = int(math.Floor((math.Log(x) - h.logLo) / h.logBase))
		if i < 0 {
			i = 0
			h.under++
		}
		if i >= len(h.Counts) {
			i = len(h.Counts) - 1
			h.over++
		}
	}
	h.Counts[i]++
	h.total++
}

// Total reports the number of samples recorded.
func (h *LogHistogram) Total() int { return h.total }

// Outliers reports how many samples fell below the range (including
// non-positive values) and at-or-above its top edge.
func (h *LogHistogram) Outliers() (under, over int) { return h.under, h.over }

// BinLo returns the lower edge of bin i.
func (h *LogHistogram) BinLo(i int) float64 {
	return h.Lo * math.Pow(h.Base, float64(i))
}

// Frequencies returns each bin's share of the total (0 when empty).
func (h *LogHistogram) Frequencies() []float64 {
	out := make([]float64, len(h.Counts))
	if h.total == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(h.total)
	}
	return out
}

// String renders an ASCII histogram, one bin per line labeled by its lower
// edge, followed by an outlier line whenever any samples were clamped.
func (h *LogHistogram) String() string {
	var b strings.Builder
	freqs := h.Frequencies()
	for i, f := range freqs {
		bar := strings.Repeat("#", int(f*60+0.5))
		fmt.Fprintf(&b, "%12.3g |%-60s| %5.1f%%\n", h.BinLo(i), bar, f*100)
	}
	if h.under > 0 || h.over > 0 {
		fmt.Fprintf(&b, "outliers: under=%d over=%d\n", h.under, h.over)
	}
	return b.String()
}

// Series is an append-only time series of (t, v) points, used to capture
// figure profiles (latency vs. sequence number, bytes vs. time, …).
type Series struct {
	Name string
	T    []float64
	V    []float64
}

// Append records one point.
func (s *Series) Append(t, v float64) {
	s.T = append(s.T, t)
	s.V = append(s.V, v)
}

// Len reports the number of points.
func (s *Series) Len() int { return len(s.T) }

// At returns point i.
func (s *Series) At(i int) (t, v float64) { return s.T[i], s.V[i] }

// CSV renders the series as "t,v" lines with a header.
func (s *Series) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "t,%s\n", s.Name)
	for i := range s.T {
		fmt.Fprintf(&b, "%.3f,%.4f\n", s.T[i], s.V[i])
	}
	return b.String()
}

// Counter accumulates named integer counts; handy for protocol statistics
// (packets routed, retries, hole punches, …). Hot paths that cannot afford
// a map lookup per increment resolve a Handle once and bump it directly;
// both forms feed the same name-keyed view.
type Counter struct {
	m     map[string]int64
	cells map[string]*int64
}

// Handle is a pre-resolved counter cell: Inc on it is a single pointer
// write, with no string hashing or map probe — the form packet-routing hot
// paths use. The zero Handle is inert and discards increments, so an
// unresolved handle field needs no nil check.
type Handle struct {
	v *int64
}

// Inc adds delta to the handle's cell.
func (h Handle) Inc(delta int64) {
	if h.v != nil {
		*h.v += delta
	}
}

// Handle resolves the named count to a direct cell, creating it if
// necessary. Resolving registers the name: it appears in Names and String
// even while still zero. Repeated resolutions of one name share a cell.
func (c *Counter) Handle(name string) Handle {
	if c.cells == nil {
		c.cells = make(map[string]*int64)
	}
	cell, ok := c.cells[name]
	if !ok {
		cell = new(int64)
		c.cells[name] = cell
	}
	return Handle{v: cell}
}

// Inc adds delta to the named count.
func (c *Counter) Inc(name string, delta int64) {
	if cell, ok := c.cells[name]; ok {
		*cell += delta
		return
	}
	if c.m == nil {
		c.m = make(map[string]int64)
	}
	c.m[name] += delta
}

// Get returns the named count (0 when never incremented).
func (c *Counter) Get(name string) int64 {
	if cell, ok := c.cells[name]; ok {
		return c.m[name] + *cell
	}
	return c.m[name]
}

// Names returns all counter names in sorted order, including names that
// have been resolved to handles but not yet incremented.
func (c *Counter) Names() []string {
	out := make([]string, 0, len(c.m)+len(c.cells))
	for k := range c.m {
		out = append(out, k)
	}
	for k := range c.cells {
		if _, dup := c.m[k]; !dup {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// String renders "name=value" pairs sorted by name.
func (c *Counter) String() string {
	var b strings.Builder
	for i, n := range c.Names() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", n, c.Get(n))
	}
	return b.String()
}

// Merge adds every count from other into c — how experiments aggregate
// per-node protocol counters into one fleet-wide view. Iteration order
// doesn't matter here: Merge only ever adds into c's own cells.
func (c *Counter) Merge(other *Counter) {
	for name, v := range other.m {
		c.Inc(name, v)
	}
	for name, cell := range other.cells {
		c.Inc(name, *cell)
	}
}

// RecoveryNames are the fault-handling counters every resilience
// experiment reports, in presentation order: the detection path
// (ping.dead, ping.stale, fast probes, forwarded closes), the graceful
// path (handoffs), and the repair path (re-links, link give-ups).
var RecoveryNames = []string{
	"ping.dead",
	"ping.stale",
	"ping.fast_probe",
	"close.forwarded",
	"handoff.sent",
	"handoff.received",
	"handoff.linked",
	"relink.attempts",
	"relink.success",
	"relink.giveup",
	"link.giveup",
}

// RecoveryReport is the uniform summary a resilience experiment produces:
// how long recovery took and which protocol machinery did the work.
type RecoveryReport struct {
	// Scenario names the experiment ("partition-heal", …).
	Scenario string
	// RecoverySec is the measured time from fault (or heal trigger) to
	// full recovery, in seconds; negative when recovery never completed.
	RecoverySec float64
	// Counters holds the fleet-aggregated protocol counters.
	Counters Counter
}

// String renders the standard recovery table: one scenario line followed by
// every RecoveryNames counter. Zeros are printed rather than suppressed —
// which recovery machinery did no work is as informative as which did.
func (r *RecoveryReport) String() string {
	var b strings.Builder
	if r.RecoverySec < 0 {
		fmt.Fprintf(&b, "%-24s recovery: DID NOT RECOVER\n", r.Scenario)
	} else {
		fmt.Fprintf(&b, "%-24s recovery: %.1fs\n", r.Scenario, r.RecoverySec)
	}
	for _, name := range RecoveryNames {
		fmt.Fprintf(&b, "  %-22s %d\n", name, r.Counters.Get(name))
	}
	return b.String()
}
