package metrics

// Sharded is a set of per-shard Counters for parallel simulation: each
// shard increments only its own Counter (no atomics, no locks, no false
// sharing on hot cells), and a merged fleet-wide view is computed between
// runs, when no shard is executing. It is the counters analogue of
// sim.Sharded's ownership rule: shard-local writes during a window,
// coordinator-only aggregation at the barrier.
type Sharded struct {
	counters []*Counter
}

// NewSharded creates k independent counters.
func NewSharded(k int) *Sharded {
	if k < 1 {
		panic("metrics: sharded counter set needs at least one shard")
	}
	s := &Sharded{counters: make([]*Counter, k)}
	for i := range s.counters {
		s.counters[i] = &Counter{}
	}
	return s
}

// Shards reports the shard count.
func (s *Sharded) Shards() int { return len(s.counters) }

// Shard returns shard i's Counter. Only shard i's goroutine may increment
// it while a sharded run is in flight.
func (s *Sharded) Shard(i int) *Counter { return s.counters[i] }

// Handles pre-resolves the named cell on every shard, in shard order. Hot
// paths index the returned slice by executing shard and increment without
// a map lookup — the sharded analogue of Counter.Handle.
func (s *Sharded) Handles(name string) []Handle {
	hs := make([]Handle, len(s.counters))
	for i, c := range s.counters {
		hs[i] = c.Handle(name)
	}
	return hs
}

// Merged sums every shard into one Counter. Call it only between runs —
// it reads all shards without synchronization.
func (s *Sharded) Merged() Counter {
	var out Counter
	for _, c := range s.counters {
		out.Merge(c)
	}
	return out
}

// Get sums the named count across shards.
func (s *Sharded) Get(name string) int64 {
	var total int64
	for _, c := range s.counters {
		total += c.Get(name)
	}
	return total
}
