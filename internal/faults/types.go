package faults

import (
	"wow/internal/phys"
	"wow/internal/sim"
)

// LinkBlackhole silently drops every packet between scopes A and B in both
// directions for the window [From, From+For) — a dead WAN link or a
// middlebox that has stopped forwarding. Unlike a host going down, traffic
// to third parties is untouched.
type LinkBlackhole struct {
	Name string // timeline label; default "blackhole"
	A, B Scope
	From sim.Duration // offset from scheduling time
	For  sim.Duration // window length; 0 = forever
}

// Label names the fault in timelines and counters.
func (f LinkBlackhole) Label() string { return label(f.Name, "blackhole") }

func (f LinkBlackhole) arm(inj *Injector) {
	a, b := f.A.matcher(), f.B.matcher()
	inj.window(f.Label(), &rule{
		label: f.Label(),
		drop:  true,
		match: func(src, dst *phys.Host) bool {
			return (a(src) && b(dst)) || (b(src) && a(dst))
		},
	}, f.From, f.For)
}

// Partition splits the network: packets crossing from side A to side B (or
// back) are dropped for the window, while traffic within each side flows
// normally. Leave B empty to partition A from the rest of the world.
type Partition struct {
	Name string // timeline label; default "partition"
	A, B Scope
	From sim.Duration
	For  sim.Duration
}

// Label names the fault in timelines and counters.
func (f Partition) Label() string { return label(f.Name, "partition") }

func (f Partition) arm(inj *Injector) {
	a := f.A.matcher()
	b := f.B.matcher()
	if f.B.empty() {
		b = func(h *phys.Host) bool { return !a(h) }
	}
	inj.window(f.Label(), &rule{
		label: f.Label(),
		drop:  true,
		match: func(src, dst *phys.Host) bool {
			return (a(src) && b(dst)) || (b(src) && a(dst))
		},
	}, f.From, f.For)
}

// LossBurst adds independent per-packet loss to every path touching the
// scope for the window — congestion or a flapping link, severe enough to
// stress retransmission and keepalive machinery without severing links.
type LossBurst struct {
	Name  string // timeline label; default "loss"
	Scope Scope
	Loss  float64 // added loss probability, composed with the path's own
	From  sim.Duration
	For   sim.Duration
}

// Label names the fault in timelines and counters.
func (f LossBurst) Label() string { return label(f.Name, "loss") }

func (f LossBurst) arm(inj *Injector) {
	m := f.Scope.matcher()
	inj.window(f.Label(), &rule{
		label: f.Label(),
		loss:  f.Loss,
		match: func(src, dst *phys.Host) bool { return m(src) || m(dst) },
	}, f.From, f.For)
}

// LatencyBurst inflates one-way delay (and optionally jitter) on every
// path touching the scope for the window — a route flap or a saturated
// uplink, the regime that trips RTO backoff and ping timeouts without any
// actual loss.
type LatencyBurst struct {
	Name   string // timeline label; default "latency"
	Scope  Scope
	Extra  sim.Duration // added one-way delay
	Jitter sim.Duration // added jitter
	From   sim.Duration
	For    sim.Duration
}

// Label names the fault in timelines and counters.
func (f LatencyBurst) Label() string { return label(f.Name, "latency") }

func (f LatencyBurst) arm(inj *Injector) {
	m := f.Scope.matcher()
	inj.window(f.Label(), &rule{
		label:  f.Label(),
		extra:  f.Extra,
		jitter: f.Jitter,
		match:  func(src, dst *phys.Host) bool { return m(src) || m(dst) },
	}, f.From, f.For)
}

// CrashRestart kills one overlay process At after scheduling and restarts
// it Down later. Kill and Restart are caller-supplied closures (over an
// ipop.Node, a vm.VM, or a phys.Host's SetUp), keeping the injector
// decoupled from the layers above it. A nil Restart (or zero Down) makes
// the crash permanent.
type CrashRestart struct {
	Name    string // timeline label; default "crash"
	At      sim.Duration
	Down    sim.Duration
	Kill    func()
	Restart func()
}

// Label names the fault in timelines and counters.
func (f CrashRestart) Label() string { return label(f.Name, "crash") }

func (f CrashRestart) arm(inj *Injector) {
	inj.S.After(f.At, func() {
		if inj.closed {
			return
		}
		f.Kill()
		inj.record(f.Label(), "kill")
		if f.Restart == nil || f.Down <= 0 {
			return
		}
		inj.S.After(f.Down, func() {
			if inj.closed {
				return
			}
			f.Restart()
			inj.record(f.Label(), "restart")
		})
	})
}

// Rebinder is anything whose translation state can be flushed; natsim.NAT
// satisfies it.
type Rebinder interface{ Rebind() }

// NATFlush drops a middlebox's whole translation table At after scheduling
// — the paper's §V-E scenario (a NAT reboot or timeout sweep), after which
// every established mapping must be re-learned through keepalive traffic.
type NATFlush struct {
	Name string // timeline label; default "natflush"
	NAT  Rebinder
	At   sim.Duration
}

// Label names the fault in timelines and counters.
func (f NATFlush) Label() string { return label(f.Name, "natflush") }

func (f NATFlush) arm(inj *Injector) {
	inj.S.After(f.At, func() {
		if inj.closed {
			return
		}
		f.NAT.Rebind()
		inj.record(f.Label(), "flush")
	})
}

// ChurnTarget is one node a ChurnWave cycles, as kill/restart closures.
type ChurnTarget struct {
	Name    string
	Kill    func()
	Restart func()
}

// ChurnWave is correlated churn: starting at From, targets are killed in
// order, Spacing apart with up to Jitter of seeded random stagger, and
// each restarts Down after its own kill — the wave overlaps, so the
// overlay repairs under continued fire rather than one failure at a time.
type ChurnWave struct {
	Name    string // timeline label; default "churn"
	Targets []ChurnTarget
	From    sim.Duration
	Spacing sim.Duration
	Jitter  sim.Duration
	Down    sim.Duration
}

// Label names the fault in timelines and counters.
func (f ChurnWave) Label() string { return label(f.Name, "churn") }

func (f ChurnWave) arm(inj *Injector) {
	at := f.From
	for _, t := range f.Targets {
		if f.Jitter > 0 {
			at += sim.Duration(inj.S.Rand().Int63n(int64(f.Jitter)))
		}
		lbl := f.Label()
		if t.Name != "" {
			lbl = f.Label() + "." + t.Name
		}
		CrashRestart{Name: lbl, At: at, Down: f.Down, Kill: t.Kill, Restart: t.Restart}.arm(inj)
		at += f.Spacing
	}
}
