package faults

import (
	"testing"

	"wow/internal/phys"
	"wow/internal/sim"
)

// rig is a two-site, three-host network with packet counting per host.
type rig struct {
	s     *sim.Simulator
	net   *phys.Network
	hosts map[string]*phys.Host
	socks map[string]*phys.UDPSock
	got   map[string]int
}

func newRig(t *testing.T, seed int64) *rig {
	t.Helper()
	s := sim.New(seed)
	net := phys.NewNetwork(s, phys.UniformLatency(
		phys.PathModel{OneWay: sim.Millisecond},
		phys.PathModel{OneWay: 15 * sim.Millisecond},
	))
	r := &rig{s: s, net: net,
		hosts: make(map[string]*phys.Host),
		socks: make(map[string]*phys.UDPSock),
		got:   make(map[string]int)}
	siteA := net.AddSite("site-a")
	siteB := net.AddSite("site-b")
	for name, site := range map[string]*phys.Site{"a1": siteA, "a2": siteA, "b1": siteB} {
		h := net.AddHost(name, site, net.Root(), phys.HostConfig{})
		sock, err := h.Listen(7)
		if err != nil {
			t.Fatalf("listen %s: %v", name, err)
		}
		name := name
		sock.OnRecv = func(*phys.Packet) { r.got[name]++ }
		r.hosts[name] = h
		r.socks[name] = sock
	}
	return r
}

func (r *rig) send(from, to string) {
	r.socks[from].Send(phys.Endpoint{IP: r.hosts[to].IP(), Port: 7}, 100, "x")
}

func TestPartitionDropsThenHeals(t *testing.T) {
	r := newRig(t, 1)
	inj := New(r.s, r.net)
	inj.Schedule(Partition{A: AtSites("site-a"), From: sim.Second, For: 10 * sim.Second})

	// Before the window: cross-site traffic flows.
	r.send("a1", "b1")
	r.s.RunFor(500 * sim.Millisecond)
	if r.got["b1"] != 1 {
		t.Fatalf("pre-fault delivery failed: got %d", r.got["b1"])
	}
	// Inside the window: cross-site traffic is blackholed both ways, but
	// same-side traffic is untouched.
	r.s.RunFor(2 * sim.Second)
	r.send("a1", "b1")
	r.send("b1", "a1")
	r.send("a1", "a2")
	r.s.RunFor(sim.Second)
	if r.got["b1"] != 1 || r.got["a1"] != 0 {
		t.Fatalf("partition leaked: b1=%d a1=%d", r.got["b1"], r.got["a1"])
	}
	if r.got["a2"] != 1 {
		t.Fatalf("partition hit same-side traffic: a2=%d", r.got["a2"])
	}
	if inj.Stats.Get("partition.dropped") != 2 {
		t.Fatalf("dropped counter = %d, want 2", inj.Stats.Get("partition.dropped"))
	}
	// After the window: healed.
	r.s.RunFor(10 * sim.Second)
	r.send("a1", "b1")
	r.s.RunFor(sim.Second)
	if r.got["b1"] != 2 {
		t.Fatalf("post-heal delivery failed: got %d", r.got["b1"])
	}
	want := []string{"partition begin", "partition end"}
	tl := inj.Timeline()
	if len(tl) != len(want) {
		t.Fatalf("timeline %v, want %d entries", tl, len(want))
	}
}

func TestBlackholeIsPairwise(t *testing.T) {
	r := newRig(t, 1)
	inj := New(r.s, r.net)
	inj.Schedule(LinkBlackhole{A: On("a1"), B: On("b1"), From: 0, For: time10s()})
	r.s.RunFor(sim.Second)
	r.send("a1", "b1") // blackholed
	r.send("a2", "b1") // third party: unaffected
	r.s.RunFor(sim.Second)
	if r.got["b1"] != 1 {
		t.Fatalf("b1 got %d packets, want only a2's", r.got["b1"])
	}
	if inj.Stats.Get("blackhole.dropped") != 1 {
		t.Fatalf("dropped = %d, want 1", inj.Stats.Get("blackhole.dropped"))
	}
}

func time10s() sim.Duration { return 10 * sim.Second }

func TestLatencyBurstDelaysDelivery(t *testing.T) {
	r := newRig(t, 1)
	inj := New(r.s, r.net)
	inj.Schedule(LatencyBurst{Scope: On("b1"), Extra: 500 * sim.Millisecond, From: 0, For: 10 * sim.Second})
	r.s.RunFor(sim.Second)
	r.send("a1", "b1")
	r.s.RunFor(100 * sim.Millisecond)
	if r.got["b1"] != 0 {
		t.Fatal("packet arrived before inflated latency elapsed")
	}
	r.s.RunFor(sim.Second)
	if r.got["b1"] != 1 {
		t.Fatal("packet never arrived")
	}
}

func TestLossBurstComposesToCertainLoss(t *testing.T) {
	r := newRig(t, 1)
	inj := New(r.s, r.net)
	inj.Schedule(LossBurst{Scope: AtSites("site-b"), Loss: 1.0, From: 0, For: 10 * sim.Second})
	r.s.RunFor(sim.Second)
	for i := 0; i < 5; i++ {
		r.send("a1", "b1")
	}
	r.s.RunFor(sim.Second)
	if r.got["b1"] != 0 {
		t.Fatalf("certain loss leaked %d packets", r.got["b1"])
	}
	if r.net.Stats.Get("lost.wire") != 5 {
		t.Fatalf("lost.wire = %d, want 5", r.net.Stats.Get("lost.wire"))
	}
}

type fakeNAT struct{ flushes int }

func (f *fakeNAT) Rebind() { f.flushes++ }

// buildScenario schedules one of every fault type against a fresh rig and
// runs it to completion, returning the injector.
func buildScenario(t *testing.T, seed int64) *Injector {
	r := newRig(t, seed)
	inj := New(r.s, r.net)
	nat := &fakeNAT{}
	down := map[string]bool{}
	targets := []ChurnTarget{}
	for _, name := range []string{"a1", "a2", "b1"} {
		name := name
		targets = append(targets, ChurnTarget{
			Name:    name,
			Kill:    func() { down[name] = true },
			Restart: func() { down[name] = false },
		})
	}
	inj.Schedule(
		LinkBlackhole{A: On("a1"), B: On("b1"), From: sim.Second, For: 5 * sim.Second},
		Partition{A: AtSites("site-a"), From: 2 * sim.Second, For: 8 * sim.Second},
		LossBurst{Scope: On("a2"), Loss: 0.5, From: 3 * sim.Second, For: 4 * sim.Second},
		LatencyBurst{Scope: AtSites("site-b"), Extra: 100 * sim.Millisecond, From: sim.Second, For: 6 * sim.Second},
		NATFlush{NAT: nat, At: 4 * sim.Second},
		CrashRestart{Name: "crash.b1", At: 5 * sim.Second, Down: 3 * sim.Second,
			Kill: func() { down["b1"] = true }, Restart: func() { down["b1"] = false }},
		ChurnWave{Targets: targets, From: 10 * sim.Second, Spacing: 2 * sim.Second,
			Jitter: sim.Second, Down: 4 * sim.Second},
	)
	// Background traffic so loss faults consume random draws too.
	for i := 0; i < 30; i++ {
		at := sim.Duration(i) * 700 * sim.Millisecond
		r.s.After(at, func() { r.send("a1", "b1"); r.send("a2", "b1") })
	}
	r.s.RunFor(40 * sim.Second)
	if nat.flushes != 1 {
		t.Fatalf("nat flushed %d times, want 1", nat.flushes)
	}
	return inj
}

// TestDeterministicTimeline is the acceptance criterion: two runs of an
// identical scenario under the same seed produce identical fault timelines
// and identical per-fault counters.
func TestDeterministicTimeline(t *testing.T) {
	a := buildScenario(t, 42)
	b := buildScenario(t, 42)
	if a.TimelineString() != b.TimelineString() {
		t.Fatalf("timelines diverged:\n--- run 1\n%s--- run 2\n%s", a.TimelineString(), b.TimelineString())
	}
	if a.TimelineString() == "" {
		t.Fatal("empty timeline")
	}
	if a.Stats.String() != b.Stats.String() {
		t.Fatalf("counters diverged:\n--- run 1\n%s\n--- run 2\n%s", a.Stats.String(), b.Stats.String())
	}
	// A different seed must still run the same faults (labels), just with
	// jittered churn times.
	c := buildScenario(t, 7)
	if len(c.Timeline()) != len(a.Timeline()) {
		t.Fatalf("event counts differ across seeds: %d vs %d", len(c.Timeline()), len(a.Timeline()))
	}
}
