package faults

import (
	"wow/internal/phys"
	"wow/internal/sim"
)

// The gray faults model failures that degrade rather than sever: one-way
// blackholes, latency variance, duty-cycled link flaps and slow hosts.
// Unlike the crisp window faults they are time-functional — armed before
// the run, evaluated against each packet's sender clock — so they compose
// with the parallel engine (see Injector). All are deterministic and
// timeline-recorded like the original seven.

// AsymmetricBlackhole drops packets in ONE direction only — From→To — for
// the window. The classic gray failure a bidirectional ping can't localize:
// requests arrive, answers vanish (or vice versa), and fixed-timeout
// detectors on the two sides reach opposite verdicts.
type AsymmetricBlackhole struct {
	Name     string // timeline label; default "asymhole"
	From, To Scope
	Start    sim.Duration // offset from scheduling time
	For      sim.Duration // window length; 0 = forever
}

// Label names the fault in timelines and counters.
func (f AsymmetricBlackhole) Label() string { return label(f.Name, "asymhole") }

func (f AsymmetricBlackhole) arm(inj *Injector) {
	a, b := f.From.matcher(), f.To.matcher()
	inj.timedWindow(f.Label(), &rule{
		label: f.Label(),
		drop:  true,
		match: func(src, dst *phys.Host) bool { return a(src) && b(dst) },
	}, f.Start, f.For)
}

// JitterBurst adds latency VARIANCE to every path touching the scope: each
// packet is delayed by an extra hash-derived amount uniform in
// [0, 2·Amp) — mean +Amp, but wildly uneven packet to packet, the regime
// that makes fixed ping timeouts fire on live links. The delay is a pure
// function of (seed, send time, endpoints): no RNG draw, identical on
// every engine and shard count, and never below the base path latency.
type JitterBurst struct {
	Name  string // timeline label; default "jitter"
	Scope Scope
	Amp   sim.Duration // mean added delay; per-packet range [0, 2·Amp)
	Start sim.Duration
	For   sim.Duration
	Seed  uint64 // varies the per-packet pattern across instances
}

// Label names the fault in timelines and counters.
func (f JitterBurst) Label() string { return label(f.Name, "jitter") }

func (f JitterBurst) arm(inj *Injector) {
	m := f.Scope.matcher()
	inj.timedWindow(f.Label(), &rule{
		label:        f.Label(),
		pseudoJitter: f.Amp,
		seed:         f.Seed,
		match:        func(src, dst *phys.Host) bool { return m(src) || m(dst) },
	}, f.Start, f.For)
}

// LinkFlap cycles the paths between scopes A and B up and down: within
// each Period the link carries traffic for Up, then drops everything for
// the remainder — a bouncing interface or a route that keeps withdrawing.
// Leave B empty to flap A against the rest of the world. Only the window's
// begin/end are timeline-recorded; individual cycles are implied by the
// phase arithmetic (Start anchors the first up phase).
type LinkFlap struct {
	Name   string // timeline label; default "flap"
	A, B   Scope
	Period sim.Duration
	Up     sim.Duration // up time per period; the rest drops
	Start  sim.Duration
	For    sim.Duration
}

// Label names the fault in timelines and counters.
func (f LinkFlap) Label() string { return label(f.Name, "flap") }

func (f LinkFlap) arm(inj *Injector) {
	a := f.A.matcher()
	b := f.B.matcher()
	if f.B.empty() {
		b = func(h *phys.Host) bool { return !a(h) }
	}
	inj.timedWindow(f.Label(), &rule{
		label:      f.Label(),
		drop:       true,
		flapPeriod: f.Period,
		flapUp:     f.Up,
		match: func(src, dst *phys.Host) bool {
			return (a(src) && b(dst)) || (b(src) && a(dst))
		},
	}, f.Start, f.For)
}

// SlowNode models a host whose process has gone slow — CPU contention, GC
// stalls, a saturated disk: every packet DELIVERED to a host in scope is
// delayed by Extra before handling. Peers see inflated RTTs on all traffic
// through the host while the host itself stays (slowly) responsive — the
// half-alive state between healthy and dead.
type SlowNode struct {
	Name  string // timeline label; default "slow"
	Scope Scope
	Extra sim.Duration
	Start sim.Duration
	For   sim.Duration
}

// Label names the fault in timelines and counters.
func (f SlowNode) Label() string { return label(f.Name, "slow") }

func (f SlowNode) arm(inj *Injector) {
	m := f.Scope.matcher()
	inj.timedWindow(f.Label(), &rule{
		label: f.Label(),
		extra: f.Extra,
		match: func(src, dst *phys.Host) bool { return m(dst) },
	}, f.Start, f.For)
}
