package faults

import (
	"testing"

	"wow/internal/phys"
	"wow/internal/sim"
)

// TestCloseMakesScheduledEventsNoOps is the Close-audit regression: fault
// events already sitting on the simulator when the injector closes —
// window begins and ends, crash kills, restarts, NAT flushes — must all
// become no-ops instead of firing into the detached network.
func TestCloseMakesScheduledEventsNoOps(t *testing.T) {
	r := newRig(t, 1)
	inj := New(r.s, r.net)
	nat := &fakeNAT{}
	killed, restarted := false, false
	inj.Schedule(
		Partition{A: AtSites("site-a"), From: sim.Second, For: 10 * sim.Second},
		CrashRestart{At: 2 * sim.Second, Down: 3 * sim.Second,
			Kill: func() { killed = true }, Restart: func() { restarted = true }},
		NATFlush{NAT: nat, At: 3 * sim.Second},
	)
	r.s.RunFor(500 * sim.Millisecond)
	inj.Close()
	r.s.RunFor(30 * sim.Second)

	if killed || restarted {
		t.Fatalf("crash fired after Close: killed=%v restarted=%v", killed, restarted)
	}
	if nat.flushes != 0 {
		t.Fatalf("NAT flushed %d times after Close", nat.flushes)
	}
	if tl := inj.Timeline(); len(tl) != 0 {
		t.Fatalf("timeline gained entries after Close: %v", tl)
	}
	// The partition window never installed its rule: traffic flows.
	r.send("a1", "b1")
	r.s.RunFor(sim.Second)
	if r.got["b1"] != 1 {
		t.Fatalf("closed injector still drops traffic: b1=%d", r.got["b1"])
	}
}

// A restart timer armed inside an already-fired kill event must also
// no-op when Close lands between kill and restart.
func TestCloseBetweenKillAndRestart(t *testing.T) {
	r := newRig(t, 1)
	inj := New(r.s, r.net)
	killed, restarted := false, false
	inj.Schedule(CrashRestart{At: sim.Second, Down: 10 * sim.Second,
		Kill: func() { killed = true }, Restart: func() { restarted = true }})
	r.s.RunFor(2 * sim.Second)
	if !killed {
		t.Fatal("kill never fired")
	}
	inj.Close()
	r.s.RunFor(30 * sim.Second)
	if restarted {
		t.Fatal("restart fired after Close")
	}
	// The kill is recorded (it happened); the restart is not.
	if tl := inj.Timeline(); len(tl) != 1 || tl[0].Event != "kill" {
		t.Fatalf("timeline = %v, want exactly the kill", tl)
	}
}

// Closing mid-window must freeze the timeline (no end event) and stop the
// rule from dropping anything further.
func TestCloseMidWindow(t *testing.T) {
	r := newRig(t, 1)
	inj := New(r.s, r.net)
	inj.Schedule(Partition{A: AtSites("site-a"), From: 0, For: 10 * sim.Second})
	r.s.RunFor(2 * sim.Second) // begin fired, rule active
	inj.Close()
	r.send("a1", "b1")
	r.s.RunFor(20 * sim.Second) // end event fires and must no-op
	if r.got["b1"] != 1 {
		t.Fatalf("rule still active after Close: b1=%d", r.got["b1"])
	}
	want := "t=0.000s partition begin\n"
	if got := inj.TimelineString(); got != want {
		t.Fatalf("timeline after Close = %q, want %q", got, want)
	}
}

// AsymmetricBlackhole severs exactly one direction.
func TestAsymmetricBlackholeOneDirection(t *testing.T) {
	r := newRig(t, 1)
	inj := New(r.s, r.net)
	inj.Schedule(AsymmetricBlackhole{From: On("a1"), To: On("b1"), Start: 0, For: 10 * sim.Second})
	r.s.RunFor(sim.Second)
	r.send("a1", "b1") // blackholed direction
	r.send("b1", "a1") // reverse direction: unaffected
	r.s.RunFor(sim.Second)
	if r.got["b1"] != 0 {
		t.Fatalf("a1->b1 leaked %d packets through the one-way hole", r.got["b1"])
	}
	if r.got["a1"] != 1 {
		t.Fatalf("b1->a1 was dropped too: a1=%d", r.got["a1"])
	}
	if inj.Stats.Get("asymhole.dropped") != 1 {
		t.Fatalf("dropped = %d, want 1", inj.Stats.Get("asymhole.dropped"))
	}
	// After the window both directions flow.
	r.s.RunFor(15 * sim.Second)
	r.send("a1", "b1")
	r.s.RunFor(sim.Second)
	if r.got["b1"] != 1 {
		t.Fatal("hole never healed")
	}
}

// JitterBurst delays within [0, 2·Amp) beyond the base path latency, and
// identically across runs. Each packet carries its own send time so the
// check survives jitter-induced reordering.
func TestJitterBurstBoundedAndDeterministic(t *testing.T) {
	const amp = sim.Second
	extras := func() map[sim.Time]sim.Duration {
		r := newRig(t, 1)
		inj := New(r.s, r.net)
		inj.Schedule(JitterBurst{Scope: AtSites("site-b"), Amp: amp, Start: 0, For: 30 * sim.Second})
		got := make(map[sim.Time]sim.Duration)
		r.socks["b1"].OnRecv = func(p *phys.Packet) {
			sentAt := p.Payload.(sim.Time)
			got[sentAt] = r.s.Now().Sub(sentAt) - 15*sim.Millisecond
		}
		for i := 0; i < 8; i++ {
			at := sim.Duration(i+1) * 700 * sim.Millisecond
			r.s.After(at, func() {
				r.socks["a1"].Send(phys.Endpoint{IP: r.hosts["b1"].IP(), Port: 7}, 100, r.s.Now())
			})
		}
		r.s.RunFor(35 * sim.Second)
		if len(got) != 8 {
			t.Fatalf("jitter dropped packets: %d/8 arrived", len(got))
		}
		spread := false
		for sentAt, extra := range got {
			if extra < 0 || extra >= 2*amp {
				t.Fatalf("packet sent %v: extra delay %v outside [0, 2s)", sentAt, extra)
			}
			if extra != got[sim.Time(0).Add(700*sim.Millisecond)] {
				spread = true
			}
		}
		if !spread {
			t.Fatal("every packet drew the same jitter; pattern is degenerate")
		}
		return got
	}
	a, b := extras(), extras()
	for sentAt, extra := range a {
		if b[sentAt] != extra {
			t.Fatalf("jitter not deterministic: packet at %v delayed %v then %v", sentAt, extra, b[sentAt])
		}
	}
}

// LinkFlap's duty cycle: up for Up, down for the rest of each Period,
// phase-anchored at the window start.
func TestLinkFlapDutyCycle(t *testing.T) {
	r := newRig(t, 1)
	inj := New(r.s, r.net)
	inj.Schedule(LinkFlap{A: On("a1"), B: On("b1"),
		Period: 4 * sim.Second, Up: 2 * sim.Second, Start: 0, For: 20 * sim.Second})
	// Phase within each 4s period: [0,2s) up, [2s,4s) down.
	for _, at := range []sim.Duration{
		500 * sim.Millisecond, // up
		3 * sim.Second,        // down
		5 * sim.Second,        // up again (second period)
		7 * sim.Second,        // down again
	} {
		r.s.After(at, func() { r.send("a1", "b1") })
	}
	for _, want := range []int{1, 1, 2, 2} {
		r.s.RunFor(2 * sim.Second)
		if r.got["b1"] != want {
			t.Fatalf("at %v: b1=%d, want %d", r.s.Now(), r.got["b1"], want)
		}
	}
	if inj.Stats.Get("flap.dropped") != 2 {
		t.Fatalf("flap.dropped = %d, want 2", inj.Stats.Get("flap.dropped"))
	}
	// Third parties never flap.
	r.send("a2", "b1")
	r.s.RunFor(sim.Second)
	if r.got["b1"] != 3 {
		t.Fatal("flap hit third-party traffic")
	}
}

// SlowNode delays traffic INTO the slow host only; its own sends are
// unaffected.
func TestSlowNodeDelaysInboundOnly(t *testing.T) {
	r := newRig(t, 1)
	inj := New(r.s, r.net)
	inj.Schedule(SlowNode{Scope: On("b1"), Extra: 500 * sim.Millisecond, Start: 0, For: 10 * sim.Second})
	r.s.RunFor(100 * sim.Millisecond)
	r.send("a1", "b1")
	r.send("b1", "a1")
	r.s.RunFor(100 * sim.Millisecond)
	if r.got["a1"] != 1 {
		t.Fatalf("slow host's outbound traffic was delayed: a1=%d", r.got["a1"])
	}
	if r.got["b1"] != 0 {
		t.Fatal("inbound packet arrived before the processing delay")
	}
	r.s.RunFor(sim.Second)
	if r.got["b1"] != 1 {
		t.Fatal("inbound packet never arrived")
	}
}

// Gray faults compose with each other and stay deterministic: two seeded
// runs produce identical timelines and counters.
func TestGrayCompositionDeterministic(t *testing.T) {
	run := func() *Injector {
		r := newRig(t, 9)
		inj := New(r.s, r.net)
		inj.Schedule(
			JitterBurst{Scope: AtSites("site-a"), Amp: 200 * sim.Millisecond, Start: sim.Second, For: 20 * sim.Second},
			LinkFlap{A: AtSites("site-a"), Period: 5 * sim.Second, Up: 3 * sim.Second, Start: 2 * sim.Second, For: 15 * sim.Second},
			AsymmetricBlackhole{From: On("b1"), To: On("a2"), Start: 3 * sim.Second, For: 5 * sim.Second},
			SlowNode{Scope: On("a1"), Extra: 50 * sim.Millisecond, Start: 0, For: 25 * sim.Second},
		)
		for i := 0; i < 40; i++ {
			at := sim.Duration(i) * 600 * sim.Millisecond
			r.s.After(at, func() { r.send("a1", "b1"); r.send("b1", "a2"); r.send("a2", "a1") })
		}
		r.s.RunFor(30 * sim.Second)
		return inj
	}
	a, b := run(), run()
	if a.TimelineString() != b.TimelineString() || a.TimelineString() == "" {
		t.Fatalf("gray timelines diverged:\n--- run 1\n%s--- run 2\n%s", a.TimelineString(), b.TimelineString())
	}
	if a.Stats.String() != b.Stats.String() {
		t.Fatalf("gray counters diverged:\n%s\nvs\n%s", a.Stats.String(), b.Stats.String())
	}
}
