// Package faults is a deterministic, sim-clock-driven fault injector for
// the simulated WAN. Composable Fault values schedule link blackholes,
// site-to-site partitions, packet-loss and latency bursts, node
// crash+restart cycles, NAT table flushes and correlated churn waves
// against any phys.Network (and hence any testbed built on one), recording
// a per-fault timeline and event counters as they fire.
//
// Everything is driven off the shared sim.Simulator: under a fixed seed
// two runs of the same scenario produce identical timelines, so recovery
// measurements in internal/experiments are exactly repeatable.
package faults

import (
	"fmt"
	"strings"

	"wow/internal/metrics"
	"wow/internal/phys"
	"wow/internal/sim"
)

// Injector owns the fault schedule for one network. It installs itself as
// the network's Perturb hook; faults are armed with Schedule and fire on
// the simulation clock.
//
// On a sharded network (phys.NewShardedNetwork), only the time-functional
// gray faults (AsymmetricBlackhole, JitterBurst, LinkFlap, SlowNode) are
// safe: they install their rules at arm time, before the engine runs, and
// evaluate activation against each packet's sender-shard clock, so the
// rules slice is never mutated while shards execute. The event-windowed
// faults (LinkBlackhole, Partition, LossBurst, LatencyBurst) mutate the
// rules slice from scheduled events and remain serial-engine-only.
type Injector struct {
	S   *sim.Simulator
	Net *phys.Network

	// Stats counts per-fault events uniformly as "<label>.<event>":
	// begin/end for windowed wire faults, kill/restart for node faults,
	// flush for NAT flushes, dropped per blackholed packet. On a sharded
	// network the per-packet counters land in per-shard counters instead
	// (shard-local writes only); read the combined view with TotalStats.
	Stats metrics.Counter

	rules    []*rule
	timeline []TimelineEntry
	// statsSh receives the per-packet perturb counters, indexed by the
	// sending host's shard. Serially it is a single entry aliasing Stats.
	statsSh []*metrics.Counter
	sh      *metrics.Sharded
	// closed makes every already-scheduled fault event a no-op: Close
	// must fully detach the injector even though simulator events cannot
	// be unscheduled retroactively.
	closed bool
}

// New creates an injector and installs it as net's Perturb hook.
func New(s *sim.Simulator, net *phys.Network) *Injector {
	inj := &Injector{S: s, Net: net}
	if net.Sharded() {
		inj.sh = metrics.NewSharded(net.Engine().Shards())
		inj.statsSh = make([]*metrics.Counter, net.Engine().Shards())
		for i := range inj.statsSh {
			inj.statsSh[i] = inj.sh.Shard(i)
		}
	} else {
		inj.statsSh = []*metrics.Counter{&inj.Stats}
	}
	net.Perturb = inj.perturb
	return inj
}

// Close uninstalls the injector from its network. Scheduled wire faults
// stop having any effect, and every fault event already sitting on the
// simulator — window begin/end, crash restarts, NAT flushes — becomes a
// no-op instead of firing into the detached network.
func (inj *Injector) Close() {
	inj.closed = true
	inj.rules = nil
	inj.Net.Perturb = nil
}

// TotalStats merges the control-plane counters (timeline events) with the
// per-shard per-packet counters into one view. Call it only between runs
// on a sharded network.
func (inj *Injector) TotalStats() metrics.Counter {
	var out metrics.Counter
	out.Merge(&inj.Stats)
	if inj.sh != nil {
		m := inj.sh.Merged()
		out.Merge(&m)
	}
	return out
}

// Fault is one schedulable fault scenario. The concrete types in this
// package compose freely: schedule any number against one injector.
type Fault interface {
	// Label names the fault in the timeline and counters.
	Label() string
	arm(inj *Injector)
}

// Schedule arms faults on the injector's simulator.
func (inj *Injector) Schedule(faults ...Fault) {
	for _, f := range faults {
		f.arm(inj)
	}
}

// TimelineEntry is one recorded fault event, in virtual time.
type TimelineEntry struct {
	At    sim.Time
	Fault string
	Event string // begin, end, kill, restart, flush
}

// String renders "t=12.000s partition begin".
func (e TimelineEntry) String() string {
	return fmt.Sprintf("%s %s %s", e.At, e.Fault, e.Event)
}

// Timeline returns a copy of the fault events recorded so far, in firing
// order.
func (inj *Injector) Timeline() []TimelineEntry {
	return append([]TimelineEntry(nil), inj.timeline...)
}

// TimelineString renders the timeline one event per line — convenient for
// golden comparisons in determinism tests.
func (inj *Injector) TimelineString() string {
	var b strings.Builder
	for _, e := range inj.timeline {
		fmt.Fprintln(&b, e)
	}
	return b.String()
}

func (inj *Injector) record(label, event string) {
	inj.timeline = append(inj.timeline, TimelineEntry{At: inj.S.Now(), Fault: label, Event: event})
	inj.Stats.Inc(label+"."+event, 1)
}

// rule is one active wire perturbation. Event-windowed rules (the
// original seven fault types) are inserted and removed by scheduled
// events; timed rules (the gray faults) sit in the slice for the whole
// run and evaluate their activation window — and any up/down duty cycle —
// against the packet clock, a pure function of (now, src, dst) that is
// safe on every shard of a parallel engine.
type rule struct {
	label  string
	match  func(src, dst *phys.Host) bool
	drop   bool
	loss   float64
	extra  sim.Duration
	jitter sim.Duration

	// Timed activation (gray faults).
	timed bool
	from  sim.Time
	until sim.Time // 0 = forever
	// flapPeriod/flapUp give a drop rule a duty cycle: within each
	// period the link is up for flapUp, then the rule applies (drops)
	// for the remainder.
	flapPeriod sim.Duration
	flapUp     sim.Duration
	// pseudoJitter adds a deterministic per-packet extra delay drawn
	// uniformly from [0, 2·pseudoJitter) by hashing (seed, now, src,
	// dst) — latency variance without consulting any shard's RNG, and
	// never below the base path latency (the parallel engine's lookahead
	// floor stays valid).
	pseudoJitter sim.Duration
	seed         uint64
}

// activeAt reports whether a timed rule applies to a packet sent at now.
// Untimed rules are always active while installed.
func (r *rule) activeAt(now sim.Time) bool {
	if !r.timed {
		return true
	}
	if now < r.from || (r.until > r.from && now >= r.until) {
		return false
	}
	if r.flapPeriod > 0 {
		// Up first, then down for the rest of the period.
		phase := sim.Duration((now - r.from) % sim.Time(r.flapPeriod))
		if phase < r.flapUp {
			return false
		}
	}
	return true
}

// pseudoRand is a deterministic 64-bit mix (FNV-1a) over a fault seed, a
// timestamp and the two endpoint names — the gray faults' replacement for
// RNG draws, identical on every engine and shard count.
func pseudoRand(seed uint64, now sim.Time, a, b string) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= (x >> (8 * i)) & 0xff
			h *= prime
		}
	}
	mix(seed)
	mix(uint64(now))
	for i := 0; i < len(a); i++ {
		h ^= uint64(a[i])
		h *= prime
	}
	h ^= 0xff
	h *= prime
	for i := 0; i < len(b); i++ {
		h ^= uint64(b[i])
		h *= prime
	}
	return h
}

// perturb is the phys.Network hook: compose every active rule that matches
// the packet's path. A drop rule wins outright; loss probabilities combine
// as independent trials and latency adds. Per-packet counters go to the
// sending shard's counter (the single aliased Stats counter serially).
func (inj *Injector) perturb(src, dst *phys.Host, pm phys.PathModel) (phys.PathModel, bool) {
	now := src.Sim().Now()
	for _, r := range inj.rules {
		if !r.activeAt(now) || !r.match(src, dst) {
			continue
		}
		if r.drop {
			inj.statsSh[src.Shard()].Inc(r.label+".dropped", 1)
			return pm, true
		}
		if r.loss > 0 {
			pm.Loss = 1 - (1-pm.Loss)*(1-r.loss)
		}
		if r.pseudoJitter > 0 {
			span := uint64(2 * r.pseudoJitter)
			pm.OneWay += sim.Duration(pseudoRand(r.seed, now, src.Name, dst.Name) % span)
		}
		pm.OneWay += r.extra
		pm.Jitter += r.jitter
	}
	return pm, false
}

// window installs r From after arming and removes it For later, recording
// begin/end. A zero For leaves the fault active forever.
func (inj *Injector) window(label string, r *rule, from, dur sim.Duration) {
	inj.S.After(from, func() {
		if inj.closed {
			return
		}
		inj.rules = append(inj.rules, r)
		inj.record(label, "begin")
		if dur <= 0 {
			return
		}
		inj.S.After(dur, func() {
			if inj.closed {
				return
			}
			for i, have := range inj.rules {
				if have == r {
					inj.rules = append(inj.rules[:i], inj.rules[i+1:]...)
					break
				}
			}
			inj.record(label, "end")
		})
	})
}

// timedWindow installs a timed rule immediately (before the run starts —
// the shard-safe path) and schedules record-only begin/end marks on the
// injector's own simulator for the timeline.
func (inj *Injector) timedWindow(label string, r *rule, from, dur sim.Duration) {
	now := inj.S.Now()
	r.timed = true
	r.from = now.Add(from)
	if dur > 0 {
		r.until = now.Add(from + dur)
	}
	inj.rules = append(inj.rules, r)
	inj.S.After(from, func() {
		if !inj.closed {
			inj.record(label, "begin")
		}
	})
	if dur > 0 {
		inj.S.After(from+dur, func() {
			if !inj.closed {
				inj.record(label, "end")
			}
		})
	}
}

// Note records a custom timeline entry ("kill", "restart", …) for fault
// actions a harness drives itself — e.g. node crashes scheduled on other
// shards of a parallel engine, where only the bookkeeping belongs on the
// injector's shard. No-op after Close.
func (inj *Injector) Note(label, event string) {
	if inj.closed {
		return
	}
	inj.record(label, event)
}

// Scope names the hosts a fault touches, by host name and/or site name; an
// empty Scope matches every host.
type Scope struct {
	Hosts []string
	Sites []string
}

// On is shorthand for a host-name scope.
func On(hosts ...string) Scope { return Scope{Hosts: hosts} }

// AtSites is shorthand for a site-name scope.
func AtSites(sites ...string) Scope { return Scope{Sites: sites} }

func (sc Scope) empty() bool { return len(sc.Hosts) == 0 && len(sc.Sites) == 0 }

func (sc Scope) matcher() func(h *phys.Host) bool {
	if sc.empty() {
		return func(*phys.Host) bool { return true }
	}
	hosts := make(map[string]bool, len(sc.Hosts))
	for _, n := range sc.Hosts {
		hosts[n] = true
	}
	sites := make(map[string]bool, len(sc.Sites))
	for _, n := range sc.Sites {
		sites[n] = true
	}
	return func(h *phys.Host) bool {
		return hosts[h.Name] || (h.Site != nil && sites[h.Site.Name])
	}
}

func label(name, def string) string {
	if name != "" {
		return name
	}
	return def
}
