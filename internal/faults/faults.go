// Package faults is a deterministic, sim-clock-driven fault injector for
// the simulated WAN. Composable Fault values schedule link blackholes,
// site-to-site partitions, packet-loss and latency bursts, node
// crash+restart cycles, NAT table flushes and correlated churn waves
// against any phys.Network (and hence any testbed built on one), recording
// a per-fault timeline and event counters as they fire.
//
// Everything is driven off the shared sim.Simulator: under a fixed seed
// two runs of the same scenario produce identical timelines, so recovery
// measurements in internal/experiments are exactly repeatable.
package faults

import (
	"fmt"
	"strings"

	"wow/internal/metrics"
	"wow/internal/phys"
	"wow/internal/sim"
)

// Injector owns the fault schedule for one network. It installs itself as
// the network's Perturb hook; faults are armed with Schedule and fire on
// the simulation clock.
type Injector struct {
	S   *sim.Simulator
	Net *phys.Network

	// Stats counts per-fault events uniformly as "<label>.<event>":
	// begin/end for windowed wire faults, kill/restart for node faults,
	// flush for NAT flushes, dropped per blackholed packet.
	Stats metrics.Counter

	rules    []*rule
	timeline []TimelineEntry
}

// New creates an injector and installs it as net's Perturb hook.
func New(s *sim.Simulator, net *phys.Network) *Injector {
	inj := &Injector{S: s, Net: net}
	net.Perturb = inj.perturb
	return inj
}

// Close uninstalls the injector from its network; scheduled wire faults
// stop having any effect.
func (inj *Injector) Close() {
	inj.rules = nil
	inj.Net.Perturb = nil
}

// Fault is one schedulable fault scenario. The concrete types in this
// package compose freely: schedule any number against one injector.
type Fault interface {
	// Label names the fault in the timeline and counters.
	Label() string
	arm(inj *Injector)
}

// Schedule arms faults on the injector's simulator.
func (inj *Injector) Schedule(faults ...Fault) {
	for _, f := range faults {
		f.arm(inj)
	}
}

// TimelineEntry is one recorded fault event, in virtual time.
type TimelineEntry struct {
	At    sim.Time
	Fault string
	Event string // begin, end, kill, restart, flush
}

// String renders "t=12.000s partition begin".
func (e TimelineEntry) String() string {
	return fmt.Sprintf("%s %s %s", e.At, e.Fault, e.Event)
}

// Timeline returns a copy of the fault events recorded so far, in firing
// order.
func (inj *Injector) Timeline() []TimelineEntry {
	return append([]TimelineEntry(nil), inj.timeline...)
}

// TimelineString renders the timeline one event per line — convenient for
// golden comparisons in determinism tests.
func (inj *Injector) TimelineString() string {
	var b strings.Builder
	for _, e := range inj.timeline {
		fmt.Fprintln(&b, e)
	}
	return b.String()
}

func (inj *Injector) record(label, event string) {
	inj.timeline = append(inj.timeline, TimelineEntry{At: inj.S.Now(), Fault: label, Event: event})
	inj.Stats.Inc(label+"."+event, 1)
}

// rule is one active wire perturbation.
type rule struct {
	label  string
	match  func(src, dst *phys.Host) bool
	drop   bool
	loss   float64
	extra  sim.Duration
	jitter sim.Duration
}

// perturb is the phys.Network hook: compose every active rule that matches
// the packet's path. A drop rule wins outright; loss probabilities combine
// as independent trials and latency adds.
func (inj *Injector) perturb(src, dst *phys.Host, pm phys.PathModel) (phys.PathModel, bool) {
	for _, r := range inj.rules {
		if !r.match(src, dst) {
			continue
		}
		if r.drop {
			inj.Stats.Inc(r.label+".dropped", 1)
			return pm, true
		}
		if r.loss > 0 {
			pm.Loss = 1 - (1-pm.Loss)*(1-r.loss)
		}
		pm.OneWay += r.extra
		pm.Jitter += r.jitter
	}
	return pm, false
}

// window installs r From after arming and removes it For later, recording
// begin/end. A zero For leaves the fault active forever.
func (inj *Injector) window(label string, r *rule, from, dur sim.Duration) {
	inj.S.After(from, func() {
		inj.rules = append(inj.rules, r)
		inj.record(label, "begin")
		if dur <= 0 {
			return
		}
		inj.S.After(dur, func() {
			for i, have := range inj.rules {
				if have == r {
					inj.rules = append(inj.rules[:i], inj.rules[i+1:]...)
					break
				}
			}
			inj.record(label, "end")
		})
	})
}

// Scope names the hosts a fault touches, by host name and/or site name; an
// empty Scope matches every host.
type Scope struct {
	Hosts []string
	Sites []string
}

// On is shorthand for a host-name scope.
func On(hosts ...string) Scope { return Scope{Hosts: hosts} }

// AtSites is shorthand for a site-name scope.
func AtSites(sites ...string) Scope { return Scope{Sites: sites} }

func (sc Scope) empty() bool { return len(sc.Hosts) == 0 && len(sc.Sites) == 0 }

func (sc Scope) matcher() func(h *phys.Host) bool {
	if sc.empty() {
		return func(*phys.Host) bool { return true }
	}
	hosts := make(map[string]bool, len(sc.Hosts))
	for _, n := range sc.Hosts {
		hosts[n] = true
	}
	sites := make(map[string]bool, len(sc.Sites))
	for _, n := range sc.Sites {
		sites[n] = true
	}
	return func(h *phys.Host) bool {
		return hosts[h.Name] || (h.Site != nil && sites[h.Site.Name])
	}
}

func label(name, def string) string {
	if name != "" {
		return name
	}
	return def
}
