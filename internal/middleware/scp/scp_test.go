package scp

import (
	"testing"

	"wow/internal/sim"
	"wow/internal/vip"
	"wow/internal/vip/viptest"
)

func setup(seed int64, latency sim.Duration) (*sim.Simulator, *viptest.Mesh, *Server, *vip.Stack, *vip.Stack) {
	s := sim.New(seed)
	m := viptest.NewMesh(s, latency)
	serverStack := m.AddStack(vip.MustParseIP("172.16.1.1"), vip.StackConfig{})
	clientStack := m.AddStack(vip.MustParseIP("172.16.1.2"), vip.StackConfig{})
	srv, err := NewServer(serverStack)
	if err != nil {
		panic(err)
	}
	return s, m, srv, serverStack, clientStack
}

func TestFetchCompletes(t *testing.T) {
	s, _, srv, serverStack, clientStack := setup(1, 10*sim.Millisecond)
	const size = 4 << 20
	srv.Put("/iso/image", size)
	var doneErr error = vip.ErrReset
	tr := Fetch(clientStack, serverStack.IP(), "/iso/image", sim.Second, func(err error) { doneErr = err })
	s.RunFor(5 * sim.Minute)
	if doneErr != nil {
		t.Fatalf("fetch error: %v", doneErr)
	}
	if !tr.Done || tr.Received != size || tr.Size != size {
		t.Fatalf("received %d of %d (done=%v)", tr.Received, size, tr.Done)
	}
	if srv.Transfers != 1 {
		t.Fatal("server transfer count")
	}
	if tr.Progress.Len() == 0 {
		t.Fatal("no progress samples")
	}
}

func TestFetchMissingFile(t *testing.T) {
	s, _, _, serverStack, clientStack := setup(2, sim.Millisecond)
	var doneErr error
	tr := Fetch(clientStack, serverStack.IP(), "/nope", 0, func(err error) { doneErr = err })
	s.RunFor(30 * sim.Second)
	if doneErr == nil || !tr.Done {
		t.Fatal("missing file fetch did not error")
	}
}

func TestProgressMonotonicAndThroughput(t *testing.T) {
	s, _, srv, serverStack, clientStack := setup(3, 10*sim.Millisecond)
	srv.Put("/f", 8<<20)
	tr := Fetch(clientStack, serverStack.IP(), "/f", sim.Second, nil)
	s.RunFor(5 * sim.Minute)
	prev := -1.0
	for i := 0; i < tr.Progress.Len(); i++ {
		_, b := tr.Progress.At(i)
		if b < prev {
			t.Fatal("progress not monotone")
		}
		prev = b
	}
	bw := tr.Throughput(0, tr.Progress.Len())
	if bw <= 0 {
		t.Fatalf("throughput = %f", bw)
	}
	if tr.Throughput(5, 5) != 0 || tr.Throughput(0, tr.Progress.Len()+10) != 0 {
		t.Fatal("degenerate throughput ranges should be 0")
	}
}

func TestTransferStallsAndResumesAcrossOutage(t *testing.T) {
	// The Figure 6 scenario at middleware level: the server vanishes
	// mid-transfer and the byte counter freezes, then resumes.
	s, m, srv, serverStack, clientStack := setup(4, 10*sim.Millisecond)
	const size = 16 << 20
	srv.Put("/big", size)
	tr := Fetch(clientStack, serverStack.IP(), "/big", sim.Second, nil)
	s.RunFor(3 * sim.Second)
	frozen := tr.Received
	if frozen == 0 || frozen == size {
		t.Fatalf("outage window mistimed: %d", frozen)
	}
	m.SetUp(serverStack.IP(), false)
	s.RunFor(4 * sim.Minute)
	if tr.Received != frozen {
		t.Fatal("bytes arrived during outage")
	}
	if tr.Done {
		t.Fatal("transfer aborted during outage")
	}
	m.SetUp(serverStack.IP(), true)
	s.RunFor(10 * sim.Minute)
	if !tr.Done || tr.Err != nil || tr.Received != size {
		t.Fatalf("transfer did not resume: done=%v err=%v rcvd=%d", tr.Done, tr.Err, tr.Received)
	}
}
