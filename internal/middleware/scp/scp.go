// Package scp models the SSH/SCP file transfers of §V-C1: an
// authenticated control handshake followed by a bulk streamed copy whose
// client-side progress (bytes on local disk over time) is the quantity
// Figure 6 plots across a server migration.
package scp

import (
	"fmt"

	"wow/internal/metrics"
	"wow/internal/sim"
	"wow/internal/vip"
)

// Port is the SSH service port.
const Port = 22

// chunkSize is the stream transfer unit.
const chunkSize = 32 << 10

// control messages.
type authReq struct{ User string }
type authOK struct{}
type getReq struct{ Path string }
type fileHdr struct {
	OK   bool
	Size int64
}
type fileChunk struct{ Last bool }

// Server serves files over the virtual network.
type Server struct {
	files map[string]int64
	// Transfers counts completed full-file sends.
	Transfers int
}

// NewServer starts an SCP/SSH server on the stack.
func NewServer(stack *vip.Stack) (*Server, error) {
	s := &Server{files: make(map[string]int64)}
	err := stack.ListenTCP(Port, func(c *vip.Conn) {
		c.OnMessage(func(size int, msg any) {
			switch m := msg.(type) {
			case authReq:
				c.Send(64, authOK{})
			case getReq:
				sz, ok := s.files[m.Path]
				c.Send(128, fileHdr{OK: ok, Size: sz})
				if !ok {
					return
				}
				for off := int64(0); off < sz; off += chunkSize {
					n := int64(chunkSize)
					last := false
					if off+n >= sz {
						n = sz - off
						last = true
					}
					c.Send(int(n), fileChunk{Last: last})
				}
				s.Transfers++
			}
		})
	})
	if err != nil {
		return nil, fmt.Errorf("scp: %w", err)
	}
	return s, nil
}

// Put registers a file of the given size.
func (s *Server) Put(path string, size int64) { s.files[path] = size }

// Transfer is one client-side download in progress.
type Transfer struct {
	conn *vip.Conn
	// Progress records (seconds, bytes-received) samples — the Figure 6
	// series.
	Progress metrics.Series
	// Received is the byte count on the client's local disk.
	Received int64
	// Size is the total expected, known after the header arrives.
	Size int64
	// Done reports completion; Err any transport failure.
	Done bool
	Err  error

	onDone func(err error)
}

// Fetch starts downloading path from the server, sampling progress every
// sampleEvery of virtual time. onDone may be nil.
func Fetch(stack *vip.Stack, server vip.IP, path string, sampleEvery sim.Duration, onDone func(err error)) *Transfer {
	t := &Transfer{onDone: onDone}
	t.Progress.Name = "bytes"
	s := stack.Sim()
	conn := stack.DialTCP(server, Port)
	t.conn = conn
	conn.OnConnect(func() {
		conn.Send(128, authReq{User: "wow"})
	})
	conn.OnMessage(func(size int, msg any) {
		switch m := msg.(type) {
		case authOK:
			conn.Send(96, getReq{Path: path})
		case fileHdr:
			if !m.OK {
				t.finish(fmt.Errorf("scp: no such file %q", path))
				return
			}
			t.Size = m.Size
		case fileChunk:
			t.Received += int64(size)
			if m.Last {
				t.finish(nil)
			}
		}
	})
	conn.OnClose(func(err error) {
		if !t.Done {
			if err == nil {
				err = vip.ErrReset
			}
			t.finish(err)
		}
	})
	if sampleEvery > 0 {
		var tick *sim.Ticker
		tick = s.Tick(sampleEvery, 0, func() {
			t.Progress.Append(s.Now().Seconds(), float64(t.Received))
			if t.Done {
				tick.Stop()
			}
		})
	}
	return t
}

func (t *Transfer) finish(err error) {
	if t.Done {
		return
	}
	t.Done = true
	t.Err = err
	if t.onDone != nil {
		t.onDone(err)
	}
}

// Throughput returns average goodput in bytes/second between two progress
// sample indices (inclusive start, exclusive end).
func (t *Transfer) Throughput(i, j int) float64 {
	if j <= i || j > t.Progress.Len() {
		return 0
	}
	t0, b0 := t.Progress.At(i)
	t1, b1 := t.Progress.At(j - 1)
	if t1 <= t0 {
		return 0
	}
	return (b1 - b0) / (t1 - t0)
}
