package pvm

import (
	"fmt"
	"testing"

	"wow/internal/sim"
	"wow/internal/vip"
	"wow/internal/vip/viptest"
)

type rig struct {
	s      *sim.Simulator
	mesh   *viptest.Mesh
	master *Master
	mIP    vip.IP
	nodes  []*viptest.Machine
}

func newRig(t *testing.T, seed int64, workers int, speeds []float64) *rig {
	t.Helper()
	s := sim.New(seed)
	m := viptest.NewMesh(s, 10*sim.Millisecond)
	masterStack := m.AddStack(vip.MustParseIP("172.16.1.1"), vip.StackConfig{})
	master, err := NewMaster(masterStack)
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{s: s, mesh: m, master: master, mIP: masterStack.IP()}
	for i := 0; i < workers; i++ {
		speed := 1.0
		if speeds != nil {
			speed = speeds[i%len(speeds)]
		}
		w := viptest.NewMachine(m, fmt.Sprintf("w%02d", i), vip.MustParseIP("172.16.1.2")+vip.IP(i), speed)
		if _, err := NewWorker(w, r.mIP); err != nil {
			t.Fatal(err)
		}
		r.nodes = append(r.nodes, w)
	}
	s.RunFor(10 * sim.Second)
	return r
}

func flatRounds(rounds, tasksPer int, cpu sim.Duration) [][]Task {
	out := make([][]Task, rounds)
	id := 0
	for r := range out {
		for j := 0; j < tasksPer; j++ {
			out[r] = append(out[r], Task{ID: id, Round: r, CPU: cpu, SendBytes: 1024, RecvBytes: 512})
			id++
		}
	}
	return out
}

func TestEnrollment(t *testing.T) {
	r := newRig(t, 1, 5, nil)
	if r.master.WorkerCount() != 5 {
		t.Fatalf("enrolled %d of 5", r.master.WorkerCount())
	}
}

func TestRunCompletesAllTasks(t *testing.T) {
	r := newRig(t, 2, 4, nil)
	var elapsed sim.Duration
	if err := r.master.Run(flatRounds(3, 8, 5*sim.Second), func(d sim.Duration) { elapsed = d }); err != nil {
		t.Fatal(err)
	}
	if err := r.master.Run(nil, nil); err == nil {
		t.Fatal("concurrent Run accepted")
	}
	r.s.RunFor(sim.Hour)
	if elapsed == 0 {
		t.Fatal("run never completed")
	}
	if got := r.master.Stats.Get("tasks.completed"); got != 24 {
		t.Fatalf("completed %d of 24", got)
	}
	total := 0
	for _, n := range r.master.TasksPerWorker() {
		total += n
	}
	if total != 24 {
		t.Fatalf("per-worker sum %d", total)
	}
}

func TestRoundBarriers(t *testing.T) {
	r := newRig(t, 3, 8, nil)
	// Round 0 has one long task; round 1 many short ones. No round-1
	// task may start before the round-0 barrier.
	rounds := [][]Task{
		{{ID: 0, Round: 0, CPU: 60 * sim.Second, SendBytes: 100, RecvBytes: 100}},
		flatRounds(1, 8, sim.Second)[0],
	}
	r.master.Run(rounds, nil)
	r.s.RunFor(sim.Hour)
	ends := r.master.RoundEndTimes()
	if len(ends) != 2 {
		t.Fatalf("round ends = %v", ends)
	}
	if ends[0].Seconds() < 60 {
		t.Fatalf("round 0 barrier at %.1fs, before its 60s task finished", ends[0].Seconds())
	}
	if ends[1] <= ends[0] {
		t.Fatal("barriers out of order")
	}
}

func TestEmptyRoundsSkipped(t *testing.T) {
	r := newRig(t, 4, 2, nil)
	done := false
	r.master.Run([][]Task{{}, {}, {}}, func(sim.Duration) { done = true })
	r.s.RunFor(sim.Minute)
	if !done {
		t.Fatal("empty rounds never completed")
	}
}

func TestDynamicDispatchFavorsFastWorkers(t *testing.T) {
	r := newRig(t, 5, 2, []float64{2.0, 0.5})
	r.master.Run(flatRounds(1, 40, 10*sim.Second), nil)
	r.s.RunFor(3 * sim.Hour)
	per := r.master.TasksPerWorker()
	if per["w00"] <= per["w01"] {
		t.Fatalf("fast worker got %d, slow got %d", per["w00"], per["w01"])
	}
}

func TestParallelSpeedup(t *testing.T) {
	elapsed := func(workers int) float64 {
		r := newRig(t, 6, workers, nil)
		var d sim.Duration
		r.master.Run(flatRounds(10, 16, 10*sim.Second), func(e sim.Duration) { d = e })
		r.s.RunFor(24 * sim.Hour)
		if d == 0 {
			t.Fatal("run incomplete")
		}
		return d.Seconds()
	}
	t1 := elapsed(1)
	t8 := elapsed(8)
	speedup := t1 / t8
	if speedup < 5 || speedup > 8 {
		t.Fatalf("8-worker speedup %.1f, want ~6-8 (sync overheads)", speedup)
	}
}

func TestWorkerCrashRequeuesTask(t *testing.T) {
	s := sim.New(7)
	m := viptest.NewMesh(s, 10*sim.Millisecond)
	masterStack := m.AddStack(vip.MustParseIP("172.16.1.1"), vip.StackConfig{GiveUp: 2 * sim.Minute})
	master, err := NewMaster(masterStack)
	if err != nil {
		t.Fatal(err)
	}
	good := viptest.NewMachine(m, "good", vip.MustParseIP("172.16.1.2"), 1)
	bad := viptest.NewMachine(m, "bad", vip.MustParseIP("172.16.1.3"), 1)
	if _, err := NewWorker(good, masterStack.IP()); err != nil {
		t.Fatal(err)
	}
	if _, err := NewWorker(bad, masterStack.IP()); err != nil {
		t.Fatal(err)
	}
	s.RunFor(10 * sim.Second)

	done := false
	master.Run(flatRounds(1, 6, 30*sim.Second), func(sim.Duration) { done = true })
	s.RunFor(5 * sim.Second)
	m.SetUp(bad.S.IP(), false) // crash mid-round
	// Keepalive reaps the dead worker's connection after ~2h; the
	// surviving worker then absorbs the requeued tasks.
	s.RunFor(8 * sim.Hour)
	if !done {
		t.Fatalf("round never completed after worker crash (requeued=%d)", master.Stats.Get("tasks.requeued"))
	}
	if master.Stats.Get("tasks.requeued") == 0 {
		t.Fatal("no tasks requeued")
	}
}
