// Package pvm models the PVM master–worker runtime used by
// fastDNAml-PVM (§V-D2): "the master maintains a task pool and dispatches
// tasks to workers dynamically", so faster nodes naturally pull more
// tasks, and each computation round synchronizes before the next begins —
// the structure that limits parallel speedup on a heterogeneous WOW.
package pvm

import (
	"fmt"

	"wow/internal/metrics"
	"wow/internal/middleware/rpc"
	"wow/internal/sim"
	"wow/internal/vip"
)

// Machine is the compute node a Worker drives; internal/vm.VM satisfies
// it.
type Machine interface {
	Name() string
	Stack() *vip.Stack
	Execute(cpu sim.Duration, done func())
}

// Port is the master daemon port; WorkerPort the per-worker daemon port.
const (
	Port       = 4096
	WorkerPort = 4097
)

// Task is one unit of parallel work.
type Task struct {
	ID    int
	Round int
	// CPU is baseline CPU time.
	CPU sim.Duration
	// SendBytes/RecvBytes are task-dispatch and result payload sizes.
	SendBytes, RecvBytes int
}

// wire messages.
type enrollReq struct{ Name string }
type enrollRsp struct{ OK bool }
type taskReq struct{ T Task }
type taskRsp struct{ OK bool }
type bcastReq struct{ Round int }
type bcastRsp struct{ OK bool }

type workerRef struct {
	name  string
	ip    vip.IP
	cli   *rpc.Client
	busy  bool
	tasks int
}

// Master coordinates rounds of tasks across enrolled workers.
type Master struct {
	stack   *vip.Stack
	sim     *sim.Simulator
	workers []*workerRef

	rounds    [][]Task
	round     int
	pool      []Task
	inflight  int
	started   sim.Time
	roundDone []sim.Time
	onDone    func(elapsed sim.Duration)
	running   bool
	broadcast int

	// Stats counts runtime events.
	Stats metrics.Counter
}

// NewMaster starts the PVM master daemon on a stack (typically the head
// VM or the node where the user launched fastDNAml).
func NewMaster(stack *vip.Stack) (*Master, error) {
	m := &Master{stack: stack, sim: stack.Sim()}
	_, err := rpc.Serve(stack, Port, func(client vip.IP, body any, reply func(any, int)) {
		switch req := body.(type) {
		case enrollReq:
			w := &workerRef{name: req.Name, ip: client, cli: rpc.Dial(stack, client, WorkerPort)}
			m.workers = append(m.workers, w)
			m.Stats.Inc("workers.enrolled", 1)
			reply(enrollRsp{OK: true}, 64)
			if m.running {
				m.pump()
			}
		default:
			reply(nil, 16)
		}
	})
	if err != nil {
		return nil, fmt.Errorf("pvm: %w", err)
	}
	return m, nil
}

// SetRoundBroadcast makes the master ship bytes of shared state (the
// current best tree, in fastDNAml's case) to every worker at the start of
// each round and wait for acknowledgments before dispatching tasks — the
// synchronization §V-D2 identifies as the scaling limit: the application
// "needs to synchronize many times during its execution, to select the
// best tree at each round of tree optimization".
func (m *Master) SetRoundBroadcast(bytes int) { m.broadcast = bytes }

// WorkerCount reports enrolled workers.
func (m *Master) WorkerCount() int { return len(m.workers) }

// TasksPerWorker reports how many tasks each worker executed.
func (m *Master) TasksPerWorker() map[string]int {
	out := make(map[string]int, len(m.workers))
	for _, w := range m.workers {
		out[w.name] = w.tasks
	}
	return out
}

// RoundEndTimes returns when each round's barrier completed.
func (m *Master) RoundEndTimes() []sim.Time { return m.roundDone }

// Run executes the rounds in order; within a round tasks are dispatched
// dynamically to idle workers, and the next round starts only after every
// task of the current round has returned (the per-round synchronization
// fastDNAml needs to "select the best tree at each round of tree
// optimization").
func (m *Master) Run(rounds [][]Task, onDone func(elapsed sim.Duration)) error {
	if m.running {
		return fmt.Errorf("pvm: master already running")
	}
	m.rounds = rounds
	m.round = 0
	m.onDone = onDone
	m.running = true
	m.started = m.sim.Now()
	m.roundDone = m.roundDone[:0]
	m.startRound()
	return nil
}

func (m *Master) startRound() {
	for m.round < len(m.rounds) && len(m.rounds[m.round]) == 0 {
		m.roundDone = append(m.roundDone, m.sim.Now())
		m.round++
	}
	if m.round >= len(m.rounds) {
		m.running = false
		if m.onDone != nil {
			m.onDone(m.sim.Now().Sub(m.started))
		}
		return
	}
	m.pool = append([]Task(nil), m.rounds[m.round]...)
	if m.broadcast > 0 && len(m.workers) > 0 {
		// Ship the round's shared state to every worker and wait for
		// all acknowledgments before dispatching.
		waiting := len(m.workers)
		for _, w := range m.workers {
			w := w
			m.Stats.Inc("broadcasts.sent", 1)
			w.cli.Call(bcastReq{Round: m.round}, m.broadcast, func(resp any) {
				waiting--
				if waiting == 0 {
					m.pump()
				}
			})
		}
		return
	}
	m.pump()
}

// pump dispatches pool tasks to idle workers.
func (m *Master) pump() {
	if !m.running {
		return
	}
	for len(m.pool) > 0 {
		var idle *workerRef
		for _, w := range m.workers {
			if !w.busy {
				idle = w
				break
			}
		}
		if idle == nil {
			return
		}
		t := m.pool[0]
		m.pool = m.pool[1:]
		idle.busy = true
		idle.tasks++
		m.inflight++
		m.Stats.Inc("tasks.dispatched", 1)
		w := idle
		w.cli.Call(taskReq{T: t}, t.SendBytes, func(resp any) {
			w.busy = false
			m.inflight--
			if _, ok := resp.(taskRsp); !ok {
				// Transport failure: requeue the task.
				m.Stats.Inc("tasks.requeued", 1)
				m.pool = append(m.pool, t)
				m.pump()
				return
			}
			m.Stats.Inc("tasks.completed", 1)
			if m.inflight == 0 && len(m.pool) == 0 {
				// Round barrier reached.
				m.roundDone = append(m.roundDone, m.sim.Now())
				m.round++
				m.startRound()
				return
			}
			m.pump()
		})
	}
}

// Worker executes tasks on a VM.
type Worker struct {
	vm Machine
	// Stats counts executed tasks.
	Stats metrics.Counter
}

// NewWorker starts the worker daemon on the VM and enrolls with the
// master.
func NewWorker(machine Machine, master vip.IP) (*Worker, error) {
	w := &Worker{vm: machine}
	_, err := rpc.Serve(machine.Stack(), WorkerPort, func(client vip.IP, body any, reply func(any, int)) {
		switch req := body.(type) {
		case taskReq:
			w.Stats.Inc("tasks.received", 1)
			machine.Execute(req.T.CPU, func() {
				reply(taskRsp{OK: true}, req.T.RecvBytes)
			})
		case bcastReq:
			w.Stats.Inc("broadcasts.received", 1)
			reply(bcastRsp{OK: true}, 64)
		default:
			reply(nil, 16)
		}
	})
	if err != nil {
		return nil, fmt.Errorf("pvm worker: %w", err)
	}
	enroll := rpc.Dial(machine.Stack(), master, Port)
	enroll.Call(enrollReq{Name: machine.Name()}, 256, func(resp any) {
		if resp == nil {
			w.Stats.Inc("enroll.failed", 1)
		}
	})
	return w, nil
}
