// Package pbs models the OpenPBS batch system of §V-D1: a head node
// (pbs_server + scheduler) that queues submitted jobs and dispatches them
// to MOM daemons on worker VMs; workers stage input from the NFS-mounted
// home directory, execute the job on the guest CPU, write output back to
// NFS and report completion.
//
// All control traffic (dispatch, completion) and data traffic (NFS blocks)
// rides the virtual network, so PBS throughput inherits the overlay's path
// quality — the mechanism behind the paper's 53 vs 22 jobs/minute result.
package pbs

import (
	"fmt"

	"wow/internal/metrics"
	"wow/internal/middleware/nfs"
	"wow/internal/middleware/rpc"
	"wow/internal/sim"
	"wow/internal/vip"
)

// Machine is the compute node a MOM drives: a named guest with a virtual
// IP stack and a single-core CPU executing baseline-seconds of work.
// internal/vm.VM satisfies it.
type Machine interface {
	Name() string
	Stack() *vip.Stack
	Execute(cpu sim.Duration, done func())
}

// Port is the pbs_server port; MOMPort the per-worker daemon port.
const (
	Port    = 15001
	MOMPort = 15002
)

// JobSpec describes one batch job.
type JobSpec struct {
	ID int
	// CPU is baseline CPU time (node002-seconds).
	CPU sim.Duration
	// InputPath is read in full from NFS before computing.
	InputPath string
	// OutputPath receives OutputBytes on NFS after computing.
	OutputPath  string
	OutputBytes int64
}

// JobRecord tracks one job through the system.
type JobRecord struct {
	Spec      JobSpec
	Submitted sim.Time
	Started   sim.Time // dispatched to a worker
	Finished  sim.Time
	Worker    string
	OK        bool
}

// WallSeconds is the job's execution wall time (dispatch to completion),
// the quantity binned in Figure 8.
func (r *JobRecord) WallSeconds() float64 { return r.Finished.Sub(r.Started).Seconds() }

// wire messages.
type registerReq struct{ Name string }
type registerRsp struct{ OK bool }
type runReq struct{ Spec JobSpec }
type runRsp struct{ OK bool }

type workerRef struct {
	name string
	ip   vip.IP
	cli  *rpc.Client
	busy bool
	jobs int
}

// Head is the PBS head node service.
type Head struct {
	stack   *vip.Stack
	sim     *sim.Simulator
	workers []*workerRef
	queue   []*JobRecord
	records []*JobRecord
	done    int
	onDone  func(*JobRecord)

	// Stats counts scheduler events.
	Stats metrics.Counter
}

// NewHead starts the pbs_server on the head VM's stack.
func NewHead(stack *vip.Stack) (*Head, error) {
	h := &Head{stack: stack, sim: stack.Sim()}
	_, err := rpc.Serve(stack, Port, func(client vip.IP, body any, reply func(any, int)) {
		switch m := body.(type) {
		case registerReq:
			w := &workerRef{name: m.Name, ip: client, cli: rpc.Dial(stack, client, MOMPort)}
			h.workers = append(h.workers, w)
			h.Stats.Inc("workers.registered", 1)
			reply(registerRsp{OK: true}, 64)
			h.dispatch()
		default:
			reply(nil, 16)
		}
	})
	if err != nil {
		return nil, fmt.Errorf("pbs: %w", err)
	}
	return h, nil
}

// OnJobDone registers a per-completion callback.
func (h *Head) OnJobDone(f func(*JobRecord)) { h.onDone = f }

// Submit queues one job (qsub).
func (h *Head) Submit(spec JobSpec) *JobRecord {
	rec := &JobRecord{Spec: spec, Submitted: h.sim.Now()}
	h.records = append(h.records, rec)
	h.queue = append(h.queue, rec)
	h.Stats.Inc("jobs.submitted", 1)
	h.dispatch()
	return rec
}

// Records returns all job records in submission order.
func (h *Head) Records() []*JobRecord { return h.records }

// Completed reports finished jobs.
func (h *Head) Completed() int { return h.done }

// QueueLength reports jobs waiting for a worker.
func (h *Head) QueueLength() int { return len(h.queue) }

// Workers reports registered workers and their job counts.
func (h *Head) Workers() map[string]int {
	out := make(map[string]int, len(h.workers))
	for _, w := range h.workers {
		out[w.name] = w.jobs
	}
	return out
}

// dispatch assigns queued jobs to free workers (FIFO job order, first
// free worker — OpenPBS's default behaviour for a homogeneous queue).
func (h *Head) dispatch() {
	for len(h.queue) > 0 {
		var free *workerRef
		for _, w := range h.workers {
			if !w.busy {
				free = w
				break
			}
		}
		if free == nil {
			return
		}
		rec := h.queue[0]
		h.queue = h.queue[1:]
		free.busy = true
		free.jobs++
		rec.Started = h.sim.Now()
		rec.Worker = free.name
		h.Stats.Inc("jobs.dispatched", 1)
		w := free
		// The dispatch RPC carries the job script (~4 KB).
		w.cli.Call(runReq{Spec: rec.Spec}, 4096, func(resp any) {
			rsp, ok := resp.(runRsp)
			rec.Finished = h.sim.Now()
			rec.OK = ok && rsp.OK
			w.busy = false
			h.done++
			if !rec.OK {
				h.Stats.Inc("jobs.failed", 1)
			}
			if h.onDone != nil {
				h.onDone(rec)
			}
			h.dispatch()
		})
	}
}

// MOM is the per-worker execution daemon.
type MOM struct {
	vm   Machine
	nfsC *nfs.Client
	head vip.IP
	// Stats counts executed jobs.
	Stats metrics.Counter
}

// NewMOM starts a MOM on the worker VM, mounts NFS from the head and
// registers with the pbs_server.
func NewMOM(machine Machine, head vip.IP) (*MOM, error) {
	m := &MOM{vm: machine, nfsC: nfs.Mount(machine.Stack(), head), head: head}
	_, err := rpc.Serve(machine.Stack(), MOMPort, m.handle)
	if err != nil {
		return nil, fmt.Errorf("pbs mom: %w", err)
	}
	reg := rpc.Dial(machine.Stack(), head, Port)
	reg.Call(registerReq{Name: machine.Name()}, 256, func(resp any) {
		if resp == nil {
			m.Stats.Inc("register.failed", 1)
		}
	})
	return m, nil
}

// NFS exposes the MOM's mounted client for diagnostics.
func (m *MOM) NFS() *nfs.Client { return m.nfsC }

// handle runs one job: stage in, compute, stage out, report.
func (m *MOM) handle(client vip.IP, body any, reply func(any, int)) {
	req, ok := body.(runReq)
	if !ok {
		reply(nil, 16)
		return
	}
	m.Stats.Inc("jobs.received", 1)
	finish := func(ok bool) {
		if ok {
			m.Stats.Inc("jobs.ok", 1)
		} else {
			m.Stats.Inc("jobs.error", 1)
		}
		reply(runRsp{OK: ok}, 1024)
	}
	stageOut := func() {
		if req.Spec.OutputBytes <= 0 {
			finish(true)
			return
		}
		m.nfsC.WriteFile(req.Spec.OutputPath, req.Spec.OutputBytes, func(ok bool) { finish(ok) })
	}
	compute := func() {
		m.vm.Execute(req.Spec.CPU, stageOut)
	}
	if req.Spec.InputPath != "" {
		m.nfsC.ReadFile(req.Spec.InputPath, func(ok bool, _ int64) {
			if !ok {
				finish(false)
				return
			}
			compute()
		})
	} else {
		compute()
	}
}
