package pbs

import (
	"fmt"
	"testing"

	"wow/internal/middleware/nfs"
	"wow/internal/sim"
	"wow/internal/vip"
	"wow/internal/vip/viptest"
)

type cluster struct {
	s       *sim.Simulator
	mesh    *viptest.Mesh
	head    *Head
	nfsSrv  *nfs.Server
	headIP  vip.IP
	moms    []*MOM
	workers []*viptest.Machine
}

func newCluster(t *testing.T, seed int64, workers int, speeds []float64) *cluster {
	t.Helper()
	s := sim.New(seed)
	m := viptest.NewMesh(s, 10*sim.Millisecond)
	headStack := m.AddStack(vip.MustParseIP("172.16.1.1"), vip.StackConfig{})
	nfsSrv, err := nfs.NewServer(headStack)
	if err != nil {
		t.Fatal(err)
	}
	head, err := NewHead(headStack)
	if err != nil {
		t.Fatal(err)
	}
	c := &cluster{s: s, mesh: m, head: head, nfsSrv: nfsSrv, headIP: headStack.IP()}
	for i := 0; i < workers; i++ {
		speed := 1.0
		if speeds != nil {
			speed = speeds[i%len(speeds)]
		}
		w := viptest.NewMachine(m, fmt.Sprintf("node%03d", i+2), vip.IP(vip.MustParseIP("172.16.1.2"))+vip.IP(i), speed)
		mom, err := NewMOM(w, c.headIP)
		if err != nil {
			t.Fatal(err)
		}
		c.workers = append(c.workers, w)
		c.moms = append(c.moms, mom)
	}
	s.RunFor(10 * sim.Second) // registration
	return c
}

func TestRegistration(t *testing.T) {
	c := newCluster(t, 1, 4, nil)
	if got := len(c.head.Workers()); got != 4 {
		t.Fatalf("registered %d of 4", got)
	}
	if c.head.Stats.Get("workers.registered") != 4 {
		t.Fatal("stats")
	}
}

func TestSingleJobRuns(t *testing.T) {
	c := newCluster(t, 2, 2, nil)
	c.nfsSrv.Put("/in", 64<<10)
	var rec *JobRecord
	c.head.OnJobDone(func(r *JobRecord) { rec = r })
	c.head.Submit(JobSpec{ID: 1, CPU: 10 * sim.Second, InputPath: "/in", OutputPath: "/out/1", OutputBytes: 16 << 10})
	c.s.RunFor(5 * sim.Minute)
	if rec == nil || !rec.OK {
		t.Fatalf("job did not complete: %+v", rec)
	}
	if rec.WallSeconds() < 10 {
		t.Fatalf("wall %.1fs < CPU time", rec.WallSeconds())
	}
	if sz, ok := c.nfsSrv.Size("/out/1"); !ok || sz != 16<<10 {
		t.Fatalf("output not committed to NFS: %d", sz)
	}
	if c.head.Completed() != 1 {
		t.Fatal("completed count")
	}
}

func TestMissingInputFailsJob(t *testing.T) {
	c := newCluster(t, 3, 1, nil)
	var rec *JobRecord
	c.head.OnJobDone(func(r *JobRecord) { rec = r })
	c.head.Submit(JobSpec{ID: 1, CPU: sim.Second, InputPath: "/does-not-exist"})
	c.s.RunFor(2 * sim.Minute)
	if rec == nil || rec.OK {
		t.Fatalf("job with missing input reported OK: %+v", rec)
	}
	if c.head.Stats.Get("jobs.failed") != 1 {
		t.Fatal("failure not counted")
	}
}

func TestJobsQueueWhenWorkersBusy(t *testing.T) {
	c := newCluster(t, 4, 2, nil)
	done := 0
	c.head.OnJobDone(func(r *JobRecord) { done++ })
	for i := 0; i < 6; i++ {
		c.head.Submit(JobSpec{ID: i, CPU: 30 * sim.Second})
	}
	c.s.RunFor(20 * sim.Second)
	if c.head.QueueLength() == 0 {
		t.Fatal("queue empty despite 6 jobs on 2 workers")
	}
	c.s.RunFor(10 * sim.Minute)
	if done != 6 {
		t.Fatalf("done = %d", done)
	}
}

func TestFasterWorkersRunMoreJobs(t *testing.T) {
	// Mirrors the Figure 8 observation: slow nodes (node032-like, 0.45×)
	// end up with far fewer jobs than fast ones (node033-like, 1.33×).
	c := newCluster(t, 5, 4, []float64{1.33, 1.0, 1.0, 0.45})
	for i := 0; i < 100; i++ {
		c.head.Submit(JobSpec{ID: i, CPU: 20 * sim.Second})
	}
	c.s.RunFor(3 * sim.Hour)
	if c.head.Completed() != 100 {
		t.Fatalf("completed %d", c.head.Completed())
	}
	counts := c.head.Workers()
	fast := counts["node002"] // 1.33×
	slow := counts["node005"] // 0.45×
	if fast <= slow {
		t.Fatalf("fast worker ran %d, slow ran %d; want fast > slow", fast, slow)
	}
}

func TestRecordsTimeline(t *testing.T) {
	c := newCluster(t, 6, 1, nil)
	for i := 0; i < 3; i++ {
		c.head.Submit(JobSpec{ID: i, CPU: 5 * sim.Second})
	}
	c.s.RunFor(5 * sim.Minute)
	recs := c.head.Records()
	if len(recs) != 3 {
		t.Fatalf("records = %d", len(recs))
	}
	for i, r := range recs {
		if !(r.Submitted <= r.Started && r.Started < r.Finished) {
			t.Fatalf("record %d timeline broken: %+v", i, r)
		}
		if r.Worker == "" {
			t.Fatal("worker not recorded")
		}
	}
	// Serialized on one worker: starts are ordered.
	if !(recs[0].Finished <= recs[1].Started+1 && recs[1].Finished <= recs[2].Started+1) {
		t.Fatal("single worker ran jobs concurrently")
	}
}

func TestWorkerOutageJobRequeuedOrFailed(t *testing.T) {
	// A worker dying mid-job must not wedge the head: the RPC transport
	// gives up and the head marks the job failed and frees the slot.
	s := sim.New(7)
	m := viptest.NewMesh(s, 10*sim.Millisecond)
	headStack := m.AddStack(vip.MustParseIP("172.16.1.1"), vip.StackConfig{GiveUp: 2 * sim.Minute})
	if _, err := nfs.NewServer(headStack); err != nil {
		t.Fatal(err)
	}
	head, err := NewHead(headStack)
	if err != nil {
		t.Fatal(err)
	}
	w := viptest.NewMachine(m, "doomed", vip.MustParseIP("172.16.1.2"), 1)
	if _, err := NewMOM(w, headStack.IP()); err != nil {
		t.Fatal(err)
	}
	s.RunFor(10 * sim.Second)

	var rec *JobRecord
	head.OnJobDone(func(r *JobRecord) { rec = r })
	head.Submit(JobSpec{ID: 1, CPU: sim.Hour})
	s.RunFor(10 * sim.Second)
	m.SetUp(w.S.IP(), false) // worker crashes mid-job
	// TCP keepalive (2h idle + 9 probes) eventually reaps the dead
	// connection, exactly like the kernel timers PBS relied on.
	s.RunFor(4 * sim.Hour)
	if rec == nil {
		t.Fatal("head wedged on dead worker")
	}
	if rec.OK {
		t.Fatal("job on crashed worker reported OK")
	}
}
