package rpc

import (
	"testing"

	"wow/internal/sim"
	"wow/internal/vip"
	"wow/internal/vip/viptest"
)

func setup(seed int64) (*sim.Simulator, *vip.Stack, *vip.Stack, *viptest.Mesh) {
	s := sim.New(seed)
	m := viptest.NewMesh(s, 10*sim.Millisecond)
	return s, m.AddStack(vip.MustParseIP("10.0.0.1"), vip.StackConfig{}),
		m.AddStack(vip.MustParseIP("10.0.0.2"), vip.StackConfig{}), m
}

func TestCallRoundTrip(t *testing.T) {
	s, server, client, _ := setup(1)
	if _, err := Serve(server, 100, func(from vip.IP, body any, reply func(any, int)) {
		if from != client.IP() {
			t.Errorf("from = %v", from)
		}
		reply("pong:"+body.(string), 64)
	}); err != nil {
		t.Fatal(err)
	}
	c := Dial(client, server.IP(), 100)
	var got any
	c.Call("ping", 64, func(resp any) { got = resp })
	s.RunFor(10 * sim.Second)
	if got != "pong:ping" {
		t.Fatalf("got %v", got)
	}
}

func TestConcurrentCallsMultiplex(t *testing.T) {
	s, server, client, _ := setup(2)
	Serve(server, 100, func(from vip.IP, body any, reply func(any, int)) {
		reply(body, 64)
	})
	c := Dial(client, server.IP(), 100)
	got := make(map[int]bool)
	for i := 0; i < 20; i++ {
		i := i
		c.Call(i, 64, func(resp any) {
			if resp.(int) != i {
				t.Errorf("response mismatch: %v != %d", resp, i)
			}
			got[i] = true
		})
	}
	if c.Pending() != 20 {
		t.Fatalf("pending = %d", c.Pending())
	}
	s.RunFor(10 * sim.Second)
	if len(got) != 20 {
		t.Fatalf("completed %d of 20", len(got))
	}
}

func TestDeferredReply(t *testing.T) {
	s, server, client, _ := setup(3)
	Serve(server, 100, func(from vip.IP, body any, reply func(any, int)) {
		// Reply 5 seconds later, as a MOM would after running a job.
		s.After(5*sim.Second, func() { reply("done", 64) })
	})
	c := Dial(client, server.IP(), 100)
	var at sim.Time
	c.Call("job", 1024, func(resp any) { at = s.Now() })
	s.RunFor(sim.Minute)
	if at < sim.Time(5*sim.Second) {
		t.Fatalf("reply arrived too early: %v", at)
	}
}

func TestClientCloseFailsPending(t *testing.T) {
	s, server, client, _ := setup(4)
	Serve(server, 100, func(from vip.IP, body any, reply func(any, int)) {
		// Never replies.
	})
	c := Dial(client, server.IP(), 100)
	var got any = "unset"
	c.Call("x", 64, func(resp any) { got = resp })
	s.RunFor(sim.Second)
	c.Close()
	c.Close() // idempotent
	if got != nil {
		t.Fatalf("pending call not failed: %v", got)
	}
	c.Call("y", 64, func(resp any) { got = resp })
	if got != nil {
		t.Fatal("call on closed client not failed")
	}
	s.RunFor(sim.Second)
}

func TestTransportFailureFailsPending(t *testing.T) {
	s, server, _, m := setup(5)
	Serve(server, 100, func(from vip.IP, body any, reply func(any, int)) {})
	cfg := vip.StackConfig{GiveUp: sim.Minute}
	client2 := m.AddStack(vip.MustParseIP("10.0.0.3"), cfg)
	c := Dial(client2, server.IP(), 100)
	var downErr error
	c.OnDown(func(err error) { downErr = err })
	var got any = "unset"
	c.Call("x", 64, func(resp any) { got = resp })
	s.RunFor(sim.Second)
	m.SetUp(server.IP(), false)
	// Enqueue traffic so the transport notices the outage.
	c.Call("y", 64, func(resp any) {})
	s.RunFor(10 * sim.Minute)
	if got != nil {
		t.Fatalf("pending call survived transport death: %v", got)
	}
	if downErr == nil {
		t.Fatal("OnDown not invoked")
	}
}

func TestRedialAfterFailure(t *testing.T) {
	s, server, _, m := setup(6)
	served := 0
	Serve(server, 100, func(from vip.IP, body any, reply func(any, int)) {
		served++
		reply(body, 64)
	})
	cfg := vip.StackConfig{GiveUp: 30 * sim.Second}
	client := m.AddStack(vip.MustParseIP("10.0.0.4"), cfg)
	c := Dial(client, server.IP(), 100)
	var first any
	c.Call(1, 64, func(resp any) { first = resp })
	s.RunFor(5 * sim.Second)
	if first != 1 {
		t.Fatalf("first call failed: %v", first)
	}
	// Kill the path long enough for the conn to give up, then restore.
	m.SetUp(server.IP(), false)
	c.Call(2, 64, func(resp any) {})
	s.RunFor(5 * sim.Minute)
	m.SetUp(server.IP(), true)
	var second any
	c.Call(3, 64, func(resp any) { second = resp })
	s.RunFor(sim.Minute)
	if second != 3 {
		t.Fatalf("redial failed: %v", second)
	}
}
