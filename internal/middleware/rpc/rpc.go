// Package rpc is a minimal request/response layer over the virtual TCP
// transport, used by the cluster middleware (PBS, NFS, PVM) that runs
// unmodified inside WOW guests. One client keeps one persistent connection
// to a server; requests and responses are framed as TCP-lite messages and
// therefore inherit all transport dynamics — window limits, loss recovery,
// and patience across migration outages.
package rpc

import (
	"fmt"

	"wow/internal/vip"
)

// envelope frames one RPC message on the wire.
type envelope struct {
	ID    uint64
	IsRsp bool
	Body  any
}

// Handler services one request and must call reply exactly once (possibly
// later, asynchronously). respSize is the response payload size in bytes.
type Handler func(client vip.IP, body any, reply func(resp any, respSize int))

// Server accepts RPC connections on a port.
type Server struct {
	stack   *vip.Stack
	handler Handler
}

// Serve starts an RPC server on the stack's port.
func Serve(stack *vip.Stack, port uint16, h Handler) (*Server, error) {
	s := &Server{stack: stack, handler: h}
	err := stack.ListenTCP(port, func(c *vip.Conn) {
		c.OnMessage(func(size int, msg any) {
			env, ok := msg.(envelope)
			if !ok || env.IsRsp {
				return
			}
			id := env.ID
			s.handler(c.RemoteIP(), env.Body, func(resp any, respSize int) {
				// Connection may have died while the handler
				// worked; Send then reports closed, which is
				// fine — the client will retry or has gone.
				_ = c.Send(respSize, envelope{ID: id, IsRsp: true, Body: resp})
			})
		})
	})
	if err != nil {
		return nil, fmt.Errorf("rpc: %w", err)
	}
	return s, nil
}

// Client multiplexes requests over one persistent connection.
type Client struct {
	stack   *vip.Stack
	server  vip.IP
	port    uint16
	conn    *vip.Conn
	nextID  uint64
	pending map[uint64]func(any)
	closed  bool
	onDown  func(error)
}

// Dial creates a client to server:port. The underlying connection is
// established lazily and re-dialed after transport failures.
func Dial(stack *vip.Stack, server vip.IP, port uint16) *Client {
	return &Client{
		stack:   stack,
		server:  server,
		port:    port,
		pending: make(map[uint64]func(any)),
	}
}

// OnDown registers a callback for transport-level failure (ErrTimeout);
// pending calls are dropped.
func (c *Client) OnDown(f func(error)) { c.onDown = f }

func (c *Client) ensureConn() {
	if c.conn != nil && !c.conn.Closed() {
		return
	}
	conn := c.stack.DialTCP(c.server, c.port)
	conn.OnMessage(func(size int, msg any) {
		env, ok := msg.(envelope)
		if !ok || !env.IsRsp {
			return
		}
		if cb, waiting := c.pending[env.ID]; waiting {
			delete(c.pending, env.ID)
			cb(env.Body)
		}
	})
	conn.OnClose(func(err error) {
		if c.conn == conn {
			c.conn = nil
		}
		if err != nil {
			// Fail all pending calls; callers decide to retry.
			for id, cb := range c.pending {
				delete(c.pending, id)
				cb(nil)
			}
			if c.onDown != nil {
				c.onDown(err)
			}
		}
	})
	c.conn = conn
}

// Call sends one request of reqSize payload bytes; cb fires with the
// response body, or nil if the transport failed.
func (c *Client) Call(req any, reqSize int, cb func(resp any)) {
	if c.closed {
		cb(nil)
		return
	}
	c.ensureConn()
	c.nextID++
	id := c.nextID
	c.pending[id] = cb
	if err := c.conn.Send(reqSize, envelope{ID: id, Body: req}); err != nil {
		delete(c.pending, id)
		cb(nil)
	}
}

// Pending reports in-flight calls.
func (c *Client) Pending() int { return len(c.pending) }

// ConnState reports the transport connection's state for diagnostics:
// "none", "established", "closed" or "connecting".
func (c *Client) ConnState() string {
	switch {
	case c.conn == nil:
		return "none"
	case c.conn.Closed():
		return "closed"
	case c.conn.Established():
		return "established"
	}
	return "connecting"
}

// Close tears the client down; pending calls get nil responses.
func (c *Client) Close() {
	if c.closed {
		return
	}
	c.closed = true
	for id, cb := range c.pending {
		delete(c.pending, id)
		cb(nil)
	}
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}
