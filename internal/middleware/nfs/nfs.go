// Package nfs provides the network file system the paper's PBS jobs mount
// from the head node: MEME jobs "read and write input and output files to
// an NFS file system mounted from the head node" (§V-D1), and the migrated
// PBS job of Figure 7 "committed its output data to the NFS-mounted home
// directory" after resuming.
//
// File content is synthetic — only names and sizes are tracked — but every
// read and write moves its full byte count through the virtual TCP
// transport, so NFS traffic competes for overlay path capacity exactly as
// the real protocol did on the testbed.
package nfs

import (
	"fmt"

	"wow/internal/middleware/rpc"
	"wow/internal/vip"
)

// Port is the NFS service port.
const Port = 2049

// request ops.
type lookupReq struct{ Path string }
type readReq struct {
	Path   string
	Offset int64
	Count  int64
}
type writeReq struct {
	Path  string
	Count int64 // bytes appended
}

type lookupRsp struct {
	OK   bool
	Size int64
}
type readRsp struct {
	OK    bool
	Count int64
}
type writeRsp struct {
	OK   bool
	Size int64 // file size after write
}

// Server exports a synthetic file tree.
type Server struct {
	files map[string]int64
	// Ops counts served operations by name.
	Ops map[string]int64
}

// NewServer creates an NFS server on the stack (typically the PBS head
// node's VM).
func NewServer(stack *vip.Stack) (*Server, error) {
	s := &Server{files: make(map[string]int64), Ops: make(map[string]int64)}
	_, err := rpc.Serve(stack, Port, s.handle)
	if err != nil {
		return nil, fmt.Errorf("nfs: %w", err)
	}
	return s, nil
}

// Put creates or truncates a file of the given size server-side (staging
// input data without network traffic, as a local cp on the head would).
func (s *Server) Put(path string, size int64) { s.files[path] = size }

// Size returns a file's size and whether it exists.
func (s *Server) Size(path string) (int64, bool) {
	sz, ok := s.files[path]
	return sz, ok
}

// FileCount reports how many files exist.
func (s *Server) FileCount() int { return len(s.files) }

func (s *Server) handle(client vip.IP, body any, reply func(any, int)) {
	switch req := body.(type) {
	case lookupReq:
		s.Ops["lookup"]++
		sz, ok := s.files[req.Path]
		reply(lookupRsp{OK: ok, Size: sz}, 64)
	case readReq:
		s.Ops["read"]++
		sz, ok := s.files[req.Path]
		if !ok || req.Offset >= sz {
			reply(readRsp{OK: ok && req.Offset == sz, Count: 0}, 64)
			return
		}
		n := req.Count
		if req.Offset+n > sz {
			n = sz - req.Offset
		}
		// The response carries the data: its wire size is the read
		// count.
		reply(readRsp{OK: true, Count: n}, int(n)+64)
	case writeReq:
		s.Ops["write"]++
		s.files[req.Path] += req.Count
		reply(writeRsp{OK: true, Size: s.files[req.Path]}, 64)
	default:
		reply(nil, 16)
	}
}

// Client is a mounted NFS view, held by each worker VM.
type Client struct {
	rpc *rpc.Client
	// BlockSize is the transfer unit (rsize/wsize); NFSv3's common 32 KB
	// default.
	BlockSize int64
}

// Mount connects a client stack to the server.
func Mount(stack *vip.Stack, server vip.IP) *Client {
	return &Client{rpc: rpc.Dial(stack, server, Port), BlockSize: 32 << 10}
}

// Lookup stats a file: cb receives its size, or ok=false.
func (c *Client) Lookup(path string, cb func(ok bool, size int64)) {
	c.rpc.Call(lookupReq{Path: path}, 64, func(resp any) {
		r, k := resp.(lookupRsp)
		if !k {
			cb(false, 0)
			return
		}
		cb(r.OK, r.Size)
	})
}

// ReadFile streams an entire file block by block; cb reports the bytes
// actually transferred and whether the file existed. Transfer time is
// dominated by the virtual network path — the quantity the shortcut
// experiments measure.
func (c *Client) ReadFile(path string, cb func(ok bool, bytes int64)) {
	var total int64
	var step func(offset int64)
	step = func(offset int64) {
		c.rpc.Call(readReq{Path: path, Offset: offset, Count: c.BlockSize}, 96, func(resp any) {
			r, k := resp.(readRsp)
			if !k || !r.OK && total == 0 {
				cb(false, total)
				return
			}
			total += r.Count
			if r.Count < c.BlockSize {
				cb(true, total)
				return
			}
			step(offset + r.Count)
		})
	}
	step(0)
}

// WriteFile appends size bytes block by block; cb reports success. Each
// block's request carries its payload through the transport.
func (c *Client) WriteFile(path string, size int64, cb func(ok bool)) {
	var step func(written int64)
	step = func(written int64) {
		if written >= size {
			cb(true)
			return
		}
		n := c.BlockSize
		if written+n > size {
			n = size - written
		}
		c.rpc.Call(writeReq{Path: path, Count: n}, int(n)+96, func(resp any) {
			if _, k := resp.(writeRsp); !k {
				cb(false)
				return
			}
			step(written + n)
		})
	}
	step(0)
}

// Unmount closes the client connection.
func (c *Client) Unmount() { c.rpc.Close() }

// RPC exposes the underlying client for diagnostics.
func (c *Client) RPC() *rpc.Client { return c.rpc }
