package nfs

import (
	"testing"

	"wow/internal/sim"
	"wow/internal/vip"
	"wow/internal/vip/viptest"
)

func setup(seed int64) (*sim.Simulator, *Server, *Client, *vip.Stack) {
	s := sim.New(seed)
	m := viptest.NewMesh(s, 5*sim.Millisecond)
	serverStack := m.AddStack(vip.MustParseIP("172.16.1.1"), vip.StackConfig{})
	clientStack := m.AddStack(vip.MustParseIP("172.16.1.2"), vip.StackConfig{})
	srv, err := NewServer(serverStack)
	if err != nil {
		panic(err)
	}
	return s, srv, Mount(clientStack, serverStack.IP()), serverStack
}

func TestLookup(t *testing.T) {
	s, srv, c, _ := setup(1)
	srv.Put("/home/a", 12345)
	var ok bool
	var size int64
	c.Lookup("/home/a", func(o bool, sz int64) { ok, size = o, sz })
	s.RunFor(5 * sim.Second)
	if !ok || size != 12345 {
		t.Fatalf("lookup: ok=%v size=%d", ok, size)
	}
	c.Lookup("/nope", func(o bool, sz int64) { ok = o })
	s.RunFor(5 * sim.Second)
	if ok {
		t.Fatal("lookup of missing file succeeded")
	}
	if srv.Ops["lookup"] != 2 {
		t.Fatalf("ops = %v", srv.Ops)
	}
}

func TestReadFileWholeAndBlocks(t *testing.T) {
	s, srv, c, _ := setup(2)
	const size = 200<<10 + 777 // not block aligned
	srv.Put("/data", size)
	var got int64
	okFlag := false
	c.ReadFile("/data", func(ok bool, n int64) { okFlag, got = ok, n })
	s.RunFor(sim.Minute)
	if !okFlag || got != size {
		t.Fatalf("read %d of %d (ok=%v)", got, size, okFlag)
	}
	// 200KB+777 at 32KB blocks = 7 reads.
	if srv.Ops["read"] != 7 {
		t.Fatalf("read ops = %d", srv.Ops["read"])
	}
}

func TestReadMissingFile(t *testing.T) {
	s, _, c, _ := setup(3)
	okFlag := true
	c.ReadFile("/missing", func(ok bool, n int64) { okFlag = ok })
	s.RunFor(5 * sim.Second)
	if okFlag {
		t.Fatal("read of missing file succeeded")
	}
}

func TestReadEmptyFile(t *testing.T) {
	s, srv, c, _ := setup(4)
	srv.Put("/empty", 0)
	var got int64 = -1
	okFlag := false
	c.ReadFile("/empty", func(ok bool, n int64) { okFlag, got = ok, n })
	s.RunFor(5 * sim.Second)
	if !okFlag || got != 0 {
		t.Fatalf("empty read: ok=%v n=%d", okFlag, got)
	}
}

func TestWriteFileAppendsAndGrows(t *testing.T) {
	s, srv, c, _ := setup(5)
	const size = 100 << 10
	okFlag := false
	c.WriteFile("/out/x", size, func(ok bool) { okFlag = ok })
	s.RunFor(sim.Minute)
	if !okFlag {
		t.Fatal("write failed")
	}
	if sz, ok := srv.Size("/out/x"); !ok || sz != size {
		t.Fatalf("server size = %d", sz)
	}
	if srv.FileCount() != 1 {
		t.Fatal("file count")
	}
	// Writes append.
	c.WriteFile("/out/x", 1000, func(ok bool) {})
	s.RunFor(sim.Minute)
	if sz, _ := srv.Size("/out/x"); sz != size+1000 {
		t.Fatalf("append size = %d", sz)
	}
}

func TestTransferTimeScalesWithLatency(t *testing.T) {
	elapsed := func(latency sim.Duration) float64 {
		s := sim.New(7)
		m := viptest.NewMesh(s, latency)
		serverStack := m.AddStack(vip.MustParseIP("172.16.1.1"), vip.StackConfig{})
		clientStack := m.AddStack(vip.MustParseIP("172.16.1.2"), vip.StackConfig{})
		srv, _ := NewServer(serverStack)
		srv.Put("/big", 2<<20)
		c := Mount(clientStack, serverStack.IP())
		var doneAt sim.Time
		c.ReadFile("/big", func(ok bool, n int64) {
			if !ok || n != 2<<20 {
				t.Fatalf("read failed: %v %d", ok, n)
			}
			doneAt = s.Now()
		})
		s.RunFor(10 * sim.Minute)
		return doneAt.Seconds()
	}
	fast := elapsed(2 * sim.Millisecond)
	slow := elapsed(60 * sim.Millisecond)
	// NFS reads are block-serialized RPCs: time ≈ blocks × RTT, so 30×
	// the latency should be roughly an order of magnitude slower — the
	// exact mechanism that makes PBS jobs slower without shortcuts.
	if slow < 5*fast {
		t.Fatalf("latency insensitivity: fast=%.2fs slow=%.2fs", fast, slow)
	}
}

func TestUnmount(t *testing.T) {
	s, srv, c, _ := setup(8)
	srv.Put("/a", 10)
	c.Unmount()
	okFlag := true
	c.Lookup("/a", func(ok bool, _ int64) { okFlag = ok })
	s.RunFor(5 * sim.Second)
	if okFlag {
		t.Fatal("lookup after unmount succeeded")
	}
}
