package condor

import (
	"fmt"
	"testing"

	"wow/internal/sim"
	"wow/internal/vip"
	"wow/internal/vip/viptest"
)

type pool struct {
	s      *sim.Simulator
	mesh   *viptest.Mesh
	cm     *CentralManager
	schedd *Schedd
	nodes  []*viptest.Machine
}

func newPool(t *testing.T, seed int64, machines int, speeds []float64, cycle sim.Duration) *pool {
	t.Helper()
	s := sim.New(seed)
	m := viptest.NewMesh(s, 10*sim.Millisecond)
	cmStack := m.AddStack(vip.MustParseIP("172.16.1.1"), vip.StackConfig{})
	cm, err := NewCentralManager(cmStack, cycle)
	if err != nil {
		t.Fatal(err)
	}
	scheddStack := m.AddStack(vip.MustParseIP("172.16.1.2"), vip.StackConfig{})
	schedd := NewSchedd(scheddStack)
	cm.AttachSchedd(schedd)
	p := &pool{s: s, mesh: m, cm: cm, schedd: schedd}
	for i := 0; i < machines; i++ {
		speed := 1.0
		if speeds != nil {
			speed = speeds[i%len(speeds)]
		}
		w := viptest.NewMachine(m, fmt.Sprintf("exec%02d", i), vip.MustParseIP("172.16.1.10")+vip.IP(i), speed)
		if _, err := NewStartd(w, speed, cmStack.IP(), 30*sim.Second); err != nil {
			t.Fatal(err)
		}
		p.nodes = append(p.nodes, w)
	}
	s.RunFor(5 * sim.Second) // first ads arrive
	return p
}

func TestAdsCollected(t *testing.T) {
	p := newPool(t, 1, 5, nil, 30*sim.Second)
	ads := p.cm.Machines()
	if len(ads) != 5 {
		t.Fatalf("collector has %d ads, want 5", len(ads))
	}
	if ads[0].State != "unclaimed" {
		t.Fatalf("fresh machine state %q", ads[0].State)
	}
}

func TestJobRunsViaMatchmaking(t *testing.T) {
	p := newPool(t, 2, 3, nil, 10*sim.Second)
	var rec *JobRecord
	p.schedd.OnJobDone(func(r *JobRecord) { rec = r })
	p.schedd.Submit(JobAd{ID: 1, CPU: 20 * sim.Second})
	p.s.RunFor(5 * sim.Minute)
	if rec == nil || !rec.OK {
		t.Fatalf("job did not complete: %+v", rec)
	}
	if rec.Matched < rec.Submitted || rec.Finished < rec.Matched {
		t.Fatalf("timeline broken: %+v", rec)
	}
	// Matchmaking waits for a negotiation cycle: matched later than
	// submitted by up to the cycle length.
	if rec.Machine == "" {
		t.Fatal("no machine recorded")
	}
}

func TestRankPrefersFastMachines(t *testing.T) {
	p := newPool(t, 3, 3, []float64{0.5, 1.0, 2.0}, 10*sim.Second)
	var rec *JobRecord
	p.schedd.OnJobDone(func(r *JobRecord) { rec = r })
	p.schedd.Submit(JobAd{ID: 1, CPU: 10 * sim.Second})
	p.s.RunFor(5 * sim.Minute)
	if rec == nil || rec.Machine != "exec02" {
		t.Fatalf("job ran on %q, want the fastest machine exec02", rec.Machine)
	}
}

func TestRequirementsFilterMachines(t *testing.T) {
	p := newPool(t, 4, 2, []float64{0.5, 0.6}, 10*sim.Second)
	done := false
	p.schedd.OnJobDone(func(r *JobRecord) { done = true })
	p.schedd.Submit(JobAd{ID: 1, CPU: sim.Second, MinSpeed: 1.5})
	p.s.RunFor(5 * sim.Minute)
	if done {
		t.Fatal("job ran despite unsatisfiable requirements")
	}
	if p.schedd.IdleJobs() != 1 {
		t.Fatalf("idle = %d", p.schedd.IdleJobs())
	}
	if p.cm.Stats.Get("unmatched") == 0 {
		t.Fatal("unmatched cycles not counted")
	}
}

func TestPoolThroughput(t *testing.T) {
	p := newPool(t, 5, 8, nil, 10*sim.Second)
	const jobs = 100
	done := 0
	p.schedd.OnJobDone(func(r *JobRecord) {
		if r.OK {
			done++
		}
	})
	for i := 0; i < jobs; i++ {
		p.schedd.Submit(JobAd{ID: i, CPU: 30 * sim.Second})
	}
	p.s.RunFor(2 * sim.Hour)
	if done != jobs {
		t.Fatalf("completed %d of %d", done, jobs)
	}
	// All 8 machines should have been used.
	used := map[string]bool{}
	for _, r := range p.schedd.Records() {
		used[r.Machine] = true
	}
	if len(used) != 8 {
		t.Fatalf("only %d machines used", len(used))
	}
}

func TestCrashedStartdExpiresFromPool(t *testing.T) {
	p := newPool(t, 6, 2, nil, 10*sim.Second)
	p.cm.AdTTL = sim.Minute
	p.mesh.SetUp(p.nodes[0].S.IP(), false) // crash exec00
	p.s.RunFor(3 * sim.Minute)
	ads := p.cm.Machines()
	if len(ads) != 1 || ads[0].Name != "exec01" {
		t.Fatalf("crashed machine still advertised: %v", ads)
	}
	// Jobs still run on the survivor.
	done := false
	p.schedd.OnJobDone(func(r *JobRecord) { done = r.OK })
	p.schedd.Submit(JobAd{ID: 1, CPU: sim.Second})
	p.s.RunFor(5 * sim.Minute)
	if !done {
		t.Fatal("job did not run on surviving machine")
	}
}

func TestNegotiationCyclePacesMatching(t *testing.T) {
	// With a long cycle, match latency ≈ cycle; with a short one it's
	// small. (The matchmaking-vs-push scheduling contrast with PBS.)
	latency := func(cycle sim.Duration) float64 {
		p := newPool(t, 7, 2, nil, cycle)
		var rec *JobRecord
		p.schedd.OnJobDone(func(r *JobRecord) { rec = r })
		p.s.RunFor(cycle + sim.Second) // land between cycles
		p.schedd.Submit(JobAd{ID: 1, CPU: sim.Second})
		p.s.RunFor(sim.Hour)
		if rec == nil {
			t.Fatal("job never ran")
		}
		return rec.Matched.Sub(rec.Submitted).Seconds()
	}
	slow := latency(5 * sim.Minute)
	fast := latency(5 * sim.Second)
	if slow < 10*fast {
		t.Fatalf("cycle length should dominate match latency: slow=%.1fs fast=%.1fs", slow, fast)
	}
}
