// Package condor models the Condor high-throughput system the paper's
// introduction singles out as the canonical WOW payload: "a base WOW VM
// image can be installed with Condor binaries and be quickly replicated
// across multiple sites to host a homogeneously configured distributed
// Condor pool" (§I).
//
// Unlike the push-model PBS scheduler (internal/middleware/pbs), Condor is
// matchmaking-based: startd daemons on every machine advertise ClassAds to
// a central manager over UDP; a schedd holds the job queue; and the
// negotiator periodically matches idle jobs against unclaimed machines by
// requirements and rank. All traffic rides the WOW virtual network.
package condor

import (
	"fmt"
	"sort"

	"wow/internal/metrics"
	"wow/internal/middleware/rpc"
	"wow/internal/sim"
	"wow/internal/vip"
)

// Ports: the central manager's collector/negotiator and per-machine
// startds.
const (
	CollectorPort = 9618
	StartdPort    = 9619
)

// Machine is the compute node a startd drives; internal/vm.VM satisfies
// it (same contract as pbs.Machine).
type Machine interface {
	Name() string
	Stack() *vip.Stack
	Execute(cpu sim.Duration, done func())
}

// MachineAd is a startd's ClassAd: what the machine offers.
type MachineAd struct {
	Name string
	IP   vip.IP
	// Speed is the advertised relative CPU speed.
	Speed float64
	// State is "unclaimed" or "claimed".
	State string
}

// JobAd describes one queued job: what it requires and how it ranks
// machines.
type JobAd struct {
	ID int
	// CPU is baseline CPU time.
	CPU sim.Duration
	// MinSpeed is the job's Requirements expression: only machines at
	// least this fast match.
	MinSpeed float64
}

// JobRecord tracks a job through the pool.
type JobRecord struct {
	Ad        JobAd
	Submitted sim.Time
	Matched   sim.Time
	Finished  sim.Time
	Machine   string
	OK        bool
}

// wire messages.
type adUpdate struct{ Ad MachineAd }
type claimReq struct{ Job JobAd }
type claimRsp struct{ OK bool }

// CentralManager is the collector + negotiator.
type CentralManager struct {
	stack *vip.Stack
	sim   *sim.Simulator
	// AdTTL expires machine ads not refreshed (crashed startds).
	AdTTL sim.Duration

	machines map[string]*machineEntry
	schedd   *Schedd
	ticker   *sim.Ticker

	// Stats counts negotiation events.
	Stats metrics.Counter
}

type machineEntry struct {
	ad      MachineAd
	updated sim.Time
	claimed bool
}

// NewCentralManager starts the collector on the stack and begins
// negotiation cycles at the given interval (Condor's default is measured
// in minutes; short intervals trade matchmaking latency for overhead).
func NewCentralManager(stack *vip.Stack, cycle sim.Duration) (*CentralManager, error) {
	if cycle == 0 {
		cycle = 60 * sim.Second
	}
	cm := &CentralManager{
		stack:    stack,
		sim:      stack.Sim(),
		AdTTL:    5 * sim.Minute,
		machines: make(map[string]*machineEntry),
	}
	// Startd ads arrive as UDP datagrams, exactly like Condor's
	// collector updates.
	if err := stack.ListenUDP(CollectorPort, func(src vip.IP, srcPort uint16, size int, msg any) {
		up, ok := msg.(adUpdate)
		if !ok {
			return
		}
		cm.Stats.Inc("ads.received", 1)
		e, exists := cm.machines[up.Ad.Name]
		if !exists {
			e = &machineEntry{}
			cm.machines[up.Ad.Name] = e
		}
		claimed := up.Ad.State == "claimed"
		e.ad = up.Ad
		e.updated = cm.sim.Now()
		e.claimed = claimed
	}); err != nil {
		return nil, fmt.Errorf("condor: %w", err)
	}
	cm.ticker = cm.sim.Tick(cycle, cycle/10, cm.negotiate)
	return cm, nil
}

// Machines reports live (unexpired) machine ads.
func (cm *CentralManager) Machines() []MachineAd {
	now := cm.sim.Now()
	var out []MachineAd
	for _, e := range cm.machines {
		if now.Sub(e.updated) <= cm.AdTTL {
			out = append(out, e.ad)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// AttachSchedd registers the pool's job queue with the negotiator. (One
// schedd, as in the paper's single-submit-node deployments.)
func (cm *CentralManager) AttachSchedd(s *Schedd) { cm.schedd = s }

// negotiate is one negotiation cycle: match idle jobs to unclaimed
// machines, best (fastest) machine first.
func (cm *CentralManager) negotiate() {
	if cm.schedd == nil {
		return
	}
	cm.Stats.Inc("cycles", 1)
	now := cm.sim.Now()
	var avail []*machineEntry
	for _, e := range cm.machines {
		if !e.claimed && now.Sub(e.updated) <= cm.AdTTL {
			avail = append(avail, e)
		}
	}
	// Rank: fastest machines first (the standard Rank = KFlops idiom).
	sort.Slice(avail, func(i, j int) bool { return avail[i].ad.Speed > avail[j].ad.Speed })

	for _, job := range cm.schedd.idleJobs() {
		var pick *machineEntry
		for _, e := range avail {
			if e.claimed || e.ad.Speed < job.Ad.MinSpeed {
				continue
			}
			pick = e
			break
		}
		if pick == nil {
			cm.Stats.Inc("unmatched", 1)
			continue
		}
		pick.claimed = true // claimed until the next ad refresh says otherwise
		cm.Stats.Inc("matches", 1)
		cm.schedd.activate(job, pick.ad)
	}
}

// Schedd holds the job queue and activates matched claims.
type Schedd struct {
	stack   *vip.Stack
	sim     *sim.Simulator
	records []*JobRecord
	idle    []*JobRecord
	done    int
	onDone  func(*JobRecord)
	startds map[string]*rpc.Client

	// Stats counts queue events.
	Stats metrics.Counter
}

// NewSchedd creates the job queue on a submit node's stack.
func NewSchedd(stack *vip.Stack) *Schedd {
	return &Schedd{stack: stack, sim: stack.Sim(), startds: make(map[string]*rpc.Client)}
}

// Submit queues one job (condor_submit).
func (s *Schedd) Submit(ad JobAd) *JobRecord {
	rec := &JobRecord{Ad: ad, Submitted: s.sim.Now()}
	s.records = append(s.records, rec)
	s.idle = append(s.idle, rec)
	s.Stats.Inc("jobs.submitted", 1)
	return rec
}

// OnJobDone registers a completion callback.
func (s *Schedd) OnJobDone(f func(*JobRecord)) { s.onDone = f }

// Records returns all job records.
func (s *Schedd) Records() []*JobRecord { return s.records }

// Completed reports finished jobs.
func (s *Schedd) Completed() int { return s.done }

// IdleJobs reports jobs awaiting a match.
func (s *Schedd) IdleJobs() int { return len(s.idle) }

func (s *Schedd) idleJobs() []*JobRecord { return append([]*JobRecord(nil), s.idle...) }

// activate sends a matched job to the machine's startd (claim +
// activation collapsed into one RPC).
func (s *Schedd) activate(rec *JobRecord, ad MachineAd) {
	// Remove from the idle queue.
	for i, r := range s.idle {
		if r == rec {
			s.idle = append(s.idle[:i], s.idle[i+1:]...)
			break
		}
	}
	rec.Matched = s.sim.Now()
	rec.Machine = ad.Name
	cli, ok := s.startds[ad.Name]
	if !ok {
		cli = rpc.Dial(s.stack, ad.IP, StartdPort)
		s.startds[ad.Name] = cli
	}
	s.Stats.Inc("jobs.activated", 1)
	cli.Call(claimReq{Job: rec.Ad}, 4096, func(resp any) {
		rsp, ok := resp.(claimRsp)
		rec.Finished = s.sim.Now()
		rec.OK = ok && rsp.OK
		s.done++
		if !rec.OK {
			s.Stats.Inc("jobs.failed", 1)
		}
		if s.onDone != nil {
			s.onDone(rec)
		}
	})
}

// Startd advertises a machine and executes claims.
type Startd struct {
	machine Machine
	speed   float64
	cm      vip.IP
	busy    bool

	// Stats counts startd events.
	Stats metrics.Counter
}

// NewStartd runs a startd on the machine, advertising the given relative
// speed to the central manager every adInterval.
func NewStartd(machine Machine, speed float64, cm vip.IP, adInterval sim.Duration) (*Startd, error) {
	if adInterval == 0 {
		adInterval = 60 * sim.Second
	}
	sd := &Startd{machine: machine, speed: speed, cm: cm}
	_, err := rpc.Serve(machine.Stack(), StartdPort, func(client vip.IP, body any, reply func(any, int)) {
		req, ok := body.(claimReq)
		if !ok {
			reply(nil, 16)
			return
		}
		sd.busy = true
		sd.Stats.Inc("claims", 1)
		sd.advertise() // propagate the claimed state promptly
		machine.Execute(req.Job.CPU, func() {
			sd.busy = false
			sd.Stats.Inc("jobs.done", 1)
			reply(claimRsp{OK: true}, 1024)
			sd.advertise()
		})
	})
	if err != nil {
		return nil, fmt.Errorf("condor startd: %w", err)
	}
	sd.advertise()
	machine.Stack().Sim().Tick(adInterval, adInterval/10, sd.advertise)
	return sd, nil
}

// advertise pushes the machine's current ClassAd to the collector (UDP,
// fire and forget — lost ads are refreshed next interval, as in Condor).
func (sd *Startd) advertise() {
	state := "unclaimed"
	if sd.busy {
		state = "claimed"
	}
	ad := MachineAd{
		Name:  sd.machine.Name(),
		IP:    sd.machine.Stack().IP(),
		Speed: sd.speed,
		State: state,
	}
	sd.Stats.Inc("ads.sent", 1)
	sd.machine.Stack().SendUDP(sd.cm, StartdPort, CollectorPort, 1024, adUpdate{Ad: ad})
}
