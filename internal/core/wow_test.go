package core

import (
	"fmt"
	"testing"

	"wow/internal/brunet"
	"wow/internal/phys"
	"wow/internal/sim"
	"wow/internal/vip"
	"wow/internal/vm"
)

func newNet(seed int64) (*sim.Simulator, *phys.Network) {
	s := sim.New(seed)
	net := phys.NewNetwork(s, phys.UniformLatency(
		phys.PathModel{OneWay: 500 * sim.Microsecond},
		phys.PathModel{OneWay: 15 * sim.Millisecond},
	))
	return s, net
}

func build(t *testing.T, seed int64, routers, stations int, shortcuts bool) (*WOW, *sim.Simulator, *phys.Network) {
	t.Helper()
	s, net := newNet(seed)
	w := New(s, Options{Shortcuts: shortcuts, Brunet: brunet.FastTestConfig()})
	for i := 0; i < routers; i++ {
		h := net.AddHost(fmt.Sprintf("r%d", i), net.AddSite(fmt.Sprintf("rs%d", i)), net.Root(), phys.HostConfig{})
		if _, err := w.AddRouter(h, fmt.Sprintf("r%d", i)); err != nil {
			t.Fatal(err)
		}
		s.RunFor(2 * sim.Second)
	}
	for i := 0; i < stations; i++ {
		h := net.AddHost(fmt.Sprintf("ws%d", i), net.AddSite(fmt.Sprintf("wss%d", i)), net.Root(), phys.HostConfig{})
		ip := vip.MustParseIP(fmt.Sprintf("172.16.1.%d", i+2))
		if _, err := w.AddWorkstation(h, ip, vm.Spec{Name: fmt.Sprintf("ws%d", i)}); err != nil {
			t.Fatal(err)
		}
		s.RunFor(2 * sim.Second)
	}
	s.RunFor(2 * sim.Minute)
	return w, s, net
}

func TestWorkstationBeforeRouterRejected(t *testing.T) {
	s, net := newNet(1)
	w := New(s, Options{})
	h := net.AddHost("h", net.AddSite("s"), net.Root(), phys.HostConfig{})
	if _, err := w.AddWorkstation(h, vip.MustParseIP("172.16.1.2"), vm.Spec{Name: "x"}); err == nil {
		t.Fatal("workstation accepted with no bootstrap overlay")
	}
}

func TestDuplicateVIPRejected(t *testing.T) {
	w, s, net := build(t, 2, 2, 1, true)
	h := net.AddHost("dup", net.AddSite("dup"), net.Root(), phys.HostConfig{})
	if _, err := w.AddWorkstation(h, w.Workstations()[0].IP(), vm.Spec{Name: "dup"}); err == nil {
		t.Fatal("duplicate virtual IP accepted")
	}
	_ = s
}

func TestSelfOrganizingCluster(t *testing.T) {
	w, s, _ := build(t, 3, 8, 4, true)
	if w.RoutableWorkstations() != 4 {
		t.Fatalf("routable = %d of 4", w.RoutableWorkstations())
	}
	if w.OverlaySize() != 12 {
		t.Fatalf("overlay size = %d", w.OverlaySize())
	}
	a := w.Workstations()[0]
	b := w.Workstations()[3]
	ok := false
	a.Stack().Ping(b.IP(), 64, 10*sim.Second, func(o bool, _ sim.Duration) { ok = o })
	s.RunFor(15 * sim.Second)
	if !ok {
		t.Fatal("virtual ping between workstations failed")
	}
	if v, found := w.Lookup(b.IP()); !found || v != b {
		t.Fatal("Lookup")
	}
	if len(w.Bootstrap()) == 0 || len(w.Routers()) != 8 {
		t.Fatal("bootstrap/routers accessors")
	}
}

func TestRemoveWorkstation(t *testing.T) {
	w, s, _ := build(t, 4, 6, 2, true)
	v := w.Workstations()[1]
	ip := v.IP()
	w.Remove(v)
	if _, found := w.Lookup(ip); found {
		t.Fatal("removed workstation still registered")
	}
	if len(w.Workstations()) != 1 {
		t.Fatal("workstation list not trimmed")
	}
	s.RunFor(sim.Minute)
	if w.RoutableWorkstations() != 1 {
		t.Fatal("routable count after removal")
	}
}

func TestMigrateViaFacade(t *testing.T) {
	w, s, net := build(t, 5, 8, 2, true)
	v := w.Workstations()[0]
	dst := net.AddHost("dst", net.AddSite("dst"), net.Root(), phys.HostConfig{})
	migrated := false
	if err := w.Migrate(v, dst, vm.MigrationConfig{TransferBps: 64 << 20}, func() { migrated = true }); err != nil {
		t.Fatal(err)
	}
	s.RunFor(5 * sim.Minute)
	if !migrated || v.Host() != dst {
		t.Fatal("facade migration failed")
	}
	if !v.Node().Overlay().IsRoutable() {
		t.Fatal("migrated workstation not routable")
	}
}
