// Package core is the public face of the WOW library: it assembles wide
// area overlay networks of virtual workstations from the building blocks
// underneath — the Brunet structured overlay (internal/brunet), IP-over-
// P2P tunnelling with decentralized shortcut creation (internal/ipop), the
// guest virtual IP stack (internal/vip) and virtual workstations with
// wide-area migration (internal/vm).
//
// A WOW is built on any simulated physical topology: add router nodes on
// public hosts to form the bootstrap overlay, then add workstations on
// hosts anywhere — behind NATs, firewalls, nested NATs — and they
// self-organize into one virtual private cluster network, exactly the
// deployment model of the paper: "WOW allows participants to add
// resources in a fully decentralized manner that imposes very little
// administrative overhead."
package core

import (
	"fmt"

	"wow/internal/brunet"
	"wow/internal/ipop"
	"wow/internal/phys"
	"wow/internal/sim"
	"wow/internal/vip"
	"wow/internal/vm"
)

// Options configures a WOW deployment.
type Options struct {
	// Shortcuts enables decentralized direct-connection creation on
	// workstation nodes (§IV-E). The paper's baseline comparisons turn
	// it off.
	Shortcuts bool
	// Brunet sets overlay protocol constants; zero fields take the
	// paper-faithful defaults.
	Brunet brunet.Config
	// Stack sets guest transport constants.
	Stack vip.StackConfig
	// BootstrapSize is how many router URIs each joining node is given;
	// default 3.
	BootstrapSize int
}

// WOW is one wide-area overlay network of virtual workstations.
type WOW struct {
	opts    Options
	sim     *sim.Simulator
	routers []*ipop.Node
	vms     []*vm.VM
	byIP    map[vip.IP]*vm.VM
	boot    []brunet.URI
}

// New creates an empty WOW on the given simulator.
func New(s *sim.Simulator, opts Options) *WOW {
	if opts.BootstrapSize == 0 {
		opts.BootstrapSize = 3
	}
	if !opts.Shortcuts {
		opts.Brunet.Shortcut = nil
	} else if opts.Brunet.Shortcut == nil {
		opts.Brunet.Shortcut = brunet.DefaultShortcutConfig()
	}
	return &WOW{opts: opts, sim: s, byIP: make(map[vip.IP]*vm.VM)}
}

// Sim returns the simulation clock.
func (w *WOW) Sim() *sim.Simulator { return w.sim }

// Bootstrap returns the URIs a new node is configured with — "the
// location of at least one IPOP node on the public Internet" (§III-B).
func (w *WOW) Bootstrap() []brunet.URI { return w.boot }

// AddRouter starts an overlay router (no virtual IP) on a public host.
// The first router founds the ring; the paper deployed 118 of these on
// PlanetLab.
func (w *WOW) AddRouter(host *phys.Host, name string) (*ipop.Node, error) {
	cfg := w.opts.Brunet
	cfg.Shortcut = nil
	r := ipop.NewRouter(host, brunet.AddrFromString("wow-router:"+name), cfg)
	if err := r.Start(w.boot); err != nil {
		return nil, fmt.Errorf("core: router %s: %w", name, err)
	}
	if len(w.boot) < w.opts.BootstrapSize {
		w.boot = append(w.boot, ipop.BootURIs(r)...)
	}
	w.routers = append(w.routers, r)
	return r, nil
}

// AddWorkstation boots a virtual workstation with the given virtual IP on
// a host (which may sit behind any middlebox chain) and joins it to the
// overlay.
func (w *WOW) AddWorkstation(host *phys.Host, ip vip.IP, spec vm.Spec) (*vm.VM, error) {
	return w.AddWorkstationCfg(host, ip, spec, w.opts.Brunet)
}

// AddWorkstationCfg is AddWorkstation with per-node overlay constants —
// e.g. pinning the UDP port for a site whose firewall opens exactly one
// (the paper's ncgrid.org domain).
func (w *WOW) AddWorkstationCfg(host *phys.Host, ip vip.IP, spec vm.Spec, bcfg brunet.Config) (*vm.VM, error) {
	if _, taken := w.byIP[ip]; taken {
		return nil, fmt.Errorf("core: virtual IP %s already in use", ip)
	}
	if len(w.boot) == 0 {
		return nil, fmt.Errorf("core: no routers yet; add at least one AddRouter first")
	}
	if !w.opts.Shortcuts {
		bcfg.Shortcut = nil
	} else if bcfg.Shortcut == nil {
		bcfg.Shortcut = w.opts.Brunet.Shortcut
	}
	v := vm.New(host, ip, spec, bcfg, w.opts.Stack)
	if err := v.Start(w.boot); err != nil {
		return nil, fmt.Errorf("core: workstation %s: %w", spec.Name, err)
	}
	w.vms = append(w.vms, v)
	w.byIP[ip] = v
	return v, nil
}

// Remove shuts a workstation down and forgets it.
func (w *WOW) Remove(v *vm.VM) {
	v.Shutdown()
	delete(w.byIP, v.IP())
	for i, x := range w.vms {
		if x == v {
			w.vms = append(w.vms[:i], w.vms[i+1:]...)
			break
		}
	}
}

// Migrate moves a workstation to another physical host, §V-C style:
// IPOP killed, VM suspended and transferred, resumed, IPOP rejoined.
func (w *WOW) Migrate(v *vm.VM, dst *phys.Host, cfg vm.MigrationConfig, done func()) error {
	return v.Migrate(dst, cfg, done)
}

// Workstations returns all live workstations.
func (w *WOW) Workstations() []*vm.VM { return w.vms }

// Routers returns all overlay routers.
func (w *WOW) Routers() []*ipop.Node { return w.routers }

// Lookup finds a workstation by virtual IP.
func (w *WOW) Lookup(ip vip.IP) (*vm.VM, bool) {
	v, ok := w.byIP[ip]
	return v, ok
}

// RoutableWorkstations counts workstations whose overlay node holds ring
// positions.
func (w *WOW) RoutableWorkstations() int {
	n := 0
	for _, v := range w.vms {
		if v.Node().Up() && v.Node().Overlay().IsRoutable() {
			n++
		}
	}
	return n
}

// OverlaySize returns the total number of overlay nodes (routers + live
// workstation nodes).
func (w *WOW) OverlaySize() int {
	n := len(w.routers)
	for _, v := range w.vms {
		if v.Node().Up() {
			n++
		}
	}
	return n
}
