// Package testbed reconstructs the paper's experimental deployment
// (Figure 1, Table I): 33 compute VMs across six firewalled domains — 15
// at UFL behind a no-hairpin campus NAT, 13 at Northwestern behind a
// firewall, 2 at LSU, 1 each at ncgrid (firewall with a single open UDP
// port), VIMS, and a home network behind three nested NATs — plus 118
// Brunet router nodes on 20 heavily loaded PlanetLab hosts that form the
// public bootstrap overlay.
//
// Path latencies, host service rates and NAT semantics are calibrated to
// the paper's own measurements: ~38 ms direct UFL-NWU RTT, ~146 ms
// multi-hop RTT through loaded PlanetLab routers, ~1.6 MB/s user-level
// tunnel processing ceiling, and the hairpin behaviours that produce the
// three join regimes of Figure 5.
package testbed

import (
	"fmt"
	"hash/fnv"

	"wow/internal/brunet"
	"wow/internal/core"
	"wow/internal/ipop"
	"wow/internal/natsim"
	"wow/internal/phys"
	"wow/internal/sim"
	"wow/internal/vip"
	"wow/internal/vm"
)

// NodeDef is one Table I row.
type NodeDef struct {
	Name string
	// VIP is the last octet of the 172.16.1.x virtual address.
	VIP int
	// Site is the physical domain.
	Site string
	// Speed is the host CPU speed relative to node002's 2.4 GHz Xeon.
	Speed float64
}

// TableI lists the 33 compute nodes exactly as the paper's Table I does.
// Speeds follow the hardware column: 2.4 GHz Xeon = 1.0 (node002-016),
// 2.0 GHz Xeon = 0.83 (node017-029, NWU), 3.2 GHz Xeon = 1.33
// (node030-031 LSU, node033 VIMS), 1.3 GHz Pentium III = 0.45 (node032,
// ncgrid), 1.7 GHz Pentium 4 = 0.49 (node034, home; the ratio of the
// paper's sequential fastDNAml runs, 22272s/45191s).
func TableI() []NodeDef {
	var defs []NodeDef
	add := func(name string, vipOctet int, site string, speed float64) {
		defs = append(defs, NodeDef{Name: name, VIP: vipOctet, Site: site, Speed: speed})
	}
	add("node002", 2, "ufl.edu", 1.0)
	for i := 3; i <= 16; i++ {
		add(fmt.Sprintf("node%03d", i), i, "ufl.edu", 1.0)
	}
	for i := 17; i <= 29; i++ {
		add(fmt.Sprintf("node%03d", i), i, "northwestern.edu", 0.83)
	}
	add("node030", 30, "lsu.edu", 1.33)
	add("node031", 31, "lsu.edu", 1.33)
	add("node032", 32, "ncgrid.org", 0.45)
	add("node033", 33, "vims.edu", 1.33)
	add("node034", 34, "gru.net", 0.49)
	return defs
}

// ComputeSites lists the six compute domains.
var ComputeSites = []string{"ufl.edu", "northwestern.edu", "lsu.edu", "ncgrid.org", "vims.edu", "gru.net"}

// Config parameterizes testbed construction.
type Config struct {
	Seed int64
	// Shortcuts enables the ShortcutConnectionOverlord on compute nodes
	// (the paper's headline comparison toggles this).
	Shortcuts bool
	// PlanetLabHosts and Routers size the bootstrap overlay; the paper
	// used 118 routers on 20 hosts.
	PlanetLabHosts int
	Routers        int
	// Brunet overrides the protocol constants; zero-value fields take
	// paper defaults.
	Brunet brunet.Config
	// Stack overrides virtual transport constants.
	Stack vip.StackConfig
	// SettleTime is how long to run after construction before the
	// testbed is handed over; covers router ring convergence and VM
	// joins. Zero means 10 virtual minutes.
	SettleTime sim.Duration
	// SkipVMs builds only the router overlay (used by join-latency
	// experiments that add VMs themselves).
	SkipVMs bool
}

func (c *Config) fillDefaults() {
	if c.PlanetLabHosts == 0 {
		c.PlanetLabHosts = 20
	}
	if c.Routers == 0 {
		c.Routers = 118
	}
	if c.SettleTime == 0 {
		c.SettleTime = 10 * sim.Minute
	}
}

// Testbed is the assembled deployment: a core.WOW on the Figure 1
// topology.
type Testbed struct {
	Cfg Config
	Sim *sim.Simulator
	Net *phys.Network
	// WOW is the overlay network of virtual workstations.
	WOW *core.WOW
	VMs []*vm.VM

	sites    map[string]*phys.Site
	vmRealms map[string]*phys.Realm
	byName   map[string]*vm.VM
	plHosts  []*phys.Host
	nextVIP  int
}

// latency returns the one-way delay between two sites: 0.3 ms inside a
// site, 19 ms between UFL and NWU (the paper's ~38 ms direct RTT), and a
// deterministic pseudo-random 10-35 ms otherwise.
func latency(a, b *phys.Site) phys.PathModel {
	if a == b {
		return phys.PathModel{OneWay: 300 * sim.Microsecond, Jitter: 50 * sim.Microsecond}
	}
	x, y := a.Name, b.Name
	if x > y {
		x, y = y, x
	}
	if x == "northwestern.edu" && y == "ufl.edu" {
		return phys.PathModel{OneWay: 19 * sim.Millisecond, Jitter: sim.Millisecond, Loss: 0.0005}
	}
	h := fnv.New32a()
	h.Write([]byte(x))
	h.Write([]byte{0})
	h.Write([]byte(y))
	ms := 10 + h.Sum32()%26 // 10..35 ms
	return phys.PathModel{
		OneWay: sim.Duration(ms) * sim.Millisecond,
		Jitter: sim.Millisecond,
		Loss:   0.001,
	}
}

// computeHostCfg models a compute VM host: the ~1.6 MB/s user-level
// tunnel-processing ceiling the paper attributes to user/kernel copies
// (§VI), split between send serialization and receive CPU.
func computeHostCfg() phys.HostConfig {
	return phys.HostConfig{
		ServiceTime: 400 * sim.Microsecond,
		Bandwidth:   1.7e6,
		QueueLimit:  250 * sim.Millisecond,
	}
}

// Build constructs the testbed and runs the simulator until the overlay
// has settled.
func Build(cfg Config) *Testbed {
	cfg.fillDefaults()
	s := sim.New(cfg.Seed)
	net := phys.NewNetwork(s, latency)
	tb := &Testbed{
		Cfg:      cfg,
		Sim:      s,
		Net:      net,
		sites:    make(map[string]*phys.Site),
		vmRealms: make(map[string]*phys.Realm),
		byName:   make(map[string]*vm.VM),
		nextVIP:  35,
	}
	tb.WOW = core.New(s, core.Options{
		Shortcuts: cfg.Shortcuts,
		Brunet:    cfg.Brunet,
		Stack:     cfg.Stack,
	})

	tb.buildPlanetLab()
	tb.buildComputeDomains()
	if !cfg.SkipVMs {
		for _, def := range TableI() {
			tb.addVM(def)
			s.RunFor(3 * sim.Second)
		}
	}
	s.RunFor(cfg.SettleTime)
	return tb
}

// buildPlanetLab stands up the 118-router bootstrap overlay on 20 loaded
// public hosts spread over wide-area sites.
func (tb *Testbed) buildPlanetLab() {
	cfg := tb.Cfg
	rng := tb.Sim.Rand()
	for h := 0; h < cfg.PlanetLabHosts; h++ {
		site := tb.site(fmt.Sprintf("planetlab%02d", h))
		// Heavily and unevenly loaded: §IV-E's "highly loaded
		// PlanetLab nodes" with 1600 ms worst-case latencies.
		load := 4 + rng.Float64()*8
		host := tb.Net.AddHost(fmt.Sprintf("pl%02d", h), site, tb.Net.Root(), phys.HostConfig{
			ServiceTime: 1500 * sim.Microsecond,
			LoadFactor:  load,
			Bandwidth:   5e6,
			QueueLimit:  400 * sim.Millisecond,
		})
		tb.plHosts = append(tb.plHosts, host)
	}
	for i := 0; i < cfg.Routers; i++ {
		host := tb.plHosts[i%len(tb.plHosts)]
		if _, err := tb.WOW.AddRouter(host, fmt.Sprintf("plab-%03d", i)); err != nil {
			panic(fmt.Sprintf("testbed: %v", err))
		}
		tb.Sim.RunFor(sim.Second)
	}
}

// buildComputeDomains creates the six firewalled domains of Figure 1.
func (tb *Testbed) buildComputeDomains() {
	now := tb.Sim.Now
	root := tb.Net.Root()

	// ufl.edu: campus NAT without hairpin support (§V-B), VMware GSX
	// NAT (hairpin) inside.
	uflNAT := natsim.NewNAT("UFNAT", natsim.Config{Type: natsim.PortRestricted, Hairpin: false}, root.NextIP(), now)
	uflLAN := tb.Net.AddRealm("ufl-lan", root, uflNAT, phys.MustParseIP("10.1.0.10"))
	uflVMware := natsim.NewNAT("ufl-vmnat", natsim.Config{Type: natsim.PortRestricted, Hairpin: true}, uflLAN.NextIP(), now)
	tb.vmRealms["ufl.edu"] = tb.Net.AddRealm("ufl-vmnet", uflLAN, uflVMware, phys.MustParseIP("192.168.10.10"))

	// northwestern.edu: stateful firewall, VMware GSX NAT inside.
	fw := func(name string, allow ...uint16) *natsim.Firewall { return natsim.NewFirewall(name, 0, now, allow...) }
	nwuLAN := tb.Net.AddRealm("nwu-lan", root, fw("NWFW"), phys.MustParseIP("129.105.10.10"))
	nwuVMware := natsim.NewNAT("nwu-vmnat", natsim.Config{Type: natsim.PortRestricted, Hairpin: true}, nwuLAN.NextIP(), now)
	tb.vmRealms["northwestern.edu"] = tb.Net.AddRealm("nwu-vmnet", nwuLAN, nwuVMware, phys.MustParseIP("192.168.20.10"))

	// lsu.edu and vims.edu: firewalls with VMware NATs.
	lsuLAN := tb.Net.AddRealm("lsu-lan", root, fw("LFW"), phys.MustParseIP("130.39.10.10"))
	lsuVMware := natsim.NewNAT("lsu-vmnat", natsim.Config{Type: natsim.PortRestricted, Hairpin: true}, lsuLAN.NextIP(), now)
	tb.vmRealms["lsu.edu"] = tb.Net.AddRealm("lsu-vmnet", lsuLAN, lsuVMware, phys.MustParseIP("192.168.30.10"))

	vimsLAN := tb.Net.AddRealm("vims-lan", root, fw("VFW"), phys.MustParseIP("139.70.10.10"))
	vimsVMware := natsim.NewNAT("vims-vmnat", natsim.Config{Type: natsim.PortRestricted, Hairpin: true}, vimsLAN.NextIP(), now)
	tb.vmRealms["vims.edu"] = tb.Net.AddRealm("vims-vmnet", vimsLAN, vimsVMware, phys.MustParseIP("192.168.40.10"))

	// ncgrid.org: firewall with a single UDP port opened for IPOP
	// (§V-A), VMPlayer NAT inside.
	ncLAN := tb.Net.AddRealm("nc-lan", root, fw("NCFW", 40000), phys.MustParseIP("152.54.10.10"))
	ncVMware := natsim.NewNAT("nc-vmnat", natsim.Config{Type: natsim.PortRestricted, Hairpin: true}, ncLAN.NextIP(), now)
	tb.vmRealms["ncgrid.org"] = tb.Net.AddRealm("nc-vmnet", ncLAN, ncVMware, phys.MustParseIP("192.168.50.10"))

	// gru.net: home desktop behind ISP NAT, wireless router NAT and
	// VMware NAT — three nested levels.
	ispNAT := natsim.NewNAT("gru-isp", natsim.Config{Type: natsim.PortRestricted, Hairpin: false}, root.NextIP(), now)
	ispRealm := tb.Net.AddRealm("gru-isp", root, ispNAT, phys.MustParseIP("100.64.0.10"))
	wifiNAT := natsim.NewNAT("gru-wifi", natsim.Config{Type: natsim.PortRestricted, Hairpin: false}, ispRealm.NextIP(), now)
	wifiRealm := tb.Net.AddRealm("gru-wifi", ispRealm, wifiNAT, phys.MustParseIP("192.168.1.10"))
	gruVMware := natsim.NewNAT("gru-vmnat", natsim.Config{Type: natsim.PortRestricted, Hairpin: true}, wifiRealm.NextIP(), now)
	tb.vmRealms["gru.net"] = tb.Net.AddRealm("gru-vmnet", wifiRealm, gruVMware, phys.MustParseIP("172.20.0.10"))
}

func (tb *Testbed) site(name string) *phys.Site {
	if s, ok := tb.sites[name]; ok {
		return s
	}
	s := tb.Net.AddSite(name)
	tb.sites[name] = s
	return s
}

// addVM instantiates and boots one Table I node.
func (tb *Testbed) addVM(def NodeDef) *vm.VM {
	host := tb.Net.AddHost(def.Name+"-host", tb.site(def.Site), tb.vmRealms[def.Site], computeHostCfg())
	spec := vm.Spec{Name: def.Name, CPUSpeed: def.Speed}
	bcfg := tb.Cfg.Brunet
	if def.Site == "ncgrid.org" {
		// The ncgrid firewall has exactly one UDP port opened for
		// IPOP traffic (§V-A); the node must bind it.
		bcfg.Port = 40000
	}
	v, err := tb.WOW.AddWorkstationCfg(host, vip.MustParseIP(fmt.Sprintf("172.16.1.%d", def.VIP)), spec, bcfg)
	if err != nil {
		panic(fmt.Sprintf("testbed: vm %s: %v", def.Name, err))
	}
	tb.VMs = append(tb.VMs, v)
	tb.byName[def.Name] = v
	return v
}

// VM returns a compute node by Table I name (e.g. "node002").
func (tb *Testbed) VM(name string) *vm.VM { return tb.byName[name] }

// Head returns node002, the PBS/NFS head node of the paper's experiments.
func (tb *Testbed) Head() *vm.VM { return tb.byName["node002"] }

// NewVM adds an extra compute node at a Table I site with a fresh virtual
// IP; used by the join experiments. speed defaults to 1.
func (tb *Testbed) NewVM(site string, speed float64) *vm.VM {
	if speed == 0 {
		speed = 1
	}
	def := NodeDef{
		Name:  fmt.Sprintf("node%03d", tb.nextVIP),
		VIP:   tb.nextVIP,
		Site:  site,
		Speed: speed,
	}
	tb.nextVIP++
	return tb.addVM(def)
}

// NewHostAt provisions a fresh physical VM host at a compute site —
// migration destinations.
func (tb *Testbed) NewHostAt(siteName string) *phys.Host {
	h := tb.Net.AddHost(
		fmt.Sprintf("%s-extra-%d", siteName, tb.nextVIP),
		tb.site(siteName), tb.vmRealms[siteName], computeHostCfg(),
	)
	tb.nextVIP++
	return h
}

// RoutableVMs counts compute nodes whose overlay node reports ring
// routability.
func (tb *Testbed) RoutableVMs() int { return tb.WOW.RoutableWorkstations() }

// Boot returns the bootstrap URIs handed to joining nodes.
func (tb *Testbed) Boot() []brunet.URI { return tb.WOW.Bootstrap() }

// Routers returns the PlanetLab router nodes.
func (tb *Testbed) Routers() []*ipop.Node { return tb.WOW.Routers() }
