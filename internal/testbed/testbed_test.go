package testbed

import (
	"testing"

	"wow/internal/brunet"
	"wow/internal/sim"
	"wow/internal/vip"
)

// fastCfg shrinks the testbed for unit tests; the benchmarks use the full
// 118-router configuration.
func fastCfg(seed int64, shortcuts bool) Config {
	return Config{
		Seed:           seed,
		Shortcuts:      shortcuts,
		PlanetLabHosts: 6,
		Routers:        24,
		Brunet:         brunet.FastTestConfig(),
		SettleTime:     3 * sim.Minute,
	}
}

func TestTableIShape(t *testing.T) {
	defs := TableI()
	if len(defs) != 33 {
		t.Fatalf("Table I rows = %d, want 33", len(defs))
	}
	bySite := map[string]int{}
	for _, d := range defs {
		bySite[d.Site]++
	}
	want := map[string]int{
		"ufl.edu": 15, "northwestern.edu": 13, "lsu.edu": 2,
		"ncgrid.org": 1, "vims.edu": 1, "gru.net": 1,
	}
	for site, n := range want {
		if bySite[site] != n {
			t.Errorf("%s: %d nodes, want %d", site, bySite[site], n)
		}
	}
	if defs[0].Name != "node002" || defs[0].Speed != 1.0 {
		t.Fatalf("node002 def wrong: %+v", defs[0])
	}
}

func TestBuildRoutersOnly(t *testing.T) {
	cfg := fastCfg(1, true)
	cfg.SkipVMs = true
	tb := Build(cfg)
	if len(tb.Routers()) != 24 || len(tb.VMs) != 0 {
		t.Fatalf("routers=%d vms=%d", len(tb.Routers()), len(tb.VMs))
	}
	routable := 0
	for _, r := range tb.Routers() {
		if r.Overlay().IsRoutable() {
			routable++
		}
	}
	if routable < 23 {
		t.Fatalf("only %d/24 routers routable", routable)
	}
}

func TestBuildFullTestbedAllRoutable(t *testing.T) {
	tb := Build(fastCfg(2, true))
	if len(tb.VMs) != 33 {
		t.Fatalf("VMs = %d", len(tb.VMs))
	}
	if got := tb.RoutableVMs(); got != 33 {
		for _, v := range tb.VMs {
			if !v.Node().Overlay().IsRoutable() {
				t.Logf("not routable: %s (conns=%d)", v.Name(), len(v.Node().Overlay().Connections()))
			}
		}
		t.Fatalf("routable VMs = %d of 33", got)
	}
	if tb.Head() == nil || tb.Head().Name() != "node002" {
		t.Fatal("head lookup")
	}
	if tb.VM("node034") == nil {
		t.Fatal("node034 missing")
	}
}

func TestCrossDomainPing(t *testing.T) {
	tb := Build(fastCfg(3, true))
	cases := []struct{ from, to string }{
		{"node003", "node017"}, // UFL -> NWU
		{"node003", "node004"}, // UFL -> UFL
		{"node017", "node018"}, // NWU -> NWU
		{"node030", "node032"}, // LSU -> ncgrid (single open port)
		{"node033", "node034"}, // VIMS -> home triple NAT
	}
	for _, c := range cases {
		from, to := tb.VM(c.from), tb.VM(c.to)
		ok := false
		got := false
		from.Stack().Ping(to.IP(), 64, 20*sim.Second, func(o bool, _ sim.Duration) { ok, got = o, true })
		tb.Sim.RunFor(25 * sim.Second)
		if !got || !ok {
			t.Errorf("ping %s -> %s failed", c.from, c.to)
		}
	}
}

func TestShortcutsToggle(t *testing.T) {
	tbOff := Build(fastCfg(4, false))
	for _, v := range tbOff.VMs[:3] {
		if v.Node().Overlay().Config().Shortcut != nil {
			t.Fatal("shortcuts enabled despite Shortcuts=false")
		}
	}
	tbOn := Build(fastCfg(4, true))
	if tbOn.VMs[0].Node().Overlay().Config().Shortcut == nil {
		t.Fatal("shortcuts disabled despite Shortcuts=true")
	}
}

func TestUFLNWUDirectRTTCalibration(t *testing.T) {
	tb := Build(fastCfg(5, true))
	a, b := tb.VM("node003"), tb.VM("node017")
	// Drive traffic until a shortcut forms, then measure.
	var rtts []sim.Duration
	tk := tb.Sim.Tick(sim.Second, 0, func() {
		a.Stack().Ping(b.IP(), 64, 5*sim.Second, func(ok bool, d sim.Duration) {
			if ok {
				rtts = append(rtts, d)
			}
		})
	})
	defer tk.Stop()
	tb.Sim.RunFor(5 * sim.Minute)
	if len(rtts) < 50 {
		t.Fatalf("too few replies: %d", len(rtts))
	}
	last := rtts[len(rtts)-1]
	// Paper: ~38 ms direct UFL-NWU RTT.
	if last < 30*sim.Millisecond || last > 55*sim.Millisecond {
		t.Fatalf("direct UFL-NWU RTT = %v, want ~38-45ms", last)
	}
	c := a.Node().Overlay().ConnectionTo(b.Node().Addr())
	if c == nil || !c.Has(brunet.Shortcut) {
		t.Fatalf("no shortcut formed: %v", c)
	}
}

func TestNewVMAndHostHelpers(t *testing.T) {
	tb := Build(fastCfg(6, true))
	v := tb.NewVM("northwestern.edu", 0)
	tb.Sim.RunFor(2 * sim.Minute)
	if !v.Node().Overlay().IsRoutable() {
		t.Fatal("extra VM never joined")
	}
	if v.Spec().CPUSpeed != 1 {
		t.Fatal("speed default")
	}
	h := tb.NewHostAt("northwestern.edu")
	if h == nil || h.Realm() != tb.vmRealms["northwestern.edu"] {
		t.Fatal("NewHostAt realm")
	}
	if v.IP() == 0 || v.IP() == tb.VMs[0].IP() {
		t.Fatal("VIP allocation")
	}
	_ = vip.IP(0)
}
