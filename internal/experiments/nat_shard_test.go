package experiments

import (
	"reflect"
	"strings"
	"testing"
)

// symRingShardedResult runs a small parallel all-symmetric ring and strips
// the wall-clock fields that legitimately vary between runs, leaving only
// the simulation-determined outcome for comparison.
func symRingShardedResult(t *testing.T, workers int) *SymRingResult {
	t.Helper()
	res, err := RunSymmetricRing(SymRingOpts{
		Seed:      5,
		Nodes:     60,
		Routers:   6,
		Shards:    4,
		Workers:   workers,
		BatchJoin: 16,
		Probes:    60,
		Sites:     8,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// outcomeKey reduces a SymRingResult to its deterministic, seed-fixed part:
// everything except wall-clock timings.
func outcomeKey(r *SymRingResult) SymRingResult {
	c := *r
	c.BuildWallSec = 0
	c.Series = nil
	return c
}

// TestSymRingShardedConverges: the batched, sharded all-symmetric build
// must reach the same end state the serial golden-pinned harness proves at
// small scale — everyone routable, a complete ring over tunnel edges — and
// must report its parallel provenance and progress series.
func TestSymRingShardedConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute virtual build")
	}
	res := symRingShardedResult(t, 1)
	if res.RoutableFrac != 1 {
		t.Errorf("routable fraction = %.3f, want 1.0", res.RoutableFrac)
	}
	if res.MissingNear != 0 {
		t.Errorf("missing near links = %d, want 0", res.MissingNear)
	}
	if res.TunnelNear == 0 {
		t.Error("no tunneled near links in an all-symmetric ring")
	}
	if res.ProbesDelivered == 0 {
		t.Errorf("0/%d overlay probes delivered", res.ProbesSent)
	}
	if len(res.Series) == 0 {
		t.Error("no progress series recorded")
	}
	last := res.Series[len(res.Series)-1]
	if last.Joined != 60 || last.RoutableFrac != 1 {
		t.Errorf("final series point %+v, want Joined=60 RoutableFrac=1", last)
	}
	if res.Shards != 4 {
		t.Errorf("result records %d shards, want 4", res.Shards)
	}
	s := res.String()
	if !strings.Contains(s, "parallel: 4 shards") {
		t.Errorf("String() missing parallel provenance:\n%s", s)
	}
	if !strings.Contains(s, "0 missing near links") {
		t.Errorf("String() missing ring audit:\n%s", s)
	}
}

// TestSymRingShardedWorkerInvariance: the outcome is a pure function of
// (seed, shards) — re-running with a different worker count must reproduce
// every simulation-determined field, including the total event count.
func TestSymRingShardedWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute virtual build")
	}
	a := symRingShardedResult(t, 1)
	b := symRingShardedResult(t, 4)
	ka, kb := outcomeKey(a), outcomeKey(b)
	ka.Workers, kb.Workers = 0, 0
	if !reflect.DeepEqual(ka, kb) {
		t.Errorf("worker-variant outcome:\n1 worker:  %+v\n4 workers: %+v", ka, kb)
	}
	if a.EventsTotal != b.EventsTotal {
		t.Errorf("event totals differ: %d vs %d", a.EventsTotal, b.EventsTotal)
	}
	// The virtual-time join trajectory must also match point for point.
	if len(a.Series) != len(b.Series) {
		t.Fatalf("series lengths differ: %d vs %d", len(a.Series), len(b.Series))
	}
	for i := range a.Series {
		pa, pb := a.Series[i], b.Series[i]
		pa.WallSec, pb.WallSec = 0, 0
		pa.JoinsPerSec, pb.JoinsPerSec = 0, 0
		if pa != pb {
			t.Errorf("series[%d] differs:\n1 worker:  %+v\n4 workers: %+v", i, pa, pb)
		}
	}
}
