package experiments

import (
	"fmt"

	"wow/internal/metrics"
	"wow/internal/middleware/condor"
	"wow/internal/sim"
	"wow/internal/testbed"
	"wow/internal/workloads"
)

// SchedulerComparison contrasts the two middleware stacks the paper's
// introduction proposes deploying inside WOW VMs: the push-model PBS
// batch system it evaluates (§V-D1) and a Condor-style matchmaking pool
// (§I). Both run the same MEME stream on the same 33-node testbed; the
// differences — negotiation-cycle latency vs immediate dispatch —
// surface as throughput and queueing behaviour. ("The choice of different
// middleware implementations running inside WOW can lead to different
// throughput values", §V-D1.)
type SchedulerComparison struct {
	Jobs int
	// PBS metrics.
	PBSJobsPerMinute float64
	PBSMeanSeconds   float64
	// Condor metrics.
	CondorJobsPerMinute float64
	CondorMeanSeconds   float64
	// CondorMatchLatency is the mean submit-to-match delay the
	// negotiation cycle introduces.
	CondorMatchLatency float64
}

// String renders the comparison.
func (r *SchedulerComparison) String() string {
	return fmt.Sprintf("Middleware comparison on the 33-node WOW (%d MEME jobs, shortcuts on):\n"+
		"  PBS (push):            %5.1f jobs/min, job wall mean %5.1f s\n"+
		"  Condor (matchmaking):  %5.1f jobs/min, job wall mean %5.1f s, mean match latency %4.1f s\n",
		r.Jobs, r.PBSJobsPerMinute, r.PBSMeanSeconds,
		r.CondorJobsPerMinute, r.CondorMeanSeconds, r.CondorMatchLatency)
}

// RunSchedulerComparison executes the same job stream under both stacks.
func RunSchedulerComparison(seed int64, jobs int) (*SchedulerComparison, error) {
	if jobs == 0 {
		jobs = 400
	}
	res := &SchedulerComparison{Jobs: jobs}

	// PBS leg reuses the Figure 8 harness.
	f8, err := RunFig8(Fig8Opts{Seed: seed, Jobs: jobs, Shortcuts: true})
	if err != nil {
		return nil, fmt.Errorf("schedulers: pbs leg: %w", err)
	}
	res.PBSJobsPerMinute = f8.JobsPerMinute
	res.PBSMeanSeconds = f8.MeanSeconds

	// Condor leg: same testbed, startd on every VM, schedd+collector on
	// the head.
	tb := testbed.Build(testbed.Config{
		Seed: seed, Shortcuts: true, Routers: 118, PlanetLabHosts: 20,
		SettleTime: 5 * sim.Minute,
	})
	head := tb.VM("node002")
	cm, err := condor.NewCentralManager(head.Stack(), 30*sim.Second)
	if err != nil {
		return nil, fmt.Errorf("schedulers: %w", err)
	}
	schedd := condor.NewSchedd(head.Stack())
	cm.AttachSchedd(schedd)
	// Jobs fetch no NFS data under Condor in this comparison; the CPU
	// stream is identical and the I/O difference is noted in
	// EXPERIMENTS.md.
	for _, v := range tb.VMs {
		if _, err := condor.NewStartd(v, v.Spec().CPUSpeed, head.IP(), 60*sim.Second); err != nil {
			return nil, fmt.Errorf("schedulers: startd %s: %w", v.Name(), err)
		}
	}
	tb.Sim.RunFor(2 * sim.Minute)

	meme := workloads.DefaultMEME()
	var walls, lat []float64
	done := 0
	var firstSubmit, lastDone sim.Time
	schedd.OnJobDone(func(rec *condor.JobRecord) {
		done++
		if rec.OK {
			walls = append(walls, rec.Finished.Sub(rec.Matched).Seconds())
			lat = append(lat, rec.Matched.Sub(rec.Submitted).Seconds())
			lastDone = tb.Sim.Now()
		}
	})
	rng := tb.Sim.Rand()
	firstSubmit = tb.Sim.Now()
	for i := 0; i < jobs; i++ {
		i := i
		tb.Sim.At(firstSubmit.Add(sim.Duration(i)*sim.Second), func() {
			spec := meme.Job(i, rng)
			schedd.Submit(condor.JobAd{ID: i, CPU: spec.CPU})
		})
	}
	deadline := tb.Sim.Now().Add(24 * sim.Hour)
	for done < jobs && tb.Sim.Now() < deadline {
		tb.Sim.RunFor(sim.Minute)
	}
	res.CondorMeanSeconds = metrics.Summarize(walls).Mean
	res.CondorMatchLatency = metrics.Summarize(lat).Mean
	if wall := lastDone.Sub(firstSubmit).Seconds(); wall > 0 {
		res.CondorJobsPerMinute = float64(len(walls)) / (wall / 60)
	}
	return res, nil
}
