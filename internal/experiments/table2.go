package experiments

import (
	"fmt"
	"strings"
	"sync"

	"wow/internal/metrics"
	"wow/internal/sim"
	"wow/internal/testbed"
	"wow/internal/workloads"
)

// Table2Opts parameterizes the bandwidth experiment of §V-B (Table II).
type Table2Opts struct {
	Seed int64
	// Sizes are the transferred file sizes; the paper used 695 MB, 50 MB
	// and 8 MB.
	Sizes []int64
	// Repeats per size; the paper ran 12 transfers total per cell.
	Repeats int
	// Routers / PlanetLabHosts size the bootstrap overlay.
	Routers, PlanetLabHosts int
}

func (o *Table2Opts) fillDefaults() {
	if len(o.Sizes) == 0 {
		o.Sizes = []int64{695 << 20, 50 << 20, 8 << 20}
	}
	if o.Repeats == 0 {
		o.Repeats = 4 // 4 × 3 sizes = 12 transfers per cell, as in the paper
	}
	if o.Routers == 0 {
		o.Routers = 118
	}
	if o.PlanetLabHosts == 0 {
		o.PlanetLabHosts = 20
	}
}

// Table2Cell is one Table II entry: mean and standard deviation of ttcp
// bandwidth in KB/s.
type Table2Cell struct {
	Scenario  string
	Shortcuts bool
	MeanKBs   float64
	StdKBs    float64
	Transfers int
}

// Table2Result is the full table.
type Table2Result struct {
	Cells []Table2Cell
}

// Cell looks up one entry.
func (r *Table2Result) Cell(scenario string, shortcuts bool) *Table2Cell {
	for i := range r.Cells {
		if r.Cells[i].Scenario == scenario && r.Cells[i].Shortcuts == shortcuts {
			return &r.Cells[i]
		}
	}
	return nil
}

// String renders the table in the paper's layout.
func (r *Table2Result) String() string {
	var b strings.Builder
	b.WriteString("Table II: ttcp bandwidth between WOW nodes (KB/s)\n")
	fmt.Fprintf(&b, "%-10s %22s %22s\n", "", "shortcuts enabled", "shortcuts disabled")
	fmt.Fprintf(&b, "%-10s %10s %11s %10s %11s\n", "scenario", "mean", "std", "mean", "std")
	for _, sc := range []string{"UFL-UFL", "UFL-NWU"} {
		on := r.Cell(sc, true)
		off := r.Cell(sc, false)
		if on == nil || off == nil {
			continue
		}
		fmt.Fprintf(&b, "%-10s %10.0f %11.0f %10.0f %11.0f\n", sc, on.MeanKBs, on.StdKBs, off.MeanKBs, off.StdKBs)
	}
	return b.String()
}

// table2Pairs maps scenarios to (sender, receiver) Table I nodes.
func table2Pairs() map[string][2]string {
	return map[string][2]string{
		"UFL-UFL": {"node003", "node004"},
		"UFL-NWU": {"node003", "node017"},
	}
}

// RunTable2 reproduces Table II: repeated ttcp bulk transfers between WOW
// node pairs with the shortcut overlord enabled and disabled. The two
// overlay configurations are independent simulations and run on parallel
// goroutines.
func RunTable2(opts Table2Opts) (*Table2Result, error) {
	opts.fillDefaults()
	res := &Table2Result{}
	legs := make([][]Table2Cell, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for li, shortcuts := range []bool{true, false} {
		li, shortcuts := li, shortcuts
		wg.Add(1)
		go func() {
			defer wg.Done()
			legs[li], errs[li] = runTable2Leg(opts, shortcuts)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for _, leg := range legs {
		res.Cells = append(res.Cells, leg...)
	}
	return res, nil
}

// runTable2Leg measures both scenarios under one shortcut setting.
func runTable2Leg(opts Table2Opts, shortcuts bool) ([]Table2Cell, error) {
	var cells []Table2Cell
	{
		tb := testbed.Build(testbed.Config{
			Seed:           opts.Seed,
			Shortcuts:      shortcuts,
			Routers:        opts.Routers,
			PlanetLabHosts: opts.PlanetLabHosts,
			SettleTime:     5 * sim.Minute,
		})
		for scenario, pair := range table2Pairs() {
			src := tb.VM(pair[0])
			dst := tb.VM(pair[1])
			if err := workloads.TTCPServe(dst.Stack()); err != nil {
				return nil, fmt.Errorf("table2: %w", err)
			}
			if shortcuts {
				// Warm the path so measurements reflect the
				// steady state with a formed shortcut, as the
				// paper's post-adaptation numbers do. UFL-UFL
				// needs ~175 s: the linker burns through the
				// hairpin-blocked public URI first (§V-B).
				warm := tb.Sim.Tick(sim.Second, 0, func() {
					src.Stack().Ping(dst.IP(), 64, 2*sim.Second, func(bool, sim.Duration) {})
				})
				tb.Sim.RunFor(5 * sim.Minute)
				warm.Stop()
			}
			var bws []float64
			for _, size := range opts.Sizes {
				for rep := 0; rep < opts.Repeats; rep++ {
					done := false
					workloads.TTCP(src.Stack(), dst.IP(), size, func(r workloads.TTCPResult) {
						if r.Completed {
							bws = append(bws, r.BandwidthKBs())
						}
						done = true
					})
					for !done {
						tb.Sim.RunFor(sim.Minute)
					}
					tb.Sim.RunFor(10 * sim.Second)
				}
			}
			s := metrics.Summarize(bws)
			cells = append(cells, Table2Cell{
				Scenario:  scenario,
				Shortcuts: shortcuts,
				MeanKBs:   s.Mean,
				StdKBs:    s.Std,
				Transfers: s.N,
			})
		}
	}
	return cells, nil
}
