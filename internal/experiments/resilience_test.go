package experiments

import "testing"

func TestNATRebindHealsAutonomously(t *testing.T) {
	r, err := RunNATRebind(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Recovered {
		t.Fatalf("NAT rebind did not heal: %v", r.OutageSeconds)
	}
	for i, s := range r.OutageSeconds {
		if s > 120 {
			t.Errorf("trial %d took %.0fs to heal; want under ~2 ping cycles", i, s)
		}
	}
}

func TestChurnHeals(t *testing.T) {
	r := RunChurn(1, 0.25)
	if !r.Healed {
		t.Fatal("overlay did not heal after 25% router loss")
	}
	if r.RecoverySeconds > 600 {
		t.Errorf("healing took %.0fs", r.RecoverySeconds)
	}
}

func TestLiveMigrationShrinksStall(t *testing.T) {
	r, err := RunLiveMigration(1)
	if err != nil {
		t.Fatal(err)
	}
	if !r.BothCompleted {
		t.Fatal("a transfer failed")
	}
	if r.LiveStallSeconds >= r.SuspendStallSeconds/4 {
		t.Errorf("live migration stall %.0fs not much better than suspend %.0fs",
			r.LiveStallSeconds, r.SuspendStallSeconds)
	}
}
