package experiments

import (
	"fmt"
	"math"
	"strings"

	"wow/internal/natsim"
	"wow/internal/phys"
	"wow/internal/sim"
	"wow/internal/testbed"
	"wow/internal/vm"
)

// NATRebindResult reproduces the §V-E qualitative observation: "the
// overlay network has also been resilient to changes in NAT IP/port
// translations ... IPOP dealt with these translation changes autonomously
// by detecting broken links and re-establishing them."
type NATRebindResult struct {
	// OutageSeconds per trial: from the NAT flushing its translation
	// tables until the node answers virtual pings again.
	OutageSeconds []float64
	// Recovered reports whether every trial healed within the window.
	Recovered bool
}

// String renders the result.
func (r *NATRebindResult) String() string {
	var b strings.Builder
	b.WriteString("§V-E NAT rebinding resilience (home node, translation tables flushed):\n")
	for i, s := range r.OutageSeconds {
		fmt.Fprintf(&b, "  trial %d: connectivity restored after %.0f s\n", i+1, s)
	}
	fmt.Fprintf(&b, "  all trials recovered autonomously: %v (paper: links re-established, no restart)\n", r.Recovered)
	return b.String()
}

// RunNATRebind flushes the home node's outermost NAT (node034's ISP-level
// box) repeatedly and measures how long the overlay takes to detect the
// broken links and re-establish them — with no process restart anywhere.
func RunNATRebind(seed int64, trials int) (*NATRebindResult, error) {
	if trials == 0 {
		trials = 3
	}
	s := sim.New(seed)
	net := phys.NewNetwork(s, phys.UniformLatency(
		phys.PathModel{OneWay: sim.Millisecond},
		phys.PathModel{OneWay: 15 * sim.Millisecond},
	))
	// A small public overlay plus one node behind a rebinding NAT.
	tbLike, err := buildSmallOverlay(s, net, 24)
	if err != nil {
		return nil, fmt.Errorf("natrebind: %w", err)
	}
	nat := natsim.NewNAT("isp", natsim.Config{Type: natsim.PortRestricted}, net.Root().NextIP(), s.Now)
	realm := net.AddRealm("home", net.Root(), nat, phys.MustParseIP("192.168.1.10"))
	host := net.AddHost("home-host", net.AddSite("home"), realm, phys.HostConfig{})
	home := vm.New(host, mustVIP("172.16.1.34"), vm.Spec{Name: "node034", CPUSpeed: 0.49},
		fastBrunet(), stackCfg())
	if err := home.Start(tbLike.boot); err != nil {
		return nil, fmt.Errorf("natrebind: %w", err)
	}
	prober := tbLike.vms[0]
	s.RunFor(2 * sim.Minute)

	res := &NATRebindResult{Recovered: true}
	for trial := 0; trial < trials; trial++ {
		// Confirm connectivity, then flush the NAT.
		if !pingOK(s, prober, home.IP()) {
			res.Recovered = false
			break
		}
		nat.Rebind()
		flushAt := s.Now()
		recovered := math.NaN()
		tk := s.Tick(sim.Second, 0, func() {
			if !math.IsNaN(recovered) {
				return
			}
			prober.Stack().Ping(home.IP(), 64, 900*sim.Millisecond, func(ok bool, _ sim.Duration) {
				if ok && math.IsNaN(recovered) {
					recovered = s.Now().Sub(flushAt).Seconds()
				}
			})
		})
		s.RunFor(10 * sim.Minute)
		tk.Stop()
		if math.IsNaN(recovered) {
			res.Recovered = false
			recovered = 600
		}
		res.OutageSeconds = append(res.OutageSeconds, recovered)
		s.RunFor(sim.Minute)
	}
	return res, nil
}

// ChurnResult measures overlay self-repair under bulk router failure —
// the paper's §V-E stability observation ("several physical nodes have
// been shut down and restarted during this period") taken to a harsher
// extreme.
type ChurnResult struct {
	KilledRouters int
	TotalRouters  int
	// RecoverySeconds is the time until every probe pair pings
	// successfully again.
	RecoverySeconds float64
	// Healed reports full recovery within the window.
	Healed bool
}

// String renders the result.
func (r *ChurnResult) String() string {
	return fmt.Sprintf("Churn: killed %d/%d routers; virtual network healed in %.0f s (healed=%v)\n",
		r.KilledRouters, r.TotalRouters, r.RecoverySeconds, r.Healed)
}

// RunChurn kills a fraction of the PlanetLab routers at once and measures
// how long until all compute-node pairs are mutually reachable again.
func RunChurn(seed int64, fraction float64) *ChurnResult {
	if fraction == 0 {
		fraction = 0.25
	}
	tb := testbed.Build(testbed.Config{
		Seed: seed, Shortcuts: true, Routers: 118, PlanetLabHosts: 20,
		SettleTime: 5 * sim.Minute,
	})
	routers := tb.Routers()
	kill := int(float64(len(routers)) * fraction)
	for i := 0; i < kill; i++ {
		routers[i*len(routers)/kill].Stop()
	}
	killedAt := tb.Sim.Now()

	pairs := [][2]string{
		{"node003", "node017"}, {"node004", "node030"}, {"node005", "node032"},
		{"node018", "node033"}, {"node019", "node034"},
	}
	res := &ChurnResult{KilledRouters: kill, TotalRouters: len(routers)}
	deadline := killedAt.Add(20 * sim.Minute)
	for tb.Sim.Now() < deadline {
		allOK := true
		for _, p := range pairs {
			if !pingOK(tb.Sim, tb.VM(p[0]), tb.VM(p[1]).IP()) {
				allOK = false
				break
			}
		}
		if allOK {
			res.Healed = true
			res.RecoverySeconds = tb.Sim.Now().Sub(killedAt).Seconds()
			return res
		}
		tb.Sim.RunFor(10 * sim.Second)
	}
	res.RecoverySeconds = 20 * 60
	return res
}

// LiveMigrationResult compares suspend-transfer-resume migration against
// iterative pre-copy live migration (§VI: "growing support for
// checkpointing and live migration").
type LiveMigrationResult struct {
	// SuspendStallSeconds is the SCP stall across a suspend-copy
	// migration; LiveStallSeconds across a live pre-copy migration.
	SuspendStallSeconds, LiveStallSeconds float64
	// BothCompleted reports both transfers finished without restarts.
	BothCompleted bool
}

// String renders the comparison.
func (r *LiveMigrationResult) String() string {
	return fmt.Sprintf("Live vs suspend migration under SCP:\n"+
		"  suspend-transfer-resume stall: %6.0f s (the paper's method, Fig. 6)\n"+
		"  iterative pre-copy stall:      %6.0f s\n"+
		"  both transfers completed:       %v\n",
		r.SuspendStallSeconds, r.LiveStallSeconds, r.BothCompleted)
}

// RunLiveMigration runs the Figure 6 scenario twice — once with the
// paper's suspend-copy migration and once with live pre-copy — and
// compares the client-visible stalls.
func RunLiveMigration(seed int64) (*LiveMigrationResult, error) {
	suspend, err := RunFig6(Fig6Opts{Seed: seed, FileBytes: 256 << 20})
	if err != nil {
		return nil, err
	}
	live, err := runFig6Live(Fig6Opts{Seed: seed, FileBytes: 256 << 20})
	if err != nil {
		return nil, err
	}
	return &LiveMigrationResult{
		SuspendStallSeconds: suspend.StallSeconds,
		LiveStallSeconds:    live.StallSeconds,
		BothCompleted:       suspend.Completed && live.Completed,
	}, nil
}
