package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"wow/internal/brunet"
	"wow/internal/phys"
	"wow/internal/sim"
)

// ScaleOpts parameterizes the scale harness: how many routers to stand up,
// how many end-to-end packets to route through the converged overlay, and
// the join pacing. Zero fields take the defaults below.
type ScaleOpts struct {
	Seed int64
	// Nodes is the overlay size; the harness targets the 1,000–5,000
	// range the Brunet ring was designed for (well beyond the paper's
	// 33+118-node testbed).
	Nodes int
	// Packets is how many end-to-end packets the measurement phase routes
	// between random node pairs.
	Packets int
	// Sites spreads hosts round-robin over this many network sites.
	Sites int
	// JoinSpacing staggers node starts.
	JoinSpacing sim.Duration
	// Settle is the convergence time granted after the last join.
	Settle sim.Duration
}

func (o *ScaleOpts) fillDefaults() {
	if o.Nodes == 0 {
		o.Nodes = 2000
	}
	if o.Packets == 0 {
		o.Packets = 2000
	}
	if o.Sites == 0 {
		o.Sites = 32
	}
	if o.JoinSpacing == 0 {
		o.JoinSpacing = 100 * sim.Millisecond
	}
	if o.Settle == 0 {
		o.Settle = 2 * sim.Minute
	}
}

// ScaleOverlay is a converged large overlay ready for routing
// measurements. The physical fabric is zero-latency on purpose: with no
// propagation delay a packet's whole multi-hop route executes within
// RunUntil(Now()) — the clock never advances, no keepalive or gossip timer
// can interleave, and the measurement isolates the CPU cost of the routing
// hot path itself.
type ScaleOverlay struct {
	Sim   *sim.Simulator
	Net   *phys.Network
	Nodes []*brunet.Node
	// Delivered counts end-to-end "scale" payloads received by any node.
	Delivered int
}

// BuildScaleOverlay stands up opts.Nodes bare Brunet routers (no IPOP/VM
// layers — this harness weighs the overlay, not the guests) and lets the
// ring converge. Joins bootstrap off a pool of the 16 earliest nodes so
// leaf-connection load spreads instead of piling onto one founder.
func BuildScaleOverlay(opts ScaleOpts) (*ScaleOverlay, error) {
	opts.fillDefaults()
	s := sim.New(opts.Seed)
	net := phys.NewNetwork(s, phys.UniformLatency(phys.PathModel{}, phys.PathModel{}))
	sites := make([]*phys.Site, opts.Sites)
	for i := range sites {
		sites[i] = net.AddSite(fmt.Sprintf("site%02d", i))
	}
	ov := &ScaleOverlay{Sim: s, Net: net}

	// Paper-default protocol constants, shortcuts disabled: the harness
	// measures pure ring routing (near + far connections), not the
	// traffic-adaptive topology.
	cfg := brunet.Config{}
	var pool []brunet.URI
	for i := 0; i < opts.Nodes; i++ {
		name := fmt.Sprintf("scale%05d", i)
		h := net.AddHost(name, sites[i%len(sites)], net.Root(), phys.HostConfig{})
		n := brunet.NewNode(h, brunet.AddrFromString(name), cfg)
		var boot []brunet.URI
		if p := len(pool); p > 0 {
			boot = []brunet.URI{pool[i%p], pool[(i+7)%p], pool[(i+13)%p]}
		}
		if err := n.Start(boot); err != nil {
			return nil, fmt.Errorf("scale: start %s: %w", name, err)
		}
		n.RegisterProto("scale", func(src brunet.Addr, d brunet.AppData) { ov.Delivered++ })
		if len(pool) < 16 {
			pool = append(pool, n.BootstrapURI())
		}
		ov.Nodes = append(ov.Nodes, n)
		s.RunFor(opts.JoinSpacing)
	}
	s.RunFor(opts.Settle)
	return ov, nil
}

// Pair returns a deterministic pseudo-random (src, dst) node pair for
// measurement iteration i.
func (ov *ScaleOverlay) Pair(i int) (src, dst *brunet.Node) {
	n := len(ov.Nodes)
	a := int(uint32(i) * 2654435761 % uint32(n))
	b := int((uint32(i)*40503 + 2654435769) % uint32(n))
	if a == b {
		b = (b + 1) % n
	}
	return ov.Nodes[a], ov.Nodes[b]
}

// RouteOne routes one end-to-end packet from src toward dst's address and
// drains every event at the frozen simulation instant, so the full
// multi-hop route (and nothing else) executes before it returns.
func (ov *ScaleOverlay) RouteOne(src, dst *brunet.Node) {
	src.SendTo(dst.Addr(), brunet.DeliverExact, brunet.AppData{Proto: "scale", Size: 64})
	ov.Sim.RunUntil(ov.Sim.Now())
}

// RoutableFrac reports the fraction of nodes that are fully routable.
func (ov *ScaleOverlay) RoutableFrac() float64 {
	routable := 0
	for _, n := range ov.Nodes {
		if n.IsRoutable() {
			routable++
		}
	}
	return float64(routable) / float64(len(ov.Nodes))
}

// ForwardedTotal sums route.forwarded over the fleet.
func (ov *ScaleOverlay) ForwardedTotal() int64 {
	var total int64
	for _, n := range ov.Nodes {
		total += n.Stats.Get("route.forwarded")
	}
	return total
}

// ScaleResult summarizes one scale-harness run. Protocol outcomes
// (delivered counts, hops, routability) are seed-deterministic; the
// wall-clock and allocation figures measure this machine's execution of
// the run.
type ScaleResult struct {
	Seed          int64
	Nodes, Sites  int
	RoutableFrac  float64
	BuildWallSec  float64
	JoinsPerSec   float64
	PacketsSent   int
	Delivered     int
	AvgHops       float64
	RouteWallSec  float64
	RoutedPerSec  float64
	NsPerPacket   float64
	AllocsPerOp   float64
	EventsTotal   uint64
	SettleSeconds float64
}

// String renders the harness summary.
func (r *ScaleResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scale harness: %d-node overlay over %d sites, seed %d\n", r.Nodes, r.Sites, r.Seed)
	fmt.Fprintf(&b, "  build: %.1f s wall (%.0f joins/s), routable %.1f%%\n",
		r.BuildWallSec, r.JoinsPerSec, r.RoutableFrac*100)
	fmt.Fprintf(&b, "  routing: %d/%d packets delivered, avg %.1f hops\n",
		r.Delivered, r.PacketsSent, r.AvgHops)
	fmt.Fprintf(&b, "  hot path: %.0f ns/packet, %.1f allocs/packet, %.0f packets/s wall\n",
		r.NsPerPacket, r.AllocsPerOp, r.RoutedPerSec)
	fmt.Fprintf(&b, "  events processed: %d\n", r.EventsTotal)
	return b.String()
}

// RunScale builds a 1k–5k-node overlay and measures the routing hot path:
// joins/sec during the build, then ns/op and allocs/op per end-to-end
// routed packet with the virtual clock frozen (see ScaleOverlay).
func RunScale(opts ScaleOpts) (*ScaleResult, error) {
	opts.fillDefaults()
	t0 := time.Now()
	ov, err := BuildScaleOverlay(opts)
	if err != nil {
		return nil, err
	}
	buildWall := time.Since(t0).Seconds()

	res := &ScaleResult{
		Seed:          opts.Seed,
		Nodes:         opts.Nodes,
		Sites:         opts.Sites,
		RoutableFrac:  ov.RoutableFrac(),
		BuildWallSec:  buildWall,
		JoinsPerSec:   float64(opts.Nodes) / buildWall,
		PacketsSent:   opts.Packets,
		SettleSeconds: opts.Settle.Seconds(),
	}

	fwd0 := ov.ForwardedTotal()
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t1 := time.Now()
	for i := 0; i < opts.Packets; i++ {
		src, dst := ov.Pair(i)
		ov.RouteOne(src, dst)
	}
	routeWall := time.Since(t1).Seconds()
	runtime.ReadMemStats(&m1)

	res.Delivered = ov.Delivered
	res.RouteWallSec = routeWall
	if routeWall > 0 {
		res.RoutedPerSec = float64(opts.Packets) / routeWall
	}
	res.NsPerPacket = routeWall * 1e9 / float64(opts.Packets)
	res.AllocsPerOp = float64(m1.Mallocs-m0.Mallocs) / float64(opts.Packets)
	if res.Delivered > 0 {
		res.AvgHops = float64(ov.ForwardedTotal()-fwd0) / float64(res.Delivered)
	}
	res.EventsTotal = ov.Sim.Processed
	return res, nil
}
