package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"wow/internal/brunet"
	"wow/internal/phys"
	"wow/internal/sim"
)

// ScaleOpts parameterizes the scale harness: how many routers to stand up,
// how many end-to-end packets to route through the converged overlay, and
// the join pacing. Zero fields take the defaults below.
//
// Two build modes exist. The classic serial mode (Shards<=1, BatchJoin=0)
// joins one node at a time through a small bootstrap pool on a
// zero-latency fabric — its traces are pinned by golden tests and stay
// byte-identical. The parallel mode (Shards>1 and/or BatchJoin>0) targets
// the 10k–20k rungs: batched bootstrap fans each batch's joins across
// every already-joined node, keepalives run on a coarse schedule during
// the build, and with Shards>1 the whole simulation executes on the
// site-sharded parallel engine with the WAN latency floor as conservative
// lookahead. Parallel results are deterministic in (Seed, Shards) and
// independent of Workers.
type ScaleOpts struct {
	Seed int64
	// Nodes is the overlay size; the serial harness targets the 1,000–
	// 5,000 range, the sharded harness 5,000–20,000.
	Nodes int
	// Packets is how many end-to-end packets the measurement phase routes
	// between random node pairs.
	Packets int
	// Sites spreads hosts round-robin over this many network sites.
	Sites int
	// JoinSpacing staggers node starts (serial mode).
	JoinSpacing sim.Duration
	// Settle is the convergence time granted after the last join.
	Settle sim.Duration

	// Shards runs the simulation on a sim.Sharded engine with this many
	// shards (sites round-robin onto shards). 0 or 1 keeps a single event
	// queue.
	Shards int
	// Workers bounds the goroutines executing shard windows; 0 means
	// min(Shards, GOMAXPROCS). Results never depend on it.
	Workers int
	// BatchJoin enables batched bootstrap: joins start in batches that
	// ramp up to this size, each joiner bootstrapping off three nodes
	// spread deterministically across everything already joined. 0 in
	// serial mode; defaults to 256 when Shards>1.
	BatchJoin int
	// BatchInterval is the virtual time between batch starts.
	BatchInterval sim.Duration
	// WANLatency is the one-way inter-site delay of the parallel fabric.
	// Its floor (minus jitter, zero here) is the engine's lookahead, so it
	// must be positive when Shards>1.
	WANLatency sim.Duration
	// OnProgress, when set, observes every build time-series sample.
	OnProgress func(ScalePoint)
}

func (o *ScaleOpts) parallel() bool { return o.Shards > 1 || o.BatchJoin > 0 }

// SettleSeconds converts a settle time given in (possibly fractional)
// seconds to a sim.Duration; 0 keeps the harness default.
func SettleSeconds(s float64) sim.Duration {
	return sim.Duration(s * float64(sim.Second))
}

// Milliseconds converts a latency given in (possibly fractional)
// milliseconds to a sim.Duration; 0 keeps the harness default.
func Milliseconds(ms float64) sim.Duration {
	return sim.Duration(ms * float64(sim.Millisecond))
}

func (o *ScaleOpts) fillDefaults() {
	if o.Nodes == 0 {
		o.Nodes = 2000
	}
	if o.Packets == 0 {
		o.Packets = 2000
	}
	if o.Sites == 0 {
		o.Sites = 32
	}
	if o.JoinSpacing == 0 {
		o.JoinSpacing = 100 * sim.Millisecond
	}
	if o.Settle == 0 {
		o.Settle = 2 * sim.Minute
	}
	if o.Shards > 1 && o.BatchJoin == 0 {
		o.BatchJoin = 256
	}
	if o.parallel() {
		if o.BatchInterval == 0 {
			o.BatchInterval = 5 * sim.Second
		}
		if o.WANLatency == 0 {
			o.WANLatency = 10 * sim.Millisecond
		}
		if o.Workers == 0 {
			o.Workers = runtime.GOMAXPROCS(0)
		}
		if o.Shards > 0 && o.Workers > o.Shards {
			o.Workers = o.Shards
		}
	}
}

// coarseKeepaliveConfig is the build-phase protocol schedule of the
// parallel harness: paper-default topology constants but liveness pings
// 4x coarser — keepalives are pure background load on a fabric with no
// failures, and dominate the per-node event budget of multi-thousand-node
// builds. The topology-maintenance ticks stay at their defaults on
// purpose: the near overlord's status tick (15s) is also the ring-repair
// cadence that concurrent batch joiners depend on to find their true
// ring neighbors, and the far overlord's tick (30s) must fire enough
// rounds within the settle window to fill the far tables (coarsening
// either leaves successor gaps or >MaxHops paths at 5k+ nodes).
// Shortcuts stay disabled as in the serial harness.
func coarseKeepaliveConfig() brunet.Config {
	return brunet.Config{
		PingInterval: 60 * sim.Second,
	}
}

// ScalePoint is one sample of the build time series: how much wall clock
// and virtual time had elapsed when the sample was taken, how many nodes
// had joined, and the cumulative join throughput.
type ScalePoint struct {
	WallSec     float64
	VirtualSec  float64
	Joined      int
	JoinsPerSec float64
	Events      uint64
}

// ScaleOverlay is a converged large overlay ready for routing
// measurements. In serial mode the physical fabric is zero-latency on
// purpose: with no propagation delay a packet's whole multi-hop route
// executes within RunUntil(Now()) — the clock never advances, no keepalive
// or gossip timer can interleave, and the measurement isolates the CPU
// cost of the routing hot path itself. The parallel fabric has real WAN
// latency (the lookahead bound), so its measurement phase instead spaces
// timed sends and reads per-node counters.
type ScaleOverlay struct {
	Sim   *sim.Simulator
	Net   *phys.Network
	Nodes []*brunet.Node
	// Engine is the parallel engine of a sharded build; nil in serial
	// mode.
	Engine *sim.Sharded
	// Series is the build time series of a parallel build.
	Series []ScalePoint
	// Delivered counts end-to-end "scale" payloads received by any node
	// (serial mode only; the parallel harness reads per-node counters).
	Delivered int
}

// BuildScaleOverlay stands up opts.Nodes bare Brunet routers (no IPOP/VM
// layers — this harness weighs the overlay, not the guests) and lets the
// ring converge, using the serial or parallel build depending on opts.
func BuildScaleOverlay(opts ScaleOpts) (*ScaleOverlay, error) {
	opts.fillDefaults()
	if opts.parallel() {
		return buildScaleParallel(opts)
	}
	return buildScaleSerial(opts)
}

// buildScaleSerial joins one node at a time, bootstrapping off a pool of
// the 16 earliest nodes so leaf-connection load spreads instead of piling
// onto one founder. Its event trace is golden-pinned; do not perturb.
func buildScaleSerial(opts ScaleOpts) (*ScaleOverlay, error) {
	s := sim.New(opts.Seed)
	net := phys.NewNetwork(s, phys.UniformLatency(phys.PathModel{}, phys.PathModel{}))
	sites := make([]*phys.Site, opts.Sites)
	for i := range sites {
		sites[i] = net.AddSite(fmt.Sprintf("site%02d", i))
	}
	ov := &ScaleOverlay{Sim: s, Net: net}

	// Paper-default protocol constants, shortcuts disabled: the harness
	// measures pure ring routing (near + far connections), not the
	// traffic-adaptive topology.
	cfg := brunet.Config{}
	var pool []brunet.URI
	for i := 0; i < opts.Nodes; i++ {
		name := fmt.Sprintf("scale%05d", i)
		h := net.AddHost(name, sites[i%len(sites)], net.Root(), phys.HostConfig{})
		n := brunet.NewNode(h, brunet.AddrFromString(name), cfg)
		var boot []brunet.URI
		if p := len(pool); p > 0 {
			boot = []brunet.URI{pool[i%p], pool[(i+7)%p], pool[(i+13)%p]}
		}
		if err := n.Start(boot); err != nil {
			return nil, fmt.Errorf("scale: start %s: %w", name, err)
		}
		n.RegisterProto("scale", func(src brunet.Addr, d brunet.AppData) { ov.Delivered++ })
		if len(pool) < 16 {
			pool = append(pool, n.BootstrapURI())
		}
		ov.Nodes = append(ov.Nodes, n)
		s.RunFor(opts.JoinSpacing)
	}
	s.RunFor(opts.Settle)
	return ov, nil
}

// buildScaleParallel is the batched, optionally sharded build. All hosts
// and nodes are created up front; Start events are scheduled per batch on
// each node's own shard. A joiner bootstraps off three deterministic picks
// from every node of earlier batches — the whole joined overlay is the
// bootstrap pool, so leaf load fans out and batch members join
// concurrently in virtual time. Batch sizes ramp geometrically (1, 1, 2,
// 4, …) up to opts.BatchJoin so the infant ring is never stampeded.
func buildScaleParallel(opts ScaleOpts) (*ScaleOverlay, error) {
	k := opts.Shards
	if k < 1 {
		k = 1
	}
	eng := sim.NewSharded(opts.Seed, k, opts.Workers)
	net := phys.NewShardedNetwork(eng, phys.UniformLatency(
		phys.PathModel{}, phys.PathModel{OneWay: opts.WANLatency}))
	sites := make([]*phys.Site, opts.Sites)
	for i := range sites {
		sites[i] = net.AddSite(fmt.Sprintf("site%02d", i))
	}
	if k > 1 {
		floor, ok := net.CrossShardFloor()
		if !ok {
			return nil, fmt.Errorf("scale: %d shards but no cross-shard site pair (need Sites >= Shards)", k)
		}
		if floor <= 0 {
			return nil, fmt.Errorf("scale: cross-shard latency floor %v must be positive (WANLatency too small)", floor)
		}
		eng.SetLookahead(floor)
	}
	ov := &ScaleOverlay{Sim: net.Sim, Net: net, Engine: eng}

	cfg := coarseKeepaliveConfig()
	nodes := make([]*brunet.Node, opts.Nodes)
	for i := range nodes {
		name := fmt.Sprintf("scale%05d", i)
		h := net.AddHost(name, sites[i%len(sites)], net.Root(), phys.HostConfig{})
		nodes[i] = brunet.NewNode(h, brunet.AddrFromString(name), cfg)
		nodes[i].RegisterProto("scale", func(brunet.Addr, brunet.AppData) {})
	}
	ov.Nodes = nodes

	// Schedule the batched joins. Within a batch, starts stagger across
	// the first half of the batch interval; the second half lets the CTM
	// and linking traffic drain before the next wave.
	type batchMark struct {
		end    sim.Time
		joined int
	}
	var marks []batchMark
	var t sim.Time
	started := 0
	for started < opts.Nodes {
		size := started
		if size < 1 {
			size = 1
		}
		if size > opts.BatchJoin {
			size = opts.BatchJoin
		}
		if size > opts.Nodes-started {
			size = opts.Nodes - started
		}
		step := opts.BatchInterval / 2 / sim.Duration(size)
		if step < sim.Microsecond {
			step = sim.Microsecond
		}
		prev := started // boot pool: everything from earlier batches
		for j := 0; j < size; j++ {
			i := started + j
			n := nodes[i]
			at := t.Add(sim.Duration(j) * step)
			// The boot URIs are resolved when the event fires: the pool
			// nodes started in earlier windows, and BootstrapURI reads
			// write-once state, so the cross-shard read is ordered by the
			// engine's barrier.
			n.Host().Sim().At(at, func() {
				var boot []brunet.URI
				if prev > 0 {
					boot = []brunet.URI{
						nodes[i%prev].BootstrapURI(),
						nodes[(i+7)%prev].BootstrapURI(),
						nodes[(i+13)%prev].BootstrapURI(),
					}
				}
				if err := n.Start(boot); err != nil {
					panic(fmt.Sprintf("scale: start %s: %v", n.Addr(), err))
				}
			})
		}
		started += size
		t = t.Add(opts.BatchInterval)
		marks = append(marks, batchMark{end: t, joined: started})
	}

	t0 := time.Now()
	record := func(virtual sim.Time, joined int) {
		wall := time.Since(t0).Seconds()
		p := ScalePoint{
			WallSec:    wall,
			VirtualSec: virtual.Seconds(),
			Joined:     joined,
			Events:     eng.Processed(),
		}
		if wall > 0 {
			p.JoinsPerSec = float64(joined) / wall
		}
		ov.Series = append(ov.Series, p)
		if opts.OnProgress != nil {
			opts.OnProgress(p)
		}
	}
	for _, m := range marks {
		eng.RunUntil(m.end)
		record(m.end, m.joined)
	}
	end := t.Add(opts.Settle)
	eng.RunUntil(end)
	record(end, opts.Nodes)
	return ov, nil
}

// Pair returns a deterministic pseudo-random (src, dst) node pair for
// measurement iteration i.
func (ov *ScaleOverlay) Pair(i int) (src, dst *brunet.Node) {
	n := len(ov.Nodes)
	a := int(uint32(i) * 2654435761 % uint32(n))
	b := int((uint32(i)*40503 + 2654435769) % uint32(n))
	if a == b {
		b = (b + 1) % n
	}
	return ov.Nodes[a], ov.Nodes[b]
}

// RouteOne routes one end-to-end packet from src toward dst's address and
// drains every event at the frozen simulation instant, so the full
// multi-hop route (and nothing else) executes before it returns. Serial
// harness only — the parallel fabric has real latency.
func (ov *ScaleOverlay) RouteOne(src, dst *brunet.Node) {
	src.SendTo(dst.Addr(), brunet.DeliverExact, brunet.AppData{Proto: "scale", Size: 64})
	ov.Sim.RunUntil(ov.Sim.Now())
}

// RoutableFrac reports the fraction of nodes that are fully routable.
func (ov *ScaleOverlay) RoutableFrac() float64 {
	routable := 0
	for _, n := range ov.Nodes {
		if n.IsRoutable() {
			routable++
		}
	}
	return float64(routable) / float64(len(ov.Nodes))
}

// ForwardedTotal sums route.forwarded over the fleet.
func (ov *ScaleOverlay) ForwardedTotal() int64 {
	var total int64
	for _, n := range ov.Nodes {
		total += n.Stats.Get("route.forwarded")
	}
	return total
}

// DeliveredTotal sums route.delivered over the fleet; the parallel
// measurement phase counts deliveries through it (a shared closure
// counter would race across shards).
func (ov *ScaleOverlay) DeliveredTotal() int64 {
	var total int64
	for _, n := range ov.Nodes {
		total += n.Stats.Get("route.delivered")
	}
	return total
}

// EventsProcessed reports total executed events across the engine.
func (ov *ScaleOverlay) EventsProcessed() uint64 {
	if ov.Engine != nil {
		return ov.Engine.Processed()
	}
	return ov.Sim.Processed
}

// ScaleResult summarizes one scale-harness run. Protocol outcomes
// (delivered counts, hops, routability) are seed-deterministic; the
// wall-clock and allocation figures measure this machine's execution of
// the run.
type ScaleResult struct {
	Seed          int64
	Nodes, Sites  int
	RoutableFrac  float64
	BuildWallSec  float64
	JoinsPerSec   float64
	PacketsSent   int
	Delivered     int
	AvgHops       float64
	RouteWallSec  float64
	RoutedPerSec  float64
	NsPerPacket   float64
	AllocsPerOp   float64
	EventsTotal   uint64
	SettleSeconds float64

	// Parallel-mode fields (zero in serial runs).
	Shards       int          `json:",omitempty"`
	Workers      int          `json:",omitempty"`
	BatchJoin    int          `json:",omitempty"`
	WANLatencyMs float64      `json:",omitempty"`
	MaxProcs     int          `json:",omitempty"`
	Series       []ScalePoint `json:",omitempty"`
}

// String renders the harness summary.
func (r *ScaleResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scale harness: %d-node overlay over %d sites, seed %d\n", r.Nodes, r.Sites, r.Seed)
	if r.Shards > 0 || r.BatchJoin > 0 {
		fmt.Fprintf(&b, "  parallel: %d shards x %d workers (GOMAXPROCS %d), join batches of %d, wan %.0f ms\n",
			r.Shards, r.Workers, r.MaxProcs, r.BatchJoin, r.WANLatencyMs)
	}
	fmt.Fprintf(&b, "  build: %.1f s wall (%.0f joins/s), routable %.1f%%\n",
		r.BuildWallSec, r.JoinsPerSec, r.RoutableFrac*100)
	fmt.Fprintf(&b, "  routing: %d/%d packets delivered, avg %.1f hops\n",
		r.Delivered, r.PacketsSent, r.AvgHops)
	fmt.Fprintf(&b, "  hot path: %.0f ns/packet, %.1f allocs/packet, %.0f packets/s wall\n",
		r.NsPerPacket, r.AllocsPerOp, r.RoutedPerSec)
	fmt.Fprintf(&b, "  events processed: %d\n", r.EventsTotal)
	return b.String()
}

// RunScale builds a large overlay and measures the routing hot path:
// joins/sec during the build, then per-packet cost for end-to-end routed
// packets. Serial runs freeze the clock per packet and so isolate the pure
// routing cost; parallel runs space timed sends over the latent fabric, so
// their per-packet figures include the background keepalive load — honest
// for throughput, not comparable to the serial ns/packet.
func RunScale(opts ScaleOpts) (*ScaleResult, error) {
	opts.fillDefaults()
	if opts.parallel() {
		return runScaleParallel(opts)
	}
	t0 := time.Now()
	ov, err := BuildScaleOverlay(opts)
	if err != nil {
		return nil, err
	}
	buildWall := time.Since(t0).Seconds()

	res := &ScaleResult{
		Seed:          opts.Seed,
		Nodes:         opts.Nodes,
		Sites:         opts.Sites,
		RoutableFrac:  ov.RoutableFrac(),
		BuildWallSec:  buildWall,
		JoinsPerSec:   float64(opts.Nodes) / buildWall,
		PacketsSent:   opts.Packets,
		SettleSeconds: opts.Settle.Seconds(),
	}

	fwd0 := ov.ForwardedTotal()
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t1 := time.Now()
	for i := 0; i < opts.Packets; i++ {
		src, dst := ov.Pair(i)
		ov.RouteOne(src, dst)
	}
	routeWall := time.Since(t1).Seconds()
	runtime.ReadMemStats(&m1)

	res.Delivered = ov.Delivered
	res.RouteWallSec = routeWall
	if routeWall > 0 {
		res.RoutedPerSec = float64(opts.Packets) / routeWall
	}
	res.NsPerPacket = routeWall * 1e9 / float64(opts.Packets)
	res.AllocsPerOp = float64(m1.Mallocs-m0.Mallocs) / float64(opts.Packets)
	if res.Delivered > 0 {
		res.AvgHops = float64(ov.ForwardedTotal()-fwd0) / float64(res.Delivered)
	}
	res.EventsTotal = ov.Sim.Processed
	return res, nil
}

// runScaleParallel is the batched/sharded variant of RunScale. The
// measurement phase schedules Packets sends spaced 2ms apart (each on the
// source node's shard), runs the engine to a drain horizon, and reads the
// per-node counters for deliveries and hops.
func runScaleParallel(opts ScaleOpts) (*ScaleResult, error) {
	t0 := time.Now()
	ov, err := BuildScaleOverlay(opts)
	if err != nil {
		return nil, err
	}
	buildWall := time.Since(t0).Seconds()
	eng := ov.Engine

	res := &ScaleResult{
		Seed:          opts.Seed,
		Nodes:         opts.Nodes,
		Sites:         opts.Sites,
		RoutableFrac:  ov.RoutableFrac(),
		BuildWallSec:  buildWall,
		JoinsPerSec:   float64(opts.Nodes) / buildWall,
		PacketsSent:   opts.Packets,
		SettleSeconds: opts.Settle.Seconds(),
		Shards:        eng.Shards(),
		Workers:       eng.Workers(),
		BatchJoin:     opts.BatchJoin,
		WANLatencyMs:  float64(opts.WANLatency) / float64(sim.Millisecond),
		MaxProcs:      runtime.GOMAXPROCS(0),
		Series:        ov.Series,
	}

	const spacing = 2 * sim.Millisecond
	m0 := eng.Now()
	for i := 0; i < opts.Packets; i++ {
		src, dst := ov.Pair(i)
		at := m0.Add(sim.Duration(i) * spacing)
		dstAddr := dst.Addr()
		src.Host().Sim().At(at, func() {
			src.SendTo(dstAddr, brunet.DeliverExact, brunet.AppData{Proto: "scale", Size: 64})
		})
	}
	fwd0, del0 := ov.ForwardedTotal(), ov.DeliveredTotal()
	runtime.GC()
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	t1 := time.Now()
	horizon := m0.Add(sim.Duration(opts.Packets)*spacing + 5*sim.Second)
	eng.RunUntil(horizon)
	routeWall := time.Since(t1).Seconds()
	runtime.ReadMemStats(&ms1)

	res.Delivered = int(ov.DeliveredTotal() - del0)
	res.RouteWallSec = routeWall
	if routeWall > 0 {
		res.RoutedPerSec = float64(opts.Packets) / routeWall
	}
	res.NsPerPacket = routeWall * 1e9 / float64(opts.Packets)
	res.AllocsPerOp = float64(ms1.Mallocs-ms0.Mallocs) / float64(opts.Packets)
	if res.Delivered > 0 {
		res.AvgHops = float64(ov.ForwardedTotal()-fwd0) / float64(res.Delivered)
	}
	res.EventsTotal = eng.Processed()
	eng.Close()
	return res, nil
}
