package experiments

import (
	"strings"
	"testing"
)

// TestNATMatrixTruthTable pins the traversal ground truth cell by cell:
// every class pair must form its near link and deliver traffic, tunneling
// exactly when a symmetric NAT faces a symmetric or port-restricted one.
func TestNATMatrixTruthTable(t *testing.T) {
	res, err := RunNATMatrix(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 15 {
		t.Fatalf("cells = %d, want 15", len(res.Cells))
	}
	wantTunnel := map[string]bool{
		"symmetric/symmetric":       true,
		"port-restricted/symmetric": true,
		"symmetric/port-restricted": true,
	}
	for _, c := range res.Cells {
		key := c.A + "/" + c.B
		if c.WantTunnel != wantTunnel[key] {
			t.Errorf("%s: ground truth says tunnel=%v, experiment table says %v",
				key, wantTunnel[key], c.WantTunnel)
		}
		if !c.Connected {
			t.Errorf("%s: near link never formed", key)
		}
		if !c.Delivered {
			t.Errorf("%s: end-to-end delivery failed", key)
		}
		if c.Tunneled != c.WantTunnel {
			t.Errorf("%s: tunneled=%v, want %v", key, c.Tunneled, c.WantTunnel)
		}
	}
	if res.Failures() != 0 {
		t.Errorf("matrix reports %d mismatches:\n%s", res.Failures(), res)
	}
}

// TestRunSymmetricRing exercises the all-symmetric run at a unit-test
// size: the ring must fully assemble over tunnel edges, route VIP pings
// between NATed workstations, and recover quickly from a migration.
func TestRunSymmetricRing(t *testing.T) {
	res, err := RunSymmetricRing(SymRingOpts{Seed: 5, Routers: 3, Nodes: 20, Pings: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.RoutableFrac != 1 {
		t.Errorf("routable fraction = %.3f, want 1.0", res.RoutableFrac)
	}
	if res.MissingNear != 0 {
		t.Errorf("%d missing near links", res.MissingNear)
	}
	if res.TunnelNear == 0 {
		t.Error("no tunneled near edges in an all-symmetric ring")
	}
	if res.TunnelsEstablished == 0 {
		t.Error("tunnel.established never counted")
	}
	if res.PingOK != res.PingsSent {
		t.Errorf("vip pings: %d/%d", res.PingOK, res.PingsSent)
	}
	if res.MigOutageSec < 0 || res.MigOutageSec > 60 {
		t.Errorf("migration outage %.1f s, want fast recovery", res.MigOutageSec)
	}
	if !strings.Contains(res.String(), "All-symmetric-NAT ring") {
		t.Errorf("summary malformed:\n%s", res)
	}
}
