package experiments

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"strings"
	"testing"
	"testing/quick"

	"wow/internal/trace"
)

// traceCounts tallies a merged stream by record stream.
func traceCounts(recs []trace.Record) (hops, routes, health int) {
	for _, r := range recs {
		switch r.Stream {
		case trace.StreamHop:
			hops++
		case trace.StreamRoute:
			routes++
		case trace.StreamHealth:
			health++
		}
	}
	return hops, routes, health
}

// TestGrayTraceNeutral: arming hop/route tracing must not change the run —
// the seed-5 adaptive goldens (fault timeline, per-window series including
// event totals, summary) hold byte-for-byte with the recorder on. Tracing
// draws no randomness and schedules no events; only the health ticker adds
// events, so it stays off here.
func TestGrayTraceNeutral(t *testing.T) {
	r, err := RunGrayFailures(GrayOpts{Seed: 5, Adaptive: true, TraceSample: 16})
	if err != nil {
		t.Fatal(err)
	}
	if r.Timeline != goldenGrayTimelineSeed5 {
		t.Errorf("tracing changed the fault timeline; %s",
			diffLine(r.Timeline, goldenGrayTimelineSeed5))
	}
	if got := graySeriesDigest(r); got != goldenGraySeriesSeed5 {
		t.Errorf("tracing changed the run (series drifted); %s",
			diffLine(got, goldenGraySeriesSeed5))
	}
	if got := r.String(); got != goldenGraySummarySeed5 {
		t.Errorf("tracing changed the summary; %s", diffLine(got, goldenGraySummarySeed5))
	}
	if len(r.Trace) == 0 {
		t.Fatal("tracing armed but no records captured")
	}
}

// Golden pin for the seed-5 adaptive trace stream at 1-in-16 sampling: the
// merged JSONL is a byte-exact function of the seed. The first records and
// a digest of the whole stream are pinned; drift means the sampling rule,
// the record schema, the merge order, or a routing decision changed.
const goldenGrayTraceSeed5Hops = 518
const goldenGrayTraceSeed5Routes = 291
const goldenGrayTraceSeed5SHA = "d261dc9ce2298fb5eb5f0f438ed1df31b525103c242593464c9a27e55006ee2a"

const goldenGrayTraceSeed5First = `{"stream":"hop","t":1040000000,"node":"e029939a066d17c0716d0f72cff8f46b781f90ca","trace":15595511106300592320,"kind":"origin","cands":3,"dist":5144826207695440223,"src":"e029939a066d17c0716d0f72cff8f46b781f90ca","dst":"98c37b6c999e8e611b15f1d57c53ec6a5d1bcbdd"}
{"stream":"hop","t":1040000000,"node":"e029939a066d17c0716d0f72cff8f46b781f90ca","trace":15595511106300592320,"hop":1,"kind":"near","next":"98c37b6c999e8e611b15f1d57c53ec6a5d1bcbdd","cands":3}
`

func TestGoldenSeedGrayTrace(t *testing.T) {
	r, err := RunGrayFailures(GrayOpts{Seed: 5, Adaptive: true, TraceSample: 16})
	if err != nil {
		t.Fatal(err)
	}
	hops, routes, health := traceCounts(r.Trace)
	if hops != goldenGrayTraceSeed5Hops || routes != goldenGrayTraceSeed5Routes || health != 0 {
		t.Errorf("record counts drifted: %d hop / %d route / %d health, want %d / %d / 0",
			hops, routes, health, goldenGrayTraceSeed5Hops, goldenGrayTraceSeed5Routes)
	}
	data, err := trace.MarshalJSONL(r.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(data, []byte(goldenGrayTraceSeed5First)) {
		got := data
		if len(got) > len(goldenGrayTraceSeed5First)+80 {
			got = got[:len(goldenGrayTraceSeed5First)+80]
		}
		t.Errorf("first trace records drifted:\ngot:\n%s\nwant prefix:\n%s", got, goldenGrayTraceSeed5First)
	}
	sum := sha256.Sum256(data)
	if got := hex.EncodeToString(sum[:]); got != goldenGrayTraceSeed5SHA {
		t.Errorf("trace stream digest drifted: %s, want %s", got, goldenGrayTraceSeed5SHA)
	}
	// Every sampled route must terminate exactly once.
	origins := map[uint64]bool{}
	terminals := map[uint64]int{}
	for _, rec := range r.Trace {
		switch rec.Stream {
		case trace.StreamHop:
			if rec.Kind == trace.KindOrigin {
				origins[rec.Trace] = true
			}
		case trace.StreamRoute:
			terminals[rec.Trace]++
		}
	}
	for id := range origins {
		if terminals[id] != 1 {
			t.Errorf("trace %d has %d terminals, want 1", id, terminals[id])
		}
	}
	if len(terminals) != len(origins) {
		t.Errorf("%d terminals for %d origins", len(terminals), len(origins))
	}
}

// TestQuickGrayTraceEquivalence extends the sharded-equivalence property
// to the flight recorder: the merged trace stream is byte-identical
// between the serial engine and the 1-shard parallel engine, and between
// worker counts of a multi-shard run. (Across shard counts the stream —
// like the run itself — is a distinct deterministic execution; see
// TestQuickGrayShardedEquivalence.)
func TestQuickGrayTraceEquivalence(t *testing.T) {
	stream := func(seed int64, shards, workers int) []byte {
		opts := GrayOpts{Seed: seed, Nodes: 16, Sites: 4, Windows: 3,
			WindowLen: SettleSeconds(20), Settle: SettleSeconds(60), Kills: 2,
			TraceSample: 4, TraceHealth: SettleSeconds(30),
			Shards: shards, Workers: workers}
		r, err := RunGrayFailures(opts)
		if err != nil {
			t.Fatal(err)
		}
		data, err := trace.MarshalJSONL(r.Trace)
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Trace) == 0 {
			t.Fatalf("seed %d shards %d: empty trace stream", seed, shards)
		}
		return data
	}
	f := func(rawSeed uint8) bool {
		seed := int64(rawSeed)%5 + 1
		serial := stream(seed, 0, 0)
		one := stream(seed, 1, 1)
		if !bytes.Equal(serial, one) {
			t.Logf("seed %d: serial and 1-shard trace streams differ; %s",
				seed, diffLine(string(serial), string(one)))
			return false
		}
		two1 := stream(seed, 2, 1)
		two2 := stream(seed, 2, 2)
		if !bytes.Equal(two1, two2) {
			t.Logf("seed %d: 2-shard trace stream varies with workers; %s",
				seed, diffLine(string(two1), string(two2)))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3}); err != nil {
		t.Fatal(err)
	}
}

// TestGrayTraceHealthStream: arming the health ticker produces snapshots
// for every node with sane contents, and the hop/route streams are
// unaffected by its presence.
func TestGrayTraceHealthStream(t *testing.T) {
	opts := GrayOpts{Seed: 3, Nodes: 16, Sites: 4, Windows: 3,
		WindowLen: SettleSeconds(20), Settle: SettleSeconds(60), Kills: 2,
		TraceSample: 4}
	bare, err := RunGrayFailures(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.TraceHealth = SettleSeconds(30)
	withHealth, err := RunGrayFailures(opts)
	if err != nil {
		t.Fatal(err)
	}
	var stripped []trace.Record
	nodesSeen := map[string]bool{}
	var snapshots int
	for _, rec := range withHealth.Trace {
		if rec.Stream != trace.StreamHealth {
			stripped = append(stripped, rec)
			continue
		}
		snapshots++
		nodesSeen[rec.Node] = true
		if rec.T == 0 || rec.Node == "" {
			t.Errorf("health snapshot missing time or node: %+v", rec)
		}
		if rec.NearConns < 0 || rec.Backlog < 0 {
			t.Errorf("negative table counts: %+v", rec)
		}
	}
	if snapshots == 0 {
		t.Fatal("health ticker armed but no snapshots")
	}
	if len(nodesSeen) != opts.Nodes {
		t.Errorf("snapshots cover %d nodes, want %d", len(nodesSeen), opts.Nodes)
	}
	a, _ := trace.MarshalJSONL(bare.Trace)
	b, _ := trace.MarshalJSONL(stripped)
	if !bytes.Equal(a, b) {
		t.Errorf("health ticker perturbed the hop/route streams; %s",
			diffLine(string(a), string(b)))
	}
	if !strings.Contains(string(b), `"stream":"route"`) {
		t.Error("no route records in traced run")
	}
}
