package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"strings"

	"wow/internal/brunet"
	"wow/internal/core"
	"wow/internal/natsim"
	"wow/internal/phys"
	"wow/internal/sim"
	"wow/internal/vm"
)

// This file holds the NAT-traversal experiments for the tunnel-edge
// subsystem: a pairwise connectivity matrix over the middlebox taxonomy
// (which pairs can link directly, which require relay-backed tunnel
// edges), and an all-symmetric-NAT ring formation plus VM migration run —
// the worst-case deployment the paper's §IV-C traversal machinery cannot
// serve without relays.
//
// Both experiments run on brunet.FastTestConfig constants: tunnel
// fallback is gated on direct linking *failing*, and the paper-default
// retry schedule would spend most of the run budget waiting out dead-URI
// backoff. The topology outcomes (direct vs tunneled, ring consistency)
// are independent of the timing constants.

// natClass is one row/column of the connectivity matrix.
type natClass struct {
	Name string
	Type natsim.NATType
	NAT  bool // false: directly on the public Internet
}

func natClasses() []natClass {
	return []natClass{
		{Name: "public", NAT: false},
		{Name: "cone", Type: natsim.FullCone, NAT: true},
		{Name: "addr-restricted", Type: natsim.RestrictedCone, NAT: true},
		{Name: "port-restricted", Type: natsim.PortRestricted, NAT: true},
		{Name: "symmetric", Type: natsim.Symmetric, NAT: true},
	}
}

// needsTunnel is the ground truth of NAT traversal with bidirectional
// linking (§IV-C): every pair can hole-punch or dial directly except a
// symmetric NAT facing another symmetric or a port-restricted NAT. A
// symmetric NAT allocates a fresh public port per destination, so the
// peer's pinhole (keyed on the port it predicted) never matches — unless
// the peer filters by address only (cone/addr-restricted), or not at all
// (public), in which case the symmetric side's own outbound dial lands.
func needsTunnel(a, b natClass) bool {
	sym := func(c natClass) bool { return c.NAT && c.Type == natsim.Symmetric }
	hardFilter := func(c natClass) bool {
		return c.NAT && (c.Type == natsim.Symmetric || c.Type == natsim.PortRestricted)
	}
	return (sym(a) && hardFilter(b)) || (sym(b) && hardFilter(a))
}

// NATMatrixCell is the measured outcome for one unordered class pair.
type NATMatrixCell struct {
	A, B string
	// Connected reports a structured-near link between the pair.
	Connected bool
	// Tunneled reports that link is a relay-backed tunnel edge.
	Tunneled bool
	// Delivered reports end-to-end overlay delivery in both directions.
	Delivered bool
	// WantTunnel is the traversal ground truth for the pair.
	WantTunnel bool
}

// NATMatrixResult is the full pairwise matrix.
type NATMatrixResult struct {
	Seed  int64
	Cells []NATMatrixCell
}

// Failures counts cells whose outcome contradicts the ground truth.
func (r *NATMatrixResult) Failures() int {
	bad := 0
	for _, c := range r.Cells {
		if !c.Connected || !c.Delivered || c.Tunneled != c.WantTunnel {
			bad++
		}
	}
	return bad
}

// String renders the matrix.
func (r *NATMatrixResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "NAT connectivity matrix: structured-near link per class pair, seed %d\n", r.Seed)
	for _, c := range r.Cells {
		outcome := "none"
		switch {
		case c.Connected && c.Tunneled:
			outcome = "tunnel"
		case c.Connected:
			outcome = "direct"
		}
		want := "direct"
		if c.WantTunnel {
			want = "tunnel"
		}
		status := "ok"
		if !c.Connected || !c.Delivered || c.Tunneled != c.WantTunnel {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "  %-16s x %-16s %-6s (want %-6s, delivered %v) %s\n",
			c.A, c.B, outcome, want, c.Delivered, status)
	}
	fmt.Fprintf(&b, "  mismatches: %d\n", r.Failures())
	return b.String()
}

// addClassNode starts a brunet node of the given class on net: on the
// public Internet, or on a private host behind a fresh NAT of the class's
// discipline.
func addClassNode(s *sim.Simulator, net *phys.Network, site *phys.Site,
	name string, class natClass, boot []brunet.URI) (*brunet.Node, error) {
	realm := net.Root()
	if class.NAT {
		nat := natsim.NewNAT(name+"-nat", natsim.Config{Type: class.Type}, net.Root().NextIP(), s.Now)
		realm = net.AddRealm(name, net.Root(), nat, phys.MustParseIP("10.0.0.2"))
	}
	h := net.AddHost(name+"-host", site, realm, phys.HostConfig{})
	n := brunet.NewNode(h, brunet.AddrFromString(name), brunet.FastTestConfig())
	if err := n.Start(boot); err != nil {
		return nil, fmt.Errorf("nat-matrix: start %s: %w", name, err)
	}
	return n, nil
}

// runNATPair measures one class pair on a fresh three-node overlay: one
// public relay node plus one node of each class. A three-node ring makes
// every pair ring-adjacent, so the A-B structured-near link MUST form —
// directly if traversal permits, as a tunnel through the relay otherwise.
func runNATPair(seed int64, ca, cb natClass) (NATMatrixCell, error) {
	cell := NATMatrixCell{A: ca.Name, B: cb.Name, WantTunnel: needsTunnel(ca, cb)}
	s := sim.New(seed)
	net := phys.NewNetwork(s, phys.UniformLatency(
		phys.PathModel{OneWay: sim.Millisecond},
		phys.PathModel{OneWay: 15 * sim.Millisecond},
	))
	site := net.AddSite("pub")

	relay, err := addClassNode(s, net, site, "relay", natClass{Name: "public"}, nil)
	if err != nil {
		return cell, err
	}
	s.RunFor(2 * sim.Second)
	boot := []brunet.URI{relay.BootstrapURI()}
	a, err := addClassNode(s, net, site, "a-"+ca.Name, ca, boot)
	if err != nil {
		return cell, err
	}
	s.RunFor(2 * sim.Second)
	b, err := addClassNode(s, net, site, "b-"+cb.Name, cb, boot)
	if err != nil {
		return cell, err
	}
	s.RunFor(4 * sim.Minute)

	c := a.ConnectionTo(b.Addr())
	cell.Connected = c != nil && c.Has(brunet.StructuredNear)
	cell.Tunneled = c != nil && c.Tunneled()
	got := 0
	a.RegisterProto("m", func(src brunet.Addr, d brunet.AppData) { got++ })
	b.RegisterProto("m", func(src brunet.Addr, d brunet.AppData) { got++ })
	a.SendTo(b.Addr(), brunet.DeliverExact, brunet.AppData{Proto: "m", Size: 32})
	b.SendTo(a.Addr(), brunet.DeliverExact, brunet.AppData{Proto: "m", Size: 32})
	s.RunFor(10 * sim.Second)
	cell.Delivered = got == 2
	return cell, nil
}

// RunNATMatrix measures the 5x5 (unordered, 15-cell) connectivity matrix
// over {public, full-cone, addr-restricted, port-restricted, symmetric}.
func RunNATMatrix(seed int64) (*NATMatrixResult, error) {
	res := &NATMatrixResult{Seed: seed}
	classes := natClasses()
	for i := 0; i < len(classes); i++ {
		for j := i; j < len(classes); j++ {
			cell, err := runNATPair(seed, classes[i], classes[j])
			if err != nil {
				return nil, err
			}
			res.Cells = append(res.Cells, cell)
		}
	}
	return res, nil
}

// SymRingOpts parameterizes the all-symmetric-NAT ring run.
type SymRingOpts struct {
	Seed int64
	// Routers is the public bootstrap router count — the only nodes with
	// unmediated Internet access, and hence the natural tunnel relays.
	Routers int
	// Nodes is the count of overlay routers each behind its own
	// symmetric NAT.
	Nodes int
	// JoinSpacing staggers node starts; Settle is the convergence time
	// after the last join.
	JoinSpacing sim.Duration
	Settle      sim.Duration
	// Pings is the number of end-to-end VIP pings between the two
	// symmetric-NATed workstations (serial mode only).
	Pings int

	// Parallel-mode knobs. Shards>1 or BatchJoin>0 selects the batched
	// build on the site-sharded engine: bare brunet nodes (no VM
	// workstations or migration), every NAT realm pinned to its host's
	// site, joins batched off the public routers only — a symmetric NAT
	// admits no unsolicited inbound, so NATed peers are useless as
	// bootstrap targets. Results are deterministic in (Seed, Shards) and
	// independent of Workers. The serial mode (Shards<=1, BatchJoin=0) is
	// golden-pinned and untouched by these fields.
	Shards int
	// Workers bounds the goroutines executing shard windows; 0 means
	// min(Shards, GOMAXPROCS). Results never depend on it.
	Workers int
	// BatchJoin is the batched-bootstrap ramp cap; defaults to 64 when
	// Shards>1.
	BatchJoin int
	// BatchInterval is the virtual time between batch starts.
	BatchInterval sim.Duration
	// WANLatency is the one-way inter-site delay; its floor is the
	// engine lookahead, so it must be positive when Shards>1.
	WANLatency sim.Duration
	// Sites spreads hosts (and so NAT realms) round-robin over this many
	// network sites.
	Sites int
	// Probes is how many end-to-end overlay probes the parallel
	// measurement phase routes between random NATed pairs.
	Probes int
	// OnProgress, when set, observes every build time-series sample of a
	// parallel run.
	OnProgress func(NATPoint)
}

func (o *SymRingOpts) parallel() bool { return o.Shards > 1 || o.BatchJoin > 0 }

func (o *SymRingOpts) fillDefaults() {
	if o.Nodes == 0 {
		o.Nodes = 200
	}
	if o.Routers == 0 {
		o.Routers = 4
		if o.parallel() && o.Nodes/50 > o.Routers {
			// Public relay capacity scales with the fleet: every tunnel
			// edge and every bootstrap dial lands on a router.
			o.Routers = o.Nodes / 50
		}
	}
	if o.JoinSpacing == 0 {
		o.JoinSpacing = 500 * sim.Millisecond
	}
	if o.Settle == 0 {
		o.Settle = 6 * sim.Minute
	}
	if o.Pings == 0 {
		o.Pings = 10
	}
	if o.Shards > 1 && o.BatchJoin == 0 {
		o.BatchJoin = 64
	}
	if o.parallel() {
		if o.BatchInterval == 0 {
			o.BatchInterval = 10 * sim.Second
		}
		if o.WANLatency == 0 {
			o.WANLatency = 15 * sim.Millisecond
		}
		if o.Sites == 0 {
			o.Sites = 32
			if o.Shards > o.Sites {
				o.Sites = o.Shards
			}
		}
		if o.Probes == 0 {
			o.Probes = 200
		}
		if o.Workers == 0 {
			o.Workers = runtime.GOMAXPROCS(0)
		}
		if o.Shards > 0 && o.Workers > o.Shards {
			o.Workers = o.Shards
		}
	}
}

// SymRingResult summarizes the all-symmetric run. All fields derive from
// the simulation clock and are seed-deterministic.
type SymRingResult struct {
	Seed           int64
	Routers, Nodes int
	// RoutableFrac is the fraction of overlay members that report full
	// structured routability.
	RoutableFrac float64
	// MissingNear counts ring successors with no structured-near link —
	// zero for a consistent ring.
	MissingNear int
	// DirectNear / TunnelNear classify the successor edges.
	DirectNear, TunnelNear int
	// TunnelsEstablished / TunnelsUpgraded / RelaysLost / RelaysReselected
	// are fleet-wide tunnel subsystem counters.
	TunnelsEstablished, TunnelsUpgraded int64
	RelaysLost, RelaysReselected        int64
	// PingOK of PingsSent end-to-end VIP pings between the two
	// symmetric-NATed workstations succeeded.
	PingOK, PingsSent int
	// MigOutageSec is the VIP outage while one workstation migrated to a
	// public host; negative if it never recovered in the window.
	MigOutageSec float64

	// Parallel-mode fields (zero in serial runs).
	Shards          int        `json:",omitempty"`
	Workers         int        `json:",omitempty"`
	BatchJoin       int        `json:",omitempty"`
	WANLatencyMs    float64    `json:",omitempty"`
	MaxProcs        int        `json:",omitempty"`
	BuildWallSec    float64    `json:",omitempty"`
	EventsTotal     uint64     `json:",omitempty"`
	UpgradeProbes   int64      `json:",omitempty"`
	ProbesSent      int        `json:",omitempty"`
	ProbesDelivered int        `json:",omitempty"`
	Series          []NATPoint `json:",omitempty"`
}

// String renders the summary. The serial rendering is golden-pinned and
// must stay byte-identical; parallel runs report their own closing lines
// (probe delivery and build cost) instead of the VM workstation figures.
func (r *SymRingResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "All-symmetric-NAT ring: %d NATed + %d public routers, seed %d\n",
		r.Nodes, r.Routers, r.Seed)
	parallel := r.Shards > 0 || r.BatchJoin > 0
	if parallel {
		fmt.Fprintf(&b, "  parallel: %d shards x %d workers (GOMAXPROCS %d), join batches of %d, wan %.0f ms\n",
			r.Shards, r.Workers, r.MaxProcs, r.BatchJoin, r.WANLatencyMs)
	}
	fmt.Fprintf(&b, "  routable: %.1f%%; ring: %d missing near links (%d direct, %d tunneled)\n",
		r.RoutableFrac*100, r.MissingNear, r.DirectNear, r.TunnelNear)
	fmt.Fprintf(&b, "  tunnels: %d established, %d upgraded; relays: %d lost, %d reselected\n",
		r.TunnelsEstablished, r.TunnelsUpgraded, r.RelaysLost, r.RelaysReselected)
	if parallel {
		fmt.Fprintf(&b, "  probes (sym <-> sym overlay): %d/%d delivered\n", r.ProbesDelivered, r.ProbesSent)
		fmt.Fprintf(&b, "  build: %.1f s wall, %d events\n", r.BuildWallSec, r.EventsTotal)
		return b.String()
	}
	fmt.Fprintf(&b, "  vip ping (sym ws <-> sym ws): %d/%d\n", r.PingOK, r.PingsSent)
	fmt.Fprintf(&b, "  migration to public host: vip outage %.1f s\n", r.MigOutageSec)
	return b.String()
}

// RunSymmetricRing stands up an overlay whose every member save a handful
// of public routers sits behind its own symmetric NAT — the topology
// where no NATed pair can ever link directly — and verifies the ring
// still assembles (over tunnel edges through the public routers), routes
// VIP traffic end to end, and survives a workstation migration.
func RunSymmetricRing(opts SymRingOpts) (*SymRingResult, error) {
	opts.fillDefaults()
	if opts.parallel() {
		return runSymmetricRingParallel(opts)
	}
	s := sim.New(opts.Seed)
	net := phys.NewNetwork(s, phys.UniformLatency(
		phys.PathModel{OneWay: sim.Millisecond},
		phys.PathModel{OneWay: 15 * sim.Millisecond},
	))
	sites := make([]*phys.Site, 8)
	for i := range sites {
		sites[i] = net.AddSite(fmt.Sprintf("site%d", i))
	}
	w := core.New(s, core.Options{Shortcuts: true, Brunet: brunet.FastTestConfig()})

	for i := 0; i < opts.Routers; i++ {
		name := fmt.Sprintf("pub%02d", i)
		h := net.AddHost(name, sites[i%len(sites)], net.Root(), phys.HostConfig{})
		if _, err := w.AddRouter(h, name); err != nil {
			return nil, fmt.Errorf("sym-ring: %w", err)
		}
		s.RunFor(sim.Second)
	}

	// symHost places a fresh host behind its own symmetric NAT.
	symHost := func(name string, site *phys.Site) *phys.Host {
		nat := natsim.NewNAT(name+"-nat", natsim.Config{Type: natsim.Symmetric},
			net.Root().NextIP(), s.Now)
		realm := net.AddRealm(name, net.Root(), nat, phys.MustParseIP("10.0.0.2"))
		return net.AddHost(name+"-host", site, realm, phys.HostConfig{})
	}

	for i := 0; i < opts.Nodes; i++ {
		name := fmt.Sprintf("sym%03d", i)
		if _, err := w.AddRouter(symHost(name, sites[i%len(sites)]), name); err != nil {
			return nil, fmt.Errorf("sym-ring: %w", err)
		}
		s.RunFor(opts.JoinSpacing)
	}

	// Two virtual workstations, also behind symmetric NATs.
	ws := make([]*vm.VM, 2)
	for i := range ws {
		name := fmt.Sprintf("ws%d", i)
		v, err := w.AddWorkstation(symHost(name, sites[i]),
			mustVIP(fmt.Sprintf("172.16.1.%d", i+2)), vm.Spec{Name: name})
		if err != nil {
			return nil, fmt.Errorf("sym-ring: %w", err)
		}
		ws[i] = v
		s.RunFor(opts.JoinSpacing)
	}
	s.RunFor(opts.Settle)

	res := &SymRingResult{Seed: opts.Seed, Routers: opts.Routers, Nodes: opts.Nodes}

	// Collect every overlay member and audit the ring.
	var members []*brunet.Node
	for _, r := range w.Routers() {
		members = append(members, r.Overlay())
	}
	for _, v := range ws {
		members = append(members, v.Node().Overlay())
	}
	routable := 0
	for _, n := range members {
		if n.IsRoutable() {
			routable++
		}
		res.TunnelsEstablished += n.Stats.Get("tunnel.established")
		res.TunnelsUpgraded += n.Stats.Get("tunnel.upgraded")
		res.RelaysLost += n.Stats.Get("tunnel.relay_lost")
		res.RelaysReselected += n.Stats.Get("tunnel.relay_reselected")
	}
	res.RoutableFrac = float64(routable) / float64(len(members))
	sort.Slice(members, func(i, j int) bool { return members[i].Addr().Less(members[j].Addr()) })
	for i, n := range members {
		succ := members[(i+1)%len(members)]
		c := n.ConnectionTo(succ.Addr())
		switch {
		case c == nil || !c.Has(brunet.StructuredNear):
			res.MissingNear++
		case c.Tunneled():
			res.TunnelNear++
		default:
			res.DirectNear++
		}
	}

	// End-to-end VIP pings between the symmetric-NATed workstations.
	res.PingsSent = opts.Pings
	for i := 0; i < opts.Pings; i++ {
		if pingOK(s, ws[1], ws[0].IP()) {
			res.PingOK++
		}
	}

	// Migrate ws0 to a public host and measure the VIP outage.
	dst := net.AddHost("mig-dst", sites[0], net.Root(), phys.HostConfig{})
	start := s.Now()
	if err := w.Migrate(ws[0], dst, vm.MigrationConfig{TransferBps: 32 << 20, Graceful: true}, nil); err != nil {
		return nil, fmt.Errorf("sym-ring: migrate: %w", err)
	}
	res.MigOutageSec = -1
	for s.Now().Sub(start) < 5*sim.Minute {
		ok := false
		ws[1].Stack().Ping(ws[0].IP(), 64, sim.Second, func(o bool, _ sim.Duration) { ok = o })
		s.RunFor(1200 * sim.Millisecond)
		if ok {
			res.MigOutageSec = s.Now().Sub(start).Seconds()
			break
		}
	}
	return res, nil
}
