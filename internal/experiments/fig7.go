package experiments

import (
	"fmt"
	"strings"

	"wow/internal/middleware/nfs"
	"wow/internal/middleware/pbs"
	"wow/internal/sim"
	"wow/internal/testbed"
	"wow/internal/vm"
	"wow/internal/workloads"
)

// Fig7Opts parameterizes the PBS-job-stream-across-migration experiment
// of §V-C2.
type Fig7Opts struct {
	Seed int64
	// Jobs is how many sequential MEME jobs to stream through the
	// worker.
	Jobs int
	// LoadAtJob introduces background load on the worker's host at this
	// job index (the imbalance that motivates migrating).
	LoadAtJob int
	// MigrateAtJob starts the migration while this job runs (88 in the
	// paper's figure).
	MigrateAtJob int
	// HostLoad is the background load factor applied at LoadAtJob.
	HostLoad float64
	// TransferBps is the VM image copy rate.
	TransferBps float64
	// Routers / PlanetLabHosts size the overlay.
	Routers, PlanetLabHosts int
}

func (o *Fig7Opts) fillDefaults() {
	if o.Jobs == 0 {
		o.Jobs = 120
	}
	if o.LoadAtJob == 0 {
		o.LoadAtJob = 55
	}
	if o.MigrateAtJob == 0 {
		o.MigrateAtJob = 88
	}
	if o.HostLoad == 0 {
		o.HostLoad = 2.5
	}
	if o.TransferBps == 0 {
		o.TransferBps = 1.6 * (1 << 20)
	}
	if o.Routers == 0 {
		o.Routers = 118
	}
	if o.PlanetLabHosts == 0 {
		o.PlanetLabHosts = 20
	}
}

// Fig7Point is one job's execution record.
type Fig7Point struct {
	JobID       int
	WallSeconds float64
	// Phase annotates the experiment timeline: "baseline", "loaded",
	// "migrating" or "migrated".
	Phase string
}

// Fig7Result is the per-job execution-time profile around a worker
// migration.
type Fig7Result struct {
	Points []Fig7Point
	// Means per phase.
	BaselineMean, LoadedMean, MigratedMean float64
	// MigrationJobSeconds is the wall time of the job that was in
	// transit during migration (paper: stretched by hundreds of
	// seconds but completes).
	MigrationJobSeconds float64
	// AllSucceeded reports whether every job ran to completion and
	// committed output to NFS.
	AllSucceeded bool
}

// String renders the summary.
func (r *Fig7Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 7: PBS/MEME job stream across worker migration\n")
	fmt.Fprintf(&b, "  all jobs completed: %v\n", r.AllSucceeded)
	fmt.Fprintf(&b, "  baseline mean: %.1f s\n", r.BaselineMean)
	fmt.Fprintf(&b, "  loaded-host mean: %.1f s\n", r.LoadedMean)
	fmt.Fprintf(&b, "  in-transit job: %.0f s (stretched by the WAN migration latency)\n", r.MigrationJobSeconds)
	fmt.Fprintf(&b, "  post-migration mean: %.1f s (unloaded destination host)\n", r.MigratedMean)
	return b.String()
}

// RunFig7 reproduces §V-C2: a PBS head at UFL streams MEME jobs to a
// single worker VM at UFL; background load is added to the worker's host,
// then the VM is migrated to an unloaded host at NWU while a job runs.
// The in-flight job must complete (late), subsequent jobs speed up, and
// no application ever restarts.
func RunFig7(opts Fig7Opts) (*Fig7Result, error) {
	opts.fillDefaults()
	tb := testbed.Build(testbed.Config{
		Seed:           opts.Seed,
		Shortcuts:      true,
		Routers:        opts.Routers,
		PlanetLabHosts: opts.PlanetLabHosts,
		SettleTime:     5 * sim.Minute,
	})
	head := tb.VM("node002")
	worker := tb.VM("node003")

	nfsSrv, err := nfs.NewServer(head.Stack())
	if err != nil {
		return nil, fmt.Errorf("fig7: %w", err)
	}
	meme := workloads.DefaultMEME()
	nfsSrv.Put(meme.InputPath, meme.InputBytes)
	pbsHead, err := pbs.NewHead(head.Stack())
	if err != nil {
		return nil, fmt.Errorf("fig7: %w", err)
	}
	if _, err := pbs.NewMOM(worker, head.IP()); err != nil {
		return nil, fmt.Errorf("fig7: %w", err)
	}
	tb.Sim.RunFor(2 * sim.Minute) // registration + shortcut warmup

	res := &Fig7Result{AllSucceeded: true}
	var migErr error
	rng := tb.Sim.Rand()
	phase := "baseline"
	migrating := false

	var submit func(i int)
	submit = func(i int) {
		if i >= opts.Jobs {
			return
		}
		if i == opts.LoadAtJob {
			worker.SetHostLoad(opts.HostLoad)
			phase = "loaded"
		}
		if i == opts.MigrateAtJob {
			phase = "migrating"
			migrating = true
			// Migrate while the job is in flight: schedule just
			// after dispatch.
			tb.Sim.After(5*sim.Second, func() {
				dst := tb.NewHostAt("northwestern.edu")
				if err := worker.Migrate(dst, vm.MigrationConfig{TransferBps: opts.TransferBps}, func() {
					// Destination host is unloaded.
					worker.SetHostLoad(1)
				}); err != nil {
					migErr = fmt.Errorf("fig7: migrate: %w", err)
					tb.Sim.Stop()
				}
			})
		}
		p := phase
		pbsHead.OnJobDone(func(rec *pbs.JobRecord) {
			if !rec.OK {
				res.AllSucceeded = false
			}
			if migrating && p == "migrating" {
				res.MigrationJobSeconds = rec.WallSeconds()
				migrating = false
				phase = "migrated"
			}
			res.Points = append(res.Points, Fig7Point{JobID: i + 1, WallSeconds: rec.WallSeconds(), Phase: p})
			submit(i + 1)
		})
		pbsHead.Submit(meme.Job(i+1, rng))
	}
	submit(0)

	deadline := tb.Sim.Now().Add(12 * sim.Hour)
	for len(res.Points) < opts.Jobs && migErr == nil && tb.Sim.Now() < deadline {
		tb.Sim.RunFor(sim.Minute)
	}
	if migErr != nil {
		return nil, migErr
	}
	if len(res.Points) < opts.Jobs {
		res.AllSucceeded = false
	}

	var base, loaded, migrated []float64
	for _, p := range res.Points {
		switch p.Phase {
		case "baseline":
			base = append(base, p.WallSeconds)
		case "loaded":
			loaded = append(loaded, p.WallSeconds)
		case "migrated":
			migrated = append(migrated, p.WallSeconds)
		}
	}
	res.BaselineMean = mean(base)
	res.LoadedMean = mean(loaded)
	res.MigratedMean = mean(migrated)
	return res, nil
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
