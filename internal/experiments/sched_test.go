package experiments

import "testing"

func TestSchedulerComparison(t *testing.T) {
	r, err := RunSchedulerComparison(1, 150)
	if err != nil {
		t.Fatal(err)
	}
	if r.PBSJobsPerMinute <= 0 || r.CondorJobsPerMinute <= 0 {
		t.Fatalf("legs incomplete: %+v", r)
	}
	// Condor's negotiation cycle adds matchmaking latency PBS doesn't
	// have.
	if r.CondorMatchLatency <= 0.5 {
		t.Errorf("match latency %.2fs; negotiation cycles should be visible", r.CondorMatchLatency)
	}
	// Both move the stream at the same order of magnitude.
	if r.CondorJobsPerMinute < r.PBSJobsPerMinute/4 {
		t.Errorf("condor throughput %.1f << pbs %.1f", r.CondorJobsPerMinute, r.PBSJobsPerMinute)
	}
}
