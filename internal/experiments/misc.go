package experiments

import (
	"fmt"
	"math"

	"wow/internal/brunet"
	"wow/internal/metrics"
	"wow/internal/sim"
	"wow/internal/testbed"
)

// OutageOpts parameterizes the §V-C IPOP kill/restart measurement.
type OutageOpts struct {
	Seed int64
	// Trials of kill+restart.
	Trials int
	// Conservative selects the paper-era conservative keepalive
	// constants (slow stale-state detection, the origin of the paper's
	// ~8 minute no-routability window); false uses this library's
	// defaults.
	Conservative bool
	// Routers / PlanetLabHosts size the overlay; with the 33 VMs this
	// gives the paper's "150-node network".
	Routers, PlanetLabHosts int
}

func (o *OutageOpts) fillDefaults() {
	if o.Trials == 0 {
		o.Trials = 5
	}
	if o.Routers == 0 {
		o.Routers = 118
	}
	if o.PlanetLabHosts == 0 {
		o.PlanetLabHosts = 20
	}
}

// OutageResult is the measured no-routability window after killing and
// restarting the user-level IPOP process with no VM movement.
type OutageResult struct {
	Conservative bool
	// Seconds per trial from kill to the first successful virtual ping
	// after restart (restart is immediate).
	Seconds []float64
	Summary metrics.Summary
}

// String renders the measurement.
func (r *OutageResult) String() string {
	mode := "library defaults"
	if r.Conservative {
		mode = "paper-conservative keepalives"
	}
	return fmt.Sprintf("§V-C no-routability window after IPOP kill+restart (%s): mean %.0f s, max %.0f s over %d trials\n"+
		"  (the paper reports ~480 s; this implementation re-links stale ring state on rejoin,\n"+
		"   so bare restarts heal in seconds — the paper-scale outage appears in Figure 6,\n"+
		"   where the VM image transfer dominates)\n",
		mode, r.Summary.Mean, r.Summary.Max, r.Summary.N)
}

// RunOutage measures the §V-C scenario: kill and immediately restart the
// user-level IPOP process on a ~150-node overlay and time the
// no-routability window. The paper observed ~8 minutes; this
// implementation's linking protocol adopts fresh endpoints when a known
// address re-links (Connection relink semantics), so the window here is
// seconds — an implementation improvement the experiment quantifies
// rather than hides. The paper-sized outage is reproduced end-to-end in
// RunFig6, where suspend/transfer/resume dominates.
func RunOutage(opts OutageOpts) (*OutageResult, error) {
	opts.fillDefaults()
	cfg := testbed.Config{
		Seed:           opts.Seed,
		Shortcuts:      true,
		Routers:        opts.Routers,
		PlanetLabHosts: opts.PlanetLabHosts,
		SettleTime:     5 * sim.Minute,
	}
	if opts.Conservative {
		cfg.Brunet = brunet.DefaultConfig()
		cfg.Brunet.PingInterval = 2 * sim.Minute
		cfg.Brunet.PingTimeout = 15 * sim.Second
		cfg.Brunet.PingRetries = 4
	}
	tb := testbed.Build(cfg)
	victim := tb.VM("node003")
	prober := tb.VM("node017")

	res := &OutageResult{Conservative: opts.Conservative}
	for trial := 0; trial < opts.Trials; trial++ {
		// Kill and immediately restart the IPOP process (§V-C: "by
		// simply killing and restarting the user-level IPOP
		// program").
		victim.Node().Stop()
		killAt := tb.Sim.Now()
		if err := victim.Node().Start(tb.Boot()); err != nil {
			return nil, fmt.Errorf("outage: restart: %w", err)
		}

		recovered := math.NaN()
		tk := tb.Sim.Tick(sim.Second, 0, func() {
			if !math.IsNaN(recovered) {
				return
			}
			prober.Stack().Ping(victim.IP(), 64, 900*sim.Millisecond, func(ok bool, _ sim.Duration) {
				if ok && math.IsNaN(recovered) {
					recovered = tb.Sim.Now().Sub(killAt).Seconds()
				}
			})
		})
		tb.Sim.RunFor(30 * sim.Minute)
		tk.Stop()
		if math.IsNaN(recovered) {
			recovered = 30 * 60 // censored at the window
		}
		res.Seconds = append(res.Seconds, recovered)
		tb.Sim.RunFor(5 * sim.Minute) // settle before next trial
	}
	res.Summary = metrics.Summarize(res.Seconds)
	return res, nil
}

// VirtOverheadResult is the §V-D1 virtualization overhead check.
type VirtOverheadResult struct {
	// VirtualSeconds / PhysicalSeconds are wall times for the same MEME
	// job inside a WOW VM and on the bare host model.
	VirtualSeconds, PhysicalSeconds float64
	// OverheadPct is the relative slowdown (paper: ~13%).
	OverheadPct float64
}

// String renders the check.
func (r *VirtOverheadResult) String() string {
	return fmt.Sprintf("§V-D1 virtualization overhead: %.1f%% (virtual %.1f s vs physical %.1f s; paper: ~13%%)\n",
		r.OverheadPct, r.VirtualSeconds, r.PhysicalSeconds)
}

// RunVirtOverhead measures the virtual/physical wall-time ratio of a MEME
// job. The 13% is a calibrated model parameter (vm.Spec.VirtOverhead);
// this experiment verifies it propagates to application wall time
// end-to-end rather than re-deriving it.
func RunVirtOverhead(seed int64) *VirtOverheadResult {
	run := func(overhead float64) float64 {
		tb := testbed.Build(testbed.Config{
			Seed: seed, Shortcuts: true, Routers: 12, PlanetLabHosts: 4,
			SettleTime: 2 * sim.Minute,
		})
		v := tb.VM("node002")
		spec := v.Spec()
		_ = spec
		// Re-create a VM-like executor with the chosen overhead by
		// timing a job scaled accordingly: Execute charges
		// CPU × VirtOverhead / speed.
		start := tb.Sim.Now()
		var doneAt sim.Time
		cpu := 100 * sim.Second
		if overhead == 1.0 {
			// Model the bare host: divide out the VM's overhead.
			cpu = sim.Duration(float64(cpu) / spec.VirtOverhead)
		}
		v.Execute(cpu, func() { doneAt = tb.Sim.Now() })
		tb.Sim.RunFor(sim.Hour)
		return doneAt.Sub(start).Seconds()
	}
	virtual := run(1.13)
	physical := run(1.0)
	return &VirtOverheadResult{
		VirtualSeconds:  virtual,
		PhysicalSeconds: physical,
		OverheadPct:     100 * (virtual - physical) / physical,
	}
}
