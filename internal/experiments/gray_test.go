package experiments

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// graySeriesDigest renders the per-window series byte-exactly for golden
// comparison.
func graySeriesDigest(r *GrayResult) string {
	var b strings.Builder
	for _, p := range r.Series {
		fmt.Fprintf(&b, "w%d routable=%.3f false=%d confirmed=%d deaths=%d detect=%.0fms events=%d\n",
			p.Window, p.RoutableFrac, p.FalseSuspects, p.Confirmed, p.Deaths, p.MeanDetectMs, p.Events)
	}
	return b.String()
}

// TestGrayAdaptiveDominates is the headline acceptance run: under the
// identical seed and fault schedule, the adaptive detector must strictly
// dominate the fixed one — faster crash detection, fewer false suspicions
// under sustained jitter + flap — with both ending fully routable.
func TestGrayAdaptiveDominates(t *testing.T) {
	cmp, err := RunGrayCompare(GrayOpts{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.Dominates {
		t.Fatalf("adaptive does not dominate fixed:\n%s", cmp)
	}
	for _, r := range []*GrayResult{cmp.Fixed, cmp.Adaptive} {
		if r.FinalRoutable != 1 {
			t.Errorf("%s detector ended %.1f%% routable, want 100%%", r.Detector, r.FinalRoutable*100)
		}
		if len(r.Series) != r.Windows {
			t.Errorf("%s detector: %d series points, want %d", r.Detector, len(r.Series), r.Windows)
		}
		for _, k := range r.Kills {
			if k.DetectSec < 0 {
				t.Errorf("%s detector never fully forgot crashed %s", r.Detector, k.Node)
			}
		}
		if r.Confirmed == 0 {
			t.Errorf("%s detector confirmed no forwarded suspicions", r.Detector)
		}
	}
	if cmp.Adaptive.MeanDetectSec >= cmp.Fixed.MeanDetectSec {
		t.Errorf("adaptive detection %.1fs not below fixed %.1fs",
			cmp.Adaptive.MeanDetectSec, cmp.Fixed.MeanDetectSec)
	}
	if cmp.Adaptive.FalseSuspects >= cmp.Fixed.FalseSuspects {
		t.Errorf("adaptive false suspicions %d not below fixed %d",
			cmp.Adaptive.FalseSuspects, cmp.Fixed.FalseSuspects)
	}
	if !strings.Contains(cmp.String(), "dominates: true") {
		t.Errorf("verdict line missing:\n%s", cmp)
	}
}

// Golden pins for the seed-5 adaptive run: the fault timeline and the
// per-window series are byte-exact functions of the seed, so drift here
// means a liveness or scheduling decision changed.
const goldenGrayTimelineSeed5 = "t=186.400s jitter begin\n" +
	"t=186.400s flap begin\n" +
	"t=231.400s crash 55cd6c56\n" +
	"t=261.400s crash ff24bc48\n" +
	"t=291.400s crash 009bac2a\n" +
	"t=426.400s jitter end\n" +
	"t=426.400s flap end\n"

const goldenGraySeriesSeed5 = "w0 routable=1.000 false=345 confirmed=45 deaths=86 detect=6029ms events=83983\n" +
	"w1 routable=1.000 false=293 confirmed=33 deaths=69 detect=7557ms events=104198\n" +
	"w2 routable=1.000 false=319 confirmed=20 deaths=43 detect=8063ms events=124637\n" +
	"w3 routable=1.000 false=314 confirmed=15 deaths=59 detect=9687ms events=145489\n" +
	"w4 routable=1.000 false=284 confirmed=19 deaths=43 detect=8892ms events=166153\n" +
	"w5 routable=1.000 false=370 confirmed=17 deaths=54 detect=9566ms events=187208\n" +
	"w6 routable=1.000 false=326 confirmed=20 deaths=50 detect=9532ms events=206677\n" +
	"w7 routable=1.000 false=364 confirmed=20 deaths=51 detect=9491ms events=226566\n"

const goldenGraySummarySeed5 = "Gray failures: 32 nodes / 8 sites, adaptive detector, seed 5\n" +
	"  crashes: 3, mean detection 9.7 s\n" +
	"  false suspicions: 2656 (confirmed: 189, deaths: 455)\n" +
	"  final routability: 100.0%\n"

func TestGoldenSeedGray(t *testing.T) {
	r, err := RunGrayFailures(GrayOpts{Seed: 5, Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Timeline != goldenGrayTimelineSeed5 {
		t.Errorf("gray seed-5 fault timeline drifted; %s",
			diffLine(r.Timeline, goldenGrayTimelineSeed5))
	}
	if got := graySeriesDigest(r); got != goldenGraySeriesSeed5 {
		t.Errorf("gray seed-5 series drifted; %s", diffLine(got, goldenGraySeriesSeed5))
	}
	if got := r.String(); got != goldenGraySummarySeed5 {
		t.Errorf("gray seed-5 summary drifted; %s", diffLine(got, goldenGraySummarySeed5))
	}
}

// grayOutcome strips the fields that legitimately vary between equivalent
// runs (wall clocks, engine provenance), leaving the simulation-determined
// outcome.
func grayOutcome(r *GrayResult) GrayResult {
	c := *r
	c.WallSec = 0
	c.Shards, c.Workers = 0, 0
	c.Series = append([]GrayPoint(nil), r.Series...)
	for i := range c.Series {
		c.Series[i].WallSec = 0
	}
	return c
}

// TestQuickGrayShardedEquivalence follows the TestQuickShardedNATEquivalence
// pattern at overlay scale: for arbitrary seeds, the serial engine and the
// 1-shard parallel engine produce the identical run — every counter, every
// series point, the total event count — and a multi-shard run is
// worker-invariant down to event totals. (Across different shard counts
// the engine's contract is determinism in (seed, shards), not trace
// equality: cross-shard ties break on source-shard index, so each shard
// count is its own reproducible execution.)
func TestQuickGrayShardedEquivalence(t *testing.T) {
	small := func(seed int64, shards, workers int) *GrayResult {
		opts := GrayOpts{Seed: seed, Nodes: 16, Sites: 4, Windows: 3,
			WindowLen: SettleSeconds(20), Settle: SettleSeconds(60), Kills: 2,
			Shards: shards, Workers: workers}
		r, err := RunGrayFailures(opts)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	f := func(rawSeed uint8) bool {
		seed := int64(rawSeed)%5 + 1
		serial := grayOutcome(small(seed, 0, 0))
		one := grayOutcome(small(seed, 1, 1))
		if !reflect.DeepEqual(serial, one) {
			t.Logf("seed %d: serial vs 1-shard:\nserial: %+v\n1shard: %+v", seed, serial, one)
			return false
		}
		two1 := small(seed, 2, 1)
		two2 := small(seed, 2, 2)
		if two1.EventsTotal != two2.EventsTotal {
			t.Logf("seed %d: worker-variant event totals: %d vs %d", seed, two1.EventsTotal, two2.EventsTotal)
			return false
		}
		ka, kb := grayOutcome(two1), grayOutcome(two2)
		if !reflect.DeepEqual(ka, kb) {
			t.Logf("seed %d: worker-variant outcome:\n1 worker:  %+v\n2 workers: %+v", seed, ka, kb)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4}); err != nil {
		t.Fatal(err)
	}
}

// TestGrayShardedRun: the multi-shard run itself must satisfy the same
// health bar as the serial one — full end routability, every crash
// detected, a complete series.
func TestGrayShardedRun(t *testing.T) {
	r, err := RunGrayFailures(GrayOpts{Seed: 5, Adaptive: true, Shards: 4, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r.FinalRoutable != 1 {
		t.Errorf("sharded run ended %.1f%% routable", r.FinalRoutable*100)
	}
	for _, k := range r.Kills {
		if k.DetectSec < 0 {
			t.Errorf("sharded run never forgot crashed %s", k.Node)
		}
	}
	if r.Shards != 4 {
		t.Errorf("result records %d shards, want 4", r.Shards)
	}
	if len(r.Series) != r.Windows {
		t.Errorf("%d series points, want %d", len(r.Series), r.Windows)
	}
	if !strings.Contains(r.String(), "parallel: 4 shards") {
		t.Errorf("String() missing parallel provenance:\n%s", r)
	}
}
