package experiments

import (
	"math"
	"strings"
	"testing"

	"wow/internal/sim"
)

// These tests assert the paper-shape properties at reduced scale; the
// benchmarks in the repository root run the full-size versions.

func TestJoinProfileShapes(t *testing.T) {
	opts := JoinOpts{Seed: 1, Trials: 4, Pings: 260}
	profiles := map[string]*JoinProfile{}
	for _, sc := range Fig4Scenarios() {
		profiles[sc.Name] = RunJoinProfile(opts, sc)
	}

	for name, p := range profiles {
		// Regime 1: early loss, then clean.
		early := p.LossPct[0] + p.LossPct[1] + p.LossPct[2]
		if early == 0 {
			t.Errorf("%s: no regime-1 loss at all", name)
		}
		var late float64
		for _, l := range p.LossPct[100:200] {
			late += l
		}
		if late/100 > 5 {
			t.Errorf("%s: steady-state loss %.1f%% too high", name, late/100)
		}
		if s := p.String(); !strings.Contains(s, "Figure 4") {
			t.Errorf("%s: String() malformed", name)
		}
	}

	// Figure 4's scenario ordering: NWU-NWU and UFL-NWU adapt fast
	// (~tens of seconds); UFL-UFL is delayed to ~200s by the hairpin-
	// blocked first URI.
	_, uflufl := profiles["UFL-UFL"].Regimes()
	_, uflnwu := profiles["UFL-NWU"].Regimes()
	_, nwunwu := profiles["NWU-NWU"].Regimes()
	if uflnwu > 60 || nwunwu > 60 {
		t.Errorf("fast scenarios too slow: UFL-NWU=%d NWU-NWU=%d", uflnwu, nwunwu)
	}
	if uflufl < 120 || uflufl > 260 {
		t.Errorf("UFL-UFL shortcut at seq %d, want ~150-220 (paper ~200)", uflufl)
	}

	// Direct-path RTTs after adaptation: UFL-NWU ~38ms, NWU-NWU ~2ms.
	lastRTT := func(p *JoinProfile) float64 {
		for i := len(p.RTTms) - 1; i >= 0; i-- {
			if !math.IsNaN(p.RTTms[i]) {
				return p.RTTms[i]
			}
		}
		return math.NaN()
	}
	if r := lastRTT(profiles["UFL-NWU"]); r < 30 || r > 60 {
		t.Errorf("UFL-NWU steady RTT %.1fms, want ~38-45", r)
	}
	if r := lastRTT(profiles["NWU-NWU"]); r > 10 {
		t.Errorf("NWU-NWU steady RTT %.1fms, want LAN-scale", r)
	}
}

func TestJoinStatsMeetsClaims(t *testing.T) {
	st := RunJoinStats(JoinOpts{Seed: 2, Trials: 12})
	if st.PctRoutable10s < 90 {
		t.Errorf("routable within 10s: %.0f%%, paper claims 90%%", st.PctRoutable10s)
	}
	if st.PctShortcut200s < 99 {
		t.Errorf("direct within 200s: %.0f%%, paper claims >99%%", st.PctShortcut200s)
	}
	if !strings.Contains(st.String(), "Join latency") {
		t.Error("String malformed")
	}
}

func TestTable2Shape(t *testing.T) {
	res, err := RunTable2(Table2Opts{Seed: 1, Sizes: []int64{8 << 20}, Repeats: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range []string{"UFL-UFL", "UFL-NWU"} {
		on := res.Cell(sc, true)
		off := res.Cell(sc, false)
		if on == nil || off == nil {
			t.Fatalf("%s: missing cells", sc)
		}
		// The paper's headline: direct connections are an order of
		// magnitude faster (19x and 15x).
		if on.MeanKBs < 8*off.MeanKBs {
			t.Errorf("%s: shortcut %0.f KB/s vs multihop %.0f KB/s; want >=8x", sc, on.MeanKBs, off.MeanKBs)
		}
	}
	// UFL-UFL direct is LAN: faster than the WAN-window-limited UFL-NWU.
	if res.Cell("UFL-UFL", true).MeanKBs <= res.Cell("UFL-NWU", true).MeanKBs {
		t.Error("UFL-UFL direct should beat UFL-NWU direct")
	}
	// Absolute calibration: within 2x of the paper's numbers.
	if v := res.Cell("UFL-UFL", true).MeanKBs; v < 800 || v > 3200 {
		t.Errorf("UFL-UFL shortcut %.0f KB/s, paper 1614", v)
	}
	if v := res.Cell("UFL-NWU", false).MeanKBs; v < 40 || v > 170 {
		t.Errorf("UFL-NWU multihop %.0f KB/s, paper 85", v)
	}
	if !strings.Contains(res.String(), "Table II") {
		t.Error("String malformed")
	}
}

func TestFig6Shape(t *testing.T) {
	res, err := RunFig6(Fig6Opts{Seed: 1, FileBytes: 256 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("transfer did not survive the migration")
	}
	// Stall ≈ image transfer time (768MB at 1.6MB/s = 480s) ± repair.
	if res.StallSeconds < 300 || res.StallSeconds > 700 {
		t.Errorf("stall %.0fs, want ~480s", res.StallSeconds)
	}
	if res.PreMBs < 0.8 || res.PreMBs > 2 {
		t.Errorf("pre-migration rate %.2f MB/s, paper 1.36", res.PreMBs)
	}
	if res.PostMBs <= 0 {
		t.Error("no post-migration progress measured")
	}
	if res.Progress.Len() == 0 {
		t.Error("no progress series")
	}
}

func TestFig7Shape(t *testing.T) {
	res, err := RunFig7(Fig7Opts{Seed: 1, Jobs: 110})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllSucceeded {
		t.Fatal("a job failed")
	}
	if res.LoadedMean < 1.5*res.BaselineMean {
		t.Errorf("load did not stretch jobs: baseline %.1f loaded %.1f", res.BaselineMean, res.LoadedMean)
	}
	if res.MigrationJobSeconds < 300 {
		t.Errorf("in-transit job %.0fs; the WAN migration should stretch it by hundreds of seconds", res.MigrationJobSeconds)
	}
	if res.MigratedMean > 1.3*res.BaselineMean {
		t.Errorf("post-migration jobs %.1fs did not recover to baseline %.1fs", res.MigratedMean, res.BaselineMean)
	}
	if len(res.Points) != 110 {
		t.Errorf("points = %d", len(res.Points))
	}
}

func TestFig8Shape(t *testing.T) {
	on, err := RunFig8(Fig8Opts{Seed: 1, Jobs: 250, Shortcuts: true})
	if err != nil {
		t.Fatal(err)
	}
	off, err := RunFig8(Fig8Opts{Seed: 1, Jobs: 250, Shortcuts: false})
	if err != nil {
		t.Fatal(err)
	}
	if on.Failed > 0 || off.Failed > 0 {
		t.Fatalf("failures: on=%d off=%d", on.Failed, off.Failed)
	}
	if on.JobsPerMinute <= off.JobsPerMinute {
		t.Errorf("shortcuts did not improve throughput: %.1f vs %.1f jobs/min", on.JobsPerMinute, off.JobsPerMinute)
	}
	if on.MeanSeconds >= off.MeanSeconds {
		t.Errorf("shortcuts did not shorten jobs: %.1f vs %.1f s", on.MeanSeconds, off.MeanSeconds)
	}
	if on.StdSeconds >= off.StdSeconds {
		t.Errorf("shortcuts did not tighten the distribution: std %.1f vs %.1f", on.StdSeconds, off.StdSeconds)
	}
	// Calibration: with shortcuts ~53 jobs/min and ~24s mean.
	if on.JobsPerMinute < 40 || on.JobsPerMinute > 60 {
		t.Errorf("shortcut throughput %.1f jobs/min, paper 53", on.JobsPerMinute)
	}
	if on.MeanSeconds < 20 || on.MeanSeconds > 32 {
		t.Errorf("shortcut job mean %.1fs, paper 24.1", on.MeanSeconds)
	}
	// The slow ncgrid node runs well under its fair 3% share (paper 1.6%).
	if share := on.JobShare["node032"]; share > 0.03 {
		t.Errorf("node032 share %.1f%%, want well under 3%%", share*100)
	}
}

func TestTable3Shape(t *testing.T) {
	opts := Table3Opts{Seed: 1}
	opts.fillDefaults()
	opts.Workload.SeqCPU = opts.Workload.SeqCPU / 8 // scale down for test speed
	res, err := RunTable3(opts)
	if err != nil {
		t.Fatal(err)
	}
	ratio := res.SeqNode034 / res.SeqNode002
	if ratio < 1.9 || ratio > 2.2 {
		t.Errorf("node034/node002 sequential ratio %.2f, paper 2.03", ratio)
	}
	// At 1/8 CPU scale communication weighs more, so only the robust
	// orderings are asserted: 30-with-shortcuts beats both other
	// parallel configs (the full-scale benchmark checks the paper's
	// complete ordering).
	s15 := res.Speedup(res.Par15Shortcut)
	s30n := res.Speedup(res.Par30NoShortcut)
	s30 := res.Speedup(res.Par30Shortcut)
	if !(s30 > s30n && s30 > s15) {
		t.Errorf("speedup ordering broken: 15sc=%.1f 30nosc=%.1f 30sc=%.1f", s15, s30n, s30)
	}
	// Full scale yields ~16x (paper 13.6); at 1/8 scale the fixed round
	// synchronization costs weigh ~8x heavier, so the bound is loose.
	if s30 < 7 || s30 > 22 {
		t.Errorf("30-node speedup %.1f, paper 13.6", s30)
	}
	if !strings.Contains(res.String(), "Table III") {
		t.Error("String malformed")
	}
}

func TestOutageRecovery(t *testing.T) {
	res, err := RunOutage(OutageOpts{Seed: 1, Trials: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Max > 120 {
		t.Errorf("restart recovery %.0fs; this implementation should heal in seconds", res.Summary.Max)
	}
	if !strings.Contains(res.String(), "no-routability") {
		t.Error("String malformed")
	}
}

func TestVirtOverheadIs13Pct(t *testing.T) {
	res := RunVirtOverhead(1)
	if res.OverheadPct < 12 || res.OverheadPct > 14 {
		t.Errorf("overhead %.1f%%, want ~13%%", res.OverheadPct)
	}
}

func TestFarCountAblationMonotone(t *testing.T) {
	res := RunFarCountAblation(AblationOpts{Seed: 1, Routers: 60, PlanetLabHosts: 10}, []int{2, 8})
	if len(res.Points) != 2 {
		t.Fatal("points")
	}
	if res.Points[1].AvgHops >= res.Points[0].AvgHops {
		t.Errorf("more far connections should mean fewer hops: k=2 %.2f vs k=8 %.2f",
			res.Points[0].AvgHops, res.Points[1].AvgHops)
	}
	if res.Points[1].ConnsPerNode <= res.Points[0].ConnsPerNode {
		t.Error("more far connections should cost more state")
	}
}

func TestThresholdAblationMonotone(t *testing.T) {
	res := RunThresholdAblation(AblationOpts{Seed: 1, Routers: 40, PlanetLabHosts: 8}, []float64{5, 60})
	if len(res.Points) != 2 {
		t.Fatal("points")
	}
	lo, hi := res.Points[0].AdaptSeconds, res.Points[1].AdaptSeconds
	if math.IsNaN(lo) || math.IsNaN(hi) {
		t.Fatalf("adaptation never happened: %v %v", lo, hi)
	}
	if hi <= lo {
		t.Errorf("higher threshold should adapt slower: th=5 %.0fs vs th=60 %.0fs", lo, hi)
	}
}

func TestURIOrderAblation(t *testing.T) {
	res := RunURIOrderAblation(AblationOpts{Seed: 1}, 3)
	// Private-first fixes the UFL-UFL delay; public-first burns ~150s on
	// the hairpin-blocked URI.
	if res.PrivateFirstSeconds >= res.PublicFirstSeconds {
		t.Errorf("private-first (%.0fs) should beat public-first (%.0fs) for same-site pairs",
			res.PrivateFirstSeconds, res.PublicFirstSeconds)
	}
	if res.PublicFirstSeconds < 100 {
		t.Errorf("public-first %.0fs; should show the ~150s hairpin penalty", res.PublicFirstSeconds)
	}
}

func TestRingSizeAblation(t *testing.T) {
	res := RunRingSizeAblation(AblationOpts{Seed: 1}, []int{24, 60}, 3)
	for _, p := range res.Points {
		if p.MedianRoutable > 15 {
			t.Errorf("n=%d: joins should stay fast (got %.0fs)", p.Routers, p.MedianRoutable)
		}
	}
	if !strings.Contains(res.String(), "overlay size") {
		t.Error("String malformed")
	}
}

func TestFig6StallDetectionHelpers(t *testing.T) {
	// Degenerate option handling.
	var o Fig6Opts
	o.fillDefaults()
	if o.FileBytes != 720<<20 || o.MigrateAt != 200*sim.Second {
		t.Fatalf("defaults: %+v", o)
	}
	var jo JoinOpts
	jo.fillDefaults()
	if jo.Trials != 100 || jo.Pings != 400 || jo.Routers != 118 {
		t.Fatalf("join defaults: %+v", jo)
	}
}
