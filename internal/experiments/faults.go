package experiments

import (
	"fmt"
	"strings"

	"wow/internal/brunet"
	"wow/internal/faults"
	"wow/internal/metrics"
	"wow/internal/sim"
	"wow/internal/testbed"
	"wow/internal/vm"
)

// liveOverlays returns the running Brunet nodes of every router and
// workstation in the testbed.
func liveOverlays(tb *testbed.Testbed) []*brunet.Node {
	var out []*brunet.Node
	for _, r := range tb.Routers() {
		if bn := r.Overlay(); bn != nil && bn.Up() {
			out = append(out, bn)
		}
	}
	for _, v := range tb.VMs {
		if bn := v.Node().Overlay(); bn != nil && bn.Up() {
			out = append(out, bn)
		}
	}
	return out
}

// snapshotRecovery merges every live node's protocol counters into one
// fleet-wide view.
func snapshotRecovery(tb *testbed.Testbed) metrics.Counter {
	var c metrics.Counter
	for _, bn := range liveOverlays(tb) {
		c.Merge(&bn.Stats)
	}
	return c
}

// recoveryDelta reports how much each recovery counter grew between two
// snapshots, clamped at zero (a node restarted in between resets its own
// counts).
func recoveryDelta(before, after metrics.Counter) metrics.Counter {
	var d metrics.Counter
	for _, name := range metrics.RecoveryNames {
		if v := after.Get(name) - before.Get(name); v > 0 {
			d.Inc(name, v)
		}
	}
	return d
}

// ringClosedAround reports whether the overlay has fully repaired the ring
// around a departed node's address: no live node still holds a connection
// to it, and the departed node's closest live ring neighbors hold a
// structured-near link to each other (the hole is closed).
func ringClosedAround(tb *testbed.Testbed, gone brunet.Addr) bool {
	nodes := liveOverlays(tb)
	var pred, succ *brunet.Node
	var predD, succD brunet.Addr
	for _, bn := range nodes {
		if bn.ConnectionTo(gone) != nil {
			return false // stale connection state survives
		}
		cw := bn.Addr().Clockwise(gone)
		ccw := gone.Clockwise(bn.Addr())
		if pred == nil || cw.Less(predD) {
			pred, predD = bn, cw
		}
		if succ == nil || ccw.Less(succD) {
			succ, succD = bn, ccw
		}
	}
	if pred == nil || pred == succ {
		return true
	}
	c := pred.ConnectionTo(succ.Addr())
	return c != nil && c.Has(brunet.StructuredNear)
}

// renderTimeline appends the injector's fault timeline to a report.
func renderTimeline(b *strings.Builder, tl []faults.TimelineEntry) {
	b.WriteString("  fault timeline:\n")
	for _, e := range tl {
		fmt.Fprintf(b, "    %s\n", e)
	}
}

// MigrationOutageOpts parameterizes the graceful-vs-cold §V-C comparison.
type MigrationOutageOpts struct {
	Seed int64
	// TransferBps is the VM image copy rate; the default 2 MB/s keeps
	// the transfer much longer than the baseline detection window, so
	// the window is measured cleanly before the node reappears.
	TransferBps float64
	// Routers / PlanetLabHosts size the overlay.
	Routers, PlanetLabHosts int
}

func (o *MigrationOutageOpts) fillDefaults() {
	if o.TransferBps == 0 {
		o.TransferBps = 2 << 20
	}
	if o.Routers == 0 {
		o.Routers = 40
	}
	if o.PlanetLabHosts == 0 {
		o.PlanetLabHosts = 8
	}
}

// MigrationOutageResult compares the ring-repair window of a cold IPOP
// kill (the paper's §V-C migration procedure) against a graceful leave
// with ring handoff. The window is the time from the kill until no live
// node retains a connection to the departed address and its ring
// neighbors are linked to each other — the interval during which greedy
// routing around that address is degraded. (The end-to-end VIP outage of
// Figure 6 is dominated by the image transfer either way; the window here
// isolates the overlay's contribution.)
type MigrationOutageResult struct {
	// BaselineWindowSec / GracefulWindowSec are the measured windows;
	// negative when the ring never closed before the node returned.
	BaselineWindowSec, GracefulWindowSec float64
	// Baseline / Graceful attribute the repair work: the baseline heals
	// via ping timeouts, fast probes and re-links, the graceful path via
	// leave handoffs.
	Baseline, Graceful metrics.RecoveryReport
}

// String renders the comparison.
func (r *MigrationOutageResult) String() string {
	var b strings.Builder
	b.WriteString("§V-C migration: overlay ring-repair window after IPOP shutdown\n")
	fmt.Fprintf(&b, "  cold kill (peers time out):  %6.1f s\n", r.BaselineWindowSec)
	fmt.Fprintf(&b, "  graceful leave (handoff):    %6.1f s\n", r.GracefulWindowSec)
	b.WriteString(r.Baseline.String())
	b.WriteString(r.Graceful.String())
	return b.String()
}

// RunMigrationOutage runs the §V-C migration twice — once killing IPOP
// cold as the paper did, once departing gracefully — and measures the
// overlay ring-repair window in each mode.
func RunMigrationOutage(opts MigrationOutageOpts) (*MigrationOutageResult, error) {
	opts.fillDefaults()
	res := &MigrationOutageResult{}
	for _, graceful := range []bool{false, true} {
		window, report, err := runMigrationWindow(opts, graceful)
		if err != nil {
			return nil, err
		}
		if graceful {
			res.GracefulWindowSec = window
			res.Graceful = report
		} else {
			res.BaselineWindowSec = window
			res.Baseline = report
		}
	}
	return res, nil
}

func runMigrationWindow(opts MigrationOutageOpts, graceful bool) (float64, metrics.RecoveryReport, error) {
	scenario := "migration-cold"
	if graceful {
		scenario = "migration-graceful"
	}
	report := metrics.RecoveryReport{Scenario: scenario, RecoverySec: -1}

	tb := testbed.Build(testbed.Config{
		Seed:           opts.Seed,
		Shortcuts:      true,
		Routers:        opts.Routers,
		PlanetLabHosts: opts.PlanetLabHosts,
		SettleTime:     5 * sim.Minute,
	})
	victim := tb.VM("node003")
	victimAddr := victim.Node().Addr()
	dst := tb.NewHostAt("northwestern.edu")

	before := snapshotRecovery(tb)
	killAt := tb.Sim.Now()
	cfg := vm.MigrationConfig{TransferBps: opts.TransferBps, Graceful: graceful}
	if err := victim.Migrate(dst, cfg, nil); err != nil {
		return -1, report, fmt.Errorf("%s: %w", scenario, err)
	}

	window := -1.0
	for tb.Sim.Now().Sub(killAt) < 20*sim.Minute {
		tb.Sim.RunFor(sim.Second)
		if victim.Node().Up() {
			break // node restarted at the destination; window censored
		}
		if ringClosedAround(tb, victimAddr) {
			window = tb.Sim.Now().Sub(killAt).Seconds()
			break
		}
	}
	report.RecoverySec = window
	report.Counters = recoveryDelta(before, snapshotRecovery(tb))
	return window, report, nil
}

// PartitionHealOpts parameterizes the partition-and-repair experiment.
type PartitionHealOpts struct {
	Seed int64
	// PartitionFor is how long the cut lasts; long enough by default
	// that every cross-partition link times out and each side re-forms
	// its own ring, so re-merging requires the repair overlord's cached
	// direct re-links.
	PartitionFor sim.Duration
	// Routers / PlanetLabHosts size the overlay.
	Routers, PlanetLabHosts int
}

func (o *PartitionHealOpts) fillDefaults() {
	if o.PartitionFor == 0 {
		o.PartitionFor = 3 * sim.Minute
	}
	if o.Routers == 0 {
		o.Routers = 40
	}
	if o.PlanetLabHosts == 0 {
		o.PlanetLabHosts = 8
	}
}

// PartitionHealResult is the measured repair after a WAN partition.
type PartitionHealResult struct {
	PartitionSeconds float64
	// CutConfirmed reports that cross-partition traffic really was dead
	// mid-window.
	CutConfirmed bool
	// Healed reports that every cross-partition probe pair recovered.
	Healed bool
	Report metrics.RecoveryReport
	// Timeline is the injector's fault record.
	Timeline []faults.TimelineEntry
}

// String renders the result.
func (r *PartitionHealResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Partition repair: %.0f s site cut (NWU + half of PlanetLab vs rest)\n", r.PartitionSeconds)
	fmt.Fprintf(&b, "  cut confirmed mid-window: %v\n", r.CutConfirmed)
	fmt.Fprintf(&b, "  all probe pairs recovered: %v\n", r.Healed)
	b.WriteString(r.Report.String())
	renderTimeline(&b, r.Timeline)
	return b.String()
}

// RunPartitionHeal cuts the Northwestern site plus half the PlanetLab
// hosts off from the rest of the world, holds the partition long enough
// for every cross-side link to die, heals it, and measures how long the
// overlay takes to re-merge into one routable ring.
func RunPartitionHeal(opts PartitionHealOpts) (*PartitionHealResult, error) {
	opts.fillDefaults()
	tb := testbed.Build(testbed.Config{
		Seed:           opts.Seed,
		Shortcuts:      true,
		Routers:        opts.Routers,
		PlanetLabHosts: opts.PlanetLabHosts,
		SettleTime:     5 * sim.Minute,
	})
	inj := faults.New(tb.Sim, tb.Net)
	defer inj.Close()

	cutSites := []string{"northwestern.edu"}
	for h := 0; h < opts.PlanetLabHosts/2; h++ {
		cutSites = append(cutSites, fmt.Sprintf("planetlab%02d", h))
	}
	inj.Schedule(faults.Partition{A: faults.AtSites(cutSites...), From: 0, For: opts.PartitionFor})
	cutAt := tb.Sim.Now()
	before := snapshotRecovery(tb)

	// Mid-window: the cut must actually sever cross-partition traffic.
	tb.Sim.RunFor(opts.PartitionFor / 2)
	res := &PartitionHealResult{
		PartitionSeconds: opts.PartitionFor.Seconds(),
		CutConfirmed:     !pingOK(tb.Sim, tb.VM("node003"), tb.VM("node017").IP()),
	}

	healAt := cutAt.Add(opts.PartitionFor)
	if now := tb.Sim.Now(); now < healAt {
		tb.Sim.RunFor(healAt.Sub(now))
	}

	pairs := [][2]string{
		{"node003", "node017"}, {"node017", "node003"},
		{"node004", "node018"}, {"node019", "node030"},
	}
	report := metrics.RecoveryReport{Scenario: "partition-heal", RecoverySec: -1}
	for tb.Sim.Now().Sub(healAt) < 20*sim.Minute {
		allOK := true
		for _, p := range pairs {
			if !pingOK(tb.Sim, tb.VM(p[0]), tb.VM(p[1]).IP()) {
				allOK = false
				break
			}
		}
		if allOK {
			res.Healed = true
			report.RecoverySec = tb.Sim.Now().Sub(healAt).Seconds()
			break
		}
		tb.Sim.RunFor(5 * sim.Second)
	}
	report.Counters = recoveryDelta(before, snapshotRecovery(tb))
	res.Report = report
	res.Timeline = inj.Timeline()
	return res, nil
}

// ChurnWaveOpts parameterizes the correlated-churn experiment.
type ChurnWaveOpts struct {
	Seed int64
	// Fraction of the PlanetLab routers cycled by the wave.
	Fraction float64
	// Spacing between consecutive kills; Down is each router's outage.
	// With Down spanning several Spacings the wave overlaps: the overlay
	// repairs under continued fire.
	Spacing, Down sim.Duration
	// Routers / PlanetLabHosts size the overlay.
	Routers, PlanetLabHosts int
}

func (o *ChurnWaveOpts) fillDefaults() {
	if o.Fraction == 0 {
		o.Fraction = 0.25
	}
	if o.Spacing == 0 {
		o.Spacing = 5 * sim.Second
	}
	if o.Down == 0 {
		o.Down = 45 * sim.Second
	}
	if o.Routers == 0 {
		o.Routers = 40
	}
	if o.PlanetLabHosts == 0 {
		o.PlanetLabHosts = 8
	}
}

// ChurnWaveResult is the measured recovery from a correlated churn wave.
type ChurnWaveResult struct {
	Churned, Total int
	// Healed reports that every probe pair recovered after the wave.
	Healed bool
	Report metrics.RecoveryReport
	// Timeline is the injector's kill/restart record.
	Timeline []faults.TimelineEntry
}

// String renders the result.
func (r *ChurnWaveResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Correlated churn: wave cycled %d/%d routers (overlapping outages)\n", r.Churned, r.Total)
	fmt.Fprintf(&b, "  all probe pairs recovered: %v\n", r.Healed)
	b.WriteString(r.Report.String())
	renderTimeline(&b, r.Timeline)
	return b.String()
}

// RunCorrelatedChurn rolls a staggered kill+restart wave across a fraction
// of the PlanetLab routers — outages overlap, so the overlay repairs while
// still losing nodes — and measures the time from the last restart until
// every compute probe pair is mutually reachable again.
func RunCorrelatedChurn(opts ChurnWaveOpts) (*ChurnWaveResult, error) {
	opts.fillDefaults()
	tb := testbed.Build(testbed.Config{
		Seed:           opts.Seed,
		Shortcuts:      true,
		Routers:        opts.Routers,
		PlanetLabHosts: opts.PlanetLabHosts,
		SettleTime:     5 * sim.Minute,
	})
	inj := faults.New(tb.Sim, tb.Net)
	defer inj.Close()

	routers := tb.Routers()
	churn := int(float64(len(routers)) * opts.Fraction)
	var lastRestart sim.Time
	var restartErr error
	targets := make([]faults.ChurnTarget, 0, churn)
	for i := 0; i < churn; i++ {
		r := routers[i*len(routers)/churn]
		targets = append(targets, faults.ChurnTarget{
			Name: fmt.Sprintf("%03d", i*len(routers)/churn),
			Kill: func() { r.Stop() },
			Restart: func() {
				if err := r.Start(tb.Boot()); err != nil && restartErr == nil {
					restartErr = fmt.Errorf("churnwave: restart: %w", err)
				}
				lastRestart = tb.Sim.Now()
			},
		})
	}
	before := snapshotRecovery(tb)
	inj.Schedule(faults.ChurnWave{
		Targets: targets,
		From:    sim.Second,
		Spacing: opts.Spacing,
		Jitter:  opts.Spacing / 2,
		Down:    opts.Down,
	})
	// Run out the whole wave: worst case every kill lands Spacing+Jitter
	// after the previous one, plus the final outage.
	waveSpan := sim.Second + sim.Duration(churn)*(opts.Spacing+opts.Spacing/2) + opts.Down + 10*sim.Second
	tb.Sim.RunFor(waveSpan)
	if restartErr != nil {
		return nil, restartErr
	}

	res := &ChurnWaveResult{Churned: churn, Total: len(routers)}
	res.Timeline = inj.Timeline()
	pairs := [][2]string{
		{"node003", "node017"}, {"node004", "node030"},
		{"node018", "node033"}, {"node019", "node034"},
	}
	report := metrics.RecoveryReport{Scenario: "correlated-churn", RecoverySec: -1}
	for tb.Sim.Now().Sub(lastRestart) < 20*sim.Minute {
		allOK := true
		for _, p := range pairs {
			if !pingOK(tb.Sim, tb.VM(p[0]), tb.VM(p[1]).IP()) {
				allOK = false
				break
			}
		}
		if allOK {
			res.Healed = true
			report.RecoverySec = tb.Sim.Now().Sub(lastRestart).Seconds()
			break
		}
		tb.Sim.RunFor(5 * sim.Second)
	}
	report.Counters = recoveryDelta(before, snapshotRecovery(tb))
	res.Report = report
	return res, nil
}
