package experiments

import (
	"fmt"

	"wow/internal/brunet"
	"wow/internal/core"
	"wow/internal/middleware/scp"
	"wow/internal/phys"
	"wow/internal/sim"
	"wow/internal/testbed"
	"wow/internal/vip"
	"wow/internal/vm"
)

// smallOverlay is a lightweight public overlay with a few workstations,
// for experiments that don't need the full Figure-1 testbed.
type smallOverlay struct {
	wow  *core.WOW
	boot []brunet.URI
	vms  []*vm.VM
}

func fastBrunet() brunet.Config { return brunet.DefaultConfig() }

func stackCfg() vip.StackConfig { return vip.StackConfig{} }

func mustVIP(s string) vip.IP { return vip.MustParseIP(s) }

// buildSmallOverlay stands up n public routers and two public
// workstations on the given network.
func buildSmallOverlay(s *sim.Simulator, net *phys.Network, n int) (*smallOverlay, error) {
	w := core.New(s, core.Options{Shortcuts: true, Brunet: fastBrunet()})
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("r%02d", i)
		h := net.AddHost(name, net.AddSite(name), net.Root(), phys.HostConfig{})
		if _, err := w.AddRouter(h, name); err != nil {
			return nil, fmt.Errorf("experiments: add router %s: %w", name, err)
		}
		s.RunFor(sim.Second)
	}
	so := &smallOverlay{wow: w, boot: w.Bootstrap()}
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("ws%02d", i)
		h := net.AddHost(name, net.AddSite(name), net.Root(), phys.HostConfig{
			ServiceTime: 400 * sim.Microsecond, Bandwidth: 1.7e6,
		})
		v, err := w.AddWorkstation(h, mustVIP(fmt.Sprintf("172.16.1.%d", i+2)), vm.Spec{Name: name})
		if err != nil {
			return nil, fmt.Errorf("experiments: add workstation %s: %w", name, err)
		}
		so.vms = append(so.vms, v)
	}
	s.RunFor(2 * sim.Minute)
	return so, nil
}

// pingOK sends one virtual ping and waits out its timeout.
func pingOK(s *sim.Simulator, from *vm.VM, to vip.IP) bool {
	ok := false
	from.Stack().Ping(to, 64, 2*sim.Second, func(o bool, _ sim.Duration) { ok = o })
	s.RunFor(3 * sim.Second)
	return ok
}

// runFig6Live is RunFig6 with live pre-copy migration instead of
// suspend-transfer-resume.
func runFig6Live(opts Fig6Opts) (*Fig6Result, error) {
	opts.fillDefaults()
	tb := testbed.Build(testbed.Config{
		Seed:           opts.Seed,
		Shortcuts:      true,
		Routers:        opts.Routers,
		PlanetLabHosts: opts.PlanetLabHosts,
		SettleTime:     5 * sim.Minute,
	})
	server := tb.VM("node003")
	client := tb.VM("node017")

	srv, err := scp.NewServer(server.Stack())
	if err != nil {
		return nil, fmt.Errorf("fig6live: %w", err)
	}
	srv.Put("/data/dataset.tar", opts.FileBytes)

	warm := tb.Sim.Tick(sim.Second, 0, func() {
		client.Stack().Ping(server.IP(), 64, 2*sim.Second, func(bool, sim.Duration) {})
	})
	tb.Sim.RunFor(2 * sim.Minute)
	warm.Stop()

	start := tb.Sim.Now()
	tr := scp.Fetch(client.Stack(), server.IP(), "/data/dataset.tar", 5*sim.Second, nil)
	var migErr error
	tb.Sim.At(start.Add(opts.MigrateAt), func() {
		dst := tb.NewHostAt("northwestern.edu")
		if err := server.MigrateLive(dst, vm.MigrationConfig{TransferBps: opts.TransferBps}, nil); err != nil {
			migErr = fmt.Errorf("fig6live: migrate: %w", err)
			tb.Sim.Stop()
		}
	})
	for !tr.Done && migErr == nil && tb.Sim.Now().Sub(start) < 4*sim.Hour {
		tb.Sim.RunFor(sim.Minute)
	}
	if migErr != nil {
		return nil, migErr
	}

	res := &Fig6Result{
		Progress:  tr.Progress,
		Completed: tr.Done && tr.Err == nil && tr.Received == opts.FileBytes,
	}
	res.TotalSeconds = tb.Sim.Now().Sub(start).Seconds()
	var stall, lastT, lastB float64
	for i := 0; i < res.Progress.Len(); i++ {
		tt, bytes := res.Progress.At(i)
		if bytes == lastB && lastT > 0 {
			if s := tt - lastT; s > stall {
				stall = s
			}
		} else {
			lastT = tt
		}
		lastB = bytes
	}
	res.StallSeconds = stall
	return res, nil
}
