package experiments

import (
	"fmt"
	"math"
	"strings"

	"wow/internal/brunet"
	"wow/internal/metrics"
	"wow/internal/sim"
	"wow/internal/testbed"
	"wow/internal/workloads"
)

// AblationOpts parameterizes design-choice sweeps.
type AblationOpts struct {
	Seed                    int64
	Routers, PlanetLabHosts int
}

func (o *AblationOpts) fillDefaults() {
	if o.Routers == 0 {
		o.Routers = 118
	}
	if o.PlanetLabHosts == 0 {
		o.PlanetLabHosts = 20
	}
}

// FarCountPoint is one sample of the far-connection sweep.
type FarCountPoint struct {
	FarCount int
	// AvgHops is the mean overlay path length over sampled pairs.
	AvgHops float64
	// ConnsPerNode is the realized mean connection count (keepalive
	// cost, the tradeoff §IV-E discusses).
	ConnsPerNode float64
}

// FarCountResult sweeps k, the structured-far connection count.
type FarCountResult struct{ Points []FarCountPoint }

// String renders the sweep.
func (r *FarCountResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation: structured-far connection count k vs routing hops\n")
	fmt.Fprintf(&b, "%6s %10s %14s\n", "k", "avg hops", "conns/node")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%6d %10.2f %14.1f\n", p.FarCount, p.AvgHops, p.ConnsPerNode)
	}
	return b.String()
}

// RunFarCountAblation measures greedy-routing path length on the router
// overlay as k varies — the O((1/k)·log²n) tradeoff of §IV-A.
func RunFarCountAblation(opts AblationOpts, ks []int) *FarCountResult {
	opts.fillDefaults()
	if len(ks) == 0 {
		ks = []int{1, 2, 4, 8, 16}
	}
	res := &FarCountResult{}
	for _, k := range ks {
		cfg := brunet.DefaultConfig()
		cfg.FarCount = k
		tb := testbed.Build(testbed.Config{
			Seed:           opts.Seed,
			Shortcuts:      false,
			Routers:        opts.Routers,
			PlanetLabHosts: opts.PlanetLabHosts,
			Brunet:         cfg,
			SkipVMs:        true,
			SettleTime:     10 * sim.Minute,
		})
		routers := tb.Routers()
		var before, sent int64
		for _, r := range routers {
			before += r.Overlay().Stats.Get("route.forwarded")
		}
		// Sample all-pairs-ish traffic: every router sends to every
		// 7th other router.
		for i, a := range routers {
			for j := (i + 1) % 7; j < len(routers); j += 7 {
				if i == j {
					continue
				}
				a.Overlay().SendTo(routers[j].Overlay().Addr(), brunet.DeliverExact,
					brunet.AppData{Proto: "probe", Size: 64})
				sent++
			}
		}
		tb.Sim.RunFor(time30s())
		var after int64
		var conns int
		for _, r := range routers {
			after += r.Overlay().Stats.Get("route.forwarded")
			conns += len(r.Overlay().Connections())
		}
		res.Points = append(res.Points, FarCountPoint{
			FarCount:     k,
			AvgHops:      float64(after-before) / float64(sent),
			ConnsPerNode: float64(conns) / float64(len(routers)),
		})
	}
	return res
}

func time30s() sim.Duration { return 30 * sim.Second }

// ThresholdPoint is one sample of the shortcut-threshold sweep.
type ThresholdPoint struct {
	Threshold float64
	// AdaptSeconds is the time for a 1 packet/s flow to trigger a
	// shortcut (NaN if never).
	AdaptSeconds float64
	// CTMs counts shortcut connection attempts (setup churn).
	CTMs int64
}

// ThresholdResult sweeps the shortcut score threshold.
type ThresholdResult struct{ Points []ThresholdPoint }

// String renders the sweep.
func (r *ThresholdResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation: shortcut score threshold vs adaptation latency\n")
	fmt.Fprintf(&b, "%10s %14s %8s\n", "threshold", "adapt (s)", "CTMs")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%10.0f %14.1f %8d\n", p.Threshold, p.AdaptSeconds, p.CTMs)
	}
	return b.String()
}

// RunThresholdAblation measures how the §IV-E score threshold trades
// adaptation speed against connection churn for the paper's 1 packet/s
// ICMP workload.
func RunThresholdAblation(opts AblationOpts, thresholds []float64) *ThresholdResult {
	opts.fillDefaults()
	if len(thresholds) == 0 {
		thresholds = []float64{5, 15, 30, 60}
	}
	res := &ThresholdResult{}
	for _, th := range thresholds {
		cfg := brunet.DefaultConfig()
		cfg.Shortcut = brunet.DefaultShortcutConfig()
		cfg.Shortcut.Threshold = th
		tb := testbed.Build(testbed.Config{
			Seed:           opts.Seed,
			Shortcuts:      true,
			Routers:        opts.Routers,
			PlanetLabHosts: opts.PlanetLabHosts,
			Brunet:         cfg,
			SkipVMs:        true,
			SettleTime:     5 * sim.Minute,
		})
		a := tb.NewVM("ufl.edu", 1)
		b := tb.NewVM("northwestern.edu", 1)
		tb.Sim.RunFor(2 * sim.Minute)
		start := tb.Sim.Now()
		adapt := math.NaN()
		bAddr := b.Node().Addr()
		tick := tb.Sim.Tick(sim.Second, 0, func() {
			a.Stack().Ping(b.IP(), 64, 2*sim.Second, func(bool, sim.Duration) {})
			if math.IsNaN(adapt) {
				if c := a.Node().Overlay().ConnectionTo(bAddr); c != nil && c.Has(brunet.Shortcut) {
					adapt = tb.Sim.Now().Sub(start).Seconds()
				}
			}
		})
		tb.Sim.RunFor(10 * sim.Minute)
		tick.Stop()
		res.Points = append(res.Points, ThresholdPoint{
			Threshold:    th,
			AdaptSeconds: adapt,
			CTMs:         a.Node().Overlay().Stats.Get("shortcut.ctm") + b.Node().Overlay().Stats.Get("shortcut.ctm"),
		})
	}
	return res
}

// URIOrderResult compares linking-protocol URI trial orders for the
// UFL-UFL hairpin-blocked case behind Figure 5's regime 3.
type URIOrderResult struct {
	// PublicFirstSeconds is the median shortcut formation time with the
	// paper's order (NAT-learned URIs first): slow, because the campus
	// NAT drops hairpin traffic and the linker burns ~150 s there.
	PublicFirstSeconds float64
	// PrivateFirstSeconds flips the order: fast for same-site pairs.
	PrivateFirstSeconds float64
}

// String renders the comparison.
func (r *URIOrderResult) String() string {
	return fmt.Sprintf("Ablation: linking URI trial order (UFL-UFL shortcut formation)\n"+
		"  public-first (paper's IPOP): %6.0f s\n"+
		"  private-first:               %6.0f s\n",
		r.PublicFirstSeconds, r.PrivateFirstSeconds)
}

// RunURIOrderAblation measures UFL-UFL shortcut formation time under both
// URI orders.
func RunURIOrderAblation(opts AblationOpts, trials int) *URIOrderResult {
	opts.fillDefaults()
	if trials == 0 {
		trials = 5
	}
	measure := func(privateFirst bool) float64 {
		cfg := brunet.DefaultConfig()
		cfg.PrivateFirst = privateFirst
		jo := JoinOpts{
			Seed:           opts.Seed,
			Trials:         trials,
			Pings:          300,
			Routers:        opts.Routers,
			PlanetLabHosts: opts.PlanetLabHosts,
		}
		jo.Brunet = cfg
		p := RunJoinProfile(jo, JoinScenario{Name: "UFL-UFL", ASite: "ufl.edu", BSite: "ufl.edu"})
		_, shortcutSeq := p.Regimes()
		return float64(shortcutSeq)
	}
	return &URIOrderResult{
		PublicFirstSeconds:  measure(false),
		PrivateFirstSeconds: measure(true),
	}
}

// RingSizePoint is one sample of the overlay-size sweep.
type RingSizePoint struct {
	Routers int
	// MedianRoutable is the median seconds for a new node to become
	// routable.
	MedianRoutable float64
	// MedianShortcut is the median seconds to a direct connection.
	MedianShortcut float64
}

// RingSizeResult sweeps the bootstrap overlay size.
type RingSizeResult struct{ Points []RingSizePoint }

// String renders the sweep.
func (r *RingSizeResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation: overlay size vs join latency\n")
	fmt.Fprintf(&b, "%8s %18s %18s\n", "routers", "median routable(s)", "median shortcut(s)")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%8d %18.1f %18.1f\n", p.Routers, p.MedianRoutable, p.MedianShortcut)
	}
	return b.String()
}

// RunRingSizeAblation measures join latency across overlay sizes,
// exercising the design's scalability claim (§VI).
func RunRingSizeAblation(opts AblationOpts, sizes []int, trials int) *RingSizeResult {
	opts.fillDefaults()
	if len(sizes) == 0 {
		sizes = []int{16, 50, 118, 250}
	}
	if trials == 0 {
		trials = 5
	}
	res := &RingSizeResult{}
	for _, n := range sizes {
		jo := JoinOpts{
			Seed:           opts.Seed,
			Trials:         trials,
			Pings:          260,
			Routers:        n,
			PlanetLabHosts: opts.PlanetLabHosts,
		}
		p := RunJoinProfile(jo, JoinScenario{Name: "join", ASite: "ufl.edu", BSite: "northwestern.edu"})
		rSeq, sSeq := p.Regimes()
		res.Points = append(res.Points, RingSizePoint{
			Routers:        n,
			MedianRoutable: float64(rSeq),
			MedianShortcut: float64(sSeq),
		})
	}
	return res
}

// TransportResult compares UDP and TCP link transports (§IV-A provides
// both): join latency and UFL-NWU tunnel bandwidth over an all-UDP vs an
// all-TCP overlay. The comparison explains the paper's transport choice
// ("in this paper, we have used UDP"): joins work over either, but TCP
// cannot hole-punch between two NATed/firewalled sites, so those pairs
// never get shortcut connections — their traffic stays on multi-hop
// chains of streams, where per-hop reliable delivery through loaded
// routers collapses throughput (the classic TCP-over-TCP problem).
type TransportResult struct {
	// JoinUDP / JoinTCP are median seconds to routability.
	JoinUDP, JoinTCP float64
	// BandwidthUDP / BandwidthTCP are UFL-NWU ttcp rates in KB/s
	// (UDP: hole-punched direct path; TCP: multi-hop, no punch).
	BandwidthUDP, BandwidthTCP float64
}

// String renders the comparison.
func (r *TransportResult) String() string {
	return fmt.Sprintf("Ablation: overlay link transport (UDP vs TCP, §IV-A)\n"+
		"  median join-to-routable: udp %4.1f s, tcp %4.1f s\n"+
		"  UFL-NWU tunnel bandwidth: udp %5.0f KB/s (hole-punched shortcut),\n"+
		"                            tcp %5.0f KB/s (no TCP hole punch -> multi-hop stream chain)\n",
		r.JoinUDP, r.JoinTCP, r.BandwidthUDP, r.BandwidthTCP)
}

// RunTransportAblation measures both transports on otherwise identical
// overlays.
func RunTransportAblation(opts AblationOpts) (*TransportResult, error) {
	opts.fillDefaults()
	res := &TransportResult{}
	for _, transport := range []string{"udp", "tcp"} {
		cfg := brunet.DefaultConfig()
		cfg.Transport = transport
		jo := JoinOpts{
			Seed:           opts.Seed,
			Trials:         5,
			Pings:          120,
			Routers:        opts.Routers,
			PlanetLabHosts: opts.PlanetLabHosts,
			Brunet:         cfg,
		}
		p := RunJoinProfile(jo, JoinScenario{Name: "transport-" + transport, ASite: "ufl.edu", BSite: "northwestern.edu"})
		join := metrics.Percentile(dropNaN(p.RoutableAt), 50)

		tb := testbed.Build(testbed.Config{
			Seed: opts.Seed, Shortcuts: true,
			Routers: opts.Routers, PlanetLabHosts: opts.PlanetLabHosts,
			Brunet: cfg, SettleTime: 5 * sim.Minute,
		})
		src, dst := tb.VM("node003"), tb.VM("node017")
		if err := workloads.TTCPServe(dst.Stack()); err != nil {
			return nil, fmt.Errorf("transport ablation: %w", err)
		}
		warm := tb.Sim.Tick(sim.Second, 0, func() {
			src.Stack().Ping(dst.IP(), 64, 2*sim.Second, func(bool, sim.Duration) {})
		})
		tb.Sim.RunFor(5 * sim.Minute)
		warm.Stop()
		var bw float64
		done := false
		workloads.TTCP(src.Stack(), dst.IP(), 16<<20, func(r workloads.TTCPResult) {
			bw = r.BandwidthKBs()
			done = true
		})
		for !done {
			tb.Sim.RunFor(sim.Minute)
		}
		if transport == "udp" {
			res.JoinUDP, res.BandwidthUDP = join, bw
		} else {
			res.JoinTCP, res.BandwidthTCP = join, bw
		}
	}
	return res, nil
}
