package experiments

import (
	"fmt"
	"sort"
	"strings"

	"wow/internal/metrics"
	"wow/internal/middleware/nfs"
	"wow/internal/middleware/pbs"
	"wow/internal/sim"
	"wow/internal/testbed"
	"wow/internal/workloads"
)

// Fig8Opts parameterizes the high-throughput MEME batch experiment of
// §V-D1 (Figure 8 and the 53 vs 22 jobs/minute result).
type Fig8Opts struct {
	Seed int64
	// Jobs is the batch size; the paper ran 4000.
	Jobs int
	// SubmitInterval is the qsub pacing; the paper submitted 1 job/s.
	SubmitInterval sim.Duration
	// Shortcuts toggles the overlord, the experiment's comparison axis.
	Shortcuts bool
	// Routers / PlanetLabHosts size the overlay.
	Routers, PlanetLabHosts int
}

func (o *Fig8Opts) fillDefaults() {
	if o.Jobs == 0 {
		o.Jobs = 4000
	}
	if o.SubmitInterval == 0 {
		o.SubmitInterval = sim.Second
	}
	if o.Routers == 0 {
		o.Routers = 118
	}
	if o.PlanetLabHosts == 0 {
		o.PlanetLabHosts = 20
	}
}

// Fig8Result summarizes one MEME batch run.
type Fig8Result struct {
	Shortcuts bool
	Jobs      int
	// Histogram bins job wall-clock times as Figure 8 does (16-second
	// bins labelled 8, 24, 40, 56, 72, 88).
	Histogram *metrics.Histogram
	// MeanSeconds / StdSeconds of job wall times (paper: 24.1 ± 6.5
	// with shortcuts; 32.2 ± 9.7 without).
	MeanSeconds, StdSeconds float64
	// WallClockSeconds is time from first submission to last completion
	// (paper: 4565 s with shortcuts).
	WallClockSeconds float64
	// JobsPerMinute is the overall throughput (paper: 53 vs 22).
	JobsPerMinute float64
	// JobShare maps node name -> fraction of all jobs it ran (paper:
	// node032 1.6%, node033 4.2%).
	JobShare map[string]float64
	// Failed counts jobs that did not complete OK.
	Failed int
}

// String renders the result in the paper's terms.
func (r *Fig8Result) String() string {
	var b strings.Builder
	label := "disabled"
	if r.Shortcuts {
		label = "enabled"
	}
	fmt.Fprintf(&b, "Figure 8 / §V-D1: %d PBS/MEME jobs, shortcuts %s\n", r.Jobs, label)
	fmt.Fprintf(&b, "  wall-clock time: %.0f s; throughput %.1f jobs/minute\n", r.WallClockSeconds, r.JobsPerMinute)
	fmt.Fprintf(&b, "  job wall time: mean %.1f s, std %.1f s (failed: %d)\n", r.MeanSeconds, r.StdSeconds, r.Failed)
	b.WriteString("  execution-time histogram:\n")
	freqs := r.Histogram.Frequencies()
	for i, f := range freqs {
		fmt.Fprintf(&b, "    %4.0f s: %5.1f%% %s\n", r.Histogram.BinCenter(i), f*100, strings.Repeat("#", int(f*80+0.5)))
	}
	names := make([]string, 0, len(r.JobShare))
	for n := range r.JobShare {
		names = append(names, n)
	}
	sort.Strings(names)
	b.WriteString("  job share by node:")
	for _, n := range names {
		if n == "node032" || n == "node033" || n == "node034" {
			fmt.Fprintf(&b, " %s=%.1f%%", n, r.JobShare[n]*100)
		}
	}
	b.WriteByte('\n')
	return b.String()
}

// RunFig8 reproduces §V-D1: a stream of short MEME jobs submitted at
// 1 job/second to a PBS head (node002, UFL) scheduling over all 33 WOW
// compute nodes, with input staged from and output committed to the
// head's NFS export.
func RunFig8(opts Fig8Opts) (*Fig8Result, error) {
	opts.fillDefaults()
	tb := testbed.Build(testbed.Config{
		Seed:           opts.Seed,
		Shortcuts:      opts.Shortcuts,
		Routers:        opts.Routers,
		PlanetLabHosts: opts.PlanetLabHosts,
		SettleTime:     5 * sim.Minute,
	})
	head := tb.VM("node002")

	nfsSrv, err := nfs.NewServer(head.Stack())
	if err != nil {
		return nil, fmt.Errorf("fig8: %w", err)
	}
	meme := workloads.DefaultMEME()
	nfsSrv.Put(meme.InputPath, meme.InputBytes)
	pbsHead, err := pbs.NewHead(head.Stack())
	if err != nil {
		return nil, fmt.Errorf("fig8: %w", err)
	}
	for _, v := range tb.VMs {
		if _, err := pbs.NewMOM(v, head.IP()); err != nil {
			return nil, fmt.Errorf("fig8: mom %s: %w", v.Name(), err)
		}
	}
	tb.Sim.RunFor(2 * sim.Minute) // registrations

	res := &Fig8Result{
		Shortcuts: opts.Shortcuts,
		Jobs:      opts.Jobs,
		Histogram: metrics.NewHistogram(0, 16, 6),
		JobShare:  make(map[string]float64),
	}
	var walls []float64
	var firstSubmit, lastDone sim.Time
	done := 0
	pbsHead.OnJobDone(func(rec *pbs.JobRecord) {
		done++
		if !rec.OK {
			res.Failed++
			return
		}
		w := rec.WallSeconds()
		walls = append(walls, w)
		res.Histogram.Add(w)
		res.JobShare[rec.Worker]++
		lastDone = tb.Sim.Now()
	})

	rng := tb.Sim.Rand()
	firstSubmit = tb.Sim.Now()
	for i := 0; i < opts.Jobs; i++ {
		i := i
		tb.Sim.At(firstSubmit.Add(sim.Duration(i)*opts.SubmitInterval), func() {
			pbsHead.Submit(meme.Job(i, rng))
		})
	}

	deadline := tb.Sim.Now().Add(48 * sim.Hour)
	for done < opts.Jobs && tb.Sim.Now() < deadline {
		tb.Sim.RunFor(sim.Minute)
	}

	s := metrics.Summarize(walls)
	res.MeanSeconds, res.StdSeconds = s.Mean, s.Std
	res.WallClockSeconds = lastDone.Sub(firstSubmit).Seconds()
	if res.WallClockSeconds > 0 {
		res.JobsPerMinute = float64(len(walls)) / (res.WallClockSeconds / 60)
	}
	for n, c := range res.JobShare {
		res.JobShare[n] = c / float64(opts.Jobs)
	}
	return res, nil
}
