// Package experiments implements every quantitative experiment of the
// paper's §V evaluation against the simulated Figure-1 testbed, one
// constructor per table or figure. Each returns a typed result with a
// String renderer; the benchmarks in bench_test.go and the wow-bench
// command drive them.
package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"sync"

	"wow/internal/brunet"
	"wow/internal/metrics"
	"wow/internal/sim"
	"wow/internal/testbed"
	"wow/internal/vm"
)

// JoinOpts parameterizes the node-join experiments of §V-B.
type JoinOpts struct {
	Seed int64
	// Trials per scenario; the paper ran 100 (Fig. 4) and 300 total
	// (abstract claim).
	Trials int
	// Pings per trial at one-second intervals; the paper sent 400.
	Pings int
	// Routers sizes the bootstrap overlay (118 in the paper).
	Routers int
	// PlanetLabHosts hosts them (20 in the paper).
	PlanetLabHosts int
	// Brunet overrides protocol constants (ablations); zero fields take
	// paper defaults.
	Brunet brunet.Config
}

func (o *JoinOpts) fillDefaults() {
	if o.Trials == 0 {
		o.Trials = 100
	}
	if o.Pings == 0 {
		o.Pings = 400
	}
	if o.Routers == 0 {
		o.Routers = 118
	}
	if o.PlanetLabHosts == 0 {
		o.PlanetLabHosts = 20
	}
}

// JoinScenario names a Figure 4 placement of the fixed node A and the
// joining node B.
type JoinScenario struct {
	Name         string
	ASite, BSite string
}

// Fig4Scenarios are the paper's three placements.
func Fig4Scenarios() []JoinScenario {
	return []JoinScenario{
		{Name: "UFL-UFL", ASite: "ufl.edu", BSite: "ufl.edu"},
		{Name: "UFL-NWU", ASite: "ufl.edu", BSite: "northwestern.edu"},
		{Name: "NWU-NWU", ASite: "northwestern.edu", BSite: "northwestern.edu"},
	}
}

// JoinProfile is the averaged per-sequence-number ping profile of one
// scenario — one curve of Figure 4 (both panels).
type JoinProfile struct {
	Scenario JoinScenario
	Trials   int
	// RTTms[i] is the mean round-trip of successful echoes with
	// sequence number i+1; NaN when every trial dropped it.
	RTTms []float64
	// LossPct[i] is the share of trials in which echo i+1 got no reply.
	LossPct []float64
	// RoutableAt / ShortcutAt are per-trial seconds from B's start until
	// the first echo reply and until the A-B shortcut connection
	// existed (NaN if never within the trial window).
	RoutableAt []float64
	ShortcutAt []float64
}

// MarshalJSON renders the profile with NaN entries as JSON null —
// encoding/json rejects NaN outright, which would otherwise make every
// profile with a fully-dropped sequence number unserializable.
func (p *JoinProfile) MarshalJSON() ([]byte, error) {
	type alias struct {
		Scenario   JoinScenario
		Trials     int
		RTTms      []*float64
		LossPct    []float64
		RoutableAt []*float64
		ShortcutAt []*float64
	}
	return json.Marshal(alias{
		Scenario:   p.Scenario,
		Trials:     p.Trials,
		RTTms:      nanToNull(p.RTTms),
		LossPct:    p.LossPct,
		RoutableAt: nanToNull(p.RoutableAt),
		ShortcutAt: nanToNull(p.ShortcutAt),
	})
}

// nanToNull maps each value to a pointer, with NaN becoming nil (JSON null).
func nanToNull(xs []float64) []*float64 {
	out := make([]*float64, len(xs))
	for i := range xs {
		if !math.IsNaN(xs[i]) {
			v := xs[i]
			out[i] = &v
		}
	}
	return out
}

// Regimes splits the profile into the paper's three Figure 5 regimes and
// returns their boundaries in sequence numbers: the last sequence number
// before B is typically routable, and the sequence number by which the
// median trial has a shortcut.
func (p *JoinProfile) Regimes() (routableSeq, shortcutSeq int) {
	r := metrics.Percentile(dropNaN(p.RoutableAt), 50)
	s := metrics.Percentile(dropNaN(p.ShortcutAt), 50)
	if !math.IsNaN(r) {
		routableSeq = int(r)
	}
	if !math.IsNaN(s) {
		shortcutSeq = int(s)
	}
	return routableSeq, shortcutSeq
}

// String renders the profile as a compact table of 20-ping buckets.
func (p *JoinProfile) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4 profile %s (%d trials)\n", p.Scenario.Name, p.Trials)
	fmt.Fprintf(&b, "%8s %12s %10s\n", "seq", "avg RTT(ms)", "loss(%)")
	for lo := 0; lo < len(p.RTTms); lo += 20 {
		hi := lo + 20
		if hi > len(p.RTTms) {
			hi = len(p.RTTms)
		}
		var rtts, losses []float64
		for i := lo; i < hi; i++ {
			if !math.IsNaN(p.RTTms[i]) {
				rtts = append(rtts, p.RTTms[i])
			}
			losses = append(losses, p.LossPct[i])
		}
		rtt := math.NaN()
		if len(rtts) > 0 {
			rtt = metrics.Summarize(rtts).Mean
		}
		fmt.Fprintf(&b, "%3d-%-4d %12.1f %10.1f\n", lo+1, hi, rtt, metrics.Summarize(losses).Mean)
	}
	rs, ss := p.Regimes()
	fmt.Fprintf(&b, "median routable at seq ~%d, median shortcut at seq ~%d\n", rs, ss)
	return b.String()
}

// joinTestbed builds the router-only overlay plus the fixed target node A.
func joinTestbed(opts JoinOpts, aSite string, shortcuts bool) (*testbed.Testbed, *vm.VM) {
	tb := testbed.Build(testbed.Config{
		Seed:           opts.Seed,
		Shortcuts:      shortcuts,
		PlanetLabHosts: opts.PlanetLabHosts,
		Routers:        opts.Routers,
		Brunet:         opts.Brunet,
		SkipVMs:        true,
		SettleTime:     5 * sim.Minute,
	})
	a := tb.NewVM(aSite, 1)
	tb.Sim.RunFor(2 * sim.Minute)
	return tb, a
}

// RunJoinProfile reproduces one Figure 4 curve: Trials times, a fresh
// node B joins at BSite and sends Pings ICMP echoes at 1-second intervals
// to the long-running node A at ASite, starting the moment its IPOP
// process launches.
func RunJoinProfile(opts JoinOpts, sc JoinScenario) *JoinProfile {
	opts.fillDefaults()
	tb, a := joinTestbed(opts, sc.ASite, true)

	p := &JoinProfile{
		Scenario:   sc,
		Trials:     opts.Trials,
		RTTms:      make([]float64, opts.Pings),
		LossPct:    make([]float64, opts.Pings),
		RoutableAt: nil,
		ShortcutAt: nil,
	}
	rttSum := make([]float64, opts.Pings)
	rttN := make([]int, opts.Pings)
	lost := make([]int, opts.Pings)

	for trial := 0; trial < opts.Trials; trial++ {
		b := tb.NewVM(sc.BSite, 1)
		start := tb.Sim.Now()
		routable := math.NaN()
		shortcut := math.NaN()
		aAddr := a.Node().Addr()

		for i := 0; i < opts.Pings; i++ {
			i := i
			tb.Sim.At(start.Add(sim.Duration(i+1)*sim.Second), func() {
				b.Stack().Ping(a.IP(), 64, 2*sim.Second, func(ok bool, rtt sim.Duration) {
					if !ok {
						lost[i]++
						return
					}
					rttSum[i] += rtt.Seconds() * 1000
					rttN[i]++
					if math.IsNaN(routable) {
						routable = tb.Sim.Now().Sub(start).Seconds()
					}
				})
			})
		}
		// Watch for the shortcut connection forming on either side.
		watch := tb.Sim.Tick(sim.Second, 0, func() {
			if !math.IsNaN(shortcut) {
				return
			}
			c := b.Node().Overlay().ConnectionTo(aAddr)
			if c != nil && c.Has(brunet.Shortcut) {
				shortcut = tb.Sim.Now().Sub(start).Seconds()
			}
		})
		tb.Sim.RunFor(sim.Duration(opts.Pings+3) * sim.Second)
		watch.Stop()
		// Depart gracefully between trials so each join measures a
		// clean ring rather than the previous trial's stale state
		// (ungraceful-death dynamics are measured separately by the
		// migration experiments).
		b.Decommission()
		tb.Sim.RunFor(30 * sim.Second)

		p.RoutableAt = append(p.RoutableAt, routable)
		p.ShortcutAt = append(p.ShortcutAt, shortcut)
	}

	for i := 0; i < opts.Pings; i++ {
		if rttN[i] > 0 {
			p.RTTms[i] = rttSum[i] / float64(rttN[i])
		} else {
			p.RTTms[i] = math.NaN()
		}
		p.LossPct[i] = 100 * float64(lost[i]) / float64(opts.Trials)
	}
	return p
}

// CSV renders the profile as "seq,rtt_ms,loss_pct" lines, the series a
// plotting tool needs to redraw the Figure 4 curves.
func (p *JoinProfile) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seq,rtt_ms,loss_pct\n")
	for i := range p.RTTms {
		fmt.Fprintf(&b, "%d,%.2f,%.2f\n", i+1, p.RTTms[i], p.LossPct[i])
	}
	return b.String()
}

// Fig4Result bundles the three scenario profiles.
type Fig4Result struct {
	Profiles []*JoinProfile
}

// RunFig4 reproduces both panels of Figure 4 (and, via the first 50
// sequence numbers of the UFL-NWU profile, Figure 5). The three scenarios
// are independent simulations and run on parallel goroutines, one
// deterministic Simulator each.
func RunFig4(opts JoinOpts) *Fig4Result {
	scenarios := Fig4Scenarios()
	res := &Fig4Result{Profiles: make([]*JoinProfile, len(scenarios))}
	var wg sync.WaitGroup
	for i, sc := range scenarios {
		i, sc := i, sc
		wg.Add(1)
		go func() {
			defer wg.Done()
			res.Profiles[i] = RunJoinProfile(opts, sc)
		}()
	}
	wg.Wait()
	return res
}

// String renders all profiles.
func (r *Fig4Result) String() string {
	var b strings.Builder
	for _, p := range r.Profiles {
		b.WriteString(p.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// JoinStats is the abstract's join-latency claim: over 300 trials, 90% of
// nodes self-configured P2P routes within 10 seconds and more than 99%
// established direct connections within 200 seconds.
type JoinStats struct {
	Trials           int
	RoutableAt       []float64 // seconds, NaN = never
	ShortcutAt       []float64
	P90Routable      float64
	PctRoutable10s   float64
	PctShortcut200s  float64
	MedianRoutable   float64
	MedianShortcutAt float64
}

// RunJoinStats spreads Trials joins across the six compute domains,
// pinging a fixed UFL node, and summarizes routability and
// direct-connection latencies. The six per-domain simulations run on
// parallel goroutines.
func RunJoinStats(opts JoinOpts) *JoinStats {
	opts.fillDefaults()
	sites := testbed.ComputeSites
	st := &JoinStats{Trials: opts.Trials}
	perSite := opts.Trials / len(sites)
	if perSite == 0 {
		perSite = 1
	}
	profiles := make([]*JoinProfile, len(sites))
	var wg sync.WaitGroup
	for i, site := range sites {
		i, site := i, site
		wg.Add(1)
		go func() {
			defer wg.Done()
			o := opts
			o.Seed = opts.Seed + int64(i)
			o.Trials = perSite
			o.Pings = 260 // enough to observe the 200s shortcut bound
			profiles[i] = RunJoinProfile(o, JoinScenario{Name: "join-" + site, ASite: "ufl.edu", BSite: site})
		}()
	}
	wg.Wait()
	for _, p := range profiles {
		st.RoutableAt = append(st.RoutableAt, p.RoutableAt...)
		st.ShortcutAt = append(st.ShortcutAt, p.ShortcutAt...)
	}
	st.Trials = len(st.RoutableAt)
	st.P90Routable = metrics.Percentile(dropNaN(st.RoutableAt), 90)
	st.PctRoutable10s = pctWithin(st.RoutableAt, 10)
	st.PctShortcut200s = pctWithin(st.ShortcutAt, 200)
	st.MedianRoutable = metrics.Percentile(dropNaN(st.RoutableAt), 50)
	st.MedianShortcutAt = metrics.Percentile(dropNaN(st.ShortcutAt), 50)
	return st
}

func dropNaN(xs []float64) []float64 {
	out := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsNaN(x) {
			out = append(out, x)
		}
	}
	return out
}

func pctWithin(xs []float64, bound float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if !math.IsNaN(x) && x <= bound {
			n++
		}
	}
	return 100 * float64(n) / float64(len(xs))
}

// String renders the claim check.
func (s *JoinStats) String() string {
	return fmt.Sprintf(
		"Join latency over %d trials:\n"+
			"  routable within 10s: %.1f%% (paper: 90%%); P90 = %.1fs, median = %.1fs\n"+
			"  direct connection within 200s: %.1f%% (paper: >99%%); median = %.1fs\n",
		s.Trials, s.PctRoutable10s, s.P90Routable, s.MedianRoutable,
		s.PctShortcut200s, s.MedianShortcutAt)
}
