package experiments

import (
	"fmt"
	"testing"
)

func TestTransportAblation(t *testing.T) {
	r, err := RunTransportAblation(AblationOpts{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	fmt.Println(r.String())
	if r.JoinUDP <= 0 || r.JoinTCP <= 0 {
		t.Fatalf("joins missing: %+v", r)
	}
	// UDP hole-punches a direct shortcut; TCP cannot punch between two
	// NATed sites and stays on multi-hop stream chains.
	if r.BandwidthUDP < 500 {
		t.Fatalf("udp bandwidth implausible: %+v", r)
	}
	if r.BandwidthTCP <= 0 || r.BandwidthTCP > r.BandwidthUDP/10 {
		t.Fatalf("tcp multi-hop should be an order of magnitude slower: %+v", r)
	}
}
