package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"wow/internal/brunet"
	"wow/internal/natsim"
	"wow/internal/phys"
	"wow/internal/sim"
)

// This file is the parallel half of the all-symmetric-NAT ring experiment:
// the batched, optionally sharded build that RunSymmetricRing dispatches to
// when SymRingOpts selects parallel mode. Every overlay member except the
// public routers sits behind its own symmetric NAT — under the sharded
// engine each NAT realm is pinned to its host's site, so all translation
// state stays on one shard's timeline while the fleet builds in parallel.
// The serial build in nat.go is golden-pinned; nothing here touches it.

// NATPoint is one sample of the parallel build time series: the scale.series
// schema (wall/virtual clocks, joined count, throughput, events) extended
// with the tunnel subsystem's progress — how much of the fleet is routable,
// how many relay-backed tunnel edges exist, and how many upgrade probes the
// tunnels have burned trying to become direct edges (with all-symmetric NATs
// they never succeed; the probe count measures the cost of trying).
type NATPoint struct {
	WallSec       float64
	VirtualSec    float64
	Joined        int
	JoinsPerSec   float64
	Events        uint64
	RoutableFrac  float64
	Tunnels       int64
	UpgradeProbes int64
}

// natRingConfig is the protocol schedule of the parallel NAT build:
// FastTestConfig's aggressive link-failure constants (tunnel fallback is
// gated on direct linking failing, and the paper-default ~155s/dead-URI
// schedule would dominate the run), but keepalives and topology ticks
// coarsened for multi-thousand-node event budgets. PingInterval must stay
// under half the 120s NAT mapping TTL: the keepalive traffic is what holds
// every NAT pinhole open, and an expired mapping severs the link.
func natRingConfig() brunet.Config {
	c := brunet.FastTestConfig()
	c.PingInterval = 30 * sim.Second
	c.StatusInterval = 10 * sim.Second
	c.FarInterval = 15 * sim.Second
	c.TunnelUpgradeInterval = 30 * sim.Second
	return c
}

// runSymmetricRingParallel builds the all-symmetric overlay with batched
// bootstrap on the (optionally sharded) parallel engine. All hosts, NATs
// and nodes are created up front; Start events fire per batch on each
// node's own shard. Joins bootstrap exclusively off the public routers —
// a symmetric NAT drops unsolicited inbound dials, so only the routers
// are reachable bootstrap targets — and the ring then assembles over
// relay-backed tunnel edges through those routers.
func runSymmetricRingParallel(opts SymRingOpts) (*SymRingResult, error) {
	k := opts.Shards
	if k < 1 {
		k = 1
	}
	eng := sim.NewSharded(opts.Seed, k, opts.Workers)
	defer eng.Close()
	net := phys.NewShardedNetwork(eng, phys.UniformLatency(
		phys.PathModel{OneWay: sim.Millisecond},
		phys.PathModel{OneWay: opts.WANLatency},
	))
	sites := make([]*phys.Site, opts.Sites)
	for i := range sites {
		sites[i] = net.AddSite(fmt.Sprintf("site%02d", i))
	}
	if k > 1 {
		floor, ok := net.CrossShardFloor()
		if !ok {
			return nil, fmt.Errorf("sym-ring: %d shards but no cross-shard site pair (need Sites >= Shards)", k)
		}
		if floor <= 0 {
			return nil, fmt.Errorf("sym-ring: cross-shard latency floor %v must be positive (WANLatency too small)", floor)
		}
		eng.SetLookahead(floor)
	}

	cfg := natRingConfig()
	routers := make([]*brunet.Node, opts.Routers)
	for i := range routers {
		name := fmt.Sprintf("pub%03d", i)
		h := net.AddHost(name, sites[i%len(sites)], net.Root(), phys.HostConfig{})
		routers[i] = brunet.NewNode(h, brunet.AddrFromString(name), cfg)
		routers[i].RegisterProto("nat", func(brunet.Addr, brunet.AppData) {})
	}
	nodes := make([]*brunet.Node, opts.Nodes)
	for i := range nodes {
		name := fmt.Sprintf("sym%05d", i)
		site := sites[i%len(sites)]
		// The NAT's clock is its owning shard's: the realm pins to site, and
		// all translation state is only ever touched on that timeline.
		nat := natsim.NewNAT(name+"-nat", natsim.Config{Type: natsim.Symmetric},
			net.Root().NextIP(), eng.Shard(site.Shard()).Now)
		realm := net.AddRealm(name, net.Root(), nat, phys.MustParseIP("10.0.0.2"))
		h := net.AddHost(name+"-host", site, realm, phys.HostConfig{})
		nodes[i] = brunet.NewNode(h, brunet.AddrFromString(name), cfg)
		nodes[i].RegisterProto("nat", func(brunet.Addr, brunet.AppData) {})
	}

	// Routers start first, staggered, bootstrapping off earlier routers.
	var t sim.Time
	for i := range routers {
		i := i
		n := routers[i]
		n.Host().Sim().At(t, func() {
			var boot []brunet.URI
			if i > 0 {
				boot = []brunet.URI{
					routers[i%i].BootstrapURI(),
					routers[(i+7)%i].BootstrapURI(),
					routers[(i+13)%i].BootstrapURI(),
				}
			}
			if err := n.Start(boot); err != nil {
				panic(fmt.Sprintf("sym-ring: start %s: %v", n.Addr(), err))
			}
		})
		t = t.Add(250 * sim.Millisecond)
	}
	t = t.Add(opts.BatchInterval)

	// NATed joins in geometrically ramping batches. Every joiner boots off
	// three deterministic router picks: NATed peers cannot accept inbound
	// dials, so the public routers are the whole usable bootstrap pool.
	type batchMark struct {
		end    sim.Time
		joined int
	}
	var marks []batchMark
	started := 0
	for started < opts.Nodes {
		size := started
		if size < 1 {
			size = 1
		}
		if size > opts.BatchJoin {
			size = opts.BatchJoin
		}
		if size > opts.Nodes-started {
			size = opts.Nodes - started
		}
		step := opts.BatchInterval / 2 / sim.Duration(size)
		if step < sim.Microsecond {
			step = sim.Microsecond
		}
		for j := 0; j < size; j++ {
			i := started + j
			n := nodes[i]
			at := t.Add(sim.Duration(j) * step)
			n.Host().Sim().At(at, func() {
				r := len(routers)
				boot := []brunet.URI{
					routers[i%r].BootstrapURI(),
					routers[(i+7)%r].BootstrapURI(),
					routers[(i+13)%r].BootstrapURI(),
				}
				if err := n.Start(boot); err != nil {
					panic(fmt.Sprintf("sym-ring: start %s: %v", n.Addr(), err))
				}
			})
		}
		started += size
		t = t.Add(opts.BatchInterval)
		marks = append(marks, batchMark{end: t, joined: started})
	}

	members := make([]*brunet.Node, 0, len(routers)+len(nodes))
	members = append(members, routers...)
	members = append(members, nodes...)

	t0 := time.Now()
	record := func(virtual sim.Time, joined int) NATPoint {
		wall := time.Since(t0).Seconds()
		p := NATPoint{
			WallSec:    wall,
			VirtualSec: virtual.Seconds(),
			Joined:     joined,
			Events:     eng.Processed(),
		}
		if wall > 0 {
			p.JoinsPerSec = float64(joined) / wall
		}
		routable := 0
		for _, n := range members {
			if n.IsRoutable() {
				routable++
			}
			p.Tunnels += n.Stats.Get("tunnel.established")
			p.UpgradeProbes += n.Stats.Get("tunnel.upgrade_probes")
		}
		p.RoutableFrac = float64(routable) / float64(len(routers)+joined)
		if opts.OnProgress != nil {
			opts.OnProgress(p)
		}
		return p
	}

	res := &SymRingResult{
		Seed:         opts.Seed,
		Routers:      opts.Routers,
		Nodes:        opts.Nodes,
		Shards:       eng.Shards(),
		Workers:      eng.Workers(),
		BatchJoin:    opts.BatchJoin,
		WANLatencyMs: float64(opts.WANLatency) / float64(sim.Millisecond),
		MaxProcs:     runtime.GOMAXPROCS(0),
	}
	for _, m := range marks {
		eng.RunUntil(m.end)
		res.Series = append(res.Series, record(m.end, m.joined))
	}
	end := t.Add(opts.Settle)
	eng.RunUntil(end)
	res.Series = append(res.Series, record(end, opts.Nodes))
	res.BuildWallSec = time.Since(t0).Seconds()

	// Audit the converged ring exactly as the serial harness does.
	routable := 0
	for _, n := range members {
		if n.IsRoutable() {
			routable++
		}
		res.TunnelsEstablished += n.Stats.Get("tunnel.established")
		res.TunnelsUpgraded += n.Stats.Get("tunnel.upgraded")
		res.RelaysLost += n.Stats.Get("tunnel.relay_lost")
		res.RelaysReselected += n.Stats.Get("tunnel.relay_reselected")
		res.UpgradeProbes += n.Stats.Get("tunnel.upgrade_probes")
	}
	res.RoutableFrac = float64(routable) / float64(len(members))
	ring := append([]*brunet.Node(nil), members...)
	sort.Slice(ring, func(i, j int) bool { return ring[i].Addr().Less(ring[j].Addr()) })
	for i, n := range ring {
		succ := ring[(i+1)%len(ring)]
		c := n.ConnectionTo(succ.Addr())
		switch {
		case c == nil || !c.Has(brunet.StructuredNear):
			res.MissingNear++
		case c.Tunneled():
			res.TunnelNear++
		default:
			res.DirectNear++
		}
	}

	// End-to-end probes between random NATed pairs, delivered through
	// relay-backed tunnel routes; counted via per-node route.delivered
	// deltas (a shared closure counter would race across shards).
	res.ProbesSent = opts.Probes
	var del0 int64
	for _, n := range members {
		del0 += n.Stats.Get("route.delivered")
	}
	const spacing = 2 * sim.Millisecond
	base := eng.Now()
	for i := 0; i < opts.Probes; i++ {
		a := int(uint32(i) * 2654435761 % uint32(len(nodes)))
		b := int((uint32(i)*40503 + 2654435769) % uint32(len(nodes)))
		if a == b {
			b = (b + 1) % len(nodes)
		}
		src, dstAddr := nodes[a], nodes[b].Addr()
		src.Host().Sim().At(base.Add(sim.Duration(i)*spacing), func() {
			src.SendTo(dstAddr, brunet.DeliverExact, brunet.AppData{Proto: "nat", Size: 64})
		})
	}
	eng.RunUntil(base.Add(sim.Duration(opts.Probes)*spacing + 10*sim.Second))
	var del1 int64
	for _, n := range members {
		del1 += n.Stats.Get("route.delivered")
	}
	res.ProbesDelivered = int(del1 - del0)
	res.EventsTotal = eng.Processed()
	return res, nil
}
