package experiments

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"wow/internal/brunet"
	"wow/internal/sim"
)

// topologySignature flattens the whole overlay's connection tables into one
// string: per node, the sorted peer list with role sets. Two builds that
// produce the same signature converged to the same topology.
func topologySignature(nodes []*brunet.Node) string {
	var b strings.Builder
	for _, n := range nodes {
		fmt.Fprintf(&b, "%v:", n.Addr())
		for _, c := range n.Connections() {
			types := c.Types()
			sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
			fmt.Fprintf(&b, " %v%v", c.Peer, types)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func buildBatched(t *testing.T, workers int) (*ScaleOverlay, ScaleOpts) {
	t.Helper()
	opts := ScaleOpts{
		Seed:          3,
		Nodes:         240,
		Sites:         8,
		Shards:        4,
		Workers:       workers,
		BatchJoin:     48,
		BatchInterval: 4 * sim.Second,
		Settle:        90 * sim.Second,
	}
	ov, err := BuildScaleOverlay(opts)
	if err != nil {
		t.Fatal(err)
	}
	return ov, opts
}

// TestScaleShardedBuildConverges: the batched, sharded build produces a
// fully routable overlay whose near-neighbor links trace the sorted
// address ring.
func TestScaleShardedBuildConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-hundred-node build")
	}
	ov, opts := buildBatched(t, 0)
	defer ov.Engine.Close()
	if frac := ov.RoutableFrac(); frac != 1.0 {
		t.Fatalf("routable fraction = %.3f, want 1.0", frac)
	}
	// Ring consistency: every node must hold a structured connection to
	// its true clockwise successor in sorted address order.
	byAddr := make([]*brunet.Node, len(ov.Nodes))
	copy(byAddr, ov.Nodes)
	sort.Slice(byAddr, func(i, j int) bool { return byAddr[i].Addr().Less(byAddr[j].Addr()) })
	missing := 0
	for i, n := range byAddr {
		succ := byAddr[(i+1)%len(byAddr)]
		c := n.ConnectionTo(succ.Addr())
		if c == nil || !c.Has(brunet.StructuredNear) {
			missing++
		}
	}
	if missing != 0 {
		t.Errorf("%d/%d nodes missing their ring successor link", missing, len(byAddr))
	}
	if len(ov.Series) == 0 {
		t.Error("batched build recorded no time series")
	}
	last := ov.Series[len(ov.Series)-1]
	if last.Joined != opts.Nodes {
		t.Errorf("final series point joined = %d, want %d", last.Joined, opts.Nodes)
	}
	if last.Events == 0 {
		t.Error("final series point has zero events")
	}
}

// TestScaleShardedWorkerInvariance: the determinism contract end to end —
// the converged topology, merged network stats and total event count of a
// sharded build must be identical whether 1 or 4 workers executed it.
func TestScaleShardedWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-hundred-node build x2")
	}
	ov1, _ := buildBatched(t, 1)
	total1 := ov1.Net.TotalStats()
	sig1, stats1, ev1 := topologySignature(ov1.Nodes), total1.String(), ov1.Engine.Processed()
	ov1.Engine.Close()
	ov4, _ := buildBatched(t, 4)
	total4 := ov4.Net.TotalStats()
	sig4, stats4, ev4 := topologySignature(ov4.Nodes), total4.String(), ov4.Engine.Processed()
	ov4.Engine.Close()
	if sig1 != sig4 {
		t.Error("converged topology depends on worker count")
	}
	if stats1 != stats4 {
		t.Errorf("network stats depend on worker count:\n  1: %s\n  4: %s", stats1, stats4)
	}
	if ev1 != ev4 {
		t.Errorf("event totals depend on worker count: %d vs %d", ev1, ev4)
	}
}

// TestScaleParallelMeasurement: the timed measurement phase delivers every
// packet and reports sane aggregates.
func TestScaleParallelMeasurement(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-hundred-node build")
	}
	var points int
	res, err := RunScale(ScaleOpts{
		Seed:          5,
		Nodes:         160,
		Packets:       200,
		Sites:         8,
		Shards:        4,
		BatchJoin:     40,
		BatchInterval: 4 * sim.Second,
		Settle:        90 * sim.Second,
		OnProgress:    func(ScalePoint) { points++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shards != 4 || res.BatchJoin != 40 {
		t.Fatalf("parallel fields not recorded: %+v", res)
	}
	if res.Delivered != res.PacketsSent {
		t.Errorf("delivered %d of %d measurement packets", res.Delivered, res.PacketsSent)
	}
	if res.AvgHops <= 1 {
		t.Errorf("avg hops = %.2f, want > 1 on a 160-node ring", res.AvgHops)
	}
	if res.RoutableFrac != 1.0 {
		t.Errorf("routable fraction = %.3f", res.RoutableFrac)
	}
	if points == 0 || len(res.Series) != points {
		t.Errorf("series: OnProgress fired %d times, Series has %d points", points, len(res.Series))
	}
	if out := res.String(); !strings.Contains(out, "parallel: 4 shards") {
		t.Errorf("String() missing parallel line:\n%s", out)
	}
}

// TestScaleBatchedUnshardedBuild: BatchJoin without Shards runs the
// batched bootstrap on a single event queue (K=1 engine) and still
// converges — the batching and sharding knobs are independent.
func TestScaleBatchedUnshardedBuild(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-hundred-node build")
	}
	ov, err := BuildScaleOverlay(ScaleOpts{
		Seed:          9,
		Nodes:         120,
		Sites:         6,
		BatchJoin:     30,
		BatchInterval: 4 * sim.Second,
		Settle:        90 * sim.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ov.Engine.Close()
	if frac := ov.RoutableFrac(); frac != 1.0 {
		t.Fatalf("routable fraction = %.3f, want 1.0", frac)
	}
}
