package experiments

import (
	"fmt"
	"strings"

	"wow/internal/metrics"
	"wow/internal/middleware/scp"
	"wow/internal/sim"
	"wow/internal/testbed"
	"wow/internal/vm"
)

// Fig6Opts parameterizes the SCP-across-migration experiment of §V-C1.
type Fig6Opts struct {
	Seed int64
	// FileBytes is the transferred file; the paper used 720 MB.
	FileBytes int64
	// MigrateAt is the elapsed transfer time when migration starts
	// (~200 s in the paper).
	MigrateAt sim.Duration
	// TransferBps is the VM image copy rate; with the default 768 MB
	// image, 1.6 MB/s yields the paper's ~8 minute outage.
	TransferBps float64
	// Routers / PlanetLabHosts size the overlay.
	Routers, PlanetLabHosts int
}

func (o *Fig6Opts) fillDefaults() {
	if o.FileBytes == 0 {
		o.FileBytes = 720 << 20
	}
	if o.MigrateAt == 0 {
		o.MigrateAt = 200 * sim.Second
	}
	if o.TransferBps == 0 {
		o.TransferBps = 1.6 * (1 << 20)
	}
	if o.Routers == 0 {
		o.Routers = 118
	}
	if o.PlanetLabHosts == 0 {
		o.PlanetLabHosts = 20
	}
}

// Fig6Result captures the client-side transfer profile across the
// server's wide-area migration.
type Fig6Result struct {
	// Progress is (seconds, bytes on client disk) sampled every 5 s —
	// the Figure 6 curve.
	Progress metrics.Series
	// PreMBs / PostMBs are sustained transfer rates before migration and
	// after resumption (paper: 1.36 and 1.83 MB/s).
	PreMBs, PostMBs float64
	// StallSeconds is the longest window with no progress (paper: ~8
	// minutes of no routability).
	StallSeconds float64
	// Completed reports whether the full file arrived with no
	// application-level restart.
	Completed bool
	// TotalSeconds is the end-to-end transfer time.
	TotalSeconds float64
}

// String renders the summary.
func (r *Fig6Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 6: SCP transfer across server migration (UFL -> NWU)\n")
	fmt.Fprintf(&b, "  completed without restart: %v\n", r.Completed)
	fmt.Fprintf(&b, "  pre-migration rate:  %.2f MB/s (paper: 1.36)\n", r.PreMBs)
	fmt.Fprintf(&b, "  post-migration rate: %.2f MB/s (paper: 1.83)\n", r.PostMBs)
	fmt.Fprintf(&b, "  stall (no routability): %.0f s (paper: ~480 s)\n", r.StallSeconds)
	fmt.Fprintf(&b, "  total transfer time: %.0f s\n", r.TotalSeconds)
	return b.String()
}

// RunFig6 reproduces §V-C1: an SCP client at NWU downloads a 720 MB file
// from a server VM at UFL; mid-transfer the server VM is migrated to NWU
// (IPOP killed, VM suspended, image copied, VM resumed, IPOP restarted)
// and the transfer must resume without any application action.
func RunFig6(opts Fig6Opts) (*Fig6Result, error) {
	opts.fillDefaults()
	tb := testbed.Build(testbed.Config{
		Seed:           opts.Seed,
		Shortcuts:      true,
		Routers:        opts.Routers,
		PlanetLabHosts: opts.PlanetLabHosts,
		SettleTime:     5 * sim.Minute,
	})
	server := tb.VM("node003") // UFL
	client := tb.VM("node017") // NWU

	srv, err := scp.NewServer(server.Stack())
	if err != nil {
		return nil, fmt.Errorf("fig6: %w", err)
	}
	srv.Put("/data/dataset.tar", opts.FileBytes)

	// Warm the client-server path so the transfer starts over a formed
	// shortcut, as in the paper (nodes had communicated before).
	warm := tb.Sim.Tick(sim.Second, 0, func() {
		client.Stack().Ping(server.IP(), 64, 2*sim.Second, func(bool, sim.Duration) {})
	})
	tb.Sim.RunFor(2 * sim.Minute)
	warm.Stop()

	start := tb.Sim.Now()
	tr := scp.Fetch(client.Stack(), server.IP(), "/data/dataset.tar", 5*sim.Second, nil)

	// Kick off the migration at the configured elapsed time.
	var migErr error
	tb.Sim.At(start.Add(opts.MigrateAt), func() {
		dst := tb.NewHostAt("northwestern.edu")
		if err := server.Migrate(dst, vm.MigrationConfig{TransferBps: opts.TransferBps}, nil); err != nil {
			migErr = fmt.Errorf("fig6: migrate: %w", err)
			tb.Sim.Stop()
		}
	})

	for !tr.Done && migErr == nil && tb.Sim.Now().Sub(start) < 4*sim.Hour {
		tb.Sim.RunFor(sim.Minute)
	}
	if migErr != nil {
		return nil, migErr
	}

	res := &Fig6Result{
		Progress:  tr.Progress,
		Completed: tr.Done && tr.Err == nil && tr.Received == opts.FileBytes,
	}
	res.TotalSeconds = tb.Sim.Now().Sub(start).Seconds()

	// Derive rates and stall from the progress series.
	var stall, preEnd float64
	var lastT, lastB float64
	migAt := opts.MigrateAt.Seconds() + start.Seconds()
	for i := 0; i < res.Progress.Len(); i++ {
		t, bytes := res.Progress.At(i)
		if bytes == lastB && lastT > 0 {
			if s := t - lastT; s > stall {
				stall = s
			}
		} else {
			lastT = t
		}
		if t <= migAt {
			preEnd = bytes
		}
		lastB = bytes
	}
	res.StallSeconds = stall
	if opts.MigrateAt > 0 {
		res.PreMBs = preEnd / opts.MigrateAt.Seconds() / (1 << 20)
	}
	// Post rate: the sustained transfer rate once the connection has
	// recovered — the slope over the last minute of progress samples
	// (the paper quotes sustained bandwidths on both sides of the
	// migration).
	if res.Completed && res.Progress.Len() > 13 {
		n := res.Progress.Len()
		t1, b1 := res.Progress.At(n - 1)
		t0, b0 := res.Progress.At(n - 13) // 12 samples × 5 s = 60 s window
		if t1 > t0 && b1 > b0 {
			res.PostMBs = (b1 - b0) / (t1 - t0) / (1 << 20)
		}
	}
	return res, nil
}
