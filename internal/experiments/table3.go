package experiments

import (
	"fmt"
	"strings"
	"sync"

	"wow/internal/middleware/pvm"
	"wow/internal/sim"
	"wow/internal/testbed"
	"wow/internal/workloads"
)

// Table3Opts parameterizes the fastDNAml-PVM experiment of §V-D2.
type Table3Opts struct {
	Seed int64
	// Workload shapes the phylogenetic inference run; zero takes the
	// paper's 50-taxa dataset.
	Workload workloads.FastDNAmlConfig
	// Routers / PlanetLabHosts size the overlay.
	Routers, PlanetLabHosts int
}

func (o *Table3Opts) fillDefaults() {
	if o.Workload.Taxa == 0 {
		o.Workload = workloads.DefaultFastDNAml()
	}
	if o.Routers == 0 {
		o.Routers = 118
	}
	if o.PlanetLabHosts == 0 {
		o.PlanetLabHosts = 20
	}
}

// Table3Result is the paper's Table III.
type Table3Result struct {
	// SeqNode002 / SeqNode034 are sequential execution wall times in
	// seconds (paper: 22272 and 45191).
	SeqNode002, SeqNode034 float64
	// Par15Shortcut, Par30NoShortcut, Par30Shortcut are parallel wall
	// times (paper: 2439, 2033, 1642).
	Par15Shortcut, Par30NoShortcut, Par30Shortcut float64
}

// Speedup computes parallel speedup with respect to node002's sequential
// time, as the paper reports.
func (r *Table3Result) Speedup(parallel float64) float64 {
	if parallel <= 0 {
		return 0
	}
	return r.SeqNode002 / parallel
}

// String renders Table III.
func (r *Table3Result) String() string {
	var b strings.Builder
	b.WriteString("Table III: fastDNAml-PVM execution times and speedups\n")
	fmt.Fprintf(&b, "  sequential node002: %8.0f s (paper: 22272)\n", r.SeqNode002)
	fmt.Fprintf(&b, "  sequential node034: %8.0f s (paper: 45191)\n", r.SeqNode034)
	fmt.Fprintf(&b, "  15 nodes, shortcuts:    %6.0f s  speedup %4.1f (paper: 2439, 9.1x)\n", r.Par15Shortcut, r.Speedup(r.Par15Shortcut))
	fmt.Fprintf(&b, "  30 nodes, no shortcuts: %6.0f s  speedup %4.1f (paper: 2033, 11.0x)\n", r.Par30NoShortcut, r.Speedup(r.Par30NoShortcut))
	fmt.Fprintf(&b, "  30 nodes, shortcuts:    %6.0f s  speedup %4.1f (paper: 1642, 13.6x)\n", r.Par30Shortcut, r.Speedup(r.Par30Shortcut))
	return b.String()
}

// runFastDNAmlParallel runs the workload over the first `workers` Table I
// compute nodes after the master (node002), returning wall seconds.
func runFastDNAmlParallel(opts Table3Opts, workers int, shortcuts bool) (float64, error) {
	tb := testbed.Build(testbed.Config{
		Seed:           opts.Seed,
		Shortcuts:      shortcuts,
		Routers:        opts.Routers,
		PlanetLabHosts: opts.PlanetLabHosts,
		SettleTime:     5 * sim.Minute,
	})
	master := tb.VM("node002")
	m, err := pvm.NewMaster(master.Stack())
	if err != nil {
		return 0, fmt.Errorf("table3: %w", err)
	}
	defs := testbed.TableI()
	n := 0
	for _, def := range defs[1:] { // skip node002 (master)
		if n >= workers {
			break
		}
		if _, err := pvm.NewWorker(tb.VM(def.Name), master.IP()); err != nil {
			return 0, fmt.Errorf("table3: worker %s: %w", def.Name, err)
		}
		n++
	}
	tb.Sim.RunFor(2 * sim.Minute) // enrollment

	m.SetRoundBroadcast(opts.Workload.BroadcastBytes)
	var elapsed sim.Duration
	if err := m.Run(opts.Workload.Rounds(), func(d sim.Duration) { elapsed = d }); err != nil {
		return 0, fmt.Errorf("table3: %w", err)
	}
	deadline := tb.Sim.Now().Add(72 * sim.Hour)
	for elapsed == 0 && tb.Sim.Now() < deadline {
		tb.Sim.RunFor(10 * sim.Minute)
	}
	return elapsed.Seconds(), nil
}

// runFastDNAmlSequential executes the whole workload on one VM's CPU.
func runFastDNAmlSequential(opts Table3Opts, node string) float64 {
	tb := testbed.Build(testbed.Config{
		Seed:           opts.Seed,
		Shortcuts:      true,
		Routers:        24, // sequential runs need no wide overlay
		PlanetLabHosts: 6,
		SettleTime:     2 * sim.Minute,
	})
	v := tb.VM(node)
	start := tb.Sim.Now()
	var doneAt sim.Time
	v.Execute(opts.Workload.SequentialCPU(), func() { doneAt = tb.Sim.Now() })
	deadline := start.Add(200 * sim.Hour)
	for doneAt == 0 && tb.Sim.Now() < deadline {
		tb.Sim.RunFor(sim.Hour)
	}
	return doneAt.Sub(start).Seconds()
}

// RunTable3 reproduces Table III: sequential fastDNAml on the fastest-
// and slowest-hardware nodes, and PVM-parallel runs on 15 and 30 WOW
// nodes with and without shortcut connections. The five configurations
// are independent simulations and run on parallel goroutines, one
// deterministic Simulator each.
func RunTable3(opts Table3Opts) (*Table3Result, error) {
	opts.fillDefaults()
	res := &Table3Result{}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	run := func(dst *float64, f func() (float64, error)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := f()
			mu.Lock()
			if err != nil && firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
			*dst = v
		}()
	}
	run(&res.SeqNode002, func() (float64, error) { return runFastDNAmlSequential(opts, "node002"), nil })
	run(&res.SeqNode034, func() (float64, error) { return runFastDNAmlSequential(opts, "node034"), nil })
	run(&res.Par15Shortcut, func() (float64, error) { return runFastDNAmlParallel(opts, 15, true) })
	run(&res.Par30NoShortcut, func() (float64, error) { return runFastDNAmlParallel(opts, 30, false) })
	run(&res.Par30Shortcut, func() (float64, error) { return runFastDNAmlParallel(opts, 30, true) })
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return res, nil
}
