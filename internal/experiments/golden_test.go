package experiments

import (
	"fmt"
	"strings"
	"testing"
)

// The golden-seed tests pin complete experiment summaries, byte for byte,
// to values captured before the hot-path overhaul (ring-indexed routing,
// comparator address math, pooled sim events and packets). Experiment
// outputs are pure functions of the seed, so any drift here means a
// routing or scheduling decision changed — the refactor contract is that
// none did. The expected values live inline (not in a golden file) so a
// diff shows exactly which protocol outcome moved.

const goldenFig8Seed5 = "Figure 8 / §V-D1: 120 PBS/MEME jobs, shortcuts enabled\n" +
	"  wall-clock time: 146 s; throughput 49.2 jobs/minute\n" +
	"  job wall time: mean 26.9 s, std 5.9 s (failed: 0)\n" +
	"  execution-time histogram:\n" +
	"       8 s:   0.0% \n" +
	"      24 s:  93.3% ###########################################################################\n" +
	"      40 s:   4.2% ###\n" +
	"      56 s:   2.5% ##\n" +
	"      72 s:   0.0% \n" +
	"      88 s:   0.0% \n" +
	"  job share by node: node032=1.7% node033=3.3% node034=1.7%\n"

const goldenPartitionHealSeed5 = "Partition repair: 180 s site cut (NWU + half of PlanetLab vs rest)\n" +
	"  cut confirmed mid-window: true\n" +
	"  all probe pairs recovered: true\n" +
	"partition-heal           recovery: 396.0s\n" +
	"  ping.dead              362\n" +
	"  ping.stale             2\n" +
	"  ping.fast_probe        0\n" +
	"  close.forwarded        2609\n" +
	"  handoff.sent           0\n" +
	"  handoff.received       0\n" +
	"  handoff.linked         0\n" +
	"  relink.attempts        1186\n" +
	"  relink.success         261\n" +
	"  relink.giveup          0\n" +
	"  link.giveup            117\n" +
	"  fault timeline:\n" +
	"    t=429.000s partition begin\n" +
	"    t=609.000s partition end\n"

// diffLine locates the first line where got and want diverge, for a
// readable failure message.
func diffLine(got, want string) string {
	g, w := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(g) && i < len(w); i++ {
		if g[i] != w[i] {
			return fmt.Sprintf("line %d:\n  got:  %s\n  want: %s", i+1, g[i], w[i])
		}
	}
	return "outputs differ in length"
}

func TestGoldenSeedFig8(t *testing.T) {
	res, err := RunFig8(Fig8Opts{Seed: 5, Jobs: 120, Routers: 40, PlanetLabHosts: 8, Shortcuts: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.String(); got != goldenFig8Seed5 {
		t.Errorf("fig8 seed-5 summary drifted from pre-refactor baseline; %s\nfull output:\n%s",
			diffLine(got, goldenFig8Seed5), got)
	}
}

func TestGoldenSeedPartitionHeal(t *testing.T) {
	res, err := RunPartitionHeal(PartitionHealOpts{Seed: 5, Routers: 30, PlanetLabHosts: 6})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.String(); got != goldenPartitionHealSeed5 {
		t.Errorf("partition-heal seed-5 summary drifted from pre-refactor baseline; %s\nfull output:\n%s",
			diffLine(got, goldenPartitionHealSeed5), got)
	}
}

// TestRunScale exercises the scale harness end to end at a size small
// enough for the unit-test budget: the overlay must fully converge and
// deliver every measured packet.
func TestRunScale(t *testing.T) {
	res, err := RunScale(ScaleOpts{Seed: 3, Nodes: 300, Packets: 300, Sites: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.RoutableFrac != 1 {
		t.Errorf("routable fraction = %.3f, want 1.0", res.RoutableFrac)
	}
	if res.Delivered != res.PacketsSent {
		t.Errorf("delivered %d of %d packets", res.Delivered, res.PacketsSent)
	}
	if res.AvgHops <= 1 {
		t.Errorf("avg hops = %.2f, want multi-hop routes", res.AvgHops)
	}
	if !strings.Contains(res.String(), "300-node overlay") {
		t.Errorf("summary missing node count:\n%s", res)
	}
}
