package experiments

import (
	"fmt"
	"strings"
	"testing"
)

// The golden-seed tests pin complete experiment summaries, byte for byte.
// Experiment outputs are pure functions of the seed, so any drift here
// means a routing or scheduling decision changed. The expected values live
// inline (not in a golden file) so a diff shows exactly which protocol
// outcome moved. Re-captured with the tunnel-edge subsystem: CTMs now
// carry relay-candidate lists (larger wire size shifts event timing), and
// partition heal converges much faster — nodes that exhaust a partition
// peer's stale URIs fall back to tunnel edges through already-healed
// neighbors instead of waiting out further relink rounds, and a direct
// dial from a tunneled peer wins linking races outright (recovery 88 s
// versus 396 s before tunnels).

const goldenFig8Seed5 = "Figure 8 / §V-D1: 120 PBS/MEME jobs, shortcuts enabled\n" +
	"  wall-clock time: 149 s; throughput 48.5 jobs/minute\n" +
	"  job wall time: mean 27.4 s, std 5.9 s (failed: 0)\n" +
	"  execution-time histogram:\n" +
	"       8 s:   0.0% \n" +
	"      24 s:  89.2% #######################################################################\n" +
	"      40 s:   8.3% #######\n" +
	"      56 s:   2.5% ##\n" +
	"      72 s:   0.0% \n" +
	"      88 s:   0.0% \n" +
	"  job share by node: node032=1.7% node034=2.5%\n"

const goldenPartitionHealSeed5 = "Partition repair: 180 s site cut (NWU + half of PlanetLab vs rest)\n" +
	"  cut confirmed mid-window: true\n" +
	"  all probe pairs recovered: true\n" +
	"partition-heal           recovery: 88.0s\n" +
	"  ping.dead              388\n" +
	"  ping.stale             0\n" +
	"  ping.fast_probe        0\n" +
	"  close.forwarded        2797\n" +
	"  handoff.sent           0\n" +
	"  handoff.received       0\n" +
	"  handoff.linked         0\n" +
	"  relink.attempts        1156\n" +
	"  relink.success         201\n" +
	"  relink.giveup          0\n" +
	"  link.giveup            33\n" +
	"  fault timeline:\n" +
	"    t=429.000s partition begin\n" +
	"    t=609.000s partition end\n"

const goldenSymRingSeed5 = "All-symmetric-NAT ring: 20 NATed + 3 public routers, seed 5\n" +
	"  routable: 100.0%; ring: 0 missing near links (6 direct, 19 tunneled)\n" +
	"  tunnels: 157 established, 18 upgraded; relays: 52 lost, 4 reselected\n" +
	"  vip ping (sym ws <-> sym ws): 4/4\n" +
	"  migration to public host: vip outage 26.4 s\n"

// diffLine locates the first line where got and want diverge, for a
// readable failure message.
func diffLine(got, want string) string {
	g, w := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(g) && i < len(w); i++ {
		if g[i] != w[i] {
			return fmt.Sprintf("line %d:\n  got:  %s\n  want: %s", i+1, g[i], w[i])
		}
	}
	return "outputs differ in length"
}

func TestGoldenSeedFig8(t *testing.T) {
	res, err := RunFig8(Fig8Opts{Seed: 5, Jobs: 120, Routers: 40, PlanetLabHosts: 8, Shortcuts: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.String(); got != goldenFig8Seed5 {
		t.Errorf("fig8 seed-5 summary drifted from pre-refactor baseline; %s\nfull output:\n%s",
			diffLine(got, goldenFig8Seed5), got)
	}
}

func TestGoldenSeedPartitionHeal(t *testing.T) {
	res, err := RunPartitionHeal(PartitionHealOpts{Seed: 5, Routers: 30, PlanetLabHosts: 6})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.String(); got != goldenPartitionHealSeed5 {
		t.Errorf("partition-heal seed-5 summary drifted from pre-refactor baseline; %s\nfull output:\n%s",
			diffLine(got, goldenPartitionHealSeed5), got)
	}
}

// TestGoldenSeedSymRing pins the all-symmetric-NAT ring summary: tunnel
// establishment, relay churn, in-place upgrades and the migration outage
// are all pure functions of the seed, so drift here means the tunnel
// subsystem's decisions moved.
func TestGoldenSeedSymRing(t *testing.T) {
	res, err := RunSymmetricRing(SymRingOpts{Seed: 5, Routers: 3, Nodes: 20, Pings: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.String(); got != goldenSymRingSeed5 {
		t.Errorf("symmetric-ring seed-5 summary drifted; %s\nfull output:\n%s",
			diffLine(got, goldenSymRingSeed5), got)
	}
}

// TestRunScale exercises the scale harness end to end at a size small
// enough for the unit-test budget: the overlay must fully converge and
// deliver every measured packet.
func TestRunScale(t *testing.T) {
	res, err := RunScale(ScaleOpts{Seed: 3, Nodes: 300, Packets: 300, Sites: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.RoutableFrac != 1 {
		t.Errorf("routable fraction = %.3f, want 1.0", res.RoutableFrac)
	}
	if res.Delivered != res.PacketsSent {
		t.Errorf("delivered %d of %d packets", res.Delivered, res.PacketsSent)
	}
	if res.AvgHops <= 1 {
		t.Errorf("avg hops = %.2f, want multi-hop routes", res.AvgHops)
	}
	if !strings.Contains(res.String(), "300-node overlay") {
		t.Errorf("summary missing node count:\n%s", res)
	}
}
