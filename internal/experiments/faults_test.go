package experiments

import (
	"strings"
	"testing"
)

// TestGracefulLeaveShrinksWindow is the acceptance check for the graceful
// migration path: the overlay's ring-repair window with a leave/handoff
// must be strictly smaller than with the paper's cold kill.
func TestGracefulLeaveShrinksWindow(t *testing.T) {
	res, err := RunMigrationOutage(MigrationOutageOpts{Seed: 1, Routers: 24, PlanetLabHosts: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.BaselineWindowSec < 0 || res.GracefulWindowSec < 0 {
		t.Fatalf("window censored: baseline=%.1f graceful=%.1f", res.BaselineWindowSec, res.GracefulWindowSec)
	}
	if res.GracefulWindowSec >= res.BaselineWindowSec {
		t.Fatalf("graceful window %.1fs not smaller than cold-kill window %.1fs",
			res.GracefulWindowSec, res.BaselineWindowSec)
	}
	// The cold kill heals via ping timeouts; the graceful path must have
	// actually used the handoff protocol.
	if res.Graceful.Counters.Get("handoff.received") == 0 {
		t.Errorf("graceful run recorded no handoffs: %s", res.Graceful.Counters.String())
	}
	if res.Baseline.Counters.Get("ping.dead") == 0 {
		t.Errorf("cold run recorded no ping deaths: %s", res.Baseline.Counters.String())
	}
	if !strings.Contains(res.String(), "ring-repair window") {
		t.Error("String malformed")
	}
}

func TestPartitionHealRecovers(t *testing.T) {
	res, err := RunPartitionHeal(PartitionHealOpts{Seed: 1, Routers: 30, PlanetLabHosts: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !res.CutConfirmed {
		t.Fatal("partition did not sever cross-site traffic")
	}
	if !res.Healed {
		t.Fatalf("overlay did not re-merge after the partition healed:\n%s", res.String())
	}
	if res.Report.RecoverySec < 0 {
		t.Fatal("report missing recovery time")
	}
	// Re-merging severed rings requires the repair overlord's cached
	// direct re-links.
	if res.Report.Counters.Get("relink.attempts") == 0 {
		t.Errorf("no re-link attempts recorded: %s", res.Report.Counters.String())
	}
	if len(res.Timeline) != 2 {
		t.Errorf("timeline %v, want begin+end", res.Timeline)
	}
}

func TestCorrelatedChurnRecovers(t *testing.T) {
	res, err := RunCorrelatedChurn(ChurnWaveOpts{Seed: 1, Routers: 30, PlanetLabHosts: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Healed {
		t.Fatalf("overlay did not heal after the churn wave:\n%s", res.String())
	}
	if res.Churned == 0 || len(res.Timeline) != 2*res.Churned {
		t.Errorf("timeline has %d entries for %d churned routers, want kill+restart each",
			len(res.Timeline), res.Churned)
	}
}
