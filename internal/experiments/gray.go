package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"wow/internal/brunet"
	"wow/internal/faults"
	"wow/internal/phys"
	"wow/internal/sim"
	"wow/internal/trace"
)

// This file is the gray-failure survivability harness: a router-only
// overlay whose first quarter of sites degrades — sustained latency
// variance (JitterBurst) plus a duty-cycled uplink (LinkFlap) — while
// clean-site nodes are crashed outright. The harness runs the same
// scenario under the fixed-timeout and the adaptive (Jacobson/Karn)
// failure detectors and scores them against each other: detection latency
// for the real crashes, false suspicions on the merely-degraded links, and
// end-state routability. Everything is deterministic in (Seed, Shards) and
// worker-invariant; the time-functional gray faults and the node-local
// protocol RNG (Config.JitterSeed) make serial and sharded runs agree.

// GrayOpts parameterizes RunGrayFailures. Zero fields take the defaults in
// fillDefaults.
type GrayOpts struct {
	Seed int64
	// Nodes is the overlay size (bare Brunet routers, no NAT/IPOP layers —
	// the detector and relay machinery under test lives in the overlay).
	Nodes int
	// Sites spreads hosts round-robin; the first quarter of sites is the
	// gray zone, the last site is the clean crash site.
	Sites int
	// Adaptive selects the detector: false = fixed PingTimeout deadlines,
	// true = srtt + RTOK·rttvar clamped to [RTOMin, RTOMax].
	Adaptive bool
	// Windows and WindowLen shape the measurement phase: the gray faults
	// stay armed for Windows·WindowLen and one series sample is taken per
	// window.
	Windows   int
	WindowLen sim.Duration
	// Settle is the convergence time before faults arm.
	Settle sim.Duration
	// Kills is how many clean-site nodes are crashed (ungracefully)
	// during the fault phase, one per window starting at window 1.
	Kills int
	// WANLatency is the one-way inter-site delay (also the sharded
	// engine's lookahead floor).
	WANLatency sim.Duration
	// JitterAmp is the gray zone's mean added one-way delay; per-packet
	// the added delay is uniform in [0, 2·JitterAmp).
	JitterAmp sim.Duration
	// FlapPeriod/FlapUp duty-cycle the gray zone's uplink: up for FlapUp
	// out of every FlapPeriod, dead for the remainder.
	FlapPeriod sim.Duration
	FlapUp     sim.Duration

	// TraceSample, when non-zero, arms the flight recorder: every node
	// samples 1-in-TraceSample of its originations for hop-by-hop route
	// tracing. Sampling is deterministic in (node address, origination
	// sequence), so the traced subset is identical across engines.
	TraceSample uint64
	// TraceHealth, when non-zero (and tracing is armed), emits one
	// health.node snapshot per node at this period. The ticker is
	// jitter-free and read-only: protocol outcomes are unchanged.
	TraceHealth sim.Duration

	// Shards runs the simulation on a sim.Sharded engine with this many
	// shards; 0 keeps the classic serial event queue.
	Shards int
	// Workers bounds the sharded engine's goroutines; results never
	// depend on it.
	Workers int
	// OnProgress, when set, observes every window sample as it is taken.
	OnProgress func(GrayPoint)
}

func (o *GrayOpts) fillDefaults() {
	if o.Nodes == 0 {
		o.Nodes = 32
	}
	if o.Sites == 0 {
		o.Sites = 8
	}
	if o.Windows == 0 {
		o.Windows = 8
	}
	if o.WindowLen == 0 {
		o.WindowLen = 30 * sim.Second
	}
	if o.Settle == 0 {
		o.Settle = 3 * sim.Minute
	}
	if o.Kills == 0 {
		o.Kills = 3
	}
	if o.WANLatency == 0 {
		o.WANLatency = 40 * sim.Millisecond
	}
	if o.JitterAmp == 0 {
		o.JitterAmp = 2 * sim.Second
	}
	if o.FlapPeriod == 0 {
		o.FlapPeriod = 25 * sim.Second
	}
	if o.FlapUp == 0 {
		o.FlapUp = 19 * sim.Second
	}
	if o.Shards > 1 {
		if o.Workers == 0 {
			o.Workers = runtime.GOMAXPROCS(0)
		}
		if o.Workers > o.Shards {
			o.Workers = o.Shards
		}
	}
}

// grayConfig is the protocol schedule both detectors share: FastTestConfig
// link/repair constants (paper-default relinking would outlast the run)
// with shortcuts off and the node-local jitter RNG armed — the latter is
// what makes the run's outcome independent of engine sharding.
func grayConfig(seed int64, adaptive bool) brunet.Config {
	cfg := brunet.FastTestConfig()
	cfg.Shortcut = nil
	cfg.JitterSeed = seed*2 + 1
	cfg.AdaptiveRTO = adaptive
	return cfg
}

// GrayPoint is one per-window sample of a gray-failure run. The suspicion
// and death fields are deltas over the window; MeanDetectMs is the mean
// liveness.detect_ms of the window's death verdicts (0 when none).
type GrayPoint struct {
	Detector   string // "fixed" or "adaptive"
	Window     int
	VirtualSec float64
	WallSec    float64
	// RoutableFrac is the live-node routability at the window boundary
	// (crashed nodes excluded).
	RoutableFrac float64
	// FalseSuspects counts wrongly escalated liveness verdicts this
	// window: premature ping timeouts plus fast-probe suspicions cleared
	// by later traffic.
	FalseSuspects int64
	// Confirmed counts forwarded suspicions that ended in a death verdict.
	Confirmed int64
	// Deaths counts ping-timeout death verdicts.
	Deaths int64
	// MeanDetectMs is the mean silence time (ms) behind this window's
	// death verdicts.
	MeanDetectMs float64
	Events       uint64
}

// GrayKill records one scheduled crash and how long the overlay took to
// fully forget the victim (every surviving node's connection dropped).
type GrayKill struct {
	Node      string
	AtSec     float64
	DetectSec float64
}

// GrayResult summarizes one detector's gray-failure run.
type GrayResult struct {
	Seed     int64
	Detector string
	Adaptive bool
	Nodes    int
	Sites    int
	Windows  int
	Kills    []GrayKill

	// FinalRoutable is the surviving fleet's routability after cool-down.
	FinalRoutable float64
	// MeanDetectSec is the mean crash-to-forgotten latency over Kills.
	MeanDetectSec float64
	// FalseSuspects / Confirmed / Deaths are fleet totals over the fault
	// phase.
	FalseSuspects int64
	Confirmed     int64
	Deaths        int64
	EventsTotal   uint64
	WallSec       float64
	Timeline      string

	Shards  int `json:",omitempty"`
	Workers int `json:",omitempty"`
	Series  []GrayPoint

	// Trace holds the run's merged flight-recorder stream (empty unless
	// GrayOpts.TraceSample armed it). Excluded from the summary JSON —
	// wow-bench streams each record as its own JSONL envelope instead.
	Trace []trace.Record `json:"-"`
}

// String renders the run summary.
func (r *GrayResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Gray failures: %d nodes / %d sites, %s detector, seed %d\n",
		r.Nodes, r.Sites, r.Detector, r.Seed)
	if r.Shards > 0 {
		fmt.Fprintf(&b, "  parallel: %d shards x %d workers\n", r.Shards, r.Workers)
	}
	fmt.Fprintf(&b, "  crashes: %d, mean detection %.1f s\n", len(r.Kills), r.MeanDetectSec)
	fmt.Fprintf(&b, "  false suspicions: %d (confirmed: %d, deaths: %d)\n",
		r.FalseSuspects, r.Confirmed, r.Deaths)
	fmt.Fprintf(&b, "  final routability: %.1f%%\n", r.FinalRoutable*100)
	return b.String()
}

// grayCounters reads the fleet-wide liveness counters.
type grayCounters struct {
	falseSuspects int64 // premature_timeout + false_suspect
	confirmed     int64
	deaths        int64
	detectMs      int64
}

func readGrayCounters(nodes []*brunet.Node) grayCounters {
	var c grayCounters
	for _, n := range nodes {
		c.falseSuspects += n.Stats.Get("liveness.premature_timeout") + n.Stats.Get("liveness.false_suspect")
		c.confirmed += n.Stats.Get("liveness.suspect_confirmed")
		c.deaths += n.Stats.Get("ping.dead")
		c.detectMs += n.Stats.Get("liveness.detect_ms")
	}
	return c
}

// RunGrayFailures builds the overlay, degrades the gray zone for the whole
// fault phase, crashes clean-site nodes, and samples the detector's
// behavior per window. The run is deterministic in (Seed, Shards) and
// identical across serial and sharded engines.
func RunGrayFailures(opts GrayOpts) (*GrayResult, error) {
	opts.fillDefaults()
	if opts.Kills >= opts.Windows {
		return nil, fmt.Errorf("gray: %d kills need at least %d windows", opts.Kills, opts.Kills+1)
	}

	// Stand up the fabric: serial or sharded, same latency model.
	var (
		s   *sim.Simulator
		eng *sim.Sharded
		net *phys.Network
	)
	latency := phys.UniformLatency(
		phys.PathModel{OneWay: sim.Millisecond},
		phys.PathModel{OneWay: opts.WANLatency},
	)
	if opts.Shards > 0 {
		eng = sim.NewSharded(opts.Seed, opts.Shards, opts.Workers)
		defer eng.Close()
		net = phys.NewShardedNetwork(eng, latency)
		s = net.Sim
	} else {
		s = sim.New(opts.Seed)
		net = phys.NewNetwork(s, latency)
	}
	sites := make([]*phys.Site, opts.Sites)
	for i := range sites {
		sites[i] = net.AddSite(fmt.Sprintf("site%02d", i))
	}
	if eng != nil && eng.Shards() > 1 {
		floor, ok := net.CrossShardFloor()
		if !ok {
			return nil, fmt.Errorf("gray: %d shards but no cross-shard site pair (need Sites >= Shards)", opts.Shards)
		}
		if floor <= 0 {
			return nil, fmt.Errorf("gray: cross-shard latency floor %v must be positive", floor)
		}
		eng.SetLookahead(floor)
	}
	runUntil := func(t sim.Time) {
		if eng != nil {
			eng.RunUntil(t)
		} else {
			s.RunUntil(t)
		}
	}
	eventsProcessed := func() uint64 {
		if eng != nil {
			return eng.Processed()
		}
		return s.Processed
	}

	// Create the fleet up front and schedule identical staggered starts on
	// each node's own shard; boot URIs resolve at fire time.
	cfg := grayConfig(opts.Seed, opts.Adaptive)
	detector := "fixed"
	if opts.Adaptive {
		detector = "adaptive"
	}
	nodes := make([]*brunet.Node, opts.Nodes)
	for i := range nodes {
		name := fmt.Sprintf("gray%03d", i)
		h := net.AddHost(name, sites[i%opts.Sites], net.Root(), phys.HostConfig{})
		nodes[i] = brunet.NewNode(h, brunet.AddrFromString(name), cfg)
	}

	// Arm the flight recorder before any node starts: one single-writer
	// buffer per engine shard, each stamping records with its own shard
	// clock; physical-layer drops terminate traced routes too.
	var tracer *trace.Tracer
	if opts.TraceSample > 0 {
		topts := trace.Options{SampleN: opts.TraceSample, Health: opts.TraceHealth}
		if eng != nil {
			clocks := make([]trace.Clock, eng.Shards())
			for i := range clocks {
				clocks[i] = eng.Shard(i)
			}
			tracer = trace.New(topts, clocks...)
		} else {
			tracer = trace.New(topts, s)
		}
		net.FlightRecorder = tracer
		for _, n := range nodes {
			n.EnableTrace(tracer)
		}
	}
	for i, n := range nodes {
		i, n := i, n
		at := sim.Time(0).Add(sim.Duration(i) * 200 * sim.Millisecond)
		n.Host().Sim().At(at, func() {
			var boot []brunet.URI
			if pool := min(i, 4); pool > 0 {
				boot = []brunet.URI{
					nodes[i%pool].BootstrapURI(),
					nodes[(i+1)%pool].BootstrapURI(),
				}
			}
			if err := n.Start(boot); err != nil {
				panic(fmt.Sprintf("gray: start %s: %v", n.Addr(), err))
			}
		})
	}

	t0 := time.Now()
	cursor := sim.Time(0).Add(sim.Duration(opts.Nodes)*200*sim.Millisecond + opts.Settle)
	runUntil(cursor)

	// Arm the gray zone: jitter + flap over the first quarter of sites for
	// the whole fault phase. Both are time-functional rules, installed
	// before the fault phase runs — the shard-safe path.
	inj := faults.New(s, net)
	graySites := make([]string, 0, opts.Sites/4)
	for i := 0; i < (opts.Sites+3)/4; i++ {
		graySites = append(graySites, sites[i].Name)
	}
	phaseLen := sim.Duration(opts.Windows) * opts.WindowLen
	inj.Schedule(
		faults.JitterBurst{Scope: faults.AtSites(graySites...), Amp: opts.JitterAmp,
			Start: 0, For: phaseLen, Seed: uint64(opts.Seed)},
		faults.LinkFlap{A: faults.AtSites(graySites...), Period: opts.FlapPeriod,
			Up: opts.FlapUp, Start: 0, For: phaseLen},
	)

	// Schedule the crashes: one clean-site victim per window, mid-window,
	// starting at window 1 (window 0 measures the degraded-but-alive
	// baseline). The Stop fires on the victim's own shard; the timeline
	// mark is a separate same-instant event on the injector's timeline.
	cleanSite := opts.Sites - 1
	var victims []*brunet.Node
	for i := cleanSite; i < opts.Nodes && len(victims) < opts.Kills; i += opts.Sites {
		victims = append(victims, nodes[i])
	}
	if len(victims) < opts.Kills {
		return nil, fmt.Errorf("gray: only %d clean-site victims for %d kills (need more Nodes)", len(victims), opts.Kills)
	}
	kills := make([]GrayKill, len(victims))
	for i, v := range victims {
		v := v
		at := cursor.Add(sim.Duration(i+1)*opts.WindowLen + opts.WindowLen/2)
		kills[i] = GrayKill{Node: v.Addr().String(), AtSec: at.Seconds(), DetectSec: -1}
		v.Host().Sim().At(at, func() { v.Stop() })
		s.At(at, func() { inj.Note("crash", v.Addr().String()) })
	}
	isVictim := make(map[*brunet.Node]bool, len(victims))
	for _, v := range victims {
		isVictim[v] = true
	}
	// forgotten reports whether every surviving node has dropped its
	// connection to v.
	forgotten := func(v *brunet.Node) bool {
		for _, n := range nodes {
			if !isVictim[n] && n.ConnectionTo(v.Addr()) != nil {
				return false
			}
		}
		return true
	}
	routableFrac := func() float64 {
		routable, live := 0, 0
		for _, n := range nodes {
			if isVictim[n] {
				continue
			}
			live++
			if n.IsRoutable() {
				routable++
			}
		}
		return float64(routable) / float64(live)
	}

	res := &GrayResult{
		Seed:     opts.Seed,
		Detector: detector,
		Adaptive: opts.Adaptive,
		Nodes:    opts.Nodes,
		Sites:    opts.Sites,
		Windows:  opts.Windows,
		Kills:    kills,
	}
	if eng != nil {
		res.Shards = eng.Shards()
		res.Workers = eng.Workers()
	}

	// The fault phase: run each window in 1s steps (tracking when each
	// victim is fully forgotten), sampling the fleet counters per window.
	prev := readGrayCounters(nodes)
	for w := 0; w < opts.Windows; w++ {
		steps := int(opts.WindowLen / sim.Second)
		for st := 0; st < steps; st++ {
			cursor = cursor.Add(sim.Second)
			runUntil(cursor)
			for i := range kills {
				if kills[i].DetectSec >= 0 || cursor.Seconds() <= kills[i].AtSec {
					continue
				}
				if forgotten(victims[i]) {
					kills[i].DetectSec = cursor.Seconds() - kills[i].AtSec
				}
			}
		}
		cur := readGrayCounters(nodes)
		p := GrayPoint{
			Detector:      detector,
			Window:        w,
			VirtualSec:    cursor.Seconds(),
			WallSec:       time.Since(t0).Seconds(),
			RoutableFrac:  routableFrac(),
			FalseSuspects: cur.falseSuspects - prev.falseSuspects,
			Confirmed:     cur.confirmed - prev.confirmed,
			Deaths:        cur.deaths - prev.deaths,
			Events:        eventsProcessed(),
		}
		if d := cur.deaths - prev.deaths; d > 0 {
			p.MeanDetectMs = float64(cur.detectMs-prev.detectMs) / float64(d)
		}
		prev = cur
		res.Series = append(res.Series, p)
		if opts.OnProgress != nil {
			opts.OnProgress(p)
		}
	}

	// Cool down on a clean fabric (faults expired), keep resolving any
	// still-pending detections, then audit the end state.
	for st := 0; st < 90; st++ {
		cursor = cursor.Add(sim.Second)
		runUntil(cursor)
		for i := range kills {
			if kills[i].DetectSec < 0 && forgotten(victims[i]) {
				kills[i].DetectSec = cursor.Seconds() - kills[i].AtSec
			}
		}
	}
	total := readGrayCounters(nodes)
	res.FalseSuspects = total.falseSuspects
	res.Confirmed = total.confirmed
	res.Deaths = total.deaths
	res.FinalRoutable = routableFrac()
	res.EventsTotal = eventsProcessed()
	res.Timeline = inj.TimelineString()
	res.WallSec = time.Since(t0).Seconds()
	detected := 0
	for _, k := range kills {
		if k.DetectSec >= 0 {
			res.MeanDetectSec += k.DetectSec
			detected++
		}
	}
	if detected > 0 {
		res.MeanDetectSec /= float64(detected)
	}
	if tracer != nil {
		res.Trace = tracer.Drain()
	}
	inj.Close()
	return res, nil
}

// GrayCompare pits the two detectors against the identical scenario.
type GrayCompare struct {
	Fixed    *GrayResult
	Adaptive *GrayResult
	// Dominates is the headline verdict: the adaptive detector found the
	// real crashes faster AND raised fewer false suspicions AND both
	// detectors ended fully routable.
	Dominates bool
}

// String renders both summaries and the verdict.
func (c *GrayCompare) String() string {
	var b strings.Builder
	b.WriteString(c.Fixed.String())
	b.WriteString(c.Adaptive.String())
	fmt.Fprintf(&b, "Verdict: adaptive detection %.1fs vs fixed %.1fs; false suspicions %d vs %d; dominates: %v\n",
		c.Adaptive.MeanDetectSec, c.Fixed.MeanDetectSec,
		c.Adaptive.FalseSuspects, c.Fixed.FalseSuspects, c.Dominates)
	return b.String()
}

// RunGrayCompare runs the gray-failure scenario under both detectors on
// the same seed and scores adaptive against fixed.
func RunGrayCompare(opts GrayOpts) (*GrayCompare, error) {
	opts.Adaptive = false
	fixed, err := RunGrayFailures(opts)
	if err != nil {
		return nil, err
	}
	opts.Adaptive = true
	adaptive, err := RunGrayFailures(opts)
	if err != nil {
		return nil, err
	}
	return &GrayCompare{
		Fixed:    fixed,
		Adaptive: adaptive,
		Dominates: adaptive.MeanDetectSec < fixed.MeanDetectSec &&
			adaptive.FalseSuspects < fixed.FalseSuspects &&
			fixed.FinalRoutable == 1 && adaptive.FinalRoutable == 1,
	}, nil
}
