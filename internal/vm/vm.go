// Package vm models the virtual workstations of WOW: system VMs (the
// paper used VMware GSX/Workstation/VMPlayer) that carry a homogeneous
// guest software stack, execute compute jobs at the speed of their
// heterogeneous physical hosts, and migrate across wide-area domains.
//
// Migration follows §V-C exactly: the user-level IPOP process is killed,
// the VM is suspended, its memory image and copy-on-write disk logs are
// transferred to the destination host, the VM resumes, and IPOP restarts
// and rejoins the overlay — the virtual IP and all guest connection state
// survive untouched.
package vm

import (
	"fmt"

	"wow/internal/brunet"
	"wow/internal/ipop"
	"wow/internal/metrics"
	"wow/internal/phys"
	"wow/internal/sim"
	"wow/internal/vip"
)

// Spec describes a virtual workstation's performance characteristics.
type Spec struct {
	Name string
	// CPUSpeed is the guest's compute speed relative to the testbed's
	// baseline (the 2.4 GHz Xeon of node002, Table I).
	CPUSpeed float64
	// VirtOverhead multiplies CPU time to account for virtualization
	// (§V-D1 reports ~13% for MEME, i.e. 1.13).
	VirtOverhead float64
	// ImageBytes is the state transferred on migration (memory image
	// plus copy-on-write disk logs).
	ImageBytes int64
}

func (s *Spec) fillDefaults() {
	if s.CPUSpeed == 0 {
		s.CPUSpeed = 1
	}
	if s.VirtOverhead == 0 {
		s.VirtOverhead = 1.13
	}
	if s.ImageBytes == 0 {
		s.ImageBytes = 768 << 20 // 512 MB memory + 256 MB COW logs
	}
}

// task is one queued unit of guest CPU work.
type task struct {
	remaining sim.Duration // baseline CPU-seconds still owed
	done      func()
}

// VM is one virtual workstation: an IPOP endpoint, a virtual IP stack and
// a single-core CPU executing queued jobs, with suspend/resume and
// wide-area migration.
type VM struct {
	spec     Spec
	host     *phys.Host
	node     *ipop.Node
	stack    *vip.Stack
	sim      *sim.Simulator
	boot     []brunet.URI
	hostLoad float64

	running   bool
	suspended bool
	queue     []*task
	current   *task
	started   sim.Time
	compEv    sim.Timer

	// Stats counts VM lifecycle and job events.
	Stats metrics.Counter
}

// New creates a VM with the given virtual IP on a physical host. Call
// Start to boot it onto the overlay.
func New(host *phys.Host, ip vip.IP, spec Spec, cfg brunet.Config, stackCfg vip.StackConfig) *VM {
	spec.fillDefaults()
	node := ipop.New(host, ip, cfg)
	v := &VM{
		spec:     spec,
		host:     host,
		node:     node,
		sim:      host.Sim(),
		hostLoad: 1,
	}
	v.stack = vip.NewStack(node, stackCfg)
	return v
}

// Spec returns the VM's performance description.
func (v *VM) Spec() Spec { return v.spec }

// Name returns the VM's name.
func (v *VM) Name() string { return v.spec.Name }

// IP returns the VM's virtual address.
func (v *VM) IP() vip.IP { return v.node.VIP() }

// Stack returns the guest's virtual IP stack; middleware binds here.
func (v *VM) Stack() *vip.Stack { return v.stack }

// Node returns the VM's IPOP endpoint.
func (v *VM) Node() *ipop.Node { return v.node }

// Host returns the physical host currently running the VM.
func (v *VM) Host() *phys.Host { return v.host }

// Running reports whether the VM is booted and not suspended.
func (v *VM) Running() bool { return v.running && !v.suspended }

// Start boots the VM and joins the overlay through the bootstrap URIs.
func (v *VM) Start(bootstrap []brunet.URI) error {
	if v.running {
		return fmt.Errorf("vm %s: already running", v.spec.Name)
	}
	v.boot = append([]brunet.URI(nil), bootstrap...)
	if err := v.node.Start(v.boot); err != nil {
		return fmt.Errorf("vm %s: %w", v.spec.Name, err)
	}
	v.running = true
	v.Stats.Inc("vm.started", 1)
	return nil
}

// Shutdown powers the VM off.
func (v *VM) Shutdown() {
	if !v.running {
		return
	}
	v.pauseCPU()
	v.node.Stop()
	v.running = false
	v.queue = nil
	v.current = nil
}

// Decommission removes the VM from the pool gracefully: guest services
// stop and the IPOP node leaves the overlay with goodbyes, so peers repair
// the ring immediately (a clean `qmgr` removal rather than a crash).
func (v *VM) Decommission() {
	if !v.running {
		return
	}
	v.pauseCPU()
	v.node.Leave()
	v.running = false
	v.queue = nil
	v.current = nil
}

// SetHostLoad sets the background-load multiplier of the physical host
// the guest shares (the knob turned in the Figure 7 experiment to justify
// migrating away). Values below 1 clamp to 1.
func (v *VM) SetHostLoad(f float64) {
	if f < 1 {
		f = 1
	}
	v.pauseCPU()
	v.hostLoad = f
	v.resumeCPU()
}

// HostLoad returns the current background-load multiplier.
func (v *VM) HostLoad() float64 { return v.hostLoad }

// rate converts baseline CPU-seconds to wall-clock seconds on this VM.
func (v *VM) rate() float64 {
	return v.spec.VirtOverhead * v.hostLoad / v.spec.CPUSpeed
}

// EstimateWall returns the wall-clock duration a job of the given baseline
// CPU time takes on this VM at current load, ignoring queueing.
func (v *VM) EstimateWall(cpu sim.Duration) sim.Duration {
	return sim.Duration(float64(cpu) * v.rate())
}

// Execute queues a compute job of the given baseline CPU seconds; done
// fires when it completes. Jobs run FIFO on the VM's single core, stretch
// under host load, pause across suspension and resume after migration —
// the behaviour of the paper's PBS job 88.
func (v *VM) Execute(cpu sim.Duration, done func()) {
	t := &task{remaining: cpu, done: done}
	v.queue = append(v.queue, t)
	v.Stats.Inc("job.queued", 1)
	v.dispatch()
}

// QueueLength reports queued (not yet started) jobs.
func (v *VM) QueueLength() int { return len(v.queue) }

// Busy reports whether a job is executing or queued.
func (v *VM) Busy() bool { return v.current != nil || len(v.queue) > 0 }

func (v *VM) dispatch() {
	if v.current != nil || len(v.queue) == 0 || !v.Running() {
		return
	}
	v.current = v.queue[0]
	v.queue = v.queue[1:]
	v.startCurrent()
}

func (v *VM) startCurrent() {
	t := v.current
	v.started = v.sim.Now()
	wall := sim.Duration(float64(t.remaining) * v.rate())
	v.compEv = v.sim.After(wall, func() {
		v.current = nil
		v.Stats.Inc("job.completed", 1)
		if t.done != nil {
			t.done()
		}
		v.dispatch()
	})
}

// pauseCPU freezes the in-flight job, banking its progress.
func (v *VM) pauseCPU() {
	if v.current == nil || !v.compEv.Active() {
		return
	}
	v.compEv.Cancel()
	elapsed := v.sim.Now().Sub(v.started)
	progress := sim.Duration(float64(elapsed) / v.rate())
	if progress > v.current.remaining {
		progress = v.current.remaining
	}
	v.current.remaining -= progress
}

func (v *VM) resumeCPU() {
	if v.current != nil && !v.compEv.Active() && v.Running() {
		v.startCurrent()
	}
	v.dispatch()
}

// MigrationConfig parameterizes a wide-area migration.
type MigrationConfig struct {
	// TransferBps is the effective WAN throughput for the image copy.
	// Zero means 2 MB/s, which moves the default image in ~6.5 minutes
	// — the origin of the paper's "hundreds of seconds" migration
	// latency and ~8 minute no-routability window.
	TransferBps float64
	// ExtraDowntime adds suspend/resume overhead.
	ExtraDowntime sim.Duration
	// DirtyRateBps is the guest's memory dirtying rate, used by live
	// pre-copy migration (MigrateLive). Zero means 256 KB/s.
	DirtyRateBps float64
	// MaxPreCopyRounds bounds the iterative pre-copy before the final
	// stop-and-copy. Zero means 8.
	MaxPreCopyRounds int
	// Graceful makes the IPOP shutdown a planned departure: instead of
	// killing the process (peers discover the death by ping timeout, the
	// paper's §V-C behaviour), the node leaves with handoff messages that
	// introduce its ring neighbors to each other, so the ring is whole
	// again seconds after the suspend instead of minutes.
	Graceful bool
}

// Migrate suspends the VM, transfers its image to dst, resumes it there
// and restarts IPOP (§V-C). done fires once the VM is running on dst;
// overlay routability returns shortly after as the node rejoins the ring.
func (v *VM) Migrate(dst *phys.Host, cfg MigrationConfig, done func()) error {
	if !v.running {
		return fmt.Errorf("vm %s: not running", v.spec.Name)
	}
	if v.suspended {
		return fmt.Errorf("vm %s: migration already in progress", v.spec.Name)
	}
	if cfg.TransferBps == 0 {
		cfg.TransferBps = 2 << 20
	}
	// Step 1: stop the user-level IPOP process. The paper kills it
	// outright and peers time the node out; with Graceful set the node
	// leaves with ring-handoff goodbyes first.
	if cfg.Graceful {
		v.node.Leave()
	} else {
		v.node.Stop()
	}
	// Step 2: suspend the guest; in-flight jobs freeze.
	v.suspended = true
	v.pauseCPU()
	v.Stats.Inc("vm.migrations", 1)

	transfer := sim.Duration(float64(v.spec.ImageBytes) / cfg.TransferBps * float64(sim.Second))
	v.sim.After(transfer+cfg.ExtraDowntime, func() {
		// Step 3: resume on the destination host; the guest's virtual
		// network interface identity (tap0 / virtual IP) is unchanged.
		v.host = dst
		if err := v.node.MoveToHost(dst); err != nil {
			panic(fmt.Sprintf("vm %s: move: %v", v.spec.Name, err))
		}
		v.suspended = false
		// Step 4: restart IPOP; it rejoins autonomously.
		if err := v.node.Start(v.boot); err != nil {
			panic(fmt.Sprintf("vm %s: ipop restart: %v", v.spec.Name, err))
		}
		v.resumeCPU()
		v.Stats.Inc("vm.migrated", 1)
		if done != nil {
			done()
		}
	})
	return nil
}

// MigrateLive performs iterative pre-copy live migration — the technique
// the paper's §II/§VI anticipate from Xen-style monitors ("growing
// support for checkpointing and live migration of running VMs"). Memory
// is copied in rounds while the guest keeps running (IPOP stays up and
// the node stays routable); only the final stop-and-copy of the residual
// dirty set incurs downtime, typically seconds instead of the ~8 minutes
// of suspend-transfer-resume migration.
func (v *VM) MigrateLive(dst *phys.Host, cfg MigrationConfig, done func()) error {
	if !v.running {
		return fmt.Errorf("vm %s: not running", v.spec.Name)
	}
	if v.suspended {
		return fmt.Errorf("vm %s: migration already in progress", v.spec.Name)
	}
	if cfg.TransferBps == 0 {
		cfg.TransferBps = 2 << 20
	}
	if cfg.DirtyRateBps == 0 {
		cfg.DirtyRateBps = 256 << 10
	}
	if cfg.MaxPreCopyRounds == 0 {
		cfg.MaxPreCopyRounds = 8
	}
	if cfg.DirtyRateBps >= cfg.TransferBps {
		return fmt.Errorf("vm %s: dirty rate %.0f B/s >= transfer rate %.0f B/s; pre-copy cannot converge",
			v.spec.Name, cfg.DirtyRateBps, cfg.TransferBps)
	}
	v.Stats.Inc("vm.migrations_live", 1)

	// Iterative pre-copy: each round ships the previous round's dirty
	// set while the guest dirties more.
	remaining := float64(v.spec.ImageBytes)
	round := 0
	var precopy func()
	precopy = func() {
		roundTime := remaining / cfg.TransferBps
		dirtied := roundTime * cfg.DirtyRateBps
		round++
		v.sim.After(sim.Duration(roundTime*float64(sim.Second)), func() {
			remaining = dirtied
			// Stop when the residual fits in a short downtime or
			// the round budget is spent.
			if round >= cfg.MaxPreCopyRounds || remaining <= cfg.TransferBps/2 {
				v.liveStopAndCopy(dst, cfg, remaining, done)
				return
			}
			precopy()
		})
	}
	precopy()
	return nil
}

// liveStopAndCopy is the final phase: kill IPOP, suspend, ship the
// residual dirty set, resume at the destination, restart IPOP.
func (v *VM) liveStopAndCopy(dst *phys.Host, cfg MigrationConfig, residual float64, done func()) {
	if !v.running {
		return
	}
	v.node.Stop()
	v.suspended = true
	v.pauseCPU()
	downtime := sim.Duration(residual / cfg.TransferBps * float64(sim.Second))
	v.sim.After(downtime+cfg.ExtraDowntime, func() {
		v.host = dst
		if err := v.node.MoveToHost(dst); err != nil {
			panic(fmt.Sprintf("vm %s: move: %v", v.spec.Name, err))
		}
		v.suspended = false
		if err := v.node.Start(v.boot); err != nil {
			panic(fmt.Sprintf("vm %s: ipop restart: %v", v.spec.Name, err))
		}
		v.resumeCPU()
		v.Stats.Inc("vm.migrated", 1)
		if done != nil {
			done()
		}
	})
}

// String renders a diagnostic summary.
func (v *VM) String() string {
	return fmt.Sprintf("vm{%s ip=%s host=%s speed=%.2f}", v.spec.Name, v.IP(), v.host.Name, v.spec.CPUSpeed)
}
