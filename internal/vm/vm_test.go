package vm

import (
	"fmt"
	"testing"

	"wow/internal/brunet"
	"wow/internal/ipop"
	"wow/internal/phys"
	"wow/internal/sim"
	"wow/internal/vip"
)

type rig struct {
	s    *sim.Simulator
	net  *phys.Network
	boot []brunet.URI
}

func newRig(t *testing.T, seed int64, routers int) *rig {
	t.Helper()
	s := sim.New(seed)
	net := phys.NewNetwork(s, phys.UniformLatency(
		phys.PathModel{OneWay: sim.Millisecond},
		phys.PathModel{OneWay: 15 * sim.Millisecond},
	))
	r := &rig{s: s, net: net}
	cfg := brunet.FastTestConfig()
	for i := 0; i < routers; i++ {
		h := net.AddHost(fmt.Sprintf("r%02d", i), net.AddSite(fmt.Sprintf("s%02d", i)), net.Root(), phys.HostConfig{})
		rt := ipop.NewRouter(h, brunet.AddrFromString(fmt.Sprintf("r%02d", i)), cfg)
		if err := rt.Start(r.boot); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			r.boot = ipop.BootURIs(rt)
		}
		s.RunFor(2 * sim.Second)
	}
	s.RunFor(30 * sim.Second)
	return r
}

func (r *rig) addVM(t *testing.T, name, ip string, spec Spec) *VM {
	t.Helper()
	spec.Name = name
	h := r.net.AddHost(name+"-host", r.net.AddSite(name+"-site"), r.net.Root(), phys.HostConfig{})
	v := New(h, vip.MustParseIP(ip), spec, brunet.FastTestConfig(), vip.StackConfig{})
	if err := v.Start(r.boot); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestSpecDefaults(t *testing.T) {
	s := Spec{}
	s.fillDefaults()
	if s.CPUSpeed != 1 || s.VirtOverhead != 1.13 || s.ImageBytes == 0 {
		t.Fatalf("defaults: %+v", s)
	}
}

func TestExecuteBaselineJob(t *testing.T) {
	r := newRig(t, 1, 4)
	v := r.addVM(t, "vm1", "172.16.1.2", Spec{VirtOverhead: 1.13})
	start := r.s.Now()
	var doneAt sim.Time
	v.Execute(10*sim.Second, func() { doneAt = r.s.Now() })
	r.s.RunFor(sim.Minute)
	wall := doneAt.Sub(start).Seconds()
	if wall < 11.2 || wall > 11.4 {
		t.Fatalf("10s baseline job took %.2fs, want ~11.3s (13%% virt overhead)", wall)
	}
}

func TestCPUSpeedScalesJobs(t *testing.T) {
	r := newRig(t, 2, 4)
	fast := r.addVM(t, "fast", "172.16.1.2", Spec{CPUSpeed: 1.33, VirtOverhead: 1})
	slow := r.addVM(t, "slow", "172.16.1.3", Spec{CPUSpeed: 0.49, VirtOverhead: 1})
	var fastAt, slowAt sim.Time
	start := r.s.Now()
	fast.Execute(100*sim.Second, func() { fastAt = r.s.Now() })
	slow.Execute(100*sim.Second, func() { slowAt = r.s.Now() })
	r.s.RunFor(10 * sim.Minute)
	ratio := slowAt.Sub(start).Seconds() / fastAt.Sub(start).Seconds()
	want := 1.33 / 0.49
	if ratio < want*0.99 || ratio > want*1.01 {
		t.Fatalf("speed ratio %.2f, want %.2f", ratio, want)
	}
	if fast.EstimateWall(100*sim.Second) != fastAt.Sub(start) {
		t.Fatal("EstimateWall mismatch")
	}
}

func TestJobsRunFIFO(t *testing.T) {
	r := newRig(t, 3, 4)
	v := r.addVM(t, "vm1", "172.16.1.2", Spec{VirtOverhead: 1})
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		v.Execute(sim.Second, func() { order = append(order, i) })
	}
	if !v.Busy() {
		t.Fatal("VM not busy with queued jobs")
	}
	if v.QueueLength() != 4 {
		t.Fatalf("queue = %d", v.QueueLength())
	}
	r.s.RunFor(sim.Minute)
	for i, got := range order {
		if got != i {
			t.Fatalf("jobs out of order: %v", order)
		}
	}
}

func TestHostLoadStretchesRunningJob(t *testing.T) {
	r := newRig(t, 4, 4)
	v := r.addVM(t, "vm1", "172.16.1.2", Spec{VirtOverhead: 1})
	start := r.s.Now()
	var doneAt sim.Time
	v.Execute(10*sim.Second, func() { doneAt = r.s.Now() })
	// After 5s (half done), double the load: remaining 5s takes 10s.
	r.s.After(5*sim.Second, func() { v.SetHostLoad(2) })
	r.s.RunFor(sim.Minute)
	wall := doneAt.Sub(start).Seconds()
	if wall < 14.9 || wall > 15.1 {
		t.Fatalf("job took %.2fs, want ~15s (load doubled at half-way)", wall)
	}
	if v.HostLoad() != 2 {
		t.Fatal("HostLoad not recorded")
	}
	v.SetHostLoad(0.5)
	if v.HostLoad() != 1 {
		t.Fatal("load below 1 not clamped")
	}
}

func TestMigrationMovesVMAndResumesJob(t *testing.T) {
	r := newRig(t, 5, 8)
	v := r.addVM(t, "vm1", "172.16.1.2", Spec{VirtOverhead: 1, ImageBytes: 64 << 20})
	r.s.RunFor(30 * sim.Second)

	start := r.s.Now()
	var doneAt sim.Time
	v.Execute(20*sim.Second, func() { doneAt = r.s.Now() })

	dst := r.net.AddHost("dst-host", r.net.AddSite("dst-site"), r.net.Root(), phys.HostConfig{})
	migrated := false
	r.s.After(5*sim.Second, func() {
		if err := v.Migrate(dst, MigrationConfig{TransferBps: 8 << 20}, func() { migrated = true }); err != nil {
			t.Errorf("migrate: %v", err)
		}
	})
	r.s.RunFor(10 * sim.Minute)
	if !migrated {
		t.Fatal("migration never completed")
	}
	if v.Host() != dst {
		t.Fatal("VM not on destination host")
	}
	if doneAt == 0 {
		t.Fatal("job lost across migration")
	}
	// 20s job + 8s transfer stall (64MB at 8MB/s), started 5s in.
	wall := doneAt.Sub(start).Seconds()
	if wall < 27 || wall > 30 {
		t.Fatalf("migrated job took %.1fs, want ~28s (20s work + 8s stall)", wall)
	}
	if !v.Node().Up() {
		t.Fatal("IPOP not restarted after migration")
	}
	r.s.RunFor(2 * sim.Minute)
	if !v.Node().Overlay().IsRoutable() {
		t.Fatal("migrated VM never became routable")
	}
}

func TestMigrateErrors(t *testing.T) {
	r := newRig(t, 6, 4)
	v := r.addVM(t, "vm1", "172.16.1.2", Spec{ImageBytes: 1 << 30})
	dst := r.net.AddHost("d", r.net.AddSite("d"), r.net.Root(), phys.HostConfig{})
	if err := v.Migrate(dst, MigrationConfig{}, nil); err != nil {
		t.Fatal(err)
	}
	if err := v.Migrate(dst, MigrationConfig{}, nil); err == nil {
		t.Fatal("double migrate accepted")
	}
	v2 := New(r.net.AddHost("h2", r.net.AddSite("h2"), r.net.Root(), phys.HostConfig{}),
		vip.MustParseIP("172.16.1.9"), Spec{Name: "off"}, brunet.FastTestConfig(), vip.StackConfig{})
	if err := v2.Migrate(dst, MigrationConfig{}, nil); err == nil {
		t.Fatal("migrating powered-off VM accepted")
	}
}

func TestShutdown(t *testing.T) {
	r := newRig(t, 7, 4)
	v := r.addVM(t, "vm1", "172.16.1.2", Spec{})
	v.Execute(10*sim.Second, func() { t.Error("job completed after shutdown") })
	v.Shutdown()
	v.Shutdown() // idempotent
	if v.Running() || v.Busy() {
		t.Fatal("VM still running after shutdown")
	}
	r.s.RunFor(sim.Minute)
	if err := v.Start(r.boot); err != nil {
		t.Fatalf("restart after shutdown: %v", err)
	}
	if err := v.Start(r.boot); err == nil {
		t.Fatal("double start accepted")
	}
}

func TestStringForm(t *testing.T) {
	r := newRig(t, 8, 4)
	v := r.addVM(t, "vm1", "172.16.1.2", Spec{})
	if v.String() == "" || v.Name() != "vm1" {
		t.Fatal("diagnostics")
	}
	if v.Spec().VirtOverhead != 1.13 {
		t.Fatal("spec defaults not applied")
	}
	if v.Stack() == nil {
		t.Fatal("stack nil")
	}
}

func TestLiveMigrationRunsDuringPreCopy(t *testing.T) {
	r := newRig(t, 9, 8)
	v := r.addVM(t, "vm1", "172.16.1.2", Spec{VirtOverhead: 1, ImageBytes: 64 << 20})
	r.s.RunFor(30 * sim.Second)

	start := r.s.Now()
	var doneAt sim.Time
	v.Execute(30*sim.Second, func() { doneAt = r.s.Now() })

	dst := r.net.AddHost("dst", r.net.AddSite("dst"), r.net.Root(), phys.HostConfig{})
	migrated := false
	// 8 MB/s transfer, 512 KB/s dirty rate: pre-copy ~8s + tiny stop.
	if err := v.MigrateLive(dst, MigrationConfig{TransferBps: 8 << 20, DirtyRateBps: 512 << 10}, func() { migrated = true }); err != nil {
		t.Fatal(err)
	}
	r.s.RunFor(5 * sim.Minute)
	if !migrated || v.Host() != dst {
		t.Fatal("live migration did not complete")
	}
	// The job keeps running during pre-copy: wall time ≈ 30s + sub-second
	// stop-and-copy, nowhere near the 8s full-stall of suspend migration.
	wall := doneAt.Sub(start).Seconds()
	if wall > 32 {
		t.Fatalf("job took %.1fs; live migration should not stall it", wall)
	}
	r.s.RunFor(2 * sim.Minute)
	if !v.Node().Overlay().IsRoutable() {
		t.Fatal("not routable after live migration")
	}
}

func TestLiveMigrationRejectsDivergentDirtyRate(t *testing.T) {
	r := newRig(t, 10, 4)
	v := r.addVM(t, "vm1", "172.16.1.2", Spec{})
	dst := r.net.AddHost("d", r.net.AddSite("d"), r.net.Root(), phys.HostConfig{})
	err := v.MigrateLive(dst, MigrationConfig{TransferBps: 1 << 20, DirtyRateBps: 2 << 20}, nil)
	if err == nil {
		t.Fatal("divergent pre-copy accepted")
	}
}
