// Package trace is the flight recorder: a deterministic, sampling-based
// observability layer for the overlay simulation. Route tracing stamps a
// trace context on sampled overlay packets and records every forwarding
// decision hop by hop; health snapshots sample each node's ring
// consistency, connection-table composition, RTT-estimator state and
// repair backlog on a fixed cadence; both streams land in per-shard
// buffers that merge into one canonical record sequence exactly like the
// engine's cross-shard event lanes — (timestamp, shard, emission order) —
// so the merged stream is a pure function of (seed, shard count) and
// worker-invariant, and a serial run's stream is byte-identical to a
// 1-shard run's.
//
// The recorder is built to be free when unused: a node without a recorder
// pays one nil check per origination, and with recording enabled an
// unsampled packet pays an inline FNV-1a hash and no allocation (the
// TestAllocFree* guards in internal/brunet assert both).
package trace

import (
	"encoding/json"
	"fmt"

	"wow/internal/sim"
)

// Streams of the unified record sequence. A Record's Stream field selects
// which of the schema's field groups are meaningful; the JSONL export maps
// them to the trace.hop / trace.route / health.node envelope names.
const (
	StreamHop    = "hop"    // one forwarding decision of a sampled packet
	StreamRoute  = "route"  // a sampled packet's terminal (deliver/drop)
	StreamHealth = "health" // one node's periodic health snapshot
)

// Hop record kinds: the origin stamp plus the forwarding decision classes
// (which connection class carried the hop).
const (
	KindOrigin      = "origin"
	KindNear        = "near"
	KindFar         = "far"
	KindShortcut    = "shortcut"
	KindTunnelRelay = "tunnel-relay"
	KindLeaf        = "leaf"
	KindRelay       = "relay"
)

// Route terminal outcomes. Outcomes prefixed "phys." are stamped by the
// physical network's drop path with its loss reason appended
// ("phys.lost.wire", "phys.lost.fault", …).
const (
	OutcomeDelivered    = "delivered"         // reached the exact addressee
	OutcomeNearest      = "delivered.nearest" // consumed by the nearest node (DeliverNearest)
	OutcomeDeadLetter   = "dead_letter"       // exact-mode packet died at the nearest node
	OutcomeHopsExceeded = "hops_exceeded"
	OutcomeNodeDown     = "node_down"      // arrived at (or originated on) a stopped node
	OutcomeConnClosed   = "conn_closed"    // chosen connection closed under the packet
	OutcomeNoRelay      = "tunnel_norelay" // tunnel edge had no live relay
	OutcomeRelayNoRoute = "tunnel_noroute" // relay had no direct route to the tunnel peer
	OutcomePhysicalDrop = "phys."          // prefix: dropped inside the physical network
)

// Record is one flight-recorder event. One struct serves all three streams
// (hop, route, health) so the merged sequence stays a single ordered list;
// unused fields marshal away under omitempty. Addresses are full 40-digit
// hex (brunet.Addr.FullString) so records join exactly across nodes.
type Record struct {
	Stream string `json:"stream"`
	// T is the virtual time of the event in nanoseconds.
	T int64 `json:"t"`
	// Node is the emitting node; empty for records stamped by the
	// physical network (a packet dropped in flight belongs to no node).
	Node string `json:"node,omitempty"`

	// Trace is the packet's sampled trace id (hop and route streams).
	Trace uint64 `json:"trace,omitempty"`
	// Hop is the packet's hop count at this record.
	Hop int `json:"hop,omitempty"`
	// Kind is the hop's decision class (origin/near/far/shortcut/…).
	Kind string `json:"kind,omitempty"`
	// Next is the peer the packet was forwarded to.
	Next string `json:"next,omitempty"`
	// Via is the tunnel relay that carried the hop (tunnel-relay hops).
	Via string `json:"via,omitempty"`
	// Cands is the size of the structured candidate set the decision
	// chose from (the node's ring index).
	Cands int `json:"cands,omitempty"`
	// Dist is the top 64 bits of the remaining ring distance to the
	// destination after this decision (at origination: the full initial
	// distance) — the monotonically shrinking progress metric of greedy
	// routing.
	Dist uint64 `json:"dist,omitempty"`

	// Src/Dst/Hops/LatNs/Outcome describe a route terminal; Src and Dst
	// also ride on the origin hop so a route's endpoints survive a lost
	// terminal.
	Src     string `json:"src,omitempty"`
	Dst     string `json:"dst,omitempty"`
	Hops    int    `json:"hops,omitempty"`
	LatNs   int64  `json:"lat_ns,omitempty"`
	Outcome string `json:"outcome,omitempty"`

	// Health-snapshot fields: ring consistency, connection-table
	// composition, mean RTT-estimator state over measured connections,
	// and the repair overlord's relink backlog.
	Routable  bool  `json:"routable,omitempty"`
	NearConns int   `json:"near,omitempty"`
	FarConns  int   `json:"far,omitempty"`
	Shortcuts int   `json:"shortcut,omitempty"`
	Tunnels   int   `json:"tunnel,omitempty"`
	Leafs     int   `json:"leaf,omitempty"`
	Relays    int   `json:"relay,omitempty"`
	SrttNs    int64 `json:"srtt_ns,omitempty"`
	RttvarNs  int64 `json:"rttvar_ns,omitempty"`
	RtoNs     int64 `json:"rto_ns,omitempty"`
	Backlog   int   `json:"backlog,omitempty"`
}

// EnvelopeName maps the record's stream to its JSONL envelope experiment
// name (the `wow-bench -json` convention).
func (r *Record) EnvelopeName() string {
	switch r.Stream {
	case StreamHop:
		return "trace.hop"
	case StreamRoute:
		return "trace.route"
	case StreamHealth:
		return "health.node"
	}
	return "trace." + r.Stream
}

// Options configures a Tracer.
type Options struct {
	// SampleN samples one origination in N per origin node, chosen
	// deterministically by FNV-1a of (node address, origination sequence
	// number). 1 samples everything; 0 is normalized to 1.
	SampleN uint64
	// Health is the per-node health-snapshot period; 0 disables the
	// health stream.
	Health sim.Duration
}

// Clock reads a shard's virtual clock; *sim.Simulator satisfies it.
type Clock interface {
	Now() sim.Time
}

// Buf is one shard's record buffer. It has exactly one writer — the shard
// whose events emit into it — so appends need no locks, mirroring the
// engine's cross-shard lanes. The buffer carries its shard's clock so
// emitters off the node hot path (the physical drop hook) can stamp
// records without threading a clock through.
type Buf struct {
	clock Clock
	recs  []Record
}

// Now reads the buffer's shard clock.
func (b *Buf) Now() sim.Time { return b.clock.Now() }

// Append records one event. The caller stamps T (emitters read their own
// clock once and derive latencies from the same value).
func (b *Buf) Append(r Record) { b.recs = append(b.recs, r) }

// Len reports the number of buffered records.
func (b *Buf) Len() int { return len(b.recs) }

// Tracer owns the per-shard buffers of one run. Construct it with one
// clock per engine shard (a single clock for the serial engine), hand
// Shard(i) to each node and to the physical network, and Drain the merged
// stream after the run.
type Tracer struct {
	opts Options
	bufs []*Buf
}

// New creates a tracer with one buffer per clock. The clock order must
// match the engine's shard numbering (shard i's events emit into buffer i).
func New(opts Options, clocks ...Clock) *Tracer {
	if len(clocks) == 0 {
		panic("trace: tracer needs at least one shard clock")
	}
	if opts.SampleN == 0 {
		opts.SampleN = 1
	}
	t := &Tracer{opts: opts, bufs: make([]*Buf, len(clocks))}
	for i, c := range clocks {
		t.bufs[i] = &Buf{clock: c}
	}
	return t
}

// Opts returns the tracer's configuration.
func (t *Tracer) Opts() Options { return t.opts }

// Shards reports the buffer count.
func (t *Tracer) Shards() int { return len(t.bufs) }

// Shard returns shard i's buffer.
func (t *Tracer) Shard(i int) *Buf { return t.bufs[i] }

// Drain merges every shard buffer into the canonical record sequence —
// buffers concatenated in shard order, stable-sorted by timestamp, i.e.
// the engine's (timestamp, shard, emission order) total order — and
// resets the buffers. Call between runs only (buffers are single-writer
// during a run).
func (t *Tracer) Drain() []Record {
	parts := make([][]Record, len(t.bufs))
	for i, b := range t.bufs {
		parts[i] = b.recs
	}
	out := sim.MergeStable(parts, func(r Record) sim.Time { return sim.Time(r.T) })
	for _, b := range t.bufs {
		// Drop the storage outright: MergeStable may alias a single
		// non-empty buffer, so truncating in place would corrupt out.
		b.recs = nil
	}
	return out
}

// FNV-1a 64-bit constants, spelled out so the sampling rule is a stable
// wire-format-like contract (DESIGN.md §12) rather than an import detail.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// HashAddr folds a node address into the per-origin FNV-1a base hash.
func HashAddr(addr []byte) uint64 {
	h := uint64(fnvOffset64)
	for _, b := range addr {
		h ^= uint64(b)
		h *= fnvPrime64
	}
	return h
}

// SampleHash mixes an origination sequence number into a node's base hash
// (little-endian byte order), yielding the packet's candidate trace id.
// Allocation-free: the unsampled hot path runs exactly this.
func SampleHash(base, seq uint64) uint64 {
	h := base
	for i := 0; i < 8; i++ {
		h ^= seq & 0xff
		h *= fnvPrime64
		seq >>= 8
	}
	return h
}

// Sampled applies the 1-in-N rule to a candidate hash.
func Sampled(h, sampleN uint64) bool {
	return sampleN <= 1 || h%sampleN == 0
}

// Traced is implemented by packet payloads that may carry a trace
// context, letting layers that cannot name the overlay packet type (the
// physical network's drop path) recover the context. A zero id means the
// payload is untraced.
type Traced interface {
	TraceContext() (id uint64, start sim.Time)
}

// Cleared is implemented by Traced payloads whose context can be consumed
// after a terminal record. Layers that may hold one packet object in two
// places at once (a transport retransmit buffer plus the wire) clear the
// context on the first terminal so the second sighting stays silent.
type Cleared interface {
	ClearTrace()
}

// MarshalJSONL renders records as JSON lines (one record per line), the
// raw form wow-trace consumes and golden tests pin.
func MarshalJSONL(recs []Record) ([]byte, error) {
	var out []byte
	for i := range recs {
		b, err := json.Marshal(&recs[i])
		if err != nil {
			return nil, fmt.Errorf("trace: marshal record %d: %w", i, err)
		}
		out = append(out, b...)
		out = append(out, '\n')
	}
	return out, nil
}
