package trace

import (
	"encoding/json"
	"hash/fnv"
	"strings"
	"testing"
	"testing/quick"

	"wow/internal/sim"
)

// fakeClock is a settable Clock for buffer tests.
type fakeClock struct{ now sim.Time }

func (c *fakeClock) Now() sim.Time { return c.now }

func TestHashAddrMatchesStdlibFNV(t *testing.T) {
	for _, in := range [][]byte{nil, {0}, {1, 2, 3}, []byte("gray003-address-bytes")} {
		h := fnv.New64a()
		h.Write(in)
		if got, want := HashAddr(in), h.Sum64(); got != want {
			t.Errorf("HashAddr(%v) = %d, stdlib fnv64a = %d", in, got, want)
		}
	}
}

func TestSampleHashMatchesStdlibFNV(t *testing.T) {
	// SampleHash(base, seq) must equal continuing the stdlib FNV-1a stream
	// with the 8 little-endian bytes of seq — the documented contract.
	addr := []byte("node-address")
	base := HashAddr(addr)
	for _, seq := range []uint64{0, 1, 255, 256, 1 << 40, ^uint64(0)} {
		h := fnv.New64a()
		h.Write(addr)
		var le [8]byte
		for i := range le {
			le[i] = byte(seq >> (8 * i))
		}
		h.Write(le[:])
		if got, want := SampleHash(base, seq), h.Sum64(); got != want {
			t.Errorf("SampleHash(base, %d) = %d, stdlib = %d", seq, got, want)
		}
	}
}

func TestSampledRate(t *testing.T) {
	if !Sampled(123, 0) || !Sampled(123, 1) {
		t.Error("SampleN 0/1 must sample everything")
	}
	// Over a run of consecutive sequence numbers the 1-in-N rule lands
	// within a loose factor of N (FNV output is well mixed).
	base := HashAddr([]byte("origin"))
	const n, total = 16, 4096
	hits := 0
	for seq := uint64(0); seq < total; seq++ {
		if Sampled(SampleHash(base, seq), n) {
			hits++
		}
	}
	if hits < total/n/2 || hits > total/n*2 {
		t.Errorf("1-in-%d sampling hit %d of %d", n, hits, total)
	}
}

func TestSamplingDeterministic(t *testing.T) {
	f := func(addr []byte, seq uint64) bool {
		base := HashAddr(addr)
		return SampleHash(base, seq) == SampleHash(base, seq)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTracerNormalizesOptions(t *testing.T) {
	tr := New(Options{}, &fakeClock{})
	if tr.Opts().SampleN != 1 {
		t.Errorf("SampleN 0 not normalized to 1: %d", tr.Opts().SampleN)
	}
	if tr.Shards() != 1 {
		t.Errorf("Shards() = %d, want 1", tr.Shards())
	}
	defer func() {
		if recover() == nil {
			t.Error("New with no clocks did not panic")
		}
	}()
	New(Options{SampleN: 4})
}

// TestDrainMergeOrder: records merge across shard buffers exactly like the
// engine's cross-shard lanes — by timestamp, ties broken by shard index,
// then emission order.
func TestDrainMergeOrder(t *testing.T) {
	tr := New(Options{SampleN: 1}, &fakeClock{}, &fakeClock{}, &fakeClock{})
	// Shard 2 emits early and late; shard 0 emits in the middle; shard 1
	// ties shard 0's timestamp.
	tr.Shard(2).Append(Record{Stream: StreamHop, T: 10, Node: "s2a"})
	tr.Shard(2).Append(Record{Stream: StreamHop, T: 50, Node: "s2b"})
	tr.Shard(0).Append(Record{Stream: StreamHop, T: 20, Node: "s0a"})
	tr.Shard(0).Append(Record{Stream: StreamHop, T: 20, Node: "s0b"})
	tr.Shard(1).Append(Record{Stream: StreamHop, T: 20, Node: "s1a"})
	got := tr.Drain()
	want := []string{"s2a", "s0a", "s0b", "s1a", "s2b"}
	if len(got) != len(want) {
		t.Fatalf("drained %d records, want %d", len(got), len(want))
	}
	for i, n := range want {
		if got[i].Node != n {
			t.Errorf("record %d = %s, want %s", i, got[i].Node, n)
		}
	}
	// Drain resets: a second drain is empty and the buffers are reusable.
	if again := tr.Drain(); len(again) != 0 {
		t.Errorf("second drain returned %d records", len(again))
	}
	tr.Shard(0).Append(Record{Stream: StreamHop, T: 1, Node: "after"})
	if got := tr.Drain(); len(got) != 1 || got[0].Node != "after" {
		t.Errorf("post-reset drain = %+v", got)
	}
}

// TestDrainSingleBufferAliasSafe: draining a tracer whose records all sit
// in one buffer must return an intact slice even though the merge may
// alias the buffer storage.
func TestDrainSingleBufferAliasSafe(t *testing.T) {
	tr := New(Options{SampleN: 1}, &fakeClock{}, &fakeClock{})
	for i := 0; i < 100; i++ {
		tr.Shard(1).Append(Record{Stream: StreamHop, T: int64(i), Hop: i})
	}
	got := tr.Drain()
	tr.Shard(1).Append(Record{Stream: StreamHop, T: 0, Hop: -1})
	for i, r := range got {
		if r.Hop != i {
			t.Fatalf("drained record %d corrupted after post-drain append: %+v", i, r)
		}
	}
}

func TestEnvelopeName(t *testing.T) {
	for _, tc := range []struct{ stream, want string }{
		{StreamHop, "trace.hop"},
		{StreamRoute, "trace.route"},
		{StreamHealth, "health.node"},
		{"custom", "trace.custom"},
	} {
		r := Record{Stream: tc.stream}
		if got := r.EnvelopeName(); got != tc.want {
			t.Errorf("EnvelopeName(%s) = %s, want %s", tc.stream, got, tc.want)
		}
	}
}

func TestMarshalJSONLRoundTrip(t *testing.T) {
	recs := []Record{
		{Stream: StreamHop, T: 5, Node: "n1", Trace: 42, Kind: KindOrigin, Cands: 3, Dist: 99, Src: "n1", Dst: "n2"},
		{Stream: StreamRoute, T: 9, Node: "n2", Trace: 42, Hops: 2, LatNs: 4, Outcome: OutcomeDelivered},
		{Stream: StreamHealth, T: 12, Node: "n1", Routable: true, NearConns: 2, Backlog: 1},
	}
	data, err := MarshalJSONL(recs)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != len(recs) {
		t.Fatalf("%d lines, want %d", len(lines), len(recs))
	}
	for i, line := range lines {
		var back Record
		if err := json.Unmarshal([]byte(line), &back); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if back != recs[i] {
			t.Errorf("round trip %d:\n in: %+v\nout: %+v", i, recs[i], back)
		}
	}
	// Unused fields must marshal away: a hop record carries no health keys.
	if strings.Contains(lines[0], "routable") || strings.Contains(lines[0], "outcome") {
		t.Errorf("hop record leaks unrelated fields: %s", lines[0])
	}
}
