package brunet

import (
	"math/rand"
	"testing"
	"testing/quick"

	"wow/internal/phys"
	"wow/internal/sim"
	"wow/internal/trace"
)

// ringTestNode builds a bare node (never started) whose connection table
// can be churned directly — the unit under test is the ring index's
// agreement with the linear-scan oracles, not the linking protocol.
func ringTestNode(seed int64) *Node {
	s := sim.New(seed)
	net := phys.NewNetwork(s, phys.UniformLatency(phys.PathModel{}, phys.PathModel{}))
	site := net.AddSite("t")
	h := net.AddHost("t0", site, net.Root(), phys.HostConfig{})
	return NewNode(h, AddrFromString("ring-test-origin"), Config{})
}

var churnTypes = []ConnType{StructuredNear, StructuredFar, Shortcut, Leaf}

// applyChurn drives the connection table through a scripted sequence of
// adds, role-drops and full drops derived from ops, returning the node.
// Addresses are drawn from a small deterministic universe so drops hit
// existing connections and role mixes accumulate on single peers.
func applyChurn(seed int64, ops []uint32) *Node {
	n := ringTestNode(seed)
	universe := make([]Addr, 24)
	for i := range universe {
		universe[i] = RandomAddr(rand.New(rand.NewSource(seed + int64(i))))
	}
	ep := phys.Endpoint{IP: 1, Port: 1}
	for _, op := range ops {
		peer := universe[int(op>>8)%len(universe)]
		typ := churnTypes[int(op>>16)%len(churnTypes)]
		switch op % 4 {
		case 0, 1: // add (twice as likely: tables should be non-trivial)
			n.addConnection(peer, ep, nil, nil, typ)
		case 2: // drop one role, connection may survive
			if c, ok := n.conns[peer]; ok && c.Has(typ) {
				n.dropConnRole(c, typ, "test")
			}
		case 3: // drop the whole connection
			if c, ok := n.conns[peer]; ok {
				n.dropConnection(c, false, "test")
			}
		}
	}
	return n
}

// Property: after arbitrary churn, the indexed nearestConn agrees with the
// brute-force linear oracle for every destination and exclusion choice.
func TestQuickNearestConnMatchesOracle(t *testing.T) {
	f := func(ops []uint32, dstSel, exSel uint16) bool {
		n := applyChurn(11, ops)
		rng := rand.New(rand.NewSource(int64(dstSel)))
		for trial := 0; trial < 8; trial++ {
			var dst Addr
			if trial%2 == 0 && len(n.ring.conns) > 0 {
				// Half the probes aim at a connected peer: the
				// exact-match and exclusion paths must agree too.
				dst = n.ring.conns[int(dstSel)%len(n.ring.conns)].Peer
			} else {
				dst = RandomAddr(rng)
			}
			exclude := Addr{}
			if trial%3 == 0 && len(n.ring.conns) > 0 {
				exclude = n.ring.conns[int(exSel)%len(n.ring.conns)].Peer
			}
			if n.nearestConn(dst, exclude) != n.nearestConnLinear(dst, exclude) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(17))}); err != nil {
		t.Fatal(err)
	}
}

// Property: the ring-walk neighborsOnSide returns the same connections in
// the same order as the sort-per-call oracle, on both sides.
func TestQuickNeighborsOnSideMatchesOracle(t *testing.T) {
	f := func(ops []uint32) bool {
		n := applyChurn(23, ops)
		for _, right := range []bool{true, false} {
			got := n.neighborsOnSide(right)
			want := n.neighborsOnSideLinear(right)
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					return false
				}
			}
			// nearOnSide must be a prefix of the full side walk, and
			// firstOnSide its head.
			for _, k := range []int{1, 2, 3} {
				pre := n.nearOnSide(right, k)
				if len(pre) > k || len(pre) > len(want) {
					return false
				}
				for i := range pre {
					if pre[i] != want[i] {
						return false
					}
				}
			}
			first := n.firstOnSide(right)
			if len(want) == 0 && first != nil {
				return false
			}
			if len(want) > 0 && first != want[0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(29))}); err != nil {
		t.Fatal(err)
	}
}

// Property: the index slice itself stays sorted and mirrors exactly the
// structured subset of the connection table through churn.
func TestQuickRingIndexInvariants(t *testing.T) {
	f := func(ops []uint32) bool {
		n := applyChurn(31, ops)
		structured := 0
		for _, c := range n.conns {
			if c.structured() {
				structured++
				if !c.inRing {
					return false
				}
			} else if c.inRing {
				return false
			}
		}
		if len(n.ring.conns) != structured {
			return false
		}
		for i := 1; i < len(n.ring.conns); i++ {
			if n.addr.CmpClockwise(n.ring.conns[i-1].Peer, n.ring.conns[i].Peer) >= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(37))}); err != nil {
		t.Fatal(err)
	}
}

// buildZeroLatencyRing converges a small overlay on a zero-latency fabric:
// with no propagation delay a packet's entire multi-hop route drains within
// RunUntil(Now()), so the clock never advances and no keepalive or gossip
// timer can interleave with a measurement (the scale harness uses the same
// trick).
func buildZeroLatencyRing(t *testing.T, seed int64, count int) (*sim.Simulator, []*Node) {
	t.Helper()
	s := sim.New(seed)
	net := phys.NewNetwork(s, phys.UniformLatency(phys.PathModel{}, phys.PathModel{}))
	site := net.AddSite("z")
	cfg := FastTestConfig()
	var nodes []*Node
	for i := 0; i < count; i++ {
		name := "zring" + string(rune('a'+i%26)) + string(rune('a'+i/26))
		h := net.AddHost(name, site, net.Root(), phys.HostConfig{})
		n := NewNode(h, AddrFromString(name), cfg)
		var boot []URI
		if len(nodes) > 0 {
			boot = []URI{nodes[0].BootstrapURI()}
		}
		if err := n.Start(boot); err != nil {
			t.Fatalf("start %s: %v", name, err)
		}
		nodes = append(nodes, n)
		s.RunFor(2 * sim.Second)
	}
	s.RunFor(60 * sim.Second)
	return s, nodes
}

// TestAllocFreeForwarding is the hot-path allocation guard: with the
// virtual clock frozen, routing a pre-built overlay packet through a
// converged ring — socket send, propagation event, CPU event, per-hop
// greedy forwarding, final delivery — must not allocate at all in steady
// state. Event and packet pools absorb the per-hop objects; only packet
// origination (SendTo) may allocate, and it is excluded here on purpose.
func TestAllocFreeForwarding(t *testing.T) {
	s, nodes := buildZeroLatencyRing(t, 7, 12)
	src, dst := nodes[2], nodes[9]
	pkt := &OverlayPacket{Payload: AppData{Proto: "allocguard", Size: 64}}
	delivered := 0
	dst.RegisterProto("allocguard", func(Addr, AppData) { delivered++ })
	route := func() {
		pkt.Src = src.Addr()
		pkt.Dst = dst.Addr()
		pkt.Mode = DeliverExact
		pkt.Hops = 0
		pkt.MaxHops = src.cfg.MaxHops
		pkt.Size = overlayHdrSize + 64
		src.routePacket(pkt, src.Addr())
		s.RunUntil(s.Now())
	}
	// Warm the pools and any lazily grown heap/slice capacity.
	for i := 0; i < 64; i++ {
		route()
	}
	if delivered == 0 {
		t.Fatal("warmup packets never delivered; measurement would be vacuous")
	}
	avg := testing.AllocsPerRun(200, route)
	if raceEnabled {
		// The race detector instruments allocations; record but don't
		// assert.
		t.Logf("allocs/packet under -race: %.2f (not asserted)", avg)
		return
	}
	if avg != 0 {
		t.Errorf("allocs per forwarded packet = %.2f, want 0", avg)
	}
}

// TestAllocFreeOrigination extends the hot-path guard to the SendTo
// origination path: with the per-node OverlayPacket pool, originating an
// application packet — pool acquire, inline AppData boxing, multi-hop
// route, terminal release into the far node's pool — allocates nothing in
// steady state. (The origination pool migrates packets from the sender's
// free list to the terminal node's, so round-tripping traffic keeps both
// pools warm.)
func TestAllocFreeOrigination(t *testing.T) {
	s, nodes := buildZeroLatencyRing(t, 11, 12)
	src, dst := nodes[3], nodes[8]
	delivered := 0
	dst.RegisterProto("allocguard", func(Addr, AppData) { delivered++ })
	src.RegisterProto("allocguard", func(Addr, AppData) {})
	d := AppData{Proto: "allocguard", Size: 64}
	send := func() {
		// Round trip so pooled packets flow back: src's pool drains
		// toward dst and dst's toward src, reaching a steady state.
		src.SendTo(dst.Addr(), DeliverExact, d)
		dst.SendTo(src.Addr(), DeliverExact, d)
		s.RunUntil(s.Now())
	}
	for i := 0; i < 64; i++ {
		send()
	}
	if delivered == 0 {
		t.Fatal("warmup packets never delivered; measurement would be vacuous")
	}
	avg := testing.AllocsPerRun(200, send)
	if raceEnabled {
		t.Logf("allocs/origination under -race: %.2f (not asserted)", avg)
		return
	}
	if avg != 0 {
		t.Errorf("allocs per originated packet = %.2f, want 0 (2 sends/run)", avg)
	}
}

// enableUnsampledTrace arms the flight recorder on every node with a
// sampling rate so sparse no packet in the test will be sampled: the
// enabled-but-unsampled path (one nil check, one inline FNV hash per
// origination) must stay exactly as allocation-free as tracing disabled.
func enableUnsampledTrace(s *sim.Simulator, nodes []*Node) *trace.Tracer {
	tr := trace.New(trace.Options{SampleN: 1 << 62}, s)
	for _, n := range nodes {
		n.EnableTrace(tr)
	}
	return tr
}

// TestAllocFreeForwardingTraced repeats the forwarding guard with the
// flight recorder enabled and the packets unsampled — recording must add
// zero allocations to the hot path.
func TestAllocFreeForwardingTraced(t *testing.T) {
	s, nodes := buildZeroLatencyRing(t, 7, 12)
	tr := enableUnsampledTrace(s, nodes)
	src, dst := nodes[2], nodes[9]
	pkt := &OverlayPacket{Payload: AppData{Proto: "allocguard", Size: 64}}
	delivered := 0
	dst.RegisterProto("allocguard", func(Addr, AppData) { delivered++ })
	route := func() {
		pkt.Src = src.Addr()
		pkt.Dst = dst.Addr()
		pkt.Mode = DeliverExact
		pkt.Hops = 0
		pkt.MaxHops = src.cfg.MaxHops
		pkt.Size = overlayHdrSize + 64
		src.routePacket(pkt, src.Addr())
		s.RunUntil(s.Now())
	}
	for i := 0; i < 64; i++ {
		route()
	}
	if delivered == 0 {
		t.Fatal("warmup packets never delivered; measurement would be vacuous")
	}
	avg := testing.AllocsPerRun(200, route)
	if n := tr.Shard(0).Len(); n != 0 {
		t.Fatalf("expected no sampled packets at 1-in-2^62, got %d records", n)
	}
	if raceEnabled {
		t.Logf("allocs/packet traced-unsampled under -race: %.2f (not asserted)", avg)
		return
	}
	if avg != 0 {
		t.Errorf("allocs per forwarded packet with tracing enabled = %.2f, want 0", avg)
	}
}

// TestAllocFreeOriginationTraced repeats the origination guard with the
// flight recorder enabled and the packets unsampled.
func TestAllocFreeOriginationTraced(t *testing.T) {
	s, nodes := buildZeroLatencyRing(t, 11, 12)
	tr := enableUnsampledTrace(s, nodes)
	src, dst := nodes[3], nodes[8]
	delivered := 0
	dst.RegisterProto("allocguard", func(Addr, AppData) { delivered++ })
	src.RegisterProto("allocguard", func(Addr, AppData) {})
	d := AppData{Proto: "allocguard", Size: 64}
	send := func() {
		src.SendTo(dst.Addr(), DeliverExact, d)
		dst.SendTo(src.Addr(), DeliverExact, d)
		s.RunUntil(s.Now())
	}
	for i := 0; i < 64; i++ {
		send()
	}
	if delivered == 0 {
		t.Fatal("warmup packets never delivered; measurement would be vacuous")
	}
	avg := testing.AllocsPerRun(200, send)
	if n := tr.Shard(0).Len(); n != 0 {
		t.Fatalf("expected no sampled packets at 1-in-2^62, got %d records", n)
	}
	if raceEnabled {
		t.Logf("allocs/origination traced-unsampled under -race: %.2f (not asserted)", avg)
		return
	}
	if avg != 0 {
		t.Errorf("allocs per originated packet with tracing enabled = %.2f, want 0 (2 sends/run)", avg)
	}
}
