package brunet

import (
	"sort"

	"wow/internal/sim"
)

// tunnelOverlord manages tunnel edges — Brunet's fallback for peer pairs
// whose NATs defeat hole punching (symmetric↔symmetric and
// symmetric↔port-restricted). When the linker exhausts every URI toward a
// wanted structured-near neighbor, the overlord establishes a tunnel edge
// instead: link-layer traffic to the peer is relayed through mutual
// neighbors learned from the connection tables exchanged in CTMs. The
// resulting Connection registers in the conn table and ring index like any
// other edge, so routing, keepalives and ring repair work unchanged.
//
// Tunnels self-maintain:
//   - multi-relay lists fail over instantly (sendTunnel picks the first
//     live relay), and relays are re-learned from incoming frame Via
//     stamps and refreshed from later CTM exchanges;
//   - a dying or suspected relay (close-forwarding's fast-failure signal)
//     triggers pre-emptive relay re-selection, falling back to a CTM
//     re-probe when no alternative is known;
//   - every TunnelUpgradeInterval the overlord routes a CTM to the tunnel
//     peer, re-running bidirectional direct linking with fresh URIs, so
//     the tunnel upgrades in place to a direct edge the moment hole
//     punching becomes possible.
//
// Like the repair overlord, it is event-driven: a node with no tunnels
// costs nothing, and fault-free runs stay deterministic.
type tunnelOverlord struct {
	node *Node
	// cands stashes, per remote peer, the URIs and connection-table
	// excerpt most recently learned from a CTM exchange with it — the raw
	// material for relay selection.
	cands map[Addr]*candidateStash
	// upgrades holds the armed direct-link upgrade timer per tunnel peer.
	upgrades map[Addr]sim.Timer
	// recruiting maps a relay candidate being linked (ConnType Relay) to
	// the tunnel targets waiting on it — the path taken when no mutual
	// neighbor exists yet and one must be recruited first.
	recruiting map[Addr][]Addr
	// recruited marks the Relay-type links this node initiated. Only the
	// recruiting side may reap an idle Relay link: the relay itself holds
	// no tunnel referencing the recruiter, so without the marker it would
	// tear the link down as idle while the recruiter still depends on it.
	recruited map[Addr]bool
}

// candidateStash is the tunnel-relevant content of one CTM exchange.
type candidateStash struct {
	uris   []URI
	relays []NeighborInfo
}

func newTunnelOverlord(n *Node) *tunnelOverlord {
	return &tunnelOverlord{
		node:       n,
		cands:      make(map[Addr]*candidateStash),
		upgrades:   make(map[Addr]sim.Timer),
		recruiting: make(map[Addr][]Addr),
		recruited:  make(map[Addr]bool),
	}
}

func (o *tunnelOverlord) start() {
	n := o.node
	n.OnConnection(o.onConnection)
	n.OnDisconnection(o.onDisconnection)
}

// tunnelRole picks the role a tunnel-related CTM should request for an
// existing connection: its most load-bearing structured role.
func tunnelRole(c *Connection) ConnType {
	switch {
	case c.Has(StructuredNear):
		return StructuredNear
	case c.Has(StructuredFar):
		return StructuredFar
	case c.Has(Shortcut):
		return Shortcut
	}
	return StructuredNear
}

// learnCandidates records the URIs and relay candidates a CTM exchange
// with peer carried. If a tunnel edge to peer is live, any newly mutual
// neighbors extend its relay list — the refresh that lets periodic upgrade
// probes double as relay maintenance.
func (o *tunnelOverlord) learnCandidates(peer Addr, uris []URI, relays []NeighborInfo) {
	n := o.node
	if peer == n.addr {
		return
	}
	o.cands[peer] = &candidateStash{uris: uris, relays: relays}
	c, ok := n.conns[peer]
	if !ok || !c.Tunneled() {
		return
	}
	for _, adv := range relays {
		if len(c.Relays) >= n.cfg.TunnelMaxRelays {
			break
		}
		if adv.Addr == n.addr || adv.Addr == peer {
			continue
		}
		if rc, live := n.conns[adv.Addr]; live && !rc.closed && !rc.Tunneled() {
			if !rc.loadKnown {
				// Seed the relay scorer with the advertised load until
				// the relay's own pongs speak for it.
				rc.peerLoad = adv.Load
			}
			c.addRelay(adv.Addr)
		}
	}
}

// linkFailed consumes the linker's terminal-failure report. Busy races
// retry on their own; a failed direct attempt toward a peer we hold a
// tunnel to re-arms the upgrade probe; a failed attempt toward a wanted
// structured-near neighbor we hold nothing to triggers tunnel
// establishment — the linker→tunnel fallback itself.
func (o *tunnelOverlord) linkFailed(target Addr, t ConnType, reason string) {
	n := o.node
	if !n.up || n.tun != o || reason == "busy" {
		return
	}
	if t == Relay {
		// A relay recruit failed: the waiting targets stay unserved until
		// the next CTM exchange refreshes their candidate sets.
		if waiting, ok := o.recruiting[target]; ok {
			delete(o.recruiting, target)
			n.Stats.Inc("tunnel.recruit_failed", int64(len(waiting)))
		}
		delete(o.recruited, target)
		return
	}
	if c, ok := n.conns[target]; ok {
		if c.Tunneled() {
			o.armUpgrade(c)
		}
		return
	}
	if t != StructuredNear {
		return // far/shortcut links are optimizations; no fallback needed
	}
	if n.near == nil || !n.near.wanted(target) {
		return
	}
	o.establish(target)
}

// establish starts a tunnel toward target: through mutual neighbors when
// the candidate exchange found any, otherwise by first recruiting a direct
// Relay-type link to one of the target's neighbors.
func (o *tunnelOverlord) establish(target Addr) {
	n := o.node
	st, ok := o.cands[target]
	if !ok {
		n.Stats.Inc("tunnel.nocandidate", 1)
		return
	}
	var candidates []NeighborInfo
	for _, adv := range st.relays {
		if adv.Addr == n.addr || adv.Addr == target {
			continue
		}
		if rc, live := n.conns[adv.Addr]; live && !rc.closed && !rc.Tunneled() {
			candidates = append(candidates, adv)
		}
	}
	// Load-aware selection: lightly loaded relays first, ties in the
	// advertiser's (address) order, capped after sorting so an overloaded
	// early candidate doesn't crowd out idle later ones.
	sort.SliceStable(candidates, func(i, j int) bool {
		return candidates[i].Load < candidates[j].Load
	})
	if len(candidates) > n.cfg.TunnelMaxRelays {
		candidates = candidates[:n.cfg.TunnelMaxRelays]
	}
	if len(candidates) > 0 {
		mutual := make([]Addr, len(candidates))
		for i, adv := range candidates {
			mutual[i] = adv.Addr
		}
		n.Stats.Inc("tunnel.attempts", 1)
		n.startTunnelLinker(target, mutual, st.uris, StructuredNear)
		return
	}
	for _, adv := range st.relays {
		if adv.Addr == n.addr || adv.Addr == target || len(adv.URIs) == 0 {
			continue
		}
		if c, have := n.conns[adv.Addr]; have && c.Tunneled() {
			continue // a tunneled neighbor cannot carry frames (no nesting)
		}
		already := false
		for _, w := range o.recruiting[adv.Addr] {
			if w == target {
				already = true
				break
			}
		}
		if !already {
			o.recruiting[adv.Addr] = append(o.recruiting[adv.Addr], target)
		}
		o.recruited[adv.Addr] = true
		n.Stats.Inc("tunnel.recruit", 1)
		n.startLinker(adv.Addr, adv.URIs, Relay)
		return
	}
	n.Stats.Inc("tunnel.nocandidate", 1)
}

func (o *tunnelOverlord) onConnection(c *Connection) {
	n := o.node
	if n.tun != o {
		return // stale callback from before a restart
	}
	if waiting, ok := o.recruiting[c.Peer]; ok && !c.Tunneled() {
		// A recruited relay came up: serve the targets waiting on it.
		delete(o.recruiting, c.Peer)
		for _, target := range waiting {
			if _, have := n.conns[target]; have {
				continue
			}
			if n.near != nil && n.near.wanted(target) {
				o.establish(target)
			}
		}
	}
	if c.Tunneled() {
		o.armUpgrade(c)
		return
	}
	// A direct edge confirmed (possibly an in-place tunnel upgrade):
	// upgrade probing is over, the stash is stale, and relays recruited on
	// this peer's behalf may now be idle.
	o.cancelUpgrade(c.Peer)
	delete(o.cands, c.Peer)
	o.reapRelays()
}

func (o *tunnelOverlord) onDisconnection(c *Connection) {
	n := o.node
	if n.tun != o {
		return // stale callback from before a restart
	}
	o.cancelUpgrade(c.Peer)
	delete(o.recruited, c.Peer)
	if !c.Tunneled() {
		// A direct link died; it may have been carrying tunnels.
		o.relayLost(c.Peer)
	}
	o.reapRelays()
}

// relayLost prunes a dead relay from every tunnel edge using it. A tunnel
// left with no relays cannot carry frames and must not linger looking like
// a direct edge, so it is dropped and a CTM re-probe rebuilds the link —
// as a tunnel through fresh relays, or directly if the world has changed.
func (o *tunnelOverlord) relayLost(dead Addr) {
	n := o.node
	for _, tc := range n.Connections() {
		if tc.closed || !tc.Tunneled() || !tc.removeRelay(dead) {
			continue
		}
		n.Stats.Inc("tunnel.relay_lost", 1)
		o.recoverOrDrop(tc)
	}
}

// recoverOrDrop handles a tunnel edge that just lost one relay: remaining
// relays take over seamlessly; otherwise the stash refills the list; as a
// last resort the edge is dropped and a CTM re-probe rebuilds the link in
// whatever form the current NAT situation permits.
func (o *tunnelOverlord) recoverOrDrop(tc *Connection) {
	n := o.node
	if len(tc.Relays) > 0 {
		return
	}
	if o.refill(tc) {
		n.Stats.Inc("tunnel.relay_reselected", 1)
		return
	}
	role := tunnelRole(tc)
	peer := tc.Peer
	n.dropConnection(tc, false, "norelay")
	o.reprobe(peer, role)
}

// noRoute consumes a relay's bounce: the relay has no direct connection to
// the tunnel peer, so every frame sent through it is being dropped. Prune
// it from that edge now — the alternative is waiting for the keepalive to
// time the whole edge out.
func (o *tunnelOverlord) noRoute(relay, to Addr) {
	n := o.node
	if n.tun != o {
		return
	}
	tc, ok := n.conns[to]
	if !ok || tc.closed || !tc.Tunneled() || !tc.removeRelay(relay) {
		return
	}
	n.Stats.Inc("tunnel.relay_bounced", 1)
	o.recoverOrDrop(tc)
}

// relaySuspected reacts to a forwarded death verdict about a node serving
// as a tunnel relay: edges with alternatives drop the suspect now (it is
// re-learned from traffic if the verdict was wrong); an edge with no
// alternative keeps it — the suspect may yet answer its fast probe — but
// re-probes for fresh candidates immediately.
func (o *tunnelOverlord) relaySuspected(dead Addr) {
	n := o.node
	if n.tun != o {
		return
	}
	for _, tc := range n.Connections() {
		if tc.closed || !tc.Tunneled() || !tc.hasRelay(dead) {
			continue
		}
		if len(tc.Relays) > 1 {
			tc.removeRelay(dead)
			n.Stats.Inc("tunnel.relay_suspected", 1)
			continue
		}
		o.reprobe(tc.Peer, tunnelRole(tc))
	}
}

// refill restocks a tunnel edge's relay list from the stashed candidate
// set; reports whether any relay is now listed.
func (o *tunnelOverlord) refill(tc *Connection) bool {
	n := o.node
	st, ok := o.cands[tc.Peer]
	if !ok {
		return false
	}
	for _, adv := range st.relays {
		if len(tc.Relays) >= n.cfg.TunnelMaxRelays {
			break
		}
		if adv.Addr == n.addr || adv.Addr == tc.Peer {
			continue
		}
		if rc, live := n.conns[adv.Addr]; live && !rc.closed && !rc.Tunneled() {
			tc.addRelay(adv.Addr)
		}
	}
	return len(tc.Relays) > 0
}

// reprobe routes a CTM to peer to refresh URIs and relay candidates; the
// resulting bidirectional linking re-establishes the edge in whatever form
// the current NAT situation permits.
func (o *tunnelOverlord) reprobe(peer Addr, t ConnType) {
	n := o.node
	n.Stats.Inc("tunnel.reprobe", 1)
	n.sendCTM(peer, t, DeliverExact, Zero)
}

// armUpgrade schedules the next direct-link upgrade probe for a tunnel
// edge. The probe is a CTM to the tunnel peer: both sides then re-run
// direct linking with fresh URIs (the hole-punching dance), and a success
// upgrades the connection in place. Probing repeats every interval while
// the edge stays tunneled and stops the moment it upgrades.
func (o *tunnelOverlord) armUpgrade(c *Connection) {
	n := o.node
	if n.cfg.TunnelUpgradeInterval <= 0 {
		return
	}
	peer := c.Peer
	if _, armed := o.upgrades[peer]; armed {
		return
	}
	o.upgrades[peer] = n.sim.After(n.cfg.TunnelUpgradeInterval, func() {
		delete(o.upgrades, peer)
		if !n.up || n.tun != o {
			return
		}
		tc, ok := n.conns[peer]
		if !ok || tc.closed || !tc.Tunneled() {
			return
		}
		n.Stats.Inc("tunnel.upgrade_probes", 1)
		o.armUpgrade(tc)
		n.sendCTM(peer, tunnelRole(tc), DeliverExact, Zero)
	})
}

// cancelUpgrade disarms the upgrade timer for peer, if any.
func (o *tunnelOverlord) cancelUpgrade(peer Addr) {
	if t, ok := o.upgrades[peer]; ok {
		t.Cancel()
		delete(o.upgrades, peer)
	}
}

// reapRelays drops the Relay role from connections no tunnel edge, active
// tunnel-mode linker, or pending recruit references any more — recruited
// relays exist only to carry frames and are not kept alive idle. Only
// links this node itself recruited are eligible: the passive end of a
// Relay link never references it and must leave teardown to the
// recruiter. The
// in-use set is computed by membership (map iteration order is irrelevant
// to the outcome); the drop loop walks in address order for determinism.
func (o *tunnelOverlord) reapRelays() {
	n := o.node
	inUse := make(map[Addr]bool)
	for _, c := range n.conns {
		for _, r := range c.Relays {
			inUse[r] = true
		}
	}
	for _, lk := range n.linkers {
		for _, r := range lk.relays {
			inUse[r] = true
		}
	}
	for r := range o.recruiting {
		inUse[r] = true
	}
	for _, c := range n.Connections() {
		if c.Has(Relay) && !inUse[c.Peer] && o.recruited[c.Peer] {
			delete(o.recruited, c.Peer)
			n.Stats.Inc("tunnel.relay_reaped", 1)
			n.dropConnRole(c, Relay, "idle")
		}
	}
}
