package brunet

import (
	"encoding/binary"

	"wow/internal/sim"
	"wow/internal/trace"
)

// This file is the node side of the flight recorder (internal/trace):
// deterministic route sampling at origination, per-hop decision records,
// terminal records at every point a packet can die, and the periodic
// health snapshot. Everything is gated on n.flight — a node without a
// recorder pays one nil check per origination — and nothing here draws
// from any RNG or schedules protocol events, so enabling hop/route
// tracing cannot change a run's outcome (the health ticker adds events
// but runs jitter-free and read-only, leaving protocol behavior intact).

// flightRecorder is a node's handle into the run's tracer: the shard
// buffer it emits into plus the precomputed per-origin sampling state.
type flightRecorder struct {
	buf     *trace.Buf
	sampleN uint64
	health  sim.Duration
	// base is the node's FNV-1a address hash; mixing the origination
	// sequence number into it yields the packet's candidate trace id.
	base uint64
	// seq counts originations considered for sampling.
	seq uint64
	// nodeID is the node address pre-rendered for records.
	nodeID string
}

// EnableTrace attaches the node to a flight recorder (nil detaches). Call
// before Start: the health ticker, when configured, is armed during Start.
// The tracer must carry one buffer per engine shard — the node emits into
// the buffer of the shard that owns its host, keeping buffers
// single-writer under the parallel engine.
func (n *Node) EnableTrace(tr *trace.Tracer) {
	if tr == nil {
		n.flight = nil
		return
	}
	n.flight = &flightRecorder{
		buf:     tr.Shard(n.host.Shard()),
		sampleN: tr.Opts().SampleN,
		health:  tr.Opts().Health,
		base:    trace.HashAddr(n.addr[:]),
		nodeID:  n.addr.FullString(),
	}
}

// distTop64 reduces the ring distance from a to dst to its top 64 bits —
// the compact progress metric hop records carry.
func distTop64(a, dst Addr) uint64 {
	d := ringDist(a, dst)
	return binary.BigEndian.Uint64(d[:8])
}

// flightSample applies the deterministic 1-in-N sampling rule to one
// origination: candidate id = FNV-1a(addr bytes, then seq bytes), sampled
// when id ≡ 0 (mod N). The unsampled path runs exactly the hash — no
// allocation, no RNG — so tracing-enabled forwarding stays alloc-free.
// A sampled packet gets its trace context stamped and an origin hop
// record carrying the route endpoints and initial ring distance.
func (n *Node) flightSample(pkt *OverlayPacket) {
	f := n.flight
	f.seq++
	h := trace.SampleHash(f.base, f.seq)
	if !trace.Sampled(h, f.sampleN) {
		return
	}
	if h == 0 {
		h = 1 // zero means "untraced"; remap the one-in-2^64 collision
	}
	now := n.sim.Now()
	pkt.Trace = h
	pkt.TraceStart = now
	f.buf.Append(trace.Record{
		Stream: trace.StreamHop,
		T:      int64(now),
		Node:   f.nodeID,
		Trace:  h,
		Kind:   trace.KindOrigin,
		Cands:  len(n.ring.conns),
		Dist:   distTop64(n.addr, pkt.Dst),
		Src:    pkt.Src.FullString(),
		Dst:    pkt.Dst.FullString(),
	})
}

// flightHop records one forwarding decision: which connection class won
// (tunnel beats shortcut beats far beats near — a connection can hold
// several roles), the chosen peer, the relay carrying a tunnel hop, the
// candidate-set size and the ring distance still to cover. Called after
// sendConn so a tunnel edge's activeRelay reflects the relay this very
// frame used; a packet that died inside sendConn has had its context
// cleared by the terminal record, so the caller's Trace check skips this.
func (n *Node) flightHop(pkt *OverlayPacket, best *Connection) {
	f := n.flight
	var kind, via string
	switch {
	case best.Tunneled():
		kind = trace.KindTunnelRelay
		if !best.activeRelay.IsZero() {
			via = best.activeRelay.FullString()
		}
	case best.Has(Shortcut):
		kind = trace.KindShortcut
	case best.Has(StructuredFar):
		kind = trace.KindFar
	case best.Has(StructuredNear):
		kind = trace.KindNear
	case best.Has(Leaf):
		kind = trace.KindLeaf
	default:
		kind = trace.KindRelay
	}
	f.buf.Append(trace.Record{
		Stream: trace.StreamHop,
		T:      int64(n.sim.Now()),
		Node:   f.nodeID,
		Trace:  pkt.Trace,
		Hop:    pkt.Hops,
		Kind:   kind,
		Next:   best.Peer.FullString(),
		Via:    via,
		Cands:  len(n.ring.conns),
		Dist:   distTop64(best.Peer, pkt.Dst),
	})
}

// flightTerminal records a traced packet's end — delivery or any of the
// drop paths — and consumes the trace context, so no later code path can
// emit for the same packet again.
func (n *Node) flightTerminal(pkt *OverlayPacket, outcome string) {
	f := n.flight
	now := n.sim.Now()
	f.buf.Append(trace.Record{
		Stream:  trace.StreamRoute,
		T:       int64(now),
		Node:    f.nodeID,
		Trace:   pkt.Trace,
		Src:     pkt.Src.FullString(),
		Dst:     pkt.Dst.FullString(),
		Hops:    pkt.Hops,
		LatNs:   int64(now.Sub(pkt.TraceStart)),
		Outcome: outcome,
	})
	pkt.Trace = 0
}

// flightHealthTick emits one health snapshot: ring consistency
// (routability), the connection table's composition by role and tunnel
// state, the mean RTT-estimator state over measured connections with the
// resulting ping deadline, and the repair overlord's relink backlog. The
// tick reads state only — protocol behavior is untouched by sampling it.
func (n *Node) flightHealthTick() {
	if !n.up || n.flight == nil {
		return
	}
	f := n.flight
	rec := trace.Record{
		Stream:   trace.StreamHealth,
		T:        int64(n.sim.Now()),
		Node:     f.nodeID,
		Routable: n.IsRoutable(),
	}
	var srtt, rttvar, rto sim.Duration
	measured := 0
	// Only sums leave the loop, so map iteration order cannot matter.
	for _, c := range n.conns {
		if c.Tunneled() {
			rec.Tunnels++
		}
		if c.Has(StructuredNear) {
			rec.NearConns++
		}
		if c.Has(StructuredFar) {
			rec.FarConns++
		}
		if c.Has(Shortcut) {
			rec.Shortcuts++
		}
		if c.Has(Leaf) {
			rec.Leafs++
		}
		if c.Has(Relay) {
			rec.Relays++
		}
		if c.haveRTT {
			measured++
			srtt += c.srtt
			rttvar += c.rttvar
			rto += n.pingDeadline(c)
		}
	}
	if measured > 0 {
		rec.SrttNs = int64(srtt) / int64(measured)
		rec.RttvarNs = int64(rttvar) / int64(measured)
		rec.RtoNs = int64(rto) / int64(measured)
	}
	if n.repair != nil {
		rec.Backlog = len(n.repair.pending)
	}
	f.buf.Append(rec)
}
