package brunet

import (
	"fmt"
	"testing"

	"wow/internal/natsim"
	"wow/internal/phys"
	"wow/internal/sim"
)

func TestDebugFWNode(t *testing.T) {
	r := buildRing(t, 33, 8)
	fw := natsim.NewFirewall("no-udp-fw", 0, r.s.Now)
	fw.BlockProto(phys.WireUDP)
	realm := r.net.AddRealm("udp-hostile", r.net.Root(), fw, phys.MustParseIP("140.1.0.10"))
	h := r.net.AddHost("hostile-host", r.site, realm, phys.HostConfig{})
	cfg := FastTestConfig()
	cfg.Transport = "tcp"
	n := NewNode(h, AddrFromString("udp-blocked-node"), cfg)
	n.Start([]URI{tcpBootURI(r.nodes[0])})
	r.nodes = append(r.nodes, n)
	r.s.RunFor(2 * sim.Minute)
	fmt.Printf("routable=%v conns:", n.IsRoutable())
	for _, c := range n.Connections() {
		fmt.Printf(" %v", c)
	}
	fmt.Printf("\nstats: %s\n", n.Stats.String())
	for _, p := range r.nodes[:8] {
		if c := p.ConnectionTo(n.Addr()); c != nil {
			fmt.Printf("peer %s -> %v\n", p.Addr(), c)
		}
	}
	ok := false
	n.RegisterProto("t", func(src Addr, d AppData) { ok = true })
	drops := map[string]int{}
	r.net.OnDrop = func(reason string, p *phys.Packet) {
		drops[fmt.Sprintf("%s proto=%d dst=%v payload=%T", reason, p.Proto, p.Dst, p.Payload)]++
	}
	r.nodes[2].SendTo(n.Addr(), DeliverExact, AppData{Proto: "t", Size: 64})
	r.s.RunFor(10 * sim.Second)
	fmt.Printf("ok=%v\n", ok)
	for k, v := range drops {
		fmt.Printf("%3d %s\n", v, k)
	}
}
