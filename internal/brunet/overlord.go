package brunet

import (
	"sort"

	"wow/internal/sim"
)

// nearOverlord maintains structured-near connections: it drives the join
// procedure of §IV-C (leaf connection, CTM-to-self, link with ring
// neighbors), gossips ring neighborhoods over status messages, connects to
// closer neighbors as they appear, and trims links that are no longer
// among the nearest per side.
type nearOverlord struct {
	node     *Node
	leafPeer Addr
	joinSent bool
}

func newNearOverlord(n *Node) *nearOverlord { return &nearOverlord{node: n} }

func (o *nearOverlord) start() {
	n := o.node
	n.OnConnection(o.onConnection)
	n.OnDisconnection(o.onDisconnection)
	o.maintain()
	t := n.tick(n.cfg.StatusInterval, n.cfg.StatusInterval/5, o.maintain)
	n.tickers = append(n.tickers, t)
}

// maintain is the periodic overlord pass: bootstrap if necessary, retry
// the join, gossip status, trim the neighbor set.
func (o *nearOverlord) maintain() {
	n := o.node
	if !n.up {
		return
	}
	if len(n.bootstrap) == 0 {
		return // ring founder: neighbors come to us
	}
	if o.leafConn() == nil {
		o.joinSent = false
		// Try a bootstrap URI; rotate through the list across
		// attempts via the RNG so a dead bootstrap node doesn't
		// wedge the join.
		uri := n.bootstrap[n.rand().Intn(len(n.bootstrap))]
		n.startLinker(Zero, []URI{uri}, Leaf)
		return
	}
	nears := n.connsOfType(StructuredNear)
	if len(nears) < 2 {
		// Leaf is up but our ring position is absent or one-sided:
		// route a CTM to our own address through the leaf target
		// (§IV-C). Re-sent every maintenance pass until both-side
		// neighbors link up. Replies come back through the forwarder,
		// which works even when nothing can route to us yet.
		n.sendCTM(n.addr, StructuredNear, DeliverNearest, o.leafPeer)
		o.joinSent = true
	}
	if len(nears) == 0 {
		return
	}
	o.gossip()
	o.trim()
}

func (o *nearOverlord) leafConn() *Connection {
	for _, c := range o.node.connsOfType(Leaf) {
		if c.Peer == o.leafPeer {
			return c
		}
	}
	return nil
}

func (o *nearOverlord) onConnection(c *Connection) {
	n := o.node
	if n.near != o {
		return // stale callback from before a restart
	}
	if c.Has(Leaf) && o.leafPeer.IsZero() {
		o.leafPeer = c.Peer
		// Don't wait for the next maintenance tick: join now.
		if !o.joinSent && len(n.connsOfType(StructuredNear)) == 0 {
			n.sendCTM(n.addr, StructuredNear, DeliverNearest, o.leafPeer)
			o.joinSent = true
		}
	}
}

func (o *nearOverlord) onDisconnection(c *Connection) {
	if o.node.near != o {
		return // stale callback from before a restart
	}
	if c.Peer == o.leafPeer {
		o.leafPeer = Zero
	}
	// Losing a near neighbor (crash, migration) re-triggers repair on
	// the next maintenance pass via gossip and join retries.
}

// gossip advertises our near neighborhood over every near connection.
func (o *nearOverlord) gossip() {
	n := o.node
	nears := n.connsOfType(StructuredNear)
	if len(nears) == 0 {
		return
	}
	infos := make([]NeighborInfo, 0, len(nears))
	for _, c := range nears {
		infos = append(infos, NeighborInfo{Addr: c.Peer, URIs: c.URIs})
	}
	msg := statusMsg{From: n.addr, Neighbors: infos}
	size := statusMsgSize + 24*len(infos)
	for _, c := range nears {
		n.sendConn(c, size, msg)
	}
	n.Stats.Inc("status.sent", int64(len(nears)))
}

// handleStatus connects toward advertised neighbors that are closer than
// what we currently hold — the ring-repair path that makes the overlay
// converge after joins, leaves and migrations.
func (o *nearOverlord) handleStatus(m statusMsg) {
	n := o.node
	for _, info := range m.Neighbors {
		if info.Addr == n.addr {
			continue
		}
		if _, ok := n.conns[info.Addr]; ok {
			continue
		}
		if o.wanted(info.Addr) {
			// Ask for the reply via our leaf forwarder: while our
			// ring position is still converging, replies routed to
			// our bare address can dead-letter — and nodes whose
			// middleboxes defeat inbound linking (TCP-only sites)
			// depend entirely on the reply arriving so they can
			// dial outward.
			n.Stats.Inc("status.discovered", 1)
			n.sendCTM(info.Addr, StructuredNear, DeliverExact, o.leafPeer)
		}
	}
}

// wanted reports whether a new near connection to w would belong to the
// kept set (within NearPerSide nearest on its ring side).
func (o *nearOverlord) wanted(w Addr) bool {
	n := o.node
	k := n.cfg.NearPerSide
	right := n.addr.Clockwise(w).Cmp(w.Clockwise(n.addr)) < 0
	side := n.nearOnSide(right, k)
	if len(side) < k {
		return true
	}
	kth := side[k-1]
	if right {
		return n.addr.Clockwise(w).Cmp(n.addr.Clockwise(kth.Peer)) < 0
	}
	return w.Clockwise(n.addr).Cmp(kth.Peer.Clockwise(n.addr)) < 0
}

// trim drops the StructuredNear role from connections no longer among the
// k nearest per side, closing connections left without any role.
func (o *nearOverlord) trim() {
	n := o.node
	k := n.cfg.NearPerSide
	keep := make(map[Addr]bool)
	for _, c := range n.nearOnSide(true, k) {
		keep[c.Peer] = true
	}
	for _, c := range n.nearOnSide(false, k) {
		keep[c.Peer] = true
	}
	for _, c := range n.connsOfType(StructuredNear) {
		if keep[c.Peer] {
			continue
		}
		n.Stats.Inc("near.trimmed", 1)
		n.dropConnRole(c, StructuredNear, "trim")
	}
}

// farOverlord maintains k structured-far connections to distant ring
// addresses drawn from the small-world distribution of the paper's
// reference [37], giving O((1/k)·log²n) greedy routing.
type farOverlord struct {
	node *Node
}

func newFarOverlord(n *Node) *farOverlord { return &farOverlord{node: n} }

func (o *farOverlord) start() {
	n := o.node
	t := n.tick(n.cfg.FarInterval, n.cfg.FarInterval/5, o.maintain)
	n.tickers = append(n.tickers, t)
}

func (o *farOverlord) maintain() {
	n := o.node
	if !n.up || !n.IsRoutable() {
		return
	}
	have := len(n.connsOfType(StructuredFar))
	for i := have; i < n.cfg.FarCount; i++ {
		// The paper leaves the random-address logic out of scope
		// (footnote 1); we use the harmonic (Kleinberg) offset its
		// reference [37] analyses.
		target := n.addr.Offset(KleinbergOffset(n.rand()))
		n.sendCTM(target, StructuredFar, DeliverNearest, Zero)
	}
}

// shortcutOverlord implements §IV-E: per-destination traffic scores follow
// the queueing recurrence s_{i+1} = max(s_i + a_i − c, 0); when a score
// crosses the threshold the overlord issues a CTM for a direct shortcut
// connection, and shortcuts whose score has drained to zero for IdleDrop
// are torn down, bounding keepalive overhead.
type shortcutOverlord struct {
	node *Node
	cfg  ShortcutConfig

	arrivals  map[Addr]float64
	score     map[Addr]float64
	zeroSince map[Addr]sim.Time
	lastTry   map[Addr]sim.Time
}

func newShortcutOverlord(n *Node, cfg ShortcutConfig) *shortcutOverlord {
	return &shortcutOverlord{
		node:      n,
		cfg:       cfg,
		arrivals:  make(map[Addr]float64),
		score:     make(map[Addr]float64),
		zeroSince: make(map[Addr]sim.Time),
		lastTry:   make(map[Addr]sim.Time),
	}
}

func (o *shortcutOverlord) start() {
	n := o.node
	t := n.tick(o.cfg.Tick, o.cfg.Tick/10, o.tick)
	n.tickers = append(n.tickers, t)
}

// observe records tunnelled traffic to or from peer; called by the node on
// every originated and delivered application packet (traffic inspection).
func (o *shortcutOverlord) observe(peer Addr, pkts float64) {
	if peer == o.node.addr {
		return
	}
	o.arrivals[peer] += pkts
}

// Score exposes the current score for a peer (diagnostics and tests).
func (o *shortcutOverlord) Score(peer Addr) float64 { return o.score[peer] }

func (o *shortcutOverlord) tick() {
	n := o.node
	if !n.up {
		return
	}
	now := n.sim.Now()
	drain := o.cfg.ServiceRate * o.cfg.Tick.Seconds()
	for peer, a := range o.arrivals {
		o.score[peer] += a
		delete(o.arrivals, peer)
	}
	// Walk scores in address order: the loop sends CTMs and drops idle
	// shortcuts, so map-order iteration would perturb the deterministic
	// event sequence between runs.
	peers := make([]Addr, 0, len(o.score))
	for peer := range o.score {
		peers = append(peers, peer)
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i].Less(peers[j]) })
	for _, peer := range peers {
		s := o.score[peer]
		s -= drain
		if s <= 0 {
			s = 0
		}
		o.score[peer] = s
		c := n.conns[peer]

		if s >= o.cfg.Threshold && !o.direct(peer) {
			last, tried := o.lastTry[peer]
			if !tried || now.Sub(last) >= o.cfg.Retry {
				o.lastTry[peer] = now
				n.Stats.Inc("shortcut.ctm", 1)
				n.sendCTM(peer, Shortcut, DeliverExact, Zero)
			}
		}

		if s == 0 {
			if _, ok := o.zeroSince[peer]; !ok {
				o.zeroSince[peer] = now
			}
			if c != nil && c.Has(Shortcut) && now.Sub(o.zeroSince[peer]) >= o.cfg.IdleDrop {
				n.Stats.Inc("shortcut.idle_dropped", 1)
				n.dropConnRole(c, Shortcut, "idle")
			}
			if c == nil || !c.Has(Shortcut) {
				if now.Sub(o.zeroSince[peer]) >= o.cfg.IdleDrop {
					delete(o.score, peer)
					delete(o.zeroSince, peer)
					delete(o.lastTry, peer)
				}
			}
		} else {
			delete(o.zeroSince, peer)
		}
	}
}

// direct reports whether a single-hop path to peer already exists.
func (o *shortcutOverlord) direct(peer Addr) bool {
	c := o.node.conns[peer]
	return c != nil && c.structured()
}
