package brunet

import (
	"fmt"
	"sort"
	"strings"

	"wow/internal/phys"
	"wow/internal/sim"
	"wow/internal/trace"
)

// Connection is an established overlay link to a peer. A single physical
// flow may serve several roles (a structured-near link can also be a
// shortcut); Types records the set. Idle connections are kept alive by
// pings with retransmission and exponential backoff; unresponded pings
// mark the connection dead and it is discarded (§IV-B).
type Connection struct {
	Peer Addr
	// EP is the peer's working physical endpoint — the URI that
	// survived the linking protocol's trials.
	EP phys.Endpoint
	// Stream is the TCP-transport link carrying this connection, nil
	// for UDP-transport connections (§IV-A: "connections between Brunet
	// nodes are abstracted and may operate over any transport").
	Stream *phys.Stream
	// URIs is the peer's last advertised URI list, kept for status
	// gossip and relinking.
	URIs []URI
	// Relays, when non-empty, marks this a tunnel edge: no physical path
	// to the peer exists, and every message is wrapped in a tunnelFrame
	// and relayed through the first live relay in the list. The list is
	// kept sorted; the tunnel overlord adds relays learned from traffic
	// and CTM exchanges and prunes dead ones.
	Relays []Addr
	// observed holds the peer's freshest relay-stamped physical endpoints
	// (most recent first, bounded). Tunnel endpoints never see each
	// other's wire addresses directly; these observations — current as of
	// the last frame — are what upgrade attempts dial first, because the
	// peer's *advertised* URIs go stale the moment its NAT re-binds or
	// relaxes.
	observed []URI

	types     map[ConnType]bool
	inRing    bool // membership flag for the node's ringIndex
	lastHeard sim.Time
	pingTimer sim.Timer
	pingRetry int
	awaiting  uint64 // outstanding ping seq; 0 = none
	closed    bool

	// srtt/rttvar are the Jacobson estimators fed by keepalive RTT
	// samples (Karn's rule: retransmitted rounds are never sampled);
	// haveRTT marks the first sample. They drive the adaptive ping
	// deadline and the tunnel-relay score.
	srtt    sim.Duration
	rttvar  sim.Duration
	haveRTT bool
	// pingSentAt stamps the departure of the outstanding ping round.
	pingSentAt sim.Time
	// suspected marks a connection under a fast probe after a forwarded
	// death verdict: a pong clears it as a false suspicion, a timeout
	// confirms it.
	suspected bool
	// timedOut marks that at least one ping deadline actually expired in
	// the current round (fastProbe inflates pingRetry without one);
	// traffic arriving with it set counts as a premature timeout.
	timedOut bool
	// peerLoad is the peer's last advertised relay load (pongs, or a CTM
	// NeighborInfo before the first pong); loadKnown marks a first-hand
	// pong value, which third-party adverts never overwrite.
	peerLoad  int
	loadKnown bool
	// activeRelay anchors a tunnel edge's relay hysteresis: the relay the
	// last frame used, kept until it dies or a challenger beats it by
	// more than Config.RelayHysteresis.
	activeRelay Addr
	// dropReason records why dropConnection tore the connection down
	// ("timeout", "leave", …), readable by OnDisconnection callbacks —
	// the repair overlord re-links only involuntary losses.
	dropReason string
}

// Has reports whether the connection serves the given role.
func (c *Connection) Has(t ConnType) bool { return c.types[t] }

// RTT reports the connection's smoothed round-trip estimate and variance;
// ok is false before the first keepalive sample.
func (c *Connection) RTT() (srtt, rttvar sim.Duration, ok bool) {
	return c.srtt, c.rttvar, c.haveRTT
}

// PeerLoad reports the peer's last advertised relay load.
func (c *Connection) PeerLoad() int { return c.peerLoad }

// observeRTT folds one clean round-trip sample into the estimators:
// the standard Jacobson update (srtt ← 7/8·srtt + 1/8·rtt,
// rttvar ← 3/4·rttvar + 1/4·|srtt − rtt|), initialized from the first
// sample as srtt = rtt, rttvar = rtt/2.
func (c *Connection) observeRTT(rtt sim.Duration) {
	if rtt < 0 {
		return
	}
	if !c.haveRTT {
		c.srtt, c.rttvar, c.haveRTT = rtt, rtt/2, true
		return
	}
	diff := c.srtt - rtt
	if diff < 0 {
		diff = -diff
	}
	c.rttvar = (3*c.rttvar + diff) / 4
	c.srtt = (7*c.srtt + rtt) / 8
}

// DropReason reports why the connection was torn down ("timeout",
// "leave", …) — meaningful only inside OnDisconnection callbacks.
func (c *Connection) DropReason() string { return c.dropReason }

// Types lists the connection's roles in sorted order.
func (c *Connection) Types() []ConnType {
	out := make([]ConnType, 0, len(c.types))
	for t := range c.types {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// addType adds a role.
func (c *Connection) addType(t ConnType) { c.types[t] = true }

// dropType removes a role; reports whether any roles remain.
func (c *Connection) dropType(t ConnType) bool {
	delete(c.types, t)
	return len(c.types) > 0
}

// structured reports whether the connection carries ring-routing roles.
func (c *Connection) structured() bool {
	return c.types[StructuredNear] || c.types[StructuredFar] || c.types[Shortcut]
}

// Tunneled reports whether this is a tunnel edge (no direct physical
// path; frames relayed through mutual neighbors).
func (c *Connection) Tunneled() bool { return len(c.Relays) > 0 }

// Transport names the connection's link transport.
func (c *Connection) Transport() string {
	if c.Tunneled() {
		return "tunnel"
	}
	if c.Stream != nil {
		return "tcp"
	}
	return "udp"
}

// hasRelay reports whether r is in the connection's relay list.
func (c *Connection) hasRelay(r Addr) bool {
	for _, a := range c.Relays {
		if a == r {
			return true
		}
	}
	return false
}

// addRelay inserts r into the sorted relay list; reports whether new.
func (c *Connection) addRelay(r Addr) bool {
	if c.hasRelay(r) {
		return false
	}
	c.Relays = append(c.Relays, r)
	sort.Slice(c.Relays, func(i, j int) bool { return c.Relays[i].Less(c.Relays[j]) })
	return true
}

// maxObservedURIs bounds a tunnel edge's relay-stamped endpoint history.
const maxObservedURIs = 2

// noteObserved records a relay-stamped observation of the tunnel peer's
// current wire endpoint, most recent first. TCP observations are skipped
// (an ephemeral outbound-stream port is useless to dial back).
func (c *Connection) noteObserved(u URI) {
	if u.IsZero() || u.Transport == "tcp" {
		return
	}
	if len(c.observed) > 0 && c.observed[0] == u {
		return
	}
	for i, o := range c.observed {
		if o == u {
			c.observed = append(c.observed[:i], c.observed[i+1:]...)
			break
		}
	}
	c.observed = append([]URI{u}, c.observed...)
	if len(c.observed) > maxObservedURIs {
		c.observed = c.observed[:maxObservedURIs]
	}
}

// upgradeURIs builds the trial list for a direct-link upgrade attempt:
// the freshest relay-stamped observations first, then the peer's own
// advertised list, deduplicated.
func (c *Connection) upgradeURIs(advertised []URI) []URI {
	if len(c.observed) == 0 {
		return advertised
	}
	out := make([]URI, 0, len(c.observed)+len(advertised))
	seen := make(map[URI]bool, len(c.observed)+len(advertised))
	for _, u := range c.observed {
		if !seen[u] {
			seen[u] = true
			out = append(out, u)
		}
	}
	for _, u := range advertised {
		if !seen[u] {
			seen[u] = true
			out = append(out, u)
		}
	}
	return out
}

// removeRelay deletes r from the relay list; reports whether present.
func (c *Connection) removeRelay(r Addr) bool {
	for i, a := range c.Relays {
		if a == r {
			c.Relays = append(c.Relays[:i], c.Relays[i+1:]...)
			return true
		}
	}
	return false
}

// String renders "peer[types]@transport:endpoint".
func (c *Connection) String() string {
	names := make([]string, 0, len(c.types))
	for _, t := range c.Types() {
		names = append(names, t.String())
	}
	return fmt.Sprintf("%s[%s]@%s:%s", c.Peer, strings.Join(names, ","), c.Transport(), c.EP)
}

// addConnection records a new connection or adds a role to an existing
// one. It returns the connection. stream is non-nil for TCP-transport
// links.
func (n *Node) addConnection(peer Addr, ep phys.Endpoint, stream *phys.Stream, uris []URI, t ConnType) *Connection {
	c, ok := n.conns[peer]
	if !ok {
		c = &Connection{
			Peer:      peer,
			EP:        ep,
			Stream:    stream,
			types:     make(map[ConnType]bool),
			lastHeard: n.sim.Now(),
		}
		n.conns[peer] = c
		n.Stats.Inc("conn.created", 1)
		n.watchStream(c)
		n.schedulePing(c)
	} else {
		// Relink: the peer may have moved (VM migration assigns new
		// physical endpoints); adopt the fresh endpoint/transport.
		c.EP = ep
		if stream != nil && stream != c.Stream {
			c.Stream = stream
			n.watchStream(c)
		}
		if c.Tunneled() {
			// A direct wire confirmed: the tunnel upgrades in place
			// to a direct edge — roles, ring membership and keepalive
			// state all carry over.
			c.Relays = nil
			c.observed = nil
			n.Stats.Inc("tunnel.upgraded", 1)
		}
		c.lastHeard = n.sim.Now()
	}
	if len(uris) > 0 {
		c.URIs = uris
	}
	if !c.types[t] {
		c.addType(t)
		n.Stats.Inc("conn."+t.String(), 1)
	}
	if c.structured() {
		n.ring.insert(c)
	}
	n.notifyConn(c)
	return c
}

// addTunnelConnection records a tunnel edge to peer relayed through the
// given relays, or adds a role to an existing connection. An existing
// direct connection is never downgraded: the relays are ignored and only
// the role is added (the peer's tunnel state is transient and its own
// upgrade probe will converge on the direct edge).
func (n *Node) addTunnelConnection(peer Addr, relays []Addr, uris []URI, t ConnType) *Connection {
	c, ok := n.conns[peer]
	if !ok {
		c = &Connection{
			Peer:      peer,
			types:     make(map[ConnType]bool),
			lastHeard: n.sim.Now(),
		}
		for _, r := range relays {
			c.addRelay(r)
		}
		n.conns[peer] = c
		n.Stats.Inc("conn.created", 1)
		n.Stats.Inc("tunnel.established", 1)
		n.schedulePing(c)
	} else {
		if c.Tunneled() {
			for _, r := range relays {
				c.addRelay(r)
			}
		}
		c.lastHeard = n.sim.Now()
	}
	if len(uris) > 0 {
		c.URIs = uris
	}
	if !c.types[t] {
		c.addType(t)
		n.Stats.Inc("conn."+t.String(), 1)
	}
	if c.structured() {
		n.ring.insert(c)
	}
	n.notifyConn(c)
	return c
}

// watchStream ties a TCP-transport connection's fate to its stream: when
// the kernel connection dies, the overlay link dies with it immediately —
// one advantage of the TCP transport over UDP's ping-timeout detection.
func (n *Node) watchStream(c *Connection) {
	if c.Stream == nil {
		return
	}
	st := c.Stream
	st.OnClose(func(err error) {
		if !c.closed && n.conns[c.Peer] == c && c.Stream == st {
			n.Stats.Inc("conn.stream_closed", 1)
			n.dropConnection(c, false, "stream")
		}
	})
}

// sendConn transmits a link-layer or overlay message over the
// connection's transport. Messages for a tunnel edge are wrapped in a
// tunnelFrame and handed to the first live relay.
func (n *Node) sendConn(c *Connection, size int, payload any) {
	if !n.up || c.closed {
		if n.flight != nil {
			if op, ok := payload.(*OverlayPacket); ok && op.Trace != 0 {
				n.flightTerminal(op, trace.OutcomeConnClosed)
			}
		}
		return
	}
	if c.Tunneled() {
		n.sendTunnel(c, size, payload)
		return
	}
	if c.Stream != nil {
		c.Stream.SendMsg(size, payload)
		return
	}
	n.sendDirect(c.EP, size, payload)
}

// relayScore ranks one relay candidate for a tunnel edge: the observed
// smoothed RTT to it (PingTimeout standing in before the first sample)
// plus a penalty per tunnel pair the relay advertises it already carries.
// Lower is better.
func (n *Node) relayScore(rc *Connection) sim.Duration {
	rtt := n.cfg.PingTimeout
	if rc.haveRTT {
		rtt = rc.srtt
	}
	return rtt + sim.Duration(rc.peerLoad)*n.cfg.RelayLoadPenalty
}

// bestRelay picks the relay to carry c's next frame: the lowest-scoring
// relay reachable over a direct (non-tunneled) connection — tunnels never
// nest. Hysteresis keeps the edge on its current relay unless a challenger
// beats it by more than Config.RelayHysteresis, so score wobble on
// flapping links doesn't thrash re-selection; a dead active relay fails
// over to the next-ranked one instantly. Score ties resolve to the
// lowest-addressed relay (c.Relays is sorted), which is exactly the old
// first-live-wins choice when no RTT or load information distinguishes
// the candidates.
func (n *Node) bestRelay(c *Connection) *Connection {
	var best, active *Connection
	var bestScore, activeScore sim.Duration
	for _, r := range c.Relays {
		rc, ok := n.conns[r]
		if !ok || rc.closed || rc.Tunneled() {
			continue
		}
		s := n.relayScore(rc)
		if best == nil || s < bestScore {
			best, bestScore = rc, s
		}
		if r == c.activeRelay {
			active, activeScore = rc, s
		}
	}
	if best == nil {
		return nil
	}
	if active != nil && activeScore <= bestScore+n.cfg.RelayHysteresis {
		return active
	}
	if active == nil && !c.activeRelay.IsZero() {
		n.Stats.Inc("tunnel.relay_failover", 1)
	} else if active != nil {
		n.Stats.Inc("tunnel.relay_switched", 1)
	}
	c.activeRelay = best.Peer
	return best
}

// sendTunnel wraps payload in a tunnelFrame and sends it to the
// best-scoring live relay for forwarding to the tunnel peer.
func (n *Node) sendTunnel(c *Connection, size int, payload any) {
	rc := n.bestRelay(c)
	if rc == nil {
		n.Stats.Inc("tunnel.norelay", 1)
		if n.flight != nil {
			if op, ok := payload.(*OverlayPacket); ok && op.Trace != 0 {
				n.flightTerminal(op, trace.OutcomeNoRelay)
			}
		}
		return
	}
	frame := tunnelFrame{From: n.addr, To: c.Peer, Via: rc.Peer, Size: size, Inner: payload}
	n.sendConn(rc, tunnelHdrSize+size, frame)
}

// dropConnection removes a connection entirely, with an optional close
// message to the peer.
func (n *Node) dropConnection(c *Connection, sendClose bool, reason string) {
	if c.closed {
		return
	}
	c.closed = true
	c.dropReason = reason
	c.pingTimer.Cancel()
	n.ring.remove(c)
	delete(n.conns, c.Peer)
	n.Stats.Inc("conn.dropped."+reason, 1)
	if sendClose && n.up {
		if c.Stream != nil {
			c.Stream.SendMsg(pingMsgSize, closeMsg{From: n.addr})
		} else {
			n.sendDirect(c.EP, pingMsgSize, closeMsg{From: n.addr})
		}
	}
	if c.Stream != nil {
		c.Stream.Close()
	}
	n.notifyDisc(c)
}

// Connections returns a snapshot of all live connections.
func (n *Node) Connections() []*Connection {
	out := make([]*Connection, 0, len(n.conns))
	for _, c := range n.conns {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Peer.Less(out[j].Peer) })
	return out
}

// ConnectionTo returns the connection to peer, or nil.
func (n *Node) ConnectionTo(peer Addr) *Connection { return n.conns[peer] }

// connsOfType returns live connections carrying role t.
func (n *Node) connsOfType(t ConnType) []*Connection {
	var out []*Connection
	for _, c := range n.conns {
		if c.types[t] {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Peer.Less(out[j].Peer) })
	return out
}

// touch refreshes liveness state on any traffic from the peer. Traffic
// arriving while the detector had escalated (a ping round in retry, or a
// suspect verdict under fast probe) counts against it as a false
// suspicion: the peer was demonstrably alive.
func (n *Node) touch(c *Connection) {
	if c.suspected {
		c.suspected = false
		n.Stats.Inc("liveness.false_suspect", 1)
	}
	if c.timedOut {
		c.timedOut = false
		n.Stats.Inc("liveness.premature_timeout", 1)
	}
	c.lastHeard = n.sim.Now()
	c.pingRetry = 0
	c.awaiting = 0
}

// handlePong consumes a keepalive answer: an untouched round (no resend —
// Karn's rule) whose seq matches yields a clean RTT sample, and the pong
// carries the peer's current relay load.
func (n *Node) handlePong(c *Connection, m pongMsg) {
	if m.Seq != 0 && m.Seq == c.awaiting && c.pingRetry == 0 {
		c.observeRTT(n.sim.Now().Sub(c.pingSentAt))
	}
	c.peerLoad = m.Load
	c.loadKnown = true
	n.touch(c)
}

// pingDeadline derives the wait for one ping round: the adaptive RTO
// srtt + RTOK·rttvar clamped to [RTOMin, RTOMax] when Config.AdaptiveRTO
// is set and a sample exists, the fixed PingTimeout otherwise.
func (n *Node) pingDeadline(c *Connection) sim.Duration {
	if !n.cfg.AdaptiveRTO || !c.haveRTT {
		return n.cfg.PingTimeout
	}
	d := c.srtt + sim.Duration(n.cfg.RTOK)*c.rttvar
	if d < n.cfg.RTOMin {
		d = n.cfg.RTOMin
	}
	if d > n.cfg.RTOMax {
		d = n.cfg.RTOMax
	}
	return d
}

// schedulePing arms the keepalive timer for a connection.
func (n *Node) schedulePing(c *Connection) {
	jitter := n.cfg.PingInterval / 10
	c.pingTimer = n.sim.After(n.cfg.PingInterval+sim.Duration(n.rand().Int63n(int64(jitter)+1)), func() {
		n.pingTick(c)
	})
}

// pingTick sends a keepalive ping and arms the retry/backoff machinery.
func (n *Node) pingTick(c *Connection) {
	if c.closed || !n.up {
		return
	}
	// Fresh traffic counts as liveness; skip the ping round.
	if n.sim.Now().Sub(c.lastHeard) < n.cfg.PingInterval/2 {
		n.schedulePing(c)
		return
	}
	n.pingSeq++
	c.awaiting = n.pingSeq
	c.pingRetry = 0
	c.pingSentAt = n.sim.Now()
	n.sendConn(c, pingMsgSize, pingMsg{From: n.addr, Seq: c.awaiting})
	n.Stats.Inc("ping.sent", 1)
	n.armPingTimeout(c, n.pingDeadline(c))
}

// armPingTimeout waits for a pong; on timeout it resends with exponential
// backoff, and after PingRetries declares the connection dead — the
// mechanism that eventually clears state for crashed or migrated peers.
// The death verdict feeds the liveness counters: elapsed time since the
// peer was last heard (detection latency, in ms) and whether the verdict
// confirmed a forwarded suspicion.
func (n *Node) armPingTimeout(c *Connection, wait sim.Duration) {
	c.pingTimer = n.sim.After(wait, func() {
		if c.closed || c.awaiting == 0 {
			n.schedulePing(c)
			return
		}
		if c.pingRetry >= n.cfg.PingRetries {
			n.Stats.Inc("ping.dead", 1)
			n.Stats.Inc("liveness.detect_ms", int64(n.sim.Now().Sub(c.lastHeard)/sim.Millisecond))
			if c.suspected {
				n.Stats.Inc("liveness.suspect_confirmed", 1)
			}
			n.dropConnection(c, false, "timeout")
			n.forwardClose(c.Peer)
			return
		}
		c.pingRetry++
		c.timedOut = true
		n.pingSeq++
		c.awaiting = n.pingSeq
		n.sendConn(c, pingMsgSize, pingMsg{From: n.addr, Seq: c.awaiting})
		n.Stats.Inc("ping.resent", 1)
		n.armPingTimeout(c, wait*2)
	})
}

// fastProbe pings a suspect connection immediately with a reduced retry
// budget (Config.SuspectRetries) — the fast-detection path taken when a
// neighbor forwards a death verdict. A live peer answers and the probe
// costs one ping; a dead one is declared in roughly
// deadline·(2^(SuspectRetries+1)−1) instead of waiting out the full
// PingInterval + deadline·(2^(PingRetries+1)−1) keepalive cycle, where
// the deadline is pingDeadline's fixed or adaptive value.
func (n *Node) fastProbe(c *Connection) {
	if c.closed || !n.up || c.awaiting != 0 {
		return // dead already, or a ping round is in flight
	}
	c.pingTimer.Cancel()
	c.pingRetry = n.cfg.PingRetries - n.cfg.SuspectRetries
	if c.pingRetry < 0 {
		c.pingRetry = 0
	}
	c.suspected = true
	n.pingSeq++
	c.awaiting = n.pingSeq
	c.pingSentAt = n.sim.Now()
	n.sendConn(c, pingMsgSize, pingMsg{From: n.addr, Seq: c.awaiting})
	n.Stats.Inc("ping.fast_probe", 1)
	n.armPingTimeout(c, n.pingDeadline(c))
}

// forwardClose tells structured neighbors that the link to dead just timed
// out here, so peers that also hold one probe it immediately instead of
// each independently burning its own keepalive cycle (close-forwarding,
// the fast-failure-detection half of ring repair).
func (n *Node) forwardClose(dead Addr) {
	if !n.up {
		return
	}
	msg := suspectMsg{From: n.addr, Dead: dead}
	// Connections() iterates in address order: forwarding in map order
	// would reshuffle the event sequence (and the substrate's RNG draws)
	// from run to run, breaking deterministic replay of fault scenarios.
	for _, c := range n.Connections() {
		if !c.structured() || c.closed {
			continue
		}
		n.sendConn(c, pingMsgSize, msg)
		n.Stats.Inc("close.forwarded", 1)
	}
}

// nearestConn returns the structured connection whose peer is closest to
// dst by ring distance, excluding a peer address (no-backtrack). Leaf
// connections participate only on exact address match, since leaf children
// are not ring routers. An exact-match structured connection has ring
// distance zero and always wins, so both exact-match cases reduce to one
// map probe; the general case is the ring index's O(log c) search.
// nearestConnLinear is the brute-force oracle this must agree with.
func (n *Node) nearestConn(dst Addr, exclude Addr) *Connection {
	if c, ok := n.conns[dst]; ok && dst != exclude && (c.structured() || c.types[Leaf]) {
		return c
	}
	return n.ring.nearest(dst, exclude)
}

// nearestConnLinear is the original linear-scan selection, kept as the
// reference oracle for property tests of the ring index. It must implement
// the exact same choice: minimal ring distance, ties to the smaller peer
// address, leaf connections on exact match only.
func (n *Node) nearestConnLinear(dst Addr, exclude Addr) *Connection {
	var best *Connection
	var bestDist Addr
	for _, c := range n.conns {
		if c.Peer == exclude {
			continue
		}
		if !c.structured() {
			if c.Peer == dst && c.types[Leaf] {
				return c
			}
			continue
		}
		d := c.Peer.RingDist(dst)
		if best == nil || d.Cmp(bestDist) < 0 || (d.Cmp(bestDist) == 0 && c.Peer.Less(best.Peer)) {
			best, bestDist = c, d
		}
	}
	return best
}

// neighborsOnSide returns structured-near peers sorted by clockwise
// (right=true) or counter-clockwise distance from this node — a filtered
// walk of the ring index, already in side order. Callers that need only
// the first k use nearOnSide/firstOnSide instead of building the full
// slice. neighborsOnSideLinear is the sort-based oracle.
func (n *Node) neighborsOnSide(right bool) []*Connection {
	var out []*Connection
	n.ring.sideWalk(right, func(c *Connection) bool {
		if c.Has(StructuredNear) {
			out = append(out, c)
		}
		return true
	})
	return out
}

// neighborsOnSideLinear is the original sort-per-call selection, kept as
// the reference oracle for property tests of the ring index walks.
func (n *Node) neighborsOnSideLinear(right bool) []*Connection {
	conns := n.connsOfType(StructuredNear)
	sort.Slice(conns, func(i, j int) bool {
		var di, dj Addr
		if right {
			di, dj = n.addr.Clockwise(conns[i].Peer), n.addr.Clockwise(conns[j].Peer)
		} else {
			di, dj = conns[i].Peer.Clockwise(n.addr), conns[j].Peer.Clockwise(n.addr)
		}
		return di.Cmp(dj) < 0
	})
	return conns
}
