package brunet

import (
	"wow/internal/phys"
	"wow/internal/sim"
)

// linker runs one side of the linking protocol (§IV-B2): it works through
// the target's URI list one entry at a time, resending link requests with
// exponential backoff, and moving to the next URI after a retry budget is
// exhausted. The paper notes the conservative constants lead to delays of
// ~150s before giving up on a bad URI — exactly the mechanism behind the
// slow UFL-UFL shortcut formation in Figure 4 — and those constants are
// Config fields here (LinkResend, LinkBackoff, LinkRetries).
type linker struct {
	node   *Node
	target Addr
	ctype  ConnType
	uris   []URI
	token  uint64

	// relays switches the linker to tunnel mode: instead of dialing the
	// target's URIs, each link request is wrapped in a tunnelFrame and
	// sent through one relay at a time (uriIdx indexes relays).
	relays []Addr
	// upgrade marks an attempt to replace an existing tunnel edge with a
	// direct one: the "already linked in this role" guard is skipped.
	upgrade bool

	uriIdx  int
	attempt int
	timer   sim.Timer
	stream  *phys.Stream // active TCP-transport attempt, if any
	done    bool
	yielded bool

	// failTimeout / failReject classify the trial failures seen so far,
	// for the terminal failure taxonomy reported to the node.
	failTimeout int
	failReject  int
}

// tunnelMode reports whether the linker handshakes through relays.
func (lk *linker) tunnelMode() bool { return len(lk.relays) > 0 }

// startLinker begins a linking attempt toward target using its URI list.
// If a linker for the target is already active the call is a no-op — the
// outstanding attempt will complete (or fail) on its own.
func (n *Node) startLinker(target Addr, uris []URI, t ConnType) {
	n.launchLinker(target, uris, nil, t, false)
}

// startUpgradeLinker begins a direct linking attempt toward a peer we
// already hold a (tunnel) connection to, so a successful handshake
// upgrades the tunnel in place.
func (n *Node) startUpgradeLinker(target Addr, uris []URI, t ConnType) {
	n.launchLinker(target, uris, nil, t, true)
}

// startTunnelLinker begins a tunnel-mode linking attempt toward target,
// handshaking through the given relays.
func (n *Node) startTunnelLinker(target Addr, relays []Addr, uris []URI, t ConnType) {
	n.launchLinker(target, uris, relays, t, false)
}

func (n *Node) launchLinker(target Addr, uris []URI, relays []Addr, t ConnType, upgrade bool) {
	if target == n.addr {
		return
	}
	if len(uris) == 0 && len(relays) == 0 {
		return
	}
	if c, ok := n.conns[target]; ok && c.Has(t) && !upgrade {
		return // already linked in this role
	}
	if _, active := n.linkers[target]; active {
		return
	}
	n.tokenSeq++
	// Trial order: the node's own preferred transport first (stable, so
	// the paper's public-before-private order is preserved within each
	// transport). A TCP-preferring node behind a UDP-hostile firewall
	// thus dials streams outward immediately instead of burning the
	// full retry budget on unreachable UDP endpoints.
	ordered := make([]URI, 0, len(uris))
	for _, u := range uris {
		if u.Transport == n.cfg.Transport {
			ordered = append(ordered, u)
		}
	}
	for _, u := range uris {
		if u.Transport != n.cfg.Transport {
			ordered = append(ordered, u)
		}
	}
	lk := &linker{node: n, target: target, ctype: t, uris: ordered,
		relays: relays, upgrade: upgrade, token: n.tokenSeq}
	n.linkers[target] = lk
	n.Stats.Inc("link.attempts", 1)
	lk.sendRequest()
}

// trialCount is the number of trial slots: relays in tunnel mode, URIs
// otherwise.
func (lk *linker) trialCount() int {
	if lk.tunnelMode() {
		return len(lk.relays)
	}
	return len(lk.uris)
}

// giveUp terminates the linker after its last trial slot failed, counting
// the terminal reason and reporting it to the node so the tunnel overlord
// can distinguish "retry later" (busy races) from "needs a tunnel"
// (every URI timed out or was rejected).
func (lk *linker) giveUp() {
	n := lk.node
	if lk.tunnelMode() {
		// A failed tunnel handshake never falls back to another tunnel.
		n.Stats.Inc("tunnel.link_giveup", 1)
		lk.finish(false)
		return
	}
	reason := "timeout"
	if lk.failReject > 0 && lk.failTimeout == 0 {
		reason = "reject"
	}
	n.Stats.Inc("link.giveup", 1)
	n.Stats.Inc("link.giveup."+reason, 1)
	lk.finish(false)
	n.linkFailed(lk.target, lk.ctype, reason)
}

// sendRequest transmits the current link request and arms the resend timer.
func (lk *linker) sendRequest() {
	n := lk.node
	if lk.done || !n.up {
		lk.finish(false)
		return
	}
	if lk.uriIdx >= lk.trialCount() {
		// All trials exhausted: give up. Higher layers (overlords)
		// re-issue CTMs with their own backoff.
		lk.giveUp()
		return
	}
	req := linkRequest{
		From:  n.addr,
		To:    lk.target,
		Type:  lk.ctype,
		Token: lk.token,
		Seq:   lk.attempt,
		URIs:  n.URIs(),
	}
	size := linkMsgSize + 16*len(req.URIs)
	if lk.tunnelMode() {
		// Tunnel mode: the handshake rides tunnelFrames through the
		// current relay. A relay we no longer hold a direct connection
		// to is skipped immediately.
		relay := lk.relays[lk.uriIdx]
		rc, ok := n.conns[relay]
		if !ok || rc.closed || rc.Tunneled() {
			lk.uriIdx++
			lk.attempt = 0
			lk.sendRequest()
			return
		}
		frame := tunnelFrame{From: n.addr, To: lk.target, Via: relay, Size: size, Inner: req}
		n.sendConn(rc, tunnelHdrSize+size, frame)
		n.Stats.Inc("link.requests", 1)
		lk.armResend()
		return
	}
	uri := lk.uris[lk.uriIdx]
	if uri.Transport == "tcp" {
		// TCP-transport URI: the handshake rides a kernel stream.
		if lk.stream == nil {
			lk.stream = n.host.DialStream(uri.EP)
			st := lk.stream
			st.OnMessage(func(sz int, payload any) {
				n.handleWire(wire{stream: st}, payload)
			})
			st.OnClose(func(err error) {
				if err != nil && !lk.done && lk.stream == st {
					// Stream failed: try the next URI.
					lk.stream = nil
					lk.timer.Cancel()
					lk.uriIdx++
					lk.attempt = 0
					lk.sendRequest()
				}
			})
		}
		lk.stream.SendMsg(size, req)
	} else {
		n.sendDirect(uri.EP, size, req)
	}
	n.Stats.Inc("link.requests", 1)
	lk.armResend()
}

// armResend schedules the next resend with exponential backoff; once the
// retry budget for the current trial slot is burned, the slot is counted
// as timed out and the handshake restarts over the next one (§IV-D).
func (lk *linker) armResend() {
	n := lk.node
	wait := n.cfg.LinkResend
	for i := 0; i < lk.attempt; i++ {
		wait = sim.Duration(float64(wait) * n.cfg.LinkBackoff)
	}
	lk.timer = n.sim.After(wait, func() {
		if lk.done {
			return
		}
		lk.attempt++
		if lk.attempt > n.cfg.LinkRetries {
			if lk.tunnelMode() {
				n.Stats.Inc("tunnel.relay_exhausted", 1)
			} else {
				n.Stats.Inc("link.uri_exhausted", 1)
				n.Stats.Inc("link.uri_exhausted.timeout", 1)
			}
			lk.failTimeout++
			lk.abandonStream()
			lk.uriIdx++
			lk.attempt = 0
		}
		lk.sendRequest()
	})
}

// abandonStream detaches a pending TCP-transport attempt. The stream is
// never closed here: with bidirectional linking the peer may already have
// adopted it as the connection's transport (our request reached them even
// though we are yielding the race). Streams that end up orphaned on both
// ends carry no keepalive traffic and are reaped by the physical layer's
// idle collector.
func (lk *linker) abandonStream() {
	lk.stream = nil
}

// finish terminates the linker and deregisters it.
func (lk *linker) finish(ok bool) {
	if lk.done {
		return
	}
	lk.done = true
	lk.timer.Cancel()
	if !ok {
		lk.abandonStream()
	}
	delete(lk.node.linkers, lk.target)
	if ok {
		lk.node.Stats.Inc("link.success", 1)
		// A fresh link clears any busy-race escalation toward this
		// peer; the next race starts from the base backoff again.
		delete(lk.node.busyRetry, lk.target)
	}
}

// handleLinkRequest is the responder side of the handshake. The responder
// records the connection state immediately and replies over the physical
// network; the requester's endpoint is whatever source address arrived on
// the wire (NAT-translated en route). The reply carries that observed
// endpoint so NATed initiators learn their public URIs (§IV-C).
//
// Linking races — both ends initiating simultaneously after a CTM exchange
// — are broken deterministically: the node with the smaller address keeps
// its attempt and answers the peer with a link error; the larger-address
// node abandons its own attempt and services the peer's. (The paper breaks
// the race with first-mover link errors plus randomized restarts; a
// deterministic tie-break converges to the same single-winner outcome
// without the restart round-trips.)
func (n *Node) handleLinkRequest(w wire, req linkRequest) {
	src := w.observed()
	if req.To != n.addr && !req.To.IsZero() {
		// NAT rebinding or stale URI delivered this to the wrong
		// node: refuse so the initiator tries its next URI.
		n.replyTo(w, linkMsgSize, linkError{From: n.addr, Token: req.Token, Reason: "wrong target"})
		return
	}
	if lk, active := n.linkers[req.From]; active && !lk.yielded {
		// A direct-wire request from a peer we only hold a tunnel to is
		// proof the peer can reach us physically, while our own attempt
		// may be dialing through a NAT that will never admit it. It wins
		// the race regardless of the address tie-break — otherwise
		// upgrade probing livelocks, the smaller-address side forever
		// "winning" races its own dials cannot cash in.
		directUpgrade := false
		if c, ok := n.conns[req.From]; ok && c.Tunneled() && !w.isTunnel() {
			directUpgrade = true
		}
		if n.addr.Less(req.From) && !directUpgrade {
			// We win: tell the peer to stand down; our own attempt
			// continues.
			n.Stats.Inc("link.race_won", 1)
			n.replyTo(w, linkMsgSize, linkError{From: n.addr, Token: req.Token, Reason: "busy"})
			return
		}
		// We lose: abandon our attempt and serve theirs.
		n.Stats.Inc("link.race_yield", 1)
		lk.yielded = true
		lk.finish(false)
	}
	var c *Connection
	observed := URIEndpoint{URI: URI{Transport: w.transport(), EP: src}}
	if w.isTunnel() {
		// Tunnel-mode handshake: record a tunnel edge through the relay
		// the request arrived via. There is no physical source endpoint;
		// the relay-stamped observation (our peer's public endpoint as the
		// relay saw it) is echoed back instead.
		c = n.addTunnelConnection(req.From, []Addr{w.tvia}, req.URIs, req.Type)
		observed = URIEndpoint{URI: w.tobs}
	} else {
		c = n.addConnection(req.From, src, w.stream, req.URIs, req.Type)
	}
	n.touch(c)
	reply := linkReply{
		From:     n.addr,
		Token:    req.Token,
		URIs:     n.URIs(),
		Observed: observed,
	}
	n.replyTo(w, linkMsgSize+16*len(reply.URIs), reply)
}

// handleLinkReply completes the initiator side of the handshake.
func (n *Node) handleLinkReply(w wire, rep linkReply) {
	src := w.observed()
	// Learn our own NAT-assigned URI from the responder's observation.
	if n.learnURI(rep.Observed.URI) {
		n.Stats.Inc("uri.learned", 1)
	}
	lk, ok := n.linkers[rep.From]
	if !ok {
		// Leaf bootstrap linkers don't know the target's address in
		// advance (§IV-C: a new node only has bootstrap URIs); they
		// are registered under the zero address and matched by token.
		if zlk, zok := n.linkers[Zero]; zok && zlk.token == rep.Token {
			lk, ok = zlk, true
			delete(n.linkers, Zero)
			n.linkers[rep.From] = lk
			lk.target = rep.From
		}
	}
	if !ok || lk.token != rep.Token {
		// Duplicate or stale reply; refresh liveness if connected.
		if c, live := n.conns[rep.From]; live {
			n.touch(c)
		}
		return
	}
	var c *Connection
	if w.isTunnel() {
		relays := lk.relays
		if len(relays) == 0 {
			relays = []Addr{w.tvia}
		}
		c = n.addTunnelConnection(rep.From, relays, rep.URIs, lk.ctype)
	} else {
		c = n.addConnection(rep.From, src, lk.stream, rep.URIs, lk.ctype)
	}
	n.touch(c)
	lk.stream = nil // the connection owns it now
	lk.finish(true)
}

// handleLinkError aborts the corresponding attempt. A "busy" error means
// the peer's symmetric attempt is in flight and will soon establish the
// connection from its side; any other reason advances to the next URI.
func (n *Node) handleLinkError(rep linkError) {
	lk, ok := n.linkers[rep.From]
	if !ok || lk.token != rep.Token {
		// A "wrong target" error comes from whoever actually answered a
		// stale URI — not the node we believed we were dialing — so the
		// sender's address won't match any linker. Recover it by token
		// (tokens are unique per linker); map iteration order is
		// irrelevant since at most one linker matches.
		lk = nil
		for _, cand := range n.linkers {
			if cand.token == rep.Token {
				lk = cand
				break
			}
		}
		if lk == nil {
			return
		}
	}
	if rep.Reason == "busy" {
		// The peer's symmetric attempt is in flight; usually it will
		// establish the connection from its side. But when our
		// middleboxes defeat inbound linking (e.g. a TCP-only node
		// behind a stateful firewall), only OUR outbound handshake can
		// ever succeed — so, per §IV-B2, restart with a randomized
		// exponential backoff rather than yielding forever.
		n.Stats.Inc("link.uri_exhausted", 1)
		n.Stats.Inc("link.uri_exhausted.busy", 1)
		lk.yielded = true
		target, uris, ctype := lk.target, lk.uris, lk.ctype
		lk.finish(false)
		n.busyRetry[target]++
		shift := n.busyRetry[target]
		if shift > 5 {
			shift = 5
		}
		backoff := n.cfg.LinkResend * sim.Duration(1<<uint(shift))
		backoff += sim.Duration(n.rand().Int63n(int64(backoff) + 1))
		n.sim.After(backoff, func() {
			if !n.up {
				return
			}
			if c, ok := n.conns[target]; ok && c.Has(ctype) {
				if !c.Tunneled() {
					n.busyRetry[target] = 0
					return // the peer's attempt won after all
				}
				// Only a tunnel edge exists: keep retrying in upgrade
				// mode, or the race loser could never dial out again.
				n.startUpgradeLinker(target, uris, ctype)
				return
			}
			n.startLinker(target, uris, ctype)
		})
		return
	}
	// Wrong target (NAT rebind handed the URI to somebody else): this URI
	// is a hard reject, not a timeout; skip straight to the next.
	n.Stats.Inc("link.uri_exhausted", 1)
	n.Stats.Inc("link.uri_exhausted.reject", 1)
	lk.failReject++
	lk.timer.Cancel()
	lk.abandonStream()
	lk.uriIdx++
	lk.attempt = 0
	lk.sendRequest()
}
