package brunet

import (
	"wow/internal/phys"
	"wow/internal/sim"
)

// linker runs one side of the linking protocol (§IV-B2): it works through
// the target's URI list one entry at a time, resending link requests with
// exponential backoff, and moving to the next URI after a retry budget is
// exhausted. The paper notes the conservative constants lead to delays of
// ~150s before giving up on a bad URI — exactly the mechanism behind the
// slow UFL-UFL shortcut formation in Figure 4 — and those constants are
// Config fields here (LinkResend, LinkBackoff, LinkRetries).
type linker struct {
	node   *Node
	target Addr
	ctype  ConnType
	uris   []URI
	token  uint64

	uriIdx  int
	attempt int
	timer   sim.Timer
	stream  *phys.Stream // active TCP-transport attempt, if any
	done    bool
	yielded bool
}

// startLinker begins a linking attempt toward target using its URI list.
// If a linker for the target is already active the call is a no-op — the
// outstanding attempt will complete (or fail) on its own.
func (n *Node) startLinker(target Addr, uris []URI, t ConnType) {
	if target == n.addr || len(uris) == 0 {
		return
	}
	if c, ok := n.conns[target]; ok && c.Has(t) {
		return // already linked in this role
	}
	if _, active := n.linkers[target]; active {
		return
	}
	n.tokenSeq++
	// Trial order: the node's own preferred transport first (stable, so
	// the paper's public-before-private order is preserved within each
	// transport). A TCP-preferring node behind a UDP-hostile firewall
	// thus dials streams outward immediately instead of burning the
	// full retry budget on unreachable UDP endpoints.
	ordered := make([]URI, 0, len(uris))
	for _, u := range uris {
		if u.Transport == n.cfg.Transport {
			ordered = append(ordered, u)
		}
	}
	for _, u := range uris {
		if u.Transport != n.cfg.Transport {
			ordered = append(ordered, u)
		}
	}
	lk := &linker{node: n, target: target, ctype: t, uris: ordered, token: n.tokenSeq}
	n.linkers[target] = lk
	n.Stats.Inc("link.attempts", 1)
	lk.sendRequest()
}

// sendRequest transmits the current link request and arms the resend timer.
func (lk *linker) sendRequest() {
	n := lk.node
	if lk.done || !n.up {
		lk.finish(false)
		return
	}
	if lk.uriIdx >= len(lk.uris) {
		// All URIs exhausted: give up. Higher layers (overlords)
		// re-issue CTMs with their own backoff.
		n.Stats.Inc("link.giveup", 1)
		lk.finish(false)
		return
	}
	uri := lk.uris[lk.uriIdx]
	req := linkRequest{
		From:  n.addr,
		To:    lk.target,
		Type:  lk.ctype,
		Token: lk.token,
		Seq:   lk.attempt,
		URIs:  n.URIs(),
	}
	size := linkMsgSize + 16*len(req.URIs)
	if uri.Transport == "tcp" {
		// TCP-transport URI: the handshake rides a kernel stream.
		if lk.stream == nil {
			lk.stream = n.host.DialStream(uri.EP)
			st := lk.stream
			st.OnMessage(func(sz int, payload any) {
				n.handleWire(wire{stream: st}, payload)
			})
			st.OnClose(func(err error) {
				if err != nil && !lk.done && lk.stream == st {
					// Stream failed: try the next URI.
					lk.stream = nil
					lk.timer.Cancel()
					lk.uriIdx++
					lk.attempt = 0
					lk.sendRequest()
				}
			})
		}
		lk.stream.SendMsg(size, req)
	} else {
		n.sendDirect(uri.EP, size, req)
	}
	n.Stats.Inc("link.requests", 1)

	wait := lk.node.cfg.LinkResend
	for i := 0; i < lk.attempt; i++ {
		wait = sim.Duration(float64(wait) * lk.node.cfg.LinkBackoff)
	}
	lk.timer = n.sim.After(wait, func() {
		if lk.done {
			return
		}
		lk.attempt++
		if lk.attempt > n.cfg.LinkRetries {
			// Give up on this URI; restart the handshake over the
			// next one in the list (§IV-D).
			n.Stats.Inc("link.uri_exhausted", 1)
			lk.abandonStream()
			lk.uriIdx++
			lk.attempt = 0
		}
		lk.sendRequest()
	})
}

// abandonStream detaches a pending TCP-transport attempt. The stream is
// never closed here: with bidirectional linking the peer may already have
// adopted it as the connection's transport (our request reached them even
// though we are yielding the race). Streams that end up orphaned on both
// ends carry no keepalive traffic and are reaped by the physical layer's
// idle collector.
func (lk *linker) abandonStream() {
	lk.stream = nil
}

// finish terminates the linker and deregisters it.
func (lk *linker) finish(ok bool) {
	if lk.done {
		return
	}
	lk.done = true
	lk.timer.Cancel()
	if !ok {
		lk.abandonStream()
	}
	delete(lk.node.linkers, lk.target)
	if ok {
		lk.node.Stats.Inc("link.success", 1)
		// A fresh link clears any busy-race escalation toward this
		// peer; the next race starts from the base backoff again.
		delete(lk.node.busyRetry, lk.target)
	}
}

// handleLinkRequest is the responder side of the handshake. The responder
// records the connection state immediately and replies over the physical
// network; the requester's endpoint is whatever source address arrived on
// the wire (NAT-translated en route). The reply carries that observed
// endpoint so NATed initiators learn their public URIs (§IV-C).
//
// Linking races — both ends initiating simultaneously after a CTM exchange
// — are broken deterministically: the node with the smaller address keeps
// its attempt and answers the peer with a link error; the larger-address
// node abandons its own attempt and services the peer's. (The paper breaks
// the race with first-mover link errors plus randomized restarts; a
// deterministic tie-break converges to the same single-winner outcome
// without the restart round-trips.)
func (n *Node) handleLinkRequest(w wire, req linkRequest) {
	src := w.observed()
	if req.To != n.addr && !req.To.IsZero() {
		// NAT rebinding or stale URI delivered this to the wrong
		// node: refuse so the initiator tries its next URI.
		n.replyTo(w, linkMsgSize, linkError{From: n.addr, Token: req.Token, Reason: "wrong target"})
		return
	}
	if lk, active := n.linkers[req.From]; active && !lk.yielded {
		if n.addr.Less(req.From) {
			// We win: tell the peer to stand down; our own attempt
			// continues.
			n.Stats.Inc("link.race_won", 1)
			n.replyTo(w, linkMsgSize, linkError{From: n.addr, Token: req.Token, Reason: "busy"})
			return
		}
		// We lose: abandon our attempt and serve theirs.
		n.Stats.Inc("link.race_yield", 1)
		lk.yielded = true
		lk.finish(false)
	}
	c := n.addConnection(req.From, src, w.stream, req.URIs, req.Type)
	n.touch(c)
	reply := linkReply{
		From:     n.addr,
		Token:    req.Token,
		URIs:     n.URIs(),
		Observed: URIEndpoint{URI: URI{Transport: w.transport(), EP: src}},
	}
	n.replyTo(w, linkMsgSize+16*len(reply.URIs), reply)
}

// handleLinkReply completes the initiator side of the handshake.
func (n *Node) handleLinkReply(w wire, rep linkReply) {
	src := w.observed()
	// Learn our own NAT-assigned URI from the responder's observation.
	if n.learnURI(rep.Observed.URI) {
		n.Stats.Inc("uri.learned", 1)
	}
	lk, ok := n.linkers[rep.From]
	if !ok {
		// Leaf bootstrap linkers don't know the target's address in
		// advance (§IV-C: a new node only has bootstrap URIs); they
		// are registered under the zero address and matched by token.
		if zlk, zok := n.linkers[Zero]; zok && zlk.token == rep.Token {
			lk, ok = zlk, true
			delete(n.linkers, Zero)
			n.linkers[rep.From] = lk
			lk.target = rep.From
		}
	}
	if !ok || lk.token != rep.Token {
		// Duplicate or stale reply; refresh liveness if connected.
		if c, live := n.conns[rep.From]; live {
			n.touch(c)
		}
		return
	}
	c := n.addConnection(rep.From, src, lk.stream, rep.URIs, lk.ctype)
	n.touch(c)
	lk.stream = nil // the connection owns it now
	lk.finish(true)
}

// handleLinkError aborts the corresponding attempt. A "busy" error means
// the peer's symmetric attempt is in flight and will soon establish the
// connection from its side; any other reason advances to the next URI.
func (n *Node) handleLinkError(rep linkError) {
	lk, ok := n.linkers[rep.From]
	if !ok || lk.token != rep.Token {
		return
	}
	if rep.Reason == "busy" {
		// The peer's symmetric attempt is in flight; usually it will
		// establish the connection from its side. But when our
		// middleboxes defeat inbound linking (e.g. a TCP-only node
		// behind a stateful firewall), only OUR outbound handshake can
		// ever succeed — so, per §IV-B2, restart with a randomized
		// exponential backoff rather than yielding forever.
		lk.yielded = true
		target, uris, ctype := lk.target, lk.uris, lk.ctype
		lk.finish(false)
		n.busyRetry[target]++
		shift := n.busyRetry[target]
		if shift > 5 {
			shift = 5
		}
		backoff := n.cfg.LinkResend * sim.Duration(1<<uint(shift))
		backoff += sim.Duration(n.sim.Rand().Int63n(int64(backoff) + 1))
		n.sim.After(backoff, func() {
			if !n.up {
				return
			}
			if c, ok := n.conns[target]; ok && c.Has(ctype) {
				n.busyRetry[target] = 0
				return // the peer's attempt won after all
			}
			n.startLinker(target, uris, ctype)
		})
		return
	}
	// Wrong target: this URI reaches somebody else now; try the next.
	lk.timer.Cancel()
	lk.abandonStream()
	lk.uriIdx++
	lk.attempt = 0
	lk.sendRequest()
}
