package brunet

import (
	"fmt"
	"sort"
	"testing"

	"wow/internal/natsim"
	"wow/internal/phys"
	"wow/internal/sim"
)

// overlayRig builds small overlays on a simulated public Internet.
type overlayRig struct {
	s     *sim.Simulator
	net   *phys.Network
	site  *phys.Site
	nodes []*Node
}

func newOverlayRig(seed int64) *overlayRig {
	s := sim.New(seed)
	net := phys.NewNetwork(s, phys.UniformLatency(
		phys.PathModel{OneWay: sim.Millisecond},
		phys.PathModel{OneWay: 15 * sim.Millisecond},
	))
	return &overlayRig{s: s, net: net, site: net.AddSite("pub")}
}

// addPublic creates and starts a node on a fresh public host, bootstrapping
// off the first node.
func (r *overlayRig) addPublic(t *testing.T, name string, cfg Config) *Node {
	t.Helper()
	h := r.net.AddHost(name, r.site, r.net.Root(), phys.HostConfig{})
	n := NewNode(h, AddrFromString(name), cfg)
	var boot []URI
	if len(r.nodes) > 0 {
		boot = []URI{r.nodes[0].BootstrapURI()}
	}
	if err := n.Start(boot); err != nil {
		t.Fatalf("start %s: %v", name, err)
	}
	r.nodes = append(r.nodes, n)
	return n
}

// buildRing starts n public nodes and lets the overlay converge.
func buildRing(t *testing.T, seed int64, n int) *overlayRig {
	t.Helper()
	r := newOverlayRig(seed)
	cfg := FastTestConfig()
	for i := 0; i < n; i++ {
		r.addPublic(t, fmt.Sprintf("node%03d", i), cfg)
		r.s.RunFor(2 * sim.Second)
	}
	r.s.RunFor(60 * sim.Second)
	return r
}

// ringNeighbors returns the sorted ring order of the rig's running nodes.
func (r *overlayRig) ringOrder() []*Node {
	live := make([]*Node, 0, len(r.nodes))
	for _, n := range r.nodes {
		if n.Up() {
			live = append(live, n)
		}
	}
	sort.Slice(live, func(i, j int) bool { return live[i].Addr().Less(live[j].Addr()) })
	return live
}

// assertRingConsistent checks every node is linked to its true successor.
func assertRingConsistent(t *testing.T, r *overlayRig) {
	t.Helper()
	order := r.ringOrder()
	for i, n := range order {
		succ := order[(i+1)%len(order)]
		if n == succ {
			continue
		}
		c := n.ConnectionTo(succ.Addr())
		if c == nil || !c.Has(StructuredNear) {
			t.Errorf("node %s missing near link to successor %s", n.Addr(), succ.Addr())
		}
	}
}

func TestSingleNodeFoundsRing(t *testing.T) {
	r := newOverlayRig(1)
	n := r.addPublic(t, "alone", FastTestConfig())
	r.s.RunFor(10 * sim.Second)
	if !n.IsRoutable() {
		t.Fatal("ring founder not routable")
	}
	if n.String() == "" {
		t.Fatal("String empty")
	}
}

func TestDoubleStartFails(t *testing.T) {
	r := newOverlayRig(1)
	n := r.addPublic(t, "a", FastTestConfig())
	if err := n.Start(nil); err == nil {
		t.Fatal("second Start succeeded")
	}
}

func TestTwoNodeRing(t *testing.T) {
	r := buildRing(t, 1, 2)
	for _, n := range r.nodes {
		if !n.IsRoutable() {
			t.Fatalf("node %s not routable", n.Addr())
		}
	}
	if r.nodes[1].ConnectionTo(r.nodes[0].Addr()) == nil {
		t.Fatal("joiner not connected to founder")
	}
}

func TestRingFormation(t *testing.T) {
	r := buildRing(t, 2, 16)
	for _, n := range r.nodes {
		if !n.IsRoutable() {
			t.Fatalf("node %s not routable", n.Addr())
		}
	}
	assertRingConsistent(t, r)
}

func TestAllPairsRouting(t *testing.T) {
	r := buildRing(t, 3, 12)
	got := make(map[Addr]map[Addr]bool)
	for _, n := range r.nodes {
		n := n
		got[n.Addr()] = make(map[Addr]bool)
		n.RegisterProto("test", func(src Addr, d AppData) {
			got[n.Addr()][src] = true
		})
	}
	for _, a := range r.nodes {
		for _, b := range r.nodes {
			if a == b {
				continue
			}
			a.SendTo(b.Addr(), DeliverExact, AppData{Proto: "test", Size: 100})
		}
	}
	r.s.RunFor(10 * sim.Second)
	for _, a := range r.nodes {
		for _, b := range r.nodes {
			if a == b {
				continue
			}
			if !got[b.Addr()][a.Addr()] {
				t.Errorf("packet %s -> %s not delivered", a.Addr(), b.Addr())
			}
		}
	}
}

func TestExactModeDeadLetters(t *testing.T) {
	r := buildRing(t, 4, 8)
	ghost := AddrFromString("no-such-node")
	delivered := false
	for _, n := range r.nodes {
		n.RegisterProto("test", func(src Addr, d AppData) { delivered = true })
	}
	r.nodes[0].SendTo(ghost, DeliverExact, AppData{Proto: "test", Size: 10})
	r.s.RunFor(5 * sim.Second)
	if delivered {
		t.Fatal("exact-mode packet delivered to non-owner")
	}
}

func TestNearestModeDeliversToClosest(t *testing.T) {
	r := buildRing(t, 5, 8)
	ghost := AddrFromString("some-ghost-address")
	var deliveredTo Addr
	for _, n := range r.nodes {
		n := n
		n.RegisterProto("test", func(src Addr, d AppData) { deliveredTo = n.Addr() })
	}
	r.nodes[0].SendTo(ghost, DeliverNearest, AppData{Proto: "test", Size: 10})
	r.s.RunFor(5 * sim.Second)
	if deliveredTo.IsZero() {
		t.Fatal("nearest-mode packet lost")
	}
	// The recipient must be the live node nearest to ghost.
	var want Addr
	var bestDist Addr
	for i, n := range r.nodes {
		d := n.Addr().RingDist(ghost)
		if i == 0 || d.Cmp(bestDist) < 0 {
			want, bestDist = n.Addr(), d
		}
	}
	if deliveredTo != want {
		t.Fatalf("delivered to %s, want nearest %s", deliveredTo, want)
	}
}

func TestFarConnectionsForm(t *testing.T) {
	r := buildRing(t, 6, 24)
	r.s.RunFor(120 * sim.Second)
	total := 0
	for _, n := range r.nodes {
		total += len(n.connsOfType(StructuredFar))
	}
	if total < len(r.nodes) {
		t.Fatalf("far connections too sparse: %d across %d nodes", total, len(r.nodes))
	}
}

func TestFarConnectionsReduceHops(t *testing.T) {
	cfgNoFar := FastTestConfig()
	cfgNoFar.FarCount = -1 // fillDefaults only patches zero; -1 disables
	r1 := newOverlayRig(7)
	for i := 0; i < 24; i++ {
		r1.addPublic(t, fmt.Sprintf("n%03d", i), cfgNoFar)
		r1.s.RunFor(2 * sim.Second)
	}
	r1.s.RunFor(120 * sim.Second)

	r2 := buildRing(t, 7, 24)
	r2.s.RunFor(60 * sim.Second)

	hops := func(r *overlayRig) float64 {
		var sent, forwarded int64
		for _, n := range r.nodes {
			n.Stats.Inc("route.forwarded", 0)
		}
		before := make([]int64, len(r.nodes))
		for i, n := range r.nodes {
			before[i] = n.Stats.Get("route.forwarded")
		}
		for _, a := range r.nodes {
			for _, b := range r.nodes {
				if a != b {
					a.SendTo(b.Addr(), DeliverExact, AppData{Proto: "x", Size: 10})
					sent++
				}
			}
		}
		r.s.RunFor(30 * sim.Second)
		for i, n := range r.nodes {
			forwarded += n.Stats.Get("route.forwarded") - before[i]
		}
		return float64(forwarded) / float64(sent)
	}
	h1, h2 := hops(r1), hops(r2)
	if h2 >= h1 {
		t.Fatalf("far connections did not reduce hops: without=%.2f with=%.2f", h1, h2)
	}
}

func TestShortcutFormsUnderTraffic(t *testing.T) {
	r := buildRing(t, 8, 16)
	a, b := r.nodes[2], r.nodes[11]
	for _, n := range []*Node{a, b} {
		n.RegisterProto("ipop", func(src Addr, d AppData) {})
	}
	if c := a.ConnectionTo(b.Addr()); c != nil && c.structured() {
		t.Skip("nodes already adjacent; pick different pair")
	}
	// 1 packet/second of traffic, as in the paper's ICMP experiment.
	tk := r.s.Tick(sim.Second, 0, func() {
		a.SendTo(b.Addr(), DeliverExact, AppData{Proto: "ipop", Size: 100})
	})
	defer tk.Stop()
	r.s.RunFor(120 * sim.Second)
	c := a.ConnectionTo(b.Addr())
	if c == nil || !c.Has(Shortcut) {
		t.Fatalf("shortcut did not form; score=%v stats=%v", a.sco.Score(b.Addr()), a.Stats.String())
	}
}

func TestShortcutIdleDrop(t *testing.T) {
	cfg := FastTestConfig()
	cfg.Shortcut = &ShortcutConfig{
		ServiceRate: 0.5, Threshold: 5, Tick: sim.Second,
		IdleDrop: 20 * sim.Second, Retry: 10 * sim.Second,
	}
	r := newOverlayRig(9)
	for i := 0; i < 12; i++ {
		r.addPublic(t, fmt.Sprintf("n%03d", i), cfg)
		r.s.RunFor(2 * sim.Second)
	}
	r.s.RunFor(60 * sim.Second)
	a, b := r.nodes[1], r.nodes[8]
	b.RegisterProto("ipop", func(src Addr, d AppData) {})
	tk := r.s.Tick(sim.Second, 0, func() {
		a.SendTo(b.Addr(), DeliverExact, AppData{Proto: "ipop", Size: 100})
	})
	r.s.RunFor(60 * sim.Second)
	c := a.ConnectionTo(b.Addr())
	if c == nil || !c.Has(Shortcut) {
		t.Fatal("shortcut did not form")
	}
	tk.Stop()
	r.s.RunFor(120 * sim.Second)
	if c := a.ConnectionTo(b.Addr()); c != nil && c.Has(Shortcut) {
		t.Fatal("idle shortcut not dropped")
	}
	// Whichever side's overlord ticks first tears the shortcut down.
	if a.Stats.Get("shortcut.idle_dropped")+b.Stats.Get("shortcut.idle_dropped") == 0 {
		t.Fatal("idle drop not counted on either side")
	}
}

func TestShortcutsDisabled(t *testing.T) {
	cfg := FastTestConfig()
	cfg.Shortcut = nil
	r := newOverlayRig(10)
	for i := 0; i < 12; i++ {
		r.addPublic(t, fmt.Sprintf("n%03d", i), cfg)
		r.s.RunFor(2 * sim.Second)
	}
	r.s.RunFor(30 * sim.Second)
	a, b := r.nodes[1], r.nodes[8]
	b.RegisterProto("ipop", func(src Addr, d AppData) {})
	r.s.Tick(sim.Second, 0, func() {
		a.SendTo(b.Addr(), DeliverExact, AppData{Proto: "ipop", Size: 100})
	})
	r.s.RunFor(120 * sim.Second)
	if c := a.ConnectionTo(b.Addr()); c != nil && c.Has(Shortcut) {
		t.Fatal("shortcut formed with overlord disabled")
	}
}

func TestGracefulLeaveRepairsRing(t *testing.T) {
	r := buildRing(t, 11, 10)
	victim := r.nodes[4]
	victim.Leave()
	r.s.RunFor(60 * sim.Second)
	assertRingConsistent(t, r)
}

func TestCrashDetectedByPings(t *testing.T) {
	r := buildRing(t, 12, 10)
	victim := r.nodes[4]
	peers := victim.Connections()
	if len(peers) == 0 {
		t.Fatal("victim had no connections")
	}
	victim.Stop() // ungraceful: no close messages
	r.s.RunFor(5 * sim.Minute)
	for _, n := range r.nodes {
		if n == victim {
			continue
		}
		if c := n.ConnectionTo(victim.Addr()); c != nil {
			t.Fatalf("node %s still holds connection to crashed %s", n.Addr(), victim.Addr())
		}
	}
	assertRingConsistent(t, r)
}

func TestRestartSameAddressRejoins(t *testing.T) {
	r := buildRing(t, 13, 10)
	victim := r.nodes[4]
	addr := victim.Addr()
	victim.Stop()
	r.s.RunFor(sim.Minute)

	// Restart on a new host (as after VM migration) with the same
	// overlay address.
	h := r.net.AddHost("migrated", r.site, r.net.Root(), phys.HostConfig{})
	reborn := NewNode(h, addr, FastTestConfig())
	if err := reborn.Start([]URI{r.nodes[0].BootstrapURI()}); err != nil {
		t.Fatal(err)
	}
	r.nodes[4] = reborn
	r.s.RunFor(5 * sim.Minute)
	if !reborn.IsRoutable() {
		t.Fatal("restarted node never became routable")
	}
	assertRingConsistent(t, r)
}

func TestJoinThroughNAT(t *testing.T) {
	r := buildRing(t, 14, 6)
	nat := natsim.NewNAT("homenat", natsim.Config{Type: natsim.PortRestricted}, r.net.Root().NextIP(), r.s.Now)
	realm := r.net.AddRealm("home", r.net.Root(), nat, phys.MustParseIP("192.168.0.2"))
	h := r.net.AddHost("natted", r.site, realm, phys.HostConfig{})
	n := NewNode(h, AddrFromString("natted-node"), FastTestConfig())
	if err := n.Start([]URI{r.nodes[0].BootstrapURI()}); err != nil {
		t.Fatal(err)
	}
	r.nodes = append(r.nodes, n)
	r.s.RunFor(2 * sim.Minute)
	if !n.IsRoutable() {
		t.Fatal("NATed node never became routable")
	}
	// It must have learned its NAT-assigned public URI.
	uris := n.URIs()
	if len(uris) < 2 {
		t.Fatalf("no learned URIs: %v", uris)
	}
	if uris[0].EP.IP != nat.PublicIP() {
		t.Fatalf("first URI %v is not the NAT public endpoint", uris[0])
	}
	// And traffic reaches it.
	got := false
	n.RegisterProto("t", func(src Addr, d AppData) { got = true })
	r.nodes[2].SendTo(n.Addr(), DeliverExact, AppData{Proto: "t", Size: 10})
	r.s.RunFor(10 * sim.Second)
	if !got {
		t.Fatal("packet to NATed node lost")
	}
}

func TestShortcutAcrossTwoNATs(t *testing.T) {
	r := buildRing(t, 15, 8)
	mk := func(name, base string) *Node {
		nat := natsim.NewNAT(name, natsim.Config{Type: natsim.PortRestricted}, r.net.Root().NextIP(), r.s.Now)
		realm := r.net.AddRealm(name, r.net.Root(), nat, phys.MustParseIP(base))
		h := r.net.AddHost(name+"-host", r.site, realm, phys.HostConfig{})
		cfg := FastTestConfig()
		cfg.FarCount = 2 // stay sparse so the pair is not already linked
		n := NewNode(h, AddrFromString(name), cfg)
		if err := n.Start([]URI{r.nodes[0].BootstrapURI()}); err != nil {
			t.Fatal(err)
		}
		r.nodes = append(r.nodes, n)
		return n
	}
	a := mk("nat-a", "10.0.0.2")
	b := mk("nat-b", "10.1.0.2")
	r.s.RunFor(2 * sim.Minute)
	if !a.IsRoutable() || !b.IsRoutable() {
		t.Fatal("NATed nodes not routable")
	}
	b.RegisterProto("ipop", func(src Addr, d AppData) {})
	a.RegisterProto("ipop", func(src Addr, d AppData) {})
	r.s.Tick(sim.Second, 0, func() {
		a.SendTo(b.Addr(), DeliverExact, AppData{Proto: "ipop", Size: 100})
	})
	r.s.RunFor(4 * sim.Minute)
	c := a.ConnectionTo(b.Addr())
	if c == nil || !c.Has(Shortcut) {
		t.Fatalf("hole-punched shortcut did not form (conn=%v)", c)
	}
	// The shortcut must use public (hole-punched) endpoints, not
	// unroutable private ones.
	if c.EP.IP == b.Host().IP() {
		t.Fatalf("shortcut endpoint %v is the private address", c.EP)
	}
}

func TestLinkRaceSingleWinner(t *testing.T) {
	// Force many simultaneous CTM-driven links; the tie-break must never
	// produce duplicate or missing connections.
	r := buildRing(t, 16, 12)
	for i := 0; i < len(r.nodes); i++ {
		for j := i + 1; j < len(r.nodes); j++ {
			a, b := r.nodes[i], r.nodes[j]
			a.sendCTM(b.Addr(), Shortcut, DeliverExact, Zero)
			b.sendCTM(a.Addr(), Shortcut, DeliverExact, Zero)
		}
	}
	r.s.RunFor(2 * sim.Minute)
	for i := 0; i < len(r.nodes); i++ {
		for j := i + 1; j < len(r.nodes); j++ {
			a, b := r.nodes[i], r.nodes[j]
			ca, cb := a.ConnectionTo(b.Addr()), b.ConnectionTo(a.Addr())
			if ca == nil || cb == nil {
				t.Fatalf("race left %s<->%s unconnected", a.Addr(), b.Addr())
			}
		}
	}
}

func TestURITrialOrderPrivateFirst(t *testing.T) {
	r := newOverlayRig(17)
	cfg := FastTestConfig()
	cfg.PrivateFirst = true
	n := r.addPublic(t, "pf", cfg)
	n.learnURI(UDPURI(phys.Endpoint{IP: phys.MustParseIP("9.9.9.9"), Port: 7}))
	uris := n.URIs()
	if uris[0] != n.private {
		t.Fatalf("private not first: %v", uris)
	}
	cfg2 := FastTestConfig()
	n2 := NewNode(r.net.AddHost("h2", r.site, r.net.Root(), phys.HostConfig{}), AddrFromString("pub-first"), cfg2)
	if err := n2.Start(nil); err != nil {
		t.Fatal(err)
	}
	n2.learnURI(UDPURI(phys.Endpoint{IP: phys.MustParseIP("9.9.9.8"), Port: 7}))
	uris2 := n2.URIs()
	// Order: learned public URIs, private, then the alternate-transport
	// variant of the private endpoint.
	if uris2[len(uris2)-2] != n2.private {
		t.Fatalf("private not after learned URIs: %v", uris2)
	}
	if alt := uris2[len(uris2)-1]; alt.Transport != "tcp" || alt.EP != n2.private.EP {
		t.Fatalf("alternate-transport variant not last: %v", uris2)
	}
}

func TestStoppedNodeIgnoresTraffic(t *testing.T) {
	r := buildRing(t, 18, 4)
	n := r.nodes[3]
	n.Stop()
	n.Stop() // idempotent
	if n.Up() {
		t.Fatal("Up after Stop")
	}
	n.SendTo(r.nodes[0].Addr(), DeliverExact, AppData{Proto: "x", Size: 1})
	r.s.RunFor(sim.Second)
	if n.IsRoutable() {
		t.Fatal("stopped node routable")
	}
}

func TestMaxHopsBounds(t *testing.T) {
	cfg := FastTestConfig()
	cfg.MaxHops = 1
	r := newOverlayRig(19)
	for i := 0; i < 10; i++ {
		r.addPublic(t, fmt.Sprintf("n%03d", i), cfg)
		r.s.RunFor(2 * sim.Second)
	}
	r.s.RunFor(30 * sim.Second)
	exceeded := int64(0)
	for _, a := range r.nodes {
		for _, b := range r.nodes {
			if a != b {
				a.SendTo(b.Addr(), DeliverExact, AppData{Proto: "x", Size: 1})
			}
		}
	}
	r.s.RunFor(10 * sim.Second)
	for _, n := range r.nodes {
		exceeded += n.Stats.Get("route.hops_exceeded")
	}
	if exceeded == 0 {
		t.Fatal("MaxHops=1 never tripped on a 10-node ring")
	}
}

func TestConnectionStringAndTypes(t *testing.T) {
	r := buildRing(t, 20, 3)
	conns := r.nodes[0].Connections()
	if len(conns) == 0 {
		t.Fatal("no connections")
	}
	c := conns[0]
	if c.String() == "" || len(c.Types()) == 0 {
		t.Fatal("diagnostics empty")
	}
}

func TestDefaultConfigMatchesPaperTimings(t *testing.T) {
	c := DefaultConfig()
	// Per-URI giveup time: LinkResend * (2^(LinkRetries+1) - 1).
	total := sim.Duration(0)
	wait := c.LinkResend
	for i := 0; i <= c.LinkRetries; i++ {
		total += wait
		wait = sim.Duration(float64(wait) * c.LinkBackoff)
	}
	if total < 120*sim.Second || total > 200*sim.Second {
		t.Fatalf("per-URI giveup %v, paper reports ~150s", total)
	}
}
