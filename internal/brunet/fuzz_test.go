package brunet

import "testing"

// FuzzRingMath exercises the 160-bit modular arithmetic invariants with
// arbitrary byte patterns.
func FuzzRingMath(f *testing.F) {
	f.Add(make([]byte, 40), false)
	f.Add([]byte("0123456789012345678901234567890123456789"), true)
	f.Fuzz(func(t *testing.T, raw []byte, flip bool) {
		if len(raw) < 2*AddrBytes {
			return
		}
		var a, b Addr
		copy(a[:], raw[:AddrBytes])
		copy(b[:], raw[AddrBytes:2*AddrBytes])
		if flip {
			a, b = b, a
		}
		if subModRing(addModRing(a, b), b) != a {
			t.Fatal("add/sub not inverse")
		}
		if a.RingDist(b) != b.RingDist(a) {
			t.Fatal("RingDist asymmetric")
		}
		if a != b {
			cw := Between(a.Offset(AddrFromFloat(0)), a, b) // a itself: never between
			if cw {
				t.Fatal("endpoint reported between")
			}
		}
		_ = a.Fmt()
		_ = a.Float64()
	})
}
