package brunet

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"wow/internal/natsim"
	"wow/internal/phys"
	"wow/internal/sim"
)

// shardedNATRig builds a small overlay on the 2-shard parallel engine:
// public routers on a shard-0 site, each symmetric-NATed node behind its
// own realm pinned to one of two sites on opposite shards. It is the
// sharded counterpart of buildSymmetricRing — same protocol stack, but
// every NAT's translation state lives on its realm's owning shard.
type shardedNATRig struct {
	eng   *sim.Sharded
	net   *phys.Network
	nodes []*Node
}

func buildShardedSymmetricRing(t *testing.T, seed int64, workers, routers, symmetric int) *shardedNATRig {
	t.Helper()
	eng := sim.NewSharded(seed, 2, workers)
	t.Cleanup(eng.Close)
	net := phys.NewShardedNetwork(eng, phys.UniformLatency(
		phys.PathModel{OneWay: sim.Millisecond},
		phys.PathModel{OneWay: 15 * sim.Millisecond},
	))
	pub := net.AddSite("pub")   // shard 0
	lanA := net.AddSite("lanA") // shard 1
	lanB := net.AddSite("lanB") // shard 0
	floor, ok := net.CrossShardFloor()
	if !ok {
		t.Fatal("no cross-shard site pair")
	}
	eng.SetLookahead(floor)
	r := &shardedNATRig{eng: eng, net: net}

	// Boot URIs are resolved at event-fire time: a node's bootstrap URI is
	// not known until it has started, which happens inside a prior event.
	var at sim.Time
	start := func(n *Node, site *phys.Site, boot func() []URI) {
		eng.Shard(site.Shard()).At(at, func() {
			if err := n.Start(boot()); err != nil {
				panic(fmt.Sprintf("start %s: %v", n.Addr(), err))
			}
		})
		at = at.Add(2 * sim.Second)
	}
	bootOffFirst := func() []URI { return []URI{r.nodes[0].BootstrapURI()} }
	for i := 0; i < routers; i++ {
		name := fmt.Sprintf("router%02d", i)
		h := net.AddHost(name, pub, net.Root(), phys.HostConfig{})
		n := NewNode(h, AddrFromString(name), FastTestConfig())
		boot := bootOffFirst
		if len(r.nodes) == 0 {
			boot = func() []URI { return nil }
		}
		start(n, pub, boot)
		r.nodes = append(r.nodes, n)
	}
	for i := 0; i < symmetric; i++ {
		name := fmt.Sprintf("sym%02d", i)
		site := lanA
		if i%2 == 1 {
			site = lanB
		}
		nat := natsim.NewNAT(name+"-nat", natsim.Config{Type: natsim.Symmetric},
			net.Root().NextIP(), eng.Shard(site.Shard()).Now)
		realm := net.AddRealm(name, net.Root(), nat, phys.MustParseIP(fmt.Sprintf("10.%d.0.2", i)))
		h := net.AddHost(name+"-host", site, realm, phys.HostConfig{})
		n := NewNode(h, AddrFromString(name), FastTestConfig())
		start(n, site, bootOffFirst)
		r.nodes = append(r.nodes, n)
	}
	eng.RunUntil(at.Add(4 * sim.Minute))
	return r
}

// signature captures the converged topology as text: every node's
// connection table with edge types, plus the tunnel counters. Two runs
// with equal signatures built the same overlay.
func (r *shardedNATRig) signature() string {
	var b strings.Builder
	nodes := append([]*Node(nil), r.nodes...)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Addr().Less(nodes[j].Addr()) })
	for _, n := range nodes {
		fmt.Fprintf(&b, "%v:", n.Addr())
		conns := n.Connections()
		sort.Slice(conns, func(i, j int) bool { return conns[i].Peer.Less(conns[j].Peer) })
		for _, c := range conns {
			tag := ""
			if c.Tunneled() {
				tag = "~"
			}
			fmt.Fprintf(&b, " %s%v", tag, c.Peer)
		}
		fmt.Fprintf(&b, " est=%d probes=%d\n",
			n.Stats.Get("tunnel.established"), n.Stats.Get("tunnel.upgrade_probes"))
	}
	return b.String()
}

// TestShardedSymmetricRingUsesTunnels: the tunnel subsystem works intact on
// the parallel engine — a ring with symmetric-symmetric adjacencies closes
// its near links over relay-backed tunnel edges, everyone becomes routable,
// and application traffic crosses the tunneled edges, with the NATs' realms
// split across both shards.
func TestShardedSymmetricRingUsesTunnels(t *testing.T) {
	r := buildShardedSymmetricRing(t, 21, 1, 3, 8)
	for _, n := range r.nodes {
		if !n.IsRoutable() {
			t.Errorf("%v not routable", n.Addr())
		}
	}
	ring := append([]*Node(nil), r.nodes...)
	sort.Slice(ring, func(i, j int) bool { return ring[i].Addr().Less(ring[j].Addr()) })
	tunneled := 0
	for i, n := range ring {
		succ := ring[(i+1)%len(ring)]
		c := n.ConnectionTo(succ.Addr())
		if c == nil || !c.Has(StructuredNear) {
			t.Errorf("%v missing near link to %v", n.Addr(), succ.Addr())
			continue
		}
		if c.Tunneled() {
			tunneled++
		}
	}
	if tunneled == 0 {
		t.Error("no tunneled near links; symmetric pairs should have needed tunnels")
	}

	// App traffic across the converged ring: every node sends to its ring
	// successor; symmetric-symmetric hops must transit tunnel edges.
	got := map[Addr]int{}
	for _, n := range ring {
		n.RegisterProto("t", func(src Addr, d AppData) { got[src]++ })
	}
	base := r.eng.Now()
	for i, n := range ring {
		n := n
		dst := ring[(i+1)%len(ring)].Addr()
		r.eng.Shard(n.Host().Shard()).At(base.Add(sim.Duration(i)*10*sim.Millisecond), func() {
			n.SendTo(dst, DeliverExact, AppData{Proto: "t", Size: 32})
		})
	}
	r.eng.RunFor(5 * sim.Second)
	delivered := 0
	for _, c := range got {
		delivered += c
	}
	if delivered != len(ring) {
		t.Errorf("delivered %d/%d successor probes", delivered, len(ring))
	}
}

// TestShardedTunnelWorkerInvariance: the converged overlay — connection
// tables, edge types, tunnel counters — is identical under 1 and 4 workers.
func TestShardedTunnelWorkerInvariance(t *testing.T) {
	a := buildShardedSymmetricRing(t, 21, 1, 3, 8)
	b := buildShardedSymmetricRing(t, 21, 4, 3, 8)
	sa, sb := a.signature(), b.signature()
	if sa != sb {
		t.Errorf("topology differs across worker counts:\n--- 1 worker ---\n%s--- 4 workers ---\n%s", sa, sb)
	}
	if ae, be := a.eng.Processed(), b.eng.Processed(); ae != be {
		t.Errorf("event totals differ: %d vs %d", ae, be)
	}
}
