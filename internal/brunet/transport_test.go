package brunet

import (
	"fmt"
	"testing"

	"wow/internal/natsim"
	"wow/internal/phys"
	"wow/internal/sim"
)

// tcpBootURI derives a TCP-transport bootstrap URI from a running node
// (same port number, TCP wire namespace).
func tcpBootURI(n *Node) URI {
	return URI{Transport: "tcp", EP: n.BootstrapURI().EP}
}

func TestRingOverTCPTransport(t *testing.T) {
	r := newOverlayRig(30)
	cfg := FastTestConfig()
	cfg.Transport = "tcp"
	for i := 0; i < 10; i++ {
		h := r.net.AddHost(fmt.Sprintf("t%02d", i), r.site, r.net.Root(), phys.HostConfig{})
		n := NewNode(h, AddrFromString(fmt.Sprintf("t%02d", i)), cfg)
		var boot []URI
		if len(r.nodes) > 0 {
			boot = []URI{tcpBootURI(r.nodes[0])}
		}
		if err := n.Start(boot); err != nil {
			t.Fatal(err)
		}
		r.nodes = append(r.nodes, n)
		r.s.RunFor(2 * sim.Second)
	}
	r.s.RunFor(60 * sim.Second)
	for _, n := range r.nodes {
		if !n.IsRoutable() {
			t.Fatalf("node %s not routable over TCP transport", n.Addr())
		}
	}
	// Every structured connection should ride a stream.
	tcpConns, udpConns := 0, 0
	for _, n := range r.nodes {
		for _, c := range n.Connections() {
			if c.Transport() == "tcp" {
				tcpConns++
			} else {
				udpConns++
			}
		}
	}
	if tcpConns == 0 {
		t.Fatal("no TCP-transport connections formed")
	}
	if udpConns != 0 {
		t.Fatalf("%d UDP connections in an all-TCP ring", udpConns)
	}
	assertRingConsistent(t, r)
}

func TestAllPairsRoutingOverTCP(t *testing.T) {
	r := newOverlayRig(31)
	cfg := FastTestConfig()
	cfg.Transport = "tcp"
	for i := 0; i < 8; i++ {
		h := r.net.AddHost(fmt.Sprintf("t%02d", i), r.site, r.net.Root(), phys.HostConfig{})
		n := NewNode(h, AddrFromString(fmt.Sprintf("tcp-n%02d", i)), cfg)
		var boot []URI
		if len(r.nodes) > 0 {
			boot = []URI{tcpBootURI(r.nodes[0])}
		}
		if err := n.Start(boot); err != nil {
			t.Fatal(err)
		}
		r.nodes = append(r.nodes, n)
		r.s.RunFor(2 * sim.Second)
	}
	r.s.RunFor(60 * sim.Second)
	got := map[Addr]int{}
	for _, n := range r.nodes {
		n := n
		n.RegisterProto("t", func(src Addr, d AppData) { got[n.Addr()]++ })
	}
	for _, a := range r.nodes {
		for _, b := range r.nodes {
			if a != b {
				a.SendTo(b.Addr(), DeliverExact, AppData{Proto: "t", Size: 100})
			}
		}
	}
	r.s.RunFor(15 * sim.Second)
	for _, n := range r.nodes {
		if got[n.Addr()] != len(r.nodes)-1 {
			t.Fatalf("node %s received %d of %d", n.Addr(), got[n.Addr()], len(r.nodes)-1)
		}
	}
}

func TestMixedTransportRing(t *testing.T) {
	// UDP-advertising and TCP-advertising nodes in one ring: every pair
	// can link because all nodes accept both transports.
	r := buildRing(t, 32, 6) // six UDP nodes
	cfg := FastTestConfig()
	cfg.Transport = "tcp"
	for i := 0; i < 6; i++ {
		h := r.net.AddHost(fmt.Sprintf("mix%02d", i), r.site, r.net.Root(), phys.HostConfig{})
		n := NewNode(h, AddrFromString(fmt.Sprintf("mix%02d", i)), cfg)
		if err := n.Start([]URI{tcpBootURI(r.nodes[0])}); err != nil {
			t.Fatal(err)
		}
		r.nodes = append(r.nodes, n)
		r.s.RunFor(2 * sim.Second)
	}
	r.s.RunFor(60 * sim.Second)
	for _, n := range r.nodes {
		if !n.IsRoutable() {
			t.Fatalf("node %s not routable in mixed ring", n.Addr())
		}
	}
	assertRingConsistent(t, r)
}

func TestTCPTransportThroughUDPBlockingFirewall(t *testing.T) {
	// A site whose firewall drops ALL UDP: the paper's URI abstraction
	// exists precisely so links can fall back to other transports.
	r := buildRing(t, 33, 8)
	fw := natsim.NewFirewall("no-udp-fw", 0, r.s.Now)
	fw.BlockProto(phys.WireUDP)
	realm := r.net.AddRealm("udp-hostile", r.net.Root(), fw, phys.MustParseIP("140.1.0.10"))
	h := r.net.AddHost("hostile-host", r.site, realm, phys.HostConfig{})

	cfg := FastTestConfig()
	cfg.Transport = "tcp"
	n := NewNode(h, AddrFromString("udp-blocked-node"), cfg)
	if err := n.Start([]URI{tcpBootURI(r.nodes[0])}); err != nil {
		t.Fatal(err)
	}
	r.nodes = append(r.nodes, n)
	r.s.RunFor(2 * sim.Minute)
	if !n.IsRoutable() {
		t.Fatalf("TCP-transport node behind UDP-blocking firewall never joined (conns=%d, drops=%v)",
			len(n.Connections()), fw.Drops)
	}
	// And traffic flows both ways.
	ok := false
	n.RegisterProto("t", func(src Addr, d AppData) { ok = true })
	r.nodes[2].SendTo(n.Addr(), DeliverExact, AppData{Proto: "t", Size: 64})
	r.s.RunFor(10 * sim.Second)
	if !ok {
		t.Fatal("packet to firewalled TCP node lost")
	}
	if fw.Drops["proto"] == 0 {
		t.Log("note: no UDP was even attempted toward the blocked site")
	}
}

func TestStreamDeathDropsConnection(t *testing.T) {
	r := newOverlayRig(34)
	cfg := FastTestConfig()
	cfg.Transport = "tcp"
	var nodes []*Node
	for i := 0; i < 4; i++ {
		h := r.net.AddHost(fmt.Sprintf("s%02d", i), r.site, r.net.Root(), phys.HostConfig{})
		n := NewNode(h, AddrFromString(fmt.Sprintf("s%02d", i)), cfg)
		var boot []URI
		if len(nodes) > 0 {
			boot = []URI{tcpBootURI(nodes[0])}
		}
		if err := n.Start(boot); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
		r.nodes = append(r.nodes, n)
		r.s.RunFor(2 * sim.Second)
	}
	r.s.RunFor(30 * sim.Second)
	victim := nodes[2]
	victim.Host().SetUp(false) // sever the host: streams die
	r.s.RunFor(5 * sim.Minute)
	for _, n := range nodes {
		if n == victim {
			continue
		}
		if c := n.ConnectionTo(victim.Addr()); c != nil {
			t.Fatalf("node %s still connected to severed peer", n.Addr())
		}
	}
}
