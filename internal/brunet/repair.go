package brunet

import "wow/internal/sim"

// repairOverlord re-establishes structured connections lost involuntarily
// (ping timeout, stream death) — the connection-table repair that re-merges
// a healed partition without waiting for bootstrap retries or gossip
// rounds. Each lost peer is retried against its last advertised URIs with
// jittered exponential backoff, RelinkBase·2^attempt + U[0, RelinkBase),
// for up to RelinkRetries attempts; the jitter desynchronizes the two
// partition sides so a heal does not trigger a reconnection stampede.
// Voluntary drops (leave, peer_close, trim, idle) are never re-linked.
//
// The overlord is event-driven rather than ticker-based so that a healthy
// node costs nothing: no periodic pass, and no random draws that would
// perturb the deterministic event sequence of fault-free runs.
type repairOverlord struct {
	node    *Node
	pending map[Addr]*relinkState
}

// relinkState is one peer awaiting re-link.
type relinkState struct {
	uris    []URI
	ctype   ConnType
	attempt int
	ev      sim.Timer
}

// relinkReasons are the involuntary drop reasons eligible for repair.
var relinkReasons = map[string]bool{"timeout": true, "stream": true}

func newRepairOverlord(n *Node) *repairOverlord {
	return &repairOverlord{node: n, pending: make(map[Addr]*relinkState)}
}

// enabled reports whether repair is configured on (RelinkRetries = UseZero
// turns it off).
func (o *repairOverlord) enabled() bool {
	return o.node.cfg.RelinkRetries > 0 && o.node.cfg.RelinkBase > 0
}

func (o *repairOverlord) start() {
	if !o.enabled() {
		return
	}
	n := o.node
	n.OnConnection(o.onConnection)
	n.OnDisconnection(o.onDisconnection)
}

func (o *repairOverlord) onConnection(c *Connection) {
	if o.node.repair != o {
		return // stale callback from before a restart
	}
	if st, ok := o.pending[c.Peer]; ok {
		st.ev.Cancel()
		delete(o.pending, c.Peer)
		o.node.Stats.Inc("relink.success", 1)
	}
}

func (o *repairOverlord) onDisconnection(c *Connection) {
	n := o.node
	if n.repair != o {
		return // stale callback from before a restart
	}
	if !relinkReasons[c.dropReason] || !c.structured() || len(c.URIs) == 0 {
		return
	}
	// Re-link in the connection's most load-bearing role; the overlords
	// re-derive the rest once the link is back.
	t := Shortcut
	if c.Has(StructuredFar) {
		t = StructuredFar
	}
	if c.Has(StructuredNear) {
		t = StructuredNear
	}
	if st, ok := o.pending[c.Peer]; ok {
		st.ev.Cancel()
	}
	st := &relinkState{uris: c.URIs, ctype: t}
	o.pending[c.Peer] = st
	o.schedule(c.Peer, st)
}

// schedule arms the next re-link attempt with jittered exponential backoff.
func (o *repairOverlord) schedule(peer Addr, st *relinkState) {
	n := o.node
	shift := uint(st.attempt)
	if shift > 6 {
		shift = 6
	}
	d := n.cfg.RelinkBase<<shift +
		sim.Duration(n.rand().Int63n(int64(n.cfg.RelinkBase)))
	st.ev = n.sim.After(d, func() { o.fire(peer, st) })
}

// fire runs one due re-link attempt.
func (o *repairOverlord) fire(peer Addr, st *relinkState) {
	n := o.node
	if !n.up || n.repair != o || o.pending[peer] != st {
		return
	}
	if _, ok := n.conns[peer]; ok {
		delete(o.pending, peer)
		n.Stats.Inc("relink.success", 1)
		return
	}
	if st.attempt >= n.cfg.RelinkRetries {
		delete(o.pending, peer)
		n.Stats.Inc("relink.giveup", 1)
		return
	}
	st.attempt++
	n.Stats.Inc("relink.attempts", 1)
	n.startLinker(peer, st.uris, st.ctype)
	o.schedule(peer, st)
}
