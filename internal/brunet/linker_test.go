package brunet

import (
	"testing"

	"wow/internal/phys"
	"wow/internal/sim"
)

// TestLinkerURIExhaustionGivesUp drives a linker through a target URI list
// where nobody answers: every URI must be exhausted on the §IV-D backoff
// schedule and the attempt abandoned with link.giveup.
func TestLinkerURIExhaustionGivesUp(t *testing.T) {
	r := buildRing(t, 21, 4)
	n := r.nodes[0]

	// Two endpoints on a live host where nothing listens.
	dead := r.net.AddHost("dead", r.site, r.net.Root(), phys.HostConfig{})
	ghost := AddrFromString("ghost")
	uris := []URI{
		{Transport: "udp", EP: phys.Endpoint{IP: dead.IP(), Port: 4001}},
		{Transport: "udp", EP: phys.Endpoint{IP: dead.IP(), Port: 4002}},
	}
	n.startLinker(ghost, uris, StructuredNear)
	if _, active := n.linkers[ghost]; !active {
		t.Fatal("linker did not register")
	}

	// FastTestConfig: LinkResend 200ms ×2 backoff, 3 retries → one URI
	// burns 0.2+0.4+0.8+1.6 = 3 s; two URIs well under a minute.
	r.s.RunFor(sim.Minute)
	if got := n.Stats.Get("link.uri_exhausted"); got != 2 {
		t.Errorf("link.uri_exhausted = %d, want 2 (one per dead URI)", got)
	}
	// Failure taxonomy: silent endpoints are timeouts, not rejects.
	if got := n.Stats.Get("link.uri_exhausted.timeout"); got != 2 {
		t.Errorf("link.uri_exhausted.timeout = %d, want 2", got)
	}
	if got := n.Stats.Get("link.uri_exhausted.reject"); got != 0 {
		t.Errorf("link.uri_exhausted.reject = %d, want 0", got)
	}
	if got := n.Stats.Get("link.giveup"); got != 1 {
		t.Errorf("link.giveup = %d, want 1", got)
	}
	if got := n.Stats.Get("link.giveup.timeout"); got != 1 {
		t.Errorf("link.giveup.timeout = %d, want 1", got)
	}
	if _, active := n.linkers[ghost]; active {
		t.Error("linker still registered after giving up")
	}
	if n.ConnectionTo(ghost) != nil {
		t.Error("connection materialized out of nothing")
	}
}

// TestLinkerResendBackoffProgression pins the resend schedule: requests go
// out at LinkResend·LinkBackoff^i spacing (200ms, 400ms, 800ms, … under
// FastTestConfig), not on a fixed interval.
func TestLinkerResendBackoffProgression(t *testing.T) {
	r := buildRing(t, 22, 4)
	n := r.nodes[0]
	dead := r.net.AddHost("dead", r.site, r.net.Root(), phys.HostConfig{})
	ghost := AddrFromString("ghost")
	base := n.Stats.Get("link.requests")

	n.startLinker(ghost, []URI{{Transport: "udp", EP: phys.Endpoint{IP: dead.IP(), Port: 4001}}}, StructuredNear)
	sent := func() int64 { return n.Stats.Get("link.requests") - base }

	// Resends fire at t = 0.2, 0.6, 1.4 s after the initial send.
	for _, step := range []struct {
		runFor sim.Duration
		want   int64
	}{
		{100 * sim.Millisecond, 1}, // t=0.1s: initial send only
		{200 * sim.Millisecond, 2}, // t=0.3s: first resend at 0.2s
		{200 * sim.Millisecond, 2}, // t=0.5s: second resend not due until 0.6s
		{200 * sim.Millisecond, 3}, // t=0.7s
		{800 * sim.Millisecond, 4}, // t=1.5s: third resend at 1.4s
	} {
		r.s.RunFor(step.runFor)
		if got := sent(); got != step.want {
			t.Fatalf("at t=%s: %d requests sent, want %d", r.s.Now(), got, step.want)
		}
	}
}

// TestBusyRaceRandomizedRestart exercises the §IV-B2 busy path: a linker
// told "busy" yields, then restarts with randomized exponential backoff —
// and must eventually establish the link itself when the peer's symmetric
// attempt never materializes.
func TestBusyRaceRandomizedRestart(t *testing.T) {
	r := buildRing(t, 23, 6)
	a, b := r.nodes[0], r.nodes[1]
	if c := a.ConnectionTo(b.Addr()); c != nil && c.Has(StructuredFar) {
		t.Skip("seed formed the target link already")
	}

	a.startLinker(b.Addr(), b.URIs(), StructuredFar)
	lk, active := a.linkers[b.Addr()]
	if !active {
		t.Fatal("linker did not register")
	}
	// Simulate losing the race: the peer reports its own attempt in
	// flight — but never actually links (the middlebox-defeated case).
	a.handleLinkError(linkError{From: b.Addr(), Token: lk.token, Reason: "busy"})
	if _, still := a.linkers[b.Addr()]; still {
		t.Fatal("busy error did not terminate the yielding linker")
	}
	if a.busyRetry[b.Addr()] != 1 {
		t.Fatalf("busyRetry = %d, want 1", a.busyRetry[b.Addr()])
	}
	if got := a.Stats.Get("link.uri_exhausted.busy"); got != 1 {
		t.Fatalf("link.uri_exhausted.busy = %d, want 1", got)
	}

	// The randomized restart must re-issue the attempt and win.
	r.s.RunFor(30 * sim.Second)
	c := a.ConnectionTo(b.Addr())
	if c == nil || !c.Has(StructuredFar) {
		t.Fatal("restarted linker never established the connection")
	}
	if a.busyRetry[b.Addr()] != 0 {
		t.Errorf("busyRetry not reset after success: %d", a.busyRetry[b.Addr()])
	}
}

// TestRelinkRepairsAfterTransientBlackhole exercises the repair overlord:
// a structured link killed by a transient blackhole (ping timeout, an
// involuntary drop) must be re-established from the cached URIs once the
// network heals, with the relink counters recording the repair.
func TestRelinkRepairsAfterTransientBlackhole(t *testing.T) {
	r := buildRing(t, 24, 8)
	order := r.ringOrder()
	a, b := order[0], order[1]
	if a.ConnectionTo(b.Addr()) == nil {
		t.Fatal("ring neighbors not connected")
	}

	// Blackhole the pair until their connection times out.
	cut := true
	r.net.Perturb = func(src, dst *phys.Host, pm phys.PathModel) (phys.PathModel, bool) {
		if !cut {
			return pm, false
		}
		pair := (src == a.Host() && dst == b.Host()) || (src == b.Host() && dst == a.Host())
		return pm, pair
	}
	deadline := r.s.Now().Add(2 * sim.Minute)
	for a.ConnectionTo(b.Addr()) != nil && r.s.Now() < deadline {
		r.s.RunFor(sim.Second)
	}
	if a.ConnectionTo(b.Addr()) != nil {
		t.Fatal("blackholed link never timed out")
	}

	cut = false
	relinksBefore := a.Stats.Get("relink.success") + b.Stats.Get("relink.success")
	// FastTestConfig RelinkBase is 1s; a few jittered attempts suffice.
	r.s.RunFor(2 * sim.Minute)
	c := a.ConnectionTo(b.Addr())
	if c == nil {
		t.Fatal("repair overlord never re-linked the lost neighbor")
	}
	after := a.Stats.Get("relink.success") + b.Stats.Get("relink.success")
	if after == relinksBefore {
		t.Errorf("relink.success did not advance (a=%s b=%s)", a.Stats.String(), b.Stats.String())
	}
	if a.Stats.Get("relink.attempts")+b.Stats.Get("relink.attempts") == 0 {
		t.Error("no relink.attempts recorded")
	}
}
