package brunet

import (
	"fmt"
	"testing"

	"wow/internal/phys"
	"wow/internal/sim"
)

func TestDebugTCPRing(t *testing.T) {
	r := newOverlayRig(30)
	cfg := FastTestConfig()
	cfg.Transport = "tcp"
	for i := 0; i < 10; i++ {
		h := r.net.AddHost(fmt.Sprintf("t%02d", i), r.site, r.net.Root(), phys.HostConfig{})
		n := NewNode(h, AddrFromString(fmt.Sprintf("t%02d", i)), cfg)
		var boot []URI
		if len(r.nodes) > 0 {
			boot = []URI{tcpBootURI(r.nodes[0])}
		}
		if err := n.Start(boot); err != nil {
			t.Fatal(err)
		}
		r.nodes = append(r.nodes, n)
		r.s.RunFor(2 * sim.Second)
	}
	r.s.RunFor(60 * sim.Second)
	order := r.ringOrder()
	for i, n := range order {
		succ := order[(i+1)%len(order)]
		c := n.ConnectionTo(succ.Addr())
		if c == nil || !c.Has(StructuredNear) {
			fmt.Printf("MISSING %s -> %s\n", n.Addr(), succ.Addr())
			fmt.Printf("  %s conns:", n.Addr())
			for _, cc := range n.Connections() {
				fmt.Printf(" %v", cc)
			}
			fmt.Printf("\n  stats: %s\n", n.Stats.String())
			fmt.Printf("  succ %s conns:", succ.Addr())
			for _, cc := range succ.Connections() {
				fmt.Printf(" %v", cc)
			}
			fmt.Printf("\n  succ stats: %s\n", succ.Stats.String())
		}
	}
	fmt.Printf("net: %s\n", r.net.Stats.String())
}
