package brunet

import (
	"fmt"
	"testing"

	"wow/internal/natsim"
	"wow/internal/phys"
	"wow/internal/sim"
)

// TestStalePingGetsClose: a node holding a connection to a peer that no
// longer knows it (state wiped) must be told to drop the zombie.
func TestStalePingGetsClose(t *testing.T) {
	r := buildRing(t, 40, 6)
	a, b := r.nodes[1], r.nodes[4]
	if a.ConnectionTo(b.Addr()) == nil {
		// ensure some connection exists for the test
		a.sendCTM(b.Addr(), Shortcut, DeliverExact, Zero)
		r.s.RunFor(30 * sim.Second)
	}
	c := a.ConnectionTo(b.Addr())
	if c == nil {
		t.Skip("no connection available between chosen nodes")
	}
	// Wipe B completely and restart it fresh so it has no conn to A yet;
	// A's next keepalive ping must be answered with a close.
	b.Stop()
	h := r.net.AddHost("b-reborn", r.site, r.net.Root(), phys.HostConfig{})
	reborn := NewNode(h, b.Addr(), FastTestConfig())
	if err := reborn.Start([]URI{r.nodes[0].BootstrapURI()}); err != nil {
		t.Fatal(err)
	}
	r.nodes[4] = reborn
	r.s.RunFor(2 * sim.Minute)
	// A must no longer hold the stale conn (dropped by close or timeout),
	// and if it reconnected, the endpoint must be the reborn node's.
	if c2 := a.ConnectionTo(b.Addr()); c2 != nil && c2.EP == c.EP && c.EP.IP != h.IP() {
		t.Fatalf("stale connection survived: %v", c2)
	}
}

// TestEndpointRoaming: when a NATed peer's mapping changes, the public
// side adopts the new observed endpoint from the peer's pings.
func TestEndpointRoaming(t *testing.T) {
	r := buildRing(t, 41, 6)
	nat := natsim.NewNAT("roam", natsim.Config{Type: natsim.PortRestricted}, r.net.Root().NextIP(), r.s.Now)
	realm := r.net.AddRealm("roam", r.net.Root(), nat, phys.MustParseIP("10.5.0.2"))
	h := r.net.AddHost("roamer", r.site, realm, phys.HostConfig{})
	n := NewNode(h, AddrFromString("roaming-node"), FastTestConfig())
	if err := n.Start([]URI{r.nodes[0].BootstrapURI()}); err != nil {
		t.Fatal(err)
	}
	r.nodes = append(r.nodes, n)
	r.s.RunFor(sim.Minute)
	if !n.IsRoutable() {
		t.Fatal("roamer never joined")
	}

	nat.Rebind()
	r.s.RunFor(2 * sim.Minute)

	roamed := int64(0)
	for _, peer := range r.nodes {
		roamed += peer.Stats.Get("conn.ep_roamed")
	}
	if roamed == 0 {
		t.Fatal("no endpoint roaming after NAT rebind")
	}
	// Traffic must flow again.
	ok := false
	n.RegisterProto("t", func(src Addr, d AppData) { ok = true })
	r.nodes[2].SendTo(n.Addr(), DeliverExact, AppData{Proto: "t", Size: 10})
	r.s.RunFor(10 * sim.Second)
	if !ok {
		t.Fatal("traffic did not recover after rebind")
	}
}

// TestBusyBackoffRetries: a linking race loser behind inbound-hostile
// middleboxes must eventually win via randomized backoff retries.
func TestBusyBackoffRetries(t *testing.T) {
	r := buildRing(t, 42, 8)
	fw := natsim.NewFirewall("hostile", 0, r.s.Now)
	fw.BlockProto(phys.WireUDP)
	realm := r.net.AddRealm("hostile", r.net.Root(), fw, phys.MustParseIP("141.1.0.10"))
	h := r.net.AddHost("hostile-host", r.site, realm, phys.HostConfig{})
	cfg := FastTestConfig()
	cfg.Transport = "tcp"
	n := NewNode(h, AddrFromString("backoff-node"), cfg)
	if err := n.Start([]URI{URI{Transport: "tcp", EP: r.nodes[0].BootstrapURI().EP}}); err != nil {
		t.Fatal(err)
	}
	r.nodes = append(r.nodes, n)
	r.s.RunFor(3 * sim.Minute)
	if !n.IsRoutable() {
		t.Fatal("never became routable")
	}
	// It must hold near links beyond the bootstrap.
	if len(n.connsOfType(StructuredNear)) < 2 {
		t.Fatalf("one-sided ring position: %v", n.Connections())
	}
}

// TestLeafRotationOnDeadBootstrap: if the first bootstrap node is dead,
// joining still succeeds via the others.
func TestLeafRotationOnDeadBootstrap(t *testing.T) {
	r := buildRing(t, 43, 6)
	dead := phys.Endpoint{IP: phys.MustParseIP("9.9.9.9"), Port: 1}
	boot := []URI{
		UDPURI(dead), // unreachable
		r.nodes[0].BootstrapURI(),
		r.nodes[1].BootstrapURI(),
	}
	h := r.net.AddHost("late", r.site, r.net.Root(), phys.HostConfig{})
	n := NewNode(h, AddrFromString("late-joiner"), FastTestConfig())
	if err := n.Start(boot); err != nil {
		t.Fatal(err)
	}
	r.nodes = append(r.nodes, n)
	r.s.RunFor(3 * sim.Minute)
	if !n.IsRoutable() {
		t.Fatal("join wedged on dead bootstrap entry")
	}
}

// TestLeaveIsIdempotentAndStopsTraffic covers the graceful-departure path.
func TestLeaveIsIdempotent(t *testing.T) {
	r := buildRing(t, 44, 5)
	n := r.nodes[3]
	n.Leave()
	n.Leave()
	if n.Up() {
		t.Fatal("up after leave")
	}
	r.s.RunFor(30 * sim.Second)
	for _, p := range r.nodes[:3] {
		if p.ConnectionTo(n.Addr()) != nil {
			t.Fatal("peer kept connection after graceful leave")
		}
	}
}

// TestConnectionTransportLabels sanity-checks diagnostics for both
// transports.
func TestConnectionTransportLabels(t *testing.T) {
	r := buildRing(t, 45, 4)
	for _, c := range r.nodes[0].Connections() {
		if c.Transport() != "udp" {
			t.Fatalf("public UDP ring conn labelled %q", c.Transport())
		}
	}
	// One TCP node.
	cfg := FastTestConfig()
	cfg.Transport = "tcp"
	h := r.net.AddHost("tcp-node", r.site, r.net.Root(), phys.HostConfig{})
	n := NewNode(h, AddrFromString("tcp-node"), cfg)
	if err := n.Start([]URI{URI{Transport: "tcp", EP: r.nodes[0].BootstrapURI().EP}}); err != nil {
		t.Fatal(err)
	}
	r.s.RunFor(sim.Minute)
	found := false
	for _, c := range n.Connections() {
		if c.Transport() == "tcp" {
			found = true
			if c.Stream == nil {
				t.Fatal("tcp conn without stream")
			}
		}
	}
	if !found {
		t.Fatal("no tcp connections formed")
	}
	_ = fmt.Sprintf("%v", n)
}
