package brunet

import (
	"testing"

	"wow/internal/sim"
)

// TestConfigZeroValuesTakeDefaults: a zero Config must resolve to exactly
// the paper defaults.
func TestConfigZeroValuesTakeDefaults(t *testing.T) {
	var c Config
	c.fillDefaults()
	d := DefaultConfig()
	if c.NearPerSide != d.NearPerSide || c.FarCount != d.FarCount || c.MaxHops != d.MaxHops {
		t.Errorf("topology defaults wrong: %+v", c)
	}
	if c.PingInterval != d.PingInterval || c.PingTimeout != d.PingTimeout || c.PingRetries != d.PingRetries {
		t.Errorf("keepalive defaults wrong: %+v", c)
	}
	if c.LinkResend != d.LinkResend || c.LinkBackoff != d.LinkBackoff || c.LinkRetries != d.LinkRetries {
		t.Errorf("linker defaults wrong: %+v", c)
	}
	if c.SuspectRetries != d.SuspectRetries || c.RelinkBase != d.RelinkBase || c.RelinkRetries != d.RelinkRetries {
		t.Errorf("recovery defaults wrong: %+v", c)
	}
	if c.Transport != "udp" {
		t.Errorf("transport default = %q", c.Transport)
	}
}

// TestConfigUseZeroSentinel: UseZero must configure a literal zero instead
// of being conflated with "unset".
func TestConfigUseZeroSentinel(t *testing.T) {
	c := Config{
		FarCount:       UseZero, // no far connections
		PingRetries:    UseZero, // dead after one unanswered ping
		LinkRetries:    UseZero, // one shot per URI
		SuspectRetries: UseZero, // fast probes get the full budget
		RelinkRetries:  UseZero, // repair disabled
	}
	c.fillDefaults()
	if c.FarCount != 0 || c.PingRetries != 0 || c.LinkRetries != 0 ||
		c.SuspectRetries != 0 || c.RelinkRetries != 0 {
		t.Errorf("UseZero not honored: %+v", c)
	}
	// Untouched fields still default.
	if c.NearPerSide != DefaultConfig().NearPerSide || c.RelinkBase != DefaultConfig().RelinkBase {
		t.Errorf("unset fields lost their defaults: %+v", c)
	}
}

// TestConfigExplicitValuesPreserved: positive settings pass through
// untouched.
func TestConfigExplicitValuesPreserved(t *testing.T) {
	c := Config{
		NearPerSide:   3,
		PingInterval:  7 * sim.Second,
		LinkBackoff:   1.5,
		RelinkBase:    2 * sim.Second,
		RelinkRetries: 9,
		Transport:     "tcp",
	}
	c.fillDefaults()
	if c.NearPerSide != 3 || c.PingInterval != 7*sim.Second || c.LinkBackoff != 1.5 ||
		c.RelinkBase != 2*sim.Second || c.RelinkRetries != 9 || c.Transport != "tcp" {
		t.Errorf("explicit values clobbered: %+v", c)
	}
}

// TestRelinkDisabledByUseZero: with RelinkRetries = UseZero the repair
// overlord must not schedule anything after an involuntary drop.
func TestRelinkDisabledByUseZero(t *testing.T) {
	cfg := FastTestConfig()
	cfg.RelinkRetries = UseZero
	r := newOverlayRig(31)
	for i := 0; i < 6; i++ {
		r.addPublic(t, nodeName(i), cfg)
		r.s.RunFor(2 * sim.Second)
	}
	r.s.RunFor(60 * sim.Second)

	victim := r.nodes[3]
	victim.Stop() // involuntary from the peers' point of view
	r.s.RunFor(5 * sim.Minute)
	for _, n := range r.nodes {
		if n == victim {
			continue
		}
		if got := n.Stats.Get("relink.attempts"); got != 0 {
			t.Errorf("node %s attempted %d relinks with repair disabled", n.Addr(), got)
		}
	}
}

func nodeName(i int) string { return string(rune('a'+i)) + "-node" }
