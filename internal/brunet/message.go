package brunet

import (
	"fmt"

	"wow/internal/sim"
)

// ConnType classifies overlay connections (§IV-A).
type ConnType int

const (
	// Leaf connections bootstrap new nodes onto the overlay: a
	// unidirectional link to a well-known node that forwards traffic
	// until the newcomer is routable.
	Leaf ConnType = iota
	// StructuredNear connections join a node to its nearest ring
	// neighbors; they define ring consistency and routability.
	StructuredNear
	// StructuredFar connections are long-range links that cut the
	// average overlay path to O((1/k)·log²n) hops.
	StructuredFar
	// Shortcut connections are created on demand between communicating
	// nodes by the ShortcutConnectionOverlord, collapsing multi-hop
	// virtual-IP paths to a single overlay hop.
	Shortcut
	// Relay connections are direct links recruited by the tunnel
	// overlord purely to carry tunnel frames for a third party. They are
	// not ring routers (not structured) and are dropped when no tunnel
	// uses them any more.
	Relay
)

// String names the connection type.
func (t ConnType) String() string {
	switch t {
	case Leaf:
		return "leaf"
	case StructuredNear:
		return "structured.near"
	case StructuredFar:
		return "structured.far"
	case Shortcut:
		return "shortcut"
	case Relay:
		return "relay"
	}
	return fmt.Sprintf("ConnType(%d)", int(t))
}

// Wire header and message size estimates (bytes). Payload sizes ride on
// top; the physical layer charges transmission time for the total.
const (
	linkMsgSize    = 96
	pingMsgSize    = 40
	overlayHdrSize = 48
	ctmMsgSize     = 64 // plus ~16 per carried URI, ~24 per relay candidate
	statusMsgSize  = 48 // plus ~24 per advertised neighbor
	tunnelHdrSize  = 48 // tunnelFrame envelope around the inner message
)

// linkRequest begins or continues the linking protocol handshake (§IV-B2),
// sent directly over the physical network to one of the target's URIs.
type linkRequest struct {
	From  Addr
	To    Addr // intended target; a NAT-forwarded packet may reach the wrong node
	Type  ConnType
	Token uint64 // identifies one linking attempt across resends
	Seq   int    // resend counter within the attempt
	URIs  []URI  // initiator's URIs, so the responder can reciprocate state
}

// linkReply acknowledges a linkRequest over the physical network.
type linkReply struct {
	From     Addr
	Token    uint64
	URIs     []URI
	Observed URIEndpoint // the source endpoint the responder saw: NAT discovery
}

// URIEndpoint wraps the observed endpoint in the reply, letting initiators
// behind NATs learn their NAT-assigned IP/port (§IV-C).
type URIEndpoint struct {
	URI URI
}

// linkError rejects a linkRequest, breaking linking races: the loser gives
// up its active attempt and lets the winner's handshake finish (§IV-B2).
type linkError struct {
	From   Addr
	Token  uint64
	Reason string
}

// pingMsg keeps an idle connection alive (§IV-B); unresponded pings mark
// the connection dead.
type pingMsg struct {
	From Addr
	Seq  uint64
}

// pongMsg answers a ping. Load piggybacks the responder's current relay
// load (tunnel pairs it is carrying frames for), so every keepalive round
// refreshes the liveness estimator's RTT sample and the relay scorer's
// load view at once.
type pongMsg struct {
	From Addr
	Seq  uint64
	Load int
}

// closeMsg announces graceful connection teardown.
type closeMsg struct {
	From Addr
}

// leaveMsg announces a graceful departure to a structured-near neighbor.
// Besides acting as a close, it hands off the departing node's view of the
// ring: Neighbors carries the other near neighbors (with URIs) so the
// receiver can link straight to its new ring neighbor instead of waiting
// for status gossip — planned departures skip the ping-timeout path
// entirely (the §V-C migration window).
type leaveMsg struct {
	From      Addr
	Neighbors []NeighborInfo
}

// suspectMsg forwards a death verdict: the sender timed out its link to
// Dead, and tells peers that may also hold one to probe it immediately
// with a reduced retry budget (fast failure detection) instead of each
// independently burning the full keepalive cycle.
type suspectMsg struct {
	From Addr
	Dead Addr
}

// statusMsg is exchanged over structured near connections, advertising a
// node's current ring neighborhood so peers can discover closer neighbors
// (ring repair and convergence).
type statusMsg struct {
	From      Addr
	Neighbors []NeighborInfo
}

// NeighborInfo names one ring neighbor and how to reach it. Load, carried
// only in CTM relay-candidate lists, is the advertiser's last view of that
// neighbor's relay load — it seeds load-aware tunnel-relay selection
// before the selector has heard a pong from the relay itself.
type NeighborInfo struct {
	Addr Addr
	URIs []URI
	Load int
}

// DeliveryMode selects how an overlay packet terminates (§IV-A: "the
// packet is eventually delivered to the destination; or if the destination
// is down, it is delivered to its nearest neighbors").
type DeliveryMode int

const (
	// DeliverNearest hands the packet to whichever node is closest to
	// the destination address — the mode used by CTM requests, enabling
	// join-by-routing-to-self and far-connection targeting.
	DeliverNearest DeliveryMode = iota
	// DeliverExact drops the packet at the nearest node unless it is
	// the addressee — the mode used by tunnelled IP traffic.
	DeliverExact
)

// OverlayPacket is a packet routed greedily over overlay connections.
//
// Packets originated by SendTo are pooled per node: the AppData payload is
// stored in the packet's own app field and Payload points at it (boxing a
// pointer allocates nothing), and whichever node terminates the packet
// releases it into its own free list. Handlers therefore must not retain
// the AppData (or pointers into it) past the delivery callback. Packets
// carrying protocol messages (CTMs, replies) are never pooled — they are
// allocated per message and may be copied freely (handleCTMRequest's
// pass-across relies on that).
type OverlayPacket struct {
	Src, Dst Addr
	Mode     DeliveryMode
	Hops     int
	MaxHops  int
	Size     int
	Payload  any

	// Trace is the flight-recorder context: zero for unsampled packets,
	// the deterministic per-origin sample hash otherwise. Every hop of a
	// traced packet appends a record; TraceStart stamps the origination
	// time so terminals can report end-to-end latency.
	Trace      uint64
	TraceStart sim.Time

	// app is the inline AppData of a pooled packet; Payload aliases it.
	app AppData
	// pooled marks packets owned by the origination pool; only these are
	// released at the routing terminal.
	pooled bool
	// nextFree links a node's packet free list.
	nextFree *OverlayPacket
}

// TraceContext exposes the packet's flight-recorder context
// (trace.Traced); id zero means untraced.
func (p *OverlayPacket) TraceContext() (uint64, sim.Time) { return p.Trace, p.TraceStart }

// ClearTrace consumes the trace context after a terminal record. The
// physical layer calls it through trace.Cleared so a packet object shared
// between a transport retransmit buffer and the wire can never produce two
// terminals.
func (p *OverlayPacket) ClearTrace() { p.Trace = 0 }

// ctmRequest is the Connect-To-Me message of the connection protocol
// (§IV-B1), routed over the overlay to the target address.
type ctmRequest struct {
	From  Addr
	Type  ConnType
	Token uint64
	URIs  []URI
	// ReplyVia, when non-zero, asks that the CTM reply be routed to the
	// named forwarding node (the new node's leaf target) which relays
	// it over the leaf connection — necessary while the sender is not
	// yet routable (§IV-C).
	ReplyVia Addr
	// Relays advertises the sender's directly-connected neighbors (its
	// connection table, capped) so that, if the linking protocol cannot
	// form a direct edge, the receiver can pick mutual neighbors as
	// tunnel relays — Brunet's tunnel-edge fallback for symmetric NATs.
	Relays []NeighborInfo
}

// ctmReply answers a ctmRequest, carrying the responder's URIs back so the
// initiator can start the linking protocol (§IV-B1).
type ctmReply struct {
	From  Addr
	To    Addr
	Type  ConnType
	Token uint64
	URIs  []URI
	// Relays mirrors ctmRequest.Relays for the responder.
	Relays []NeighborInfo
}

// tunnelFrame carries one link-layer message of a tunnel edge. The
// originator (From) hands the frame to a relay over a direct connection;
// the relay forwards it, again over a direct connection, to the tunnel
// peer (To), which unwraps Inner and dispatches it as if it had arrived on
// a private transport between From and To. Via names the relay the
// originator chose, so the receiver can answer through the same relay and
// learn working relays from traffic. Frames are never forwarded through a
// second tunnel (no nesting): a relay without a direct connection to To
// drops the frame.
type tunnelFrame struct {
	From Addr
	To   Addr
	Via  Addr
	Size int
	// Observed is stamped by the relay with the originator's wire source
	// endpoint as the relay saw it. Tunnel endpoints otherwise never see
	// each other's physical addresses, and a NATed originator depends on
	// this observation to keep learning its current public URI — the
	// seed for upgrading the tunnel to a direct edge once its NAT
	// allows hole punching.
	Observed URIEndpoint
	Inner    any
}

// TraceContext delegates to the wrapped message: dropping a tunnel frame
// in flight terminates the traced overlay packet inside it.
func (f tunnelFrame) TraceContext() (uint64, sim.Time) {
	if t, ok := f.Inner.(interface {
		TraceContext() (uint64, sim.Time)
	}); ok {
		return t.TraceContext()
	}
	return 0, 0
}

// ClearTrace delegates to the wrapped message (the Inner interface holds a
// pointer, so the value receiver still reaches the shared packet).
func (f tunnelFrame) ClearTrace() {
	if c, ok := f.Inner.(interface{ ClearTrace() }); ok {
		c.ClearTrace()
	}
}

// tunnelNoRoute is a relay's bounce for a tunnelFrame it could not
// forward (no direct connection to the frame's To). It travels back to the
// originator over the direct connection the frame arrived on, letting the
// originator prune the dead relay from that tunnel edge immediately
// instead of discovering the blackhole by keepalive timeout.
type tunnelNoRoute struct {
	Relay Addr // the bouncing relay
	To    Addr // the tunnel peer it cannot reach
}

// forwarded wraps a payload relayed through a leaf forwarder to a
// not-yet-routable node.
type forwarded struct {
	To    Addr
	Inner any
	Size  int
}

// TraceContext delegates to the wrapped message, like tunnelFrame's.
func (f forwarded) TraceContext() (uint64, sim.Time) {
	if t, ok := f.Inner.(interface {
		TraceContext() (uint64, sim.Time)
	}); ok {
		return t.TraceContext()
	}
	return 0, 0
}

// ClearTrace delegates to the wrapped message, like tunnelFrame's.
func (f forwarded) ClearTrace() {
	if c, ok := f.Inner.(interface{ ClearTrace() }); ok {
		c.ClearTrace()
	}
}

// AppData is application traffic tunnelled over the overlay; IPOP uses it
// to carry virtual IP packets. Proto multiplexes independent services on
// one node.
type AppData struct {
	Proto string
	Size  int
	Data  any
}
