package brunet

import (
	"fmt"
	"testing"

	"wow/internal/natsim"
	"wow/internal/phys"
	"wow/internal/sim"
)

// natRig extends overlayRig with per-node NAT handles so tests can kill
// relays, relax NAT disciplines mid-run, and inspect mappings.
type natRig struct {
	*overlayRig
	nats map[Addr]*natsim.NAT
}

// addNATed starts a node behind a fresh per-host NAT of the given type,
// bootstrapping off the rig's first node.
func (r *natRig) addNATed(t *testing.T, name string, typ natsim.NATType) *Node {
	t.Helper()
	nat := natsim.NewNAT(name+"-nat", natsim.Config{Type: typ}, r.net.Root().NextIP(), r.s.Now)
	base := phys.MustParseIP(fmt.Sprintf("10.%d.0.2", len(r.nodes)))
	realm := r.net.AddRealm(name, r.net.Root(), nat, base)
	h := r.net.AddHost(name+"-host", r.site, realm, phys.HostConfig{})
	n := NewNode(h, AddrFromString(name), FastTestConfig())
	if err := n.Start([]URI{r.nodes[0].BootstrapURI()}); err != nil {
		t.Fatalf("start %s: %v", name, err)
	}
	r.nodes = append(r.nodes, n)
	r.nats[n.Addr()] = nat
	return n
}

// buildSymmetricRing builds an overlay of a few public routers plus many
// nodes each behind its own symmetric NAT. With more symmetric nodes than
// routers, the ring necessarily contains symmetric-symmetric adjacencies,
// and those near links can only be closed by tunnel edges: symmetric NATs
// on both sides defeat hole punching outright.
func buildSymmetricRing(t *testing.T, seed int64, routers, symmetric int) *natRig {
	t.Helper()
	r := &natRig{overlayRig: newOverlayRig(seed), nats: map[Addr]*natsim.NAT{}}
	for i := 0; i < routers; i++ {
		r.addPublic(t, fmt.Sprintf("router%02d", i), FastTestConfig())
		r.s.RunFor(2 * sim.Second)
	}
	for i := 0; i < symmetric; i++ {
		r.addNATed(t, fmt.Sprintf("sym%02d", i), natsim.Symmetric)
		r.s.RunFor(2 * sim.Second)
	}
	r.s.RunFor(4 * sim.Minute)
	return r
}

// tunneledNearConn returns some node holding a tunneled structured-near
// connection, with that connection.
func (r *natRig) tunneledNearConn() (*Node, *Connection) {
	for _, n := range r.ringOrder() {
		for _, c := range n.Connections() {
			if c.Tunneled() && c.Has(StructuredNear) {
				return n, c
			}
		}
	}
	return nil, nil
}

// nodeByAddr finds a rig node by overlay address.
func (r *natRig) nodeByAddr(a Addr) *Node {
	for _, n := range r.nodes {
		if n.Addr() == a {
			return n
		}
	}
	return nil
}

// totalStat sums a counter across every node in the rig.
func (r *natRig) totalStat(name string) int64 {
	var tot int64
	for _, n := range r.nodes {
		tot += n.Stats.Get(name)
	}
	return tot
}

// A ring of symmetric-NATed nodes converges to full structured-ring
// consistency by falling back to tunnel edges, and application traffic
// routes across those edges.
func TestSymmetricNATRingUsesTunnels(t *testing.T) {
	r := buildSymmetricRing(t, 21, 3, 8)
	for _, n := range r.nodes {
		if !n.IsRoutable() {
			t.Fatalf("node %s not routable", n.Addr())
		}
	}
	assertRingConsistent(t, r.overlayRig)
	if got := r.totalStat("tunnel.established"); got == 0 {
		t.Fatal("no tunnels established in an all-symmetric ring")
	}
	n, c := r.tunneledNearConn()
	if n == nil {
		t.Fatal("no live tunneled near connection")
	}
	if tr := c.Transport(); tr != "tunnel" {
		t.Fatalf("tunneled conn transport = %q, want tunnel", tr)
	}
	// App traffic must cross the tunnel edge in both directions.
	peer := r.nodeByAddr(c.Peer)
	got := 0
	n.RegisterProto("t", func(src Addr, d AppData) { got++ })
	peer.RegisterProto("t", func(src Addr, d AppData) { got++ })
	n.SendTo(peer.Addr(), DeliverExact, AppData{Proto: "t", Size: 10})
	peer.SendTo(n.Addr(), DeliverExact, AppData{Proto: "t", Size: 10})
	r.s.RunFor(10 * sim.Second)
	if got != 2 {
		t.Fatalf("tunnel traffic: %d/2 packets delivered", got)
	}
}

// Killing the relay a tunnel is currently using must not strand the edge:
// the endpoints fail over to another relay (or re-establish through one)
// and the ring stays consistent.
func TestTunnelRelayFailover(t *testing.T) {
	r := buildSymmetricRing(t, 22, 3, 8)
	n, c := r.tunneledNearConn()
	if n == nil {
		t.Fatal("no tunneled near connection to test")
	}
	peer := c.Peer
	rc := n.bestRelay(c)
	if rc == nil {
		t.Fatal("tunneled conn has no live relay")
	}
	relayNode := r.nodeByAddr(rc.Peer)
	if relayNode == nil {
		t.Fatalf("relay %s is not a rig node", rc.Peer)
	}
	relayNode.Stop()
	r.s.RunFor(2 * sim.Minute)

	if lost := r.totalStat("tunnel.relay_lost") + r.totalStat("tunnel.relay_suspected"); lost == 0 {
		t.Fatal("relay death never detected by tunnel overlord")
	}
	nc := n.ConnectionTo(peer)
	if nc == nil || !nc.Has(StructuredNear) {
		t.Fatalf("near link to %s did not survive relay death (conn=%v)", peer, nc)
	}
	assertRingConsistent(t, r.overlayRig)
	// Traffic still flows between the endpoints.
	pn := r.nodeByAddr(peer)
	got := false
	pn.RegisterProto("t", func(src Addr, d AppData) { got = true })
	n.SendTo(peer, DeliverExact, AppData{Proto: "t", Size: 10})
	r.s.RunFor(10 * sim.Second)
	if !got {
		t.Fatal("traffic lost after relay failover")
	}
}

// When both NATs relax mid-run (symmetric -> full cone), the periodic
// upgrade probe must convert the tunnel to a direct edge in place: the
// relay stamps each frame with the peer's fresh wire endpoint, so upgrade
// linking dials an address that now accepts inbound traffic.
func TestTunnelUpgradesWhenNATRelaxed(t *testing.T) {
	r := buildSymmetricRing(t, 23, 3, 6)
	n, c := r.tunneledNearConn()
	if n == nil {
		t.Fatal("no tunneled near connection to test")
	}
	peer := c.Peer
	for _, a := range []Addr{n.Addr(), peer} {
		nat, ok := r.nats[a]
		if !ok {
			t.Fatalf("tunnel endpoint %s has no NAT — tunnels should only pair NATed nodes", a)
		}
		nat.SetType(natsim.FullCone)
	}
	r.s.RunFor(2 * sim.Minute)

	nc := n.ConnectionTo(peer)
	if nc == nil || !nc.Has(StructuredNear) {
		t.Fatalf("near link to %s lost during upgrade (conn=%v)", peer, nc)
	}
	if nc.Tunneled() {
		t.Fatalf("conn to %s still tunneled after NATs relaxed (relays=%v)", peer, nc.Relays)
	}
	if got := r.totalStat("tunnel.upgraded"); got == 0 {
		t.Fatal("tunnel.upgraded never counted")
	}
	assertRingConsistent(t, r.overlayRig)
}

// A peer that answers a link request addressed to somebody else (a NAT
// rebind handed its endpoint to a new tenant) is a hard reject: the linker
// skips the URI immediately and the give-up reason is "reject".
func TestLinkGiveUpReasonReject(t *testing.T) {
	r := buildRing(t, 24, 2)
	a, b := r.nodes[0], r.nodes[1]
	before := a.Stats.Get("link.giveup.reject")
	// Dial b's real endpoint but name a target that is not b.
	a.startLinker(AddrFromString("nobody-home"), []URI{b.BootstrapURI()}, Shortcut)
	r.s.RunFor(30 * sim.Second)
	if got := a.Stats.Get("link.uri_exhausted.reject"); got == 0 {
		t.Fatal("link.uri_exhausted.reject not counted")
	}
	if got := a.Stats.Get("link.giveup.reject") - before; got != 1 {
		t.Fatalf("link.giveup.reject = %d, want 1", got)
	}
	if got := a.Stats.Get("link.giveup.timeout"); got != 0 {
		t.Fatalf("pure-reject failure counted link.giveup.timeout = %d", got)
	}
}
