package brunet

import (
	"fmt"

	"wow/internal/phys"
)

// URI is a Uniform Resource Indicator naming one way to reach a node over
// a physical transport, e.g. brunet.udp:192.0.1.1:1024 (§IV-A). A node
// behind NATs has several URIs — its private endpoint plus every
// NAT-assigned endpoint it has learned — and the linking protocol tries
// them one by one.
type URI struct {
	// Transport is the tunnel transport; this implementation provides
	// "udp" (the transport used in all of the paper's experiments).
	Transport string
	EP        phys.Endpoint
}

// UDPURI builds a brunet.udp URI for an endpoint.
func UDPURI(ep phys.Endpoint) URI { return URI{Transport: "udp", EP: ep} }

// String renders "brunet.udp:ip:port".
func (u URI) String() string { return fmt.Sprintf("brunet.%s:%s", u.Transport, u.EP) }

// IsZero reports whether the URI is unset.
func (u URI) IsZero() bool { return u.Transport == "" && u.EP.IsZero() }

// uriSet is an ordered set of URIs: insertion order is preserved because
// the linking protocol's trial order matters (§V-B explains the UFL delay
// in terms of the NAT-assigned URI being tried first).
//
// The set is capped: a node behind a symmetric NAT is observed at a
// different public port by every peer it handshakes with, so an unbounded
// set would grow with the neighbor count and stretch every later linking
// attempt by a full per-URI retry budget per stale entry. When full, the
// oldest entry is evicted — old symmetric mappings expire at the NAT
// anyway, and the freshest observations are the ones still live.
const maxLearnedURIs = 4

type uriSet struct {
	list []URI
	seen map[URI]bool
}

func (s *uriSet) add(u URI) bool {
	if u.IsZero() {
		return false
	}
	if s.seen == nil {
		s.seen = make(map[URI]bool)
	}
	if s.seen[u] {
		return false
	}
	if len(s.list) >= maxLearnedURIs {
		delete(s.seen, s.list[0])
		s.list = append(s.list[:0], s.list[1:]...)
	}
	s.seen[u] = true
	s.list = append(s.list, u)
	return true
}

func (s *uriSet) all() []URI {
	out := make([]URI, len(s.list))
	copy(out, s.list)
	return out
}
