package brunet

// ringIndex keeps a node's structured connections sorted by clockwise
// distance from the node's own address — the circular order of the ring as
// seen from this node. It is maintained incrementally on every connection
// add and role drop, so the routing hot path finds the connection nearest
// to a destination with one binary search plus a constant-size neighbor
// probe instead of a linear scan, and the near overlord walks ring sides
// without re-sorting per call.
//
// Membership invariant: a connection is in the index exactly while
// Connection.structured() is true and the connection is live; the inRing
// flag on the connection mirrors membership so insert/remove are
// idempotent.
type ringIndex struct {
	origin Addr
	conns  []*Connection
}

// reset clears the index (node stop) and re-anchors it at origin.
func (r *ringIndex) reset(origin Addr) {
	r.origin = origin
	for _, c := range r.conns {
		c.inRing = false
	}
	r.conns = r.conns[:0]
}

// search returns the insertion index for address a: the first position
// whose peer is at a clockwise distance from origin no smaller than a's.
// Hand-rolled binary search keeps the comparator call direct (no closure)
// on the routing hot path.
func (r *ringIndex) search(a Addr) int {
	lo, hi := 0, len(r.conns)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.origin.CmpClockwise(r.conns[mid].Peer, a) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// insert adds c at its sorted position. Inserting a member is a no-op.
func (r *ringIndex) insert(c *Connection) {
	if c.inRing {
		return
	}
	i := r.search(c.Peer)
	r.conns = append(r.conns, nil)
	copy(r.conns[i+1:], r.conns[i:])
	r.conns[i] = c
	c.inRing = true
}

// remove deletes c from the index. Removing a non-member is a no-op.
func (r *ringIndex) remove(c *Connection) {
	if !c.inRing {
		return
	}
	i := r.search(c.Peer)
	if i >= len(r.conns) || r.conns[i] != c {
		// Defensive: the sorted position must hold c (peers are unique
		// map keys), but fall back to a scan rather than corrupt the
		// index if the invariant is ever violated.
		i = -1
		for j, o := range r.conns {
			if o == c {
				i = j
				break
			}
		}
		if i < 0 {
			c.inRing = false
			return
		}
	}
	r.conns = append(r.conns[:i], r.conns[i+1:]...)
	c.inRing = false
}

// nearest returns the member whose peer minimizes bidirectional ring
// distance to dst, excluding one peer address, with ties broken toward the
// smaller peer address — the same selection as the linear-scan oracle. The
// minimizer over a circularly sorted set is one of dst's two circular
// neighbors; with one possible exclusion per side, the four slots around
// the insertion point cover every candidate.
func (r *ringIndex) nearest(dst, exclude Addr) *Connection {
	m := len(r.conns)
	if m == 0 {
		return nil
	}
	i := r.search(dst)
	var best *Connection
	for _, j := range [4]int{i - 2, i - 1, i, i + 1} {
		j = ((j % m) + m) % m
		c := r.conns[j]
		if c.Peer == exclude || c == best {
			continue
		}
		if best == nil {
			best = c
			continue
		}
		cmp := dst.CmpRingDist(c.Peer, best.Peer)
		if cmp < 0 || (cmp == 0 && c.Peer.Less(best.Peer)) {
			best = c
		}
	}
	return best
}

// sideWalk visits members in clockwise (right=true) or counter-clockwise
// order from the origin, calling visit until it returns false. The two
// directions are exact reversals: counter-clockwise distance is the ring
// complement of clockwise distance, so walking the sorted slice backwards
// yields ascending counter-clockwise distance.
func (r *ringIndex) sideWalk(right bool, visit func(*Connection) bool) {
	m := len(r.conns)
	for k := 0; k < m; k++ {
		i := k
		if !right {
			i = m - 1 - k
		}
		if !visit(r.conns[i]) {
			return
		}
	}
}

// firstOnSide returns the structured-near connection nearest to this node
// on the given ring side, or nil — the common single-neighbor query
// (leave handoff, join-CTM pass-across) without building a sorted slice.
func (n *Node) firstOnSide(right bool) *Connection {
	var out *Connection
	n.ring.sideWalk(right, func(c *Connection) bool {
		if c.Has(StructuredNear) {
			out = c
			return false
		}
		return true
	})
	return out
}

// nearOnSide returns up to k structured-near connections on the given ring
// side, nearest first.
func (n *Node) nearOnSide(right bool, k int) []*Connection {
	out := make([]*Connection, 0, k)
	n.ring.sideWalk(right, func(c *Connection) bool {
		if c.Has(StructuredNear) {
			out = append(out, c)
		}
		return len(out) < k
	})
	return out
}

// dropConnRole removes role t from c, tearing the whole connection down
// (with a close to the peer) when no roles remain, and keeping the ring
// index consistent when the connection survives but stops being a ring
// router — e.g. a trimmed near link that still serves a leaf child.
func (n *Node) dropConnRole(c *Connection, t ConnType, reason string) {
	if !c.dropType(t) {
		n.dropConnection(c, true, reason)
		return
	}
	if !c.structured() {
		n.ring.remove(c)
	}
}
