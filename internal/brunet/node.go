package brunet

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"wow/internal/metrics"
	"wow/internal/phys"
	"wow/internal/sim"
	"wow/internal/trace"
)

// UseZero is the explicit-zero sentinel for Config's numeric fields. A
// zero-valued field selects its paper default, so a literal zero (for
// example PingRetries = 0, "declare dead after one unanswered ping", or
// FarCount = 0, "no far connections") must be requested by assigning
// UseZero instead. fillDefaults normalizes the sentinel back to zero.
const UseZero = -1

// Config carries a node's protocol constants. Zero values select the
// paper-faithful defaults (DefaultConfig), which are deliberately
// conservative — the paper tuned Brunet for heavily loaded PlanetLab hosts
// and accepts ~150s to abandon a dead URI (§IV-D footnote 2). Assign
// UseZero to a numeric field to configure a literal zero.
type Config struct {
	// Port is the UDP port to bind; 0 picks an ephemeral port.
	Port uint16
	// NearPerSide is how many structured-near neighbors to keep on each
	// ring side.
	NearPerSide int
	// FarCount is k, the number of structured-far connections (§IV-A).
	FarCount int
	// MaxHops bounds overlay routing.
	MaxHops int

	// PingInterval / PingTimeout / PingRetries drive keepalives. Dead
	// peers are detected after roughly PingInterval +
	// PingTimeout·(2^(PingRetries+1)−1).
	PingInterval sim.Duration
	PingTimeout  sim.Duration
	PingRetries  int

	// AdaptiveRTO switches the ping deadline from the fixed PingTimeout
	// to the per-connection estimate srtt + RTOK·rttvar (Jacobson/Karn),
	// clamped to [RTOMin, RTOMax]. The estimators run either way — only
	// the deadline derivation is gated — so flipping the knob mid-run
	// takes effect with whatever samples the connection already has.
	AdaptiveRTO bool
	// RTOK is the rttvar multiplier k in the adaptive deadline.
	RTOK int
	// RTOMin / RTOMax clamp the adaptive deadline: the floor guards
	// against suspicion storms on very fast links, the ceiling bounds
	// detection latency on very jittery ones.
	RTOMin sim.Duration
	RTOMax sim.Duration

	// RelayLoadPenalty converts a tunnel relay's advertised load (tunnel
	// pairs currently carried, piggybacked on pongs and CTM NeighborInfo)
	// into score time: score = srtt + load·RelayLoadPenalty. Relay
	// selection prefers the lowest score.
	RelayLoadPenalty sim.Duration
	// RelayHysteresis is how much better a challenger relay's score must
	// be before a tunnel edge re-points away from a live active relay —
	// flapping links don't thrash re-selection. Failover away from a
	// dead relay is always instant.
	RelayHysteresis sim.Duration

	// JitterSeed, when non-zero, gives the node a private protocol-jitter
	// RNG seeded JitterSeed^hash(addr) instead of drawing from the shared
	// simulator RNG. Per-node draws make the protocol's jitter sequence a
	// function of the node alone, so a run's outcome is identical across
	// serial and sharded engines and across shard counts.
	JitterSeed int64

	// LinkResend is the initial link-request resend interval;
	// LinkBackoff multiplies it on every retry; after LinkRetries
	// unanswered sends the linker moves to the target's next URI.
	LinkResend  sim.Duration
	LinkBackoff float64
	LinkRetries int

	// StatusInterval paces ring-neighborhood gossip on near links.
	StatusInterval sim.Duration
	// FarInterval paces the far-connection overlord's top-up checks.
	FarInterval sim.Duration

	// SuspectRetries is the ping-retry budget left after a dead-link
	// notification (close-forwarding): when a neighbor reports a peer's
	// link dead, the node probes the peer immediately and declares it
	// dead after SuspectRetries unanswered resends — fast failure
	// detection instead of waiting out the full
	// PingInterval + PingTimeout·(2^(PingRetries+1)−1) cycle.
	SuspectRetries int

	// RelinkBase and RelinkRetries drive connection-table repair: a
	// structured peer lost involuntarily (ping timeout, stream death) is
	// remembered and re-linked with jittered exponential backoff
	// (RelinkBase·2^attempt + U[0, RelinkBase)) for up to RelinkRetries
	// attempts — so a healed partition re-merges without waiting for
	// bootstrap or gossip rounds, and without a reconnection stampede.
	// RelinkRetries = UseZero disables repair.
	RelinkBase    sim.Duration
	RelinkRetries int

	// TunnelUpgradeInterval paces a tunnel edge's direct-link upgrade
	// probes: every interval the tunnel overlord routes a fresh CTM to
	// the tunnel peer, re-running bidirectional linking with current
	// URIs so the tunnel upgrades in place to a direct edge as soon as
	// hole punching becomes possible (NAT relaxed, mapping migrated,
	// node moved). The probes double as relay-candidate refresh.
	// UseZero disables upgrade probing.
	TunnelUpgradeInterval sim.Duration
	// TunnelMaxRelays caps both the relay list of a tunnel edge and the
	// relay-candidate list advertised in CTMs.
	TunnelMaxRelays int

	// PrivateFirst flips the linking protocol's URI trial order to try
	// private endpoints before NAT-learned ones; an ablation knob for
	// the Figure 5 regime-3 delay.
	PrivateFirst bool

	// Transport selects the link transport this node advertises in its
	// URIs: "udp" (the default, used in all the paper's experiments) or
	// "tcp" (for sites whose middleboxes drop UDP). Nodes accept links
	// over both transports regardless.
	Transport string

	// Shortcut configures the ShortcutConnectionOverlord; nil disables
	// shortcut creation (the paper's "shortcuts disabled" baseline).
	Shortcut *ShortcutConfig
}

// ShortcutConfig parameterizes adaptive shortcut creation (§IV-E).
type ShortcutConfig struct {
	// ServiceRate is c in s_{i+1} = max(s_i + a_i − c, 0), in
	// packets/second drained from the virtual work queue.
	ServiceRate float64
	// Threshold is the score that triggers shortcut establishment.
	Threshold float64
	// Tick is the score-update period (the paper's unit of time).
	Tick sim.Duration
	// IdleDrop closes a shortcut whose score has stayed at zero this
	// long, bounding per-node connection count.
	IdleDrop sim.Duration
	// Retry is the cool-down before re-attempting a failed shortcut.
	Retry sim.Duration
}

// DefaultConfig returns the paper-faithful constants.
func DefaultConfig() Config {
	return Config{
		NearPerSide:    2,
		FarCount:       8,
		MaxHops:        100,
		PingInterval:   15 * sim.Second,
		PingTimeout:    5 * sim.Second,
		PingRetries:    3,
		LinkResend:     5 * sim.Second,
		LinkBackoff:    2,
		LinkRetries:    4, // 5+10+20+40+80 ≈ 155s per dead URI, as in §V-B
		StatusInterval: 15 * sim.Second,
		FarInterval:    30 * sim.Second,
		SuspectRetries: 1,
		RelinkBase:     10 * sim.Second,
		RelinkRetries:  5,

		RTOK:             4,
		RTOMin:           500 * sim.Millisecond,
		RTOMax:           20 * sim.Second,
		RelayLoadPenalty: 25 * sim.Millisecond,
		RelayHysteresis:  50 * sim.Millisecond,

		TunnelUpgradeInterval: 60 * sim.Second,
		TunnelMaxRelays:       4,

		Shortcut: DefaultShortcutConfig(),
	}
}

// DefaultShortcutConfig returns shortcut constants calibrated so steady
// 1 packet/s traffic (the paper's ICMP probes) triggers a shortcut after
// roughly 20 seconds.
func DefaultShortcutConfig() *ShortcutConfig {
	return &ShortcutConfig{
		ServiceRate: 0.25,
		Threshold:   15,
		Tick:        sim.Second,
		IdleDrop:    120 * sim.Second,
		Retry:       30 * sim.Second,
	}
}

// FastTestConfig returns aggressive constants for unit tests that don't
// measure paper timings.
func FastTestConfig() Config {
	c := DefaultConfig()
	c.PingInterval = 5 * sim.Second
	c.PingTimeout = sim.Second
	c.PingRetries = 2
	c.LinkResend = 200 * sim.Millisecond
	c.LinkRetries = 3
	c.StatusInterval = 2 * sim.Second
	c.FarInterval = 3 * sim.Second
	c.RelinkBase = sim.Second
	c.TunnelUpgradeInterval = 3 * sim.Second
	return c
}

// defaulted resolves one numeric Config field: zero means "unset, take the
// default", the UseZero sentinel (any negative) means a literal zero.
func defaulted[T int | float64 | sim.Duration](v, def T) T {
	switch {
	case v == 0:
		return def
	case v < 0:
		return 0
	}
	return v
}

func (c *Config) fillDefaults() {
	d := DefaultConfig()
	c.NearPerSide = defaulted(c.NearPerSide, d.NearPerSide)
	c.FarCount = defaulted(c.FarCount, d.FarCount)
	c.MaxHops = defaulted(c.MaxHops, d.MaxHops)
	c.PingInterval = defaulted(c.PingInterval, d.PingInterval)
	c.PingTimeout = defaulted(c.PingTimeout, d.PingTimeout)
	c.PingRetries = defaulted(c.PingRetries, d.PingRetries)
	c.LinkResend = defaulted(c.LinkResend, d.LinkResend)
	c.LinkBackoff = defaulted(c.LinkBackoff, d.LinkBackoff)
	c.LinkRetries = defaulted(c.LinkRetries, d.LinkRetries)
	c.StatusInterval = defaulted(c.StatusInterval, d.StatusInterval)
	c.FarInterval = defaulted(c.FarInterval, d.FarInterval)
	c.SuspectRetries = defaulted(c.SuspectRetries, d.SuspectRetries)
	c.RelinkBase = defaulted(c.RelinkBase, d.RelinkBase)
	c.RelinkRetries = defaulted(c.RelinkRetries, d.RelinkRetries)
	c.RTOK = defaulted(c.RTOK, d.RTOK)
	c.RTOMin = defaulted(c.RTOMin, d.RTOMin)
	c.RTOMax = defaulted(c.RTOMax, d.RTOMax)
	c.RelayLoadPenalty = defaulted(c.RelayLoadPenalty, d.RelayLoadPenalty)
	c.RelayHysteresis = defaulted(c.RelayHysteresis, d.RelayHysteresis)
	c.TunnelUpgradeInterval = defaulted(c.TunnelUpgradeInterval, d.TunnelUpgradeInterval)
	c.TunnelMaxRelays = defaulted(c.TunnelMaxRelays, d.TunnelMaxRelays)
	if c.Transport == "" {
		c.Transport = "udp"
	}
}

// Node is one Brunet P2P router. WOW compute nodes embed a Node (via
// internal/ipop) and PlanetLab bootstrap routers run bare Nodes.
type Node struct {
	addr Addr
	host *phys.Host
	sim  *sim.Simulator
	cfg  Config
	sock *phys.UDPSock
	up   bool

	conns     map[Addr]*Connection
	ring      ringIndex
	linkers   map[Addr]*linker
	busyRetry map[Addr]int
	learned   uriSet
	private   URI
	bootstrap []URI
	slisten   *phys.StreamListener

	handlers map[string]func(src Addr, d AppData)
	onConn   []func(*Connection)
	onDisc   []func(*Connection)

	near   *nearOverlord
	far    *farOverlord
	sco    *shortcutOverlord
	repair *repairOverlord
	tun    *tunnelOverlord

	tokenSeq uint64
	pingSeq  uint64
	tickers  []*sim.Ticker

	// rng is the node-private protocol-jitter source (Config.JitterSeed);
	// nil means draw from the shared simulator RNG as before.
	rng *rand.Rand
	// relayed tracks the tunnel pairs this node has recently carried
	// frames for, keyed by normalized (From,To); its fresh-entry count is
	// the relay load advertised in pongs and CTM NeighborInfo.
	relayed map[relayPair]sim.Time

	// Stats counts protocol events (link attempts, routed packets,
	// shortcut formations, …).
	Stats metrics.Counter

	// Pre-resolved Stats handles for the per-packet routing path, where a
	// map lookup per counter bump is measurable at scale.
	statForwarded      metrics.Handle
	statDelivered      metrics.Handle
	statHopsExceeded   metrics.Handle
	statDeadLetter     metrics.Handle
	statNoProto        metrics.Handle
	statUnknownOverlay metrics.Handle

	// freePkt heads the node's OverlayPacket origination pool (see
	// OverlayPacket): packets SendTo creates come from here and whichever
	// node terminates one releases it into its own list. Node-local lists
	// keep the pool shard-safe under the parallel engine.
	freePkt *OverlayPacket

	// flight is the node's flight-recorder handle (EnableTrace); nil —
	// the default — disables all tracing at the cost of one nil check
	// per origination.
	flight *flightRecorder
}

// acquirePkt takes a packet from the origination pool, or allocates one.
func (n *Node) acquirePkt() *OverlayPacket {
	p := n.freePkt
	if p != nil {
		n.freePkt = p.nextFree
		p.nextFree = nil
		return p
	}
	return &OverlayPacket{}
}

// releasePkt retires a pooled packet at its routing terminal. Unpooled
// packets (protocol messages, externally built packets) pass through
// untouched — their lifetime belongs to the garbage collector.
func (n *Node) releasePkt(p *OverlayPacket) {
	if !p.pooled {
		return
	}
	p.pooled = false
	p.Payload = nil
	p.app = AppData{}
	p.Trace, p.TraceStart = 0, 0
	p.nextFree = n.freePkt
	n.freePkt = p
}

// NewNode creates a node with the given overlay address on a physical
// host. Call Start to bind the socket and join the overlay.
func NewNode(host *phys.Host, addr Addr, cfg Config) *Node {
	cfg.fillDefaults()
	n := &Node{
		addr:      addr,
		host:      host,
		sim:       host.Sim(),
		cfg:       cfg,
		conns:     make(map[Addr]*Connection),
		linkers:   make(map[Addr]*linker),
		busyRetry: make(map[Addr]int),
		handlers:  make(map[string]func(src Addr, d AppData)),
	}
	n.ring.reset(addr)
	if cfg.JitterSeed != 0 {
		h := fnv.New64a()
		h.Write(addr[:])
		n.rng = rand.New(rand.NewSource(cfg.JitterSeed ^ int64(h.Sum64())))
	}
	n.statForwarded = n.Stats.Handle("route.forwarded")
	n.statDelivered = n.Stats.Handle("route.delivered")
	n.statHopsExceeded = n.Stats.Handle("route.hops_exceeded")
	n.statDeadLetter = n.Stats.Handle("route.dead_letter")
	n.statNoProto = n.Stats.Handle("recv.noproto")
	n.statUnknownOverlay = n.Stats.Handle("recv.unknown_overlay")
	return n
}

// rand returns the node's protocol-jitter source: the private per-node
// RNG when Config.JitterSeed is set, the shared simulator RNG otherwise.
func (n *Node) rand() *rand.Rand {
	if n.rng != nil {
		return n.rng
	}
	return n.sim.Rand()
}

// tick starts a protocol ticker whose interval jitter draws from the
// node's own jitter source (see Config.JitterSeed).
func (n *Node) tick(interval, jitter sim.Duration, fn func()) *sim.Ticker {
	return n.sim.TickRand(interval, jitter, n.rng, fn)
}

// relayPair is a normalized (lower, higher) tunnel-endpoint pair.
type relayPair struct{ a, b Addr }

// noteRelayed records that this node just carried a tunnel frame for the
// pair (x, y); the pair counts toward the node's advertised relay load
// until its entry goes stale.
func (n *Node) noteRelayed(x, y Addr) {
	if y.Less(x) {
		x, y = y, x
	}
	if n.relayed == nil {
		n.relayed = make(map[relayPair]sim.Time)
	}
	n.relayed[relayPair{x, y}] = n.sim.Now()
}

// relayLoad counts the tunnel pairs this node is currently carrying:
// entries refreshed within two keepalive intervals (an active tunnel's
// pings traverse its relay at least once per PingInterval). Stale entries
// are pruned in passing; only the count leaves this function, so map
// iteration order cannot leak into behavior.
func (n *Node) relayLoad() int {
	if len(n.relayed) == 0 {
		return 0
	}
	horizon := 2 * n.cfg.PingInterval
	now := n.sim.Now()
	count := 0
	for k, at := range n.relayed {
		if now.Sub(at) > horizon {
			delete(n.relayed, k)
			continue
		}
		count++
	}
	return count
}

// Addr returns the node's 160-bit overlay address.
func (n *Node) Addr() Addr { return n.addr }

// Host returns the physical host the node runs on.
func (n *Node) Host() *phys.Host { return n.host }

// Config returns the node's protocol constants.
func (n *Node) Config() Config { return n.cfg }

// Up reports whether the node is started.
func (n *Node) Up() bool { return n.up }

// URIs returns the node's advertised URI list in linking-trial order:
// NAT-learned public endpoints first, the private endpoint next — the
// order IPOP uses and the cause of the Fig. 5 regime-3 delay
// (Config.PrivateFirst reverses it) — and finally the private endpoint's
// alternate-transport variant, since every node accepts links on both
// transports (§IV-A: "a P2P node may have multiple URIs").
func (n *Node) URIs() []URI {
	pub := n.learned.all()
	alt := n.private
	if n.cfg.Transport == "tcp" {
		alt.Transport = "udp"
	} else {
		alt.Transport = "tcp"
	}
	out := make([]URI, 0, len(pub)+2)
	if n.cfg.PrivateFirst {
		out = append(out, n.private)
		out = append(out, pub...)
	} else {
		out = append(out, pub...)
		out = append(out, n.private)
	}
	return append(out, alt)
}

// BootstrapURI returns the URI a new node should be configured with to
// bootstrap off this (public) node: its private endpoint on its preferred
// transport.
func (n *Node) BootstrapURI() URI { return n.private }

// learnURI records an observed public endpoint; reports whether new.
// Only UDP observations are kept: a TCP observation is the ephemeral port
// of an outbound stream — useless for calling back (TCP links into NATed
// or firewalled nodes are always established by the inside node dialing
// out).
func (n *Node) learnURI(u URI) bool {
	if u.IsZero() || u == n.private || u.Transport == "tcp" {
		return false
	}
	return n.learned.add(u)
}

// RegisterProto installs the handler for tunnelled application data with
// the given protocol label (IPOP registers "ipop").
func (n *Node) RegisterProto(proto string, h func(src Addr, d AppData)) {
	n.handlers[proto] = h
}

// OnConnection registers a callback invoked whenever a connection is
// created or gains a role.
func (n *Node) OnConnection(f func(*Connection)) { n.onConn = append(n.onConn, f) }

// OnDisconnection registers a callback invoked whenever a connection dies.
func (n *Node) OnDisconnection(f func(*Connection)) { n.onDisc = append(n.onDisc, f) }

func (n *Node) notifyConn(c *Connection) {
	for _, f := range n.onConn {
		f(c)
	}
}

func (n *Node) notifyDisc(c *Connection) {
	for _, f := range n.onDisc {
		f(c)
	}
}

// Start binds the node's socket and begins joining the overlay through the
// bootstrap URIs (§IV-C): establish a leaf connection, locate the node's
// ring position by routing a CTM to its own address, then link with its
// nearest neighbors. With no bootstrap URIs the node founds a new ring.
func (n *Node) Start(bootstrap []URI) error {
	if n.up {
		return fmt.Errorf("brunet: node %s already started", n.addr)
	}
	// Bind the UDP socket and the TCP-transport listener on the same
	// port number (separate wire namespaces). With an ephemeral port the
	// matching TCP port may be taken by another node's outbound streams
	// on a shared host (the paper's multi-router PlanetLab hosts), so
	// retry with fresh ports.
	var sock *phys.UDPSock
	var sl *phys.StreamListener
	for attempt := 0; ; attempt++ {
		var err error
		sock, err = n.host.Listen(n.cfg.Port)
		if err != nil {
			return fmt.Errorf("brunet: node %s: %w", n.addr, err)
		}
		sl, err = n.host.ListenStream(sock.Port(), n.acceptStream)
		if err == nil {
			break
		}
		sock.Close()
		if n.cfg.Port != 0 || attempt > 128 {
			return fmt.Errorf("brunet: node %s: %w", n.addr, err)
		}
	}
	n.sock = sock
	n.sock.OnRecv = n.recv
	n.slisten = sl
	n.private = URI{Transport: n.cfg.Transport, EP: sock.LocalEndpoint()}
	n.bootstrap = append([]URI(nil), bootstrap...)
	n.up = true

	n.near = newNearOverlord(n)
	n.far = newFarOverlord(n)
	n.repair = newRepairOverlord(n)
	n.tun = newTunnelOverlord(n)
	if n.cfg.Shortcut != nil {
		n.sco = newShortcutOverlord(n, *n.cfg.Shortcut)
	}

	n.near.start()
	n.far.start()
	n.repair.start()
	n.tun.start()
	if n.sco != nil {
		n.sco.start()
	}
	// The health sampler runs jitter-free (no RNG draw) and read-only, so
	// arming it adds events without perturbing any protocol decision.
	if n.flight != nil && n.flight.health > 0 {
		n.tickers = append(n.tickers, n.tick(n.flight.health, 0, n.flightHealthTick))
	}
	return nil
}

// Stop kills the node ungracefully — the moral equivalent of the paper's
// "killing and restarting the user-level IPOP program" during VM
// migration. No close messages are sent; peers discover the death through
// ping timeouts.
func (n *Node) Stop() {
	if !n.up {
		return
	}
	n.up = false
	for _, t := range n.tickers {
		t.Stop()
	}
	n.tickers = nil
	for _, lk := range n.linkers {
		lk.finish(false)
	}
	for _, c := range n.Connections() {
		c.pingTimer.Cancel()
		c.closed = true
		if c.Stream != nil {
			c.Stream.Close()
		}
		delete(n.conns, c.Peer)
	}
	n.ring.reset(n.addr)
	n.sock.Close()
	if n.slisten != nil {
		n.slisten.Close()
		n.slisten = nil
	}
	n.near, n.far, n.sco, n.repair, n.tun = nil, nil, nil, nil, nil
	n.learned = uriSet{}
	n.relayed = nil
}

// Leave gracefully departs. Structured-near neighbors get a handoff
// (leaveMsg): besides closing the link it introduces the departing node's
// other ring neighbors, so the two nodes either side of the hole link to
// each other immediately instead of discovering the death by ping timeout
// and re-converging through status gossip — the graceful path that shrinks
// the §V-C migration no-routability window. All other connections get a
// plain close.
func (n *Node) Leave() {
	if !n.up {
		return
	}
	nears := n.connsOfType(StructuredNear)
	for _, c := range nears {
		msg := leaveMsg{From: n.addr}
		for _, o := range nears {
			if o.Peer == c.Peer {
				continue
			}
			msg.Neighbors = append(msg.Neighbors, NeighborInfo{Addr: o.Peer, URIs: o.URIs})
		}
		n.sendConn(c, statusMsgSize+24*len(msg.Neighbors), msg)
		n.Stats.Inc("handoff.sent", 1)
		n.dropConnection(c, false, "leave") // leaveMsg already closes
	}
	for _, c := range n.Connections() {
		n.dropConnection(c, true, "leave")
	}
	n.Stop()
}

// IsRoutable reports whether the node holds structured-near connections on
// both ring sides (or is alone on the ring) — the paper's "fully routable"
// condition at the end of the join procedure.
func (n *Node) IsRoutable() bool {
	if !n.up {
		return false
	}
	nears := n.connsOfType(StructuredNear)
	if len(nears) == 0 {
		return len(n.bootstrap) == 0 // ring founder
	}
	// With one near connection the ring has exactly two nodes; the
	// single link covers both sides.
	return true
}

// sendDirect transmits a link-layer message over the physical network.
func (n *Node) sendDirect(ep phys.Endpoint, size int, payload any) {
	if !n.up {
		return
	}
	n.sock.Send(ep, size, payload)
}

// wire identifies how a received message's sender can be answered: a UDP
// endpoint, a TCP-transport stream, or a tunnel (relay-forwarded frames).
type wire struct {
	ep     phys.Endpoint
	stream *phys.Stream
	// tpeer/tvia are set for messages unwrapped from a tunnelFrame: the
	// tunnel peer the message came from, and the relay that carried it
	// (replies go back through the same relay). tobs is the sender's
	// physical endpoint as stamped by the relay — the only endpoint
	// observation tunnel endpoints ever get of each other.
	tpeer Addr
	tvia  Addr
	tobs  URI
}

// isTunnel reports whether the message arrived through a tunnel edge.
func (w wire) isTunnel() bool { return !w.tpeer.IsZero() }

// observed returns the sender's NAT-translated endpoint as seen here.
// Tunnel wires have no directly-observed endpoint.
func (w wire) observed() phys.Endpoint {
	if w.isTunnel() {
		return phys.Endpoint{}
	}
	if w.stream != nil {
		return w.stream.RemoteEndpoint()
	}
	return w.ep
}

// transport names the wire's transport.
func (w wire) transport() string {
	if w.isTunnel() {
		return "tunnel"
	}
	if w.stream != nil {
		return "tcp"
	}
	return "udp"
}

// replyTo answers over the same wire the message arrived on. Tunnel
// replies are wrapped in a frame and returned through the relay that
// carried the request.
func (n *Node) replyTo(w wire, size int, payload any) {
	if !n.up {
		return
	}
	if w.isTunnel() {
		rc, ok := n.conns[w.tvia]
		if !ok || rc.closed || rc.Tunneled() {
			n.Stats.Inc("tunnel.noreturn", 1)
			return
		}
		frame := tunnelFrame{From: n.addr, To: w.tpeer, Via: w.tvia, Size: size, Inner: payload}
		n.sendConn(rc, tunnelHdrSize+size, frame)
		return
	}
	if w.stream != nil {
		w.stream.SendMsg(size, payload)
		return
	}
	n.sendDirect(w.ep, size, payload)
}

// recv dispatches incoming datagrams.
func (n *Node) recv(p *phys.Packet) {
	n.handleWire(wire{ep: p.Src}, p.Payload)
}

// acceptStream hooks an inbound TCP-transport link into the dispatcher.
func (n *Node) acceptStream(st *phys.Stream) {
	w := wire{stream: st}
	st.OnMessage(func(size int, payload any) { n.handleWire(w, payload) })
}

// handleWire dispatches one link-layer message from either transport.
func (n *Node) handleWire(w wire, payload any) {
	if !n.up {
		// A stopped node silently eats anything still addressed to it;
		// give traced packets a terminal instead of a vanishing act.
		if n.flight != nil {
			if op, ok := payload.(*OverlayPacket); ok && op.Trace != 0 {
				n.flightTerminal(op, trace.OutcomeNodeDown)
			}
		}
		return
	}
	switch m := payload.(type) {
	case linkRequest:
		n.handleLinkRequest(w, m)
	case linkReply:
		n.handleLinkReply(w, m)
	case linkError:
		n.handleLinkError(m)
	case pingMsg:
		c, ok := n.conns[m.From]
		if !ok {
			// A ping for a connection we no longer hold — the
			// sender's state is stale (we timed it out after its
			// NAT rebound, or it outlived a crash). Tell it to drop
			// the zombie so its overlords re-establish properly
			// (§V-E: "detecting broken links and re-establishing
			// them").
			n.Stats.Inc("ping.stale", 1)
			n.replyTo(w, pingMsgSize, closeMsg{From: n.addr})
			return
		}
		n.touch(c)
		// Endpoint roaming: a known peer pinging from a new address
		// means its NAT rebound the mapping (§V-E); adopt the fresh
		// endpoint so our return path follows the translation change.
		if c.Stream == nil && w.stream == nil && !w.isTunnel() && !c.Tunneled() && w.ep != c.EP {
			c.EP = w.ep
			n.Stats.Inc("conn.ep_roamed", 1)
		}
		n.replyTo(w, pingMsgSize, pongMsg{From: n.addr, Seq: m.Seq, Load: n.relayLoad()})
	case pongMsg:
		if c, ok := n.conns[m.From]; ok {
			n.handlePong(c, m)
		}
	case closeMsg:
		if c, ok := n.conns[m.From]; ok {
			n.dropConnection(c, false, "peer_close")
		}
	case leaveMsg:
		n.handleLeave(m)
	case suspectMsg:
		n.handleSuspect(m)
	case tunnelFrame:
		n.handleTunnelFrame(w, m)
	case tunnelNoRoute:
		if n.tun != nil {
			n.tun.noRoute(m.Relay, m.To)
		}
	case statusMsg:
		if c, ok := n.conns[m.From]; ok {
			n.touch(c)
		}
		if n.near != nil {
			n.near.handleStatus(m)
		}
	case *OverlayPacket:
		if c, ok := n.conns[m.Src]; ok {
			n.touch(c)
		}
		n.routePacket(m, m.Src)
	default:
		n.Stats.Inc("recv.unknown", 1)
	}
}

// SendTo originates an overlay packet carrying application data toward the
// node owning dst.
func (n *Node) SendTo(dst Addr, mode DeliveryMode, d AppData) {
	if !n.up {
		return
	}
	// Pooled origination: the AppData lives inside the packet and Payload
	// boxes a pointer to it, so a SendTo on the hot path allocates nothing
	// once the pool is warm.
	pkt := n.acquirePkt()
	pkt.Src, pkt.Dst, pkt.Mode = n.addr, dst, mode
	pkt.Hops = 0
	pkt.MaxHops = n.cfg.MaxHops
	pkt.Size = overlayHdrSize + d.Size
	pkt.app = d
	pkt.Payload = &pkt.app
	pkt.pooled = true
	if n.sco != nil {
		n.sco.observe(dst, 1)
	}
	n.routePacket(pkt, n.addr)
}

// routePacket implements greedy routing (§IV-A): forward to the structured
// connection closest to the destination; deliver locally when no neighbor
// is strictly closer. Packets arriving over a leaf connection are never
// bounced straight back to the leaf child (the leaf target acts as the
// child's forwarding agent into the ring).
func (n *Node) routePacket(pkt *OverlayPacket, from Addr) {
	if !n.up {
		if n.flight != nil && pkt.Trace != 0 {
			n.flightTerminal(pkt, trace.OutcomeNodeDown)
		}
		n.releasePkt(pkt)
		return
	}
	// Sampling happens at origination only: a packet entering the router
	// with zero hops from this node's own address.
	if n.flight != nil && pkt.Trace == 0 && pkt.Hops == 0 && from == n.addr {
		n.flightSample(pkt)
	}
	if pkt.Dst == n.addr {
		n.deliver(pkt)
		n.releasePkt(pkt)
		return
	}
	if pkt.Hops >= pkt.MaxHops {
		n.statHopsExceeded.Inc(1)
		if n.flight != nil && pkt.Trace != 0 {
			n.flightTerminal(pkt, trace.OutcomeHopsExceeded)
		}
		n.releasePkt(pkt)
		return
	}
	best := n.nearestConn(pkt.Dst, from)
	if best == nil || (best.Peer != pkt.Dst && pkt.Dst.CmpRingDist(best.Peer, n.addr) >= 0) {
		// Nobody closer: we are the nearest live node.
		n.deliver(pkt)
		n.releasePkt(pkt)
		return
	}
	pkt.Hops++
	n.statForwarded.Inc(1)
	n.sendConn(best, pkt.Size, pkt)
	// After sendConn, so a tunnel hop's record names the relay this very
	// frame used; a packet that died inside sendConn has had its context
	// consumed by the terminal record and skips the hop record here.
	if n.flight != nil && pkt.Trace != 0 {
		n.flightHop(pkt, best)
	}
}

// deliver terminates a packet at this node. Exact-mode packets for another
// address die here (we are merely the nearest neighbor of a down node);
// nearest-mode packets are consumed, which is what lets CTMs find ring
// positions and far targets.
func (n *Node) deliver(pkt *OverlayPacket) {
	exact := pkt.Dst == n.addr
	if !exact && pkt.Mode == DeliverExact {
		n.statDeadLetter.Inc(1)
		if n.flight != nil && pkt.Trace != 0 {
			n.flightTerminal(pkt, trace.OutcomeDeadLetter)
		}
		return
	}
	if n.flight != nil && pkt.Trace != 0 {
		if exact {
			n.flightTerminal(pkt, trace.OutcomeDelivered)
		} else {
			n.flightTerminal(pkt, trace.OutcomeNearest)
		}
	}
	switch m := pkt.Payload.(type) {
	case ctmRequest:
		n.handleCTMRequest(pkt, m, exact)
	case ctmReply:
		n.handleCTMReply(m)
	case forwarded:
		n.handleForwarded(m)
	case AppData:
		n.deliverApp(pkt.Src, m)
	case *AppData:
		// Pooled packet: the AppData is inline in the packet; hand the
		// handler a copy, since the packet is released right after this.
		n.deliverApp(pkt.Src, *m)
	default:
		n.statUnknownOverlay.Inc(1)
	}
}

// deliverApp dispatches delivered application data to its protocol
// handler.
func (n *Node) deliverApp(src Addr, m AppData) {
	n.statDelivered.Inc(1)
	if n.sco != nil {
		n.sco.observe(src, 1)
	}
	if h, ok := n.handlers[m.Proto]; ok {
		h(src, m)
	} else {
		n.statNoProto.Inc(1)
	}
}

// relayCandidates lists this node's directly-connected peers (capped, in
// address order) for a CTM's Relays field: the connection-table exchange
// that lets two nodes that cannot link directly find mutual neighbors to
// tunnel through.
func (n *Node) relayCandidates() []NeighborInfo {
	max := n.cfg.TunnelMaxRelays
	if max <= 0 || len(n.conns) == 0 {
		return nil
	}
	out := make([]NeighborInfo, 0, max)
	for _, c := range n.Connections() {
		if c.Tunneled() || c.closed {
			continue
		}
		out = append(out, NeighborInfo{Addr: c.Peer, URIs: c.URIs, Load: c.peerLoad})
		if len(out) >= max {
			break
		}
	}
	return out
}

// sendCTM routes a Connect-To-Me request toward target (§IV-B1).
func (n *Node) sendCTM(target Addr, t ConnType, mode DeliveryMode, replyVia Addr) {
	n.tokenSeq++
	req := ctmRequest{
		From:     n.addr,
		Type:     t,
		Token:    n.tokenSeq,
		URIs:     n.URIs(),
		ReplyVia: replyVia,
		Relays:   n.relayCandidates(),
	}
	pkt := &OverlayPacket{
		Src:     n.addr,
		Dst:     target,
		Mode:    mode,
		MaxHops: n.cfg.MaxHops,
		Size:    overlayHdrSize + ctmMsgSize + 16*len(req.URIs) + 24*len(req.Relays),
		Payload: req,
	}
	n.Stats.Inc("ctm.sent", 1)
	if replyVia != (Addr{}) && len(n.conns) > 0 {
		// Joining: hand the packet to the leaf target to route.
		if c, ok := n.conns[replyVia]; ok {
			pkt.Hops++
			n.sendConn(c, pkt.Size, pkt)
			return
		}
	}
	n.routePacket(pkt, n.addr)
}

// handleCTMRequest answers a CTM: reply with our URIs (routed back over
// the overlay, via the requester's leaf forwarder when asked) and
// simultaneously start linking toward the requester — the bidirectionality
// that makes NAT hole punching work (§IV-D).
func (n *Node) handleCTMRequest(pkt *OverlayPacket, req ctmRequest, exact bool) {
	if req.From == n.addr {
		return // own join CTM came back: ring too small to matter
	}
	n.Stats.Inc("ctm.received", 1)
	if n.tun != nil {
		n.tun.learnCandidates(req.From, req.URIs, req.Relays)
	}
	rep := ctmReply{From: n.addr, To: req.From, Type: req.Type, Token: req.Token,
		URIs: n.URIs(), Relays: n.relayCandidates()}
	size := overlayHdrSize + ctmMsgSize + 16*len(rep.URIs) + 24*len(rep.Relays)
	if !req.ReplyVia.IsZero() {
		fw := forwarded{To: req.From, Inner: rep, Size: size}
		n.routePacket(&OverlayPacket{
			Src: n.addr, Dst: req.ReplyVia, Mode: DeliverExact,
			MaxHops: n.cfg.MaxHops, Size: size + 16, Payload: fw,
		}, n.addr)
	} else {
		n.routePacket(&OverlayPacket{
			Src: n.addr, Dst: req.From, Mode: DeliverExact,
			MaxHops: n.cfg.MaxHops, Size: size, Payload: rep,
		}, n.addr)
	}
	// Responder-side linking. A CTM from a peer we only hold a tunnel to
	// doubles as an upgrade probe: re-run direct linking with the fresh
	// URIs the CTM carries (both sides do, which is what punches holes).
	if c, ok := n.conns[req.From]; ok && c.Tunneled() {
		n.startUpgradeLinker(req.From, c.upgradeURIs(req.URIs), req.Type)
	} else {
		n.startLinker(req.From, req.URIs, req.Type)
	}

	// A join CTM (nearest-mode, addressed to the joiner itself) also
	// concerns the ring neighbor on the other side of the joining
	// address: pass one copy across so both future neighbors link
	// (§IV-C "form structured near connections with its left and right
	// neighbors").
	if !exact && req.Type == StructuredNear && pkt.Dst == req.From && pkt.Hops < pkt.MaxHops {
		if other := n.neighborAcross(req.From); other != nil {
			// CTM packets are never pooled (see OverlayPacket), so this
			// shallow copy cannot alias a pooled payload; clear the pool
			// links anyway so the copy is self-evidently unpooled. The
			// trace context is cleared too: the original traced packet
			// terminated here, and a copy re-emitting under the same id
			// would corrupt the hop chain.
			cp := *pkt
			cp.pooled, cp.nextFree = false, nil
			cp.Trace, cp.TraceStart = 0, 0
			cp.Hops++
			cp.Mode = DeliverExact
			cp.Dst = other.Peer
			n.sendConn(other, cp.Size, &cp)
		}
	}
}

// neighborAcross returns the structured-near connection on the opposite
// side of address x from this node, i.e. the other future neighbor of a
// node joining at x.
func (n *Node) neighborAcross(x Addr) *Connection {
	// x is on our right when its clockwise distance is the shorter one;
	// its other neighbor is then our closest right neighbor.
	right := n.addr.Clockwise(x).Cmp(x.Clockwise(n.addr)) < 0
	return n.firstOnSide(right)
}

// handleCTMReply starts initiator-side linking.
func (n *Node) handleCTMReply(rep ctmReply) {
	if rep.To != n.addr {
		return
	}
	n.Stats.Inc("ctm.replied", 1)
	if n.tun != nil {
		n.tun.learnCandidates(rep.From, rep.URIs, rep.Relays)
	}
	if c, ok := n.conns[rep.From]; ok && c.Tunneled() {
		n.startUpgradeLinker(rep.From, c.upgradeURIs(rep.URIs), rep.Type)
		return
	}
	n.startLinker(rep.From, rep.URIs, rep.Type)
}

// handleLeave processes a graceful departure with handoff: drop the
// departing peer's connection (the leaveMsg doubles as its close) and link
// toward the introduced neighbors we now want — typically our new ring
// neighbor across the hole the departure opens. Both sides of the hole
// receive the same introduction and both initiate, which is what lets the
// handoff traverse NATs (bidirectional linking, as with CTMs).
func (n *Node) handleLeave(m leaveMsg) {
	if c, ok := n.conns[m.From]; ok {
		n.dropConnection(c, false, "peer_leave")
	}
	n.Stats.Inc("handoff.received", 1)
	for _, info := range m.Neighbors {
		if info.Addr == n.addr || len(info.URIs) == 0 {
			continue
		}
		if _, ok := n.conns[info.Addr]; ok {
			continue
		}
		if n.near != nil && n.near.wanted(info.Addr) {
			n.Stats.Inc("handoff.linked", 1)
			n.startLinker(info.Addr, info.URIs, StructuredNear)
		}
	}
}

// handleSuspect reacts to a forwarded death verdict: if we also hold a
// connection to the suspect, probe it immediately with a reduced retry
// budget. A live suspect answers the ping and nothing is torn down; a dead
// one is cleared in a couple of ping timeouts instead of every peer
// independently waiting out its full keepalive cycle.
func (n *Node) handleSuspect(m suspectMsg) {
	if m.Dead == n.addr {
		return
	}
	if c, ok := n.conns[m.Dead]; ok {
		n.fastProbe(c)
	}
	// A suspect that serves as a tunnel relay gets its tunnels
	// re-pointed pre-emptively: the overlord checks for alternatives now
	// instead of waiting for frames to silently vanish.
	if n.tun != nil {
		n.tun.relaySuspected(m.Dead)
	}
}

// linkFailed is the linker's terminal-failure hook: every URI toward
// target was exhausted for the given reason ("timeout" or "reject"). The
// tunnel overlord consumes it to decide when a tunnel edge is warranted.
func (n *Node) linkFailed(target Addr, t ConnType, reason string) {
	if n.tun != nil {
		n.tun.linkFailed(target, t, reason)
	}
}

// handleTunnelFrame processes one tunnel-edge frame: forward it when this
// node is the relay, unwrap and dispatch it when this node is the tunnel
// endpoint. Frames are only ever forwarded over direct connections — a
// relay whose own link to the destination is tunneled drops the frame, so
// tunnels never nest (no relay cycles, bounded path length of two hops).
func (n *Node) handleTunnelFrame(w wire, f tunnelFrame) {
	if f.To != n.addr {
		c, ok := n.conns[f.To]
		if !ok || c.closed || c.Tunneled() {
			n.Stats.Inc("tunnel.relay_noroute", 1)
			if n.flight != nil {
				if op, tok := f.Inner.(*OverlayPacket); tok && op.Trace != 0 {
					n.flightTerminal(op, trace.OutcomeRelayNoRoute)
				}
			}
			// Bounce: tell the originator this relay has no direct route
			// to To, so it fails over now rather than at ping timeout.
			if oc, live := n.conns[f.From]; live && !oc.closed && !oc.Tunneled() {
				n.sendConn(oc, pingMsgSize, tunnelNoRoute{Relay: n.addr, To: f.To})
			}
			return
		}
		// The frame is traffic from the originator on our direct link.
		if rc, rok := n.conns[f.From]; rok {
			n.touch(rc)
		}
		// Stamp the originator's wire endpoint: the tunnel endpoints
		// never see each other's addresses, and NATed originators rely
		// on this observation to keep their learned URIs fresh for the
		// direct-link upgrade path.
		f.Observed = URIEndpoint{URI: URI{Transport: w.transport(), EP: w.observed()}}
		n.Stats.Inc("tunnel.relayed", 1)
		n.noteRelayed(f.From, f.To)
		n.sendConn(c, tunnelHdrSize+f.Size, f)
		return
	}
	// Tunnel endpoint: a frame through Via proves that relay works in
	// the peer->us direction; adopt it so our own sends can fail over.
	if c, ok := n.conns[f.From]; ok && c.Tunneled() {
		if !f.Via.IsZero() && len(c.Relays) < n.cfg.TunnelMaxRelays {
			if rc, rok := n.conns[f.Via]; rok && !rc.Tunneled() && c.addRelay(f.Via) {
				n.Stats.Inc("tunnel.relay_learned", 1)
			}
		}
		// The relay stamped the peer's current wire endpoint on the
		// frame. Record it: if the peer's NAT later relaxes or re-binds,
		// this — not the peer's stale advertised list — is the endpoint
		// an upgrade attempt can actually reach.
		c.noteObserved(f.Observed.URI)
	}
	n.handleWire(wire{tpeer: f.From, tvia: f.Via, tobs: f.Observed.URI}, f.Inner)
}

// handleForwarded relays a payload to a leaf child (§IV-C: "the leaf
// target acts as forwarding agent for the new node").
func (n *Node) handleForwarded(fw forwarded) {
	c, ok := n.conns[fw.To]
	if !ok {
		n.Stats.Inc("forward.nochild", 1)
		return
	}
	n.sendConn(c, fw.Size, &OverlayPacket{
		Src: n.addr, Dst: fw.To, Mode: DeliverExact,
		MaxHops: n.cfg.MaxHops, Size: fw.Size, Payload: fw.Inner,
	})
}

// String renders a diagnostic summary.
func (n *Node) String() string {
	return fmt.Sprintf("brunet.Node{%s conns=%d up=%v}", n.addr, len(n.conns), n.up)
}
