package brunet

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func addrFromByte(b byte) Addr {
	var a Addr
	a[0] = b
	return a
}

func TestAddrStringForms(t *testing.T) {
	a := AddrFromString("node1")
	if len(a.String()) != 8 {
		t.Fatalf("short form %q", a.String())
	}
	if len(a.FullString()) != 40 {
		t.Fatalf("full form %q", a.FullString())
	}
	if a.IsZero() {
		t.Fatal("hashed address is zero")
	}
	if !Zero.IsZero() {
		t.Fatal("Zero not zero")
	}
	if a.Fmt() == "" {
		t.Fatal("Fmt empty")
	}
}

func TestAddrFromStringDeterministic(t *testing.T) {
	if AddrFromString("x") != AddrFromString("x") {
		t.Fatal("not deterministic")
	}
	if AddrFromString("x") == AddrFromString("y") {
		t.Fatal("collision on distinct inputs")
	}
}

func TestCmp(t *testing.T) {
	a, b := addrFromByte(1), addrFromByte(2)
	if a.Cmp(b) != -1 || b.Cmp(a) != 1 || a.Cmp(a) != 0 {
		t.Fatal("Cmp wrong")
	}
	if !a.Less(b) || b.Less(a) {
		t.Fatal("Less wrong")
	}
}

func TestClockwiseWraps(t *testing.T) {
	a, b := addrFromByte(250), addrFromByte(2)
	// cw distance from 250<<152 to 2<<152 wraps: (2-250) mod 256 = 8 in
	// the top byte.
	d := a.Clockwise(b)
	if d[0] != 8 {
		t.Fatalf("wrapped clockwise top byte = %d, want 8", d[0])
	}
	for _, rest := range d[1:] {
		if rest != 0 {
			t.Fatal("low bytes nonzero")
		}
	}
}

func TestRingDistSymmetricSmall(t *testing.T) {
	a, b := addrFromByte(10), addrFromByte(20)
	if a.RingDist(b) != b.RingDist(a) {
		t.Fatal("RingDist not symmetric")
	}
	if a.RingDist(a) != Zero {
		t.Fatal("self distance nonzero")
	}
	if a.RingDist(b)[0] != 10 {
		t.Fatalf("dist = %v", a.RingDist(b))
	}
}

func TestBetween(t *testing.T) {
	a, m, b := addrFromByte(10), addrFromByte(15), addrFromByte(20)
	if !Between(m, a, b) {
		t.Fatal("15 not between 10 and 20")
	}
	if Between(a, a, b) || Between(b, a, b) {
		t.Fatal("endpoints reported between")
	}
	// Wrapping arc 250 -> 5 contains 0.
	if !Between(Zero, addrFromByte(250), addrFromByte(5)) {
		t.Fatal("0 not in wrapped arc (250, 5)")
	}
	if Between(addrFromByte(100), addrFromByte(250), addrFromByte(5)) {
		t.Fatal("100 in wrapped arc (250, 5)")
	}
	// Degenerate whole-ring arc.
	if !Between(m, a, a) {
		t.Fatal("whole-ring arc excludes interior point")
	}
}

func TestOffsetRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		a := RandomAddr(rng)
		off := RandomAddr(rng)
		b := a.Offset(off)
		if a.Clockwise(b) != off {
			t.Fatalf("Clockwise(Offset) != off: a=%v off=%v", a, off)
		}
	}
}

func TestFloatRoundTrip(t *testing.T) {
	for _, u := range []float64{0, 0.25, 0.5, 0.75, 0.999} {
		a := AddrFromFloat(u)
		got := a.Float64()
		if diff := got - u; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("roundtrip %v -> %v", u, got)
		}
	}
	if AddrFromFloat(-1) != Zero {
		t.Fatal("negative not clamped")
	}
	if AddrFromFloat(2).Float64() >= 1 {
		t.Fatal(">1 not clamped")
	}
}

func TestKleinbergOffsetRange(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	half := AddrFromFloat(0.5)
	for i := 0; i < 1000; i++ {
		off := KleinbergOffset(rng)
		if off == Zero {
			t.Fatal("zero offset")
		}
		if half.Cmp(off) < 0 {
			t.Fatalf("offset beyond half ring: %v", off.Float64())
		}
	}
}

func TestKleinbergOffsetSpreadsScales(t *testing.T) {
	// The harmonic distribution should produce offsets across many
	// orders of magnitude: count how many distinct power-of-two scales
	// appear.
	rng := rand.New(rand.NewSource(3))
	scales := make(map[int]bool)
	for i := 0; i < 2000; i++ {
		u := KleinbergOffset(rng).Float64()
		e := 0
		for u < 0.5 && e < 60 {
			u *= 2
			e++
		}
		scales[e] = true
	}
	if len(scales) < 25 {
		t.Fatalf("only %d scales sampled; distribution not heavy-tailed", len(scales))
	}
}

// Property: (a + b) - b == a (mod 2^160).
func TestQuickAddSubInverse(t *testing.T) {
	f := func(ab, bb [AddrBytes]byte) bool {
		a, b := Addr(ab), Addr(bb)
		return subModRing(addModRing(a, b), b) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: RingDist(a,b) == RingDist(b,a) and is at most half the ring.
func TestQuickRingDistSymmetric(t *testing.T) {
	var halfPlus Addr
	halfPlus[0] = 0x80
	f := func(ab, bb [AddrBytes]byte) bool {
		a, b := Addr(ab), Addr(bb)
		d := a.RingDist(b)
		if d != b.RingDist(a) {
			return false
		}
		// d <= 2^159 (half the ring).
		return d.Cmp(halfPlus) <= 0 || d == halfPlus
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: triangle inequality for ring distance.
func TestQuickRingDistTriangle(t *testing.T) {
	f := func(ab, bb, cb [AddrBytes]byte) bool {
		a, b, c := Addr(ab), Addr(bb), Addr(cb)
		ab2 := a.RingDist(b)
		bc := b.RingDist(c)
		ac := a.RingDist(c)
		sum := addModRing(ab2, bc)
		// If the sum overflowed half the ring, the inequality holds
		// trivially; otherwise compare.
		if sum.Cmp(ab2) < 0 { // wrapped past 2^160: treat as huge
			return true
		}
		return ac.Cmp(sum) <= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: Between(x,a,b) and Between(x,b,a) are mutually exclusive for
// distinct a,b,x (x is on exactly one arc).
func TestQuickBetweenExclusive(t *testing.T) {
	f := func(xb, ab, bb [AddrBytes]byte) bool {
		x, a, b := Addr(xb), Addr(ab), Addr(bb)
		if x == a || x == b || a == b {
			return true
		}
		cw := Between(x, a, b)
		ccw := Between(x, b, a)
		return cw != ccw
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestURISetOrderAndDedup(t *testing.T) {
	var s uriSet
	u1 := URI{Transport: "udp"}
	if s.add(URI{}) {
		t.Fatal("zero URI added")
	}
	u1.EP.Port = 1
	u2 := u1
	u2.EP.Port = 2
	if !s.add(u1) || !s.add(u2) || s.add(u1) {
		t.Fatal("set semantics wrong")
	}
	all := s.all()
	if len(all) != 2 || all[0] != u1 || all[1] != u2 {
		t.Fatalf("order lost: %v", all)
	}
}

func TestConnTypeStrings(t *testing.T) {
	for typ, want := range map[ConnType]string{
		Leaf: "leaf", StructuredNear: "structured.near",
		StructuredFar: "structured.far", Shortcut: "shortcut",
	} {
		if typ.String() != want {
			t.Errorf("%d = %q", typ, typ.String())
		}
	}
	if ConnType(9).String() != "ConnType(9)" {
		t.Error("unknown type")
	}
}

// Property: CmpClockwise agrees with materializing both clockwise
// distances — including the boundary cases where a or b equals the origin.
func TestQuickCmpClockwiseMatchesMaterialized(t *testing.T) {
	f := func(ob, ab, bb [AddrBytes]byte, collide uint8) bool {
		o, a, b := Addr(ob), Addr(ab), Addr(bb)
		switch collide % 4 { // force the degenerate alignments often
		case 1:
			a = o
		case 2:
			b = o
		case 3:
			b = a
		}
		return o.CmpClockwise(a, b) == o.Clockwise(a).Cmp(o.Clockwise(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: CmpRingDist agrees with materializing both bidirectional ring
// distances — including exact matches and antipodal (2^159) alignments.
func TestQuickCmpRingDistMatchesMaterialized(t *testing.T) {
	var half Addr
	half[0] = 0x80
	f := func(db, ab, bb [AddrBytes]byte, collide uint8) bool {
		d, a, b := Addr(db), Addr(ab), Addr(bb)
		switch collide % 5 { // force the boundary alignments often
		case 1:
			a = d
		case 2:
			b = d
		case 3:
			b = a
		case 4:
			a = d.Offset(half) // exactly half the ring away
		}
		return d.CmpRingDist(a, b) == a.RingDist(d).Cmp(b.RingDist(d))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
