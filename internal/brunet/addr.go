// Package brunet implements the structured peer-to-peer overlay at the core
// of WOW, following the Brunet protocol suite described in §IV of the
// paper: a ring of nodes ordered by 160-bit addresses, greedy routing over
// structured near and far connections, a connection protocol (Connect-To-Me
// requests routed over the overlay), a linking protocol (direct handshakes
// that try a peer's URIs one by one, punching holes through NATs), and
// adaptive shortcut connections driven by traffic inspection.
package brunet

import (
	"crypto/sha1"
	"encoding/hex"
	"fmt"
	"math"
	"math/rand"
)

// AddrBytes is the size of a Brunet address: 160 bits.
const AddrBytes = 20

// Addr is a 160-bit Brunet P2P address. Nodes are ordered around a ring by
// these addresses; all routing metrics derive from ring distance.
type Addr [AddrBytes]byte

// Zero is the all-zero address; used as "unset".
var Zero Addr

// IsZero reports whether a is the unset address.
func (a Addr) IsZero() bool { return a == Zero }

// String renders the first 8 hex digits, enough to identify nodes in logs.
func (a Addr) String() string { return hex.EncodeToString(a[:4]) }

// FullString renders all 40 hex digits.
func (a Addr) FullString() string { return hex.EncodeToString(a[:]) }

// AddrFromString derives a deterministic address by hashing s with SHA-1.
// WOW uses it to map virtual IPs to P2P addresses so that a migrated VM
// keeps its overlay identity.
func AddrFromString(s string) Addr {
	return Addr(sha1.Sum([]byte(s)))
}

// RandomAddr draws a uniformly random address from rng.
func RandomAddr(rng *rand.Rand) Addr {
	var a Addr
	for i := 0; i < AddrBytes; i += 4 {
		v := rng.Uint32()
		a[i] = byte(v >> 24)
		a[i+1] = byte(v >> 16)
		a[i+2] = byte(v >> 8)
		a[i+3] = byte(v)
	}
	return a
}

// Cmp compares addresses as 160-bit big-endian unsigned integers,
// returning -1, 0 or 1.
func (a Addr) Cmp(b Addr) int {
	for i := 0; i < AddrBytes; i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	return 0
}

// Less reports a < b in address order.
func (a Addr) Less(b Addr) bool { return a.Cmp(b) < 0 }

// addModRing returns (a + b) mod 2^160.
func addModRing(a, b Addr) Addr {
	var out Addr
	carry := 0
	for i := AddrBytes - 1; i >= 0; i-- {
		s := int(a[i]) + int(b[i]) + carry
		out[i] = byte(s)
		carry = s >> 8
	}
	return out
}

// subModRing returns (a - b) mod 2^160.
func subModRing(a, b Addr) Addr {
	var out Addr
	borrow := 0
	for i := AddrBytes - 1; i >= 0; i-- {
		d := int(a[i]) - int(b[i]) - borrow
		if d < 0 {
			d += 256
			borrow = 1
		} else {
			borrow = 0
		}
		out[i] = byte(d)
	}
	return out
}

// Clockwise returns the clockwise (increasing-address) ring distance from a
// to b: (b - a) mod 2^160.
func (a Addr) Clockwise(b Addr) Addr { return subModRing(b, a) }

// RingDist returns the bidirectional ring distance between a and b: the
// smaller of the clockwise and counter-clockwise distances. Greedy routing
// minimizes this metric, per §IV-A.
func (a Addr) RingDist(b Addr) Addr {
	cw := subModRing(b, a)
	ccw := subModRing(a, b)
	if cw.Cmp(ccw) <= 0 {
		return cw
	}
	return ccw
}

// CmpClockwise three-way-compares the clockwise distances from origin o to
// a and to b — the comparison `o.Clockwise(a).Cmp(o.Clockwise(b))` without
// materializing either distance. Since (x−o) mod 2^160 wraps exactly when
// x < o, the distances order by case analysis on which side of o each
// address sits, with no subtraction at all.
func (o Addr) CmpClockwise(a, b Addr) int {
	aWrapped := a.Cmp(o) < 0
	bWrapped := b.Cmp(o) < 0
	switch {
	case aWrapped == bWrapped:
		return a.Cmp(b)
	case aWrapped:
		return 1
	}
	return -1
}

// CmpRingDist three-way-compares the bidirectional ring distances from dst
// to a and to b — `a.RingDist(dst).Cmp(b.RingDist(dst))` without heap
// traffic: each distance is computed into a stack value and reduced to its
// ring minimum by the top-bit test (a clockwise distance ≥ 2^159 means the
// counter-clockwise direction is shorter, and the two representations sum
// to 2^160). Greedy routing's inner loop runs on this comparator.
func (dst Addr) CmpRingDist(a, b Addr) int {
	da := ringDist(a, dst)
	db := ringDist(b, dst)
	return da.Cmp(db)
}

// ringDist is RingDist with the minimum taken by the top-bit test instead
// of a second subtraction plus comparison.
func ringDist(a, dst Addr) Addr {
	d := subModRing(dst, a)
	if d[0] >= 0x80 { // d ≥ 2^159: the other way round is no longer
		d = subModRing(a, dst)
	}
	return d
}

// Between reports whether x lies strictly within the clockwise arc from a
// to b. The arc from a to a is the whole ring minus a itself.
func Between(x, a, b Addr) bool {
	if x == a || x == b {
		return false
	}
	return a.CmpClockwise(x, b) < 0 || a == b
}

// Offset returns a + offset on the ring.
func (a Addr) Offset(offset Addr) Addr { return addModRing(a, offset) }

// Float64 maps the address to [0, 1) with ~52 bits of precision; used by
// the Kleinberg far-connection sampler.
func (a Addr) Float64() float64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(a[i])
	}
	return float64(v) / math.Exp2(64)
}

// AddrFromFloat maps u in [0, 1) to an address (inverse of Float64, with
// the low 96 bits zero).
func AddrFromFloat(u float64) Addr {
	if u < 0 {
		u = 0
	}
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	v := uint64(u * math.Exp2(64))
	var a Addr
	for i := 7; i >= 0; i-- {
		a[i] = byte(v)
		v >>= 8
	}
	return a
}

// KleinbergOffset samples a clockwise ring offset with probability density
// proportional to 1/d, the small-world distribution of the paper's
// reference [37] that yields O((1/k)·log²n) routing. Offsets span
// [2^-b, 1/2) of the ring, with b chosen so the smallest offsets are still
// beyond immediate neighbors in networks of realistic size.
func KleinbergOffset(rng *rand.Rand) Addr {
	const minExp = -40.0 // 2^-40 of the ring: far beyond near neighbors
	const maxExp = -1.0  // half the ring
	e := minExp + rng.Float64()*(maxExp-minExp)
	return AddrFromFloat(math.Exp2(e))
}

// Fmt renders a short diagnostic form "addr/offset-fraction" used in ring
// dumps.
func (a Addr) Fmt() string { return fmt.Sprintf("%s(%.4f)", a.String(), a.Float64()) }
