//go:build !race

package brunet

// raceEnabled reports whether the race detector is active; allocation
// guards relax their assertions under -race because instrumentation
// changes allocation counts.
const raceEnabled = false
