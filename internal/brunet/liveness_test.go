package brunet

import (
	"testing"
	"testing/quick"

	"wow/internal/sim"
)

// TestObserveRTTJacobson pins the estimator update rule: first sample
// initializes srtt = rtt, rttvar = rtt/2; later samples fold in as
// srtt ← 7/8·srtt + 1/8·rtt, rttvar ← 3/4·rttvar + 1/4·|srtt − rtt|.
func TestObserveRTTJacobson(t *testing.T) {
	c := &Connection{}
	if _, _, ok := c.RTT(); ok {
		t.Fatal("RTT ok before any sample")
	}
	c.observeRTT(80 * sim.Millisecond)
	srtt, rttvar, ok := c.RTT()
	if !ok || srtt != 80*sim.Millisecond || rttvar != 40*sim.Millisecond {
		t.Fatalf("after first sample: srtt=%v rttvar=%v ok=%v", srtt, rttvar, ok)
	}
	c.observeRTT(40 * sim.Millisecond)
	// rttvar = (3·40ms + |80−40|ms)/4 = 40ms; srtt = (7·80ms + 40ms)/8 = 75ms
	srtt, rttvar, _ = c.RTT()
	if srtt != 75*sim.Millisecond || rttvar != 40*sim.Millisecond {
		t.Fatalf("after second sample: srtt=%v rttvar=%v", srtt, rttvar)
	}
	// Negative samples (clock weirdness) are ignored, not folded in.
	c.observeRTT(-sim.Second)
	if s2, v2, _ := c.RTT(); s2 != srtt || v2 != rttvar {
		t.Fatal("negative sample mutated the estimators")
	}
}

// TestQuickAdaptiveDeadlineClamped is the satellite property: for ANY
// sequence of RTT samples, the adaptive ping deadline stays within
// [RTOMin, RTOMax].
func TestQuickAdaptiveDeadlineClamped(t *testing.T) {
	cfg := FastTestConfig()
	cfg.AdaptiveRTO = true
	cfg.fillDefaults()
	n := &Node{cfg: cfg}
	prop := func(samplesMs []uint16) bool {
		c := &Connection{}
		for _, ms := range samplesMs {
			c.observeRTT(sim.Duration(ms) * sim.Millisecond)
		}
		d := n.pingDeadline(c)
		if !c.haveRTT {
			return d == cfg.PingTimeout // no sample yet: fixed fallback
		}
		return d >= cfg.RTOMin && d <= cfg.RTOMax
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestPingDeadlineModes: fixed unless AdaptiveRTO and a sample exist, and
// the adaptive value follows srtt + RTOK·rttvar between the clamps.
func TestPingDeadlineModes(t *testing.T) {
	cfg := FastTestConfig()
	cfg.AdaptiveRTO = true
	cfg.fillDefaults()
	n := &Node{cfg: cfg}
	c := &Connection{}
	if d := n.pingDeadline(c); d != cfg.PingTimeout {
		t.Fatalf("no-sample deadline = %v, want fixed %v", d, cfg.PingTimeout)
	}
	// srtt 800ms, rttvar 400ms → 800 + 4·400 = 2400ms, inside the clamps.
	c.observeRTT(800 * sim.Millisecond)
	want := 800*sim.Millisecond + sim.Duration(cfg.RTOK)*400*sim.Millisecond
	if d := n.pingDeadline(c); d != want {
		t.Fatalf("adaptive deadline = %v, want %v", d, want)
	}
	// A tiny RTT clamps up to the floor.
	c2 := &Connection{}
	c2.observeRTT(sim.Millisecond)
	if d := n.pingDeadline(c2); d != cfg.RTOMin {
		t.Fatalf("tiny-RTT deadline = %v, want floor %v", d, cfg.RTOMin)
	}
	// With the knob off the estimators run but the deadline stays fixed.
	off := n.cfg
	off.AdaptiveRTO = false
	nOff := &Node{cfg: off}
	if d := nOff.pingDeadline(c); d != cfg.PingTimeout {
		t.Fatalf("AdaptiveRTO=false deadline = %v, want %v", d, cfg.PingTimeout)
	}
}

// TestKarnRuleSkipsRetransmittedRounds: only a pong matching the
// outstanding seq of an un-retransmitted round yields an RTT sample.
func TestKarnRuleSkipsRetransmittedRounds(t *testing.T) {
	s := sim.New(1)
	n := &Node{sim: s, cfg: FastTestConfig()}
	n.cfg.fillDefaults()
	c := &Connection{Peer: AddrFromString("peer"), types: map[ConnType]bool{}}

	// Retransmitted round: the sample is ambiguous and must be skipped.
	c.awaiting, c.pingRetry, c.pingSentAt = 7, 1, s.Now()
	s.RunFor(100 * sim.Millisecond)
	n.handlePong(c, pongMsg{From: c.Peer, Seq: 7, Load: 2})
	if c.haveRTT {
		t.Fatal("Karn violated: retransmitted round sampled")
	}
	if c.peerLoad != 2 || !c.loadKnown {
		t.Fatalf("pong load not recorded: load=%d known=%v", c.peerLoad, c.loadKnown)
	}

	// Stale seq: not the outstanding round.
	c.awaiting, c.pingRetry, c.pingSentAt = 9, 0, s.Now()
	n.handlePong(c, pongMsg{From: c.Peer, Seq: 7})
	if c.haveRTT {
		t.Fatal("stale pong sampled")
	}

	// Clean round: sampled, and touch() resets the round state.
	c.awaiting, c.pingRetry, c.pingSentAt = 11, 0, s.Now()
	s.RunFor(30 * sim.Millisecond)
	n.handlePong(c, pongMsg{From: c.Peer, Seq: 11})
	if srtt, _, ok := c.RTT(); !ok || srtt != 30*sim.Millisecond {
		t.Fatalf("clean round: srtt=%v ok=%v, want 30ms", srtt, ok)
	}
	if c.awaiting != 0 || c.pingRetry != 0 {
		t.Fatal("pong did not reset the ping round")
	}
}

// TestFastProbeFalseSuspicion: a live peer under a fast probe answers, the
// connection survives, and the verdict is counted as a false suspicion.
func TestFastProbeFalseSuspicion(t *testing.T) {
	r := buildRing(t, 21, 4)
	n := r.nodes[0]
	var c *Connection
	for _, cand := range n.Connections() {
		if cand.awaiting == 0 && !cand.Tunneled() {
			c = cand
			break
		}
	}
	if c == nil {
		t.Fatal("no idle connection to probe")
	}
	n.fastProbe(c)
	if !c.suspected {
		t.Fatal("fast probe did not mark the connection suspected")
	}
	r.s.RunFor(sim.Second)
	if n.ConnectionTo(c.Peer) == nil {
		t.Fatal("live peer dropped by fast probe")
	}
	if c.suspected {
		t.Fatal("pong did not clear the suspicion")
	}
	if n.Stats.Get("liveness.false_suspect") != 1 {
		t.Fatalf("false_suspect = %d, want 1", n.Stats.Get("liveness.false_suspect"))
	}
	if n.Stats.Get("liveness.suspect_confirmed") != 0 {
		t.Fatal("false suspicion also counted as confirmed")
	}
}

// TestCrashConfirmsSuspicion: a fast probe against a truly dead peer ends
// in suspect_confirmed — the counterpart verdict to false_suspect — and a
// full crash never produces false suspicions anywhere in the ring.
func TestCrashConfirmsSuspicion(t *testing.T) {
	r := buildRing(t, 22, 8)
	victim := r.nodes[3]
	witness := r.nodes[4]
	c := witness.ConnectionTo(victim.Addr())
	if c == nil {
		t.Fatal("witness not linked to victim")
	}
	victim.Stop()
	// Deliver the death verdict by hand (the forwarded suspectMsg path);
	// the probe must escalate to a confirmed timeout.
	witness.handleSuspect(suspectMsg{From: r.nodes[2].Addr(), Dead: victim.Addr()})
	if !c.suspected {
		t.Fatal("fast probe did not mark the dead peer suspected")
	}
	r.s.RunFor(5 * sim.Minute)
	if witness.Stats.Get("liveness.suspect_confirmed") != 1 {
		t.Fatalf("suspect_confirmed = %d, want 1", witness.Stats.Get("liveness.suspect_confirmed"))
	}
	falsePos := int64(0)
	for _, n := range r.nodes {
		if n == victim {
			continue
		}
		falsePos += n.Stats.Get("liveness.false_suspect")
		if n.ConnectionTo(victim.Addr()) != nil {
			t.Fatalf("node %s still linked to dead victim", n.Addr())
		}
	}
	if falsePos != 0 {
		t.Fatalf("crash produced %d false suspicions", falsePos)
	}
}

// TestAdaptiveDetectsFaster: on a clean low-RTT network the adaptive
// detector declares a crashed peer dead sooner than the fixed-timeout
// detector under the identical seed and schedule.
func TestAdaptiveDetectsFaster(t *testing.T) {
	detect := func(adaptive bool) sim.Duration {
		r := newOverlayRig(23)
		cfg := FastTestConfig()
		cfg.AdaptiveRTO = adaptive
		for i := 0; i < 6; i++ {
			r.addPublic(t, nodeName(i), cfg)
			r.s.RunFor(2 * sim.Second)
		}
		r.s.RunFor(2 * sim.Minute) // settle; estimators converge
		victim := r.nodes[2]
		victim.Stop()
		start := r.s.Now()
		for step := 0; step < 600; step++ {
			r.s.RunFor(sim.Second)
			gone := true
			for _, n := range r.nodes {
				if n != victim && n.ConnectionTo(victim.Addr()) != nil {
					gone = false
					break
				}
			}
			if gone {
				return r.s.Now().Sub(start)
			}
		}
		t.Fatal("victim never fully detected")
		return 0
	}
	fixed := detect(false)
	adaptive := detect(true)
	if adaptive >= fixed {
		t.Fatalf("adaptive detection (%v) not faster than fixed (%v)", adaptive, fixed)
	}
}

// TestBestRelayScoringHysteresisFailover exercises the relay ranking
// machinery directly on a constructed node.
func TestBestRelayScoringHysteresisFailover(t *testing.T) {
	cfg := FastTestConfig()
	cfg.fillDefaults()
	n := &Node{cfg: cfg, conns: map[Addr]*Connection{}}
	mkRelay := func(name string, srttMs int, load int) *Connection {
		rc := &Connection{Peer: AddrFromString(name), types: map[ConnType]bool{StructuredNear: true}}
		if srttMs > 0 {
			rc.observeRTT(sim.Duration(srttMs) * sim.Millisecond)
		}
		rc.peerLoad = load
		n.conns[rc.Peer] = rc
		return rc
	}
	fast := mkRelay("fast", 10, 0)
	slow := mkRelay("slow", 400, 0)
	tun := &Connection{Peer: AddrFromString("tun"), Relays: []Addr{fast.Peer, slow.Peer}, types: map[ConnType]bool{}}
	sort2 := func() { // c.Relays arrives sorted in production
		if tun.Relays[1].Less(tun.Relays[0]) {
			tun.Relays[0], tun.Relays[1] = tun.Relays[1], tun.Relays[0]
		}
	}
	sort2()

	// Fresh edge: lowest score wins outright.
	if got := n.bestRelay(tun); got != fast {
		t.Fatalf("bestRelay picked %v, want fast", got.Peer)
	}
	if tun.activeRelay != fast.Peer {
		t.Fatal("activeRelay not anchored")
	}

	// Load pushes the fast relay's score past the slow one (default
	// penalty 25ms/pair: 10ms + 20·25ms = 510ms vs 400ms), beating the
	// 50ms hysteresis → switch, counted.
	fast.peerLoad = 20
	if got := n.bestRelay(tun); got != slow {
		t.Fatalf("loaded relay kept the edge; got %v", got.Peer)
	}
	if n.Stats.Get("tunnel.relay_switched") != 1 {
		t.Fatalf("relay_switched = %d, want 1", n.Stats.Get("tunnel.relay_switched"))
	}

	// A challenger within the hysteresis margin does NOT displace the
	// active relay (fast at 435ms vs active slow at 400ms: worse anyway;
	// make fast barely better instead: load 15 → 385ms, within 50ms).
	fast.peerLoad = 15
	if got := n.bestRelay(tun); got != slow {
		t.Fatalf("hysteresis failed to hold the active relay; got %v", got.Peer)
	}
	if n.Stats.Get("tunnel.relay_switched") != 1 {
		t.Fatal("within-margin challenger counted as a switch")
	}

	// The active relay dying fails over instantly to the survivor.
	delete(n.conns, slow.Peer)
	if got := n.bestRelay(tun); got != fast {
		t.Fatalf("failover picked %v, want fast", got)
	}
	if n.Stats.Get("tunnel.relay_failover") != 1 {
		t.Fatalf("relay_failover = %d, want 1", n.Stats.Get("tunnel.relay_failover"))
	}

	// No live relays at all.
	delete(n.conns, fast.Peer)
	if got := n.bestRelay(tun); got != nil {
		t.Fatalf("bestRelay with no relays = %v, want nil", got)
	}
}

// TestRelayScoreDefaults: before any RTT sample the score falls back to
// PingTimeout, so an unmeasured relay never beats a measured fast one but
// ties (and address order) preserve the old first-live-wins behavior.
func TestRelayScoreDefaults(t *testing.T) {
	cfg := FastTestConfig()
	cfg.fillDefaults()
	n := &Node{cfg: cfg, conns: map[Addr]*Connection{}}
	unmeasured := &Connection{Peer: AddrFromString("x"), types: map[ConnType]bool{}}
	if got := n.relayScore(unmeasured); got != cfg.PingTimeout {
		t.Fatalf("unmeasured score = %v, want PingTimeout %v", got, cfg.PingTimeout)
	}
	measured := &Connection{Peer: AddrFromString("y"), types: map[ConnType]bool{}}
	measured.observeRTT(20 * sim.Millisecond)
	if n.relayScore(measured) >= n.relayScore(unmeasured) {
		t.Fatal("measured fast relay does not outrank unmeasured one")
	}
	measured.peerLoad = 3
	want := 20*sim.Millisecond + 3*cfg.RelayLoadPenalty
	if got := n.relayScore(measured); got != want {
		t.Fatalf("loaded score = %v, want %v", got, want)
	}
}
