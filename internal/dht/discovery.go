package dht

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"wow/internal/sim"
)

// Discovery is the decentralized resource-discovery service of the
// paper's §VI future work, built on the DHT: every compute node
// advertises itself under a well-known key with a TTL and refreshes the
// advertisement periodically; any node can enumerate the live pool with a
// single Get — no central collector, no registration server.
type Discovery struct {
	dht    *DHT
	key    string
	ticker *sim.Ticker
}

// Advert describes one advertised resource.
type Advert struct {
	Name  string
	Speed float64
}

// encode/decode the advert as "name=speed".
func (a Advert) encode() string { return fmt.Sprintf("%s=%.3f", a.Name, a.Speed) }

func decodeAdvert(s string) (Advert, error) {
	name, speedStr, ok := strings.Cut(s, "=")
	if !ok {
		return Advert{}, fmt.Errorf("dht: malformed advert %q", s)
	}
	speed, err := strconv.ParseFloat(speedStr, 64)
	if err != nil {
		return Advert{}, fmt.Errorf("dht: malformed advert %q: %w", s, err)
	}
	return Advert{Name: name, Speed: speed}, nil
}

// NewDiscovery creates a discovery view over a pool key (e.g.
// "pool/compute").
func NewDiscovery(d *DHT, poolKey string) *Discovery {
	return &Discovery{dht: d, key: poolKey}
}

// Advertise publishes this node's resource advert and refreshes it every
// interval with a TTL of twice the interval, so crashed nodes age out of
// the pool within ~2 intervals. Failed publishes (e.g. while the node is
// still joining the ring) retry promptly rather than waiting a full
// refresh interval.
func (v *Discovery) Advertise(ad Advert, interval sim.Duration) {
	if interval == 0 {
		interval = 2 * sim.Minute
	}
	var publish func()
	retry := func() {
		v.dht.sim.After(10*sim.Second, func() {
			if v.ticker != nil {
				publish()
			}
		})
	}
	publish = func() {
		// Publishing before the node holds its ring position would
		// store the advert at whatever node is reachable through the
		// leaf connection — the wrong owner; wait for routability.
		if !v.dht.node.IsRoutable() {
			retry()
			return
		}
		v.dht.Append(v.key, ad.encode(), 2*interval, func(ok bool) {
			if !ok {
				retry()
			}
		})
	}
	v.ticker = v.dht.sim.Tick(interval, interval/10, publish)
	publish()
}

// StopAdvertising halts refreshes; the advert expires after its TTL.
func (v *Discovery) StopAdvertising() {
	if v.ticker != nil {
		v.ticker.Stop()
	}
}

// List enumerates live pool members, sorted by name.
func (v *Discovery) List(cb func(ads []Advert, ok bool)) {
	v.dht.Get(v.key, func(members []string, found bool) {
		if !found {
			cb(nil, false)
			return
		}
		out := make([]Advert, 0, len(members))
		for _, m := range members {
			ad, err := decodeAdvert(m)
			if err != nil {
				continue
			}
			out = append(out, ad)
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
		cb(out, true)
	})
}
