package dht

import "testing"

// FuzzAdvertCodec checks the advert decoder never panics and round-trips
// what the encoder produces.
func FuzzAdvertCodec(f *testing.F) {
	f.Add("node002=1.330")
	f.Add("x=")
	f.Add("=1.0")
	f.Add("noequals")
	f.Fuzz(func(t *testing.T, s string) {
		ad, err := decodeAdvert(s)
		if err != nil {
			return
		}
		rt, err2 := decodeAdvert(ad.encode())
		if err2 != nil {
			t.Fatalf("re-decode of %q (from %q): %v", ad.encode(), s, err2)
		}
		if rt.Name != ad.Name {
			t.Fatalf("name roundtrip: %q -> %q", ad.Name, rt.Name)
		}
	})
}
