package dht

import (
	"fmt"
	"testing"

	"wow/internal/brunet"
	"wow/internal/phys"
	"wow/internal/sim"
)

type rig struct {
	s     *sim.Simulator
	net   *phys.Network
	nodes []*brunet.Node
	dhts  []*DHT
}

func newRig(t *testing.T, seed int64, n int) *rig {
	t.Helper()
	s := sim.New(seed)
	net := phys.NewNetwork(s, phys.UniformLatency(
		phys.PathModel{OneWay: sim.Millisecond},
		phys.PathModel{OneWay: 10 * sim.Millisecond},
	))
	r := &rig{s: s, net: net}
	cfg := brunet.FastTestConfig()
	site := net.AddSite("net")
	for i := 0; i < n; i++ {
		h := net.AddHost(fmt.Sprintf("h%02d", i), site, net.Root(), phys.HostConfig{})
		bn := brunet.NewNode(h, brunet.AddrFromString(fmt.Sprintf("dht-node-%02d", i)), cfg)
		var boot []brunet.URI
		if i > 0 {
			boot = []brunet.URI{r.nodes[0].BootstrapURI()}
		}
		if err := bn.Start(boot); err != nil {
			t.Fatal(err)
		}
		r.nodes = append(r.nodes, bn)
		r.dhts = append(r.dhts, New(bn, Config{}))
		s.RunFor(2 * sim.Second)
	}
	s.RunFor(60 * sim.Second)
	return r
}

func TestPutGetRoundTrip(t *testing.T) {
	r := newRig(t, 1, 12)
	var got []string
	found := false
	r.dhts[0].Append("jobs/queue", "alpha", 0, func(ok bool) {
		if !ok {
			t.Error("append not acked")
		}
	})
	r.s.RunFor(5 * sim.Second)
	// Read from a different node entirely.
	r.dhts[7].Get("jobs/queue", func(members []string, ok bool) { got, found = members, ok })
	r.s.RunFor(5 * sim.Second)
	if !found || len(got) != 1 || got[0] != "alpha" {
		t.Fatalf("get = %v found=%v", got, found)
	}
}

func TestSetSemantics(t *testing.T) {
	r := newRig(t, 2, 10)
	for i, v := range []string{"a", "b", "c", "b"} { // duplicate "b"
		r.dhts[i%len(r.dhts)].Append("set", v, 0, nil)
	}
	r.s.RunFor(5 * sim.Second)
	var got []string
	r.dhts[9].Get("set", func(members []string, ok bool) { got = members })
	r.s.RunFor(5 * sim.Second)
	if len(got) != 3 {
		t.Fatalf("set = %v, want 3 distinct members", got)
	}
}

func TestMissingKey(t *testing.T) {
	r := newRig(t, 3, 8)
	called := false
	r.dhts[0].Get("no/such/key", func(members []string, ok bool) {
		called = true
		if ok || len(members) != 0 {
			t.Errorf("missing key returned %v ok=%v", members, ok)
		}
	})
	r.s.RunFor(15 * sim.Second)
	if !called {
		t.Fatal("callback never fired")
	}
}

func TestTTLExpiry(t *testing.T) {
	r := newRig(t, 4, 8)
	r.dhts[0].Append("ephemeral", "x", 30*sim.Second, nil)
	r.s.RunFor(5 * sim.Second)
	var live bool
	r.dhts[1].Get("ephemeral", func(m []string, ok bool) { live = ok })
	r.s.RunFor(5 * sim.Second)
	if !live {
		t.Fatal("member not visible before TTL")
	}
	r.s.RunFor(sim.Minute)
	r.dhts[1].Get("ephemeral", func(m []string, ok bool) { live = ok })
	r.s.RunFor(5 * sim.Second)
	if live {
		t.Fatal("member visible after TTL expiry")
	}
}

func TestReplicaServesAfterOwnerCrash(t *testing.T) {
	r := newRig(t, 5, 14)
	r.dhts[0].Append("durable", "payload", sim.Hour, nil)
	r.s.RunFor(5 * sim.Second)

	// Find and kill the owner (the node nearest the key).
	keyAddr := KeyAddr("durable")
	owner := 0
	for i, n := range r.nodes {
		if n.Addr().RingDist(keyAddr).Cmp(r.nodes[owner].Addr().RingDist(keyAddr)) < 0 {
			owner = i
		}
	}
	if r.dhts[owner].Entries() == 0 {
		t.Fatal("computed owner holds nothing; ownership mapping broken")
	}
	r.nodes[owner].Stop()
	// Let the ring repair (fast config: dead links detected in seconds).
	r.s.RunFor(2 * sim.Minute)

	reader := (owner + 3) % len(r.nodes)
	var got []string
	found := false
	r.dhts[reader].Get("durable", func(members []string, ok bool) { got, found = members, ok })
	r.s.RunFor(10 * sim.Second)
	if !found || len(got) != 1 {
		t.Fatalf("replica did not serve after owner crash: %v found=%v", got, found)
	}
}

func TestDiscoveryAdvertiseAndList(t *testing.T) {
	r := newRig(t, 6, 12)
	for i, d := range r.dhts[:6] {
		disc := NewDiscovery(d, "pool/compute")
		disc.Advertise(Advert{Name: fmt.Sprintf("node%02d", i), Speed: 1 + float64(i)/10}, sim.Minute)
	}
	r.s.RunFor(10 * sim.Second)

	lister := NewDiscovery(r.dhts[9], "pool/compute")
	var ads []Advert
	lister.List(func(a []Advert, ok bool) { ads = a })
	r.s.RunFor(5 * sim.Second)
	if len(ads) != 6 {
		t.Fatalf("discovered %d of 6 machines: %v", len(ads), ads)
	}
	if ads[0].Name != "node00" || ads[0].Speed != 1.0 {
		t.Fatalf("advert decode: %+v", ads[0])
	}
}

func TestDiscoveryCrashAgesOut(t *testing.T) {
	r := newRig(t, 7, 12)
	var discs []*Discovery
	for i, d := range r.dhts[:4] {
		disc := NewDiscovery(d, "pool/x")
		disc.Advertise(Advert{Name: fmt.Sprintf("m%d", i), Speed: 1}, 30*sim.Second)
		discs = append(discs, disc)
	}
	r.s.RunFor(10 * sim.Second)

	// m0 stops refreshing (crash); after ~2 intervals it ages out.
	discs[0].StopAdvertising()
	r.s.RunFor(3 * sim.Minute)

	lister := NewDiscovery(r.dhts[8], "pool/x")
	var ads []Advert
	lister.List(func(a []Advert, ok bool) { ads = a })
	r.s.RunFor(5 * sim.Second)
	if len(ads) != 3 {
		t.Fatalf("pool = %v, want m0 aged out", ads)
	}
	for _, a := range ads {
		if a.Name == "m0" {
			t.Fatal("crashed member still advertised")
		}
	}
}

func TestAdvertCodec(t *testing.T) {
	ad := Advert{Name: "node002", Speed: 1.33}
	rt, err := decodeAdvert(ad.encode())
	if err != nil || rt != ad {
		t.Fatalf("roundtrip %v -> %v (%v)", ad, rt, err)
	}
	for _, bad := range []string{"", "noequals", "x=notafloat"} {
		if _, err := decodeAdvert(bad); err == nil {
			t.Errorf("decode(%q) accepted", bad)
		}
	}
}

func TestDHTString(t *testing.T) {
	r := newRig(t, 8, 4)
	if r.dhts[0].String() == "" {
		t.Fatal("String empty")
	}
}
