// Package dht implements a distributed hash table over the Brunet
// structured ring — the direction the paper's §VI points at ("approaches
// for decentralized resource discovery, scheduling and data management
// that are suitable for large-scale systems") and the mechanism the IPOP
// lineage later adopted for virtual-IP and name resolution.
//
// Keys hash to ring addresses; the node nearest a key's address owns it
// and replicates each entry to its structured-near neighbors, so lookups
// keep succeeding when owners crash or the ring churns. Values are sets of
// strings with per-member TTLs: Append-heavy workloads (service
// advertisement) and read workloads (discovery) share one primitive.
package dht

import (
	"fmt"
	"sort"

	"wow/internal/brunet"
	"wow/internal/metrics"
	"wow/internal/sim"
)

// Proto is the overlay protocol label for DHT traffic.
const Proto = "dht"

// KeyAddr maps a key to its owner ring address.
func KeyAddr(key string) brunet.Addr {
	return brunet.AddrFromString("wow-dht:" + key)
}

// wire messages (routed as brunet.AppData payloads).
type putReq struct {
	Key    string
	Member string
	TTL    sim.Duration
	Token  uint64
	From   brunet.Addr
	// Replica marks owner-to-neighbor replication traffic, which must
	// not be re-replicated.
	Replica bool
}
type putRsp struct {
	Token uint64
	OK    bool
}
type getReq struct {
	Key   string
	Token uint64
	From  brunet.Addr
}
type getRsp struct {
	Token   uint64
	Found   bool
	Members []string
}

type member struct {
	expires sim.Time
}

type entry struct {
	members map[string]member
}

type pending struct {
	timeout sim.Timer
	onPut   func(ok bool)
	onGet   func(members []string, found bool)
}

// Config tunes the DHT.
type Config struct {
	// Replicas is how many structured-near neighbors receive copies.
	Replicas int
	// RequestTimeout bounds each Put/Get.
	RequestTimeout sim.Duration
	// DefaultTTL applies when Append is called with ttl 0.
	DefaultTTL sim.Duration
}

func (c *Config) fillDefaults() {
	if c.Replicas == 0 {
		c.Replicas = 2
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 10 * sim.Second
	}
	if c.DefaultTTL == 0 {
		c.DefaultTTL = 10 * sim.Minute
	}
}

// DHT is one node's view of the table. Every participating overlay node
// runs one (routers included, if desired); storage lands wherever the
// ring dictates.
type DHT struct {
	node  *brunet.Node
	cfg   Config
	sim   *sim.Simulator
	store map[string]*entry

	nextToken uint64
	waiting   map[uint64]*pending

	// Stats counts DHT operations.
	Stats metrics.Counter
}

// New attaches a DHT to a running overlay node.
func New(node *brunet.Node, cfg Config) *DHT {
	cfg.fillDefaults()
	d := &DHT{
		node:    node,
		cfg:     cfg,
		sim:     node.Host().Sim(),
		store:   make(map[string]*entry),
		waiting: make(map[uint64]*pending),
	}
	node.RegisterProto(Proto, d.recv)
	return d
}

// Append adds a member to the set stored under key, with the given TTL
// (0 = DefaultTTL). cb (optional) reports acknowledgment by the owner.
func (d *DHT) Append(key, memberVal string, ttl sim.Duration, cb func(ok bool)) {
	if ttl == 0 {
		ttl = d.cfg.DefaultTTL
	}
	d.nextToken++
	token := d.nextToken
	p := &pending{onPut: cb}
	d.waiting[token] = p
	p.timeout = d.sim.After(d.cfg.RequestTimeout, func() { d.fail(token) })
	d.Stats.Inc("put.sent", 1)
	d.send(KeyAddr(key), 128+len(key)+len(memberVal), putReq{
		Key: key, Member: memberVal, TTL: ttl, Token: token, From: d.node.Addr(),
	})
}

// Get fetches the live member set stored under key. cb receives found =
// false on timeout or an empty table.
func (d *DHT) Get(key string, cb func(members []string, found bool)) {
	d.nextToken++
	token := d.nextToken
	p := &pending{onGet: cb}
	d.waiting[token] = p
	p.timeout = d.sim.After(d.cfg.RequestTimeout, func() { d.fail(token) })
	d.Stats.Inc("get.sent", 1)
	d.send(KeyAddr(key), 96+len(key), getReq{Key: key, Token: token, From: d.node.Addr()})
}

// Entries reports how many keys this node stores (owner or replica).
func (d *DHT) Entries() int { return len(d.store) }

func (d *DHT) fail(token uint64) {
	p, ok := d.waiting[token]
	if !ok {
		return
	}
	delete(d.waiting, token)
	d.Stats.Inc("timeouts", 1)
	if p.onPut != nil {
		p.onPut(false)
	}
	if p.onGet != nil {
		p.onGet(nil, false)
	}
}

func (d *DHT) send(dst brunet.Addr, size int, payload any) {
	// Nearest-mode delivery: whoever currently owns the key's ring
	// region answers — exactly how ownership survives churn.
	d.node.SendTo(dst, brunet.DeliverNearest, brunet.AppData{Proto: Proto, Size: size, Data: payload})
}

func (d *DHT) sendTo(dst brunet.Addr, size int, payload any) {
	d.node.SendTo(dst, brunet.DeliverExact, brunet.AppData{Proto: Proto, Size: size, Data: payload})
}

// recv dispatches DHT traffic delivered to this node.
func (d *DHT) recv(src brunet.Addr, data brunet.AppData) {
	switch m := data.Data.(type) {
	case putReq:
		d.Stats.Inc("put.served", 1)
		d.storePut(m)
		if !m.Replica {
			d.replicate(m)
			d.sendTo(m.From, 64, putRsp{Token: m.Token, OK: true})
		}
	case putRsp:
		if p, ok := d.waiting[m.Token]; ok {
			delete(d.waiting, m.Token)
			p.timeout.Cancel()
			if p.onPut != nil {
				p.onPut(m.OK)
			}
		}
	case getReq:
		d.Stats.Inc("get.served", 1)
		members := d.liveMembers(m.Key)
		d.sendTo(m.From, 96+16*len(members), getRsp{
			Token: m.Token, Found: len(members) > 0, Members: members,
		})
	case getRsp:
		if p, ok := d.waiting[m.Token]; ok {
			delete(d.waiting, m.Token)
			p.timeout.Cancel()
			if p.onGet != nil {
				p.onGet(m.Members, m.Found)
			}
		}
	default:
		d.Stats.Inc("unknown", 1)
	}
}

func (d *DHT) storePut(m putReq) {
	e, ok := d.store[m.Key]
	if !ok {
		e = &entry{members: make(map[string]member)}
		d.store[m.Key] = e
	}
	e.members[m.Member] = member{expires: d.sim.Now().Add(m.TTL)}
}

// replicate copies an accepted put to the ring neighbors nearest the
// key's address — exactly the nodes nearest-mode routing will select if
// the owner vanishes.
func (d *DHT) replicate(m putReq) {
	m.Replica = true
	ka := KeyAddr(m.Key)
	var nears []*brunet.Connection
	for _, c := range d.node.Connections() {
		if c.Has(brunet.StructuredNear) {
			nears = append(nears, c)
		}
	}
	sort.Slice(nears, func(i, j int) bool {
		return nears[i].Peer.RingDist(ka).Cmp(nears[j].Peer.RingDist(ka)) < 0
	})
	for i, c := range nears {
		if i >= d.cfg.Replicas {
			break
		}
		d.Stats.Inc("replicated", 1)
		d.sendTo(c.Peer, 128+len(m.Key)+len(m.Member), m)
	}
}

// liveMembers returns unexpired members of a key, pruning the dead.
func (d *DHT) liveMembers(key string) []string {
	e, ok := d.store[key]
	if !ok {
		return nil
	}
	now := d.sim.Now()
	var out []string
	for v, m := range e.members {
		if m.expires <= now {
			delete(e.members, v)
			continue
		}
		out = append(out, v)
	}
	if len(e.members) == 0 {
		delete(d.store, key)
	}
	return out
}

// String renders a diagnostic summary.
func (d *DHT) String() string {
	return fmt.Sprintf("dht{node=%s keys=%d}", d.node.Addr(), len(d.store))
}
