package phys

import (
	"errors"
	"fmt"
	"sort"

	"wow/internal/sim"
)

// Streams model kernel TCP connections between hosts, the transport behind
// brunet.tcp URIs ("currently there are implementations for TCP and UDP
// transports", §IV-A). A Stream delivers messages reliably and in order;
// segments ride the same middlebox pipeline as datagrams but in the TCP
// wire namespace, so NATs and firewalls track them in separate tables —
// and sites whose firewalls drop UDP can still carry overlay links.
//
// The model is deliberately lean compared to internal/vip's guest TCP:
// overlay links carry small control messages and tunnelled packets, so
// streams provide a fixed send window with retransmission and backoff but
// no congestion control.

// ErrStreamTimeout reports a stream abandoned after retransmission gave
// up (peer crashed, path severed, NAT mapping lost).
var ErrStreamTimeout = errors.New("phys: stream timed out")

// ErrStreamRefused reports a connection attempt to a port with no
// listener.
var ErrStreamRefused = errors.New("phys: stream connection refused")

// Stream wire messages.
type streamSyn struct {
	ConnID uint64
}
type streamSynAck struct {
	ConnID uint64
}
type streamRst struct {
	ConnID uint64
}
type streamSeg struct {
	ConnID  uint64
	Seq     uint64 // 1-based message sequence
	Size    int
	Payload any
	Fin     bool
}
type streamAck struct {
	ConnID uint64
	CumAck uint64 // all messages <= CumAck received
}

const (
	streamHdrSize = 24
	streamWindow  = 64 // outstanding messages before queuing
	// streamIdleReap collects streams with no traffic in either
	// direction — orphans left behind by abandoned link attempts.
	// Active overlay links always carry sub-minute keepalives.
	streamIdleReap = 5 * sim.Minute
)

// streamState values.
const (
	streamSynSent = iota
	streamOpen
	streamClosed
)

// Stream is one reliable, ordered message connection between two hosts.
type Stream struct {
	host     *Host
	sock     *UDPSock // underlying wire endpoint (TCP namespace)
	ownsSock bool     // dialer side owns its socket; accepted streams share the listener's
	remote   Endpoint
	connID   uint64
	state    int

	// send side
	nextSeq uint64
	sendBuf map[uint64]*streamSeg // unacked, by seq
	queue   []*streamSeg          // beyond the window
	finSeq  uint64
	closing bool

	rto      sim.Duration
	retries  int
	rtoTimer sim.Timer

	// receive side
	rcvNext   uint64
	oo        map[uint64]*streamSeg
	remoteFin uint64

	onMsg   func(size int, payload any)
	onOpen  func()
	onClose func(err error)
	closed  bool

	lastActivity sim.Time
	reaper       *sim.Ticker
}

// streamPeer is the per-host stream dispatch state.
type streamPeer struct {
	listeners map[uint16]func(*Stream)
	conns     map[uint64]*Stream // by connID
}

func (h *Host) streamState() *streamPeer {
	if h.streamsSt == nil {
		h.streamsSt = &streamPeer{
			listeners: make(map[uint16]func(*Stream)),
			conns:     make(map[uint64]*Stream),
		}
	}
	return h.streamsSt
}

// StreamListener accepts inbound streams on a port.
type StreamListener struct {
	host *Host
	port uint16
	sock *UDPSock
}

// Port returns the listening port.
func (l *StreamListener) Port() uint16 { return l.port }

// Close stops accepting new streams; established streams survive.
func (l *StreamListener) Close() {
	st := l.host.streamState()
	delete(st.listeners, l.port)
	l.sock.Close()
}

// ListenStream accepts stream connections on port (0 picks ephemeral) in
// the TCP wire namespace; accept fires once per established inbound
// stream, after the handshake.
func (h *Host) ListenStream(port uint16, accept func(*Stream)) (*StreamListener, error) {
	st := h.streamState()
	sock, err := h.listenWire(WireTCP, port)
	if err != nil {
		return nil, fmt.Errorf("phys: stream listen: %w", err)
	}
	port = sock.Port()
	if _, taken := st.listeners[port]; taken {
		sock.Close()
		return nil, fmt.Errorf("phys: stream port %d already listening on %s", port, h.Name)
	}
	st.listeners[port] = accept
	l := &StreamListener{host: h, port: port, sock: sock}
	sock.OnRecv = func(p *Packet) { h.streamDispatchListener(l, p) }
	return l, nil
}

// DialStream opens a stream to dst. Messages may be sent immediately;
// they flow after the handshake. Failure surfaces via OnClose.
func (h *Host) DialStream(dst Endpoint) *Stream {
	sock, err := h.listenWire(WireTCP, 0)
	if err != nil {
		panic(fmt.Sprintf("phys: ephemeral stream port: %v", err))
	}
	s := &Stream{
		host:     h,
		sock:     sock,
		ownsSock: true,
		remote:   dst,
		connID:   h.net.allocConnID(h),
		state:    streamSynSent,
		sendBuf:  make(map[uint64]*streamSeg),
		oo:       make(map[uint64]*streamSeg),
		rto:      sim.Second,
	}
	h.streamState().conns[s.connID] = s
	sock.OnRecv = s.receive
	s.startReaper()
	s.emit(streamHdrSize, streamSyn{ConnID: s.connID})
	s.armRTO()
	return s
}

// RemoteEndpoint returns the peer's wire endpoint as observed (NAT-
// translated for accepted streams) — what a URI learner records.
func (s *Stream) RemoteEndpoint() Endpoint { return s.remote }

// LocalEndpoint returns this side's wire endpoint in its realm.
func (s *Stream) LocalEndpoint() Endpoint { return s.sock.LocalEndpoint() }

// Open reports whether the handshake completed and the stream is usable.
func (s *Stream) Open() bool { return s.state == streamOpen }

// OnMessage registers the in-order delivery callback.
func (s *Stream) OnMessage(f func(size int, payload any)) { s.onMsg = f }

// OnOpen registers the handshake-completion callback (dialer side).
func (s *Stream) OnOpen(f func()) { s.onOpen = f }

// OnClose registers the teardown callback; err is nil for a clean remote
// close.
func (s *Stream) OnClose(f func(err error)) { s.onClose = f }

// SendMsg queues one message of the given wire size for reliable in-order
// delivery. Sending on a closed stream is a silent no-op (the OnClose
// callback has already reported the failure).
func (s *Stream) SendMsg(size int, payload any) {
	if s.state == streamClosed || s.closing {
		return
	}
	s.nextSeq++
	seg := &streamSeg{ConnID: s.connID, Seq: s.nextSeq, Size: size, Payload: payload}
	s.transmitOrQueue(seg)
}

// Close flushes queued messages then closes; the peer sees OnClose(nil)
// once everything is delivered.
func (s *Stream) Close() {
	if s.state == streamClosed || s.closing {
		return
	}
	s.closing = true
	s.nextSeq++
	s.finSeq = s.nextSeq
	fin := &streamSeg{ConnID: s.connID, Seq: s.nextSeq, Fin: true}
	s.transmitOrQueue(fin)
}

func (s *Stream) transmitOrQueue(seg *streamSeg) {
	if s.state != streamOpen || uint64(len(s.sendBuf)) >= streamWindow {
		s.queue = append(s.queue, seg)
		return
	}
	s.sendBuf[seg.Seq] = seg
	s.emit(streamHdrSize+seg.Size, *seg)
	s.armRTO()
}

// drainQueue moves queued messages into the window.
func (s *Stream) drainQueue() {
	for len(s.queue) > 0 && uint64(len(s.sendBuf)) < streamWindow {
		seg := s.queue[0]
		s.queue = s.queue[1:]
		s.sendBuf[seg.Seq] = seg
		s.emit(streamHdrSize+seg.Size, *seg)
	}
	s.armRTO()
}

func (s *Stream) emit(size int, payload any) {
	s.lastActivity = s.host.Sim().Now()
	s.sock.Send(s.remote, size, payload)
}

// startReaper arms the idle collector.
func (s *Stream) startReaper() {
	s.lastActivity = s.host.Sim().Now()
	s.reaper = s.host.Sim().Tick(streamIdleReap/2, streamIdleReap/10, func() {
		if s.state == streamClosed {
			s.reaper.Stop()
			return
		}
		if s.host.Sim().Now().Sub(s.lastActivity) > streamIdleReap {
			s.abort(ErrStreamTimeout)
		}
	})
}

func (s *Stream) armRTO() {
	s.rtoTimer.Cancel()
	if s.state == streamClosed {
		return
	}
	if s.state == streamOpen && len(s.sendBuf) == 0 {
		return
	}
	s.rtoTimer = s.host.Sim().After(s.rto, s.onTimeout)
}

func (s *Stream) onTimeout() {
	if s.state == streamClosed {
		return
	}
	s.retries++
	if s.retries > 8 {
		s.abort(ErrStreamTimeout)
		return
	}
	switch s.state {
	case streamSynSent:
		s.emit(streamHdrSize, streamSyn{ConnID: s.connID})
	case streamOpen:
		// Retransmit the earliest unacked message.
		var lo uint64
		for seq := range s.sendBuf {
			if lo == 0 || seq < lo {
				lo = seq
			}
		}
		if seg, ok := s.sendBuf[lo]; ok {
			s.emit(streamHdrSize+seg.Size, *seg)
		}
	}
	s.rto *= 2
	if s.rto > 30*sim.Second {
		s.rto = 30 * sim.Second
	}
	s.armRTO()
}

func (s *Stream) abort(err error) {
	if s.state == streamClosed {
		return
	}
	s.state = streamClosed
	s.rtoTimer.Cancel()
	delete(s.host.streamState().conns, s.connID)
	if s.reaper != nil {
		s.reaper.Stop()
	}
	if s.ownsSock {
		s.sock.Close()
	}
	s.flightDiscardBuffers()
	if !s.closed {
		s.closed = true
		if s.onClose != nil {
			s.onClose(err)
		}
	}
}

// flightDiscardBuffers gives every traced overlay packet still buffered in
// a dying stream a route terminal: unacked and queued messages on the send
// side, out-of-order segments held on the receive side. Buffers are walked
// in sequence order so the emitted records are deterministic. A segment
// whose payload already terminated elsewhere (delivered from a wire copy,
// or discarded by the peer's teardown of the same shared object) has a
// cleared context and stays silent.
func (s *Stream) flightDiscardBuffers() {
	if s.host.net.FlightRecorder == nil {
		return
	}
	for _, buf := range []map[uint64]*streamSeg{s.sendBuf, s.oo} {
		if len(buf) == 0 {
			continue
		}
		seqs := make([]uint64, 0, len(buf))
		for seq := range buf {
			seqs = append(seqs, seq)
		}
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		for _, seq := range seqs {
			s.host.net.flightDiscard(s.host.shard, "phys.stream_abort", buf[seq].Payload)
		}
	}
	for _, seg := range s.queue {
		s.host.net.flightDiscard(s.host.shard, "phys.stream_abort", seg.Payload)
	}
}

// receive handles wire traffic for an established or dialing stream.
func (s *Stream) receive(p *Packet) {
	s.lastActivity = s.host.Sim().Now()
	switch m := p.Payload.(type) {
	case streamSynAck:
		if m.ConnID != s.connID || s.state != streamSynSent {
			return
		}
		s.state = streamOpen
		s.retries = 0
		s.rto = sim.Second
		if s.onOpen != nil {
			s.onOpen()
		}
		s.drainQueue()
	case streamRst:
		if m.ConnID == s.connID {
			s.abort(ErrStreamRefused)
		}
	case streamAck:
		if m.ConnID != s.connID {
			return
		}
		progressed := false
		for seq := range s.sendBuf {
			if seq <= m.CumAck {
				delete(s.sendBuf, seq)
				progressed = true
			}
		}
		if progressed {
			s.retries = 0
			s.rto = sim.Second
			s.drainQueue()
		}
		if s.closing && s.finSeq > 0 && m.CumAck >= s.finSeq {
			s.abort(nil) // clean: our FIN delivered
		}
	case streamSeg:
		if m.ConnID != s.connID {
			return
		}
		s.acceptSeg(&m)
	}
}

// acceptSeg handles an inbound data segment (either side).
func (s *Stream) acceptSeg(seg *streamSeg) {
	switch {
	case seg.Seq == s.rcvNext+1:
		s.deliver(seg)
		for {
			next, ok := s.oo[s.rcvNext+1]
			if !ok {
				break
			}
			delete(s.oo, s.rcvNext+1)
			s.deliver(next)
		}
	case seg.Seq > s.rcvNext+1:
		s.oo[seg.Seq] = seg
	}
	s.emit(streamHdrSize, streamAck{ConnID: s.connID, CumAck: s.rcvNext})
	if s.remoteFin > 0 && s.rcvNext == s.remoteFin && s.state != streamClosed {
		s.abort(nil)
	}
}

func (s *Stream) deliver(seg *streamSeg) {
	s.rcvNext = seg.Seq
	if seg.Fin {
		s.remoteFin = seg.Seq
		return
	}
	if s.onMsg != nil {
		s.onMsg(seg.Size, seg.Payload)
	}
}

// streamDispatchListener routes listener-socket traffic: SYNs create
// accepted streams; everything else dispatches by connection ID.
func (h *Host) streamDispatchListener(l *StreamListener, p *Packet) {
	st := h.streamState()
	switch m := p.Payload.(type) {
	case streamSyn:
		if s, ok := st.conns[m.ConnID]; ok {
			// Duplicate SYN: our SYNACK was lost.
			s.emit(streamHdrSize, streamSynAck{ConnID: m.ConnID})
			return
		}
		accept, listening := st.listeners[l.port]
		if !listening {
			l.sock.Send(p.Src, streamHdrSize, streamRst{ConnID: m.ConnID})
			return
		}
		s := &Stream{
			host:    h,
			sock:    l.sock,
			remote:  p.Src,
			connID:  m.ConnID,
			state:   streamOpen,
			sendBuf: make(map[uint64]*streamSeg),
			oo:      make(map[uint64]*streamSeg),
			rto:     sim.Second,
		}
		st.conns[m.ConnID] = s
		s.startReaper()
		s.emit(streamHdrSize, streamSynAck{ConnID: m.ConnID})
		accept(s)
	case streamSeg:
		if s, ok := st.conns[m.ConnID]; ok {
			s.remote = p.Src // track NAT rebinding
			s.lastActivity = h.Sim().Now()
			s.acceptSeg(&m)
		} else {
			l.sock.Send(p.Src, streamHdrSize, streamRst{ConnID: m.ConnID})
		}
	case streamAck:
		if s, ok := st.conns[m.ConnID]; ok {
			s.receive(p)
		}
	case streamRst:
		if s, ok := st.conns[m.ConnID]; ok {
			s.abort(ErrStreamRefused)
		}
	}
}
