package phys

import (
	"testing"

	"wow/internal/sim"
)

func lanWan() LatencyFunc {
	return UniformLatency(
		PathModel{OneWay: sim.Millisecond},
		PathModel{OneWay: 20 * sim.Millisecond},
	)
}

func TestParseIP(t *testing.T) {
	ip, err := ParseIP("10.1.2.3")
	if err != nil {
		t.Fatal(err)
	}
	if ip.String() != "10.1.2.3" {
		t.Fatalf("roundtrip = %s", ip)
	}
	for _, bad := range []string{"", "1.2.3", "1.2.3.4.5", "a.b.c.d", "256.0.0.1", "-1.0.0.1"} {
		if _, err := ParseIP(bad); err == nil {
			t.Errorf("ParseIP(%q) accepted", bad)
		}
	}
}

func TestMustParseIPPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustParseIP("not-an-ip")
}

func TestEndpointString(t *testing.T) {
	e := Endpoint{IP: MustParseIP("1.2.3.4"), Port: 80}
	if e.String() != "1.2.3.4:80" {
		t.Fatalf("got %s", e)
	}
	if e.IsZero() {
		t.Fatal("non-zero endpoint reported zero")
	}
	if !(Endpoint{}).IsZero() {
		t.Fatal("zero endpoint not reported zero")
	}
}

func TestPublicDelivery(t *testing.T) {
	s := sim.New(1)
	net := NewNetwork(s, lanWan())
	site := net.AddSite("a")
	h1 := net.AddHost("h1", site, net.Root(), HostConfig{})
	h2 := net.AddHost("h2", site, net.Root(), HostConfig{})

	sock2, err := h2.Listen(5000)
	if err != nil {
		t.Fatal(err)
	}
	// Packets are pooled and recycled after OnRecv returns: copy, don't
	// retain the pointer.
	var got Packet
	var delivered bool
	var at sim.Time
	sock2.OnRecv = func(p *Packet) { got, delivered, at = *p, true, s.Now() }

	sock1, _ := h1.Listen(0)
	sock1.Send(Endpoint{IP: h2.IP(), Port: 5000}, 100, "hello")
	s.Run()

	if !delivered {
		t.Fatal("packet not delivered")
	}
	if got.Payload != "hello" {
		t.Fatalf("payload = %v", got.Payload)
	}
	if got.Src != sock1.LocalEndpoint() {
		t.Fatalf("src = %v, want %v", got.Src, sock1.LocalEndpoint())
	}
	if at != sim.Time(sim.Millisecond) {
		t.Fatalf("arrival at %v, want 1ms LAN latency", at)
	}
}

func TestWANLatency(t *testing.T) {
	s := sim.New(1)
	net := NewNetwork(s, lanWan())
	sa, sb := net.AddSite("a"), net.AddSite("b")
	h1 := net.AddHost("h1", sa, net.Root(), HostConfig{})
	h2 := net.AddHost("h2", sb, net.Root(), HostConfig{})
	sock2, _ := h2.Listen(1)
	var at sim.Time
	sock2.OnRecv = func(p *Packet) { at = s.Now() }
	sock1, _ := h1.Listen(0)
	sock1.Send(Endpoint{IP: h2.IP(), Port: 1}, 100, nil)
	s.Run()
	if at != sim.Time(20*sim.Millisecond) {
		t.Fatalf("WAN arrival %v, want 20ms", at)
	}
}

func TestReplyToObservedSource(t *testing.T) {
	s := sim.New(1)
	net := NewNetwork(s, lanWan())
	site := net.AddSite("a")
	h1 := net.AddHost("h1", site, net.Root(), HostConfig{})
	h2 := net.AddHost("h2", site, net.Root(), HostConfig{})
	s1, _ := h1.Listen(0)
	s2, _ := h2.Listen(7)
	gotReply := false
	s1.OnRecv = func(p *Packet) { gotReply = true }
	s2.OnRecv = func(p *Packet) { s2.Send(p.Src, 50, "pong") }
	s1.Send(Endpoint{IP: h2.IP(), Port: 7}, 50, "ping")
	s.Run()
	if !gotReply {
		t.Fatal("reply never arrived")
	}
}

func TestUnroutableCounted(t *testing.T) {
	s := sim.New(1)
	net := NewNetwork(s, lanWan())
	site := net.AddSite("a")
	h1 := net.AddHost("h1", site, net.Root(), HostConfig{})
	s1, _ := h1.Listen(0)
	s1.Send(Endpoint{IP: MustParseIP("9.9.9.9"), Port: 1}, 10, nil)
	s.Run()
	if net.Stats.Get("lost.noroute") != 1 {
		t.Fatalf("stats = %v", net.Stats.String())
	}
}

func TestClosedPortCounted(t *testing.T) {
	s := sim.New(1)
	net := NewNetwork(s, lanWan())
	site := net.AddSite("a")
	h1 := net.AddHost("h1", site, net.Root(), HostConfig{})
	h2 := net.AddHost("h2", site, net.Root(), HostConfig{})
	s1, _ := h1.Listen(0)
	s1.Send(Endpoint{IP: h2.IP(), Port: 99}, 10, nil)
	s.Run()
	if net.Stats.Get("lost.noport") != 1 {
		t.Fatalf("stats = %v", net.Stats.String())
	}
}

func TestHostDownDropsAndRecovers(t *testing.T) {
	s := sim.New(1)
	net := NewNetwork(s, lanWan())
	site := net.AddSite("a")
	h1 := net.AddHost("h1", site, net.Root(), HostConfig{})
	h2 := net.AddHost("h2", site, net.Root(), HostConfig{})
	sock2, _ := h2.Listen(1)
	n := 0
	sock2.OnRecv = func(p *Packet) { n++ }
	s1, _ := h1.Listen(0)

	h2.SetUp(false)
	if h2.Up() {
		t.Fatal("SetUp(false) ignored")
	}
	s1.Send(Endpoint{IP: h2.IP(), Port: 1}, 10, nil)
	s.Run()
	if n != 0 || net.Stats.Get("lost.hostdown") != 1 {
		t.Fatalf("down host received packet; stats=%v", net.Stats.String())
	}

	h2.SetUp(true)
	s1.Send(Endpoint{IP: h2.IP(), Port: 1}, 10, nil)
	s.Run()
	if n != 1 {
		t.Fatal("recovered host did not receive")
	}
}

func TestDownSenderSendsNothing(t *testing.T) {
	s := sim.New(1)
	net := NewNetwork(s, lanWan())
	site := net.AddSite("a")
	h1 := net.AddHost("h1", site, net.Root(), HostConfig{})
	h2 := net.AddHost("h2", site, net.Root(), HostConfig{})
	sock2, _ := h2.Listen(1)
	n := 0
	sock2.OnRecv = func(p *Packet) { n++ }
	s1, _ := h1.Listen(0)
	h1.SetUp(false)
	s1.Send(Endpoint{IP: h2.IP(), Port: 1}, 10, nil)
	s.Run()
	if n != 0 {
		t.Fatal("down host sent a packet")
	}
}

func TestPortBinding(t *testing.T) {
	s := sim.New(1)
	net := NewNetwork(s, lanWan())
	site := net.AddSite("a")
	h := net.AddHost("h", site, net.Root(), HostConfig{})
	if _, err := h.Listen(1000); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Listen(1000); err == nil {
		t.Fatal("double bind allowed")
	}
	a, _ := h.Listen(0)
	b, _ := h.Listen(0)
	if a.Port() == b.Port() {
		t.Fatal("ephemeral ports collided")
	}
	a.Close()
	a.Close() // idempotent
	if _, err := h.Listen(a.Port()); err != nil {
		t.Fatal("closed port not reusable")
	}
}

func TestClosedSocketDropsInFlight(t *testing.T) {
	s := sim.New(1)
	net := NewNetwork(s, lanWan())
	site := net.AddSite("a")
	h1 := net.AddHost("h1", site, net.Root(), HostConfig{})
	h2 := net.AddHost("h2", site, net.Root(), HostConfig{})
	sock2, _ := h2.Listen(1)
	n := 0
	sock2.OnRecv = func(p *Packet) { n++ }
	s1, _ := h1.Listen(0)
	s1.Send(Endpoint{IP: h2.IP(), Port: 1}, 10, nil)
	sock2.Close()
	s.Run()
	if n != 0 {
		t.Fatal("closed socket received in-flight packet")
	}
}

func TestBandwidthSerialization(t *testing.T) {
	s := sim.New(1)
	net := NewNetwork(s, lanWan())
	site := net.AddSite("a")
	// 1 MB/s uplink: a 100 KB packet takes 100 ms to transmit.
	h1 := net.AddHost("h1", site, net.Root(), HostConfig{Bandwidth: 1e6})
	h2 := net.AddHost("h2", site, net.Root(), HostConfig{})
	sock2, _ := h2.Listen(1)
	var arrivals []sim.Time
	sock2.OnRecv = func(p *Packet) { arrivals = append(arrivals, s.Now()) }
	s1, _ := h1.Listen(0)
	s1.Send(Endpoint{IP: h2.IP(), Port: 1}, 100_000, nil)
	s1.Send(Endpoint{IP: h2.IP(), Port: 1}, 100_000, nil)
	s.Run()
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	want0 := sim.Time(101 * sim.Millisecond) // 100ms tx + 1ms prop
	want1 := sim.Time(201 * sim.Millisecond) // serialized behind first
	if arrivals[0] != want0 || arrivals[1] != want1 {
		t.Fatalf("arrivals = %v, want [%v %v]", arrivals, want0, want1)
	}
}

func TestServiceTimeAndOverload(t *testing.T) {
	s := sim.New(1)
	net := NewNetwork(s, lanWan())
	site := net.AddSite("a")
	h1 := net.AddHost("h1", site, net.Root(), HostConfig{})
	// 10ms per packet, loaded 2x => 20ms; queue capped at 50ms backlog.
	h2 := net.AddHost("h2", site, net.Root(), HostConfig{
		ServiceTime: 10 * sim.Millisecond,
		LoadFactor:  2,
		QueueLimit:  50 * sim.Millisecond,
	})
	sock2, _ := h2.Listen(1)
	n := 0
	sock2.OnRecv = func(p *Packet) { n++ }
	s1, _ := h1.Listen(0)
	for i := 0; i < 10; i++ {
		s1.Send(Endpoint{IP: h2.IP(), Port: 1}, 10, nil)
	}
	s.Run()
	// All arrive at t=1ms; backlog grows 20ms per accepted packet; with a
	// 50ms cap, packets 1-3 are accepted (backlog 0,20,40) and packet 4+
	// sees backlog 60 > 50.
	if n != 3 {
		t.Fatalf("processed %d packets, want 3 (rest overload-dropped)", n)
	}
	if net.Stats.Get("lost.overload") != 7 {
		t.Fatalf("stats = %v", net.Stats.String())
	}
}

func TestSetLoadFactorClamps(t *testing.T) {
	s := sim.New(1)
	net := NewNetwork(s, lanWan())
	site := net.AddSite("a")
	h := net.AddHost("h", site, net.Root(), HostConfig{})
	h.SetLoadFactor(0.1)
	if h.Config().LoadFactor != 1 {
		t.Fatal("LoadFactor below 1 not clamped")
	}
	h.SetLoadFactor(5)
	if h.Config().LoadFactor != 5 {
		t.Fatal("LoadFactor not applied")
	}
}

func TestWireLoss(t *testing.T) {
	s := sim.New(7)
	lossy := func(a, b *Site) PathModel {
		return PathModel{OneWay: sim.Millisecond, Loss: 0.5}
	}
	net := NewNetwork(s, lossy)
	site := net.AddSite("a")
	h1 := net.AddHost("h1", site, net.Root(), HostConfig{})
	h2 := net.AddHost("h2", site, net.Root(), HostConfig{})
	sock2, _ := h2.Listen(1)
	n := 0
	sock2.OnRecv = func(p *Packet) { n++ }
	s1, _ := h1.Listen(0)
	for i := 0; i < 1000; i++ {
		s1.Send(Endpoint{IP: h2.IP(), Port: 1}, 10, nil)
	}
	s.Run()
	if n < 400 || n > 600 {
		t.Fatalf("with 50%% loss, delivered %d of 1000", n)
	}
	if net.Stats.Get("lost.wire")+int64(n) != 1000 {
		t.Fatalf("loss accounting: delivered=%d stats=%v", n, net.Stats.String())
	}
}

func TestJitterBounds(t *testing.T) {
	s := sim.New(3)
	jittery := func(a, b *Site) PathModel {
		return PathModel{OneWay: 20 * sim.Millisecond, Jitter: 5 * sim.Millisecond}
	}
	net := NewNetwork(s, jittery)
	site := net.AddSite("a")
	h1 := net.AddHost("h1", site, net.Root(), HostConfig{})
	h2 := net.AddHost("h2", site, net.Root(), HostConfig{})
	sock2, _ := h2.Listen(1)
	var prev sim.Time
	sock2.OnRecv = func(p *Packet) {
		d := s.Now().Sub(prev)
		if d < 15*sim.Millisecond || d > 25*sim.Millisecond {
			t.Fatalf("jittered latency %v outside [15ms,25ms]", d)
		}
	}
	s1, _ := h1.Listen(0)
	for i := 0; i < 100; i++ {
		at := sim.Time(i) * sim.Time(sim.Second)
		prevAt := at
		s.At(at, func() {
			prev = prevAt
			s1.Send(Endpoint{IP: h2.IP(), Port: 1}, 10, nil)
		})
	}
	s.Run()
}

func TestRealmNextIPSkipsTaken(t *testing.T) {
	s := sim.New(1)
	net := NewNetwork(s, lanWan())
	site := net.AddSite("a")
	h1 := net.AddHost("h1", site, net.Root(), HostConfig{})
	h2 := net.AddHost("h2", site, net.Root(), HostConfig{})
	if h1.IP() == h2.IP() {
		t.Fatal("IP collision")
	}
	if net.Root().Hosts() != 2 {
		t.Fatalf("root hosts = %d", net.Root().Hosts())
	}
	if !net.Root().HasHost(h1.IP()) {
		t.Fatal("HasHost false for registered host")
	}
}

func TestMatrixLatency(t *testing.T) {
	s := sim.New(1)
	m := [][]sim.Duration{
		{0, 30 * sim.Millisecond},
		{30 * sim.Millisecond, 0},
	}
	lf := MatrixLatency(m, 0, 0, PathModel{OneWay: sim.Millisecond})
	net := NewNetwork(s, lf)
	sa, sb := net.AddSite("a"), net.AddSite("b")
	if pm := lf(sa, sb); pm.OneWay != 30*sim.Millisecond {
		t.Fatalf("inter-site = %v", pm.OneWay)
	}
	if pm := lf(sa, sa); pm.OneWay != sim.Millisecond {
		t.Fatalf("intra-site = %v", pm.OneWay)
	}
	_ = net
}

func TestNetworkString(t *testing.T) {
	s := sim.New(1)
	net := NewNetwork(s, lanWan())
	site := net.AddSite("a")
	net.AddHost("h", site, net.Root(), HostConfig{})
	if got := net.String(); got != "phys.Network{sites=1 hosts=1}" {
		t.Fatalf("String = %q", got)
	}
	if len(net.AllHosts()) != 1 {
		t.Fatal("AllHosts wrong")
	}
}
