package phys

import (
	"fmt"

	"wow/internal/sim"
)

// Host is a physical machine: it owns UDP sockets, a CPU with a finite
// packet-processing rate, and an uplink with finite bandwidth. The paper's
// PlanetLab router nodes are modelled as hosts with high LoadFactor, which
// throttles multi-hop overlay paths exactly as observed in §V-B.
type Host struct {
	net   *Network
	Name  string
	Site  *Site
	realm *Realm
	// uid is the host's network-wide creation index (1-based): unique
	// across all realms, unlike ip, which repeats behind every NAT. Sharded
	// stream connection IDs are qualified by it.
	uid uint32
	ip  IP
	cfg HostConfig
	up  bool

	socks     map[wirePortKey]*UDPSock
	nextPorts map[uint8]uint16
	streamsSt *streamPeer

	txBusyUntil  sim.Time // uplink serialization
	cpuBusyUntil sim.Time // receive-path CPU serialization

	// shard/sim locate the host in a sharded network: all of the host's
	// events run on shard's Simulator. In an unsharded network shard is 0
	// and sim aliases net.Sim, so host code schedules uniformly.
	shard int
	sim   *sim.Simulator
	// nextConnID allocates host-scoped stream connection IDs in sharded
	// networks (a network-global counter would race across shards).
	nextConnID uint64
}

// wirePortKey namespaces ports by wire protocol, as real hosts do: UDP
// port 5000 and TCP port 5000 are independent.
type wirePortKey struct {
	proto uint8
	port  uint16
}

// IP returns the host's address in its realm.
func (h *Host) IP() IP { return h.ip }

// Realm returns the address realm the host lives in.
func (h *Host) Realm() *Realm { return h.realm }

// Network returns the owning network.
func (h *Host) Network() *Network { return h.net }

// Sim returns the simulator driving this host's events: the network's
// shared clock, or the host's shard in a sharded network. Protocol stacks
// schedule all their timers through it, which is what keeps a node's
// entire state machine on its own shard.
func (h *Host) Sim() *sim.Simulator { return h.sim }

// Shard reports the engine shard owning this host's events; 0 when the
// network is unsharded.
func (h *Host) Shard() int { return h.shard }

// Up reports whether the host is powered on.
func (h *Host) Up() bool { return h.up }

// SetUp powers the host on or off. Packets to a downed host are lost;
// sockets survive power cycling (the owning process is assumed restarted by
// higher layers).
func (h *Host) SetUp(up bool) { h.up = up }

// Config returns the host's performance model.
func (h *Host) Config() HostConfig { return h.cfg }

// SetLoadFactor changes the host's background-load multiplier, modelling
// load spikes on shared infrastructure.
func (h *Host) SetLoadFactor(f float64) {
	if f < 1 {
		f = 1
	}
	h.cfg.LoadFactor = f
}

// String renders "name(ip@site)".
func (h *Host) String() string {
	return fmt.Sprintf("%s(%s@%s)", h.Name, h.ip, h.Site.Name)
}

// receive runs the destination-side pipeline: CPU service-time queueing
// with overload drops, then delivery to the bound socket.
func (h *Host) receive(p *Packet) {
	now := h.sim.Now()
	if !h.up {
		h.net.drop(h.shard, "lost.hostdown", p)
		return
	}
	svc := sim.Duration(float64(h.cfg.ServiceTime) * h.cfg.LoadFactor)
	start := now
	if h.cpuBusyUntil > start {
		start = h.cpuBusyUntil
	}
	if start.Sub(now) > h.cfg.QueueLimit {
		h.net.drop(h.shard, "lost.overload", p)
		return
	}
	done := start.Add(svc)
	h.cpuBusyUntil = done
	h.sim.AtArg(done, finishReceive, p)
}

// finishReceive is the CPU-service-done callback: package-level so AtArg
// schedules it without a closure allocation per packet. The destination
// host rides in the packet (set by Network.send). The packet returns to
// the pool when the socket's handler returns, so handlers must not retain
// it (see Packet).
func finishReceive(a any) {
	p := a.(*Packet)
	h := p.dest
	if !h.up {
		h.net.drop(h.shard, "lost.hostdown", p)
		return
	}
	sock, ok := h.socks[wirePortKey{p.Proto, p.Dst.Port}]
	if !ok || sock.closed {
		h.net.drop(h.shard, "lost.noport", p)
		return
	}
	h.net.deliveredSh[h.shard].Inc(1)
	if sock.OnRecv != nil {
		sock.OnRecv(p)
	}
	h.net.releasePacket(h.shard, p)
}

// UDPSock is a bound wire socket on a host. Despite the name it serves
// both wire namespaces: datagram sockets (WireUDP) and the segment
// endpoints underneath Streams (WireTCP).
type UDPSock struct {
	host   *Host
	proto  uint8
	port   uint16
	closed bool
	// OnRecv is invoked for every datagram delivered to the socket, with
	// Src reflecting whatever translations NATs applied en route — the
	// address a reply should target.
	OnRecv func(p *Packet)
}

// ErrPortInUse is returned when binding an already-bound port.
var ErrPortInUse = fmt.Errorf("phys: port already bound")

// Listen binds a UDP socket on the given port. Port 0 picks an ephemeral
// port.
func (h *Host) Listen(port uint16) (*UDPSock, error) {
	return h.listenWire(WireUDP, port)
}

// listenWire binds a socket in the given wire namespace.
func (h *Host) listenWire(proto uint8, port uint16) (*UDPSock, error) {
	if port == 0 {
		for {
			port = h.nextPorts[proto]
			if port == 0 {
				port = 32768
			}
			h.nextPorts[proto] = port + 1
			if _, taken := h.socks[wirePortKey{proto, port}]; !taken {
				break
			}
		}
	} else if _, taken := h.socks[wirePortKey{proto, port}]; taken {
		return nil, fmt.Errorf("%w: %d/%d on %s", ErrPortInUse, port, proto, h.Name)
	}
	s := &UDPSock{host: h, proto: proto, port: port}
	h.socks[wirePortKey{proto, port}] = s
	return s, nil
}

// Port returns the bound port.
func (s *UDPSock) Port() uint16 { return s.port }

// Host returns the owning host.
func (s *UDPSock) Host() *Host { return s.host }

// LocalEndpoint returns the socket's endpoint as seen inside its realm
// (private address when behind NAT).
func (s *UDPSock) LocalEndpoint() Endpoint {
	return Endpoint{IP: s.host.ip, Port: s.port}
}

// Send transmits a datagram of the given size to dst. Delivery (or loss)
// is scheduled on the simulator; Send never blocks.
func (s *UDPSock) Send(dst Endpoint, size int, payload any) {
	if s.closed || !s.host.up {
		return
	}
	p := s.host.net.acquirePacket(s.host.shard)
	p.Src, p.Dst, p.Proto, p.Size, p.Payload = s.LocalEndpoint(), dst, s.proto, size, payload
	s.host.net.send(s.host, p)
}

// Close unbinds the socket. Packets in flight to it are dropped on arrival.
func (s *UDPSock) Close() {
	if s.closed {
		return
	}
	s.closed = true
	delete(s.host.socks, wirePortKey{s.proto, s.port})
}
