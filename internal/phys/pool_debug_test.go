//go:build packetdebug

package phys

import (
	"testing"

	"wow/internal/sim"
)

func debugNet() (*sim.Simulator, *Network) {
	s := sim.New(1)
	return s, NewNetwork(s, UniformLatency(
		PathModel{OneWay: sim.Millisecond},
		PathModel{OneWay: sim.Millisecond},
	))
}

func mustPanic(t *testing.T, want string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("no panic, want %q", want)
		}
	}()
	f()
}

// Double release panics under the debug pool.
func TestPacketDebugDoubleRelease(t *testing.T) {
	_, net := debugNet()
	p := net.acquirePacket(0)
	net.releasePacket(0, p)
	mustPanic(t, "double release", func() { net.releasePacket(0, p) })
}

// A released packet re-entering the delivery pipeline panics.
func TestPacketDebugUseAfterRelease(t *testing.T) {
	s, net := debugNet()
	site := net.AddSite("site")
	h := net.AddHost("h", site, net.Root(), HostConfig{})
	p := net.acquirePacket(0)
	p.Src = Endpoint{IP: h.IP(), Port: 1}
	p.Dst = Endpoint{IP: h.IP(), Port: 2}
	net.releasePacket(0, p)
	mustPanic(t, "use of released packet", func() { net.send(h, p) })
	_ = s
}

// Cross-shard pool misuse: releasing a packet on a shard that does not
// own it panics, and so does releasing it twice from different shards —
// the single-owner rule packets obey when they migrate between shard
// free lists through the engine.
func TestPacketDebugCrossShardRelease(t *testing.T) {
	_, net := debugNet()
	p := net.acquirePacket(0)
	mustPanic(t, "cross-shard release", func() { net.releasePacket(1, p) })

	q := net.acquirePacket(2)
	packetCrossShard(q, 3) // legal hand-off: ownership moves to shard 3
	mustPanic(t, "cross-shard release", func() { net.releasePacket(2, q) })
	net.releasePacket(3, q) // owner releases fine
	mustPanic(t, "double release", func() { net.releasePacket(3, q) })
}

// A shard touching a live packet it does not own panics at the pipeline
// checkpoints.
func TestPacketDebugCrossShardUse(t *testing.T) {
	_, net := debugNet()
	p := net.acquirePacket(1)
	mustPanic(t, "owned by shard 1", func() { checkPacketLive(p, 0, "send") })
	checkPacketLive(p, 1, "send") // owner passes
}

// A boundary-deferred packet crossing shards is re-stamped to the realm's
// owning shard before the inbound NAT descent runs there: the receiver
// behind the boundary sees a packet owned by its own shard, so the
// single-owner pool rule holds across realm boundaries too.
func TestPacketDebugBoundaryRestamp(t *testing.T) {
	eng := sim.NewSharded(7, 2, 1)
	defer eng.Close()
	net := NewShardedNetwork(eng, UniformLatency(
		PathModel{OneWay: sim.Millisecond},
		PathModel{OneWay: 20 * sim.Millisecond},
	))
	pubSite := net.AddSite("pub") // shard 0
	lanSite := net.AddSite("lan") // shard 1
	floor, _ := net.CrossShardFloor()
	eng.SetLookahead(floor)
	pub := net.AddHost("pub", pubSite, net.Root(), HostConfig{})
	nat := &fakeNAT{public: net.Root().NextIP()}
	lan := net.AddRealm("lan", net.Root(), nat, MustParseIP("10.0.0.1"))
	inside := net.AddHost("inside", lanSite, lan, HostConfig{})

	ps, _ := pub.Listen(200)
	is, _ := inside.Listen(100)
	ps.OnRecv = func(p *Packet) { ps.Send(p.Src, 16, "pong") }
	got := 0
	is.OnRecv = func(p *Packet) {
		got++
		if p.ownerShard != 1 {
			t.Errorf("boundary-deferred packet owned by shard %d at delivery, want 1", p.ownerShard)
		}
	}
	eng.Shard(1).At(0, func() { is.Send(Endpoint{IP: pub.IP(), Port: 200}, 32, "ping") })
	eng.RunUntil(sim.Time(sim.Second))
	if got != 1 {
		t.Fatalf("delivered %d replies through the boundary, want 1", got)
	}
}

// A released packet re-entering the pipeline at the realm boundary panics
// at the "boundary" checkpoint.
func TestPacketDebugBoundaryCheckpoint(t *testing.T) {
	eng := sim.NewSharded(7, 2, 1)
	defer eng.Close()
	net := NewShardedNetwork(eng, UniformLatency(
		PathModel{OneWay: sim.Millisecond},
		PathModel{OneWay: 20 * sim.Millisecond},
	))
	net.AddSite("pub")
	lanSite := net.AddSite("lan")
	nat := &fakeNAT{public: net.Root().NextIP()}
	lan := net.AddRealm("lan", net.Root(), nat, MustParseIP("10.0.0.1"))
	net.AddHost("inside", lanSite, lan, HostConfig{})

	p := net.acquirePacket(1)
	net.releasePacket(1, p)
	p.entry = lan // simulate a stale pointer re-entering the boundary path
	mustPanic(t, "use of released packet in boundary", func() { deliverBoundary(p) })
}

// An OnRecv handler that retains the packet sees it poisoned after the
// callback returns — the misuse the detector exists to catch.
func TestPacketDebugRetainedPacketIsPoisoned(t *testing.T) {
	s, net := debugNet()
	site := net.AddSite("site")
	a := net.AddHost("a", site, net.Root(), HostConfig{})
	b := net.AddHost("b", site, net.Root(), HostConfig{})
	bs, err := b.Listen(100)
	if err != nil {
		t.Fatal(err)
	}
	var retained *Packet
	bs.OnRecv = func(p *Packet) { retained = p }
	as, err := a.Listen(0)
	if err != nil {
		t.Fatal(err)
	}
	as.Send(Endpoint{IP: b.IP(), Port: 100}, 10, "hi")
	s.Run()
	if retained == nil {
		t.Fatal("packet not delivered")
	}
	if !retained.poisoned || retained.Size != -1 {
		t.Fatal("retained packet not poisoned after OnRecv returned")
	}
}
