//go:build packetdebug

package phys

import (
	"testing"

	"wow/internal/sim"
)

func debugNet() (*sim.Simulator, *Network) {
	s := sim.New(1)
	return s, NewNetwork(s, UniformLatency(
		PathModel{OneWay: sim.Millisecond},
		PathModel{OneWay: sim.Millisecond},
	))
}

func mustPanic(t *testing.T, want string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("no panic, want %q", want)
		}
	}()
	f()
}

// Double release panics under the debug pool.
func TestPacketDebugDoubleRelease(t *testing.T) {
	_, net := debugNet()
	p := net.acquirePacket(0)
	net.releasePacket(0, p)
	mustPanic(t, "double release", func() { net.releasePacket(0, p) })
}

// A released packet re-entering the delivery pipeline panics.
func TestPacketDebugUseAfterRelease(t *testing.T) {
	s, net := debugNet()
	site := net.AddSite("site")
	h := net.AddHost("h", site, net.Root(), HostConfig{})
	p := net.acquirePacket(0)
	p.Src = Endpoint{IP: h.IP(), Port: 1}
	p.Dst = Endpoint{IP: h.IP(), Port: 2}
	net.releasePacket(0, p)
	mustPanic(t, "use of released packet", func() { net.send(h, p) })
	_ = s
}

// Cross-shard pool misuse: releasing a packet on a shard that does not
// own it panics, and so does releasing it twice from different shards —
// the single-owner rule packets obey when they migrate between shard
// free lists through the engine.
func TestPacketDebugCrossShardRelease(t *testing.T) {
	_, net := debugNet()
	p := net.acquirePacket(0)
	mustPanic(t, "cross-shard release", func() { net.releasePacket(1, p) })

	q := net.acquirePacket(2)
	packetCrossShard(q, 3) // legal hand-off: ownership moves to shard 3
	mustPanic(t, "cross-shard release", func() { net.releasePacket(2, q) })
	net.releasePacket(3, q) // owner releases fine
	mustPanic(t, "double release", func() { net.releasePacket(3, q) })
}

// A shard touching a live packet it does not own panics at the pipeline
// checkpoints.
func TestPacketDebugCrossShardUse(t *testing.T) {
	_, net := debugNet()
	p := net.acquirePacket(1)
	mustPanic(t, "owned by shard 1", func() { checkPacketLive(p, 0, "send") })
	checkPacketLive(p, 1, "send") // owner passes
}

// An OnRecv handler that retains the packet sees it poisoned after the
// callback returns — the misuse the detector exists to catch.
func TestPacketDebugRetainedPacketIsPoisoned(t *testing.T) {
	s, net := debugNet()
	site := net.AddSite("site")
	a := net.AddHost("a", site, net.Root(), HostConfig{})
	b := net.AddHost("b", site, net.Root(), HostConfig{})
	bs, err := b.Listen(100)
	if err != nil {
		t.Fatal(err)
	}
	var retained *Packet
	bs.OnRecv = func(p *Packet) { retained = p }
	as, err := a.Listen(0)
	if err != nil {
		t.Fatal(err)
	}
	as.Send(Endpoint{IP: b.IP(), Port: 100}, 10, "hi")
	s.Run()
	if retained == nil {
		t.Fatal("packet not delivered")
	}
	if !retained.poisoned || retained.Size != -1 {
		t.Fatal("retained packet not poisoned after OnRecv returned")
	}
}
