//go:build packetdebug

package phys

import (
	"testing"

	"wow/internal/sim"
)

func debugNet() (*sim.Simulator, *Network) {
	s := sim.New(1)
	return s, NewNetwork(s, UniformLatency(
		PathModel{OneWay: sim.Millisecond},
		PathModel{OneWay: sim.Millisecond},
	))
}

func mustPanic(t *testing.T, want string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("no panic, want %q", want)
		}
	}()
	f()
}

// Double release panics under the debug pool.
func TestPacketDebugDoubleRelease(t *testing.T) {
	_, net := debugNet()
	p := net.acquirePacket()
	net.releasePacket(p)
	mustPanic(t, "double release", func() { net.releasePacket(p) })
}

// A released packet re-entering the delivery pipeline panics.
func TestPacketDebugUseAfterRelease(t *testing.T) {
	s, net := debugNet()
	site := net.AddSite("site")
	h := net.AddHost("h", site, net.Root(), HostConfig{})
	p := net.acquirePacket()
	p.Src = Endpoint{IP: h.IP(), Port: 1}
	p.Dst = Endpoint{IP: h.IP(), Port: 2}
	net.releasePacket(p)
	mustPanic(t, "use of released packet", func() { net.send(h, p) })
	_ = s
}

// An OnRecv handler that retains the packet sees it poisoned after the
// callback returns — the misuse the detector exists to catch.
func TestPacketDebugRetainedPacketIsPoisoned(t *testing.T) {
	s, net := debugNet()
	site := net.AddSite("site")
	a := net.AddHost("a", site, net.Root(), HostConfig{})
	b := net.AddHost("b", site, net.Root(), HostConfig{})
	bs, err := b.Listen(100)
	if err != nil {
		t.Fatal(err)
	}
	var retained *Packet
	bs.OnRecv = func(p *Packet) { retained = p }
	as, err := a.Listen(0)
	if err != nil {
		t.Fatal(err)
	}
	as.Send(Endpoint{IP: b.IP(), Port: 100}, 10, "hi")
	s.Run()
	if retained == nil {
		t.Fatal("packet not delivered")
	}
	if !retained.poisoned || retained.Size != -1 {
		t.Fatal("retained packet not poisoned after OnRecv returned")
	}
}
