//go:build packetdebug

package phys

import "fmt"

// Debug packet pool: a misuse detector for the pooled *Packet lifecycle.
// Holding a *Packet beyond its OnRecv/OnDrop callback is a bug — the pool
// will recycle it and the fields will silently mutate under the holder.
// Under -tags packetdebug packets are never reused: releasePacket poisons
// the packet instead of pooling it, a second release panics, and a
// poisoned packet re-entering the delivery pipeline (send, deliver, drop)
// panics at the checkpoint. CI runs the phys tests with this tag under
// -race so both misuse classes surface loudly.

// acquirePacket always allocates: released packets stay poisoned forever,
// so any retained pointer keeps tripping checks instead of aliasing a
// recycled packet.
func (n *Network) acquirePacket() *Packet { return &Packet{} }

// releasePacket poisons the packet. Fields are scrambled to obviously
// wrong values so even unchecked reads of a stale pointer misbehave
// deterministically rather than reading recycled data.
func (n *Network) releasePacket(p *Packet) {
	if p.poisoned {
		panic(fmt.Sprintf("phys: double release of packet %s->%s proto=%d", p.Src, p.Dst, p.Proto))
	}
	p.poisoned = true
	p.Src, p.Dst = Endpoint{}, Endpoint{}
	p.Size = -1
	p.Payload = "phys: use of released packet"
	p.dest = nil
}

// checkPacketLive panics if a released packet re-enters the pipeline.
func checkPacketLive(p *Packet, where string) {
	if p.poisoned {
		panic("phys: use of released packet in " + where)
	}
}
