//go:build packetdebug

package phys

import "fmt"

// Debug packet pool: a misuse detector for the pooled *Packet lifecycle.
// Holding a *Packet beyond its OnRecv/OnDrop callback is a bug — the pool
// will recycle it and the fields will silently mutate under the holder.
// Under -tags packetdebug packets are never reused: releasePacket poisons
// the packet instead of pooling it, a second release panics, and a
// poisoned packet re-entering the delivery pipeline (send, deliver, drop)
// panics at the checkpoint. The pool is also shard-aware: every packet
// carries the shard whose free list owns it (re-stamped by the engine
// hand-off when it crosses shards — including boundary-deferred packets,
// which are re-stamped to the claiming realm's owning shard before the
// inbound NAT/firewall descent runs there), and a release or pipeline
// touch by any other shard panics — the single-owner rule that keeps
// lock-free pooling sound under parallel execution. deliverBoundary
// re-checks liveness and ownership at the realm boundary ("boundary"
// checkpoint). CI runs the phys tests with this tag under -race so all
// misuse classes surface loudly.

// acquirePacket always allocates: released packets stay poisoned forever,
// so any retained pointer keeps tripping checks instead of aliasing a
// recycled packet. The new packet is owned by the acquiring shard.
func (n *Network) acquirePacket(sh int) *Packet { return &Packet{ownerShard: int32(sh)} }

// releasePacket poisons the packet. Fields are scrambled to obviously
// wrong values so even unchecked reads of a stale pointer misbehave
// deterministically rather than reading recycled data.
func (n *Network) releasePacket(sh int, p *Packet) {
	if p.poisoned {
		panic(fmt.Sprintf("phys: double release of packet %s->%s proto=%d (first released on shard %d, released again on shard %d)",
			p.Src, p.Dst, p.Proto, p.releasedBy, sh))
	}
	if int(p.ownerShard) != sh {
		panic(fmt.Sprintf("phys: cross-shard release of packet %s->%s proto=%d: owned by shard %d, released by shard %d",
			p.Src, p.Dst, p.Proto, p.ownerShard, sh))
	}
	p.poisoned = true
	p.releasedBy = int32(sh)
	p.Src, p.Dst = Endpoint{}, Endpoint{}
	p.Size = -1
	p.Payload = "phys: use of released packet"
	p.dest = nil
	p.entry = nil
}

// checkPacketLive panics if a released packet re-enters the pipeline, or
// if a shard touches a packet it does not own.
func checkPacketLive(p *Packet, sh int, where string) {
	if p.poisoned {
		panic("phys: use of released packet in " + where)
	}
	if int(p.ownerShard) != sh {
		panic(fmt.Sprintf("phys: packet owned by shard %d touched by shard %d in %s", p.ownerShard, sh, where))
	}
}

// packetCrossShard transfers pool ownership to the destination shard as
// the packet enters the engine's cross-shard lane.
func packetCrossShard(p *Packet, to int) {
	if p.poisoned {
		panic("phys: released packet crossing shards")
	}
	p.ownerShard = int32(to)
}
