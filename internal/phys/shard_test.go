package phys

import (
	"reflect"
	"sync"
	"testing"

	"wow/internal/sim"
)

// buildShardedPair stands up a two-shard network with one host per shard
// and a reply-on-receive protocol: host a fires `count` datagrams at b,
// b answers each, and both sides log (now, size) on delivery.
func runShardedPingPong(t *testing.T, workers, count int) (logA, logB []sim.Time, stats string, events uint64) {
	t.Helper()
	eng := sim.NewSharded(42, 2, workers)
	defer eng.Close()
	net := NewShardedNetwork(eng, UniformLatency(
		PathModel{OneWay: sim.Millisecond},
		PathModel{OneWay: 20 * sim.Millisecond, Jitter: 5 * sim.Millisecond},
	))
	siteA := net.AddSite("a") // shard 0
	siteB := net.AddSite("b") // shard 1
	if siteA.Shard() == siteB.Shard() {
		t.Fatal("sites landed on one shard")
	}
	floor, ok := net.CrossShardFloor()
	if !ok {
		t.Fatal("no cross-shard site pairs")
	}
	if want := 15 * sim.Millisecond; floor != want {
		t.Fatalf("CrossShardFloor = %v, want %v", floor, want)
	}
	eng.SetLookahead(floor)

	a := net.AddHost("a0", siteA, net.Root(), HostConfig{})
	b := net.AddHost("b0", siteB, net.Root(), HostConfig{})
	if a.Shard() != 0 || b.Shard() != 1 {
		t.Fatalf("host shards = %d,%d", a.Shard(), b.Shard())
	}
	as, err := a.Listen(100)
	if err != nil {
		t.Fatal(err)
	}
	bs, err := b.Listen(100)
	if err != nil {
		t.Fatal(err)
	}
	bs.OnRecv = func(p *Packet) {
		logB = append(logB, b.Sim().Now())
		bs.Send(p.Src, 16, "pong")
	}
	as.OnRecv = func(p *Packet) { logA = append(logA, a.Sim().Now()) }
	for i := 0; i < count; i++ {
		at := sim.Time(i) * sim.Time(3*sim.Millisecond)
		eng.Shard(0).At(at, func() { as.Send(Endpoint{IP: b.IP(), Port: 100}, 32, "ping") })
	}
	eng.RunUntil(sim.Time(2 * sim.Second))
	total := net.TotalStats()
	return logA, logB, total.String(), eng.Processed()
}

// TestShardedNetworkDeliversAcrossShards checks end-to-end cross-shard
// delivery and that the trace is identical no matter how many workers
// execute it.
func TestShardedNetworkDeliversAcrossShards(t *testing.T) {
	const count = 40
	a1, b1, s1, e1 := runShardedPingPong(t, 1, count)
	if len(b1) != count || len(a1) != count {
		t.Fatalf("delivered %d pings / %d pongs, want %d each; stats: %s", len(b1), len(a1), count, s1)
	}
	a2, b2, s2, e2 := runShardedPingPong(t, 2, count)
	if !reflect.DeepEqual(a1, a2) || !reflect.DeepEqual(b1, b2) {
		t.Fatal("delivery trace depends on worker count")
	}
	if s1 != s2 || e1 != e2 {
		t.Fatalf("stats/event totals depend on worker count: %q/%d vs %q/%d", s1, e1, s2, e2)
	}
}

// TestShardedRealmPinning: private realms are shard-affine. A chain is
// unpinned until its first host, the first AddHost anywhere in the chain
// pins the whole chain (top realm and nested realms both ways), realms
// added to a pinned chain inherit the pin, and a host at a different site
// is rejected.
func TestShardedRealmPinning(t *testing.T) {
	eng := sim.NewSharded(1, 2, 1)
	defer eng.Close()
	net := NewShardedNetwork(eng, UniformLatency(PathModel{}, PathModel{OneWay: sim.Millisecond}))
	s0 := net.AddSite("s0") // shard 0
	s1 := net.AddSite("s1") // shard 1

	nat := &fakeNAT{public: net.Root().NextIP()}
	lan := net.AddRealm("lan", net.Root(), nat, MustParseIP("10.0.0.1"))
	inner := net.AddRealm("inner", lan, &fakeNAT{public: MustParseIP("10.0.0.200")}, MustParseIP("192.168.0.1"))
	if lan.Site() != nil || inner.Site() != nil {
		t.Fatal("realms pinned before any host")
	}
	// First host lands in the NESTED realm: the pin must climb to the chain
	// top and cover every realm of the chain.
	net.AddHost("deep", s1, inner, HostConfig{})
	if lan.Site() != s1 || inner.Site() != s1 {
		t.Fatalf("chain not pinned to s1: lan=%v inner=%v", lan.Site(), inner.Site())
	}
	if lan.Shard() != s1.Shard() || inner.Shard() != s1.Shard() {
		t.Fatalf("chain shards = %d,%d, want %d", lan.Shard(), inner.Shard(), s1.Shard())
	}
	// A realm attached to a pinned chain inherits the pin immediately.
	late := net.AddRealm("late", lan, &fakeNAT{public: MustParseIP("10.0.0.201")}, MustParseIP("172.16.0.1"))
	if late.Site() != s1 {
		t.Fatalf("late realm did not inherit pin: %v", late.Site())
	}
	// Same-site hosts are fine anywhere in the chain.
	net.AddHost("peer", s1, lan, HostConfig{})
	// A host at another site must panic: one middlebox fronts one location.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("AddHost at a different site than the chain pin must panic")
			}
		}()
		net.AddHost("stray", s0, lan, HostConfig{})
	}()
	// The root realm never pins.
	net.AddHost("pub", s0, net.Root(), HostConfig{})
	if net.Root().Site() != nil || net.Root().Shard() != 0 {
		t.Fatal("root realm must stay unpinned")
	}
}

// runShardedNATExchange drives a NATed host (shard 1) pinging a public
// host (shard 0) and back: outbound translation happens on the sender's
// shard, the replies are boundary-deferred to the realm's owning shard.
func runShardedNATExchange(t *testing.T, workers, count int) (logIn, logOut []sim.Time, stats string, events uint64) {
	t.Helper()
	eng := sim.NewSharded(7, 2, workers)
	defer eng.Close()
	net := NewShardedNetwork(eng, UniformLatency(
		PathModel{OneWay: sim.Millisecond},
		PathModel{OneWay: 20 * sim.Millisecond, Jitter: 5 * sim.Millisecond},
	))
	pubSite := net.AddSite("pub") // shard 0
	lanSite := net.AddSite("lan") // shard 1
	floor, ok := net.CrossShardFloor()
	if !ok {
		t.Fatal("no cross-shard site pairs")
	}
	eng.SetLookahead(floor)

	pub := net.AddHost("pub", pubSite, net.Root(), HostConfig{})
	nat := &fakeNAT{public: net.Root().NextIP()}
	lan := net.AddRealm("lan", net.Root(), nat, MustParseIP("10.0.0.1"))
	inside := net.AddHost("inside", lanSite, lan, HostConfig{})
	if lan.Shard() != 1 {
		t.Fatalf("lan realm on shard %d, want 1", lan.Shard())
	}

	ps, err := pub.Listen(200)
	if err != nil {
		t.Fatal(err)
	}
	is, err := inside.Listen(100)
	if err != nil {
		t.Fatal(err)
	}
	ps.OnRecv = func(p *Packet) {
		if p.Src.IP != nat.public {
			t.Errorf("public host saw untranslated source %v", p.Src)
		}
		logOut = append(logOut, pub.Sim().Now())
		ps.Send(p.Src, 16, "pong")
	}
	is.OnRecv = func(p *Packet) {
		if p.Dst.IP != inside.IP() {
			t.Errorf("inbound translation missed: dst %v", p.Dst)
		}
		logIn = append(logIn, inside.Sim().Now())
	}
	for i := 0; i < count; i++ {
		at := sim.Time(i) * sim.Time(3*sim.Millisecond)
		eng.Shard(1).At(at, func() { is.Send(Endpoint{IP: pub.IP(), Port: 200}, 32, "ping") })
	}
	eng.RunUntil(sim.Time(2 * sim.Second))
	total := net.TotalStats()
	if got := total.Get("boundary.out"); got != int64(count) {
		t.Fatalf("boundary.out = %d, want %d", got, count)
	}
	if got := total.Get("boundary.in"); got != int64(count) {
		t.Fatalf("boundary.in = %d, want %d", got, count)
	}
	return logIn, logOut, total.String(), eng.Processed()
}

// TestShardedNATBoundaryDelivery: a NAT behind the parallel engine
// translates in both directions across shards, counts translations on the
// owning shard, and the whole trace is worker-invariant.
func TestShardedNATBoundaryDelivery(t *testing.T) {
	const count = 40
	in1, out1, s1, e1 := runShardedNATExchange(t, 1, count)
	if len(out1) != count || len(in1) != count {
		t.Fatalf("delivered %d pings / %d pongs, want %d each; stats: %s", len(out1), len(in1), count, s1)
	}
	in2, out2, s2, e2 := runShardedNATExchange(t, 2, count)
	if !reflect.DeepEqual(in1, in2) || !reflect.DeepEqual(out1, out2) {
		t.Fatal("NAT delivery trace depends on worker count")
	}
	if s1 != s2 || e1 != e2 {
		t.Fatalf("stats/event totals depend on worker count: %q/%d vs %q/%d", s1, e1, s2, e2)
	}
}

// TestShardedUnpinnedRealmUnroutable: an address claimed by a boundary
// with no hosts behind it has no owning shard and no possible receiver —
// the packet drops as lost.noroute instead of crashing the engine.
func TestShardedUnpinnedRealmUnroutable(t *testing.T) {
	eng := sim.NewSharded(3, 2, 1)
	defer eng.Close()
	net := NewShardedNetwork(eng, UniformLatency(
		PathModel{OneWay: sim.Millisecond},
		PathModel{OneWay: 10 * sim.Millisecond},
	))
	pubSite := net.AddSite("pub")
	net.AddSite("other")
	floor, _ := net.CrossShardFloor()
	eng.SetLookahead(floor)
	pub := net.AddHost("pub", pubSite, net.Root(), HostConfig{})
	nat := &fakeNAT{public: net.Root().NextIP()}
	net.AddRealm("empty", net.Root(), nat, MustParseIP("10.0.0.1"))

	s, _ := pub.Listen(0)
	eng.Shard(0).At(0, func() { s.Send(Endpoint{IP: nat.public, Port: 77}, 8, "x") })
	eng.RunUntil(sim.Time(sim.Second))
	total := net.TotalStats()
	if got := total.Get("lost.noroute"); got != 1 {
		t.Fatalf("lost.noroute = %d, want 1", got)
	}
}

// TestShardedConnIDsUniqueAcrossRealms: hosts in different private realms
// reuse the same RFC1918 addresses, and the listener side demultiplexes
// streams by connection ID alone — so IDs derived from the dialer's IP
// would collide and hijack each other's streams. The sharded allocator
// derives IDs from the network-wide host uid instead.
func TestShardedConnIDsUniqueAcrossRealms(t *testing.T) {
	eng := sim.NewSharded(11, 2, 2)
	defer eng.Close()
	net := NewShardedNetwork(eng, UniformLatency(
		PathModel{OneWay: sim.Millisecond},
		PathModel{OneWay: 20 * sim.Millisecond, Jitter: 5 * sim.Millisecond},
	))
	pubSite := net.AddSite("pub") // shard 0
	lanSite1 := net.AddSite("l1") // shard 1
	lanSite2 := net.AddSite("l2") // shard 0
	floor, _ := net.CrossShardFloor()
	eng.SetLookahead(floor)

	pub := net.AddHost("pub", pubSite, net.Root(), HostConfig{})
	natA := &fakeNAT{public: net.Root().NextIP()}
	natB := &fakeNAT{public: net.Root().NextIP()}
	lanA := net.AddRealm("lanA", net.Root(), natA, MustParseIP("10.0.0.1"))
	lanB := net.AddRealm("lanB", net.Root(), natB, MustParseIP("10.0.0.1"))
	a := net.AddHost("a", lanSite1, lanA, HostConfig{})
	b := net.AddHost("b", lanSite2, lanB, HostConfig{})
	if a.IP() != b.IP() {
		t.Fatalf("want colliding private IPs, got %v vs %v", a.IP(), b.IP())
	}

	var ids []uint64
	msgs := 0
	pub.ListenStream(7000, func(st *Stream) {
		ids = append(ids, st.connID)
		st.OnMessage(func(size int, payload any) { msgs++ })
	})
	eng.Shard(a.Shard()).At(0, func() {
		a.DialStream(Endpoint{IP: pub.IP(), Port: 7000}).SendMsg(64, "from-a")
	})
	eng.Shard(b.Shard()).At(0, func() {
		b.DialStream(Endpoint{IP: pub.IP(), Port: 7000}).SendMsg(64, "from-b")
	})
	eng.RunUntil(sim.Time(10 * sim.Second))
	if len(ids) != 2 || msgs != 2 {
		t.Fatalf("accepted %d streams, delivered %d messages, want 2/2", len(ids), msgs)
	}
	if ids[0] == ids[1] {
		t.Fatalf("conn IDs collide across realms: %#x", ids[0])
	}
}

// TestUnshardedStatsUnchanged: the classic network still exposes Stats
// directly and TotalStats mirrors it.
func TestUnshardedStatsUnchanged(t *testing.T) {
	s := sim.New(1)
	net := NewNetwork(s, UniformLatency(PathModel{}, PathModel{}))
	site := net.AddSite("x")
	a := net.AddHost("a", site, net.Root(), HostConfig{})
	b := net.AddHost("b", site, net.Root(), HostConfig{})
	bs, _ := b.Listen(7)
	got := 0
	bs.OnRecv = func(p *Packet) { got++ }
	as, _ := a.Listen(0)
	as.Send(Endpoint{IP: b.IP(), Port: 7}, 8, "x")
	s.Run()
	if got != 1 {
		t.Fatal("not delivered")
	}
	if net.Stats.Get("delivered") != 1 {
		t.Fatalf("Stats.delivered = %d", net.Stats.Get("delivered"))
	}
	total := net.TotalStats()
	if total.Get("delivered") != 1 {
		t.Fatalf("TotalStats.delivered = %d", total.Get("delivered"))
	}
}

// TestTotalStatsConcurrentShardWrites: the per-shard stats counters obey
// the same ownership rule as the engine — each shard's goroutine bumps
// only its own Counter (map Incs and the pre-resolved delivered handle) —
// and TotalStats merges them exactly. Run under -race this also proves
// the hot-path counters introduce no cross-shard write sharing.
func TestTotalStatsConcurrentShardWrites(t *testing.T) {
	const shards, perShard = 4, 5000
	eng := sim.NewSharded(7, shards, 1)
	defer eng.Close()
	net := NewShardedNetwork(eng, UniformLatency(PathModel{}, PathModel{}))
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perShard; j++ {
				net.deliveredSh[i].Inc(1)
				net.statsSh[i].Inc("lost.wire", 1)
			}
		}()
	}
	wg.Wait()
	total := net.TotalStats()
	if got := total.Get("delivered"); got != shards*perShard {
		t.Errorf("delivered = %d, want %d", got, shards*perShard)
	}
	if got := total.Get("lost.wire"); got != shards*perShard {
		t.Errorf("lost.wire = %d, want %d", got, shards*perShard)
	}
}
