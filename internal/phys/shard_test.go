package phys

import (
	"reflect"
	"testing"

	"wow/internal/sim"
)

// buildShardedPair stands up a two-shard network with one host per shard
// and a reply-on-receive protocol: host a fires `count` datagrams at b,
// b answers each, and both sides log (now, size) on delivery.
func runShardedPingPong(t *testing.T, workers, count int) (logA, logB []sim.Time, stats string, events uint64) {
	t.Helper()
	eng := sim.NewSharded(42, 2, workers)
	defer eng.Close()
	net := NewShardedNetwork(eng, UniformLatency(
		PathModel{OneWay: sim.Millisecond},
		PathModel{OneWay: 20 * sim.Millisecond, Jitter: 5 * sim.Millisecond},
	))
	siteA := net.AddSite("a") // shard 0
	siteB := net.AddSite("b") // shard 1
	if siteA.Shard() == siteB.Shard() {
		t.Fatal("sites landed on one shard")
	}
	floor, ok := net.CrossShardFloor()
	if !ok {
		t.Fatal("no cross-shard site pairs")
	}
	if want := 15 * sim.Millisecond; floor != want {
		t.Fatalf("CrossShardFloor = %v, want %v", floor, want)
	}
	eng.SetLookahead(floor)

	a := net.AddHost("a0", siteA, net.Root(), HostConfig{})
	b := net.AddHost("b0", siteB, net.Root(), HostConfig{})
	if a.Shard() != 0 || b.Shard() != 1 {
		t.Fatalf("host shards = %d,%d", a.Shard(), b.Shard())
	}
	as, err := a.Listen(100)
	if err != nil {
		t.Fatal(err)
	}
	bs, err := b.Listen(100)
	if err != nil {
		t.Fatal(err)
	}
	bs.OnRecv = func(p *Packet) {
		logB = append(logB, b.Sim().Now())
		bs.Send(p.Src, 16, "pong")
	}
	as.OnRecv = func(p *Packet) { logA = append(logA, a.Sim().Now()) }
	for i := 0; i < count; i++ {
		at := sim.Time(i) * sim.Time(3*sim.Millisecond)
		eng.Shard(0).At(at, func() { as.Send(Endpoint{IP: b.IP(), Port: 100}, 32, "ping") })
	}
	eng.RunUntil(sim.Time(2 * sim.Second))
	total := net.TotalStats()
	return logA, logB, total.String(), eng.Processed()
}

// TestShardedNetworkDeliversAcrossShards checks end-to-end cross-shard
// delivery and that the trace is identical no matter how many workers
// execute it.
func TestShardedNetworkDeliversAcrossShards(t *testing.T) {
	const count = 40
	a1, b1, s1, e1 := runShardedPingPong(t, 1, count)
	if len(b1) != count || len(a1) != count {
		t.Fatalf("delivered %d pings / %d pongs, want %d each; stats: %s", len(b1), len(a1), count, s1)
	}
	a2, b2, s2, e2 := runShardedPingPong(t, 2, count)
	if !reflect.DeepEqual(a1, a2) || !reflect.DeepEqual(b1, b2) {
		t.Fatal("delivery trace depends on worker count")
	}
	if s1 != s2 || e1 != e2 {
		t.Fatalf("stats/event totals depend on worker count: %q/%d vs %q/%d", s1, e1, s2, e2)
	}
}

// TestShardedNetworkRejectsRealms: middlebox state is not shard-safe, so
// sharded networks are root-realm only.
func TestShardedNetworkRejectsRealms(t *testing.T) {
	eng := sim.NewSharded(1, 2, 1)
	defer eng.Close()
	net := NewShardedNetwork(eng, UniformLatency(PathModel{}, PathModel{OneWay: sim.Millisecond}))
	defer func() {
		if recover() == nil {
			t.Fatal("AddRealm on a sharded network must panic")
		}
	}()
	net.AddRealm("nat", net.Root(), nil, MustParseIP("10.0.0.1"))
}

// TestUnshardedStatsUnchanged: the classic network still exposes Stats
// directly and TotalStats mirrors it.
func TestUnshardedStatsUnchanged(t *testing.T) {
	s := sim.New(1)
	net := NewNetwork(s, UniformLatency(PathModel{}, PathModel{}))
	site := net.AddSite("x")
	a := net.AddHost("a", site, net.Root(), HostConfig{})
	b := net.AddHost("b", site, net.Root(), HostConfig{})
	bs, _ := b.Listen(7)
	got := 0
	bs.OnRecv = func(p *Packet) { got++ }
	as, _ := a.Listen(0)
	as.Send(Endpoint{IP: b.IP(), Port: 7}, 8, "x")
	s.Run()
	if got != 1 {
		t.Fatal("not delivered")
	}
	if net.Stats.Get("delivered") != 1 {
		t.Fatalf("Stats.delivered = %d", net.Stats.Get("delivered"))
	}
	total := net.TotalStats()
	if total.Get("delivered") != 1 {
		t.Fatalf("TotalStats.delivered = %d", total.Get("delivered"))
	}
}
