package phys

import "testing"

// FuzzParseIP checks the parser never panics and round-trips everything
// it accepts.
func FuzzParseIP(f *testing.F) {
	for _, seed := range []string{"10.0.0.1", "255.255.255.255", "0.0.0.0", "1.2.3", "a.b.c.d", "", "999.1.1.1", "1..2.3"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		ip, err := ParseIP(s)
		if err != nil {
			return
		}
		rt, err2 := ParseIP(ip.String())
		if err2 != nil || rt != ip {
			t.Fatalf("roundtrip broke: %q -> %v -> %v (%v)", s, ip, rt, err2)
		}
	})
}
