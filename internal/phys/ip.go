// Package phys simulates the physical Internet substrate underneath a WOW
// deployment: sites joined by wide-area paths with latency, jitter, loss and
// bandwidth; hosts with finite CPU service rates (modelling the heavily
// loaded PlanetLab routers of the paper's testbed); and nested address
// realms whose boundaries are NAT and firewall middleboxes.
//
// The paper ran on real networks; every experiment here runs on this
// substrate instead, driven by the deterministic event engine in
// internal/sim. Protocol code (internal/brunet, internal/ipop) is real —
// only wires, routers and middleboxes are simulated.
package phys

import (
	"fmt"
	"strconv"
	"strings"
)

// IP is a physical IPv4 address in host byte order.
type IP uint32

// String renders the address in dotted-quad form.
func (ip IP) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// ParseIP parses a dotted-quad address. It returns an error for anything
// that is not exactly four dot-separated octets.
func ParseIP(s string) (IP, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("phys: invalid IP %q", s)
	}
	var ip IP
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 || v > 255 {
			return 0, fmt.Errorf("phys: invalid IP %q", s)
		}
		ip = ip<<8 | IP(v)
	}
	return ip, nil
}

// MustParseIP is ParseIP that panics on malformed input; for tests and
// static topology tables.
func MustParseIP(s string) IP {
	ip, err := ParseIP(s)
	if err != nil {
		panic(err)
	}
	return ip
}

// Endpoint is a UDP endpoint: an address and a port.
type Endpoint struct {
	IP   IP
	Port uint16
}

// String renders "ip:port".
func (e Endpoint) String() string { return fmt.Sprintf("%s:%d", e.IP, e.Port) }

// IsZero reports whether the endpoint is unset.
func (e Endpoint) IsZero() bool { return e.IP == 0 && e.Port == 0 }

// Wire protocol numbers; NATs and firewalls track UDP and TCP flows in
// separate tables, and hosts dispatch them to separate port namespaces.
const (
	WireUDP uint8 = 17
	WireTCP uint8 = 6
)

// Packet is a simulated datagram (UDP) or stream segment (TCP transport;
// see Stream). Payload is carried by reference (no serialization); Size in
// bytes drives transmission-delay and bandwidth modelling. Src and Dst are
// rewritten in place by NAT middleboxes as the packet traverses realm
// boundaries, exactly as real NATs rewrite headers. A zero Proto is
// normalized to WireUDP on send.
//
// Packets are pooled by the Network: one is acquired per UDPSock.Send and
// released after its delivery callback (or drop hook) returns. Receive
// handlers must therefore not retain *Packet past the OnRecv call — copy
// the fields (they are values) or the Packet itself if needed later.
type Packet struct {
	Src     Endpoint
	Dst     Endpoint
	Proto   uint8
	Size    int
	Payload any

	// dest is the delivering host, resolved by routing; it rides in the
	// packet so delivery events can be scheduled through sim.AtArg with
	// package-level callbacks — no per-packet closure allocations.
	dest *Host
	// entry is the private realm a boundary-deferred packet descends into:
	// set by the sharded send path when the destination hides behind a
	// middlebox chain owned by another shard's timeline, consumed by
	// deliverBoundary on that shard (cleared before delivery).
	entry *Realm
	// nextFree links the Network's packet free list.
	nextFree *Packet
	// poisoned marks a released packet under the packetdebug build tag;
	// the debug pool panics when one re-enters the delivery pipeline.
	poisoned bool
	// ownerShard/releasedBy are maintained only under packetdebug: the
	// shard whose free list currently owns the packet (re-stamped when a
	// packet crosses shards through the engine's lanes) and the shard that
	// released it, so cross-shard pool misuse panics with both parties
	// named. Production builds never touch them.
	ownerShard int32
	releasedBy int32
}
