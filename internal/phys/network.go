package phys

import (
	"fmt"

	"wow/internal/metrics"
	"wow/internal/sim"
	"wow/internal/trace"
)

// Boundary is a middlebox (NAT or firewall) connecting an inner address
// realm to its outer realm. Implementations live in internal/natsim.
type Boundary interface {
	// Attach is called once when the boundary is installed between realms.
	Attach(inner, outer *Realm)
	// Outbound processes a packet leaving the inner realm, possibly
	// rewriting p.Src. It reports false to drop the packet (e.g. a
	// hairpin packet on a NAT without hairpin support, or a firewall
	// egress rule).
	Outbound(now sim.Time, p *Packet) bool
	// Inbound processes a packet arriving from the outer realm that this
	// boundary Claims. For a NAT, p.Dst is one of its public endpoints
	// and is rewritten to the mapped inner endpoint; for a firewall,
	// p.Dst is already an inner routable address. It reports false to
	// drop (no mapping, filtered source, closed pinhole).
	Inbound(now sim.Time, p *Packet) bool
	// Claims reports whether inbound packets addressed to ip in the
	// outer realm should be handed to this boundary.
	Claims(ip IP) bool
}

// Site is a network location. Path characteristics between two hosts are
// looked up by their sites' indices in the network's latency model. In a
// sharded network every site (and so every host at it) belongs to one
// shard of the parallel engine.
type Site struct {
	Name  string
	Index int
	shard int
}

// Shard reports which engine shard owns the site's events; always 0 in an
// unsharded network.
func (s *Site) Shard() int { return s.shard }

// PathModel describes the wide-area path between two sites.
type PathModel struct {
	// OneWay is the one-way propagation delay.
	OneWay sim.Duration
	// Jitter uniformly perturbs OneWay by ±Jitter per packet.
	Jitter sim.Duration
	// Loss is the independent per-packet loss probability.
	Loss float64
}

// LatencyFunc returns the path model between two sites.
type LatencyFunc func(a, b *Site) PathModel

// Realm is an address scope: the public Internet (root) or a private
// network behind a Boundary. Hosts are registered in exactly one realm and
// their IPs are unique within it.
//
// In a sharded network every private realm is shard-affine: the chain of
// realms hanging off one top-level boundary is pinned to a single site (and
// therefore a single engine shard) by the first AddHost anywhere in the
// chain. The boundary middleboxes of the chain are then only ever invoked
// on that shard's timeline — outbound translations run on the sender's
// shard (the sender lives in the chain), inbound translations are deferred
// to the owning shard (see deliverBoundary) — so NAT mapping tables, port
// allocators and firewall pinhole tables stay single-threaded without
// locks. The root realm is never pinned: its hosts run on their own sites'
// shards and it holds no middlebox state of its own.
type Realm struct {
	Name     string
	net      *Network
	parent   *Realm
	boundary Boundary // connects this realm to parent; nil for root
	hosts    map[IP]*Host
	children []childBoundary
	nextIP   IP

	// site/pinned are the sharded placement: set (with the whole chain) by
	// the first AddHost behind this realm's top-level boundary. Unsharded
	// networks never pin.
	site   *Site
	pinned bool
}

type childBoundary struct {
	b     Boundary
	inner *Realm
}

// HasHost reports whether ip belongs to a host registered in this realm.
// NAT and firewall boundaries use it to decide what they claim.
func (r *Realm) HasHost(ip IP) bool {
	_, ok := r.hosts[ip]
	return ok
}

// Covers reports whether ip is addressable within this realm: a host here,
// or an address claimed by a nested boundary (e.g. the public endpoint of
// a VMware NAT inside a firewalled campus network). Firewalls claim their
// inner realm's whole coverage, since they filter but do not translate.
func (r *Realm) Covers(ip IP) bool {
	if r.HasHost(ip) {
		return true
	}
	for _, cb := range r.children {
		if cb.b.Claims(ip) {
			return true
		}
	}
	return false
}

// Hosts returns the number of hosts registered in the realm.
func (r *Realm) Hosts() int { return len(r.hosts) }

// Shard reports the engine shard owning this realm's middlebox timeline:
// the pinned site's shard for a private realm in a sharded network, 0
// otherwise (root realm, unsharded network, or a chain no host was ever
// placed behind).
func (r *Realm) Shard() int {
	if r.pinned {
		return r.site.shard
	}
	return 0
}

// Site returns the site a sharded private realm is pinned to, nil when the
// realm is unpinned (root, unsharded, or empty chain).
func (r *Realm) Site() *Site {
	if r.pinned {
		return r.site
	}
	return nil
}

// chainTop walks up to the realm directly under root — the top of the
// middlebox chain this realm belongs to. Called on private realms only.
func (r *Realm) chainTop() *Realm {
	top := r
	for top.parent != nil && top.parent.parent != nil {
		top = top.parent
	}
	return top
}

// pinChain pins every realm of the chain rooted at top-level realm r to
// site: r itself and, recursively, every nested child realm. Realms added
// to the chain later inherit the pin at AddRealm time.
func (r *Realm) pinChain(site *Site) {
	r.site = site
	r.pinned = true
	for _, cb := range r.children {
		cb.inner.pinChain(site)
	}
}

// NextIP allocates the next unused address in the realm, counting up from
// the base passed to AddRealm/root creation.
func (r *Realm) NextIP() IP {
	for {
		ip := r.nextIP
		r.nextIP++
		if _, taken := r.hosts[ip]; !taken {
			return ip
		}
	}
}

// Network is the simulated physical Internet: sites, realms, hosts and the
// packet-delivery pipeline.
type Network struct {
	Sim     *sim.Simulator
	Latency LatencyFunc
	// Stats counts delivery outcomes: delivered, lost.wire, lost.noroute,
	// lost.boundary, lost.hostdown, lost.noport, lost.overload.
	Stats metrics.Counter
	// OnDrop, when set, observes every dropped packet with its loss
	// reason; a diagnostics hook used by tests and experiment harnesses.
	OnDrop func(reason string, p *Packet)
	// Perturb, when set, lets a fault injector rewrite the path model of
	// a single packet — adding loss or latency, or blackholing the packet
	// outright (second return true; counted as lost.fault). It runs after
	// routing and host-liveness checks, so the injector sees the actual
	// delivering hosts. internal/faults installs this hook.
	Perturb func(src, dst *Host, pm PathModel) (PathModel, bool)
	// FlightRecorder, when set, receives a route terminal for every
	// traced overlay packet the network drops (outcome "phys."+reason).
	// The tracer must carry one buffer per engine shard (a single buffer
	// for the unsharded network): drops emit into the executing shard's
	// buffer, preserving the single-writer merge discipline.
	FlightRecorder *trace.Tracer

	sites      []*Site
	root       *Realm
	hosts      []*Host
	nextConnID uint64

	// engine is the parallel event engine of a sharded network; nil for
	// the classic single-threaded network, where Sim drives everything.
	engine *sim.Sharded
	// shStats holds the per-shard drop/delivery counters of a sharded
	// network; nil when unsharded. statsSh/deliveredSh are always
	// populated: in the unsharded case they have one entry aliasing Stats,
	// so the hot paths index by shard unconditionally.
	shStats     *metrics.Sharded
	statsSh     []*metrics.Counter
	deliveredSh []metrics.Handle
	// freePktSh is the per-shard packet free list: shard-local acquire and
	// release, so pooling stays lock-free under parallel execution.
	freePktSh []*Packet
	// boundInSh/boundOutSh are pre-resolved per-shard counters for boundary
	// translations (inbound counted on the realm's owning shard, outbound on
	// the sender's), so the NAT path doesn't pay a counter-map lookup per
	// translation.
	boundInSh  []metrics.Handle
	boundOutSh []metrics.Handle
}

// NewNetwork creates a network with the given latency model. The root
// (public) realm allocates IPs starting at 128.0.0.1.
func NewNetwork(s *sim.Simulator, latency LatencyFunc) *Network {
	n := &Network{
		Sim:     s,
		Latency: latency,
		root:    &Realm{Name: "internet", hosts: make(map[IP]*Host), nextIP: MustParseIP("128.0.0.1")},
	}
	n.root.net = n
	n.statsSh = []*metrics.Counter{&n.Stats}
	n.deliveredSh = []metrics.Handle{n.Stats.Handle("delivered")}
	n.boundInSh = []metrics.Handle{n.Stats.Handle("boundary.in")}
	n.boundOutSh = []metrics.Handle{n.Stats.Handle("boundary.out")}
	n.freePktSh = make([]*Packet, 1)
	return n
}

// NewShardedNetwork creates a network driven by a parallel sharded engine.
// Sites are assigned to shards round-robin as they are added, hosts run on
// their site's shard, and cross-shard packets travel through the engine's
// deterministic lanes. Private realms are supported and shard-affine: a
// middlebox chain is pinned to one site (and shard) by the first AddHost
// behind it, every later host behind the same chain must live at that site,
// and all NAT/firewall state is touched only on the owning shard's timeline
// (outbound translation at send on the sender's shard, inbound translation
// deferred to the realm's shard — see deliverBoundary). Stats must be read
// through TotalStats() (per-shard counters merge on demand). Sim aliases
// shard 0 for code that only needs a clock between runs.
func NewShardedNetwork(eng *sim.Sharded, latency LatencyFunc) *Network {
	n := &Network{
		Sim:     eng.Shard(0),
		Latency: latency,
		root:    &Realm{Name: "internet", hosts: make(map[IP]*Host), nextIP: MustParseIP("128.0.0.1")},
		engine:  eng,
	}
	n.root.net = n
	k := eng.Shards()
	n.shStats = metrics.NewSharded(k)
	n.statsSh = make([]*metrics.Counter, k)
	n.deliveredSh = n.shStats.Handles("delivered")
	n.boundInSh = n.shStats.Handles("boundary.in")
	n.boundOutSh = n.shStats.Handles("boundary.out")
	for i := 0; i < k; i++ {
		n.statsSh[i] = n.shStats.Shard(i)
	}
	n.freePktSh = make([]*Packet, k)
	return n
}

// Sharded reports whether the network runs on a parallel engine.
func (n *Network) Sharded() bool { return n.engine != nil }

// Engine returns the parallel engine of a sharded network (nil otherwise).
func (n *Network) Engine() *sim.Sharded { return n.engine }

// TotalStats returns the fleet-wide delivery/drop counters: a merged view
// of the per-shard counters in a sharded network, or a copy of Stats in an
// unsharded one. Call between runs only.
func (n *Network) TotalStats() metrics.Counter {
	if n.shStats != nil {
		return n.shStats.Merged()
	}
	var c metrics.Counter
	c.Merge(&n.Stats)
	return c
}

// CrossShardFloor computes the infimum of inter-shard one-way delivery
// latency over all site pairs living on different shards: OneWay-Jitter
// minimized over cross-shard pairs. This is the largest admissible
// lookahead for the engine — any cross-shard packet departs at least this
// far in the future. The second return is false when no site pair crosses
// shards (single shard, or all sites mapped to one shard).
func (n *Network) CrossShardFloor() (sim.Duration, bool) {
	var floor sim.Duration
	found := false
	for _, a := range n.sites {
		for _, b := range n.sites {
			if a.shard == b.shard {
				continue
			}
			pm := n.Latency(a, b)
			f := pm.OneWay - pm.Jitter
			if !found || f < floor {
				floor, found = f, true
			}
		}
	}
	return floor, found
}

// Root returns the public Internet realm.
func (n *Network) Root() *Realm { return n.root }

// AddSite registers a new site. In a sharded network sites are spread
// round-robin over the engine's shards.
func (n *Network) AddSite(name string) *Site {
	s := &Site{Name: name, Index: len(n.sites)}
	if n.engine != nil {
		s.shard = s.Index % n.engine.Shards()
	}
	n.sites = append(n.sites, s)
	return s
}

// AddRealm creates a private realm behind boundary, attached under outer.
// Hosts added to it allocate IPs from ipBase upward. In a sharded network
// the new realm joins its outer chain's shard pin (if the chain is already
// pinned); otherwise the first AddHost behind the chain pins it.
func (n *Network) AddRealm(name string, outer *Realm, boundary Boundary, ipBase IP) *Realm {
	r := &Realm{
		Name:     name,
		net:      n,
		parent:   outer,
		boundary: boundary,
		hosts:    make(map[IP]*Host),
		nextIP:   ipBase,
	}
	if n.engine != nil && outer.pinned {
		r.site = outer.site
		r.pinned = true
	}
	outer.children = append(outer.children, childBoundary{b: boundary, inner: r})
	boundary.Attach(r, outer)
	return r
}

// HostConfig sets a host's performance model.
type HostConfig struct {
	// ServiceTime is the CPU time spent processing one packet at user
	// level (receive + route + resend in the IPOP router). Zero means
	// negligible.
	ServiceTime sim.Duration
	// LoadFactor scales ServiceTime; >1 models background load (the
	// paper's "highly loaded PlanetLab nodes"). Zero means 1.
	LoadFactor float64
	// Bandwidth is the NIC/uplink throughput in bytes/second. Zero means
	// effectively infinite.
	Bandwidth float64
	// QueueLimit bounds the CPU backlog; packets arriving when the
	// backlog exceeds it are dropped (congestion loss). Zero means
	// 200ms worth of backlog.
	QueueLimit sim.Duration
}

// AddHost creates a host at site in realm with an automatically allocated
// address. In a sharded network the first host placed behind a middlebox
// chain pins the whole chain to its site's shard; every later host behind
// the same chain must use the same site (one middlebox fronts one network
// location, and a single site keeps the chain's latency well-defined).
func (n *Network) AddHost(name string, site *Site, realm *Realm, cfg HostConfig) *Host {
	if n.engine != nil && realm.parent != nil {
		switch {
		case !realm.pinned:
			realm.chainTop().pinChain(site)
		case realm.site != site:
			panic(fmt.Sprintf("phys: sharded realm %q is pinned to site %q (shard %d); host %q at site %q must share the chain's site",
				realm.Name, realm.site.Name, realm.site.shard, name, site.Name))
		}
	}
	ip := realm.NextIP()
	if cfg.LoadFactor == 0 {
		cfg.LoadFactor = 1
	}
	if cfg.QueueLimit == 0 {
		cfg.QueueLimit = 200 * sim.Millisecond
	}
	h := &Host{
		net:       n,
		Name:      name,
		Site:      site,
		realm:     realm,
		uid:       uint32(len(n.hosts) + 1),
		ip:        ip,
		cfg:       cfg,
		up:        true,
		socks:     make(map[wirePortKey]*UDPSock),
		nextPorts: make(map[uint8]uint16),
		shard:     site.shard,
		sim:       n.Sim,
	}
	if n.engine != nil {
		h.sim = n.engine.Shard(site.shard)
	}
	realm.hosts[ip] = h
	n.hosts = append(n.hosts, h)
	return h
}

// route walks the packet from the sender's realm to a destination host,
// applying boundary translations synchronously. It returns the destination
// host, or nil with a loss-reason counter name. This is the classic
// unsharded pipeline; sharded networks use routeSharded + deliverBoundary
// so middlebox state is only touched on its owning shard.
func (n *Network) route(now sim.Time, p *Packet, from *Realm) (*Host, string) {
	realm := from
	for hops := 0; hops < 64; hops++ {
		if h, ok := realm.hosts[p.Dst.IP]; ok {
			return h, ""
		}
		descended := false
		for _, cb := range realm.children {
			if cb.b.Claims(p.Dst.IP) {
				if !cb.b.Inbound(now, p) {
					return nil, "lost.boundary"
				}
				n.boundInSh[0].Inc(1)
				realm = cb.inner
				descended = true
				break
			}
		}
		if descended {
			continue
		}
		if realm.parent == nil {
			return nil, "lost.noroute"
		}
		if !realm.boundary.Outbound(now, p) {
			return nil, "lost.boundary"
		}
		n.boundOutSh[0].Inc(1)
		realm = realm.parent
	}
	return nil, "lost.noroute"
}

// routeSharded is the sender-shard half of the sharded routing pipeline.
// It ascends the sender's own middlebox chain applying outbound
// translations — legal on this shard, because the sender's chain is pinned
// to the sender's site — and resolves the packet's target: either a host
// directly visible at some ascent level (classic delivery), or the pinned
// private realm whose boundary claims the destination address. In the
// latter case no inbound state is touched here: the descent (and its NAT
// table mutations) is deferred to the claiming realm's owning shard via
// deliverBoundary. Claims is read-only by contract, so probing other
// chains' boundaries from this shard is race-free.
func (n *Network) routeSharded(now sim.Time, p *Packet, src *Host) (*Host, *Realm, string) {
	realm := src.realm
	for hops := 0; hops < 64; hops++ {
		if h, ok := realm.hosts[p.Dst.IP]; ok {
			return h, nil, ""
		}
		for _, cb := range realm.children {
			if cb.b.Claims(p.Dst.IP) {
				if !cb.inner.pinned {
					// No host was ever placed behind this boundary, so the
					// chain has no owning shard — and no possible receiver.
					return nil, nil, "lost.noroute"
				}
				return nil, cb.inner, ""
			}
		}
		if realm.parent == nil {
			return nil, nil, "lost.noroute"
		}
		if !realm.boundary.Outbound(now, p) {
			return nil, nil, "lost.boundary"
		}
		n.boundOutSh[src.shard].Inc(1)
		realm = realm.parent
	}
	return nil, nil, "lost.noroute"
}

// deliverBoundary is the owning-shard half of the sharded pipeline: it runs
// on the claiming realm's shard at the packet's arrival time. The descent —
// boundary Inbound translations, nested chains included, down to the
// resolved host's receive pipeline — executes entirely on this shard, so
// every mutation of the chain's middlebox state is single-threaded. The
// destination's liveness is therefore judged at arrival rather than at send
// time, which only this path does (the host was not resolvable on the
// sender's shard).
func deliverBoundary(a any) {
	p := a.(*Packet)
	realm := p.entry
	p.entry = nil
	n := realm.net
	sh := realm.site.shard
	checkPacketLive(p, sh, "boundary")
	now := n.engine.Shard(sh).Now()
	if !realm.boundary.Inbound(now, p) {
		n.drop(sh, "lost.boundary", p)
		return
	}
	n.boundInSh[sh].Inc(1)
	for hops := 0; hops < 64; hops++ {
		if h, ok := realm.hosts[p.Dst.IP]; ok {
			p.dest = h
			h.receive(p)
			return
		}
		descended := false
		for _, cb := range realm.children {
			if cb.b.Claims(p.Dst.IP) {
				if !cb.b.Inbound(now, p) {
					n.drop(sh, "lost.boundary", p)
					return
				}
				n.boundInSh[sh].Inc(1)
				realm = cb.inner
				descended = true
				break
			}
		}
		if !descended {
			n.drop(sh, "lost.noroute", p)
			return
		}
	}
	n.drop(sh, "lost.noroute", p)
}

// send injects a packet from host src. It computes the delivery schedule
// (transmission, propagation, destination CPU) and routes through
// middleboxes. The final translated packet is handed to the destination
// socket's receive callback. All state it touches — sender clock and RNG,
// shard counters, packet pool — belongs to the sender's shard, except the
// final delivery schedule, which crosses shards through the engine when
// the destination lives elsewhere.
func (n *Network) send(src *Host, p *Packet) {
	checkPacketLive(p, src.shard, "send")
	now := src.sim.Now()
	if p.Proto == 0 {
		p.Proto = WireUDP
	}

	// Transmission delay serialized on the sender's uplink.
	depart := now
	if src.cfg.Bandwidth > 0 {
		tx := sim.Duration(float64(p.Size) / src.cfg.Bandwidth * float64(sim.Second))
		if src.txBusyUntil > depart {
			depart = src.txBusyUntil
		}
		depart = depart.Add(tx)
		src.txBusyUntil = depart
	}

	var dst *Host
	var entry *Realm
	var reason string
	if n.engine == nil {
		dst, reason = n.route(now, p, src.realm)
	} else {
		dst, entry, reason = n.routeSharded(now, p, src)
	}
	if reason != "" {
		n.drop(src.shard, reason, p)
		return
	}
	dstSite := src.Site
	if dst != nil {
		if !dst.up {
			n.drop(src.shard, "lost.hostdown", p)
			return
		}
		dstSite = dst.Site
	} else {
		// Boundary-deferred target: the chain is pinned to one site, so the
		// wide-area path (and the cross-shard lookahead bound) is the
		// site-to-site path even though the exact host resolves later.
		dstSite = entry.site
	}

	pm := n.Latency(src.Site, dstSite)
	if n.Perturb != nil && dst != nil {
		// Fault injection sees resolved host pairs only; boundary-deferred
		// packets (sharded NAT descents) bypass the hook — the destination
		// host is unknown until the owning shard translates.
		var blackhole bool
		pm, blackhole = n.Perturb(src, dst, pm)
		if blackhole {
			n.drop(src.shard, "lost.fault", p)
			return
		}
	}
	if pm.Loss > 0 && src.sim.Rand().Float64() < pm.Loss {
		n.drop(src.shard, "lost.wire", p)
		return
	}
	prop := pm.OneWay
	if pm.Jitter > 0 {
		prop += sim.Duration(src.sim.Rand().Int63n(int64(2*pm.Jitter))) - pm.Jitter
		if prop < 0 {
			prop = 0
		}
	}

	arrive := depart.Add(prop)
	if dst != nil {
		p.dest = dst
		if dst.shard == src.shard {
			src.sim.AtArg(arrive, deliverPacket, p)
			return
		}
		// Cross-shard delivery: ownership of the packet transfers to the
		// destination shard, and the engine's lane merge guarantees the
		// destination sees it in deterministic timestamp order. The engine
		// panics if arrive violates the lookahead (latency floor too small).
		packetCrossShard(p, dst.shard)
		n.engine.Send(src.shard, dst.shard, arrive, deliverPacket, p)
		return
	}
	// Boundary-deferred delivery: the packet arrives at the claiming
	// realm's boundary on that realm's shard, where the inbound descent
	// translates and resolves the final host (deliverBoundary). The owner
	// re-stamp mirrors the direct cross-shard case — the pool's
	// single-owner rule holds across the realm boundary too.
	p.entry = entry
	sh := entry.site.shard
	if sh == src.shard {
		src.sim.AtArg(arrive, deliverBoundary, p)
		return
	}
	packetCrossShard(p, sh)
	n.engine.Send(src.shard, sh, arrive, deliverBoundary, p)
}

// deliverPacket is the propagation-done callback: package-level so AtArg
// schedules it without a closure allocation per packet. It runs on the
// destination host's shard.
func deliverPacket(a any) {
	p := a.(*Packet)
	checkPacketLive(p, p.dest.shard, "deliver")
	p.dest.receive(p)
}

// drop records a packet loss, notifies the diagnostics hook, and retires
// the packet. Every packet's life ends in exactly one drop call or one
// delivered OnRecv call. sh is the shard the drop executes on (sender's
// shard for wire/route losses, destination's for host-side losses).
func (n *Network) drop(sh int, reason string, p *Packet) {
	n.statsSh[sh].Inc(reason, 1)
	n.flightDiscard(sh, "phys."+reason, p.Payload)
	if n.OnDrop != nil {
		n.OnDrop(reason, p)
	}
	n.releasePacket(sh, p)
}

// flightDiscard emits a route terminal for a traced overlay payload dying
// inside the physical layer — a wire/route drop, or a transport buffer
// discarded at stream teardown. The drop is the last anyone would
// otherwise hear of the packet. The record lands in the executing shard's
// buffer (single-writer, like the stats counters) with that shard's clock,
// and the payload's trace context is consumed so an object shared between
// a retransmit buffer and the wire cannot terminate twice.
func (n *Network) flightDiscard(sh int, outcome string, payload any) {
	if n.FlightRecorder == nil {
		return
	}
	t, ok := payload.(trace.Traced)
	if !ok {
		return
	}
	id, start := t.TraceContext()
	if id == 0 {
		return
	}
	b := n.FlightRecorder.Shard(sh)
	now := b.Now()
	b.Append(trace.Record{
		Stream:  trace.StreamRoute,
		T:       int64(now),
		Trace:   id,
		LatNs:   int64(now.Sub(start)),
		Outcome: outcome,
	})
	if c, ok := payload.(trace.Cleared); ok {
		c.ClearTrace()
	}
}

// allocConnID issues a stream connection ID. The classic network keeps
// the historical global counter (IDs are stable for golden traces); a
// sharded network derives IDs from the dialing host's network-wide uid and
// a host-local counter, which is shard-safe (no global counter to race on)
// and realm-proof: private-realm hosts reuse the same RFC1918 addresses
// behind every NAT, so an IP-derived ID would collide across realms, but
// the uid is unique over the whole network regardless of realm.
func (n *Network) allocConnID(h *Host) uint64 {
	if n.engine == nil {
		n.nextConnID++
		return n.nextConnID
	}
	h.nextConnID++
	return uint64(h.uid)<<32 | (h.nextConnID & 0xffffffff)
}

// AllHosts returns every host in creation order.
func (n *Network) AllHosts() []*Host { return n.hosts }

// String summarizes the network.
func (n *Network) String() string {
	return fmt.Sprintf("phys.Network{sites=%d hosts=%d}", len(n.sites), len(n.hosts))
}

// UniformLatency returns a LatencyFunc with lan characteristics within a
// site and wan characteristics between sites.
func UniformLatency(lan, wan PathModel) LatencyFunc {
	return func(a, b *Site) PathModel {
		if a == b {
			return lan
		}
		return wan
	}
}

// MatrixLatency returns a LatencyFunc backed by a symmetric site-by-site
// matrix of one-way delays; jitter and loss apply to inter-site paths only.
func MatrixLatency(oneWay [][]sim.Duration, jitter sim.Duration, loss float64, lan PathModel) LatencyFunc {
	return func(a, b *Site) PathModel {
		if a == b {
			return lan
		}
		return PathModel{OneWay: oneWay[a.Index][b.Index], Jitter: jitter, Loss: loss}
	}
}
