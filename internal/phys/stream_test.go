package phys

import (
	"math/rand"
	"testing"
	"testing/quick"

	"wow/internal/sim"
)

func streamRig(seed int64, loss float64) (*sim.Simulator, *Network, *Host, *Host) {
	s := sim.New(seed)
	net := NewNetwork(s, func(a, b *Site) PathModel {
		return PathModel{OneWay: 10 * sim.Millisecond, Loss: loss}
	})
	sa, sb := net.AddSite("a"), net.AddSite("b")
	h1 := net.AddHost("h1", sa, net.Root(), HostConfig{})
	h2 := net.AddHost("h2", sb, net.Root(), HostConfig{})
	return s, net, h1, h2
}

func TestStreamHandshakeAndMessages(t *testing.T) {
	s, _, h1, h2 := streamRig(1, 0)
	var got []any
	if _, err := h2.ListenStream(7000, func(st *Stream) {
		st.OnMessage(func(size int, payload any) { got = append(got, payload) })
	}); err != nil {
		t.Fatal(err)
	}
	st := h1.DialStream(Endpoint{IP: h2.IP(), Port: 7000})
	opened := false
	st.OnOpen(func() { opened = true })
	st.SendMsg(100, "a")
	st.SendMsg(100, "b")
	s.RunFor(5 * sim.Second)
	if !opened || !st.Open() {
		t.Fatal("handshake failed")
	}
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("got %v", got)
	}
}

func TestStreamInOrderUnderLoss(t *testing.T) {
	s, _, h1, h2 := streamRig(2, 0.1)
	var got []any
	h2.ListenStream(7000, func(st *Stream) {
		st.OnMessage(func(size int, payload any) { got = append(got, payload) })
	})
	st := h1.DialStream(Endpoint{IP: h2.IP(), Port: 7000})
	const n = 300
	for i := 0; i < n; i++ {
		st.SendMsg(500, i)
	}
	s.RunFor(5 * sim.Minute)
	if len(got) != n {
		t.Fatalf("delivered %d of %d over 10%% lossy path", len(got), n)
	}
	for i, m := range got {
		if m != i {
			t.Fatalf("out of order at %d: %v", i, m)
		}
	}
}

func TestStreamWindowQueues(t *testing.T) {
	s, _, h1, h2 := streamRig(3, 0)
	got := 0
	h2.ListenStream(7000, func(st *Stream) {
		st.OnMessage(func(size int, payload any) { got++ })
	})
	st := h1.DialStream(Endpoint{IP: h2.IP(), Port: 7000})
	for i := 0; i < 500; i++ { // far beyond the 64-message window
		st.SendMsg(100, i)
	}
	s.RunFor(sim.Minute)
	if got != 500 {
		t.Fatalf("delivered %d of 500", got)
	}
}

func TestStreamDialUnboundPortTimesOut(t *testing.T) {
	// No socket is bound, so nothing can send an RST; the SYN
	// retransmissions give up with a timeout (a silently-dropping
	// firewall looks the same way to real TCP).
	s, _, h1, h2 := streamRig(4, 0)
	var err error
	st := h1.DialStream(Endpoint{IP: h2.IP(), Port: 9999})
	st.OnClose(func(e error) { err = e })
	s.RunFor(5 * sim.Minute)
	if err != ErrStreamTimeout {
		t.Fatalf("err = %v, want timeout", err)
	}
}

func TestStreamRefusedWhenListenerDeregistered(t *testing.T) {
	// A listener that was closed but whose port state persists responds
	// with RST... here the socket is gone too, so the dial times out.
	s, _, h1, h2 := streamRig(5, 0)
	l, _ := h2.ListenStream(7000, func(st *Stream) {})
	l.Close()
	var err error
	st := h1.DialStream(Endpoint{IP: h2.IP(), Port: 7000})
	st.OnClose(func(e error) { err = e })
	s.RunFor(5 * sim.Minute)
	if err == nil {
		t.Fatal("dial to closed listener did not fail")
	}
}

func TestStreamTimesOutOnDeadPeer(t *testing.T) {
	s, _, h1, h2 := streamRig(6, 0)
	h2.ListenStream(7000, func(st *Stream) {})
	st := h1.DialStream(Endpoint{IP: h2.IP(), Port: 7000})
	var err error
	st.OnClose(func(e error) { err = e })
	s.RunFor(5 * sim.Second)
	if !st.Open() {
		t.Fatal("handshake failed")
	}
	h2.SetUp(false)
	st.SendMsg(100, "x")
	s.RunFor(10 * sim.Minute)
	if err != ErrStreamTimeout {
		t.Fatalf("err = %v, want timeout", err)
	}
}

func TestStreamCleanClose(t *testing.T) {
	s, _, h1, h2 := streamRig(7, 0)
	var serverErr error = ErrStreamTimeout
	serverClosed := false
	h2.ListenStream(7000, func(st *Stream) {
		st.OnClose(func(e error) { serverClosed, serverErr = true, e })
	})
	st := h1.DialStream(Endpoint{IP: h2.IP(), Port: 7000})
	var clientErr error = ErrStreamTimeout
	st.OnClose(func(e error) { clientErr = e })
	st.SendMsg(1000, "bye")
	st.Close()
	s.RunFor(sim.Minute)
	if !serverClosed || serverErr != nil || clientErr != nil {
		t.Fatalf("close: server=%v/%v client=%v", serverClosed, serverErr, clientErr)
	}
	// Sending after close is a silent no-op.
	st.SendMsg(1, "late")
}

func TestStreamThroughNAT(t *testing.T) {
	// A TCP-namespace flow through a NAT-like boundary: verified at the
	// natsim level too, but here check the stream layer tracks the
	// translated endpoints.
	s, net, h1, _ := streamRig(8, 0)
	site := net.AddSite("private")
	nat := &fakeNAT{public: net.Root().NextIP()}
	realm := net.AddRealm("lan", net.Root(), nat, MustParseIP("10.9.0.1"))
	inside := net.AddHost("inside", site, realm, HostConfig{})

	var observed Endpoint
	got := 0
	h1.ListenStream(7000, func(st *Stream) {
		observed = st.RemoteEndpoint()
		st.OnMessage(func(size int, payload any) { got++ })
	})
	st := inside.DialStream(Endpoint{IP: h1.IP(), Port: 7000})
	st.SendMsg(100, "hello")
	s.RunFor(sim.Minute)
	if got != 1 {
		t.Fatal("message did not traverse boundary")
	}
	if observed.IP != nat.public {
		t.Fatalf("listener saw %v, want NAT public IP %v", observed, nat.public)
	}
}

// fakeNAT is a minimal full-cone NAT for phys-level tests (natsim has the
// real ones; phys cannot import it without a cycle).
type fakeNAT struct {
	public phys_IP
	inner  *Realm
	ports  map[uint16]Endpoint
	rev    map[endpointKey]uint16
	next   uint16
}

type phys_IP = IP
type endpointKey struct {
	proto uint8
	ep    Endpoint
}

func (f *fakeNAT) Attach(inner, outer *Realm) { f.inner = inner }
func (f *fakeNAT) Claims(ip IP) bool          { return ip == f.public }
func (f *fakeNAT) Outbound(now sim.Time, p *Packet) bool {
	if f.ports == nil {
		f.ports = make(map[uint16]Endpoint)
		f.rev = make(map[endpointKey]uint16)
		f.next = 2000
	}
	k := endpointKey{p.Proto, p.Src}
	port, ok := f.rev[k]
	if !ok {
		port = f.next
		f.next++
		f.rev[k] = port
		f.ports[port] = p.Src
	}
	p.Src = Endpoint{IP: f.public, Port: port}
	return true
}
func (f *fakeNAT) Inbound(now sim.Time, p *Packet) bool {
	inner, ok := f.ports[p.Dst.Port]
	if !ok {
		return false
	}
	p.Dst = inner
	return true
}

func TestUDPAndTCPPortNamespacesIndependent(t *testing.T) {
	s, _, h1, _ := streamRig(9, 0)
	if _, err := h1.Listen(5000); err != nil {
		t.Fatal(err)
	}
	// The same numeric port is free in the TCP namespace.
	if _, err := h1.ListenStream(5000, func(*Stream) {}); err != nil {
		t.Fatalf("TCP port 5000 blocked by UDP binding: %v", err)
	}
	if _, err := h1.ListenStream(5000, func(*Stream) {}); err == nil {
		t.Fatal("double TCP bind allowed")
	}
	_ = s
}

// Property: any sequence of message sizes over any loss rate up to 20%
// arrives complete and in order.
func TestQuickStreamIntegrity(t *testing.T) {
	f := func(sizes []uint16, seedRaw uint32, lossRaw uint8) bool {
		if len(sizes) == 0 || len(sizes) > 80 {
			return true
		}
		loss := float64(lossRaw%21) / 100
		s, _, h1, h2 := streamRig(int64(seedRaw)+1, loss)
		var got []int
		h2.ListenStream(7000, func(st *Stream) {
			st.OnMessage(func(size int, payload any) { got = append(got, payload.(int)) })
		})
		st := h1.DialStream(Endpoint{IP: h2.IP(), Port: 7000})
		for i := range sizes {
			st.SendMsg(int(sizes[i])%4000+1, i)
		}
		s.RunFor(30 * sim.Minute)
		if len(got) != len(sizes) {
			return false
		}
		for i := range got {
			if got[i] != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Fatal(err)
	}
}
