//go:build !packetdebug

package phys

// This file is the production packet pool. Build with -tags packetdebug to
// swap in pool_debug.go, which disables reuse and turns pool misuse
// (double release, use after release) into panics.

// acquirePacket takes a packet from the free list, or allocates one.
func (n *Network) acquirePacket() *Packet {
	p := n.freePkt
	if p != nil {
		n.freePkt = p.nextFree
		p.nextFree = nil
		return p
	}
	return &Packet{}
}

// releasePacket retires a packet to the free list once its delivery (or
// drop) callback has returned. Payload and dest are cleared so the pool
// never pins payload objects or hosts.
func (n *Network) releasePacket(p *Packet) {
	p.Payload = nil
	p.dest = nil
	p.nextFree = n.freePkt
	n.freePkt = p
}

// checkPacketLive is a no-op in production builds; the debug build panics
// when a released packet re-enters the delivery pipeline.
func checkPacketLive(p *Packet, where string) {}
