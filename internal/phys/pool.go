//go:build !packetdebug

package phys

// This file is the production packet pool. Build with -tags packetdebug to
// swap in pool_debug.go, which disables reuse and turns pool misuse
// (double release, use after release, cross-shard release) into panics.
//
// Free lists are per shard: a packet is acquired from and released to the
// executing shard's list, so pooling needs no locks under the parallel
// engine. A packet delivered across shards simply migrates lists — its
// sender's shard loses one pooled packet, the receiver's gains one.

// acquirePacket takes a packet from shard sh's free list, or allocates.
func (n *Network) acquirePacket(sh int) *Packet {
	p := n.freePktSh[sh]
	if p != nil {
		n.freePktSh[sh] = p.nextFree
		p.nextFree = nil
		return p
	}
	return &Packet{}
}

// releasePacket retires a packet to shard sh's free list once its delivery
// (or drop) callback has returned. Payload, dest and entry are cleared so
// the pool never pins payload objects, hosts or realms.
func (n *Network) releasePacket(sh int, p *Packet) {
	p.Payload = nil
	p.dest = nil
	p.entry = nil
	p.nextFree = n.freePktSh[sh]
	n.freePktSh[sh] = p
}

// checkPacketLive is a no-op in production builds; the debug build panics
// when a released packet re-enters the pipeline or the wrong shard touches
// one.
func checkPacketLive(p *Packet, sh int, where string) {}

// packetCrossShard is a no-op in production builds; the debug build
// re-stamps pool ownership when a packet crosses shards.
func packetCrossShard(p *Packet, to int) {}
