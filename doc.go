// Package wow reproduces "WOW: Self-Organizing Wide Area Overlay Networks
// of Virtual Workstations" (Ganguly, Agrawal, Boykin, Figueiredo; HPDC
// 2006) as a Go library: a Brunet-style structured P2P overlay with
// decentralized NAT traversal and adaptive shortcut connections
// (internal/brunet), IP-over-P2P virtual networking (internal/ipop), a
// guest virtual IP stack (internal/vip), virtual workstations with
// wide-area migration (internal/vm), the cluster middleware the paper ran
// unmodified — PBS, NFS, SCP, PVM (internal/middleware) — and the
// simulated physical substrate standing in for the paper's PlanetLab +
// six-domain testbed (internal/phys, internal/natsim, internal/testbed).
//
// The public entry point is internal/core.WOW; see examples/ for runnable
// scenarios and bench_test.go for benchmarks regenerating every table and
// figure of the paper's evaluation.
package wow
