package wow

// Benchmarks regenerating every table and figure of the paper's §V
// evaluation, plus the design ablations called out in DESIGN.md. Each
// benchmark runs the corresponding experiment at a size that finishes in
// seconds-to-tens-of-seconds and reports the headline quantities through
// b.ReportMetric; run `go run ./cmd/wow-bench -paper-scale` for the
// paper's full trial counts. The "shape" targets these benches verify
// against the paper are recorded in EXPERIMENTS.md.

import (
	"math"
	"strconv"
	"testing"

	"wow/internal/experiments"
)

// BenchmarkJoinLatencyDistribution reproduces the abstract's claim: 90%
// of joining nodes self-configure P2P routes within 10 s and >99%
// establish direct connections within 200 s (300 trials in the paper).
func BenchmarkJoinLatencyDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		st := experiments.RunJoinStats(experiments.JoinOpts{Seed: int64(i + 1), Trials: 18})
		b.ReportMetric(st.PctRoutable10s, "%routable<10s")
		b.ReportMetric(st.PctShortcut200s, "%direct<200s")
		b.ReportMetric(st.P90Routable, "p90-routable-s")
		if i == 0 {
			b.Log("\n" + st.String())
		}
	}
}

// BenchmarkFig4JoinProfile reproduces both panels of Figure 4: averaged
// ICMP RTT and loss profiles while a node joins, for UFL-UFL, UFL-NWU and
// NWU-NWU placements.
func BenchmarkFig4JoinProfile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunFig4(experiments.JoinOpts{Seed: int64(i + 1), Trials: 5})
		for _, p := range res.Profiles {
			_, shortcutSeq := p.Regimes()
			b.ReportMetric(float64(shortcutSeq), p.Scenario.Name+"-shortcut-seq")
		}
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkFig5Regimes reproduces Figure 5: the three regimes of dropped
// packets in the first 50 echoes of the UFL-NWU join.
func BenchmarkFig5Regimes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := experiments.RunJoinProfile(
			experiments.JoinOpts{Seed: int64(i + 1), Trials: 5, Pings: 50},
			experiments.JoinScenario{Name: "UFL-NWU", ASite: "ufl.edu", BSite: "northwestern.edu"})
		routable, shortcut := p.Regimes()
		b.ReportMetric(float64(routable), "regime1-end-seq")
		b.ReportMetric(float64(shortcut), "regime3-start-seq")
		if i == 0 {
			b.Log("\n" + p.String())
		}
	}
}

// BenchmarkTable2Bandwidth reproduces Table II: ttcp bandwidth between
// WOW node pairs with and without shortcut connections. Transfer sizes
// are scaled down (the paper's 695 MB no-shortcut transfers take hours of
// virtual time); bandwidth is size-independent once the window fills.
func BenchmarkTable2Bandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable2(experiments.Table2Opts{
			Seed:    int64(i + 1),
			Sizes:   []int64{16 << 20, 8 << 20},
			Repeats: 2,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, cell := range res.Cells {
			name := cell.Scenario
			if cell.Shortcuts {
				name += "-shortcut"
			} else {
				name += "-multihop"
			}
			b.ReportMetric(cell.MeanKBs, name+"-KB/s")
		}
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkFig6ScpMigration reproduces Figure 6: a 720 MB SCP transfer
// whose server VM migrates UFL -> NWU mid-stream, stalls ~8 minutes and
// resumes without an application restart.
func BenchmarkFig6ScpMigration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig6(experiments.Fig6Opts{Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Completed {
			b.Fatal("transfer did not survive migration")
		}
		b.ReportMetric(res.PreMBs, "pre-MB/s")
		b.ReportMetric(res.PostMBs, "post-MB/s")
		b.ReportMetric(res.StallSeconds, "stall-s")
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkFig7PbsMigration reproduces Figure 7: a PBS/MEME job stream
// whose worker VM is loaded, then migrated; the in-transit job completes
// late and subsequent jobs run faster on the unloaded destination.
func BenchmarkFig7PbsMigration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig7(experiments.Fig7Opts{Seed: int64(i + 1), Jobs: 110})
		if err != nil {
			b.Fatal(err)
		}
		if !res.AllSucceeded {
			b.Fatal("a job failed across migration")
		}
		b.ReportMetric(res.BaselineMean, "baseline-s")
		b.ReportMetric(res.LoadedMean, "loaded-s")
		b.ReportMetric(res.MigrationJobSeconds, "in-transit-s")
		b.ReportMetric(res.MigratedMean, "migrated-s")
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkFig8MemeHistogram reproduces Figure 8 and the §V-D1
// throughput comparison: PBS/MEME batch over all 33 nodes, shortcuts
// enabled vs disabled.
func BenchmarkFig8MemeHistogram(b *testing.B) {
	for _, shortcuts := range []bool{true, false} {
		name := "shortcuts"
		if !shortcuts {
			name = "no-shortcuts"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunFig8(experiments.Fig8Opts{
					Seed: int64(i + 1), Jobs: 600, Shortcuts: shortcuts,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Failed > 0 {
					b.Fatalf("%d jobs failed", res.Failed)
				}
				b.ReportMetric(res.JobsPerMinute, "jobs/min")
				b.ReportMetric(res.MeanSeconds, "job-mean-s")
				b.ReportMetric(res.StdSeconds, "job-std-s")
				if i == 0 {
					b.Log("\n" + res.String())
				}
			}
		})
	}
}

// BenchmarkTable3FastDNAml reproduces Table III: sequential and
// PVM-parallel fastDNAml with the paper's full 50-taxa workload.
func BenchmarkTable3FastDNAml(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable3(experiments.Table3Opts{Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.SeqNode002, "seq-node002-s")
		b.ReportMetric(res.Speedup(res.Par15Shortcut), "speedup-15")
		b.ReportMetric(res.Speedup(res.Par30NoShortcut), "speedup-30-nosc")
		b.ReportMetric(res.Speedup(res.Par30Shortcut), "speedup-30-sc")
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkMigrationOutage measures the §V-C no-routability window after
// killing and restarting the IPOP process on a ~150-node overlay.
func BenchmarkMigrationOutage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunOutage(experiments.OutageOpts{Seed: int64(i + 1), Trials: 3})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Summary.Mean, "outage-s")
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkVirtOverhead verifies the §V-D1 ~13% virtual/physical wall
// time overhead propagates end to end.
func BenchmarkVirtOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunVirtOverhead(int64(i + 1))
		b.ReportMetric(res.OverheadPct, "overhead-%")
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkAblationFarConnections sweeps k, the structured-far connection
// count, against greedy-routing path length (DESIGN.md §5).
func BenchmarkAblationFarConnections(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunFarCountAblation(experiments.AblationOpts{Seed: int64(i + 1)}, []int{2, 8})
		for _, p := range res.Points {
			b.ReportMetric(p.AvgHops, "hops@k="+strconv.Itoa(p.FarCount))
		}
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkAblationShortcutThreshold sweeps the §IV-E score threshold
// against adaptation latency.
func BenchmarkAblationShortcutThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunThresholdAblation(experiments.AblationOpts{Seed: int64(i + 1)}, []float64{5, 60})
		for _, p := range res.Points {
			if !math.IsNaN(p.AdaptSeconds) {
				b.ReportMetric(p.AdaptSeconds, "adapt-s@th="+strconv.Itoa(int(p.Threshold)))
			}
		}
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkAblationURIOrder compares linking URI trial orders for the
// hairpin-blocked UFL-UFL case behind Figure 5's regime 3.
func BenchmarkAblationURIOrder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunURIOrderAblation(experiments.AblationOpts{Seed: int64(i + 1)}, 3)
		b.ReportMetric(res.PublicFirstSeconds, "public-first-s")
		b.ReportMetric(res.PrivateFirstSeconds, "private-first-s")
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkAblationRingSize sweeps the overlay size against join latency.
func BenchmarkAblationRingSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunRingSizeAblation(experiments.AblationOpts{Seed: int64(i + 1)}, []int{30, 118}, 3)
		for _, p := range res.Points {
			b.ReportMetric(p.MedianRoutable, "routable-s@n="+strconv.Itoa(p.Routers))
		}
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkNATRebind measures §V-E resilience: the home node's NAT
// flushes its translation tables and the overlay re-establishes
// connectivity autonomously.
func BenchmarkNATRebind(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunNATRebind(int64(i+1), 2)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Recovered {
			b.Fatal("did not recover")
		}
		var worst float64
		for _, s := range res.OutageSeconds {
			if s > worst {
				worst = s
			}
		}
		b.ReportMetric(worst, "worst-outage-s")
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkChurn measures ring self-repair after bulk router failure.
func BenchmarkChurn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunChurn(int64(i+1), 0.25)
		if !res.Healed {
			b.Fatal("overlay did not heal")
		}
		b.ReportMetric(res.RecoverySeconds, "heal-s")
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkLiveMigration compares suspend-copy against pre-copy live
// migration under an active SCP transfer.
func BenchmarkLiveMigration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunLiveMigration(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		if !res.BothCompleted {
			b.Fatal("a transfer failed")
		}
		b.ReportMetric(res.SuspendStallSeconds, "suspend-stall-s")
		b.ReportMetric(res.LiveStallSeconds, "live-stall-s")
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkPartitionHeal measures overlay re-merge after a WAN partition
// severs the Northwestern site plus half the PlanetLab hosts long enough
// for every cross-side link to die.
func BenchmarkPartitionHeal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunPartitionHeal(experiments.PartitionHealOpts{Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Healed {
			b.Fatal("overlay did not re-merge after the partition healed")
		}
		b.ReportMetric(res.Report.RecoverySec, "remerge-s")
		b.ReportMetric(float64(res.Report.Counters.Get("relink.success")), "relinks")
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkGracefulMigration compares the overlay ring-repair window of
// the paper's cold IPOP kill against a graceful leave with ring handoff.
func BenchmarkGracefulMigration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunMigrationOutage(experiments.MigrationOutageOpts{Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		if res.GracefulWindowSec < 0 || res.BaselineWindowSec < 0 {
			b.Fatal("ring never closed before the node returned")
		}
		b.ReportMetric(res.BaselineWindowSec, "cold-window-s")
		b.ReportMetric(res.GracefulWindowSec, "graceful-window-s")
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkCorrelatedChurn measures recovery from an overlapping
// kill+restart wave rolling across a quarter of the routers.
func BenchmarkCorrelatedChurn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunCorrelatedChurn(experiments.ChurnWaveOpts{Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Healed {
			b.Fatal("overlay did not heal after the churn wave")
		}
		b.ReportMetric(res.Report.RecoverySec, "heal-s")
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkSchedulerComparison contrasts PBS push scheduling with
// Condor-style matchmaking on the same MEME stream.
func BenchmarkSchedulerComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunSchedulerComparison(int64(i+1), 300)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.PBSJobsPerMinute, "pbs-jobs/min")
		b.ReportMetric(res.CondorJobsPerMinute, "condor-jobs/min")
		b.ReportMetric(res.CondorMatchLatency, "condor-match-s")
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkAblationTransport compares the UDP and TCP link transports of
// §IV-A: joins work over both, but TCP cannot hole-punch between NATed
// sites, leaving those pairs on slow multi-hop stream chains.
func BenchmarkAblationTransport(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTransportAblation(experiments.AblationOpts{Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.JoinUDP, "join-udp-s")
		b.ReportMetric(res.JoinTCP, "join-tcp-s")
		b.ReportMetric(res.BandwidthUDP, "bw-udp-KB/s")
		b.ReportMetric(res.BandwidthTCP, "bw-tcp-KB/s")
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkScaleRouting measures the per-packet routing hot path on a
// converged 1,000-node overlay: one end-to-end packet per iteration, with
// the virtual clock frozen so keepalive and gossip timers cannot pollute
// the measurement (see experiments.ScaleOverlay). allocs/op here is the
// hard budget the hot-path refactor is held to; BENCH_scale.json records
// the trajectory.
func BenchmarkScaleRouting(b *testing.B) {
	ov, err := experiments.BuildScaleOverlay(experiments.ScaleOpts{Seed: 1, Nodes: 1000})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src, dst := ov.Pair(i)
		ov.RouteOne(src, dst)
	}
	b.StopTimer()
	if ov.Delivered < b.N*99/100 {
		b.Fatalf("delivered %d of %d packets", ov.Delivered, b.N)
	}
}
