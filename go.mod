module wow

go 1.22
