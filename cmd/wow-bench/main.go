// Command wow-bench regenerates every table and figure of the paper's
// evaluation (§V) against the simulated testbed and prints them with the
// paper's numbers alongside. Select experiments with -run; scale trial
// counts with the flags below (defaults are sized to finish in a few
// minutes of wall-clock time; use -paper-scale for the full counts). With
// -json each experiment summary is emitted as one JSON object per line on
// stdout (schema in EXPERIMENTS.md) and human-readable progress moves to
// stderr, so the stream pipes cleanly into jq or a BENCH_*.json capture.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"time"

	"wow/internal/experiments"
	"wow/internal/trace"
)

func main() {
	run := flag.String("run", "all", "comma-separated experiments: join,fig4,fig5,table2,fig6,fig7,fig8,table3,outage,virt,ablations,resilience,faults,schedulers,scale,nat,gray")
	seed := flag.Int64("seed", 1, "simulation seed")
	trials := flag.Int("trials", 20, "trials per join scenario (paper: 100)")
	jobs := flag.Int("jobs", 1000, "MEME jobs for fig8 (paper: 4000)")
	nodes := flag.Int("nodes", 2000, "overlay size for the scale/nat harnesses (1000-20000)")
	packets := flag.Int("packets", 2000, "routed packets measured by the scale harness")
	shards := flag.Int("shards", 0, "scale/nat harnesses: run on this many event shards (0/1 = single queue)")
	workers := flag.Int("workers", 0, "scale/nat harnesses: worker goroutines for sharded runs (0 = min(shards, GOMAXPROCS))")
	batch := flag.Int("batch", 0, "scale/nat harnesses: batched-bootstrap batch size (0 = serial joins, or 256/64 when -shards > 1)")
	settle := flag.Float64("settle", 0, "scale/nat harnesses: convergence settle time in virtual seconds (0 = default)")
	wan := flag.Float64("wan", 0, "scale/nat harnesses: one-way inter-site latency in ms for parallel builds (0 = default; also the shard lookahead)")
	paperScale := flag.Bool("paper-scale", false, "use the paper's full trial counts (slower)")
	jsonOut := flag.Bool("json", false, "emit one JSON object per experiment on stdout")
	csvDir := flag.String("csv", "", "directory to write per-figure CSV series into")
	traceN := flag.Uint64("trace", 0, "gray harness: sample 1-in-N originations for hop-by-hop route tracing (0 = off); records stream as trace.hop/trace.route JSONL envelopes in -json mode")
	traceHealth := flag.Float64("trace-health", 0, "gray harness: per-node health.node snapshot period in virtual seconds (0 = off; needs -trace)")
	flag.Parse()

	// In JSON mode stdout carries only JSON objects; narration goes to
	// stderr so the stream stays machine-consumable.
	narrate := os.Stdout
	if *jsonOut {
		narrate = os.Stderr
	}

	writeCSV := func(name, content string) {
		if *csvDir == "" {
			return
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "csv: %v\n", err)
			return
		}
		path := filepath.Join(*csvDir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "csv: %v\n", err)
			return
		}
		fmt.Fprintf(narrate, "(wrote %s)\n", path)
	}

	if *paperScale {
		*trials = 100
		*jobs = 4000
	}

	known := map[string]bool{
		"all": true, "join": true, "fig4": true, "fig5": true,
		"table2": true, "fig6": true, "fig7": true, "fig8": true,
		"table3": true, "outage": true, "virt": true, "ablations": true,
		"resilience": true, "faults": true, "schedulers": true,
		"scale": true, "nat": true, "gray": true,
	}
	want := map[string]bool{}
	for _, s := range strings.Split(*run, ",") {
		name := strings.TrimSpace(s)
		if !known[name] {
			fmt.Fprintf(os.Stderr, "wow-bench: unknown experiment %q (see -run in -help)\n", name)
			os.Exit(2)
		}
		want[name] = true
	}
	all := want["all"]
	section := func(name, title string) bool {
		if !all && !want[name] {
			return false
		}
		fmt.Fprintf(narrate, "==== %s ====\n", title)
		return true
	}
	timed := func(f func()) {
		start := time.Now()
		f()
		fmt.Fprintf(narrate, "(wall %.1fs)\n\n", time.Since(start).Seconds())
	}
	exitCode := 0
	// show prints an experiment result — its String() rendering, or one
	// JSON envelope line in -json mode — or reports its error and marks the
	// run failed without aborting the remaining experiments.
	show := func(name string, v any, err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "wow-bench: %v\n", err)
			exitCode = 1
			if *jsonOut {
				line, _ := json.Marshal(map[string]any{
					"experiment": name, "seed": *seed, "error": err.Error(),
				})
				fmt.Println(string(line))
			}
			return
		}
		if *jsonOut {
			line, merr := json.Marshal(map[string]any{
				"experiment": name, "seed": *seed, "data": v,
			})
			if merr != nil {
				fmt.Fprintf(os.Stderr, "wow-bench: marshal %s: %v\n", name, merr)
				exitCode = 1
				return
			}
			fmt.Println(string(line))
			return
		}
		if s, ok := v.(fmt.Stringer); ok {
			fmt.Println(s.String())
			return
		}
		fmt.Println(v)
	}

	// emitTrace streams one run's flight-recorder records: one JSONL
	// envelope per record in -json mode (experiment names trace.hop,
	// trace.route and health.node; detector tags which run emitted it), a
	// per-stream count line otherwise.
	emitTrace := func(detector string, recs []trace.Record) {
		if !*jsonOut {
			var hops, routes, health int
			for _, r := range recs {
				switch r.Stream {
				case trace.StreamHop:
					hops++
				case trace.StreamRoute:
					routes++
				case trace.StreamHealth:
					health++
				}
			}
			fmt.Fprintf(narrate, "  [%8s] flight recorder: %d hop, %d route, %d health records\n",
				detector, hops, routes, health)
			return
		}
		for i := range recs {
			line, err := json.Marshal(map[string]any{
				"experiment": recs[i].EnvelopeName(), "seed": *seed,
				"detector": detector, "data": &recs[i],
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "wow-bench: marshal trace record: %v\n", err)
				exitCode = 1
				return
			}
			fmt.Println(string(line))
		}
	}

	if section("join", "Join latency (abstract claim)") {
		timed(func() {
			show("join", experiments.RunJoinStats(experiments.JoinOpts{Seed: *seed, Trials: *trials * 3}), nil)
		})
	}
	if section("fig4", "Figure 4: ICMP profiles during node join") {
		timed(func() {
			res := experiments.RunFig4(experiments.JoinOpts{Seed: *seed, Trials: *trials})
			show("fig4", res, nil)
			for _, p := range res.Profiles {
				writeCSV("fig4-"+p.Scenario.Name+".csv", p.CSV())
				if !*jsonOut {
					continue
				}
				// One fig4.series row per echo sequence number; rtt_ms is
				// null when every trial dropped that echo (NaN internally).
				for i := range p.LossPct {
					var rtt any
					if i < len(p.RTTms) && !math.IsNaN(p.RTTms[i]) {
						rtt = p.RTTms[i]
					}
					line, _ := json.Marshal(map[string]any{
						"experiment": "fig4.series", "seed": *seed,
						"data": map[string]any{
							"scenario": p.Scenario.Name, "seq": i + 1,
							"loss_pct": p.LossPct[i], "rtt_ms": rtt,
						},
					})
					fmt.Println(string(line))
				}
			}
		})
	}
	if section("fig5", "Figure 5: three regimes (UFL-NWU, first 50 echoes)") {
		timed(func() {
			p := experiments.RunJoinProfile(experiments.JoinOpts{Seed: *seed, Trials: *trials, Pings: 50},
				experiments.JoinScenario{Name: "UFL-NWU", ASite: "ufl.edu", BSite: "northwestern.edu"})
			if *jsonOut {
				show("fig5", p, nil)
			} else {
				for i := 0; i < 50; i++ {
					fmt.Printf("  seq %2d: loss %5.1f%%  rtt %7.1f ms\n", i+1, p.LossPct[i], p.RTTms[i])
				}
				r, s := p.Regimes()
				fmt.Printf("  regime 1 ends ~seq %d (routable); regime 3 begins ~seq %d (shortcut)\n", r, s)
			}
		})
	}
	if section("table2", "Table II: ttcp bandwidth") {
		timed(func() {
			res, err := experiments.RunTable2(experiments.Table2Opts{Seed: *seed})
			show("table2", res, err)
		})
	}
	if section("fig6", "Figure 6: SCP transfer across server migration") {
		timed(func() {
			res, err := experiments.RunFig6(experiments.Fig6Opts{Seed: *seed})
			show("fig6", res, err)
			if err == nil {
				writeCSV("fig6-progress.csv", res.Progress.CSV())
				if *jsonOut {
					// One fig6.series row per 5 s progress sample: seconds
					// since transfer start, bytes on the client's disk.
					for i := 0; i < res.Progress.Len(); i++ {
						t, v := res.Progress.At(i)
						line, _ := json.Marshal(map[string]any{
							"experiment": "fig6.series", "seed": *seed,
							"data": map[string]any{"t_sec": t, "bytes": v},
						})
						fmt.Println(string(line))
					}
				}
			}
		})
	}
	if section("fig7", "Figure 7: PBS job stream across worker migration") {
		timed(func() {
			res, err := experiments.RunFig7(experiments.Fig7Opts{Seed: *seed})
			show("fig7", res, err)
		})
	}
	if section("fig8", "Figure 8 / §V-D1: MEME batch throughput") {
		timed(func() {
			for _, sc := range []bool{true, false} {
				res, err := experiments.RunFig8(experiments.Fig8Opts{Seed: *seed, Jobs: *jobs, Shortcuts: sc})
				show("fig8", res, err)
			}
		})
	}
	if section("table3", "Table III: fastDNAml-PVM") {
		timed(func() {
			res, err := experiments.RunTable3(experiments.Table3Opts{Seed: *seed})
			show("table3", res, err)
		})
	}
	if section("outage", "§V-C: IPOP kill/restart no-routability window") {
		timed(func() {
			res, err := experiments.RunOutage(experiments.OutageOpts{Seed: *seed})
			show("outage", res, err)
		})
	}
	if section("virt", "§V-D1: virtualization overhead") {
		timed(func() {
			show("virt", experiments.RunVirtOverhead(*seed), nil)
		})
	}
	if section("resilience", "Resilience: NAT rebinding, churn, live migration") {
		timed(func() {
			natRes, err := experiments.RunNATRebind(*seed, 3)
			show("nat-rebind", natRes, err)
			show("churn", experiments.RunChurn(*seed, 0.25), nil)
			migRes, err := experiments.RunLiveMigration(*seed)
			show("live-migration", migRes, err)
		})
	}
	if section("faults", "Fault injection: migration window, partition repair, correlated churn") {
		timed(func() {
			mo, err := experiments.RunMigrationOutage(experiments.MigrationOutageOpts{Seed: *seed})
			show("migration-outage", mo, err)
			ph, err := experiments.RunPartitionHeal(experiments.PartitionHealOpts{Seed: *seed})
			show("partition-heal", ph, err)
			cc, err := experiments.RunCorrelatedChurn(experiments.ChurnWaveOpts{Seed: *seed})
			show("correlated-churn", cc, err)
		})
	}
	if section("schedulers", "Middleware comparison: PBS vs Condor") {
		timed(func() {
			res, err := experiments.RunSchedulerComparison(*seed, *jobs/2)
			show("schedulers", res, err)
		})
	}
	if section("ablations", "Design ablations") {
		timed(func() {
			ao := experiments.AblationOpts{Seed: *seed}
			show("ablation-farcount", experiments.RunFarCountAblation(ao, nil), nil)
			show("ablation-threshold", experiments.RunThresholdAblation(ao, nil), nil)
			show("ablation-uriorder", experiments.RunURIOrderAblation(ao, 5), nil)
			show("ablation-ringsize", experiments.RunRingSizeAblation(ao, nil, 5), nil)
			ta, err := experiments.RunTransportAblation(ao)
			show("ablation-transport", ta, err)
		})
	}
	if section("nat", "NAT traversal: pairwise connectivity matrix, all-symmetric ring") {
		timed(func() {
			m, err := experiments.RunNATMatrix(*seed)
			show("nat-matrix", m, err)
			srOpts := experiments.SymRingOpts{Seed: *seed}
			if *shards > 1 || *batch > 0 {
				// Parallel mode: the sharded batched build takes the same
				// sizing flags as the scale harness and streams a
				// nat.series JSONL row per batch (tunnels formed, upgrade
				// probes, routability over build time).
				srOpts.Nodes = *nodes
				srOpts.Shards = *shards
				srOpts.Workers = *workers
				srOpts.BatchJoin = *batch
				srOpts.Settle = experiments.SettleSeconds(*settle)
				srOpts.WANLatency = experiments.Milliseconds(*wan)
				srOpts.OnProgress = func(p experiments.NATPoint) {
					if *jsonOut {
						line, _ := json.Marshal(map[string]any{
							"experiment": "nat.series", "seed": *seed, "data": p,
						})
						fmt.Println(string(line))
						return
					}
					fmt.Fprintf(narrate, "  t=%6.0fs virt  %6d joined  routable %5.1f%%  %6d tunnels  %8d upgrade probes  %12d events\n",
						p.VirtualSec, p.Joined, p.RoutableFrac*100, p.Tunnels, p.UpgradeProbes, p.Events)
				}
			}
			sr, err := experiments.RunSymmetricRing(srOpts)
			show("symmetric-ring", sr, err)
		})
	}
	if section("gray", "Gray failures: fixed vs adaptive detector survivability") {
		timed(func() {
			// The bench-wide -nodes default (2000) is sized for the scale
			// harness; gray's own default is 32. Honor -nodes only when the
			// user passed it explicitly.
			gOpts := experiments.GrayOpts{
				Seed: *seed, Shards: *shards, Workers: *workers,
				TraceSample: *traceN,
				TraceHealth: experiments.SettleSeconds(*traceHealth),
			}
			flag.Visit(func(f *flag.Flag) {
				if f.Name == "nodes" {
					gOpts.Nodes = *nodes
				}
			})
			gOpts.OnProgress = func(p experiments.GrayPoint) {
				if *jsonOut {
					line, _ := json.Marshal(map[string]any{
						"experiment": "gray.series", "seed": *seed, "data": p,
					})
					fmt.Println(string(line))
					return
				}
				fmt.Fprintf(narrate, "  [%8s] w%d t=%6.0fs virt  routable %5.1f%%  false %4d  confirmed %3d  deaths %3d  detect %6.0fms  %10d events\n",
					p.Detector, p.Window, p.VirtualSec, p.RoutableFrac*100,
					p.FalseSuspects, p.Confirmed, p.Deaths, p.MeanDetectMs, p.Events)
			}
			res, err := experiments.RunGrayCompare(gOpts)
			if err == nil && *traceN > 0 {
				emitTrace(res.Fixed.Detector, res.Fixed.Trace)
				emitTrace(res.Adaptive.Detector, res.Adaptive.Trace)
			}
			show("gray", res, err)
		})
	}
	if section("scale", "Scale harness: 1k-20k-node overlay, routing hot path") {
		timed(func() {
			opts := experiments.ScaleOpts{
				Seed: *seed, Nodes: *nodes, Packets: *packets,
				Shards: *shards, Workers: *workers, BatchJoin: *batch,
				Settle:     experiments.SettleSeconds(*settle),
				WANLatency: experiments.Milliseconds(*wan),
			}
			// Batched builds stream a joins/sec-over-build-time series: one
			// scale.series JSONL row per batch in -json mode, a narrated
			// progress line otherwise.
			opts.OnProgress = func(p experiments.ScalePoint) {
				if *jsonOut {
					line, _ := json.Marshal(map[string]any{
						"experiment": "scale.series", "seed": *seed, "data": p,
					})
					fmt.Println(string(line))
					return
				}
				fmt.Fprintf(narrate, "  t=%6.0fs virt  %6d joined  %7.1f joins/s wall  %12d events\n",
					p.VirtualSec, p.Joined, p.JoinsPerSec, p.Events)
			}
			res, err := experiments.RunScale(opts)
			show("scale", res, err)
		})
	}
	os.Exit(exitCode)
}
