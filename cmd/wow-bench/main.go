// Command wow-bench regenerates every table and figure of the paper's
// evaluation (§V) against the simulated testbed and prints them with the
// paper's numbers alongside. Select experiments with -run; scale trial
// counts with the flags below (defaults are sized to finish in a few
// minutes of wall-clock time; use -paper-scale for the full counts).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"wow/internal/experiments"
)

func main() {
	run := flag.String("run", "all", "comma-separated experiments: join,fig4,fig5,table2,fig6,fig7,fig8,table3,outage,virt,ablations,resilience,faults,schedulers")
	seed := flag.Int64("seed", 1, "simulation seed")
	trials := flag.Int("trials", 20, "trials per join scenario (paper: 100)")
	jobs := flag.Int("jobs", 1000, "MEME jobs for fig8 (paper: 4000)")
	paperScale := flag.Bool("paper-scale", false, "use the paper's full trial counts (slower)")
	csvDir := flag.String("csv", "", "directory to write per-figure CSV series into")
	flag.Parse()

	writeCSV := func(name, content string) {
		if *csvDir == "" {
			return
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "csv: %v\n", err)
			return
		}
		path := filepath.Join(*csvDir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "csv: %v\n", err)
			return
		}
		fmt.Printf("(wrote %s)\n", path)
	}

	if *paperScale {
		*trials = 100
		*jobs = 4000
	}

	known := map[string]bool{
		"all": true, "join": true, "fig4": true, "fig5": true,
		"table2": true, "fig6": true, "fig7": true, "fig8": true,
		"table3": true, "outage": true, "virt": true, "ablations": true,
		"resilience": true, "faults": true, "schedulers": true,
	}
	want := map[string]bool{}
	for _, s := range strings.Split(*run, ",") {
		name := strings.TrimSpace(s)
		if !known[name] {
			fmt.Fprintf(os.Stderr, "wow-bench: unknown experiment %q (see -run in -help)\n", name)
			os.Exit(2)
		}
		want[name] = true
	}
	all := want["all"]
	section := func(name, title string) bool {
		if !all && !want[name] {
			return false
		}
		fmt.Printf("==== %s ====\n", title)
		return true
	}
	timed := func(f func()) {
		start := time.Now()
		f()
		fmt.Printf("(wall %.1fs)\n\n", time.Since(start).Seconds())
	}
	exitCode := 0
	// show prints an experiment result, or reports its error and marks
	// the run failed without aborting the remaining experiments.
	show := func(v fmt.Stringer, err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "wow-bench: %v\n", err)
			exitCode = 1
			return
		}
		fmt.Println(v.String())
	}

	if section("join", "Join latency (abstract claim)") {
		timed(func() {
			fmt.Println(experiments.RunJoinStats(experiments.JoinOpts{Seed: *seed, Trials: *trials * 3}).String())
		})
	}
	if section("fig4", "Figure 4: ICMP profiles during node join") {
		timed(func() {
			res := experiments.RunFig4(experiments.JoinOpts{Seed: *seed, Trials: *trials})
			fmt.Println(res.String())
			for _, p := range res.Profiles {
				writeCSV("fig4-"+p.Scenario.Name+".csv", p.CSV())
			}
		})
	}
	if section("fig5", "Figure 5: three regimes (UFL-NWU, first 50 echoes)") {
		timed(func() {
			p := experiments.RunJoinProfile(experiments.JoinOpts{Seed: *seed, Trials: *trials, Pings: 50},
				experiments.JoinScenario{Name: "UFL-NWU", ASite: "ufl.edu", BSite: "northwestern.edu"})
			for i := 0; i < 50; i++ {
				fmt.Printf("  seq %2d: loss %5.1f%%  rtt %7.1f ms\n", i+1, p.LossPct[i], p.RTTms[i])
			}
			r, s := p.Regimes()
			fmt.Printf("  regime 1 ends ~seq %d (routable); regime 3 begins ~seq %d (shortcut)\n", r, s)
		})
	}
	if section("table2", "Table II: ttcp bandwidth") {
		timed(func() {
			show(experiments.RunTable2(experiments.Table2Opts{Seed: *seed}))
		})
	}
	if section("fig6", "Figure 6: SCP transfer across server migration") {
		timed(func() {
			res, err := experiments.RunFig6(experiments.Fig6Opts{Seed: *seed})
			show(res, err)
			if err == nil {
				writeCSV("fig6-progress.csv", res.Progress.CSV())
			}
		})
	}
	if section("fig7", "Figure 7: PBS job stream across worker migration") {
		timed(func() {
			show(experiments.RunFig7(experiments.Fig7Opts{Seed: *seed}))
		})
	}
	if section("fig8", "Figure 8 / §V-D1: MEME batch throughput") {
		timed(func() {
			for _, sc := range []bool{true, false} {
				show(experiments.RunFig8(experiments.Fig8Opts{Seed: *seed, Jobs: *jobs, Shortcuts: sc}))
			}
		})
	}
	if section("table3", "Table III: fastDNAml-PVM") {
		timed(func() {
			show(experiments.RunTable3(experiments.Table3Opts{Seed: *seed}))
		})
	}
	if section("outage", "§V-C: IPOP kill/restart no-routability window") {
		timed(func() {
			show(experiments.RunOutage(experiments.OutageOpts{Seed: *seed}))
		})
	}
	if section("virt", "§V-D1: virtualization overhead") {
		timed(func() {
			fmt.Println(experiments.RunVirtOverhead(*seed).String())
		})
	}
	if section("resilience", "Resilience: NAT rebinding, churn, live migration") {
		timed(func() {
			show(experiments.RunNATRebind(*seed, 3))
			fmt.Println(experiments.RunChurn(*seed, 0.25).String())
			show(experiments.RunLiveMigration(*seed))
		})
	}
	if section("faults", "Fault injection: migration window, partition repair, correlated churn") {
		timed(func() {
			show(experiments.RunMigrationOutage(experiments.MigrationOutageOpts{Seed: *seed}))
			show(experiments.RunPartitionHeal(experiments.PartitionHealOpts{Seed: *seed}))
			show(experiments.RunCorrelatedChurn(experiments.ChurnWaveOpts{Seed: *seed}))
		})
	}
	if section("schedulers", "Middleware comparison: PBS vs Condor") {
		timed(func() {
			show(experiments.RunSchedulerComparison(*seed, *jobs/2))
		})
	}
	if section("ablations", "Design ablations") {
		timed(func() {
			ao := experiments.AblationOpts{Seed: *seed}
			fmt.Println(experiments.RunFarCountAblation(ao, nil).String())
			fmt.Println(experiments.RunThresholdAblation(ao, nil).String())
			fmt.Println(experiments.RunURIOrderAblation(ao, 5).String())
			fmt.Println(experiments.RunRingSizeAblation(ao, nil, 5).String())
			show(experiments.RunTransportAblation(ao))
		})
	}
	os.Exit(exitCode)
}
