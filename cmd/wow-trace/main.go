// Command wow-trace analyzes flight-recorder JSONL produced by
// `wow-bench -run gray -json -trace N` (or raw trace.MarshalJSONL output):
// it reconstructs every sampled route from its hop records, checks each
// chain link-by-link, and reports hop-count and latency distributions,
// stretch against initial ring distance, tunnel-relay usage, anomalies
// (routing loops, dead-end drops, relay flaps) and a health-snapshot
// summary. Input comes from file arguments or stdin; lines that are not
// trace envelopes (experiment summaries, series rows) are skipped, so a
// whole wow-bench -json capture pipes straight in.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"

	"wow/internal/metrics"
	"wow/internal/trace"
)

// envelope is the wow-bench JSONL framing around one record.
type envelope struct {
	Experiment string          `json:"experiment"`
	Detector   string          `json:"detector"`
	Data       json.RawMessage `json:"data"`
}

// taggedRecord is one parsed input record with the detector (run) that
// emitted it; raw trace.MarshalJSONL input leaves Detector empty.
type taggedRecord struct {
	Detector string
	Rec      trace.Record
}

// readRecords parses trace/health records out of a JSONL stream,
// tolerating interleaved non-trace lines. It returns the records in input
// order plus the number of lines skipped.
func readRecords(r io.Reader) ([]taggedRecord, int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	var out []taggedRecord
	skipped := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var env envelope
		if err := json.Unmarshal([]byte(line), &env); err != nil {
			skipped++
			continue
		}
		var rec trace.Record
		switch {
		case env.Data != nil && (strings.HasPrefix(env.Experiment, "trace.") || env.Experiment == "health.node"):
			if err := json.Unmarshal(env.Data, &rec); err != nil || rec.Stream == "" {
				skipped++
				continue
			}
		case env.Experiment == "":
			// Raw trace.MarshalJSONL form: the line is the record itself.
			if err := json.Unmarshal([]byte(line), &rec); err != nil || rec.Stream == "" {
				skipped++
				continue
			}
		default:
			skipped++
			continue
		}
		out = append(out, taggedRecord{Detector: env.Detector, Rec: rec})
	}
	return out, skipped, sc.Err()
}

// route is one sampled route's reconstructed life.
type route struct {
	Detector string
	ID       uint64
	Hops     []trace.Record // origin first, then forwarding hops, by (T, Hop)
	Terminal *trace.Record
	Extra    int // route records beyond the first (should never happen)
}

// chainBreaks counts broken links in the hop chain: hop i names Next=X but
// hop i+1 executed on node Y != X.
func (r *route) chainBreaks() int {
	breaks := 0
	for i := 0; i+1 < len(r.Hops); i++ {
		if r.Hops[i+1].Hop != 0 && r.Hops[i].Next != "" && r.Hops[i+1].Node != r.Hops[i].Next {
			breaks++
		}
	}
	return breaks
}

// reconstructed reports whether the route is fully accounted for: an
// origin record, exactly one terminal, and an unbroken hop chain.
func (r *route) reconstructed() bool {
	return len(r.Hops) > 0 && r.Hops[0].Kind == trace.KindOrigin &&
		r.Terminal != nil && r.Extra == 0 && r.chainBreaks() == 0
}

// loop reports whether any node appears twice along the forwarding path.
func (r *route) loop() bool {
	seen := map[string]bool{}
	for _, h := range r.Hops {
		if h.Node != "" && h.Hop == 0 && h.Kind == trace.KindOrigin {
			seen[h.Node] = true
			continue
		}
		if h.Next == "" {
			continue
		}
		if seen[h.Next] {
			return true
		}
		seen[h.Next] = true
	}
	return false
}

// report is the full analysis, also emittable as one JSON object.
type report struct {
	Records       int            `json:"records"`
	Skipped       int            `json:"skipped_lines"`
	HopRecords    int            `json:"hop_records"`
	RouteRecords  int            `json:"route_records"`
	HealthRecords int            `json:"health_records"`
	Routes        int            `json:"routes"`
	Reconstructed int            `json:"reconstructed"`
	ReconFrac     float64        `json:"reconstructed_frac"`
	Outcomes      map[string]int `json:"outcomes"`

	// Percentiles cover delivered routes only; NaN (no delivered routes)
	// marshals as -1.
	HopP50   float64 `json:"hop_p50"`
	HopP90   float64 `json:"hop_p90"`
	HopP99   float64 `json:"hop_p99"`
	LatP50Ms float64 `json:"lat_p50_ms"`
	LatP90Ms float64 `json:"lat_p90_ms"`
	LatP99Ms float64 `json:"lat_p99_ms"`

	// StretchByDistBits maps bits(initial ring distance) -> mean hops of
	// delivered routes starting that far out.
	StretchByDistBits map[int]float64 `json:"stretch_by_dist_bits"`
	// RelayUse counts tunnel-relay hops per relay address.
	RelayUse map[string]int `json:"relay_use,omitempty"`

	Loops      int `json:"loops"`
	DeadEnds   int `json:"dead_ends"`
	RelayFlaps int `json:"relay_flaps"`

	HealthNodes   int     `json:"health_nodes"`
	HealthFinal   float64 `json:"health_final_routable_frac"`
	MeanBacklog   float64 `json:"health_mean_backlog"`
	latHist       *metrics.LogHistogram
	routesByKey   []*route
	flapsDetail   []string
	deadendDetail map[string]int
}

// analyze reconstructs routes and computes the report.
func analyze(recs []taggedRecord) *report {
	rep := &report{
		Outcomes:          map[string]int{},
		StretchByDistBits: map[int]float64{},
		RelayUse:          map[string]int{},
		deadendDetail:     map[string]int{},
		latHist:           metrics.NewLogHistogram(0.1, 2, 18), // 0.1 ms .. ~26 s
	}
	rep.Records = len(recs)
	routes := map[[2]string]map[uint64]*route{}
	get := func(det string, id uint64) *route {
		key := [2]string{det}
		m := routes[key]
		if m == nil {
			m = map[uint64]*route{}
			routes[key] = m
		}
		r := m[id]
		if r == nil {
			r = &route{Detector: det, ID: id}
			m[id] = r
			rep.routesByKey = append(rep.routesByKey, r)
		}
		return r
	}

	// Relay-flap detection: per (detector, node, next) tunnel edge, a Via
	// change between consecutive sightings is one flap.
	lastVia := map[[3]string]string{}

	type healthLast struct {
		routable bool
		backlog  int
	}
	health := map[[2]string]healthLast{}
	var backlogSum, backlogN float64

	for _, tr := range recs {
		rec := tr.Rec
		switch rec.Stream {
		case trace.StreamHop:
			rep.HopRecords++
			r := get(tr.Detector, rec.Trace)
			r.Hops = append(r.Hops, rec)
			if rec.Kind == trace.KindTunnelRelay && rec.Via != "" {
				rep.RelayUse[rec.Via]++
				key := [3]string{tr.Detector, rec.Node, rec.Next}
				if prev, ok := lastVia[key]; ok && prev != rec.Via {
					rep.RelayFlaps++
					rep.flapsDetail = append(rep.flapsDetail, fmt.Sprintf(
						"%s: %s->%s via %s then %s", tr.Detector, short(rec.Node), short(rec.Next), short(prev), short(rec.Via)))
				}
				lastVia[key] = rec.Via
			}
		case trace.StreamRoute:
			rep.RouteRecords++
			r := get(tr.Detector, rec.Trace)
			if r.Terminal == nil {
				c := rec
				r.Terminal = &c
			} else {
				r.Extra++
			}
			rep.Outcomes[rec.Outcome]++
		case trace.StreamHealth:
			rep.HealthRecords++
			health[[2]string{tr.Detector, rec.Node}] = healthLast{rec.Routable, rec.Backlog}
			backlogSum += float64(rec.Backlog)
			backlogN++
		}
	}

	var hops, lats []float64
	for _, r := range rep.routesByKey {
		sort.SliceStable(r.Hops, func(i, j int) bool {
			if r.Hops[i].T != r.Hops[j].T {
				return r.Hops[i].T < r.Hops[j].T
			}
			return r.Hops[i].Hop < r.Hops[j].Hop
		})
		rep.Routes++
		if r.reconstructed() {
			rep.Reconstructed++
		}
		if r.loop() {
			rep.Loops++
		}
		if r.Terminal == nil {
			continue
		}
		out := r.Terminal.Outcome
		delivered := strings.HasPrefix(out, "delivered")
		if !delivered {
			rep.DeadEnds++
			rep.deadendDetail[out]++
		}
		if delivered {
			hops = append(hops, float64(r.Terminal.Hops))
			ms := float64(r.Terminal.LatNs) / 1e6
			lats = append(lats, ms)
			rep.latHist.Add(ms)
		}
	}
	// Stretch: mean hops per bits(initial distance) bucket.
	sums := map[int]float64{}
	counts := map[int]float64{}
	for _, r := range rep.routesByKey {
		if r.Terminal == nil || !strings.HasPrefix(r.Terminal.Outcome, "delivered") {
			continue
		}
		if len(r.Hops) == 0 || r.Hops[0].Kind != trace.KindOrigin {
			continue
		}
		bits := distBits(r.Hops[0].Dist)
		sums[bits] += float64(r.Terminal.Hops)
		counts[bits]++
	}
	rep.StretchByDistBits = map[int]float64{}
	for b, s := range sums {
		rep.StretchByDistBits[b] = s / counts[b]
	}

	if rep.Routes > 0 {
		rep.ReconFrac = float64(rep.Reconstructed) / float64(rep.Routes)
	}
	nanAsNeg := func(v float64) float64 {
		if math.IsNaN(v) {
			return -1
		}
		return v
	}
	rep.HopP50 = nanAsNeg(metrics.Percentile(hops, 50))
	rep.HopP90 = nanAsNeg(metrics.Percentile(hops, 90))
	rep.HopP99 = nanAsNeg(metrics.Percentile(hops, 99))
	rep.LatP50Ms = nanAsNeg(metrics.Percentile(lats, 50))
	rep.LatP90Ms = nanAsNeg(metrics.Percentile(lats, 90))
	rep.LatP99Ms = nanAsNeg(metrics.Percentile(lats, 99))
	rep.HealthNodes = len(health)
	if len(health) > 0 {
		routable := 0
		for _, h := range health {
			if h.routable {
				routable++
			}
		}
		rep.HealthFinal = float64(routable) / float64(len(health))
	}
	if backlogN > 0 {
		rep.MeanBacklog = backlogSum / backlogN
	}
	return rep
}

// distBits is the bit length of the top-64 ring distance — the log2
// bucket stretch is reported against.
func distBits(d uint64) int {
	bits := 0
	for d > 0 {
		bits++
		d >>= 1
	}
	return bits
}

func short(addr string) string {
	if len(addr) > 8 {
		return addr[:8]
	}
	return addr
}

func pctOr(v float64) string {
	if v < 0 || math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.1f", v)
}

// String renders the human report.
func (rep *report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "flight recorder: %d records (%d hop, %d route, %d health; %d non-trace lines skipped)\n",
		rep.Records, rep.HopRecords, rep.RouteRecords, rep.HealthRecords, rep.Skipped)
	fmt.Fprintf(&b, "routes: %d sampled, %d reconstructed (%.1f%%)\n",
		rep.Routes, rep.Reconstructed, rep.ReconFrac*100)
	if len(rep.Outcomes) > 0 {
		names := make([]string, 0, len(rep.Outcomes))
		for n := range rep.Outcomes {
			names = append(names, n)
		}
		sort.Strings(names)
		b.WriteString("outcomes:\n")
		for _, n := range names {
			fmt.Fprintf(&b, "  %-22s %d\n", n, rep.Outcomes[n])
		}
	}
	fmt.Fprintf(&b, "hops (delivered): p50=%s p90=%s p99=%s\n", pctOr(rep.HopP50), pctOr(rep.HopP90), pctOr(rep.HopP99))
	fmt.Fprintf(&b, "latency ms (delivered): p50=%s p90=%s p99=%s\n", pctOr(rep.LatP50Ms), pctOr(rep.LatP90Ms), pctOr(rep.LatP99Ms))
	if rep.latHist.Total() > 0 {
		b.WriteString("latency distribution (ms, log2 bins):\n")
		b.WriteString(rep.latHist.String())
	}
	if len(rep.StretchByDistBits) > 0 {
		b.WriteString("stretch (mean hops by initial ring distance bits):\n")
		bits := make([]int, 0, len(rep.StretchByDistBits))
		for k := range rep.StretchByDistBits {
			bits = append(bits, k)
		}
		sort.Ints(bits)
		for _, k := range bits {
			fmt.Fprintf(&b, "  2^%-3d %0.2f hops\n", k, rep.StretchByDistBits[k])
		}
	}
	if len(rep.RelayUse) > 0 {
		b.WriteString("tunnel relay usage:\n")
		names := make([]string, 0, len(rep.RelayUse))
		for n := range rep.RelayUse {
			names = append(names, n)
		}
		sort.Slice(names, func(i, j int) bool {
			if rep.RelayUse[names[i]] != rep.RelayUse[names[j]] {
				return rep.RelayUse[names[i]] > rep.RelayUse[names[j]]
			}
			return names[i] < names[j]
		})
		for _, n := range names {
			fmt.Fprintf(&b, "  %s %d frames\n", short(n), rep.RelayUse[n])
		}
	}
	fmt.Fprintf(&b, "anomalies: %d loops, %d dead-end drops, %d relay flaps\n",
		rep.Loops, rep.DeadEnds, rep.RelayFlaps)
	if len(rep.deadendDetail) > 0 {
		names := make([]string, 0, len(rep.deadendDetail))
		for n := range rep.deadendDetail {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(&b, "  dead end: %-22s %d\n", n, rep.deadendDetail[n])
		}
	}
	for _, f := range rep.flapsDetail {
		fmt.Fprintf(&b, "  relay flap: %s\n", f)
	}
	if rep.HealthRecords > 0 {
		fmt.Fprintf(&b, "health: %d nodes, final routable %.1f%%, mean repair backlog %.2f\n",
			rep.HealthNodes, rep.HealthFinal*100, rep.MeanBacklog)
	}
	return b.String()
}

func main() {
	jsonOut := flag.Bool("json", false, "emit the analysis as one JSON object")
	flag.Parse()

	var in io.Reader = os.Stdin
	if args := flag.Args(); len(args) > 0 {
		readers := make([]io.Reader, 0, len(args))
		for _, path := range args {
			f, err := os.Open(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "wow-trace: %v\n", err)
				os.Exit(2)
			}
			defer f.Close()
			readers = append(readers, f)
		}
		in = io.MultiReader(readers...)
	}
	recs, skipped, err := readRecords(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wow-trace: read: %v\n", err)
		os.Exit(2)
	}
	rep := analyze(recs)
	rep.Skipped = skipped
	if *jsonOut {
		line, err := json.Marshal(rep)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wow-trace: marshal: %v\n", err)
			os.Exit(2)
		}
		fmt.Println(string(line))
		return
	}
	fmt.Print(rep.String())
}
