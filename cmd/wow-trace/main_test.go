package main

import (
	"encoding/json"
	"strings"
	"testing"

	"wow/internal/experiments"
	"wow/internal/trace"
)

// TestReadRecordsForms: the reader accepts both input framings — wow-bench
// envelopes and raw trace.MarshalJSONL lines — and counts everything else
// as skipped without failing.
func TestReadRecordsForms(t *testing.T) {
	in := strings.Join([]string{
		`{"experiment":"trace.hop","seed":5,"detector":"adaptive","data":{"stream":"hop","t":7,"node":"n1","trace":9,"kind":"origin"}}`,
		`{"experiment":"trace.route","seed":5,"detector":"adaptive","data":{"stream":"route","t":8,"trace":9,"outcome":"delivered"}}`,
		`{"experiment":"health.node","seed":5,"detector":"fixed","data":{"stream":"health","t":9,"node":"n2","routable":true}}`,
		`{"stream":"hop","t":10,"node":"n3","trace":11,"kind":"origin"}`,      // raw form
		`{"experiment":"gray.summary","seed":5,"data":{"timeline":"w0 ..."}}`, // other experiment: skip
		`not json at all`, // skip
		``,                // blank: ignored entirely
		`{"experiment":"trace.hop","data":{"nonsense":true}}`, // trace envelope, no stream: skip
	}, "\n")
	recs, skipped, err := readRecords(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("parsed %d records, want 4: %+v", len(recs), recs)
	}
	if skipped != 3 {
		t.Errorf("skipped = %d, want 3", skipped)
	}
	if recs[0].Detector != "adaptive" || recs[0].Rec.Stream != trace.StreamHop || recs[0].Rec.Trace != 9 {
		t.Errorf("envelope hop parsed wrong: %+v", recs[0])
	}
	if recs[2].Detector != "fixed" || !recs[2].Rec.Routable {
		t.Errorf("health record parsed wrong: %+v", recs[2])
	}
	if recs[3].Detector != "" || recs[3].Rec.Node != "n3" {
		t.Errorf("raw record parsed wrong: %+v", recs[3])
	}
}

// TestAnalyzeAnomalies drives analyze with hand-built routes exercising
// every anomaly counter: a clean delivered route, a routing loop, a
// dead-end drop, a broken chain, and a relay flap.
func TestAnalyzeAnomalies(t *testing.T) {
	rec := func(det string, r trace.Record) taggedRecord { return taggedRecord{Detector: det, Rec: r} }
	recs := []taggedRecord{
		// Route 1: clean two-hop delivery, origin distance 2^10 bucket.
		rec("a", trace.Record{Stream: trace.StreamHop, T: 1, Node: "n1", Trace: 1, Kind: trace.KindOrigin, Dist: 1 << 9, Src: "n1", Dst: "n3"}),
		rec("a", trace.Record{Stream: trace.StreamHop, T: 1, Node: "n1", Trace: 1, Hop: 1, Kind: "near", Next: "n2"}),
		rec("a", trace.Record{Stream: trace.StreamHop, T: 2, Node: "n2", Trace: 1, Hop: 2, Kind: "near", Next: "n3"}),
		rec("a", trace.Record{Stream: trace.StreamRoute, T: 3, Node: "n3", Trace: 1, Hops: 2, LatNs: 2e6, Outcome: "delivered"}),
		// Route 2: loops back through n1 and dies at a dead end.
		rec("a", trace.Record{Stream: trace.StreamHop, T: 4, Node: "n1", Trace: 2, Kind: trace.KindOrigin, Dist: 1 << 9}),
		rec("a", trace.Record{Stream: trace.StreamHop, T: 4, Node: "n1", Trace: 2, Hop: 1, Kind: "near", Next: "n2"}),
		rec("a", trace.Record{Stream: trace.StreamHop, T: 5, Node: "n2", Trace: 2, Hop: 2, Kind: "near", Next: "n1"}),
		rec("a", trace.Record{Stream: trace.StreamRoute, T: 6, Node: "n1", Trace: 2, Hops: 2, Outcome: "drop.no_candidate"}),
		// Route 3: chain break — hop 1 names n5 but hop 2 runs on n6.
		rec("a", trace.Record{Stream: trace.StreamHop, T: 7, Node: "n4", Trace: 3, Kind: trace.KindOrigin}),
		rec("a", trace.Record{Stream: trace.StreamHop, T: 7, Node: "n4", Trace: 3, Hop: 1, Kind: "near", Next: "n5"}),
		rec("a", trace.Record{Stream: trace.StreamHop, T: 8, Node: "n6", Trace: 3, Hop: 2, Kind: "near", Next: "n7"}),
		rec("a", trace.Record{Stream: trace.StreamRoute, T: 9, Node: "n7", Trace: 3, Hops: 2, LatNs: 5e6, Outcome: "delivered"}),
		// Relay flap on edge n8->n9: via r1 then via r2.
		rec("a", trace.Record{Stream: trace.StreamHop, T: 10, Node: "n8", Trace: 4, Kind: trace.KindOrigin}),
		rec("a", trace.Record{Stream: trace.StreamHop, T: 10, Node: "n8", Trace: 4, Hop: 1, Kind: trace.KindTunnelRelay, Next: "n9", Via: "r1"}),
		rec("a", trace.Record{Stream: trace.StreamHop, T: 11, Node: "n8", Trace: 5, Kind: trace.KindOrigin}),
		rec("a", trace.Record{Stream: trace.StreamHop, T: 11, Node: "n8", Trace: 5, Hop: 1, Kind: trace.KindTunnelRelay, Next: "n9", Via: "r2"}),
		// Health snapshots: one routable, one not.
		rec("a", trace.Record{Stream: trace.StreamHealth, T: 12, Node: "n1", Routable: true, Backlog: 2}),
		rec("a", trace.Record{Stream: trace.StreamHealth, T: 12, Node: "n2", Routable: false, Backlog: 4}),
	}
	rep := analyze(recs)
	if rep.Routes != 5 {
		t.Errorf("routes = %d, want 5", rep.Routes)
	}
	// Only route 1 is fully reconstructed: 2 lacks delivery but is intact
	// (origin + terminal + unbroken chain → reconstructed), 3 has a chain
	// break, 4 and 5 never terminate.
	if rep.Reconstructed != 2 {
		t.Errorf("reconstructed = %d, want 2", rep.Reconstructed)
	}
	if rep.Loops != 1 {
		t.Errorf("loops = %d, want 1", rep.Loops)
	}
	if rep.DeadEnds != 1 || rep.Outcomes["drop.no_candidate"] != 1 {
		t.Errorf("dead ends = %d outcomes = %v", rep.DeadEnds, rep.Outcomes)
	}
	if rep.RelayFlaps != 1 {
		t.Errorf("relay flaps = %d, want 1", rep.RelayFlaps)
	}
	if rep.RelayUse["r1"] != 1 || rep.RelayUse["r2"] != 1 {
		t.Errorf("relay use = %v", rep.RelayUse)
	}
	if rep.HopP50 != 2 {
		t.Errorf("hop p50 = %v, want 2 (two delivered routes, both 2 hops)", rep.HopP50)
	}
	if rep.HealthNodes != 2 || rep.HealthFinal != 0.5 || rep.MeanBacklog != 3 {
		t.Errorf("health: nodes=%d final=%v backlog=%v", rep.HealthNodes, rep.HealthFinal, rep.MeanBacklog)
	}
	if got := rep.StretchByDistBits[10]; got != 2 {
		t.Errorf("stretch[10] = %v, want 2 (route 1, dist 2^9, 2 hops)", got)
	}
	out := rep.String()
	for _, want := range []string{"routes: 5 sampled", "drop.no_candidate", "relay flap", "health: 2 nodes"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	if _, err := json.Marshal(rep); err != nil {
		t.Errorf("report not marshalable: %v", err)
	}
}

// TestAnalyzeEmptyInput: no records must not divide by zero or emit NaN
// into the JSON report.
func TestAnalyzeEmptyInput(t *testing.T) {
	rep := analyze(nil)
	if rep.Routes != 0 || rep.ReconFrac != 0 {
		t.Fatalf("empty report: %+v", rep)
	}
	if rep.HopP50 != -1 || rep.LatP99Ms != -1 {
		t.Errorf("empty percentiles = %v/%v, want -1 sentinels", rep.HopP50, rep.LatP99Ms)
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "NaN") {
		t.Errorf("NaN leaked into JSON: %s", data)
	}
}

// TestAnalyzeSeed5GrayRun is the acceptance check from the issue: at
// 1-in-16 sampling on the seed-5 gray-failure run, the analyzer must
// reconstruct at least 99% of sampled routes end-to-end.
func TestAnalyzeSeed5GrayRun(t *testing.T) {
	r, err := experiments.RunGrayFailures(experiments.GrayOpts{
		Seed: 5, Adaptive: true, TraceSample: 16,
		TraceHealth: experiments.SettleSeconds(120),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Feed the records through the same JSONL round trip the CLI uses.
	data, err := trace.MarshalJSONL(r.Trace)
	if err != nil {
		t.Fatal(err)
	}
	recs, skipped, err := readRecords(strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Errorf("round trip skipped %d of its own lines", skipped)
	}
	if len(recs) != len(r.Trace) {
		t.Fatalf("round trip lost records: %d in, %d out", len(r.Trace), len(recs))
	}
	rep := analyze(recs)
	if rep.Routes == 0 {
		t.Fatal("no routes sampled")
	}
	if rep.ReconFrac < 0.99 {
		t.Errorf("reconstructed %.4f of %d routes, want >= 0.99\n%s",
			rep.ReconFrac, rep.Routes, rep.String())
	}
	if rep.Outcomes["delivered"] == 0 {
		t.Error("no delivered routes in gray run")
	}
	if rep.HopP50 <= 0 || rep.LatP50Ms <= 0 {
		t.Errorf("percentiles not computed: hops p50=%v lat p50=%v", rep.HopP50, rep.LatP50Ms)
	}
	if rep.HealthRecords == 0 || rep.HealthNodes == 0 {
		t.Error("health ticker armed but analyzer saw no snapshots")
	}
	if rep.Loops != 0 {
		t.Errorf("%d routing loops in greedy routing", rep.Loops)
	}
}
