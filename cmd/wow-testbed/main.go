// Command wow-testbed builds the paper's Figure-1 deployment — 33 compute
// VMs across six firewalled domains plus a PlanetLab router overlay —
// inside the simulator, lets it self-organize, and prints a detailed
// report of the resulting overlay: ring state, per-node connections,
// NAT-learned URIs, and cross-domain reachability.
package main

import (
	"flag"
	"fmt"
	"sort"

	"wow/internal/brunet"
	"wow/internal/sim"
	"wow/internal/testbed"
)

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	routers := flag.Int("routers", 118, "PlanetLab router nodes")
	plHosts := flag.Int("pl-hosts", 20, "PlanetLab hosts")
	shortcuts := flag.Bool("shortcuts", true, "enable the ShortcutConnectionOverlord")
	pingMatrix := flag.Bool("ping-matrix", false, "measure an all-sites virtual ping matrix")
	flag.Parse()

	fmt.Printf("building WOW testbed: %d routers on %d PlanetLab hosts, 33 compute VMs, shortcuts=%v\n",
		*routers, *plHosts, *shortcuts)
	tb := testbed.Build(testbed.Config{
		Seed:           *seed,
		Shortcuts:      *shortcuts,
		Routers:        *routers,
		PlanetLabHosts: *plHosts,
	})

	fmt.Printf("\noverlay settled at t=%s\n", tb.Sim.Now())
	fmt.Printf("routable compute nodes: %d/%d\n\n", tb.RoutableVMs(), len(tb.VMs))

	fmt.Println("node       vip           site              speed  conns  types")
	for _, v := range tb.VMs {
		conns := v.Node().Overlay().Connections()
		counts := map[brunet.ConnType]int{}
		for _, c := range conns {
			for _, t := range c.Types() {
				counts[t]++
			}
		}
		fmt.Printf("%-10s %-13s %-17s %5.2f %6d  leaf=%d near=%d far=%d shortcut=%d\n",
			v.Name(), v.IP(), v.Host().Site.Name, v.Spec().CPUSpeed, len(conns),
			counts[brunet.Leaf], counts[brunet.StructuredNear],
			counts[brunet.StructuredFar], counts[brunet.Shortcut])
	}

	fmt.Println("\nexample URI lists (NAT-learned public endpoints first):")
	for _, name := range []string{"node003", "node017", "node032", "node034"} {
		v := tb.VM(name)
		fmt.Printf("  %s:", name)
		for _, u := range v.Node().Overlay().URIs() {
			fmt.Printf(" %s", u)
		}
		fmt.Println()
	}

	if *pingMatrix {
		fmt.Println("\ncross-domain virtual ping RTTs (ms), one probe node per site:")
		probes := []string{"node003", "node017", "node030", "node032", "node033", "node034"}
		sort.Strings(probes)
		fmt.Printf("%10s", "")
		for _, q := range probes {
			fmt.Printf(" %9s", q)
		}
		fmt.Println()
		for _, p := range probes {
			fmt.Printf("%10s", p)
			for _, q := range probes {
				if p == q {
					fmt.Printf(" %9s", "-")
					continue
				}
				rtt := -1.0
				tb.VM(p).Stack().Ping(tb.VM(q).IP(), 64, 10*sim.Second, func(ok bool, d sim.Duration) {
					if ok {
						rtt = d.Seconds() * 1000
					}
				})
				tb.Sim.RunFor(11 * sim.Second)
				if rtt < 0 {
					fmt.Printf(" %9s", "lost")
				} else {
					fmt.Printf(" %9.1f", rtt)
				}
			}
			fmt.Println()
		}
	}
}
