// Command parallel runs the paper's parallel workload (§V-D2): the
// fastDNAml maximum-likelihood phylogenetic inference under a PVM-style
// master-worker runtime, on WOW nodes spread across six domains. It
// reports execution times and speedups in the format of Table III,
// including the effect of disabling shortcut connections.
package main

import (
	"flag"
	"fmt"
	"os"

	"wow/internal/experiments"
	"wow/internal/sim"
	"wow/internal/workloads"
)

func main() {
	scale := flag.Float64("scale", 0.25, "fraction of the paper's 22272s sequential workload to run")
	seed := flag.Int64("seed", 7, "simulation seed")
	flag.Parse()

	wl := workloads.DefaultFastDNAml()
	wl.SeqCPU = sim.Duration(float64(wl.SeqCPU) * *scale)
	fmt.Printf("fastDNAml-PVM on WOW: %d-taxa dataset, %d candidate-tree tasks, %.0fs sequential CPU\n\n",
		wl.Taxa, countTasks(wl), wl.SeqCPU.Seconds())

	if *scale < 0.2 {
		fmt.Println("note: at small -scale values the fixed per-round synchronization dominates")
		fmt.Println("and parallel efficiency drops well below the paper's; use -scale 1 for Table III.")
		fmt.Println()
	}
	r, err := experiments.RunTable3(experiments.Table3Opts{Seed: *seed, Workload: wl})
	if err != nil {
		fmt.Fprintf(os.Stderr, "parallel: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(r.String())
}

func countTasks(wl workloads.FastDNAmlConfig) int {
	n := 0
	for _, round := range wl.Rounds() {
		n += len(round)
	}
	return n
}
