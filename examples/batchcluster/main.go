// Command batchcluster reproduces the paper's flagship use case (§V-D1):
// the full 33-node Figure-1 testbed running an unmodified PBS batch system
// with an NFS-mounted home directory, churning through short MEME
// sequence-analysis jobs submitted at one per second — first with
// self-organized shortcut connections, then without, to show the
// throughput gap (the paper measured 53 vs 22 jobs/minute).
package main

import (
	"flag"
	"fmt"
	"os"

	"wow/internal/experiments"
)

func main() {
	jobs := flag.Int("jobs", 600, "number of MEME jobs to submit (paper: 4000)")
	seed := flag.Int64("seed", 7, "simulation seed")
	both := flag.Bool("both", true, "also run the shortcuts-disabled baseline")
	flag.Parse()

	fmt.Printf("WOW batch cluster: 33 VMs across 6 firewalled domains, 118 PlanetLab routers\n")
	fmt.Printf("submitting %d MEME jobs at 1 job/s to the PBS head (node002, UFL)...\n\n", *jobs)

	modes := []bool{true}
	if *both {
		modes = append(modes, false)
	}
	var results []*experiments.Fig8Result
	for _, shortcuts := range modes {
		r, err := experiments.RunFig8(experiments.Fig8Opts{
			Seed:      *seed,
			Jobs:      *jobs,
			Shortcuts: shortcuts,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "batchcluster: %v\n", err)
			os.Exit(1)
		}
		results = append(results, r)
		fmt.Println(r.String())
	}
	if len(results) == 2 {
		fmt.Printf("throughput improvement from shortcut connections: %.0f%% (paper: 240%%)\n",
			100*(results[0].JobsPerMinute/results[1].JobsPerMinute-1))
	}
}
