// Command condorpool realizes the deployment scenario the paper's
// introduction leads with: "a base WOW VM image can be installed with
// Condor binaries and be quickly replicated across multiple sites to host
// a homogeneously configured distributed Condor pool" (§I). The full
// Figure-1 testbed boots, every VM runs a startd advertising ClassAds to
// the central manager over the virtual network, and a stream of jobs is
// matched to machines by requirements and rank.
package main

import (
	"flag"
	"fmt"
	"sort"

	"wow/internal/middleware/condor"
	"wow/internal/sim"
	"wow/internal/testbed"
)

func main() {
	jobs := flag.Int("jobs", 150, "jobs to submit")
	seed := flag.Int64("seed", 7, "simulation seed")
	minSpeed := flag.Float64("min-speed", 0, "job Requirements: minimum machine speed")
	flag.Parse()

	fmt.Println("building the 33-node WOW; installing Condor in every VM image...")
	tb := testbed.Build(testbed.Config{Seed: *seed, Shortcuts: true})

	head := tb.VM("node002")
	cm, err := condor.NewCentralManager(head.Stack(), 30*sim.Second)
	if err != nil {
		panic(err)
	}
	schedd := condor.NewSchedd(head.Stack())
	cm.AttachSchedd(schedd)
	for _, v := range tb.VMs {
		if _, err := condor.NewStartd(v, v.Spec().CPUSpeed, head.IP(), 60*sim.Second); err != nil {
			panic(err)
		}
	}
	tb.Sim.RunFor(2 * sim.Minute)
	fmt.Printf("collector sees %d machines across 6 firewalled domains\n\n", len(cm.Machines()))

	done := 0
	perMachine := map[string]int{}
	schedd.OnJobDone(func(r *condor.JobRecord) {
		if r.OK {
			done++
			perMachine[r.Machine]++
		}
	})
	start := tb.Sim.Now()
	for i := 0; i < *jobs; i++ {
		i := i
		tb.Sim.At(start.Add(sim.Duration(i)*sim.Second), func() {
			schedd.Submit(condor.JobAd{ID: i, CPU: 20 * sim.Second, MinSpeed: *minSpeed})
		})
	}
	deadline := start.Add(12 * sim.Hour)
	for done < *jobs && tb.Sim.Now() < deadline {
		tb.Sim.RunFor(sim.Minute)
	}
	elapsed := tb.Sim.Now().Sub(start).Seconds()
	fmt.Printf("%d/%d jobs completed in %.0fs (%.1f jobs/min)\n\n", done, *jobs, elapsed, float64(done)/(elapsed/60))

	names := make([]string, 0, len(perMachine))
	for n := range perMachine {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Println("jobs per machine (rank prefers fast machines; slow ones pull fewer):")
	for _, n := range names {
		fmt.Printf("  %-10s %3d\n", n, perMachine[n])
	}
	if *minSpeed > 0 {
		fmt.Printf("\nRequirements MinSpeed=%.2f filtered the pool to %d eligible machines\n",
			*minSpeed, eligible(cm, *minSpeed))
	}
}

func eligible(cm *condor.CentralManager, min float64) int {
	n := 0
	for _, ad := range cm.Machines() {
		if ad.Speed >= min {
			n++
		}
	}
	return n
}
