// Command discovery demonstrates the paper's §VI future-work direction —
// decentralized resource discovery — implemented here as a DHT over the
// Brunet ring: every workstation advertises itself under a well-known key
// with a TTL; any node enumerates the live pool with one lookup; crashed
// machines age out with no central collector anywhere.
package main

import (
	"fmt"

	"wow/internal/brunet"
	"wow/internal/core"
	"wow/internal/dht"
	"wow/internal/phys"
	"wow/internal/sim"
	"wow/internal/vip"
	"wow/internal/vm"
)

func main() {
	s := sim.New(11)
	net := phys.NewNetwork(s, phys.UniformLatency(
		phys.PathModel{OneWay: 500 * sim.Microsecond},
		phys.PathModel{OneWay: 15 * sim.Millisecond},
	))
	wow := core.New(s, core.Options{Shortcuts: true, Brunet: brunet.DefaultConfig()})

	// Every overlay node participates in the DHT: key ownership follows
	// ring positions, so routers store and serve entries too.
	var routerDHTs []*dht.DHT
	for i := 0; i < 16; i++ {
		name := fmt.Sprintf("router%02d", i)
		h := net.AddHost(name, net.AddSite(name), net.Root(), phys.HostConfig{})
		r, err := wow.AddRouter(h, name)
		if err != nil {
			panic(err)
		}
		routerDHTs = append(routerDHTs, dht.New(r.Overlay(), dht.Config{}))
		s.RunFor(2 * sim.Second)
	}
	s.RunFor(30 * sim.Second)

	// Six workstations of varying speeds; each runs a DHT client and
	// advertises itself into "pool/compute" every 2 minutes.
	speeds := []float64{1.0, 1.0, 1.33, 0.83, 0.49, 1.33}
	var vms []*vm.VM
	var discs []*dht.Discovery
	for i, speed := range speeds {
		name := fmt.Sprintf("node%03d", i+2)
		h := net.AddHost(name+"-host", net.AddSite(name), net.Root(), phys.HostConfig{
			ServiceTime: 400 * sim.Microsecond, Bandwidth: 1.7e6,
		})
		v, err := wow.AddWorkstation(h, vip.MustParseIP(fmt.Sprintf("172.16.1.%d", i+2)), vm.Spec{Name: name, CPUSpeed: speed})
		if err != nil {
			panic(err)
		}
		vms = append(vms, v)
		d := dht.New(v.Node().Overlay(), dht.Config{})
		disc := dht.NewDiscovery(d, "pool/compute")
		disc.Advertise(dht.Advert{Name: name, Speed: speed}, 2*sim.Minute)
		discs = append(discs, disc)
	}
	s.RunFor(sim.Minute)

	lister := dht.NewDiscovery(routerDHTs[3], "pool/compute")
	list := func(when string) {
		lister.List(func(ads []dht.Advert, ok bool) {
			fmt.Printf("%s: pool has %d machines:\n", when, len(ads))
			for _, ad := range ads {
				fmt.Printf("  %-10s speed %.2f\n", ad.Name, ad.Speed)
			}
		})
		s.RunFor(15 * sim.Second)
	}

	list("t+1m (all advertising)")

	// node006 (the slow one) crashes: no deregistration, no collector —
	// its advert simply stops being refreshed and expires.
	fmt.Println("\nnode006 crashes (no deregistration anywhere)...")
	discs[4].StopAdvertising()
	vms[4].Shutdown()
	s.RunFor(5 * sim.Minute)

	list("t+6m (crashed node aged out)")
}
