// Command quickstart is the smallest possible WOW: a handful of public
// overlay routers, two virtual workstations behind NATs in different
// domains, a virtual ping between them, and a live view of the
// self-organized shortcut connection forming — the paper's core loop in
// ~100 lines.
package main

import (
	"fmt"

	"wow/internal/brunet"
	"wow/internal/core"
	"wow/internal/natsim"
	"wow/internal/phys"
	"wow/internal/sim"
	"wow/internal/vip"
	"wow/internal/vm"
)

func main() {
	// 1. A simulated wide area: sites 25 ms apart.
	s := sim.New(42)
	net := phys.NewNetwork(s, phys.UniformLatency(
		phys.PathModel{OneWay: 500 * sim.Microsecond},
		phys.PathModel{OneWay: 12500 * sim.Microsecond},
	))

	// 2. A WOW with shortcut creation enabled.
	wow := core.New(s, core.Options{Shortcuts: true})

	// 3. Two dozen public bootstrap routers (the paper used 118 on
	// PlanetLab; any overlay node on the public Internet works).
	for i := 0; i < 24; i++ {
		name := fmt.Sprintf("router%d", i)
		host := net.AddHost(name, net.AddSite(name), net.Root(), phys.HostConfig{})
		if _, err := wow.AddRouter(host, name); err != nil {
			panic(err)
		}
		s.RunFor(2 * sim.Second)
	}
	s.RunFor(30 * sim.Second)
	fmt.Printf("bootstrap overlay up: %d routers\n", len(wow.Routers()))

	// 4. Two virtual workstations behind port-restricted NATs in
	// different domains. No port forwarding, no admin coordination:
	// each just knows one public router URI.
	addStation := func(name, privBase, ip string) *vm.VM {
		site := net.AddSite(name + "-site")
		nat := natsim.NewNAT(name+"-nat", natsim.Config{Type: natsim.PortRestricted},
			net.Root().NextIP(), s.Now)
		realm := net.AddRealm(name+"-lan", net.Root(), nat, phys.MustParseIP(privBase))
		host := net.AddHost(name+"-host", site, realm, phys.HostConfig{
			ServiceTime: 400 * sim.Microsecond, Bandwidth: 1.7e6,
		})
		v, err := wow.AddWorkstation(host, vip.MustParseIP(ip), vm.Spec{Name: name})
		if err != nil {
			panic(err)
		}
		return v
	}
	alice := addStation("alice", "192.168.1.10", "172.16.1.2")
	bob := addStation("bob", "10.0.0.10", "172.16.1.3")

	s.RunFor(30 * sim.Second)
	fmt.Printf("workstations routable: %d/2\n", wow.RoutableWorkstations())

	// 5. Ping from alice to bob once per second and watch the virtual
	// network adapt: multi-hop at first, then the traffic-inspecting
	// ShortcutConnectionOverlord hole-punches a direct link and the RTT
	// collapses.
	bobAddr := bob.Node().Addr()
	hadShortcut := false
	tick := s.Tick(sim.Second, 0, func() {
		alice.Stack().Ping(bob.IP(), 64, 2*sim.Second, func(ok bool, rtt sim.Duration) {
			t := int(s.Now().Seconds())
			if !ok {
				fmt.Printf("t=%3ds  ping bob: timeout\n", t)
				return
			}
			note := ""
			if c := alice.Node().Overlay().ConnectionTo(bobAddr); c != nil && c.Has(brunet.Shortcut) {
				if !hadShortcut {
					note = "   <- direct shortcut connection established (hole-punched through both NATs)"
					hadShortcut = true
				} else {
					note = "   (direct)"
				}
			}
			if t%5 == 0 || note != "" {
				fmt.Printf("t=%3ds  ping bob: %5.1f ms%s\n", t, rtt.Seconds()*1000, note)
			}
		})
	})
	s.RunFor(90 * sim.Second)
	tick.Stop()

	c := alice.Node().Overlay().ConnectionTo(bobAddr)
	fmt.Printf("\nalice's connection to bob: %v\n", c)
	fmt.Printf("overlay size: %d nodes\n", wow.OverlaySize())
}
