// Command migration demonstrates §V-C: live wide-area migration of a
// virtual workstation under two unmodified TCP applications. An SCP
// client downloads a 720 MB file from a server VM that is migrated from
// UFL to NWU mid-transfer, and a PBS worker is migrated while running a
// job that reads and writes an NFS-mounted home directory. Both resume
// with no application-level restart: the VM keeps its virtual IP, the
// restarted IPOP process rejoins the overlay, and TCP retransmission
// rides out the outage.
package main

import (
	"flag"
	"fmt"
	"os"

	"wow/internal/experiments"
	"wow/internal/sim"
)

func main() {
	seed := flag.Int64("seed", 7, "simulation seed")
	flag.Parse()

	fmt.Println("=== SCP transfer across server migration (Figure 6) ===")
	f6, err := experiments.RunFig6(experiments.Fig6Opts{Seed: *seed})
	if err != nil {
		fmt.Fprintf(os.Stderr, "migration: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(f6.String())

	// Print the transfer curve every ~60 s of virtual time.
	fmt.Println("  client-side bytes over time:")
	for i := 0; i < f6.Progress.Len(); i += 12 {
		t, b := f6.Progress.At(i)
		fmt.Printf("    t=%5.0fs  %6.1f MB\n", t, b/(1<<20))
	}
	fmt.Println()

	fmt.Println("=== PBS job stream across worker migration (Figure 7) ===")
	f7, err := experiments.RunFig7(experiments.Fig7Opts{Seed: *seed, Jobs: 110})
	if err != nil {
		fmt.Fprintf(os.Stderr, "migration: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(f7.String())
	fmt.Println("  per-job wall times (every 8th job):")
	for i, p := range f7.Points {
		if i%8 == 0 || p.Phase == "migrating" {
			fmt.Printf("    job %3d  %7.1f s  [%s]\n", p.JobID, p.WallSeconds, p.Phase)
		}
	}
	_ = sim.Second
}
